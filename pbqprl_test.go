package pbqprl_test

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"pbqprl"
)

// TestFacadeEndToEnd exercises the public API exactly as the README
// shows: build the Figure 2 graph, solve it with every solver, reduce
// it, round-trip it through the text format.
func TestFacadeEndToEnd(t *testing.T) {
	g := pbqprl.NewGraph(3, 2)
	g.SetVertexCost(0, pbqprl.Vector{5, 2})
	g.SetVertexCost(1, pbqprl.Vector{5, 0})
	g.SetVertexCost(2, pbqprl.Vector{0, 0})
	m01 := &pbqprl.Matrix{Rows: 2, Cols: 2, Data: []pbqprl.Cost{1, 3, 7, 8}}
	m12 := &pbqprl.Matrix{Rows: 2, Cols: 2, Data: []pbqprl.Cost{0, 4, 9, 6}}
	m02 := &pbqprl.Matrix{Rows: 2, Cols: 2, Data: []pbqprl.Cost{0, 2, 5, 3}}
	g.SetEdgeCost(0, 1, m01)
	g.SetEdgeCost(1, 2, m12)
	g.SetEdgeCost(0, 2, m02)

	solvers := []pbqprl.Solver{
		pbqprl.Brute(0),
		pbqprl.Scholz(),
		pbqprl.Liberty(1_000_000),
		pbqprl.Anneal(5000, 1),
		pbqprl.NewDeepRL(pbqprl.UniformEvaluator{}, pbqprl.DeepRLConfig{
			K: 100, Order: pbqprl.OrderFixed, Baseline: 12, HasBaseline: true,
		}),
	}
	for _, s := range solvers {
		res := s.Solve(g)
		if !res.Feasible || res.Cost != 11 {
			t.Errorf("%s: cost %v feasible %v, want 11", s.Name(), res.Cost, res.Feasible)
		}
	}

	r := pbqprl.Reduce(g)
	if r.Graph.AliveCount() != 0 {
		t.Error("triangle should reduce completely")
	}
	sel, ok := r.Expand(make(pbqprl.Selection, 3))
	if !ok || g.TotalCost(sel) != 11 {
		t.Errorf("reduce+expand = %v (%v)", g.TotalCost(sel), ok)
	}

	var sb strings.Builder
	if err := pbqprl.WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	back, err := pbqprl.ReadGraph(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != 3 || back.M() != 2 {
		t.Error("round trip lost shape")
	}
}

func TestFacadeGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := pbqprl.ErdosRenyi(rng, pbqprl.ErdosRenyiConfig{N: 10, M: 3, PEdge: 0.4, PInf: 0.05})
	if g.NumVertices() != 10 {
		t.Error("ER generator wrong size")
	}
	z, hidden := pbqprl.ZeroInf(rng, pbqprl.ZeroInfConfig{N: 12, M: 5, PEdge: 0.3, HardRatio: 0.4, PEdgeInf: 0.2})
	if z.TotalCost(hidden) != 0 {
		t.Error("hidden solution invalid")
	}
}

func TestFacadeTrainer(t *testing.T) {
	n := pbqprl.NewNet(pbqprl.NetConfig{M: 3, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: 2})
	tr, err := pbqprl.NewTrainer(n, pbqprl.TrainerConfig{
		EpisodesPerIter: 2, KTrain: 4, ArenaGames: 2, ArenaWins: 1,
		Generate: func(rng *rand.Rand) *pbqprl.Graph {
			return pbqprl.ErdosRenyi(rng, pbqprl.ErdosRenyiConfig{N: 5, M: 3, PEdge: 0.4, PInf: 0})
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := tr.RunIteration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iteration != 1 || stats.Samples == 0 {
		t.Errorf("trainer stats: %+v", stats)
	}
	if _, err := pbqprl.NewTrainer(n, pbqprl.TrainerConfig{}); err == nil {
		t.Error("missing Generate accepted")
	}
	if pbqprl.Inf.IsInf() != true {
		t.Error("Inf constant broken")
	}
}

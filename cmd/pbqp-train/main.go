// Command pbqp-train runs the self-play training pipeline of Section
// IV-A and writes network checkpoints.
//
// Usage:
//
//	pbqp-train [-iters N] [-episodes N] [-ktrain N] [-regime ate|er] [-out net.gob] [-seed S]
//
// The "ate" regime trains on zero/infinity graphs with the ATE
// statistics; "er" trains on the paper's Erdős–Rényi distribution with
// a 1 % infinity ratio. Paper-scale parameters (-iters 200 -episodes
// 100) reproduce the full two-week run if you have the patience; the
// defaults finish in minutes.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pbqprl/internal/experiments"
	"pbqprl/internal/game"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/selfplay"
)

func main() {
	iters := flag.Int("iters", 5, "training iterations (paper: 200)")
	episodes := flag.Int("episodes", 20, "episodes per iteration (paper: 100)")
	ktrain := flag.Int("ktrain", 50, "MCTS simulations per move (paper: 50 or 100)")
	regime := flag.String("regime", "ate", "training distribution: ate (zero/inf) or er (Erdős–Rényi, p_inf=1%)")
	out := flag.String("out", "pbqp-net.gob", "checkpoint output path")
	seed := flag.Int64("seed", 1, "training seed")
	meanN := flag.Float64("mean-n", 36, "mean graph size (paper: 100)")
	flag.Parse()

	var gen func(*rand.Rand) *pbqp.Graph
	var order game.Order
	switch *regime {
	case "ate":
		order = game.OrderDecLiberty
		gen = func(rng *rand.Rand) *pbqp.Graph {
			n := randgraph.NormalN(rng, *meanN, *meanN/4, 10)
			g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
				N: n, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
			})
			return g
		}
	case "er":
		order = game.OrderFixed
		gen = func(rng *rand.Rand) *pbqp.Graph {
			n := randgraph.NormalN(rng, *meanN, *meanN/4, 10)
			return randgraph.ErdosRenyi(rng, randgraph.Config{
				N: n, M: 13, PEdge: 0.15, PInf: 0.01, MaxCost: 40,
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "pbqp-train: unknown regime %q\n", *regime)
		os.Exit(2)
	}

	n := net.New(experiments.DefaultNetConfig())
	trainer := selfplay.New(n, selfplay.Config{
		EpisodesPerIter: *episodes,
		KTrain:          *ktrain,
		Order:           order,
		Generate:        gen,
		Seed:            *seed,
	})
	for i := 0; i < *iters; i++ {
		stats := trainer.RunIteration()
		fmt.Println(stats)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pbqp-train:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trainer.Best().Save(f); err != nil {
		fmt.Fprintln(os.Stderr, "pbqp-train:", err)
		os.Exit(1)
	}
	fmt.Printf("saved best network to %s\n", *out)
}

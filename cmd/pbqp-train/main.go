// Command pbqp-train runs the self-play training pipeline of Section
// IV-A with fault-tolerant checkpointing, either standalone or as a
// worker in a distributed run.
//
// Usage:
//
//	pbqp-train [-iters N] [-episodes N] [-ktrain N] [-workers N] [-batch-leaves N]
//	           [-regime ate|er] [-out net.gob]
//	           [-seed S] [-resume] [-checkpoint-dir DIR] [-checkpoint-every N] [-checkpoint-keep K]
//	pbqp-train -worker http://coordinator:8090 [-regime ...] [-episodes ...] [-ktrain ...] [-seed ...]
//
// The "ate" regime trains on zero/infinity graphs with the ATE
// statistics; "er" trains on the paper's Erdős–Rényi distribution with
// a 1 % infinity ratio. Paper-scale parameters (-iters 200 -episodes
// 100) reproduce the full two-week run if you have the patience; the
// defaults finish in minutes.
//
// The trainer checkpoints its complete state (both networks, Adam
// moments, replay queue, RNG stream, iteration position) atomically
// every -checkpoint-every iterations. SIGINT/SIGTERM finishes the
// in-flight episode, checkpoints, and exits cleanly; a second signal
// during that graceful exit forces immediate termination with exit
// code 1. Restarting with -resume (and the same flags) continues
// bit-identically to an uninterrupted run. A truncated or corrupt
// newest checkpoint is detected by checksum and the run falls back to
// the previous valid one.
//
// Episodes and arena games run on -workers goroutines (default: all
// CPUs), each with its own clone of the networks. Every episode's
// randomness comes from a seed pre-drawn from the master RNG stream and
// results are merged in episode order, so the worker count never
// changes the result: any -workers value — including resuming a
// checkpoint under a different one — trains bit-identically to
// -workers 1.
//
// With -worker, the process instead claims episode leases from a
// pbqp-coord coordinator and streams trajectories back, heartbeating
// while it works. The training flags must match the coordinator's (the
// claim handshake verifies a fingerprint of them); scheduling flags
// are local. Workers hold no training state — kill -9 one whenever you
// like.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"pbqprl/internal/checkpoint"
	"pbqprl/internal/dist"
	"pbqprl/internal/experiments"
	"pbqprl/internal/net"
	"pbqprl/internal/selfplay"
)

func main() {
	iters := flag.Int("iters", 5, "training iterations (paper: 200)")
	episodes := flag.Int("episodes", 20, "episodes per iteration (paper: 100)")
	ktrain := flag.Int("ktrain", 50, "MCTS simulations per move (paper: 50 or 100)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent self-play workers (any value trains bit-identically)")
	batchLeaves := flag.Int("batch-leaves", 0, "MCTS leaves per batched network evaluation (0 or 1 = sequential; any value trains bit-identically)")
	regime := flag.String("regime", "ate", "training distribution: ate (zero/inf) or er (Erdős–Rényi, p_inf=1%)")
	out := flag.String("out", "pbqp-net.gob", "best-network output path")
	seed := flag.Int64("seed", 1, "training seed")
	meanN := flag.Float64("mean-n", 36, "mean graph size (paper: 100)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint directory (default: <out>.ckpts)")
	ckptEvery := flag.Int("checkpoint-every", 1, "checkpoint every N completed iterations (0 disables periodic checkpoints)")
	ckptKeep := flag.Int("checkpoint-keep", 3, "checkpoints retained on disk")
	resume := flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir")
	workerURL := flag.String("worker", "", "run as a distributed self-play worker against this coordinator URL")
	flag.Parse()
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("pbqp-train: ")

	spec := dist.Spec{
		Episodes: *episodes,
		KTrain:   *ktrain,
		Regime:   *regime,
		MeanN:    *meanN,
		Seed:     *seed,
		Net:      experiments.DefaultNetConfig(),
	}

	// SIGINT/SIGTERM cancels the context; the first signal drains
	// gracefully (finish the in-flight episode, checkpoint, exit
	// cleanly), a second one during that shutdown forces an immediate
	// exit — for the operator whose graceful exit is itself wedged.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		cancel()
		<-sigc
		log.Printf("second signal: forcing immediate exit")
		os.Exit(1)
	}()

	if *workerURL != "" {
		w, err := dist.NewWorker(dist.WorkerConfig{
			Coordinator: *workerURL,
			Spec:        spec,
			Logf:        log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("worker mode: coordinator %s, fingerprint %q", *workerURL, spec.Fingerprint())
		if err := w.Run(ctx); err != nil {
			log.Fatal(err)
		}
		log.Printf("worker: interrupted; exiting cleanly")
		return
	}

	cfg, err := spec.SelfplayConfig()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbqp-train: %v\n", err)
		os.Exit(2)
	}
	cfg.Workers = *workers
	cfg.MCTS.BatchLeaves = *batchLeaves
	cfg.Logf = log.Printf

	trainer, err := selfplay.NewTrainer(net.New(spec.Net), cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *ckptDir == "" {
		*ckptDir = *out + ".ckpts"
	}
	store, err := checkpoint.NewStore(*ckptDir, *ckptKeep)
	if err != nil {
		log.Fatal(err)
	}
	store.Logf = log.Printf

	if *resume {
		id, payload, err := store.LoadLatest()
		switch {
		case err == nil:
			if err := trainer.DecodeState(payload); err != nil {
				log.Fatal(err)
			}
			log.Printf("resumed from checkpoint %d (%d iterations complete)", id, trainer.Iter())
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			log.Printf("no checkpoint in %s; starting fresh", store.Dir())
		default:
			log.Fatal(err)
		}
	}

	save := func() {
		payload, err := trainer.EncodeState()
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Save(trainer.Iter(), payload); err != nil {
			log.Fatal(err)
		}
	}

	interrupted := false
	for trainer.Iter() < *iters {
		stats, err := trainer.RunIteration(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				save()
				log.Printf("interrupted during iteration %d; state checkpointed to %s — rerun with -resume", trainer.Iter()+1, store.Dir())
				interrupted = true
				break
			}
			// divergence or another unrecoverable error: do NOT
			// checkpoint the poisoned state
			log.Fatal(err)
		}
		fmt.Println(stats)
		if *ckptEvery > 0 && trainer.Iter()%*ckptEvery == 0 {
			save()
		}
	}
	if interrupted {
		return
	}
	if *ckptEvery > 0 && *iters%*ckptEvery != 0 {
		save()
	}

	data, err := trainer.Best().SaveBytes()
	if err != nil {
		log.Fatal(err)
	}
	if err := checkpoint.WriteFileAtomic(*out, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved best network to %s\n", *out)
}

// Command pbqp-gen generates random PBQP problem instances in the
// textual format that pbqp-solve consumes (and optionally Graphviz DOT
// for visualization).
//
// Usage:
//
//	pbqp-gen [-kind er|zeroinf|large] [-n N] [-m M] [-pedge P] [-pinf P] [-seed S] [-dot out.dot] > problem.pbqp
//
// -kind large emits the big-graph workload for the decomposition
// pipeline (pbqp-solve -decompose): chains of dense circulant clusters
// joined by bridges, with -components connected components, clusters of
// -cluster vertices, and -chords extra random edges per cluster.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
)

func main() {
	kind := flag.String("kind", "er", "er (Erdős–Rényi, paper's training distribution), zeroinf (ATE-style), or large (sparse big-graph workload)")
	n := flag.Int("n", 40, "vertices")
	m := flag.Int("m", 13, "colors")
	pEdge := flag.Float64("pedge", 0.2, "edge probability")
	pInf := flag.Float64("pinf", 0.01, "infinite-entry ratio (er) / edge-entry ratio (zeroinf)")
	hard := flag.Float64("hard", 0.4, "hard-vertex ratio (zeroinf only)")
	components := flag.Int("components", 1, "connected components (large only)")
	cluster := flag.Int("cluster", 12, "dense-cluster size (large only)")
	chords := flag.Int("chords", 4, "extra random edges per cluster (large only)")
	seed := flag.Int64("seed", 1, "generator seed")
	dot := flag.String("dot", "", "also write Graphviz DOT to this file")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *pbqp.Graph
	switch *kind {
	case "er":
		g = randgraph.ErdosRenyi(rng, randgraph.Config{
			N: *n, M: *m, PEdge: *pEdge, PInf: *pInf,
		})
	case "zeroinf":
		var hidden pbqp.Selection
		g, hidden = randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
			N: *n, M: *m, PEdge: *pEdge, HardRatio: *hard, PEdgeInf: max(*pInf, 0.25),
		})
		fmt.Fprintf(os.Stderr, "# hidden zero-cost solution: %v\n", hidden)
	case "large":
		g = randgraph.LargeSparse(rng, randgraph.LargeSparseConfig{
			N: *n, M: *m, Components: *components, ClusterSize: *cluster,
			Chords: *chords, PInf: *pInf,
		})
	default:
		fmt.Fprintf(os.Stderr, "pbqp-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := pbqp.Write(os.Stdout, g); err != nil {
		fmt.Fprintln(os.Stderr, "pbqp-gen:", err)
		os.Exit(1)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pbqp-gen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pbqp.WriteDOT(f, g, "pbqp"); err != nil {
			fmt.Fprintln(os.Stderr, "pbqp-gen:", err)
			os.Exit(1)
		}
	}
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Command pbqp-solve reads a PBQP problem in the textual format of
// internal/pbqp (see `pbqp-solve -help` for the grammar) and solves it
// with the selected solver.
//
// Usage:
//
//	pbqp-solve [-solver brute|scholz|liberty|anneal|rl|rl-bt] [-k N] [-order fixed|random|inc|dec] file.pbqp
//
// The rl solvers use an untrained (uniform-prior) network unless -net
// points at a checkpoint produced by pbqp-train.
package main

import (
	"flag"
	"fmt"
	"os"

	"pbqprl/internal/experiments"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/anneal"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/scholz"
)

func main() {
	solver := flag.String("solver", "scholz", "brute, scholz, liberty, anneal, rl, or rl-bt (with backtracking)")
	k := flag.Int("k", 50, "MCTS simulations per action for the rl solvers")
	orderFlag := flag.String("order", "dec", "coloring order for rl solvers: fixed, random, inc, dec")
	netPath := flag.String("net", "", "network checkpoint for rl solvers (empty: uniform prior)")
	maxStates := flag.Int64("max-states", 50_000_000, "search budget")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pbqp-solve [flags] file.pbqp")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	g, err := pbqp.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var s solve.Solver
	switch *solver {
	case "brute":
		s = brute.Solver{MaxStates: *maxStates}
	case "scholz":
		s = scholz.Solver{}
	case "liberty":
		s = liberty.Solver{MaxStates: *maxStates}
	case "anneal":
		s = anneal.Solver{}
	case "rl", "rl-bt":
		var evaluator mcts.Evaluator = mcts.Uniform{}
		if *netPath != "" {
			n := experiments.LoadNet(*netPath)
			if n == nil {
				fatal(fmt.Errorf("cannot load network %s", *netPath))
			}
			evaluator = n
		}
		s = &rl.Solver{Net: evaluator, Cfg: rl.Config{
			K:            *k,
			Order:        parseOrder(*orderFlag),
			Backtrack:    *solver == "rl-bt",
			ReinvokeMCTS: true,
			MaxNodes:     *maxStates,
		}}
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}

	res := s.Solve(g)
	fmt.Printf("solver:   %s\n", s.Name())
	fmt.Printf("feasible: %v\n", res.Feasible)
	fmt.Printf("states:   %d\n", res.States)
	if res.Feasible {
		fmt.Printf("cost:     %s\n", res.Cost)
		fmt.Printf("selection:")
		for _, c := range res.Selection {
			fmt.Printf(" %d", c)
		}
		fmt.Println()
	} else {
		os.Exit(1)
	}
}

func parseOrder(s string) game.Order {
	switch s {
	case "fixed":
		return game.OrderFixed
	case "random":
		return game.OrderRandom
	case "inc":
		return game.OrderIncLiberty
	case "dec":
		return game.OrderDecLiberty
	default:
		fatal(fmt.Errorf("unknown order %q", s))
		return 0
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbqp-solve:", err)
	os.Exit(1)
}

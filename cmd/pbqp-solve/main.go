// Command pbqp-solve reads a PBQP problem in the textual format of
// internal/pbqp (see `pbqp-solve -help` for the grammar) and solves it
// with the selected solver or a deadline-aware solver portfolio.
//
// Usage:
//
//	pbqp-solve [-solver brute|scholz|liberty|anneal|rl|rl-bt] [-k N] [-order fixed|random|inc|dec]
//	           [-timeout 50ms] [-portfolio] [-stats-json] file.pbqp
//
// The rl solvers use an untrained (uniform-prior) network unless -net
// points at a checkpoint produced by pbqp-train. -timeout bounds the
// wall-clock time of the whole solve; on expiry the best selection
// found so far is printed and the result is marked truncated.
// -portfolio ignores -solver and runs the fallback chain
// deep-rl+backtrack → liberty → scholz, splitting the timeout across
// stages, recovering stage panics, and keeping the cheapest feasible
// answer. -stats-json prints the per-stage portfolio.Stats report as
// one JSON line on stderr (a single -solver reports as a one-stage
// chain) — the same struct pbqp-serve returns in its responses.
//
// -decompose routes the solve through the big-graph pipeline
// (internal/decomp): exact R0/R1/R2 reduction, block-cut splitting of
// the residual, per-block solving with the selected solver, and
// recombination. -decomp-workers bounds component parallelism (0
// auto-selects GOMAXPROCS for the stateless solvers and 1 for the rl
// solvers, whose scratch buffers are not concurrency-safe). With
// -stats-json, the decomposition statistics (eliminated vertices,
// component/block counts, largest block) join the report under
// "decomposition".
//
// Exit status:
//
//	0  a feasible selection was found and the search completed
//	1  usage or I/O error
//	2  the problem is infeasible (search completed, no selection)
//	3  the deadline truncated the search (feasible best-so-far, if
//	   any, is still printed)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pbqprl/internal/decomp"
	"pbqprl/internal/experiments"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/anneal"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/portfolio"
	"pbqprl/internal/solve/scholz"
)

const (
	exitOK         = 0
	exitError      = 1
	exitInfeasible = 2
	exitTruncated  = 3
)

func main() {
	solver := flag.String("solver", "scholz", "brute, scholz, liberty, anneal, rl, or rl-bt (with backtracking)")
	k := flag.Int("k", 50, "MCTS simulations per action for the rl solvers")
	orderFlag := flag.String("order", "dec", "coloring order for rl solvers: fixed, random, inc, dec")
	netPath := flag.String("net", "", "network checkpoint for rl solvers (empty: uniform prior)")
	maxStates := flag.Int64("max-states", 50_000_000, "search budget")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the solve (0 = unlimited); exceeding it returns the best-so-far with exit status 3")
	usePortfolio := flag.Bool("portfolio", false, "run the deep-rl+backtrack → liberty → scholz fallback chain under -timeout instead of -solver")
	statsJSON := flag.Bool("stats-json", false, "print per-stage solver stats as JSON to stderr — the same portfolio.Stats struct pbqp-serve returns")
	decompose := flag.Bool("decompose", false, "solve via the big-graph pipeline: reduce, split into biconnected blocks, solve blocks with the selected solver, recombine")
	decompWorkers := flag.Int("decomp-workers", 0, "parallel component solves for -decompose (0 = auto: GOMAXPROCS for stateless solvers, 1 for rl)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pbqp-solve [flags] file.pbqp")
		flag.Usage()
		os.Exit(exitError)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	g, err := pbqp.Read(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	rlSolver := func(backtrack bool) solve.Solver {
		var evaluator mcts.Evaluator = mcts.Uniform{}
		if *netPath != "" {
			n := experiments.LoadNet(*netPath)
			if n == nil {
				fatal(fmt.Errorf("cannot load network %s", *netPath))
			}
			evaluator = n
		}
		return &rl.Solver{Net: evaluator, Cfg: rl.Config{
			K:            *k,
			Order:        parseOrder(*orderFlag),
			Backtrack:    backtrack,
			ReinvokeMCTS: true,
			MaxNodes:     *maxStates,
		}}
	}

	wrapDecomp := func(inner solve.Solver) solve.Solver {
		if !*decompose {
			return inner
		}
		return &decomp.Solver{Inner: inner, Workers: autoWorkers(inner, *decompWorkers)}
	}

	var s solve.Solver
	switch {
	case *usePortfolio:
		s = portfolio.New(*timeout,
			wrapDecomp(rlSolver(true)),
			wrapDecomp(liberty.Solver{MaxStates: *maxStates}),
			wrapDecomp(scholz.Solver{}),
		)
	default:
		switch *solver {
		case "brute":
			s = brute.Solver{MaxStates: *maxStates}
		case "scholz":
			s = scholz.Solver{}
		case "liberty":
			s = liberty.Solver{MaxStates: *maxStates}
		case "anneal":
			s = anneal.Solver{}
		case "rl", "rl-bt":
			s = rlSolver(*solver == "rl-bt")
		default:
			fatal(fmt.Errorf("unknown solver %q", *solver))
		}
		s = wrapDecomp(s)
	}

	var res solve.Result
	var stats *portfolio.Stats
	var jsonStats *portfolio.Stats
	var decompInfo *decomp.Info
	if p, ok := s.(*portfolio.Solver); ok {
		// The portfolio manages its own -timeout budget itself; per-stage
		// outcomes are worth reporting.
		r, st := p.SolveStats(context.Background(), g)
		res, stats, jsonStats = r, &st, &st
	} else {
		//pbqpvet:ignore determinism -stats-json reports operational solve latency, never solver input
		start := time.Now()
		ctx, cancel := context.Background(), context.CancelFunc(func() {})
		if *timeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, *timeout)
		}
		if ds, ok := s.(*decomp.Solver); ok {
			r, di := ds.SolveWithInfo(ctx, g)
			res, decompInfo = r, &di
		} else if *timeout > 0 {
			res = solve.SolveCtx(ctx, s, g)
		} else {
			res = s.Solve(g)
		}
		cancel()
		if *statsJSON {
			// A single solver reports as a one-stage chain so CLI and
			// service emit the same shape regardless of -portfolio.
			winner := -1
			if res.Feasible {
				winner = 0
			}
			jsonStats = &portfolio.Stats{
				Stages: []portfolio.Outcome{{Name: s.Name(), Result: res, Duration: time.Since(start)}},
				Winner: winner,
			}
		}
	}
	if *statsJSON && jsonStats != nil {
		data, err := json.Marshal(statsReport{Stats: jsonStats, Decomposition: decompInfo})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, string(data))
	}

	fmt.Printf("solver:    %s\n", s.Name())
	fmt.Printf("feasible:  %v\n", res.Feasible)
	fmt.Printf("truncated: %v\n", res.Truncated)
	fmt.Printf("states:    %d\n", res.States)
	if decompInfo != nil {
		fmt.Printf("decomp:    eliminated %d of %d, residual %d in %d components / %d blocks (largest %d, cuts %d)\n",
			decompInfo.Eliminated, decompInfo.OriginalVertices, decompInfo.ResidualVertices,
			decompInfo.Components, decompInfo.Blocks, decompInfo.LargestBlock, decompInfo.CutVertices)
	}
	if stats != nil {
		for _, out := range stats.Stages {
			switch {
			case out.Skipped:
				fmt.Printf("stage %-22s skipped (budget exhausted or earlier stage succeeded)\n", out.Name+":")
			case out.Panicked:
				fmt.Printf("stage %-22s PANICKED (%s) in %v\n", out.Name+":", out.PanicValue, out.Duration.Round(time.Microsecond))
			default:
				fmt.Printf("stage %-22s feasible=%v truncated=%v states=%d in %v\n",
					out.Name+":", out.Result.Feasible, out.Result.Truncated, out.Result.States, out.Duration.Round(time.Microsecond))
			}
		}
	}
	if res.Feasible {
		fmt.Printf("cost:      %s\n", res.Cost)
		fmt.Printf("selection:")
		for _, c := range res.Selection {
			fmt.Printf(" %d", c)
		}
		fmt.Println()
	}
	switch {
	case res.Truncated:
		os.Exit(exitTruncated)
	case !res.Feasible:
		os.Exit(exitInfeasible)
	}
	os.Exit(exitOK)
}

// statsReport is the -stats-json line: the portfolio stage report plus,
// when -decompose ran outside a portfolio, the decomposition statistics.
type statsReport struct {
	*portfolio.Stats
	Decomposition *decomp.Info `json:"decomposition,omitempty"`
}

// autoWorkers resolves the -decomp-workers value: an explicit positive
// flag wins; otherwise stateless solvers get GOMAXPROCS-wide component
// parallelism and everything else (the rl solvers reuse per-instance
// scratch) stays sequential.
func autoWorkers(inner solve.Solver, flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	switch inner.(type) {
	case brute.Solver, scholz.Solver, liberty.Solver, anneal.Solver:
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

func parseOrder(s string) game.Order {
	switch s {
	case "fixed":
		return game.OrderFixed
	case "random":
		return game.OrderRandom
	case "inc":
		return game.OrderIncLiberty
	case "dec":
		return game.OrderDecLiberty
	default:
		fatal(fmt.Errorf("unknown order %q", s))
		return 0
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pbqp-solve:", err)
	os.Exit(exitError)
}

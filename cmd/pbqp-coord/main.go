// Command pbqp-coord runs distributed self-play training: it owns the
// trainer (networks, optimizer, replay queue, RNG stream, checkpoints)
// and serves the episode phase of every iteration to pbqp-train
// -worker processes as seed-range leases over HTTP.
//
// Usage:
//
//	pbqp-coord [-addr :8090] [-iters N] [-episodes N] [-ktrain N] [-regime ate|er]
//	           [-seed S] [-mean-n N] [-out net.gob] [-resume]
//	           [-checkpoint-dir DIR] [-checkpoint-every N] [-checkpoint-keep K]
//	           [-lease-episodes N] [-lease-ttl 10s] [-drain-timeout 30s] [-workers N]
//
// Endpoints:
//
//	POST /v1/lease/claim      claim an episode lease (fingerprint handshake)
//	POST /v1/lease/heartbeat  keep a claimed lease alive
//	POST /v1/lease/complete   submit a lease's trajectories
//	GET  /metrics             lease/heartbeat/reassignment metrics (JSON)
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 once draining)
//
// Leases expire after -lease-ttl without a heartbeat and are handed to
// the next claimant under a fresh epoch; late results from the old
// epoch are discarded. Results are merged in episode order, so the
// trained networks are bit-identical to `pbqp-train -workers 1` with
// the same training flags — no matter how many workers connect, crash,
// or get SIGKILLed mid-lease.
//
// Checkpointing, resume, and signal handling match pbqp-train: first
// SIGINT/SIGTERM checkpoints and exits cleanly, a second forces
// immediate exit 1. Training flags must match across coordinator and
// workers (the claim handshake verifies a fingerprint); arena games
// run locally on -workers goroutines.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"pbqprl/internal/checkpoint"
	"pbqprl/internal/dist"
	"pbqprl/internal/experiments"
	"pbqprl/internal/net"
	"pbqprl/internal/selfplay"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address for the lease API")
	iters := flag.Int("iters", 5, "training iterations (paper: 200)")
	episodes := flag.Int("episodes", 20, "episodes per iteration (paper: 100)")
	ktrain := flag.Int("ktrain", 50, "MCTS simulations per move (paper: 50 or 100)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "local goroutines for arena games (episodes run on remote workers)")
	regime := flag.String("regime", "ate", "training distribution: ate (zero/inf) or er (Erdős–Rényi, p_inf=1%)")
	out := flag.String("out", "pbqp-net.gob", "best-network output path")
	seed := flag.Int64("seed", 1, "training seed")
	meanN := flag.Float64("mean-n", 36, "mean graph size (paper: 100)")
	ckptDir := flag.String("checkpoint-dir", "", "checkpoint directory (default: <out>.ckpts)")
	ckptEvery := flag.Int("checkpoint-every", 1, "checkpoint every N completed iterations (0 disables periodic checkpoints)")
	ckptKeep := flag.Int("checkpoint-keep", 3, "checkpoints retained on disk")
	resume := flag.Bool("resume", false, "resume from the newest valid checkpoint in -checkpoint-dir")
	leaseEpisodes := flag.Int("lease-episodes", 4, "episodes per lease")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "lease heartbeat TTL; an unheartbeaten lease is reassigned after this")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown may wait for in-flight lease requests")
	flag.Parse()
	log.SetPrefix("pbqp-coord: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	spec := dist.Spec{
		Episodes: *episodes,
		KTrain:   *ktrain,
		Regime:   *regime,
		MeanN:    *meanN,
		Seed:     *seed,
		Net:      experiments.DefaultNetConfig(),
	}
	cfg, err := spec.SelfplayConfig()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbqp-coord: %v\n", err)
		os.Exit(2)
	}

	coord := dist.NewCoordinator(dist.CoordinatorConfig{
		Spec:          spec,
		LeaseEpisodes: *leaseEpisodes,
		LeaseTTL:      *leaseTTL,
		Logf:          log.Printf,
	})

	cfg.Workers = *workers
	cfg.Episodes = coord.RunEpisodes
	cfg.Logf = log.Printf
	trainer, err := selfplay.NewTrainer(net.New(spec.Net), cfg)
	if err != nil {
		log.Fatal(err)
	}

	if *ckptDir == "" {
		*ckptDir = *out + ".ckpts"
	}
	store, err := checkpoint.NewStore(*ckptDir, *ckptKeep)
	if err != nil {
		log.Fatal(err)
	}
	store.Logf = log.Printf

	if *resume {
		id, payload, err := store.LoadLatest()
		switch {
		case err == nil:
			if err := trainer.DecodeState(payload); err != nil {
				log.Fatal(err)
			}
			log.Printf("resumed from checkpoint %d (%d iterations complete)", id, trainer.Iter())
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			log.Printf("no checkpoint in %s; starting fresh", store.Dir())
		default:
			log.Fatal(err)
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	//pbqpvet:daemon serves the lease API until Shutdown below; ListenAndServe has no join handle
	go func() {
		log.Printf("lease API on %s, fingerprint %q", *addr, spec.Fingerprint())
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	// First signal: cancel training, commit the contiguous episode
	// prefix, checkpoint, drain, exit 0. Second signal: exit 1 now.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		cancel()
		<-sigc
		log.Printf("second signal: forcing immediate exit")
		os.Exit(1)
	}()

	save := func() {
		payload, err := trainer.EncodeState()
		if err != nil {
			log.Fatal(err)
		}
		if err := store.Save(trainer.Iter(), payload); err != nil {
			log.Fatal(err)
		}
	}

	interrupted := false
	for trainer.Iter() < *iters {
		stats, err := trainer.RunIteration(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				save()
				log.Printf("interrupted during iteration %d; state checkpointed to %s — rerun with -resume", trainer.Iter()+1, store.Dir())
				interrupted = true
				break
			}
			log.Fatal(err)
		}
		fmt.Println(stats)
		if *ckptEvery > 0 && trainer.Iter()%*ckptEvery == 0 {
			save()
		}
	}
	if !interrupted {
		if *ckptEvery > 0 && *iters%*ckptEvery != 0 {
			save()
		}
		data, err := trainer.Best().SaveBytes()
		if err != nil {
			log.Fatal(err)
		}
		if err := checkpoint.WriteFileAtomic(*out, data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved best network to %s\n", *out)
	}

	// Shutdown: stop admitting lease traffic (workers see readyz flip
	// and 503s), finish in-flight handlers, then close the listener
	// under its own short budget.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancelDrain()
	if err := coord.Drain(drainCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
}

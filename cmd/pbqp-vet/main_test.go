package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pbqprl/internal/analysis"
)

const fixtureRoot = "../../internal/analysis/testdata/src"

func TestRunFindsFixtureDiagnostics(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-only", "floatcmp", fixtureRoot + "/floatcmp"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "== on floating-point operands") {
		t.Errorf("output missing expected finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("output missing findings trailer:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-json", "-only", "panicfree", fixtureRoot + "/panicfree"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output decoded to zero findings")
	}
	for _, d := range diags {
		if d.Analyzer != "panicfree" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"../../internal/cost"}, &out); code != 0 {
		t.Fatalf("exit code = %d, want 0\noutput:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-json", "../../internal/cost"}, &out); code != 0 {
		t.Fatalf("json exit code = %d, want 0", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("clean -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean -json output decoded to %d findings", len(diags))
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"costarith", "ctxpoll", "determinism", "floatcmp", "panicfree"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

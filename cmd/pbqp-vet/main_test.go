package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pbqprl/internal/analysis"
)

const fixtureRoot = "../../internal/analysis/testdata/src"

func TestRunFindsFixtureDiagnostics(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-only", "floatcmp", fixtureRoot + "/floatcmp"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "== on floating-point operands") {
		t.Errorf("output missing expected finding:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s)") {
		t.Errorf("output missing findings trailer:\n%s", out.String())
	}
}

func TestRunJSONOutput(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-json", "-only", "panicfree", fixtureRoot + "/panicfree"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON output decoded to zero findings")
	}
	for _, d := range diags {
		if d.Analyzer != "panicfree" || d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"../../internal/cost"}, &out); code != 0 {
		t.Fatalf("exit code = %d, want 0\noutput:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-json", "../../internal/cost"}, &out); code != 0 {
		t.Fatalf("json exit code = %d, want 0", code)
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("clean -json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean -json output decoded to %d findings", len(diags))
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-list"}, &out); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{
		"atomicmix", "costarith", "ctxpoll", "determinism", "floatcmp",
		"goroleak", "hotalloc", "lockorder", "panicfree", "wgmisuse",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunCounts(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-counts", "-only", "goroleak", fixtureRoot + "/goroleak"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "analyzer") || !strings.Contains(s, "findings") || !strings.Contains(s, "ignores") {
		t.Fatalf("-counts output missing census header:\n%s", s)
	}
	// The goroleak fixture has annotated findings and one suppression
	// site; both columns must be populated on the goroleak row.
	var row string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "goroleak") {
			row = line
		}
	}
	if row == "" {
		t.Fatalf("-counts output has no goroleak row:\n%s", s)
	}
	fields := strings.Fields(row)
	if len(fields) != 3 || fields[1] == "0" || fields[2] == "0" {
		t.Errorf("goroleak census row = %q, want nonzero findings and ignores", row)
	}
}

// TestRunModuleWide checks that several packages analyzed together go
// through one module pass: findings from distinct fixture directories
// come back in one deterministically sorted report.
func TestRunModuleWide(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-json", "-only", "lockorder,wgmisuse",
		fixtureRoot + "/lockorder", fixtureRoot + "/wgmisuse"}, &out)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	seen := map[string]bool{}
	for i, d := range diags {
		seen[d.Analyzer] = true
		if i > 0 {
			prev, cur := diags[i-1], d
			if prev.File > cur.File || (prev.File == cur.File && prev.Line > cur.Line) {
				t.Errorf("diagnostics out of order: %s:%d after %s:%d", cur.File, cur.Line, prev.File, prev.Line)
			}
		}
	}
	if !seen["lockorder"] || !seen["wgmisuse"] {
		t.Errorf("expected findings from both packages, got analyzers %v", seen)
	}
	// Byte-stability: a second identical run must produce identical bytes.
	var again bytes.Buffer
	run([]string{"-json", "-only", "lockorder,wgmisuse",
		fixtureRoot + "/lockorder", fixtureRoot + "/wgmisuse"}, &again)
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Error("-json output is not byte-stable across identical runs")
	}
}

// Command pbqp-vet runs the project's domain-invariant static
// analyzers (internal/analysis) over the module:
//
//	determinism  no time.Now / global math/rand / map-order leaks in encode paths
//	costarith    no raw arithmetic or comparison on cost.Cost outside internal/cost
//	ctxpoll      every SolveCtx polls its context from each unbounded loop
//	floatcmp     no exact == / != on floats outside internal/cost
//	panicfree    no panic in library code outside Must* and init
//
// Usage:
//
//	pbqp-vet [-json] [-only analyzer,analyzer] [patterns...]
//
// Patterns are package directories; a trailing "/..." walks the tree
// (skipping testdata and vendor). With no pattern it vets "./...".
// Findings are suppressed line-by-line with
// "//pbqpvet:ignore <analyzer> <reason>" on or directly above the line.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pbqprl/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("pbqp-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "pbqp-vet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
		return 2
	}
	var findings []analysis.Diagnostic
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
			return 2
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
			return 2
		}
		findings = append(findings, diags...)
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Diagnostic{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintln(out, d)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(out, "pbqp-vet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// expandPatterns resolves package patterns to package directories.
// "dir/..." walks dir with the shared testdata-excluding walker; a bare
// pattern names a single package directory.
func expandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, p := range patterns {
		if root, ok := strings.CutSuffix(p, "/..."); ok {
			if root == "" {
				root = "."
			}
			sub, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		if !seen[p] {
			seen[p] = true
			dirs = append(dirs, p)
		}
	}
	return dirs, nil
}

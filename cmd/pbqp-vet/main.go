// Command pbqp-vet runs the project's domain-invariant static
// analyzers (internal/analysis) over the module:
//
//	atomicmix    no plain access to variables touched via sync/atomic
//	costarith    no raw arithmetic or comparison on cost.Cost outside internal/cost
//	ctxpoll      every SolveCtx polls its context from each unbounded loop
//	determinism  no time.Now / global math/rand / map-order leaks in encode paths
//	floatcmp     no exact == / != on floats outside internal/cost
//	goroleak     every go statement has a bounded exit path or a daemon marker
//	hotalloc     no allocating tensor calls on //pbqpvet:hotpath-reachable paths
//	lockorder    acyclic lock acquisition; no lock held across blocking ops
//	panicfree    no panic in library code outside Must* and init
//	wgmisuse     WaitGroup Add/Wait protocol; no by-value sync primitives
//
// Usage:
//
//	pbqp-vet [-json] [-counts] [-only analyzer,analyzer] [patterns...]
//
// Patterns are package directories; a trailing "/..." walks the tree
// (skipping testdata and vendor). With no pattern it vets "./...".
// Every requested package is loaded first and analyzed in one
// module-wide pass, so the concurrency analyzers (lockorder, goroleak,
// atomicmix, wgmisuse) see call graphs and sync-object identity across
// package boundaries. Findings are reported in one deterministic
// file/line/col/analyzer order — -json output is byte-stable run to
// run. Findings are suppressed line-by-line with
// "//pbqpvet:ignore <analyzer> <reason>" on or directly above the line;
// -counts appends a per-analyzer census of findings and suppression
// sites so suppression creep stays visible in review.
//
// Exit status: 0 clean, 1 findings, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"sort"
	"strings"

	"pbqprl/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("pbqp-vet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list the analyzers and exit")
	counts := fs.Bool("counts", false, "append per-analyzer totals of findings and //pbqpvet:ignore sites")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "pbqp-vet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
		return 2
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
		return 2
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	findings, err := analysis.RunModule(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Diagnostic{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "pbqp-vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Fprintln(out, d)
		}
	}
	if *counts {
		printCounts(out, analyzers, findings, analysis.IgnoreCensus(pkgs))
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(out, "pbqp-vet: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// printCounts renders the suppression census: per-analyzer totals of
// reported findings and //pbqpvet:ignore sites, in analyzer-name
// order, skipping all-zero rows.
func printCounts(out io.Writer, analyzers []*analysis.Analyzer, findings []analysis.Diagnostic, ignores map[string]int) {
	found := map[string]int{}
	for _, d := range findings {
		found[d.Analyzer]++
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	// Malformed-directive findings and ignores of analyzers outside the
	// -only selection still deserve a row.
	for name := range found {
		if !slices.Contains(names, name) {
			names = append(names, name)
		}
	}
	for name := range ignores {
		if !slices.Contains(names, name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(out, "%-12s %9s %9s\n", "analyzer", "findings", "ignores")
	for _, name := range names {
		if found[name] == 0 && ignores[name] == 0 {
			continue
		}
		fmt.Fprintf(out, "%-12s %9d %9d\n", name, found[name], ignores[name])
	}
}

// expandPatterns resolves package patterns to package directories.
// "dir/..." walks dir with the shared testdata-excluding walker; a bare
// pattern names a single package directory.
func expandPatterns(patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	for _, p := range patterns {
		if root, ok := strings.CutSuffix(p, "/..."); ok {
			if root == "" {
				root = "."
			}
			sub, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		if !seen[p] {
			seen[p] = true
			dirs = append(dirs, p)
		}
	}
	return dirs, nil
}

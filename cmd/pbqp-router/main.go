// Command pbqp-router runs the fleet front of the PBQP allocation
// service: a thin HTTP shard router that spreads solve traffic across
// N pbqp-serve backends with a content-addressed solution cache,
// singleflight request coalescing, consistent-hash sharding,
// health-checked failover, and per-backend circuit breakers.
//
// Usage:
//
//	pbqp-router -backends http://h1:8723,http://h2:8723 [-addr :8722]
//	            [-cache-bytes 67108864] [-max-tries 4]
//	            [-backoff-base 25ms] [-backoff-max 500ms]
//	            [-breaker-threshold 5] [-breaker-cooldown 2s]
//	            [-health-interval 1s] [-health-timeout 1s]
//	            [-workers 256] [-queue 512] [-max-body 4194304]
//	            [-default-deadline 2s] [-max-deadline 30s]
//	            [-max-vertices N] [-max-colors N]
//	            [-drain-timeout 30s]
//
// Endpoints mirror pbqp-serve:
//
//	POST /v1/solve      solve a graph; knobs via query or header:
//	                    chain/X-PBQP-Chain, deadline/X-PBQP-Deadline,
//	                    cost-mode/X-PBQP-Cost-Mode. The X-PBQP-Cache
//	                    response header reports hit/miss/coalesced.
//	GET  /metrics       metrics snapshot: cache hits/misses/evictions,
//	                    coalesced requests, per-backend tries and
//	                    failovers, breaker state, plus the request
//	                    families pbqp-serve publishes
//	GET  /healthz       liveness (200 while the process runs)
//	GET  /readyz        readiness (503 + Retry-After once draining)
//	GET  /debug/pprof/  runtime profiles
//
// A dead or draining backend is ejected by active /readyz probes and
// passive circuit breakers, and re-admitted automatically once it
// answers again; while any replica survives, requests keep completing.
// Under total backend loss the router serves cache hits and sheds
// everything else with 503 + Retry-After.
//
// On SIGTERM or SIGINT the router drains gracefully: readyz flips to
// 503, accepted requests finish, then it exits 0. A second signal —
// or the drain timeout — forces exit 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pbqprl/internal/pbqp"
	"pbqprl/internal/router"
)

func main() {
	addr := flag.String("addr", ":8722", "listen address")
	backends := flag.String("backends", "", "comma-separated pbqp-serve base URLs (required)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "solution cache memory ceiling in bytes (negative disables)")
	maxTries := flag.Int("max-tries", 4, "forwarding attempts per request across all backends")
	backoffBase := flag.Duration("backoff-base", 25*time.Millisecond, "initial failover backoff")
	backoffMax := flag.Duration("backoff-max", 500*time.Millisecond, "failover backoff ceiling")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive failures that trip a backend's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker wait before a half-open probe")
	healthInterval := flag.Duration("health-interval", time.Second, "active /readyz probe period (0 disables)")
	healthTimeout := flag.Duration("health-timeout", time.Second, "active probe timeout")
	workers := flag.Int("workers", 256, "forwarding worker pool size")
	queue := flag.Int("queue", 512, "admission queue depth; beyond it requests are shed with 429")
	maxBody := flag.Int64("max-body", 4<<20, "request body size cap in bytes")
	defaultDeadline := flag.Duration("default-deadline", 2*time.Second, "per-request budget when the client does not set one")
	maxDeadline := flag.Duration("max-deadline", 30*time.Second, "cap on client-requested deadlines")
	maxVertices := flag.Int("max-vertices", 0, "per-request vertex cap (0 = parser default)")
	maxColors := flag.Int("max-colors", 0, "per-request color cap (0 = parser default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may wait for in-flight requests")
	flag.Parse()
	if flag.NArg() != 0 || *backends == "" {
		fmt.Fprintln(os.Stderr, "usage: pbqp-router -backends http://h1:8723,http://h2:8723 [flags]")
		flag.Usage()
		os.Exit(1)
	}
	log.SetPrefix("pbqp-router: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	rt, err := router.New(router.Config{
		Backends:         splitList(*backends),
		CacheBytes:       *cacheBytes,
		MaxTries:         *maxTries,
		BackoffBase:      *backoffBase,
		BackoffMax:       *backoffMax,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		HealthInterval:   *healthInterval,
		HealthTimeout:    *healthTimeout,
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxRequestBytes:  *maxBody,
		DefaultDeadline:  *defaultDeadline,
		MaxDeadline:      *maxDeadline,
		ReadLimits:       pbqp.ReadLimits{MaxVertices: *maxVertices, MaxColors: *maxColors},
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("routing to %s, listening on %s", *backends, *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %s, draining", sig)
	}

	// Drain sequence mirrors pbqp-serve: stop admitting first (readyz
	// flips to 503 while the listener stays up), finish accepted work,
	// then close the listener.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- rt.Drain(drainCtx) }()
	select {
	case err := <-done:
		if err != nil {
			log.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		log.Printf("received second %s, aborting drain", sig)
		os.Exit(1)
	}
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("drained cleanly, exiting")
}

func splitList(spec string) []string {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Command pbqp-serve runs the PBQP allocation service: a long-running
// HTTP daemon that solves PBQP graphs POSTed in the textual format of
// internal/pbqp through a deadline-aware solver portfolio on a bounded
// worker pool.
//
// Usage:
//
//	pbqp-serve [-addr :8723] [-workers N] [-queue N] [-max-body 4194304]
//	           [-default-deadline 2s] [-max-deadline 30s]
//	           [-chain rl-bt,liberty,scholz] [-net checkpoint] [-batch N]
//	           [-k 50] [-order fixed|random|inc|dec] [-max-states N]
//	           [-max-vertices N] [-max-colors N]
//	           [-drain-timeout 30s]
//
// Endpoints:
//
//	POST /v1/solve      solve a graph; knobs via query or header:
//	                    chain/X-PBQP-Chain, deadline/X-PBQP-Deadline,
//	                    cost-mode/X-PBQP-Cost-Mode (zeroinf|spill)
//	GET  /metrics       metrics snapshot (expvar-style JSON)
//	GET  /healthz       liveness (200 while the process runs)
//	GET  /readyz        readiness (503 once draining)
//	GET  /debug/pprof/  runtime profiles
//
// Response status ↔ pbqp-solve exit code: 200 with "truncated":false ↔
// exit 0 (solved); 400/413 ↔ exit 1 (bad input); 422 ↔ exit 2
// (infeasible); 200 with "truncated":true or 504 ↔ exit 3 (deadline
// cut the search). 429 and 503 are service conditions with no CLI
// equivalent: queue full and draining.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops
// accepting solves (readyz flips to 503), finishes every accepted
// request, then exits 0. A second signal — or the drain timeout —
// forces exit 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pbqprl/internal/experiments"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/server"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", 0, "solver worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 128, "admission queue depth; beyond it requests are shed with 429")
	maxBody := flag.Int64("max-body", 4<<20, "request body size cap in bytes")
	defaultDeadline := flag.Duration("default-deadline", 2*time.Second, "per-request solve budget when the client does not set one")
	maxDeadline := flag.Duration("max-deadline", 30*time.Second, "cap on client-requested deadlines")
	chain := flag.String("chain", "rl-bt,liberty,scholz", "default solver fallback chain (comma separated; prefix a stage with decomp: to route it through the big-graph decomposition pipeline)")
	netPath := flag.String("net", "", "network checkpoint for rl stages (empty: uniform prior)")
	k := flag.Int("k", 50, "MCTS simulations per action for rl stages")
	orderFlag := flag.String("order", "dec", "coloring order for rl stages: fixed, random, inc, dec")
	maxStates := flag.Int64("max-states", 50_000_000, "per-stage search budget")
	batch := flag.Int("batch", 0, "share one network across requests through a batched evaluator, with this many leaves per microbatch (0 = clone the network per request)")
	maxVertices := flag.Int("max-vertices", 0, "per-request vertex cap (0 = parser default)")
	maxColors := flag.Int("max-colors", 0, "per-request color cap (0 = parser default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may wait for in-flight solves")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: pbqp-serve [flags]")
		flag.Usage()
		os.Exit(1)
	}
	log.SetPrefix("pbqp-serve: ")
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)

	evaluator := func() mcts.Evaluator { return mcts.Uniform{} }
	var batcher *net.Batcher
	if *netPath != "" {
		base := experiments.LoadNet(*netPath)
		if base == nil {
			log.Fatalf("cannot load network %s", *netPath)
		}
		if *batch > 0 {
			// One shared network behind a batching queue: concurrent
			// requests' leaf evaluations coalesce into microbatches,
			// with per-view results bit-identical to private clones.
			batcher = net.NewBatcher(base, *batch)
			evaluator = func() mcts.Evaluator { return batcher }
		} else {
			// Network evaluators carry scratch buffers; hand every
			// request its own clone so worker goroutines never share one.
			evaluator = func() mcts.Evaluator { return base.Clone() }
		}
	}

	srv, err := server.New(server.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		MaxRequestBytes: *maxBody,
		DefaultDeadline: *defaultDeadline,
		MaxDeadline:     *maxDeadline,
		ReadLimits:      pbqp.ReadLimits{MaxVertices: *maxVertices, MaxColors: *maxColors},
		DefaultChain:    splitChain(*chain),
		MaxStates:       *maxStates,
		K:               *k,
		Order:           parseOrder(*orderFlag),
		Evaluator:       evaluator,
		BatchLeaves:     *batch,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("received %s, draining", sig)
	}

	// Drain sequence: stop admitting solves first (new requests get
	// 503 while the listener stays up, so load balancers see readyz
	// flip rather than connection refused), finish the accepted work,
	// then close the listener and any idle connections.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Drain(drainCtx) }()
	select {
	case err := <-done:
		if err != nil {
			log.Printf("drain incomplete: %v", err)
			os.Exit(1)
		}
	case sig := <-sigc:
		log.Printf("received second %s, aborting drain", sig)
		os.Exit(1)
	}
	// Shutdown gets its own short budget: reusing drainCtx would make a
	// drain that legitimately consumed most of its timeout fail the
	// final (near-instant, in-flight solves already done) listener close.
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShutdown()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
		os.Exit(1)
	}
	if batcher != nil {
		// all solves have drained; no Evaluate can be in flight
		batcher.Close()
	}
	log.Printf("drained cleanly, exiting")
}

func splitChain(spec string) []string {
	var names []string
	for _, name := range strings.Split(spec, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	return names
}

func parseOrder(s string) game.Order {
	switch s {
	case "fixed":
		return game.OrderFixed
	case "random":
		return game.OrderRandom
	case "inc":
		return game.OrderIncLiberty
	case "dec":
		return game.OrderDecLiberty
	default:
		log.Fatalf("unknown order %q", s)
		return 0
	}
}

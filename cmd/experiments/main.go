// Command experiments regenerates the paper's tables and figures
// (DESIGN.md experiments E1–E9) and prints them to stdout.
//
// Usage:
//
//	experiments [-run all|fig6|ate-k|searchspace|deadend|ktradeoff|llvm-cost|llvm-speedup|baselines] [-v]
//
// Networks are trained on first use at laptop scale and cached under
// os.TempDir()/pbqprl-nets, so the first invocation trains for a few
// minutes and later ones start immediately.
package main

import (
	"flag"
	"fmt"
	"os"

	"pbqprl/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: all, fig6, ate-k, searchspace, deadend, ktradeoff, llvm-cost, llvm-speedup, baselines")
	verbose := flag.Bool("v", false, "print per-step progress")
	flag.Parse()

	var progress func(string)
	if *verbose {
		progress = func(s string) { fmt.Fprintln(os.Stderr, "# "+s) }
	}
	out := os.Stdout

	want := func(name string) bool { return *run == "all" || *run == name }
	ran := false
	if want("fig6") {
		experiments.PrintFig6(out, experiments.Fig6(progress))
		ran = true
	}
	if want("ate-k") {
		experiments.PrintATESuccess(out, experiments.ATESuccess(progress))
		ran = true
	}
	if want("searchspace") || want("baselines") {
		experiments.PrintSearchSpace(out, experiments.SearchSpace(progress))
		ran = true
	}
	if want("deadend") {
		experiments.PrintDeadEnd(out, experiments.DeadEndAblation(progress))
		ran = true
	}
	if want("ktradeoff") {
		experiments.PrintKTradeoff(out, experiments.KTradeoff(progress))
		ran = true
	}
	if want("llvm-cost") {
		experiments.PrintCostSums(out, experiments.CostSums(progress))
		ran = true
	}
	if want("llvm-speedup") {
		experiments.PrintSpeedups(out, experiments.Speedups(progress))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		flag.Usage()
		os.Exit(2)
	}
}

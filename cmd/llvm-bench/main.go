// Command llvm-bench compiles the synthetic llvm-test-suite stand-in
// through the mini backend and compares the register allocators of
// Section V-C: per-program spills, estimated cycles and speedup vs
// FAST, for FAST/BASIC/GREEDY/PBQP (and PBQP-RL with -rl).
//
// Usage:
//
//	llvm-bench [-program name|all] [-rl] [-k N]
package main

import (
	"flag"
	"fmt"
	"os"

	"pbqprl/internal/experiments"
	"pbqprl/internal/game"
	"pbqprl/internal/llvmsuite"
	"pbqprl/internal/perfmodel"
	"pbqprl/internal/regalloc"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve/scholz"
)

func main() {
	program := flag.String("program", "all", "benchmark name or all")
	useRL := flag.Bool("rl", false, "include the PBQP-RL allocator (trains a network on first use)")
	k := flag.Int("k", 40, "MCTS simulations per action for PBQP-RL")
	flag.Parse()

	target := regalloc.DefaultTarget()
	params := perfmodel.DefaultParams()

	fmt.Printf("%-12s %-8s %8s %14s %9s\n", "program", "alloc", "spills", "cycles", "speedup")
	for _, b := range llvmsuite.All() {
		if *program != "all" && b.Prog.Name != *program {
			continue
		}
		type result struct {
			name   string
			spills int
			cycles float64
		}
		var results []result
		fastCycles := 0.0
		collect := func(name string, alloc func(regalloc.Input) regalloc.Assignment) {
			spills, cycles := 0, 0.0
			for i, f := range b.Prog.Funcs {
				in := regalloc.NewInput(f, target, b.Allowed[i])
				asn := alloc(in)
				spills += asn.SpillCount()
				cycles += perfmodel.EstimateFunc(f, asn, params)
			}
			if name == "FAST" {
				fastCycles = cycles
			}
			results = append(results, result{name, spills, cycles})
		}
		collect("FAST", regalloc.Fast)
		collect("BASIC", regalloc.Basic)
		collect("GREEDY", regalloc.Greedy)
		collect("PBQP", func(in regalloc.Input) regalloc.Assignment {
			asn, _ := regalloc.PBQPAlloc(in, scholz.Solver{})
			return asn
		})
		if *useRL {
			n := experiments.LLVMNet(func(s string) { fmt.Fprintln(os.Stderr, "# "+s) })
			collect("PBQP-RL", func(in regalloc.Input) regalloc.Assignment {
				g := regalloc.BuildPBQP(in)
				base := (scholz.Solver{}).Solve(g)
				s := &rl.Solver{Net: n, Cfg: rl.Config{
					K: *k, Order: game.OrderFixed,
					Baseline: base.Cost, HasBaseline: true, Graded: true, HeuristicValue: true,
					MaxNodes: 2_000_000,
				}}
				asn, _ := regalloc.PBQPAlloc(in, s)
				return asn
			})
		}
		for _, r := range results {
			fmt.Printf("%-12s %-8s %8d %14.0f %8.3fx\n",
				b.Prog.Name, r.name, r.spills, r.cycles, perfmodel.Speedup(fastCycles, r.cycles))
		}
	}
}

// Command ate-alloc allocates registers for the synthetic product-level
// ATE programs (PRO1–PRO10) with any of the solvers, mirroring the
// translation workflow of Section II-B: given a test-pattern program
// known to run on its source ATE, find a register assignment valid for
// the target machine.
//
// Usage:
//
//	ate-alloc [-program PRO1|...|PRO10|all] [-solver scholz|liberty|rl|rl-bt] [-k N] [-listing]
package main

import (
	"flag"
	"fmt"
	"os"

	"pbqprl/internal/ate"
	"pbqprl/internal/experiments"
	"pbqprl/internal/game"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/scholz"
)

func main() {
	program := flag.String("program", "all", "PRO1..PRO10 or all")
	solver := flag.String("solver", "rl-bt", "scholz, liberty, rl, or rl-bt")
	k := flag.Int("k", 25, "MCTS simulations per action for rl solvers")
	listing := flag.Bool("listing", false, "print the program listing before allocating")
	flag.Parse()

	suite := ate.Suite()
	anyFailed := false
	for _, b := range suite {
		if *program != "all" && b.Program.Name != *program {
			continue
		}
		if *listing {
			fmt.Print(b.Program.String())
		}
		s := makeSolver(*solver, *k)
		res := s.Solve(b.Graph)
		fmt.Printf("%-6s n=%-3d solver=%-18s feasible=%-5v states=%d\n",
			b.Program.Name, b.Graph.NumVertices(), s.Name(), res.Feasible, res.States)
		if res.Feasible {
			fmt.Printf("       assignment:")
			for v, c := range res.Selection {
				if v > 0 && v%16 == 0 {
					fmt.Printf("\n                 ")
				}
				fmt.Printf(" v%d=r%d", v, c)
			}
			fmt.Println()
		} else {
			anyFailed = true
		}
	}
	if anyFailed {
		os.Exit(1)
	}
}

func makeSolver(name string, k int) solve.Solver {
	switch name {
	case "scholz":
		return scholz.Solver{}
	case "liberty":
		return liberty.Solver{MaxStates: 50_000_000}
	case "rl", "rl-bt":
		n := experiments.TrainedNet(experiments.SpecK50(), func(s string) {
			fmt.Fprintln(os.Stderr, "# "+s)
		})
		// increasing-liberty is the robust order at laptop training
		// scale (see EXPERIMENTS.md E1)
		return &rl.Solver{Net: n, Cfg: rl.Config{
			K:            k,
			Order:        game.OrderIncLiberty,
			Backtrack:    name == "rl-bt",
			ReinvokeMCTS: true,
			MaxNodes:     500_000,
		}}
	default:
		fmt.Fprintf(os.Stderr, "ate-alloc: unknown solver %q\n", name)
		os.Exit(2)
		return nil
	}
}

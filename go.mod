module pbqprl

go 1.22

// Package pbqprl is a from-scratch Go implementation of "Solving
// PBQP-Based Register Allocation using Deep Reinforcement Learning"
// (Kim, Park, Moon — CGO 2022): PBQP problem graphs, the classical
// solvers (exact, Scholz–Eckstein reduction, liberty-based
// enumeration), an AlphaZero-style Deep-RL solver (GCN embedding + MCTS
// + self-play training) with backtracking and liberty coloring orders,
// plus the two evaluation substrates — a synthetic ATE (automated test
// equipment) machine model and a mini compiler backend with
// FAST/BASIC/GREEDY/PBQP register allocators.
//
// This file is the public facade: it re-exports the library's primary
// types and constructors so that downstream users need a single import.
//
//	g := pbqprl.NewGraph(3, 2)            // build a PBQP problem
//	res := pbqprl.Scholz().Solve(g)       // solve by reduction
//	s := pbqprl.NewDeepRL(net, cfg)       // or with MCTS + DNN
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package pbqprl

import (
	"context"
	"io"
	"math/rand"
	"time"

	"pbqprl/internal/cost"
	"pbqprl/internal/decomp"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/reduce"
	"pbqprl/internal/rl"
	"pbqprl/internal/selfplay"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/anneal"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/portfolio"
	"pbqprl/internal/solve/scholz"
)

// Core problem types.
type (
	// Cost is a PBQP cost entry: a finite real or +∞ (Inf).
	Cost = cost.Cost
	// Vector is a per-vertex cost vector.
	Vector = cost.Vector
	// Matrix is a per-edge cost matrix.
	Matrix = cost.Matrix
	// Graph is a PBQP problem graph.
	Graph = pbqp.Graph
	// Selection assigns one color per vertex.
	Selection = pbqp.Selection
)

// Inf is the infinite (forbidden) cost.
const Inf = cost.Inf

// NewGraph returns an empty PBQP graph with n vertices and m colors.
func NewGraph(n, m int) *Graph { return pbqp.New(n, m) }

// ReadGraph parses the textual PBQP format.
func ReadGraph(r io.Reader) (*Graph, error) { return pbqp.Read(r) }

// WriteGraph serializes a graph in the textual PBQP format.
func WriteGraph(w io.Writer, g *Graph) error { return pbqp.Write(w, g) }

// Solver is the common solver interface; Result carries the selection,
// cost, feasibility, the Truncated (deadline-cut) flag, and the
// explored-state count. ContextSolver adds cooperative cancellation:
// all solvers in this package implement it.
type (
	Solver        = solve.Solver
	ContextSolver = solve.ContextSolver
	Result        = solve.Result
)

// SolveCtx solves g with s under ctx. Solvers implementing
// ContextSolver stop at cancellation and return their best feasible
// selection found so far with Result.Truncated set; legacy solvers are
// only checked before they start.
func SolveCtx(ctx context.Context, s Solver, g *Graph) Result {
	return solve.SolveCtx(ctx, s, g)
}

// SolveWithTimeout solves g with s under a wall-clock deadline; on
// expiry the result is the solver's best-so-far, marked Truncated.
func SolveWithTimeout(s Solver, g *Graph, timeout time.Duration) Result {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return solve.SolveCtx(ctx, s, g)
}

// WithContext adapts a legacy Solver to ContextSolver (best-effort: the
// context is only checked before the solve starts).
func WithContext(s Solver) ContextSolver { return solve.WithContext(s) }

// Solver portfolio: a fallback chain under one time budget with panic
// isolation per stage (see internal/solve/portfolio).
type (
	// PortfolioSolver runs a fallback chain of solvers, splitting a
	// total time budget across stages, recovering stage panics, and
	// keeping the cheapest feasible result.
	PortfolioSolver = portfolio.Solver
	// PortfolioStage is one solver in the chain with its budget share.
	PortfolioStage = portfolio.Stage
	// PortfolioOutcome reports how one stage went.
	PortfolioOutcome = portfolio.Outcome
	// PortfolioStats reports a full portfolio run.
	PortfolioStats = portfolio.Stats
)

// Portfolio builds a deadline-aware fallback chain (e.g. Deep-RL →
// Liberty → Scholz) with an even budget split and stop-on-feasible
// semantics. budget 0 means no time limit of its own — pass a context
// via SolveCtx to bound it externally.
func Portfolio(budget time.Duration, chain ...Solver) *PortfolioSolver {
	return portfolio.New(budget, chain...)
}

// Brute returns the exact branch-and-bound solver (exponential; use as
// an oracle or on small problems). maxStates caps the search, 0 = none.
func Brute(maxStates int64) Solver { return brute.Solver{MaxStates: maxStates} }

// Scholz returns the original Scholz–Eckstein reduction solver.
func Scholz() Solver { return scholz.Solver{} }

// Liberty returns the liberty-based enumeration solver of Kim et al.
// (TACO 2020). maxStates caps the enumeration, 0 = none.
func Liberty(maxStates int64) Solver { return liberty.Solver{MaxStates: maxStates} }

// Anneal returns the simulated-annealing local-search solver. steps = 0
// picks a size-proportional default.
func Anneal(steps int, seed int64) Solver { return anneal.Solver{Steps: steps, Seed: seed} }

// Big-graph decomposition pipeline (internal/decomp): exact R0/R1/R2
// reduction, block-cut splitting of the residual, per-block solving
// with a wrapped inner solver, and recombination.
type (
	// DecompSolver wraps any Solver into a decomposing big-graph
	// solver; set Workers > 1 for parallel component solving with a
	// concurrency-safe inner solver.
	DecompSolver = decomp.Solver
	// DecompInfo reports what a decomposition did to one instance.
	DecompInfo = decomp.Info
)

// Decompose wraps inner in the big-graph decomposition pipeline with
// sequential component solving. Exact for an exact inner solver.
func Decompose(inner Solver) *DecompSolver { return decomp.Wrap(inner) }

// Reduction is the result of the exact R0/R1/R2 preprocessing pass.
type Reduction = reduce.Reduction

// Reduce exactly reduces g (without mutating it); solve the returned
// remainder with any solver and call Expand to recover a full
// selection.
func Reduce(g *Graph) *Reduction { return reduce.Apply(g) }

// Deep-RL solver types.
type (
	// Net is the paper's combined GCN + ResNet policy/value network.
	Net = net.PBQPNet
	// NetConfig sizes a Net.
	NetConfig = net.Config
	// DeepRLConfig tunes an inference run (k, order, backtracking...).
	DeepRLConfig = rl.Config
	// DeepRL is the MCTS+DNN PBQP solver.
	DeepRL = rl.Solver
	// Order is a coloring order.
	Order = game.Order
	// Evaluator supplies MCTS priors/values; *Net implements it, and
	// UniformEvaluator provides the untrained baseline.
	Evaluator = mcts.Evaluator
	// UniformEvaluator is an Evaluator with uniform legal priors.
	UniformEvaluator = mcts.Uniform
)

// Coloring orders (Section IV-E).
const (
	OrderFixed      = game.OrderFixed
	OrderRandom     = game.OrderRandom
	OrderIncLiberty = game.OrderIncLiberty
	OrderDecLiberty = game.OrderDecLiberty
)

// NewNet builds a policy/value network.
func NewNet(cfg NetConfig) *Net { return net.New(cfg) }

// NewDeepRL builds the Deep-RL solver around an evaluator.
func NewDeepRL(evaluator Evaluator, cfg DeepRLConfig) *DeepRL {
	return &DeepRL{Net: evaluator, Cfg: cfg}
}

// Training pipeline.
type (
	// Trainer runs the self-play loop of Section IV-A.
	Trainer = selfplay.Trainer
	// TrainerConfig tunes it; Generate supplies episode graphs.
	TrainerConfig = selfplay.Config
	// IterStats summarizes one training iteration.
	IterStats = selfplay.IterStats
)

// NewTrainer wraps selfplay.NewTrainer; it returns an error for an
// invalid configuration (e.g. a missing Generate function).
func NewTrainer(n *Net, cfg TrainerConfig) (*Trainer, error) { return selfplay.NewTrainer(n, cfg) }

// MustTrainer wraps selfplay.New, which panics on an invalid
// configuration; it is a convenience for tests and examples.
func MustTrainer(n *Net, cfg TrainerConfig) *Trainer { return selfplay.New(n, cfg) }

// Random problem generators (the paper's training distributions, plus
// the big-graph workload for the decomposition pipeline).
type (
	ErdosRenyiConfig  = randgraph.Config
	ZeroInfConfig     = randgraph.ZeroInfConfig
	LargeSparseConfig = randgraph.LargeSparseConfig
)

// ErdosRenyi generates a random PBQP graph (Section V-A).
func ErdosRenyi(rng *rand.Rand, cfg ErdosRenyiConfig) *Graph {
	return randgraph.ErdosRenyi(rng, cfg)
}

// ZeroInf generates an ATE-style zero/infinity graph with a guaranteed
// solution.
func ZeroInf(rng *rand.Rand, cfg ZeroInfConfig) (*Graph, Selection) {
	return randgraph.ZeroInf(rng, cfg)
}

// LargeSparse generates a large sparse PBQP graph as chains of dense
// clusters joined by bridges — the workload the decomposition pipeline
// targets.
func LargeSparse(rng *rand.Rand, cfg LargeSparseConfig) *Graph {
	return randgraph.LargeSparse(rng, cfg)
}

// Package pbqp implements Partitioned Boolean Quadratic Programming
// problem graphs as used for register allocation (Scholz & Eckstein 2002).
//
// A PBQP problem is an undirected graph whose vertices carry an m-sized
// cost vector and whose edges carry an m×m cost matrix; entries are
// extended reals (finite or +∞). A solution assigns one of m colors to
// every vertex; its cost is the sum of the selected vector entries plus,
// for every edge, the matrix entry selected by the two endpoint colors
// (Equation 1 of the paper). The goal is the minimum-cost assignment.
//
// The Graph type is mutable: solvers remove vertices, fold edge costs
// into vertex vectors, and insert new edges (the R2 reduction). Edge
// matrices are stored in both orientations so that EdgeCost(u, v) is
// always addressed as (color of u, color of v); mutators keep the two
// orientations in sync.
package pbqp

import (
	"fmt"
	"sort"

	"pbqprl/internal/cost"
)

// Graph is a PBQP problem graph with a uniform color count m.
// Vertices are identified by their index in [0, NumVertices()).
// Removed vertices stay addressable but are no longer alive.
type Graph struct {
	m     int
	vecs  []cost.Vector
	alive []bool
	live  int
	adj   []map[int]*cost.Matrix // adj[u][v] is oriented (rows = u's color)
}

// New returns a graph with n vertices, m colors, zero cost vectors and
// no edges. It panics if n < 0 or m <= 0.
func New(n, m int) *Graph {
	if n < 0 || m <= 0 {
		//pbqpvet:ignore panicfree documented constructor contract; dimensions are code constants, not input data
		panic(fmt.Sprintf("pbqp: invalid dimensions n=%d m=%d", n, m))
	}
	g := &Graph{
		m:     m,
		vecs:  make([]cost.Vector, n),
		alive: make([]bool, n),
		live:  n,
		adj:   make([]map[int]*cost.Matrix, n),
	}
	for u := 0; u < n; u++ {
		g.vecs[u] = cost.NewVector(m)
		g.alive[u] = true
		g.adj[u] = make(map[int]*cost.Matrix)
	}
	return g
}

// M returns the number of colors per vertex.
func (g *Graph) M() int { return g.m }

// NumVertices returns the original vertex count, including removed ones.
func (g *Graph) NumVertices() int { return len(g.vecs) }

// AliveCount returns the number of vertices not yet removed.
func (g *Graph) AliveCount() int { return g.live }

// Alive reports whether vertex u has not been removed.
func (g *Graph) Alive(u int) bool { return g.alive[u] }

// VertexCost returns vertex u's cost vector. The returned slice aliases
// graph storage; use AddToVertexCost or SetVertexCost to mutate.
func (g *Graph) VertexCost(u int) cost.Vector { return g.vecs[u] }

// SetVertexCost replaces vertex u's cost vector with a copy of v.
// It panics if len(v) != M().
func (g *Graph) SetVertexCost(u int, v cost.Vector) {
	if len(v) != g.m {
		//pbqpvet:ignore panicfree shape/dimension mismatch is a caller bug, mirrors the slice-bounds panic
		panic("pbqp: vertex cost vector has wrong length")
	}
	g.vecs[u] = v.Clone()
}

// AddToVertexCost adds v elementwise into vertex u's cost vector.
func (g *Graph) AddToVertexCost(u int, v cost.Vector) {
	g.vecs[u].AddInPlace(v)
}

// Liberty returns the number of finite entries in u's cost vector: the
// number of colors currently selectable for u.
func (g *Graph) Liberty(u int) int { return g.vecs[u].Liberty() }

// HasEdge reports whether the edge (u, v) is present.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.adj[u][v]
	return ok
}

// EdgeCost returns the cost matrix of edge (u, v) oriented so that rows
// index u's color and columns index v's color, or nil if no edge exists.
// The returned matrix aliases graph storage; treat it as read-only and
// mutate through SetEdgeCost/AddEdgeCost.
func (g *Graph) EdgeCost(u, v int) *cost.Matrix { return g.adj[u][v] }

// SetEdgeCost installs matrix mat (oriented with rows = u's color) as the
// cost of edge (u, v), replacing any existing edge. It panics on a self
// loop, on dead endpoints, or if mat is not M()×M().
func (g *Graph) SetEdgeCost(u, v int, mat *cost.Matrix) {
	g.checkEdge(u, v)
	if mat.Rows != g.m || mat.Cols != g.m {
		//pbqpvet:ignore panicfree shape/dimension mismatch is a caller bug, mirrors the slice-bounds panic
		panic("pbqp: edge cost matrix has wrong shape")
	}
	g.adj[u][v] = mat.Clone()
	g.adj[v][u] = mat.Transpose()
}

// AddEdgeCost adds mat (oriented with rows = u's color) into the cost of
// edge (u, v), creating the edge if absent.
func (g *Graph) AddEdgeCost(u, v int, mat *cost.Matrix) {
	g.checkEdge(u, v)
	if mat.Rows != g.m || mat.Cols != g.m {
		//pbqpvet:ignore panicfree shape/dimension mismatch is a caller bug, mirrors the slice-bounds panic
		panic("pbqp: edge cost matrix has wrong shape")
	}
	if existing, ok := g.adj[u][v]; ok {
		existing.AddInPlace(mat)
		g.adj[v][u].AddInPlace(mat.Transpose())
		return
	}
	g.adj[u][v] = mat.Clone()
	g.adj[v][u] = mat.Transpose()
}

func (g *Graph) checkEdge(u, v int) {
	if u == v {
		//pbqpvet:ignore panicfree documented API-contract panic on caller error, mirrors the slice-bounds panic
		panic("pbqp: self loop")
	}
	if !g.alive[u] || !g.alive[v] {
		//pbqpvet:ignore panicfree documented API-contract panic on caller error, mirrors the slice-bounds panic
		panic("pbqp: edge endpoint is not alive")
	}
}

// RemoveEdge deletes edge (u, v) if present.
func (g *Graph) RemoveEdge(u, v int) {
	delete(g.adj[u], v)
	delete(g.adj[v], u)
}

// RemoveVertex detaches vertex u: all incident edges are deleted and the
// vertex becomes dead. Its cost vector is retained for inspection.
func (g *Graph) RemoveVertex(u int) {
	if !g.alive[u] {
		return
	}
	for v := range g.adj[u] {
		delete(g.adj[v], u)
	}
	g.adj[u] = make(map[int]*cost.Matrix)
	g.alive[u] = false
	g.live--
}

// Neighbors returns the alive neighbors of u in ascending order.
func (g *Graph) Neighbors(u int) []int {
	ns := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		ns = append(ns, v)
	}
	sort.Ints(ns)
	return ns
}

// Degree returns the number of incident edges of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Vertices returns the alive vertices in ascending order.
func (g *Graph) Vertices() []int {
	vs := make([]int, 0, g.live)
	for u := range g.vecs {
		if g.alive[u] {
			vs = append(vs, u)
		}
	}
	return vs
}

// Edge is an undirected edge with its canonical (U < V) orientation.
type Edge struct {
	U, V int
	M    *cost.Matrix // rows = U's color, columns = V's color
}

// Edges returns the alive edges in canonical order, sorted by (U, V).
// The matrices alias graph storage.
func (g *Graph) Edges() []Edge {
	var es []Edge
	for u := range g.vecs {
		for v, m := range g.adj[u] {
			if u < v {
				es = append(es, Edge{U: u, V: v, M: m})
			}
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
	return es
}

// NumEdges returns the number of alive edges.
func (g *Graph) NumEdges() int {
	n := 0
	for u := range g.vecs {
		n += len(g.adj[u])
	}
	return n / 2
}

// Clone returns a deep copy of g, including dead-vertex bookkeeping.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		m:     g.m,
		vecs:  make([]cost.Vector, len(g.vecs)),
		alive: make([]bool, len(g.alive)),
		live:  g.live,
		adj:   make([]map[int]*cost.Matrix, len(g.adj)),
	}
	copy(c.alive, g.alive)
	for u := range g.vecs {
		c.vecs[u] = g.vecs[u].Clone()
		c.adj[u] = make(map[int]*cost.Matrix, len(g.adj[u]))
	}
	for u := range g.adj {
		for v, m := range g.adj[u] {
			if u < v {
				cm := m.Clone()
				c.adj[u][v] = cm
				c.adj[v][u] = cm.Transpose()
			}
		}
	}
	return c
}

// Selection is a full color assignment: Selection[u] is the color chosen
// for vertex u, in [0, M()).
type Selection []int

// Clone returns a copy of s.
func (s Selection) Clone() Selection {
	t := make(Selection, len(s))
	copy(t, s)
	return t
}

// TotalCost evaluates Equation 1 for the given selection over all alive
// vertices and edges. It panics if the selection is too short or contains
// an out-of-range color for an alive vertex.
func (g *Graph) TotalCost(sel Selection) cost.Cost {
	var sum cost.Cost
	for u := range g.vecs {
		if !g.alive[u] {
			continue
		}
		if u >= len(sel) || sel[u] < 0 || sel[u] >= g.m {
			//pbqpvet:ignore panicfree documented contract: selections are produced by solvers, an invalid one is a solver bug
			panic(fmt.Sprintf("pbqp: invalid selection for vertex %d", u))
		}
		sum = sum.Add(g.vecs[u][sel[u]])
	}
	for _, e := range g.Edges() {
		sum = sum.Add(e.M.At(sel[e.U], sel[e.V]))
	}
	return sum
}

// ColorVertex applies the paper's transition T (Section III-C): it adds
// row a of every incident edge matrix into the neighbor's cost vector,
// then detaches vertex u. It returns u's own selected cost (the edge
// contributions now live in the neighbors' vectors). It panics if u is
// dead or a is out of range.
func (g *Graph) ColorVertex(u, a int) cost.Cost {
	if !g.alive[u] {
		//pbqpvet:ignore panicfree documented API-contract panic on caller error, mirrors the slice-bounds panic
		panic("pbqp: coloring a dead vertex")
	}
	if a < 0 || a >= g.m {
		//pbqpvet:ignore panicfree documented API-contract panic on caller error, mirrors the slice-bounds panic
		panic("pbqp: color out of range")
	}
	own := g.vecs[u][a]
	for v, m := range g.adj[u] {
		g.vecs[v].AddInPlace(m.Row(a))
	}
	g.RemoveVertex(u)
	return own
}

// Permute returns a new graph in which new vertex i corresponds to old
// vertex order[i]. The order must be a permutation of the alive vertices
// of g; dead vertices are dropped. Permute is how solvers renumber a
// graph into their chosen coloring order.
func (g *Graph) Permute(order []int) *Graph {
	if len(order) != g.live {
		//pbqpvet:ignore panicfree documented contract: the order comes from the solver's own bookkeeping
		panic("pbqp: order must list every alive vertex exactly once")
	}
	pos := make(map[int]int, len(order))
	for i, u := range order {
		if !g.alive[u] {
			//pbqpvet:ignore panicfree documented contract: the order comes from the solver's own bookkeeping
			panic("pbqp: order contains a dead vertex")
		}
		if _, dup := pos[u]; dup {
			//pbqpvet:ignore panicfree documented contract: the order comes from the solver's own bookkeeping
			panic("pbqp: order contains a duplicate vertex")
		}
		pos[u] = i
	}
	h := New(len(order), g.m)
	for i, u := range order {
		h.SetVertexCost(i, g.vecs[u])
	}
	for _, e := range g.Edges() {
		h.SetEdgeCost(pos[e.U], pos[e.V], e.M)
	}
	return h
}

// Validate checks internal consistency: orientation symmetry, shape, and
// liveness invariants. It is intended for tests and debugging.
func (g *Graph) Validate() error {
	live := 0
	for u := range g.vecs {
		if g.alive[u] {
			live++
		}
		if len(g.vecs[u]) != g.m {
			return fmt.Errorf("pbqp: vertex %d has vector length %d, want %d", u, len(g.vecs[u]), g.m)
		}
		for v, m := range g.adj[u] {
			if u == v {
				return fmt.Errorf("pbqp: self loop at %d", u)
			}
			if !g.alive[u] || !g.alive[v] {
				return fmt.Errorf("pbqp: edge (%d,%d) touches dead vertex", u, v)
			}
			back, ok := g.adj[v][u]
			if !ok {
				return fmt.Errorf("pbqp: edge (%d,%d) missing reverse orientation", u, v)
			}
			if !m.Equal(back.Transpose()) {
				return fmt.Errorf("pbqp: edge (%d,%d) orientations disagree", u, v)
			}
		}
	}
	if live != g.live {
		return fmt.Errorf("pbqp: live count %d, counted %d", g.live, live)
	}
	return nil
}

package pbqp

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
)

// randCSRGraph builds a random graph, optionally killing some vertices
// so the snapshot has to renumber around dead slots.
func randCSRGraph(t *testing.T, rng *rand.Rand, n, m int, pEdge float64, kill int) *Graph {
	t.Helper()
	g := New(n, m)
	for u := 0; u < n; u++ {
		vec := make(cost.Vector, m)
		for c := range vec {
			vec[c] = cost.Cost(rng.Intn(7))
		}
		g.SetVertexCost(u, vec)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() >= pEdge {
				continue
			}
			mat := cost.NewMatrix(m, m)
			mat.Set(rng.Intn(m), rng.Intn(m), cost.Cost(1+rng.Intn(5)))
			g.SetEdgeCost(u, v, mat)
		}
	}
	for i := 0; i < kill; i++ {
		g.RemoveVertex(rng.Intn(n))
	}
	return g
}

func TestCSRMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randCSRGraph(t, rng, 2+rng.Intn(20), 1+rng.Intn(3), 0.3, rng.Intn(4))
		c := NewCSR(g)
		if c.Len() != g.AliveCount() {
			t.Fatalf("Len = %d, alive = %d", c.Len(), g.AliveCount())
		}
		if c.NumEdges() != g.NumEdges() {
			t.Fatalf("NumEdges = %d, graph has %d", c.NumEdges(), g.NumEdges())
		}
		if c.M() != g.M() {
			t.Fatalf("M = %d, want %d", c.M(), g.M())
		}
		for u := 0; u < g.NumVertices(); u++ {
			if !g.Alive(u) {
				if c.IndexOf(u) != -1 {
					t.Fatalf("dead vertex %d has CSR index %d", u, c.IndexOf(u))
				}
				continue
			}
			i := c.IndexOf(u)
			if i < 0 || c.ID(i) != u {
				t.Fatalf("vertex %d maps to CSR %d which maps back to %d", u, i, c.ID(i))
			}
			want := g.Neighbors(u)
			nbrs, mats := c.Row(i)
			if len(nbrs) != len(want) || c.Degree(i) != len(want) {
				t.Fatalf("vertex %d: CSR degree %d, graph degree %d", u, len(nbrs), len(want))
			}
			// Graph.Neighbors sorts by vertex id; CSR rows sort by CSR
			// index. Dense renumbering preserves relative order, so the
			// rows must agree element-wise after mapping back.
			for k, j := range nbrs {
				if c.ID(int(j)) != want[k] {
					t.Fatalf("vertex %d neighbor %d: CSR %d, graph %d", u, k, c.ID(int(j)), want[k])
				}
				if mats[k] != g.EdgeCost(u, want[k]) {
					t.Fatalf("vertex %d neighbor %d: matrix does not alias EdgeCost", u, k)
				}
				if k > 0 && nbrs[k-1] >= j {
					t.Fatalf("vertex %d: row not strictly ascending", u)
				}
			}
		}
	}
}

func TestCSREmptyGraph(t *testing.T) {
	c := NewCSR(New(0, 2))
	if c.Len() != 0 || c.NumEdges() != 0 {
		t.Fatalf("empty graph snapshot: Len=%d NumEdges=%d", c.Len(), c.NumEdges())
	}
}

var csrSink int64

// TestCSRTraversalAllocFree pins the hot-path promise: once built, a
// full sweep over every neighbor row performs zero allocations.
func TestCSRTraversalAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randCSRGraph(t, rng, 200, 2, 0.05, 10)
	c := NewCSR(g)
	allocs := testing.AllocsPerRun(20, func() {
		var sum int64
		for i := 0; i < c.Len(); i++ {
			for _, j := range c.Neighbors(i) {
				sum += int64(j)
			}
			nbrs, mats := c.Row(i)
			sum += int64(len(nbrs)) + int64(len(mats))
		}
		csrSink = sum
	})
	if allocs != 0 {
		t.Fatalf("CSR traversal allocates %.1f times per sweep, want 0", allocs)
	}
}

package pbqp

import (
	"bufio"
	"fmt"
	"io"

	"pbqprl/internal/cost"
)

// WriteDOT renders g in Graphviz DOT form for visualization: one node
// per alive vertex labeled with its cost vector (liberty highlighted),
// one edge per cost matrix. Matrices render as a compact summary — the
// count of infinite entries and the finite minimum — because full m×m
// tables are unreadable at register-allocation sizes.
func WriteDOT(w io.Writer, g *Graph, name string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", name)
	fmt.Fprintln(bw, "  node [shape=box, fontname=\"monospace\"];")
	for _, u := range g.Vertices() {
		vec := g.VertexCost(u)
		fmt.Fprintf(bw, "  v%d [label=\"v%d %s\\nliberty %d/%d\"];\n",
			u, u, vec, vec.Liberty(), g.M())
	}
	for _, e := range g.Edges() {
		inf := 0
		for _, c := range e.M.Data {
			if c.IsInf() {
				inf++
			}
		}
		minC, _ := cost.Vector(e.M.Data).Min()
		label := fmt.Sprintf("%d inf", inf)
		if !minC.IsInf() && !minC.IsZero() {
			label += fmt.Sprintf(", min %s", minC)
		}
		fmt.Fprintf(bw, "  v%d -- v%d [label=%q];\n", e.U, e.V, label)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

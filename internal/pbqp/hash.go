package pbqp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// CanonicalHash returns the SHA-256 of g's canonical textual
// serialization — the exact bytes Write produces. Write is the
// canonical form: vertices ascend, edges are emitted in the sorted
// order Edges() guarantees, and FuzzReadGraph pins the whole
// Read→Write round trip byte-stable, so two graphs hash equal exactly
// when their serializations are byte-identical. The serving layer keys
// its content-addressed solution cache and its consistent-hash shard
// selection on this digest.
//
// Graphs with removed vertices have no canonical serialization and
// return Write's error.
func CanonicalHash(g *Graph) ([sha256.Size]byte, error) {
	h := sha256.New()
	if err := Write(h, g); err != nil {
		return [sha256.Size]byte{}, fmt.Errorf("pbqp: canonical hash: %w", err)
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum, nil
}

// CanonicalHashString is CanonicalHash rendered as lowercase hex — the
// form used in cache keys and log lines.
func CanonicalHashString(g *Graph) (string, error) {
	sum, err := CanonicalHash(g)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(sum[:]), nil
}

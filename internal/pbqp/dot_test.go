package pbqp

import (
	"strings"
	"testing"

	"pbqprl/internal/cost"
)

func TestWriteDOT(t *testing.T) {
	g := New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, cost.Inf})
	mat := cost.NewMatrix(2, 2)
	mat.Set(0, 0, cost.Inf)
	mat.Set(1, 1, 3)
	g.SetEdgeCost(0, 1, mat)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`graph "test"`, "v0", "v1", "v2", "liberty 1/2", "v0 -- v1", "1 inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTSkipsDeadVertices(t *testing.T) {
	g := New(2, 2)
	g.RemoveVertex(0)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, "x"); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "v0 [") {
		t.Error("dead vertex rendered")
	}
}

package pbqp

import (
	"bytes"
	"strings"
	"testing"

	"pbqprl/internal/cost"
)

// TestReadRejectsHostileInput exercises the parser hardening: every
// case must produce a descriptive error, never a panic, a silent
// misparse, or a giant allocation.
func TestReadRejectsHostileInput(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"empty", "", "missing header"},
		{"comment only", "# nothing\n", "missing header"},
		{"negative n", "pbqp -1 2\n", "bad dimensions"},
		{"zero m", "pbqp 3 0\n", "bad dimensions"},
		{"negative m", "pbqp 3 -2\n", "bad dimensions"},
		{"absurd n", "pbqp 2000000000 2\n", "exceeds the limit"},
		{"absurd m", "pbqp 2 99999\n", "exceeds the limit"},
		{"absurd product", "pbqp 4000000 4000\n", "cost-entry limit"},
		{"duplicate header", "pbqp 1 1\npbqp 1 1\n", "duplicate header"},
		{"vertex before header", "v 0 1\n", "vertex before header"},
		{"edge before header", "e 0 1 0\n", "edge before header"},
		{"bad vertex id", "pbqp 2 2\nv 7 0 0\n", "bad vertex id"},
		{"duplicate vertex", "pbqp 2 2\nv 0 1 2\nv 0 3 4\n", "duplicate vertex"},
		{"truncated vertex line", "pbqp 2 2\nv 0 1\n", "wants 2 costs"},
		{"truncated edge line", "pbqp 2 2\ne 0 1 1 2 3\n", "wants 4 costs"},
		{"self loop", "pbqp 2 2\ne 1 1 0 0 0 0\n", "bad edge endpoints"},
		{"edge out of range", "pbqp 2 2\ne 0 5 0 0 0 0\n", "bad edge endpoints"},
		{"duplicate edge", "pbqp 2 2\ne 0 1 0 0 0 0\ne 0 1 1 1 1 1\n", "duplicate edge"},
		{"duplicate edge reversed", "pbqp 2 2\ne 0 1 0 0 0 0\ne 1 0 1 1 1 1\n", "duplicate edge"},
		{"NaN cost", "pbqp 1 2\nv 0 NaN 0\n", "not a valid PBQP cost"},
		{"negative infinity", "pbqp 1 2\nv 0 -inf 0\n", "not a valid PBQP cost"},
		{"reserved range positive", "pbqp 1 2\nv 0 1e308 0\n", "reserved infinite range"},
		{"reserved range negative", "pbqp 1 2\nv 0 -1e308 0\n", "reserved infinite range"},
		{"reserved range edge", "pbqp 2 1\ne 0 1 8e307\n", "reserved infinite range"},
		{"unknown directive", "pbqp 1 1\nq 0\n", "unknown directive"},
		{"garbage cost", "pbqp 1 1\nv 0 zebra\n", "parse"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Read(%q) accepted, graph %v", tc.in, g)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Read(%q) error %q, want it to mention %q", tc.in, err, tc.wantErr)
			}
		})
	}
}

// TestReadWithLimits pins the per-call cap behaviour: tightened limits
// reject graphs the defaults accept, unset fields fall back to the
// defaults, and nothing can loosen past the package ceiling.
func TestReadWithLimits(t *testing.T) {
	in := "pbqp 10 4\n"
	if _, err := Read(strings.NewReader(in)); err != nil {
		t.Fatalf("defaults reject a 10×4 graph: %v", err)
	}
	cases := []struct {
		name    string
		limits  ReadLimits
		wantErr string
	}{
		{"tight vertices", ReadLimits{MaxVertices: 4}, "vertex count 10 exceeds the limit 4"},
		{"tight colors", ReadLimits{MaxColors: 3}, "color count 4 exceeds the limit 3"},
		{"tight product", ReadLimits{MaxCostEntries: 39}, "cost-entry limit"},
		{"exact fit", ReadLimits{MaxVertices: 10, MaxColors: 4, MaxCostEntries: 40}, ""},
		{"zero fields use defaults", ReadLimits{}, ""},
		{"negative fields use defaults", ReadLimits{MaxVertices: -1, MaxColors: -1, MaxCostEntries: -1}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadWithLimits(strings.NewReader(in), tc.limits)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("ReadWithLimits(%+v) rejected: %v", tc.limits, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ReadWithLimits(%+v) error %v, want it to mention %q", tc.limits, err, tc.wantErr)
			}
		})
	}

	// Oversized limits clamp to the package ceiling rather than loosen it.
	huge := ReadLimits{MaxVertices: 1 << 40, MaxColors: 1 << 40, MaxCostEntries: 1 << 40}
	if _, err := ReadWithLimits(strings.NewReader("pbqp 2000000000 2\n"), huge); err == nil ||
		!strings.Contains(err.Error(), "exceeds the limit") {
		t.Fatalf("oversized limits loosened the package ceiling: err=%v", err)
	}
}

// TestReadAcceptsExplicitInfinitySpellings pins that the reserved-range
// rejection does not catch intentional infinities.
func TestReadAcceptsExplicitInfinitySpellings(t *testing.T) {
	for _, spelling := range []string{"inf", "INF", "Inf", "+inf", "infinity"} {
		g, err := Read(strings.NewReader("pbqp 1 2\nv 0 " + spelling + " 3\n"))
		if err != nil {
			t.Fatalf("spelling %q rejected: %v", spelling, err)
		}
		if !g.VertexCost(0)[0].IsInf() || g.VertexCost(0)[1] != 3 {
			t.Fatalf("spelling %q parsed as %v", spelling, g.VertexCost(0))
		}
	}
}

// FuzzReadGraph asserts the parser's two safety properties on arbitrary
// bytes: it never panics, and anything it accepts serializes through
// Write→Read→Write byte-stably.
func FuzzReadGraph(f *testing.F) {
	f.Add([]byte("pbqp 3 2\nv 0 5 2\nv 1 5 0\ne 0 1 0 inf inf 4\n"))
	f.Add([]byte("pbqp 1 1\n"))
	f.Add([]byte("pbqp 2 2\n# comment\nv 1 inf 0\ne 0 1 1 2 3 4\n"))
	f.Add([]byte("pbqp 0 3\n"))
	f.Add([]byte("pbqp 2 2\ne 1 0 0.5 -1 2e3 inf\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var first bytes.Buffer
		if err := Write(&first, g); err != nil {
			t.Fatalf("cannot serialize accepted graph: %v", err)
		}
		g2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("own output rejected: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := Write(&second, g2); err != nil {
			t.Fatalf("cannot re-serialize: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Write→Read→Write not byte-stable:\n%s\nvs\n%s", first.Bytes(), second.Bytes())
		}
	})
}

// TestWriteReadRoundTrip pins exact value round-tripping, including
// awkward floats.
func TestWriteReadRoundTrip(t *testing.T) {
	g := New(3, 2)
	g.SetVertexCost(0, cost.Vector{0.1, cost.Inf})
	g.SetVertexCost(1, cost.Vector{1e307, 1.0 / 3})
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{
		{0, 0.30000000000000004},
		{cost.Inf, 42},
	}))
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.Bytes())
	}
	for u := 0; u < 3; u++ {
		if !g.VertexCost(u).Equal(h.VertexCost(u)) {
			t.Fatalf("vertex %d: %v != %v", u, g.VertexCost(u), h.VertexCost(u))
		}
	}
	if !g.EdgeCost(0, 2).Equal(h.EdgeCost(0, 2)) {
		t.Fatalf("edge (0,2): %v != %v", g.EdgeCost(0, 2), h.EdgeCost(0, 2))
	}
}

func TestElide(t *testing.T) {
	if got := Elide("short", 64); got != "short" {
		t.Fatalf("Elide within budget = %q", got)
	}
	if got := Elide("abc", 3); got != "abc" {
		t.Fatalf("Elide at exact budget = %q", got)
	}
	long := strings.Repeat("x", 100)
	got := Elide(long, 10)
	want := strings.Repeat("x", 10) + "\n... (90 bytes elided)"
	if got != want {
		t.Fatalf("Elide(100x, 10) = %q, want %q", got, want)
	}
	if got := Elide("abc", -1); got != "\n... (3 bytes elided)" {
		t.Fatalf("Elide negative budget = %q", got)
	}
}

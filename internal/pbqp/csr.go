package pbqp

import (
	"sort"

	"pbqprl/internal/cost"
)

// CSR is a compressed-sparse-row snapshot of a graph's alive vertices
// and edges: a read-only, cache-friendly adjacency for traversal-heavy
// algorithms (connected components, block-cut trees) that would
// otherwise walk map[int]*cost.Matrix per step. On 10⁵-vertex graphs
// the difference is the difference between pointer-chasing hash buckets
// and streaming two int32 arrays.
//
// Vertices are renumbered densely: CSR index i ∈ [0, Len()) maps to
// graph vertex ID(i), with IndexOf inverting the mapping. Neighbor
// lists are sorted ascending by CSR index, so every traversal order is
// deterministic. The snapshot aliases the graph's edge matrices but
// copies no cost data; it does not observe later graph mutations to
// the edge set (vector mutations show through VertexCost as usual).
type CSR struct {
	m      int
	ids    []int32 // CSR index -> graph vertex id
	index  []int32 // graph vertex id -> CSR index, -1 for dead vertices
	rowPtr []int32 // rowPtr[i]..rowPtr[i+1] spans row i of colIdx/mats
	colIdx []int32 // neighbor CSR indices, ascending within each row
	mats   []*cost.Matrix
}

// NewCSR snapshots g's alive subgraph. Matrices alias graph storage,
// oriented with rows = the row vertex's color (same as EdgeCost).
func NewCSR(g *Graph) *CSR {
	n := g.AliveCount()
	c := &CSR{
		m:      g.M(),
		ids:    make([]int32, 0, n),
		index:  make([]int32, g.NumVertices()),
		rowPtr: make([]int32, n+1),
	}
	for u := range c.index {
		c.index[u] = -1
	}
	for u := 0; u < g.NumVertices(); u++ {
		if g.Alive(u) {
			c.index[u] = int32(len(c.ids))
			c.ids = append(c.ids, int32(u))
		}
	}
	total := 0
	for i, u := range c.ids {
		total += g.Degree(int(u))
		c.rowPtr[i+1] = int32(total)
	}
	c.colIdx = make([]int32, total)
	c.mats = make([]*cost.Matrix, total)
	for i, u := range c.ids {
		row := c.colIdx[c.rowPtr[i]:c.rowPtr[i]:c.rowPtr[i+1]]
		// adj iteration order is randomized; the sort below restores a
		// deterministic ascending row, so nothing order-dependent leaks.
		for v := range g.adj[u] {
			row = append(row, c.index[v])
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		for k, j := range row {
			c.mats[int(c.rowPtr[i])+k] = g.adj[u][int(c.ids[j])]
		}
	}
	return c
}

// Len returns the number of snapshotted (alive) vertices.
func (c *CSR) Len() int { return len(c.ids) }

// M returns the color count of the snapshotted graph.
func (c *CSR) M() int { return c.m }

// ID maps a CSR index to its graph vertex id.
func (c *CSR) ID(i int) int { return int(c.ids[i]) }

// IndexOf maps a graph vertex id to its CSR index, -1 if the vertex
// was dead at snapshot time.
func (c *CSR) IndexOf(u int) int { return int(c.index[u]) }

// Degree returns the number of neighbors of CSR vertex i.
func (c *CSR) Degree(i int) int { return int(c.rowPtr[i+1] - c.rowPtr[i]) }

// Neighbors returns the neighbor row of CSR vertex i, ascending. The
// slice is a view into shared storage: read-only, valid for the
// snapshot's lifetime, and allocation-free.
//
//pbqpvet:hotpath
func (c *CSR) Neighbors(i int) []int32 {
	return c.colIdx[c.rowPtr[i]:c.rowPtr[i+1]]
}

// Row returns the neighbor row of CSR vertex i together with the
// parallel edge-matrix row (mats[k] is the matrix toward Neighbors[k],
// rows = i's color). Both slices are read-only views.
//
//pbqpvet:hotpath
func (c *CSR) Row(i int) ([]int32, []*cost.Matrix) {
	return c.colIdx[c.rowPtr[i]:c.rowPtr[i+1]], c.mats[c.rowPtr[i]:c.rowPtr[i+1]]
}

// NumEdges returns the number of snapshotted undirected edges.
func (c *CSR) NumEdges() int { return len(c.colIdx) / 2 }

package pbqp

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pbqprl/internal/cost"
)

// corpusInputs decodes every seed in the FuzzReadGraph corpus — the
// same inputs the fuzzer replays in CI — so the hash regression test
// covers exactly the graphs whose serialization FuzzReadGraph pins
// byte-stable.
func corpusInputs(t *testing.T) map[string][]byte {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzReadGraph")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading seed corpus: %v", err)
	}
	inputs := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(raw), "\n")
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Fatalf("%s: not a go fuzz corpus file", e.Name())
		}
		// Each corpus value line is []byte("...") with Go quoting.
		val := strings.TrimSpace(lines[1])
		val = strings.TrimPrefix(val, "[]byte(")
		val = strings.TrimSuffix(val, ")")
		data, err := strconv.Unquote(val)
		if err != nil {
			t.Fatalf("%s: unquoting corpus value: %v", e.Name(), err)
		}
		inputs[e.Name()] = []byte(data)
	}
	if len(inputs) == 0 {
		t.Fatal("seed corpus is empty")
	}
	return inputs
}

// TestCanonicalHashStableOverSeedCorpus is the CanonicalHash regression
// gate: for every accepted graph in the FuzzReadGraph seed corpus, the
// hash is byte-stable across Read→Write round trips — reparsing a
// graph's own serialization yields the identical digest, so cache keys
// and shard selection never depend on which copy of a graph arrived.
func TestCanonicalHashStableOverSeedCorpus(t *testing.T) {
	accepted := 0
	for name, data := range corpusInputs(t) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			continue // hostile seeds are the parser's problem, not the hash's
		}
		accepted++
		h1, err := CanonicalHash(g)
		if err != nil {
			t.Fatalf("%s: hash: %v", name, err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		g2, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: own output rejected: %v", name, err)
		}
		h2, err := CanonicalHash(g2)
		if err != nil {
			t.Fatalf("%s: rehash: %v", name, err)
		}
		if h1 != h2 {
			t.Fatalf("%s: hash not stable across Read→Write round trip: %x vs %x", name, h1, h2)
		}
		s, err := CanonicalHashString(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) != 64 || strings.ToLower(s) != s {
			t.Fatalf("%s: hash string %q is not 64 lowercase hex chars", name, s)
		}
	}
	if accepted == 0 {
		t.Fatal("no corpus seed parsed; the regression test covers nothing")
	}
}

// TestCanonicalHashDistinguishes pins that semantically different
// graphs get different digests while an identical reconstruction gets
// the same one.
func TestCanonicalHashDistinguishes(t *testing.T) {
	build := func(c cost.Cost) *Graph {
		g := New(2, 2)
		g.SetVertexCost(0, cost.Vector{c, 1})
		g.AddEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{0, 1}, {1, 0}}))
		return g
	}
	a, err := CanonicalHash(build(5))
	if err != nil {
		t.Fatal(err)
	}
	same, err := CanonicalHash(build(5))
	if err != nil {
		t.Fatal(err)
	}
	diff, err := CanonicalHash(build(6))
	if err != nil {
		t.Fatal(err)
	}
	if a != same {
		t.Fatal("identical graphs hash differently")
	}
	if a == diff {
		t.Fatal("different graphs collide on a toy example")
	}
}

// TestCanonicalHashRejectsPartiallyReduced mirrors Write's contract:
// graphs with removed vertices have no canonical form.
func TestCanonicalHashRejectsPartiallyReduced(t *testing.T) {
	g := New(2, 2)
	g.RemoveVertex(0)
	if _, err := CanonicalHash(g); err == nil {
		t.Fatal("want error for partially reduced graph")
	}
	if _, err := CanonicalHashString(g); err == nil {
		t.Fatal("want error for partially reduced graph (string form)")
	}
}

package pbqp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pbqprl/internal/cost"
)

// The textual PBQP format is line oriented:
//
//	pbqp <n> <m>
//	v <u> <c_0> ... <c_{m-1}>
//	e <u> <v> <m_00> <m_01> ... <m_{m-1,m-1}>
//
// Vertex lines are optional (missing vertices keep zero vectors); edge
// matrices are row-major with rows indexing u's color. "inf" denotes the
// infinite cost. '#' starts a comment.

// Write serializes g in the textual PBQP format. Dead vertices are not
// representable and cause an error.
//
// The serialization is strconv-append into a reused chunk buffer
// rather than fmt: Write sits on the serving hot path (CanonicalHash
// runs it per request to content-address the graph), where fmt's
// per-value boxing and a per-call bufio.Writer dominated the profile.
// The byte stream is unchanged — it is pinned by the round-trip and
// canonical-hash regression tests over the fuzz seed corpus.
func Write(w io.Writer, g *Graph) error {
	if g.AliveCount() != g.NumVertices() {
		return fmt.Errorf("pbqp: cannot serialize graph with removed vertices")
	}
	buf := make([]byte, 0, 4<<10)
	var err error
	flush := func(min int) {
		if err != nil || len(buf) < min {
			return
		}
		_, err = w.Write(buf)
		buf = buf[:0]
	}
	buf = append(buf, "pbqp "...)
	buf = strconv.AppendInt(buf, int64(g.NumVertices()), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(g.M()), 10)
	buf = append(buf, '\n')
	for u := 0; u < g.NumVertices(); u++ {
		buf = append(buf, "v "...)
		buf = strconv.AppendInt(buf, int64(u), 10)
		for _, c := range g.VertexCost(u) {
			buf = append(buf, ' ')
			buf = appendCost(buf, c)
		}
		buf = append(buf, '\n')
		flush(32 << 10)
	}
	for _, e := range g.Edges() {
		buf = append(buf, "e "...)
		buf = strconv.AppendInt(buf, int64(e.U), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.V), 10)
		for _, c := range e.M.Data {
			buf = append(buf, ' ')
			buf = appendCost(buf, c)
		}
		buf = append(buf, '\n')
		flush(32 << 10)
	}
	flush(1)
	return err
}

// appendCost renders c exactly as cost.Cost.String does, into buf.
func appendCost(buf []byte, c cost.Cost) []byte {
	if c.IsInf() {
		return append(buf, "inf"...)
	}
	return strconv.AppendFloat(buf, float64(c), 'g', -1, 64)
}

// String renders g in the textual PBQP format (empty on serialization
// failure, which only happens for partially reduced graphs).
func (g *Graph) String() string {
	var b strings.Builder
	if err := Write(&b, g); err != nil {
		return ""
	}
	return b.String()
}

// Elide truncates s to at most max bytes for logging, appending a note
// with the number of bytes dropped. Large graphs serialize to many
// megabytes; panic-path repro logs cap them so one bad request cannot
// flood the log. Strings within the budget pass through unchanged.
func Elide(s string, max int) string {
	if max < 0 {
		max = 0
	}
	if len(s) <= max {
		return s
	}
	return fmt.Sprintf("%s\n... (%d bytes elided)", s[:max], len(s)-max)
}

// Parser hardening bounds. A hostile header like "pbqp 2000000000 9999"
// would otherwise allocate n·m cost entries before a single byte of
// content is validated; graphs past these caps are rejected up front.
// Real register-allocation problems are orders of magnitude smaller.
const (
	// MaxVertices is the largest vertex count Read accepts.
	MaxVertices = 1 << 22
	// MaxColors is the largest color count (register-class size) Read
	// accepts.
	MaxColors = 1 << 12
	// maxCostEntries caps the total vertex-vector allocation n·m.
	maxCostEntries = 1 << 26
)

// ReadLimits bounds what ReadWithLimits will accept before allocating.
// The zero value of any field means "use the package default", so
// callers can tighten a single knob without restating the others. A
// serving process typically shrinks these well below the package
// defaults: its request path has a latency budget that a
// million-vertex graph could never meet anyway.
type ReadLimits struct {
	// MaxVertices caps the header vertex count n.
	MaxVertices int
	// MaxColors caps the header color count m.
	MaxColors int
	// MaxCostEntries caps the total vertex-vector allocation n·m.
	MaxCostEntries int
}

// DefaultReadLimits returns the package-default parser bounds — the
// ones Read itself enforces.
func DefaultReadLimits() ReadLimits {
	return ReadLimits{
		MaxVertices:    MaxVertices,
		MaxColors:      MaxColors,
		MaxCostEntries: maxCostEntries,
	}
}

// withDefaults fills unset (zero or negative) fields from the package
// defaults and clamps each bound to its package maximum: the hardening
// caps are a ceiling, not a suggestion.
func (l ReadLimits) withDefaults() ReadLimits {
	d := DefaultReadLimits()
	if l.MaxVertices <= 0 || l.MaxVertices > d.MaxVertices {
		l.MaxVertices = d.MaxVertices
	}
	if l.MaxColors <= 0 || l.MaxColors > d.MaxColors {
		l.MaxColors = d.MaxColors
	}
	if l.MaxCostEntries <= 0 || l.MaxCostEntries > d.MaxCostEntries {
		l.MaxCostEntries = d.MaxCostEntries
	}
	return l
}

// Read parses a graph in the textual PBQP format. Malformed input —
// absurd or negative dimensions, costs in the reserved infinite range
// that are not spelled "inf", NaN, duplicate vertex or edge lines,
// out-of-range endpoints, truncated lines — yields a descriptive error;
// Read never panics on any input. Read enforces the package-default
// size caps; use ReadWithLimits to tighten them per call.
func Read(r io.Reader) (*Graph, error) {
	return ReadWithLimits(r, DefaultReadLimits())
}

// ReadWithLimits is Read under caller-chosen size caps. Unset limit
// fields fall back to the package defaults, and no field can exceed
// them — the defaults are the hard ceiling. Graphs past any cap are
// rejected with a descriptive error before the corresponding
// allocation happens.
func ReadWithLimits(r io.Reader, limits ReadLimits) (*Graph, error) {
	lim := limits.withDefaults()
	sc := bufio.NewScanner(r)
	// Nil initial buffer: the scanner grows lazily (4KiB doubling) up to
	// the 16MiB token cap, so parsing a small graph does not pay a fixed
	// megabyte-zeroing tax per call — it dominated the serving hot path.
	sc.Buffer(nil, 1<<24)
	var g *Graph
	var seenVertex []bool
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "pbqp":
			if g != nil {
				return nil, fmt.Errorf("pbqp: line %d: duplicate header", lineno)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("pbqp: line %d: header wants 'pbqp n m'", lineno)
			}
			n, err1 := strconv.Atoi(fields[1])
			m, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || n < 0 || m <= 0 {
				return nil, fmt.Errorf("pbqp: line %d: bad dimensions", lineno)
			}
			if n > lim.MaxVertices {
				return nil, fmt.Errorf("pbqp: line %d: vertex count %d exceeds the limit %d", lineno, n, lim.MaxVertices)
			}
			if m > lim.MaxColors {
				return nil, fmt.Errorf("pbqp: line %d: color count %d exceeds the limit %d", lineno, m, lim.MaxColors)
			}
			if n > 0 && n*m > lim.MaxCostEntries {
				return nil, fmt.Errorf("pbqp: line %d: graph size %d×%d exceeds the total cost-entry limit", lineno, n, m)
			}
			g = New(n, m)
			seenVertex = make([]bool, n)
		case "v":
			if g == nil {
				return nil, fmt.Errorf("pbqp: line %d: vertex before header", lineno)
			}
			if len(fields) != 2+g.M() {
				return nil, fmt.Errorf("pbqp: line %d: vertex wants %d costs", lineno, g.M())
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil || u < 0 || u >= g.NumVertices() {
				return nil, fmt.Errorf("pbqp: line %d: bad vertex id", lineno)
			}
			if seenVertex[u] {
				return nil, fmt.Errorf("pbqp: line %d: duplicate vertex %d", lineno, u)
			}
			seenVertex[u] = true
			vec, err := parseCosts(fields[2:])
			if err != nil {
				return nil, fmt.Errorf("pbqp: line %d: %w", lineno, err)
			}
			g.SetVertexCost(u, vec)
		case "e":
			if g == nil {
				return nil, fmt.Errorf("pbqp: line %d: edge before header", lineno)
			}
			if len(fields) != 3+g.M()*g.M() {
				return nil, fmt.Errorf("pbqp: line %d: edge wants %d costs", lineno, g.M()*g.M())
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 0 || v < 0 ||
				u >= g.NumVertices() || v >= g.NumVertices() || u == v {
				return nil, fmt.Errorf("pbqp: line %d: bad edge endpoints", lineno)
			}
			if g.HasEdge(u, v) {
				return nil, fmt.Errorf("pbqp: line %d: duplicate edge (%d,%d)", lineno, u, v)
			}
			vec, err := parseCosts(fields[3:])
			if err != nil {
				return nil, fmt.Errorf("pbqp: line %d: %w", lineno, err)
			}
			mat := &cost.Matrix{Rows: g.M(), Cols: g.M(), Data: vec}
			g.AddEdgeCost(u, v, mat)
		default:
			return nil, fmt.Errorf("pbqp: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("pbqp: line %d: read: %w", lineno+1, err)
	}
	if g == nil {
		return nil, fmt.Errorf("pbqp: missing header")
	}
	return g, nil
}

func parseCosts(fields []string) (cost.Vector, error) {
	v := make(cost.Vector, len(fields))
	for i, f := range fields {
		c, err := cost.Parse(f)
		if err != nil {
			return nil, err
		}
		// cost.Parse rejects NaN and -∞ outright; additionally reject
		// finite literals whose magnitude falls in the reserved
		// infinite range (≥ MaxFloat64/4). A positive one would
		// silently behave as "forbidden" (IsInf), a negative one breaks
		// the saturating arithmetic — both are almost certainly
		// corrupted input, and the explicit spelling "inf" exists.
		if fl, ferr := strconv.ParseFloat(strings.TrimSpace(f), 64); ferr == nil && !math.IsInf(fl, 0) {
			if cost.Cost(fl).IsInf() || cost.Cost(-fl).IsInf() {
				return nil, fmt.Errorf("pbqp: finite cost %q is in the reserved infinite range; write \"inf\"", f)
			}
		}
		v[i] = c
	}
	return v, nil
}

package pbqp

import (
	"math/rand"
	"strings"
	"testing"

	"pbqprl/internal/cost"
)

// fig2Graph builds the 3-vertex, 2-color example from Figure 2 of the
// paper: a triangle where selection (colors 2,2,1 one-based) costs
// (2+0+0)+(8+9+5) = 24 and selection (1,1,1) is optimal at
// (5+5+0)+(1+0+0) = 11.
func fig2Graph() *Graph {
	g := New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, 2})
	g.SetVertexCost(1, cost.Vector{5, 0})
	g.SetVertexCost(2, cost.Vector{0, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{1, 3}, {7, 8}}))
	g.SetEdgeCost(1, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 4}, {9, 6}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 2}, {5, 3}}))
	return g
}

func TestFig2TotalCost(t *testing.T) {
	g := fig2Graph()
	if got := g.TotalCost(Selection{1, 1, 0}); got != 24 {
		t.Errorf("cost(1,1,0) = %v, want 24", got)
	}
	if got := g.TotalCost(Selection{0, 0, 0}); got != 11 {
		t.Errorf("cost(0,0,0) = %v, want 11", got)
	}
}

func TestEdgeOrientation(t *testing.T) {
	g := New(2, 2)
	mat := cost.NewMatrixFrom([][]cost.Cost{{1, 2}, {3, 4}})
	g.SetEdgeCost(0, 1, mat)
	if got := g.EdgeCost(0, 1).At(0, 1); got != 2 {
		t.Errorf("EdgeCost(0,1)[0,1] = %v, want 2", got)
	}
	if got := g.EdgeCost(1, 0).At(1, 0); got != 2 {
		t.Errorf("EdgeCost(1,0)[1,0] = %v, want 2", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeCostMerges(t *testing.T) {
	g := New(2, 2)
	m1 := cost.NewMatrixFrom([][]cost.Cost{{1, 0}, {0, 0}})
	g.AddEdgeCost(0, 1, m1)
	g.AddEdgeCost(1, 0, cost.NewMatrixFrom([][]cost.Cost{{0, 10}, {0, 0}}))
	// second add is oriented from vertex 1, so entry (1's color 0, 0's
	// color 1) = 10, i.e. (0's color 1, 1's color 0) in canonical form.
	e := g.EdgeCost(0, 1)
	if e.At(0, 0) != 1 || e.At(1, 0) != 10 {
		t.Errorf("merged edge = %v", e)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestColorVertexTransition(t *testing.T) {
	// Figure 3 of the paper: coloring vertex 0 with color a folds row a
	// of each incident matrix into the neighbors and detaches vertex 0.
	g := fig2Graph()
	own := g.ColorVertex(0, 1) // color 2 in the paper's 1-based naming
	if own != 2 {
		t.Errorf("own cost = %v, want 2", own)
	}
	if g.Alive(0) || g.AliveCount() != 2 {
		t.Error("vertex 0 not detached")
	}
	// vertex 1's vector gains row 1 of edge (0,1): (7,8)
	want := cost.Vector{5 + 7, 0 + 8}
	if !g.VertexCost(1).Equal(want) {
		t.Errorf("vertex 1 vector = %v, want %v", g.VertexCost(1), want)
	}
	// equivalence: cost of reduced graph + own == cost of original
	orig := fig2Graph()
	for s1 := 0; s1 < 2; s1++ {
		for s2 := 0; s2 < 2; s2++ {
			sel := Selection{1, s1, s2}
			reduced := own.Add(g.VertexCost(1)[s1]).Add(g.VertexCost(2)[s2]).Add(g.EdgeCost(1, 2).At(s1, s2))
			if full := orig.TotalCost(sel); full != reduced {
				t.Errorf("sel %v: full %v != reduced %v", sel, full, reduced)
			}
		}
	}
}

func TestColorVertexPanics(t *testing.T) {
	g := fig2Graph()
	g.RemoveVertex(0)
	mustPanic(t, "dead vertex", func() { g.ColorVertex(0, 0) })
	mustPanic(t, "color range", func() { g.ColorVertex(1, 5) })
}

func TestRemoveVertexAndEdges(t *testing.T) {
	g := fig2Graph()
	g.RemoveVertex(1)
	if g.Degree(0) != 1 || g.Degree(2) != 1 {
		t.Error("edges to removed vertex remain")
	}
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	g.RemoveVertex(1) // idempotent
	if g.AliveCount() != 2 {
		t.Errorf("AliveCount = %d", g.AliveCount())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := fig2Graph()
	g.RemoveEdge(1, 0)
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge remains after RemoveEdge")
	}
	if g.NumEdges() != 2 {
		t.Errorf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(4, 2)
	z := cost.NewMatrixFrom([][]cost.Cost{{1, 0}, {0, 0}})
	g.SetEdgeCost(2, 3, z)
	g.SetEdgeCost(2, 0, z)
	g.SetEdgeCost(2, 1, z)
	ns := g.Neighbors(2)
	if len(ns) != 3 || ns[0] != 0 || ns[1] != 1 || ns[2] != 3 {
		t.Errorf("Neighbors = %v", ns)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := fig2Graph()
	c := g.Clone()
	c.ColorVertex(0, 0)
	c.AddToVertexCost(2, cost.Vector{100, 100})
	if !g.Alive(0) {
		t.Error("clone mutation leaked liveness")
	}
	if g.VertexCost(2)[0] != 0 {
		t.Error("clone mutation leaked vector")
	}
	if g.EdgeCost(0, 1) == nil {
		t.Error("clone mutation leaked edges")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPermute(t *testing.T) {
	g := fig2Graph()
	h := g.Permute([]int{2, 0, 1}) // new0=old2, new1=old0, new2=old1
	if !h.VertexCost(0).Equal(g.VertexCost(2)) {
		t.Error("vertex cost not carried")
	}
	// old edge (0,1) becomes new edge (1,2) with same orientation
	if got := h.EdgeCost(1, 2); got == nil || got.At(0, 1) != 3 {
		t.Errorf("edge not carried: %v", got)
	}
	// cost is invariant under the renumbering
	for s0 := 0; s0 < 2; s0++ {
		for s1 := 0; s1 < 2; s1++ {
			for s2 := 0; s2 < 2; s2++ {
				a := g.TotalCost(Selection{s0, s1, s2})
				b := h.TotalCost(Selection{s2, s0, s1})
				if a != b {
					t.Fatalf("cost changed under permutation: %v vs %v", a, b)
				}
			}
		}
	}
	mustPanic(t, "duplicate", func() { g.Permute([]int{0, 0, 1}) })
	mustPanic(t, "short", func() { g.Permute([]int{0, 1}) })
}

func TestTotalCostInfinity(t *testing.T) {
	g := New(2, 2)
	g.SetVertexCost(0, cost.Vector{0, cost.Inf})
	mat := cost.NewMatrix(2, 2)
	mat.Set(0, 0, cost.Inf)
	g.SetEdgeCost(0, 1, mat)
	if !g.TotalCost(Selection{1, 0}).IsInf() {
		t.Error("inf vertex cost not propagated")
	}
	if !g.TotalCost(Selection{0, 0}).IsInf() {
		t.Error("inf edge cost not propagated")
	}
	if g.TotalCost(Selection{0, 1}).IsInf() {
		t.Error("finite selection reported infinite")
	}
}

func TestRoundTripSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 12, 3, 0.4, 0.1)
	var b strings.Builder
	if err := Write(&b, g); err != nil {
		t.Fatal(err)
	}
	h, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != g.NumVertices() || h.M() != g.M() || h.NumEdges() != g.NumEdges() {
		t.Fatalf("shape mismatch after round trip")
	}
	for u := 0; u < g.NumVertices(); u++ {
		if !h.VertexCost(u).Equal(g.VertexCost(u)) {
			t.Errorf("vertex %d vector differs", u)
		}
	}
	for _, e := range g.Edges() {
		he := h.EdgeCost(e.U, e.V)
		if he == nil || !he.Equal(e.M) {
			t.Errorf("edge (%d,%d) differs", e.U, e.V)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",                        // missing header
		"v 0 1 2",                 // vertex before header
		"e 0 1 0 0 0 0",           // edge before header
		"pbqp 2 2\npbqp 2 2",      // duplicate header
		"pbqp -1 2",               // bad n
		"pbqp 2 0",                // bad m
		"pbqp 2",                  // short header
		"pbqp 2 2\nv 5 0 0",       // vertex id out of range
		"pbqp 2 2\nv 0 0",         // wrong vector length
		"pbqp 2 2\nv 0 a b",       // bad cost
		"pbqp 2 2\ne 0 0 0 0 0 0", // self loop
		"pbqp 2 2\ne 0 1 0 0",     // wrong matrix length
		"pbqp 2 2\nx 1 2",         // unknown directive
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
}

func TestReadComments(t *testing.T) {
	src := "# a comment\npbqp 2 2 # trailing\n\nv 0 1 inf\ne 0 1 0 1 2 3\n"
	g, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if !g.VertexCost(0)[1].IsInf() {
		t.Error("inf cost not parsed")
	}
	if g.EdgeCost(0, 1).At(1, 0) != 2 {
		t.Error("edge not parsed")
	}
}

func TestWriteRejectsReducedGraph(t *testing.T) {
	g := fig2Graph()
	g.RemoveVertex(0)
	if err := Write(&strings.Builder{}, g); err == nil {
		t.Error("Write accepted a reduced graph")
	}
}

// randomGraph builds a random Erdős–Rényi style PBQP graph for tests.
// (The production generator lives in internal/randgraph; this local copy
// keeps the package dependency-free.)
func randomGraph(rng *rand.Rand, n, m int, pEdge, pInf float64) *Graph {
	g := New(n, m)
	randCost := func() cost.Cost {
		if rng.Float64() < pInf {
			return cost.Inf
		}
		return cost.Cost(rng.Intn(10))
	}
	for u := 0; u < n; u++ {
		v := make(cost.Vector, m)
		for i := range v {
			v[i] = randCost()
		}
		g.SetVertexCost(u, v)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < pEdge {
				mat := cost.NewMatrix(m, m)
				for i := range mat.Data {
					mat.Data[i] = randCost()
				}
				g.SetEdgeCost(u, v, mat)
			}
		}
	}
	return g
}

// Property: for random graphs and random coloring orders, the sum of
// ColorVertex own-costs equals TotalCost of the original graph.
func TestTransitionPreservesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(10)
		m := 2 + rng.Intn(3)
		g := randomGraph(rng, n, m, 0.5, 0.15)
		sel := make(Selection, n)
		for u := range sel {
			sel[u] = rng.Intn(m)
		}
		want := g.TotalCost(sel)
		work := g.Clone()
		var got cost.Cost
		for _, u := range rng.Perm(n) {
			got = got.Add(work.ColorVertex(u, sel[u]))
		}
		if want.IsInf() != got.IsInf() {
			t.Fatalf("trial %d: inf mismatch: want %v got %v", trial, want, got)
		}
		if !want.IsInf() && abs(float64(want-got)) > 1e-6 {
			t.Fatalf("trial %d: want %v got %v", trial, want, got)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := v.Clone()
	w[0] = 9
	if v[0] != 1 {
		t.Error("Clone aliases")
	}
	if got := v.Add(Vec{1, 1, 1}); got[2] != 4 {
		t.Errorf("Add = %v", got)
	}
	v.AddInPlace(Vec{0, 0, 1})
	if v[2] != 4 {
		t.Errorf("AddInPlace = %v", v)
	}
	v.AddScaled(2, Vec{1, 0, 0})
	if v[0] != 3 {
		t.Errorf("AddScaled = %v", v)
	}
	v.Scale(2)
	if v[0] != 6 {
		t.Errorf("Scale = %v", v)
	}
	if got := (Vec{1, 2}).Dot(Vec{3, 4}); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	v.Zero()
	if v[0] != 0 || v[1] != 0 {
		t.Errorf("Zero = %v", v)
	}
}

func TestVecPanicsOnMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"Add":        func() { Vec{1}.Add(Vec{1, 2}) },
		"AddInPlace": func() { Vec{1}.AddInPlace(Vec{1, 2}) },
		"Dot":        func() { Vec{1}.Dot(Vec{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.W, []float64{1, 2, 3, 4, 5, 6})
	y := m.MulVec(Vec{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Errorf("MulVec = %v", y)
	}
	yt := m.MulTVec(Vec{1, 1})
	if yt[0] != 5 || yt[1] != 7 || yt[2] != 9 {
		t.Errorf("MulTVec = %v", yt)
	}
}

func TestMulTVecIsTranspose(t *testing.T) {
	// property: mᵀx computed by MulTVec equals explicit transpose-multiply
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(6), 1+rng.Intn(6)
		m := NewMat(r, c)
		for i := range m.W {
			m.W[i] = rng.NormFloat64()
		}
		x := NewVec(r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := m.MulTVec(x)
		for j := 0; j < c; j++ {
			want := 0.0
			for i := 0; i < r; i++ {
				want += m.At(i, j) * x[i]
			}
			if math.Abs(got[j]-want) > 1e-12 {
				t.Fatalf("MulTVec[%d] = %v, want %v", j, got[j], want)
			}
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMat(2, 2)
	m.AddOuter(2, Vec{1, 3}, Vec{5, 7})
	if m.At(0, 0) != 10 || m.At(0, 1) != 14 || m.At(1, 0) != 30 || m.At(1, 1) != 42 {
		t.Errorf("AddOuter = %v", m.W)
	}
	m.AddOuter(1, Vec{0, 1}, Vec{1, 0})
	if m.At(1, 0) != 31 {
		t.Errorf("AddOuter accumulate = %v", m.W)
	}
}

func TestMatRowAliases(t *testing.T) {
	m := NewMat(2, 2)
	m.Row(1)[0] = 5
	if m.At(1, 0) != 5 {
		t.Error("Row does not alias storage")
	}
	c := m.Clone()
	c.Set(1, 0, 9)
	if m.At(1, 0) != 5 {
		t.Error("Clone aliases storage")
	}
}

func TestDotCommutative(t *testing.T) {
	f := func(a, b [4]float64) bool {
		v, w := Vec(a[:]), Vec(b[:])
		x, y := v.Dot(w), w.Dot(v)
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewMatPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMat(-1, 2)
}

// randMat fills an r×c matrix from rng with values in [-1, 1).
func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.W {
		m.W[i] = rng.Float64()*2 - 1
	}
	return m
}

func randVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// TestMulVecIntoBitIdentical pins the engine contract: the Into
// variants produce bit-for-bit the same floats as their allocating
// counterparts, across shapes.
func TestMulVecIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		r, c := 1+rng.Intn(40), 1+rng.Intn(40)
		m := randMat(rng, r, c)
		x := randVec(rng, c)
		want := m.MulVec(x)
		got := NewVec(r)
		// poison dst: Into must overwrite, not accumulate
		for i := range got {
			got[i] = math.NaN()
		}
		m.MulVecInto(got, x)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d: MulVecInto[%d] = %x, want %x", trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
		xt := randVec(rng, r)
		wantT := m.MulTVec(xt)
		gotT := NewVec(c)
		for i := range gotT {
			gotT[i] = math.NaN()
		}
		m.MulTVecInto(gotT, xt)
		for i := range wantT {
			if math.Float64bits(wantT[i]) != math.Float64bits(gotT[i]) {
				t.Fatalf("trial %d: MulTVecInto[%d] = %x, want %x", trial, i, math.Float64bits(gotT[i]), math.Float64bits(wantT[i]))
			}
		}
	}
}

// TestMatMulTIntoBitIdentical checks the blocked batch kernel against
// row-by-row MulVec, including batch sizes that exercise the 4-row
// blocks and the tail.
func TestMatMulTIntoBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, b := range []int{1, 2, 3, 4, 5, 7, 8, 9, 16, 31} {
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		w := randMat(rng, r, c)
		x := randMat(rng, b, c)
		dst := NewMat(b, r)
		MatMulTInto(dst, x, w)
		for row := 0; row < b; row++ {
			want := w.MulVec(x.Row(row))
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(dst.At(row, i)) {
					t.Fatalf("batch %d row %d col %d: got %x want %x", b, row, i, math.Float64bits(dst.At(row, i)), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestIntoVariantsAllocFree pins the reason the Into variants exist.
func TestIntoVariantsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randMat(rng, 13, 13)
	w := randMat(rng, 13, 13)
	x := randVec(rng, 13)
	dst := NewVec(13)
	xb := randMat(rng, 8, 13)
	db := NewMat(8, 13)
	if n := testing.AllocsPerRun(100, func() {
		m.MulVecInto(dst, x)
		m.MulTVecInto(dst, x)
		MatMulTInto(db, xb, w)
	}); n != 0 {
		t.Fatalf("Into kernels allocate %.1f times per run", n)
	}
}

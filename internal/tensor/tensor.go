// Package tensor provides the small dense linear-algebra kernel used by
// the neural-network stack: float64 vectors and row-major matrices with
// the handful of operations forward and backward passes need.
package tensor

import "fmt"

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	checkLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// AddInPlace adds w into v.
func (v Vec) AddInPlace(w Vec) {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] += w[i]
	}
}

// AddScaled adds s*w into v.
func (v Vec) AddScaled(s float64, w Vec) {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] += s * w[i]
	}
}

// Scale multiplies v by s in place.
func (v Vec) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and w.
func (v Vec) Dot(w Vec) float64 {
	checkLen(len(v), len(w))
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Zero sets every entry of v to zero.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Mat is a dense row-major R×C float64 matrix.
type Mat struct {
	R, C int
	W    Vec
}

// NewMat returns a zero R×C matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		//pbqpvet:ignore panicfree shape/dimension mismatch is a caller bug, mirrors the slice-bounds panic
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", r, c))
	}
	return &Mat{R: r, C: c, W: NewVec(r * c)}
}

// At returns the (i, j) entry.
func (m *Mat) At(i, j int) float64 { return m.W[i*m.C+j] }

// Set assigns the (i, j) entry.
func (m *Mat) Set(i, j int, v float64) { m.W[i*m.C+j] = v }

// Row returns row i, aliasing the matrix storage.
func (m *Mat) Row(i int) Vec { return m.W[i*m.C : (i+1)*m.C] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.R, m.C)
	copy(c.W, m.W)
	return c
}

// MulVec returns m·x (length R). It panics if len(x) != C.
func (m *Mat) MulVec(x Vec) Vec {
	checkLen(m.C, len(x))
	out := NewVec(m.R)
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		s := 0.0
		for j, xj := range x {
			s += row[j] * xj
		}
		out[i] = s
	}
	return out
}

// AddMulVec adds m·x into dst (length R) without allocating. It panics
// on dimension mismatch.
func (m *Mat) AddMulVec(dst, x Vec) {
	checkLen(m.C, len(x))
	checkLen(m.R, len(dst))
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		s := 0.0
		for j, xj := range x {
			s += row[j] * xj
		}
		dst[i] += s
	}
}

// MulVecInto computes m·x into dst (length R) without allocating,
// overwriting dst. Each dst[i] is the same left-to-right fold over row i
// that MulVec computes, so the two are bit-identical. It panics on
// dimension mismatch.
func (m *Mat) MulVecInto(dst, x Vec) {
	checkLen(m.C, len(x))
	checkLen(m.R, len(dst))
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		s := 0.0
		for j, xj := range x {
			s += row[j] * xj
		}
		dst[i] = s
	}
}

// MulTVecInto computes mᵀ·x into dst (length C) without allocating,
// overwriting dst. Bit-identical to MulTVec. It panics on dimension
// mismatch.
func (m *Mat) MulTVecInto(dst, x Vec) {
	checkLen(m.R, len(x))
	checkLen(m.C, len(dst))
	dst.Zero()
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		xi := x[i]
		//pbqpvet:ignore floatcmp sparsity skip: an exactly-zero multiplicand contributes nothing
		if xi == 0 {
			continue
		}
		for j := range row {
			dst[j] += row[j] * xi
		}
	}
}

// MatMulTInto computes dst = x·wᵀ without allocating: x is B×C, w is
// R×C, dst is B×R. Every dst[b][i] is the same left-to-right fold over
// j that w.MulVecInto(dst[b], x[b]) would compute — the blocking runs
// over independent output elements only, so the result is bit-identical
// to B scalar mat-vec products. Rows of x are processed four at a time
// with independent accumulators, which breaks the floating-point add
// dependency chain without reordering any element's summation.
func MatMulTInto(dst, x, w *Mat) {
	checkLen(x.C, w.C)
	checkLen(dst.R, x.R)
	checkLen(dst.C, w.R)
	c := x.C
	b := 0
	for ; b+4 <= x.R; b += 4 {
		x0 := x.W[(b+0)*c : (b+1)*c]
		x1 := x.W[(b+1)*c : (b+2)*c]
		x2 := x.W[(b+2)*c : (b+3)*c]
		x3 := x.W[(b+3)*c : (b+4)*c]
		d0 := dst.W[(b+0)*dst.C : (b+1)*dst.C]
		d1 := dst.W[(b+1)*dst.C : (b+2)*dst.C]
		d2 := dst.W[(b+2)*dst.C : (b+3)*dst.C]
		d3 := dst.W[(b+3)*dst.C : (b+4)*dst.C]
		for i := 0; i < w.R; i++ {
			wr := w.W[i*c : (i+1)*c]
			var s0, s1, s2, s3 float64
			for j, wj := range wr {
				s0 += wj * x0[j]
				s1 += wj * x1[j]
				s2 += wj * x2[j]
				s3 += wj * x3[j]
			}
			d0[i], d1[i], d2[i], d3[i] = s0, s1, s2, s3
		}
	}
	for ; b < x.R; b++ {
		w.MulVecInto(dst.Row(b), x.Row(b))
	}
}

// MulTVec returns mᵀ·x (length C). It panics if len(x) != R.
func (m *Mat) MulTVec(x Vec) Vec {
	checkLen(m.R, len(x))
	out := NewVec(m.C)
	for i := 0; i < m.R; i++ {
		row := m.W[i*m.C : (i+1)*m.C]
		xi := x[i]
		//pbqpvet:ignore floatcmp sparsity skip: an exactly-zero multiplicand contributes nothing
		if xi == 0 {
			continue
		}
		for j := range row {
			out[j] += row[j] * xi
		}
	}
	return out
}

// AddOuter adds s · a·bᵀ into m (a has length R, b has length C). It is
// the rank-1 update used to accumulate weight gradients.
func (m *Mat) AddOuter(s float64, a, b Vec) {
	checkLen(m.R, len(a))
	checkLen(m.C, len(b))
	for i := 0; i < m.R; i++ {
		ai := s * a[i]
		//pbqpvet:ignore floatcmp sparsity skip: an exactly-zero multiplicand contributes nothing
		if ai == 0 {
			continue
		}
		row := m.W[i*m.C : (i+1)*m.C]
		for j := range row {
			row[j] += ai * b[j]
		}
	}
}

func checkLen(want, got int) {
	if want != got {
		//pbqpvet:ignore panicfree shape/dimension mismatch is a caller bug, mirrors the slice-bounds panic
		panic(fmt.Sprintf("tensor: dimension mismatch: want %d, got %d", want, got))
	}
}

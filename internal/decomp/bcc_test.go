package decomp

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
)

// edgeGraph builds an m=2 graph over n vertices with a unit cost on
// every listed edge, suitable for structure tests.
func edgeGraph(n int, edges [][2]int) *pbqp.Graph {
	g := pbqp.New(n, 2)
	for u := 0; u < n; u++ {
		g.SetVertexCost(u, cost.Vector{0, 1})
	}
	mat := cost.NewMatrix(2, 2)
	mat.Set(0, 0, 1)
	for _, e := range edges {
		g.SetEdgeCost(e[0], e[1], mat)
	}
	return g
}

func scanOf(t *testing.T, g *pbqp.Graph) (*pbqp.CSR, *scanner) {
	t.Helper()
	c := pbqp.NewCSR(g)
	s := newScanner(c)
	s.run()
	return c, s
}

// cuts returns the sorted graph ids of articulation vertices.
func cuts(c *pbqp.CSR, s *scanner) []int {
	var out []int
	for i := 0; i < c.Len(); i++ {
		if s.isCut[i] {
			out = append(out, c.ID(i))
		}
	}
	return out
}

func TestBCCTwoTrianglesSharedVertex(t *testing.T) {
	g := edgeGraph(5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}})
	c, s := scanOf(t, g)
	if s.numComps() != 1 || s.numBlocks() != 2 {
		t.Fatalf("comps=%d blocks=%d, want 1 and 2", s.numComps(), s.numBlocks())
	}
	if got := cuts(c, s); len(got) != 1 || got[0] != 2 {
		t.Fatalf("cut vertices %v, want [2]", got)
	}
	for b := 0; b < 2; b++ {
		if len(s.block(b)) != 3 {
			t.Fatalf("block %d has %d vertices, want 3", b, len(s.block(b)))
		}
	}
	// The non-root block must be anchored at the shared vertex.
	for b := 0; b < 2; b++ {
		if !s.isRoot[b] && c.ID(int(s.block(b)[0])) != 2 {
			t.Fatalf("non-root block anchored at %d, want 2", c.ID(int(s.block(b)[0])))
		}
	}
}

func TestBCCBridge(t *testing.T) {
	// Triangle 0-1-2, bridge 2-3, triangle 3-4-5.
	g := edgeGraph(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}, {3, 5}})
	c, s := scanOf(t, g)
	if s.numComps() != 1 || s.numBlocks() != 3 {
		t.Fatalf("comps=%d blocks=%d, want 1 and 3", s.numComps(), s.numBlocks())
	}
	if got := cuts(c, s); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("cut vertices %v, want [2 3]", got)
	}
	sizes := map[int]int{}
	for b := 0; b < 3; b++ {
		sizes[len(s.block(b))]++
	}
	if sizes[2] != 1 || sizes[3] != 2 {
		t.Fatalf("block sizes %v, want one bridge (2) and two triangles (3)", sizes)
	}
}

func TestBCCCycleSingleBlock(t *testing.T) {
	g := edgeGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}})
	c, s := scanOf(t, g)
	if s.numComps() != 1 || s.numBlocks() != 1 || len(s.block(0)) != 5 {
		t.Fatalf("comps=%d blocks=%d size=%d, want 1/1/5", s.numComps(), s.numBlocks(), len(s.block(0)))
	}
	if got := cuts(c, s); len(got) != 0 {
		t.Fatalf("cycle has cut vertices %v", got)
	}
	if !s.isRoot[0] {
		t.Fatal("single block not marked root")
	}
}

func TestBCCDisconnectedAndIsolated(t *testing.T) {
	// Triangle 0-1-2, isolated 3, edge 4-5.
	g := edgeGraph(6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {4, 5}})
	_, s := scanOf(t, g)
	if s.numComps() != 3 || s.numBlocks() != 3 {
		t.Fatalf("comps=%d blocks=%d, want 3 and 3", s.numComps(), s.numBlocks())
	}
	roots := 0
	for b := 0; b < s.numBlocks(); b++ {
		if s.isRoot[b] {
			roots++
		}
	}
	if roots != 3 {
		t.Fatalf("%d root blocks, want 3 (one per component)", roots)
	}
	for comp := 0; comp < 3; comp++ {
		lo, hi := s.comp(comp)
		if hi-lo != 1 || !s.isRoot[lo] {
			t.Fatalf("component %d spans blocks [%d,%d), root=%v", comp, lo, hi, s.isRoot[lo])
		}
	}
}

// TestBCCRandomInvariants checks the structural invariants the solver
// relies on, over random graphs: every vertex appears in some block,
// every non-anchor appearance is unique, every non-root block's anchor
// reappears in a later block of the same component (its parent), and
// the component block ranges partition the block list.
func TestBCCRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(25)
		var edges [][2]int
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.12 {
					edges = append(edges, [2]int{u, v})
				}
			}
		}
		g := edgeGraph(n, edges)
		c, s := scanOf(t, g)
		if int(s.compOff[s.numComps()]) != s.numBlocks() {
			t.Fatalf("component ranges do not cover all blocks")
		}
		seen := make([]int, c.Len()) // non-anchor appearances
		for comp := 0; comp < s.numComps(); comp++ {
			lo, hi := s.comp(comp)
			for b := lo; b < hi; b++ {
				verts := s.block(b)
				if len(verts) == 0 {
					t.Fatal("empty block")
				}
				for i, v := range verts {
					if i == 0 && !s.isRoot[b] {
						continue
					}
					seen[v]++
				}
				if !s.isRoot[b] {
					anchor := verts[0]
					found := false
					for b2 := b + 1; b2 < hi && !found; b2++ {
						for _, v2 := range s.block(b2) {
							if v2 == anchor {
								found = true
								break
							}
						}
					}
					if !found {
						t.Fatalf("non-root block %d anchor %d has no later parent block", b, anchor)
					}
				}
			}
			if !s.isRoot[hi-1] {
				t.Fatalf("component %d's last block is not its root", comp)
			}
		}
		for v, k := range seen {
			if k != 1 {
				t.Fatalf("vertex %d counted %d times across blocks, want exactly once\n%s", c.ID(v), k, g)
			}
		}
	}
}

// TestBCCScanAllocFree pins the satellite promise: once the scanner's
// scratch exists, a full block-cut scan allocates nothing.
func TestBCCScanAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	var edges [][2]int
	const n = 300
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < 0.01 {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	g := edgeGraph(n, edges)
	c := pbqp.NewCSR(g)
	s := newScanner(c)
	s.run()
	allocs := testing.AllocsPerRun(20, func() { s.run() })
	if allocs != 0 {
		t.Fatalf("block-cut scan allocates %.1f times per run, want 0", allocs)
	}
}

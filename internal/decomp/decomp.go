// Package decomp turns one huge PBQP instance into many small ones: a
// solver-independent front end that (1) runs the exact R0/R1/R2
// reductions to a fixpoint, (2) snapshots the residual into a compact
// CSR adjacency, (3) splits it into connected components and
// articulation-point-separated biconnected blocks via a block-cut
// tree, and (4) solves each block independently with the wrapped inner
// solver, folding per-color block optima into the cut vertices'
// vectors so blocks compose exactly, then recombines the selections
// and expands the eliminated vertices.
//
// The folding step is the load-bearing trick (DESIGN.md §13): a
// non-root block B whose anchor cut vertex c is pinned to color a is
// solved with c's vector replaced by "0 at a, ∞ elsewhere", so the
// block optimum f_B(a) covers B's interior vertices and edges but not
// c itself; adding f_B(a) to c's vector entry a makes the parent
// block's view of c cost-equivalent to "c plus everything hanging
// below it". With an exact inner solver the recombined selection is a
// global optimum of Equation 1; with a heuristic inner solver every
// fold is an upper bound and quality degrades no faster than the
// heuristic itself.
//
// Wrap any solve.Solver and it transparently becomes a big-graph
// solver: components solve under bounded parallelism (results merged
// in component order, so the selection is deterministic for a
// deterministic inner solver), and the shared ctx budget cancels all
// of it.
package decomp

import (
	"context"
	"sync"
	"sync/atomic"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/reduce"
	"pbqprl/internal/solve"
)

// Solver decomposes a graph and solves the pieces with Inner. It
// implements solve.Solver and solve.ContextSolver.
type Solver struct {
	// Inner solves the individual blocks. It must be exact (brute) for
	// exact decomposition; any solver works for heuristic use.
	Inner solve.Solver
	// Workers bounds how many connected components solve in parallel.
	// ≤ 1 solves sequentially. Workers > 1 requires an Inner that is
	// safe for concurrent Solve calls (the stateless built-ins brute,
	// scholz, liberty and anneal are; rl solvers carry scratch buffers
	// and are not, unless backed by a net.Batcher).
	Workers int
}

// Wrap returns a decomposing wrapper around inner with sequential
// component solving.
func Wrap(inner solve.Solver) *Solver { return &Solver{Inner: inner} }

// Info reports what the decomposition did to one instance; the CLI
// surfaces it under -stats-json.
type Info struct {
	// OriginalVertices is the alive vertex count of the input.
	OriginalVertices int `json:"original_vertices"`
	// Eliminated is the number of vertices removed exactly by R0/R1/R2.
	Eliminated int `json:"eliminated_vertices"`
	// ResidualVertices is what was left for block solving.
	ResidualVertices int `json:"residual_vertices"`
	// Components is the number of connected components of the residual.
	Components int `json:"components"`
	// Blocks is the number of biconnected blocks across all components.
	Blocks int `json:"blocks"`
	// LargestBlock is the vertex count of the biggest block — the
	// largest subproblem the inner solver actually saw.
	LargestBlock int `json:"largest_block_vertices"`
	// CutVertices is the number of articulation vertices shared
	// between blocks.
	CutVertices int `json:"cut_vertices"`
}

// Name implements solve.Solver.
func (s *Solver) Name() string { return "decomp(" + s.Inner.Name() + ")" }

// Solve implements solve.Solver.
func (s *Solver) Solve(g *pbqp.Graph) solve.Result {
	return s.SolveCtx(context.Background(), g)
}

// SolveCtx implements solve.ContextSolver: the ctx budget is shared by
// every block solve (each one is delegated the context), so a deadline
// interrupts the pipeline wherever it currently is.
func (s *Solver) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	res, _ := s.SolveWithInfo(ctx, g)
	return res
}

// SolveWithInfo is SolveCtx plus the decomposition statistics.
func (s *Solver) SolveWithInfo(ctx context.Context, g *pbqp.Graph) (solve.Result, Info) {
	info := Info{OriginalVertices: g.AliveCount()}
	if ctx.Err() != nil {
		return solve.Result{Cost: cost.Inf, Truncated: true}, info
	}
	red := reduce.Apply(g)
	w := red.Graph
	info.Eliminated = red.Eliminated
	info.ResidualVertices = w.AliveCount()
	// One state per reduction step, matching the reduction solvers'
	// accounting, plus whatever the inner solver reports per block.
	states := int64(red.Eliminated)
	truncated := false
	sel := make(pbqp.Selection, g.NumVertices())
	if w.AliveCount() > 0 {
		csr := pbqp.NewCSR(w)
		sc := newScanner(csr)
		sc.run()
		info.Components = sc.numComps()
		info.Blocks = sc.numBlocks()
		for b := 0; b < sc.numBlocks(); b++ {
			if n := len(sc.block(b)); n > info.LargestBlock {
				info.LargestBlock = n
			}
		}
		for i := 0; i < csr.Len(); i++ {
			if sc.isCut[i] {
				info.CutVertices++
			}
		}
		outcomes := make([]compOutcome, sc.numComps())
		workers := s.Workers
		if workers > len(outcomes) {
			workers = len(outcomes)
		}
		if workers <= 1 {
			scratch := newPosScratch(csr.Len())
			for c := range outcomes {
				outcomes[c] = s.solveComponent(ctx, w, csr, sc, c, sel, scratch)
			}
		} else {
			// Components touch disjoint vertices: each goroutine writes
			// only its components' vector folds and selection slots, so
			// the shared graph and selection need no locks. Outcomes are
			// merged in component order below, keeping the result
			// deterministic whatever the scheduling.
			var next atomic.Int64
			var wg sync.WaitGroup
			for k := 0; k < workers; k++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					scratch := newPosScratch(csr.Len())
					for {
						c := int(next.Add(1)) - 1
						if c >= len(outcomes) {
							return
						}
						outcomes[c] = s.solveComponent(ctx, w, csr, sc, c, sel, scratch)
					}
				}()
			}
			wg.Wait()
		}
		feasible := true
		for _, oc := range outcomes {
			states += oc.states
			if oc.truncated {
				truncated = true
			}
			if !oc.feasible {
				feasible = false
			}
		}
		if !feasible {
			return solve.Result{Cost: cost.Inf, Truncated: truncated, States: states}, info
		}
	}
	full, ok := red.Expand(sel)
	if !ok {
		return solve.Result{Cost: cost.Inf, Truncated: truncated, States: states}, info
	}
	total := g.TotalCost(full)
	if total.IsInf() {
		return solve.Result{Cost: cost.Inf, Truncated: truncated, States: states}, info
	}
	return solve.Result{Selection: full, Cost: total, Feasible: true, Truncated: truncated, States: states}, info
}

type compOutcome struct {
	feasible  bool
	truncated bool
	states    int64
}

// posScratch maps CSR indices to block-local indices while a block
// subgraph is being built; entries are -1 between blocks. One per
// worker, reused across that worker's blocks.
type posScratch struct {
	pos []int32
}

func newPosScratch(n int) *posScratch {
	s := &posScratch{pos: make([]int32, n)}
	for i := range s.pos {
		s.pos[i] = -1
	}
	return s
}

// solveComponent runs the two sweeps over component c's blocks: a
// forward (post-order) sweep folding every non-root block into its
// anchor cut vertex and solving the root block outright, then a
// backward sweep propagating chosen colors down to each block's
// stored per-color selection. It writes only c's vertices of sel.
func (s *Solver) solveComponent(ctx context.Context, w *pbqp.Graph, csr *pbqp.CSR, sc *scanner, c int, sel pbqp.Selection, scratch *posScratch) compOutcome {
	lo, hi := sc.comp(c)
	m := w.M()
	oc := compOutcome{feasible: true}
	// tables[b-lo][a] is block b's local selection when its anchor is
	// pinned to color a; for the root block the single outright
	// solution sits at slot 0.
	tables := make([][]pbqp.Selection, hi-lo)
	for b := lo; b < hi; b++ {
		if ctx.Err() != nil {
			oc.feasible, oc.truncated = false, true
			return oc
		}
		verts := sc.block(b)
		if sc.isRoot[b] {
			res := s.solveBlock(ctx, w, csr, verts, -1, scratch)
			oc.states += res.States
			if res.Truncated {
				oc.truncated = true
			}
			if !res.Feasible {
				oc.feasible = false
				return oc
			}
			tables[b-lo] = []pbqp.Selection{res.Selection}
			continue
		}
		anchorID := csr.ID(int(verts[0]))
		cur := w.VertexCost(anchorID).Clone()
		newVec := cur.Clone()
		table := make([]pbqp.Selection, m)
		for a := 0; a < m; a++ {
			if cur[a].IsInf() {
				continue // newVec[a] is already infinite
			}
			res := s.solveBlock(ctx, w, csr, verts, a, scratch)
			oc.states += res.States
			if res.Truncated {
				oc.truncated = true
			}
			if !res.Feasible {
				if res.Truncated {
					// Cut short, not proven infeasible: give up on the
					// component rather than fold a wrong infinity.
					oc.feasible = false
					return oc
				}
				newVec[a] = cost.Inf
				continue
			}
			newVec[a] = cur[a].Add(res.Cost)
			table[a] = res.Selection
		}
		w.SetVertexCost(anchorID, newVec)
		tables[b-lo] = table
	}
	// Backward sweep: root first (it was emitted last), parents before
	// children, so every non-root block reads its anchor's color from
	// sel before assigning its interior.
	for b := hi - 1; b >= lo; b-- {
		verts := sc.block(b)
		if sc.isRoot[b] {
			rootSel := tables[b-lo][0]
			for i, v := range verts {
				sel[csr.ID(int(v))] = rootSel[i]
			}
			continue
		}
		t := tables[b-lo][sel[csr.ID(int(verts[0]))]]
		if t == nil {
			// Unreachable with a consistent inner solver: the parent
			// block saw an infinite folded entry for this color. Fail
			// closed rather than emit a bogus selection.
			oc.feasible = false
			return oc
		}
		for i, v := range verts {
			if i > 0 {
				sel[csr.ID(int(v))] = t[i]
			}
		}
	}
	return oc
}

// solveBlock extracts block verts (CSR indices, anchor first) as a
// standalone graph and solves it with the inner solver under ctx. pin
// ≥ 0 pins the anchor to that color by replacing its vector with "0 at
// pin, ∞ elsewhere" — excluding the anchor's own (possibly already
// folded) cost, which stays in the residual for the parent block. The
// block's edges are exactly the residual edges between its vertices:
// two biconnected components share at most one vertex, so no edge
// between two block vertices can belong to another block.
func (s *Solver) solveBlock(ctx context.Context, w *pbqp.Graph, csr *pbqp.CSR, verts []int32, pin int, scratch *posScratch) solve.Result {
	m := w.M()
	h := pbqp.New(len(verts), m)
	pos := scratch.pos
	for i, v := range verts {
		pos[v] = int32(i)
	}
	for i, v := range verts {
		if i == 0 && pin >= 0 {
			pv := cost.NewInfVector(m)
			pv[pin] = 0
			h.SetVertexCost(0, pv)
		} else {
			h.SetVertexCost(i, w.VertexCost(csr.ID(int(v))))
		}
		nbrs, mats := csr.Row(int(v))
		for k, nb := range nbrs {
			if nb <= v || pos[nb] < 0 {
				continue
			}
			h.SetEdgeCost(i, int(pos[nb]), mats[k])
		}
	}
	for _, v := range verts {
		pos[v] = -1
	}
	return solve.SolveCtx(ctx, s.Inner, h)
}

package decomp

import "pbqprl/internal/pbqp"

// scanner computes the block-cut decomposition of a CSR snapshot:
// connected components, biconnected blocks (Hopcroft–Tarjan, iterative
// so 10⁵-vertex paths cannot blow the goroutine stack), and
// articulation (cut) vertices. All scratch is sized once from the CSR
// dimensions, so run performs zero allocations — the AllocsPerRun test
// in bcc_test.go pins that.
//
// Output layout, all in emission order:
//
//   - block b's vertices are verts[off[b]:off[b+1]], anchor first. The
//     anchor of a non-root block is the cut vertex shared with its
//     parent toward the component root; sibling blocks repeat it.
//   - isRoot[b] marks the one root block per component (the last block
//     emitted for it, always containing the DFS root).
//   - component c owns the contiguous block range
//     [compOff[c], compOff[c+1]). Emission order is a post-order of the
//     block-cut tree: every block appears after all blocks anchored at
//     its non-anchor vertices, so a forward sweep can fold children
//     into parents and a backward sweep can propagate colors down.
//   - isCut[v] marks articulation vertices (CSR indices).
//
// Degree-0 vertices become single-vertex root blocks so every residual
// vertex belongs to exactly one component and at least one block.
type scanner struct {
	csr   *pbqp.CSR
	disc  []int32
	low   []int32
	stamp []int32 // block id that last collected the vertex

	frames []frame
	edgeU  []int32
	edgeV  []int32

	verts   []int32 // block vertex arena
	off     []int32 // len = numBlocks+1
	isRoot  []bool
	compOff []int32 // len = numComps+1
	isCut   []bool

	time int32
}

type frame struct {
	u, parent int32
	ei        int32 // next unvisited position in u's neighbor row
	skipped   bool  // the one tree edge back to parent was skipped
}

// newScanner sizes all scratch for c. The capacity bounds: a DFS path
// holds at most n frames; each undirected edge enters the edge stack
// once; every block of e_B edges lists at most e_B+1 vertices and
// singletons list one, so the arena needs at most 2E+n slots and there
// are at most E+n blocks.
func newScanner(c *pbqp.CSR) *scanner {
	n := c.Len()
	e := c.NumEdges()
	return &scanner{
		csr:     c,
		disc:    make([]int32, n),
		low:     make([]int32, n),
		stamp:   make([]int32, n),
		frames:  make([]frame, 0, n+1),
		edgeU:   make([]int32, 0, e),
		edgeV:   make([]int32, 0, e),
		verts:   make([]int32, 0, 2*e+n),
		off:     make([]int32, 1, e+n+1),
		isRoot:  make([]bool, 0, e+n),
		compOff: make([]int32, 1, n+1),
		isCut:   make([]bool, n),
	}
}

func (s *scanner) numBlocks() int { return len(s.off) - 1 }

func (s *scanner) block(b int) []int32 { return s.verts[s.off[b]:s.off[b+1]] }

func (s *scanner) numComps() int { return len(s.compOff) - 1 }

// comp returns component c's block range [lo, hi).
func (s *scanner) comp(c int) (lo, hi int) {
	return int(s.compOff[c]), int(s.compOff[c+1])
}

// run (re)computes the decomposition. Safe to call repeatedly on the
// same snapshot; each call starts from clean scratch.
//
//pbqpvet:hotpath
func (s *scanner) run() {
	n := s.csr.Len()
	for i := 0; i < n; i++ {
		s.disc[i] = -1
		s.stamp[i] = -1
		s.isCut[i] = false
	}
	s.verts = s.verts[:0]
	s.off = s.off[:1]
	s.off[0] = 0
	s.isRoot = s.isRoot[:0]
	s.compOff = s.compOff[:1]
	s.compOff[0] = 0
	s.edgeU = s.edgeU[:0]
	s.edgeV = s.edgeV[:0]
	s.time = 0
	for r := int32(0); int(r) < n; r++ {
		if s.disc[r] != -1 {
			continue
		}
		first := len(s.isRoot)
		if s.csr.Degree(int(r)) == 0 {
			s.disc[r], s.low[r] = s.time, s.time
			s.time++
			s.verts = append(s.verts, r)
			s.off = append(s.off, int32(len(s.verts)))
			s.isRoot = append(s.isRoot, true)
		} else {
			s.dfs(r)
			last := len(s.isRoot) - 1
			s.isRoot[last] = true
			// The DFS root is a cut vertex iff it anchors at least two
			// blocks: two tree children in one biconnected block would
			// have found each other without passing through r.
			rootBlocks := 0
			for b := first; b <= last; b++ {
				if s.verts[s.off[b]] == r {
					rootBlocks++
				}
			}
			if rootBlocks >= 2 {
				s.isCut[r] = true
			}
		}
		s.compOff = append(s.compOff, int32(len(s.isRoot)))
	}
}

// dfs explores r's component iteratively, emitting a block every time
// a subtree cannot reach above its attachment point (low[child] ≥
// disc[parent]).
func (s *scanner) dfs(r int32) {
	s.disc[r], s.low[r] = s.time, s.time
	s.time++
	s.frames = s.frames[:0]
	s.frames = append(s.frames, frame{u: r, parent: -1})
	//pbqpvet:ignore ctxpoll bounded: each vertex is pushed once and each edge advances ei once, so the loop runs O(V+E) with no solver calls; deadlines are enforced in the per-block solves
	for len(s.frames) > 0 {
		f := &s.frames[len(s.frames)-1]
		u := f.u
		row := s.csr.Neighbors(int(u))
		if int(f.ei) < len(row) {
			v := row[f.ei]
			f.ei++
			if v == f.parent && !f.skipped {
				// Skip exactly one traversal of the tree edge back to
				// the parent; pbqp graphs have no parallel edges, so
				// a second occurrence cannot exist.
				f.skipped = true
				continue
			}
			if s.disc[v] == -1 {
				s.edgeU = append(s.edgeU, u)
				s.edgeV = append(s.edgeV, v)
				s.disc[v], s.low[v] = s.time, s.time
				s.time++
				s.frames = append(s.frames, frame{u: v, parent: u})
			} else if s.disc[v] < s.disc[u] {
				s.edgeU = append(s.edgeU, u)
				s.edgeV = append(s.edgeV, v)
				if s.disc[v] < s.low[u] {
					s.low[u] = s.disc[v]
				}
			}
			continue
		}
		s.frames = s.frames[:len(s.frames)-1]
		p := f.parent
		if p < 0 {
			break
		}
		if s.low[u] < s.low[p] {
			s.low[p] = s.low[u]
		}
		if s.low[u] >= s.disc[p] {
			s.emitBlock(p, u)
			if p != r {
				s.isCut[p] = true
			}
		}
	}
}

// emitBlock pops the edge stack down to and including tree edge (p, u)
// and records the touched vertices as one block anchored at p.
func (s *scanner) emitBlock(p, u int32) {
	b := int32(len(s.isRoot))
	s.verts = append(s.verts, p)
	s.stamp[p] = b
	//pbqpvet:ignore ctxpoll bounded: pops the edge stack, which dfs grows by at most one entry per graph edge, and the sentinel tree edge (p,u) is always present
	for {
		top := len(s.edgeU) - 1
		eu, ev := s.edgeU[top], s.edgeV[top]
		s.edgeU = s.edgeU[:top]
		s.edgeV = s.edgeV[:top]
		if s.stamp[eu] != b {
			s.stamp[eu] = b
			s.verts = append(s.verts, eu)
		}
		if s.stamp[ev] != b {
			s.stamp[ev] = b
			s.verts = append(s.verts, ev)
		}
		if eu == p && ev == u {
			break
		}
	}
	s.off = append(s.off, int32(len(s.verts)))
	s.isRoot = append(s.isRoot, false)
}

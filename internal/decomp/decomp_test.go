package decomp

import (
	"context"
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/scholz"
)

// intGraph builds a random integer-cost graph (costs in {0..6, ∞}) so
// optimal total costs are exact integers and bit-identical across any
// two optimal selections.
func intGraph(rng *rand.Rand, n, m int, pEdge, pInf float64) *pbqp.Graph {
	g := pbqp.New(n, m)
	entry := func() cost.Cost {
		if rng.Float64() < pInf {
			return cost.Inf
		}
		return cost.Cost(rng.Intn(7))
	}
	for u := 0; u < n; u++ {
		vec := make(cost.Vector, m)
		for c := range vec {
			vec[c] = entry()
		}
		if vec.AllInf() {
			vec[rng.Intn(m)] = cost.Cost(rng.Intn(7))
		}
		g.SetVertexCost(u, vec)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() >= pEdge {
				continue
			}
			mat := cost.NewMatrix(m, m)
			for i := range mat.Data {
				mat.Data[i] = entry()
			}
			if mat.IsZero() {
				mat.Set(rng.Intn(m), rng.Intn(m), cost.Cost(1+rng.Intn(6)))
			}
			g.SetEdgeCost(u, v, mat)
		}
	}
	return g
}

// cliqueChain builds k size-s cliques where consecutive cliques share
// one vertex: every shared vertex is an articulation point and (for
// s ≥ 4) nothing reduces, so the block solver does all the work.
func cliqueChain(rng *rand.Rand, k, s, m int) *pbqp.Graph {
	n := k*(s-1) + 1
	g := intGraph(rng, n, m, 0, 0) // vertices with finite costs, no edges yet
	mat := func() *cost.Matrix {
		mt := cost.NewMatrix(m, m)
		for i := range mt.Data {
			mt.Data[i] = cost.Cost(rng.Intn(7))
		}
		if mt.IsZero() {
			mt.Set(rng.Intn(m), rng.Intn(m), cost.Cost(1+rng.Intn(6)))
		}
		return mt
	}
	for c := 0; c < k; c++ {
		base := c * (s - 1)
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				g.SetEdgeCost(base+i, base+j, mat())
			}
		}
	}
	return g
}

func checkAgainstBrute(t *testing.T, g *pbqp.Graph, workers int) {
	t.Helper()
	exact := brute.Solver{}.Solve(g)
	d := Wrap(brute.Solver{})
	d.Workers = workers
	res, info := d.SolveWithInfo(context.Background(), g)
	if res.Feasible != exact.Feasible {
		t.Fatalf("decomp feasible=%v, brute feasible=%v\n%s", res.Feasible, exact.Feasible, g)
	}
	if res.Truncated {
		t.Fatalf("decomp truncated without a deadline\n%s", g)
	}
	if !res.Feasible {
		return
	}
	if got := g.TotalCost(res.Selection); got != res.Cost {
		t.Fatalf("decomp selection re-evaluates to %v, reported %v\n%s", got, res.Cost, g)
	}
	if res.Cost != exact.Cost {
		t.Fatalf("decomp cost %v, optimum %v (info %+v)\n%s", res.Cost, exact.Cost, info, g)
	}
}

// TestDecompAgreesWithBruteRandom: on random small graphs — dense,
// sparse, disconnected — decomp.Wrap(brute) must reproduce the brute
// optimum bit-for-bit.
func TestDecompAgreesWithBruteRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(10)
		m := 1 + rng.Intn(3)
		pEdge := rng.Float64() * 0.7
		g := intGraph(rng, n, m, pEdge, 0.12)
		checkAgainstBrute(t, g, 1)
	}
}

// TestDecompAgreesWithBruteArticulation: clique chains put every block
// behind an articulation point, so the per-color folding path is what
// produces the optimum.
func TestDecompAgreesWithBruteArticulation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 60; trial++ {
		g := cliqueChain(rng, 2+rng.Intn(3), 4, 2)
		checkAgainstBrute(t, g, 1)
	}
}

// TestDecompAgreesWithBruteDisconnected: several independent clique
// chains, solved with and without component parallelism.
func TestDecompAgreesWithBruteDisconnected(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	for trial := 0; trial < 30; trial++ {
		a := cliqueChain(rng, 2, 4, 2)
		b := cliqueChain(rng, 3, 4, 2)
		na, nb := a.NumVertices(), b.NumVertices()
		g := pbqp.New(na+nb, 2)
		for u := 0; u < na; u++ {
			g.SetVertexCost(u, a.VertexCost(u))
		}
		for u := 0; u < nb; u++ {
			g.SetVertexCost(na+u, b.VertexCost(u))
		}
		for _, e := range a.Edges() {
			g.SetEdgeCost(e.U, e.V, e.M)
		}
		for _, e := range b.Edges() {
			g.SetEdgeCost(na+e.U, na+e.V, e.M)
		}
		checkAgainstBrute(t, g, 1)
		checkAgainstBrute(t, g, 4)
	}
}

// TestDecompParallelDeterminism: component-parallel solving must be
// bit-identical to sequential, selection included.
func TestDecompParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		// Many components: disjoint union of clique chains.
		chains := make([]*pbqp.Graph, 6)
		n := 0
		for i := range chains {
			chains[i] = cliqueChain(rng, 1+rng.Intn(3), 4, 2)
			n += chains[i].NumVertices()
		}
		g := pbqp.New(n, 2)
		base := 0
		for _, ch := range chains {
			for u := 0; u < ch.NumVertices(); u++ {
				g.SetVertexCost(base+u, ch.VertexCost(u))
			}
			for _, e := range ch.Edges() {
				g.SetEdgeCost(base+e.U, base+e.V, e.M)
			}
			base += ch.NumVertices()
		}
		seq := Wrap(brute.Solver{})
		par := Wrap(brute.Solver{})
		par.Workers = 4
		rSeq := seq.Solve(g)
		rPar := par.Solve(g)
		if rSeq.Feasible != rPar.Feasible || rSeq.Cost != rPar.Cost || rSeq.States != rPar.States {
			t.Fatalf("parallel diverged: seq (f=%v c=%v s=%d), par (f=%v c=%v s=%d)",
				rSeq.Feasible, rSeq.Cost, rSeq.States, rPar.Feasible, rPar.Cost, rPar.States)
		}
		for i := range rSeq.Selection {
			if rSeq.Selection[i] != rPar.Selection[i] {
				t.Fatalf("selections differ at vertex %d", i)
			}
		}
	}
}

// TestDecompInfeasibleComponent: one infeasible component must make
// the whole instance infeasible even when the others are fine.
func TestDecompInfeasibleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g := cliqueChain(rng, 2, 4, 2)
	n := g.NumVertices()
	// Append a K4 whose first vertex has no finite color.
	h := pbqp.New(n+4, 2)
	for u := 0; u < n; u++ {
		h.SetVertexCost(u, g.VertexCost(u))
	}
	for _, e := range g.Edges() {
		h.SetEdgeCost(e.U, e.V, e.M)
	}
	h.SetVertexCost(n, cost.Vector{cost.Inf, cost.Inf})
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			mat := cost.NewMatrix(2, 2)
			mat.Set(0, 1, 1)
			h.SetEdgeCost(n+i, n+j, mat)
		}
	}
	checkAgainstBrute(t, h, 1)
	res := Wrap(brute.Solver{}).Solve(h)
	if res.Feasible {
		t.Fatal("infeasible component went unnoticed")
	}
}

// TestDecompInfo checks the reported statistics on a crafted instance:
// two K4s sharing a vertex (residual: 1 component, 2 blocks, 1 cut
// vertex), plus a triangle and an isolated vertex that reduce away.
func TestDecompInfo(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	core := cliqueChain(rng, 2, 4, 2) // 7 vertices, two K4 blocks
	n := core.NumVertices()
	g := pbqp.New(n+4, 2)
	for u := 0; u < n; u++ {
		g.SetVertexCost(u, core.VertexCost(u))
	}
	for _, e := range core.Edges() {
		g.SetEdgeCost(e.U, e.V, e.M)
	}
	// Triangle n..n+2 (reduces via R2/R1/R0) and isolated n+3 (R0).
	tri := cost.NewMatrix(2, 2)
	tri.Set(0, 0, 2)
	g.SetVertexCost(n, cost.Vector{1, 0})
	g.SetVertexCost(n+1, cost.Vector{0, 1})
	g.SetVertexCost(n+2, cost.Vector{3, 1})
	g.SetEdgeCost(n, n+1, tri)
	g.SetEdgeCost(n+1, n+2, tri)
	g.SetEdgeCost(n, n+2, tri)
	g.SetVertexCost(n+3, cost.Vector{2, 5})

	res, info := Wrap(brute.Solver{}).SolveWithInfo(context.Background(), g)
	if !res.Feasible {
		t.Fatal("crafted instance should be feasible")
	}
	want := Info{
		OriginalVertices: n + 4,
		Eliminated:       4,
		ResidualVertices: n,
		Components:       1,
		Blocks:           2,
		LargestBlock:     4,
		CutVertices:      1,
	}
	if info != want {
		t.Fatalf("info %+v, want %+v", info, want)
	}
	checkAgainstBrute(t, g, 1)
}

// TestDecompCancelled: an expired context truncates immediately.
func TestDecompCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := cliqueChain(rng, 3, 4, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Wrap(brute.Solver{}).SolveCtx(ctx, g)
	if !res.Truncated || res.Feasible {
		t.Fatalf("cancelled solve: truncated=%v feasible=%v, want true/false", res.Truncated, res.Feasible)
	}
}

// TestDecompInputNotMutated: the wrapper must leave the caller's graph
// untouched (it clones via reduce.Apply and folds only into the clone).
func TestDecompInputNotMutated(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	g := cliqueChain(rng, 2, 4, 2)
	before := g.String()
	_ = Wrap(brute.Solver{}).Solve(g)
	if g.String() != before {
		t.Fatal("decomp mutated its input graph")
	}
}

// TestDecompScholzInner: with a heuristic inner solver the wrapper
// must stay sound — any feasible claim re-evaluates to its cost and
// never beats the optimum.
func TestDecompScholzInner(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 100; trial++ {
		g := intGraph(rng, 1+rng.Intn(10), 1+rng.Intn(3), rng.Float64()*0.7, 0.12)
		exact := brute.Solver{}.Solve(g)
		res := Wrap(scholz.Solver{}).Solve(g)
		if res.Feasible {
			if !exact.Feasible {
				t.Fatalf("decomp(scholz) feasible on an infeasible graph\n%s", g)
			}
			if got := g.TotalCost(res.Selection); got != res.Cost {
				t.Fatalf("decomp(scholz) selection re-evaluates to %v, reported %v\n%s", got, res.Cost, g)
			}
			if res.Cost.Less(exact.Cost) {
				t.Fatalf("decomp(scholz) cost %v beats the optimum %v\n%s", res.Cost, exact.Cost, g)
			}
		}
	}
}

func TestDecompName(t *testing.T) {
	if got := Wrap(brute.Solver{}).Name(); got != "decomp(brute)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestDecompEmptyGraph(t *testing.T) {
	res := Wrap(brute.Solver{}).Solve(pbqp.New(0, 2))
	if !res.Feasible || !res.Cost.IsZero() {
		t.Fatalf("empty graph: feasible=%v cost=%v", res.Feasible, res.Cost)
	}
}

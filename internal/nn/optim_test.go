package nn

import (
	"math/rand"
	"testing"

	"pbqprl/internal/tensor"
)

// fakeGradSteps runs n Adam steps over params with a deterministic
// pseudo-gradient stream.
func fakeGradSteps(opt *Adam, params []*Param, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < n; s++ {
		for _, p := range params {
			for i := range p.G {
				p.G[i] = rng.NormFloat64()
			}
		}
		opt.Step(params)
	}
}

func makeParams(sizes ...int) []*Param {
	var ps []*Param
	for i, n := range sizes {
		p := &Param{Name: "p", W: tensor.NewVec(n), G: tensor.NewVec(n)}
		for j := range p.W {
			p.W[j] = float64(i+1) / float64(j+1)
		}
		ps = append(ps, p)
	}
	return ps
}

func TestAdamStateRoundTripIsBitIdentical(t *testing.T) {
	// Run A: 5 + 5 steps uninterrupted.
	pa := makeParams(7, 3, 12)
	oa := NewAdam(1e-2)
	fakeGradSteps(oa, pa, 42, 5)

	// Run B: 5 steps, snapshot, restore into a fresh optimizer (and
	// fresh params copied from A's midpoint), 5 more steps.
	pb := makeParams(7, 3, 12)
	for i := range pb {
		copy(pb[i].W, pa[i].W)
	}
	ob := NewAdam(1e-2)
	if err := ob.LoadState(pb, oa.State(pa)); err != nil {
		t.Fatal(err)
	}
	fakeGradSteps(oa, pa, 43, 5)
	fakeGradSteps(ob, pb, 43, 5)

	for i := range pa {
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				t.Fatalf("param %d entry %d diverged: %v vs %v", i, j, pa[i].W[j], pb[i].W[j])
			}
		}
	}
}

func TestAdamStateBeforeFirstStep(t *testing.T) {
	params := makeParams(4)
	opt := NewAdam(1e-3)
	st := opt.State(params)
	if st.T != 0 || len(st.M) != 1 || len(st.M[0]) != 4 {
		t.Errorf("fresh state = %+v", st)
	}
	other := NewAdam(1e-3)
	if err := other.LoadState(params, st); err != nil {
		t.Fatal(err)
	}
	fakeGradSteps(opt, params, 1, 1) // must not panic with restored zero moments
}

func TestAdamLoadStateValidates(t *testing.T) {
	params := makeParams(4, 2)
	opt := NewAdam(1e-3)
	st := opt.State(params)

	if err := NewAdam(1e-3).LoadState(params[:1], st); err == nil {
		t.Error("count mismatch accepted")
	}
	bad := st
	bad.M = [][]float64{{1}, {1, 2}}
	if err := NewAdam(1e-3).LoadState(params, bad); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Package nn is a small neural-network library with explicit forward and
// backward passes: dense layers, ReLU/Tanh nonlinearities, an online
// batch-normalization variant, residual blocks, softmax with
// cross-entropy, SGD and Adam optimizers, and Xavier initialization.
//
// Modules process one sample at a time and cache the activations of the
// most recent Forward call; Backward consumes that cache, accumulates
// parameter gradients, and returns the gradient with respect to the
// module input. Minibatch training accumulates gradients over samples
// and then takes one optimizer step, which is mathematically identical
// to batched backpropagation.
package nn

import (
	"math"
	"math/rand"

	"pbqprl/internal/tensor"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Name string
	W    tensor.Vec // weights (flattened)
	G    tensor.Vec // accumulated gradient, same shape
}

// newParam allocates a named parameter of size n.
func newParam(name string, n int) *Param {
	return &Param{Name: name, W: tensor.NewVec(n), G: tensor.NewVec(n)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }

// Module is a differentiable computation over single samples.
type Module interface {
	// Forward computes the module output for input x and caches the
	// activations needed by Backward.
	Forward(x tensor.Vec) tensor.Vec
	// Backward takes dL/d(output) for the most recent Forward call,
	// accumulates dL/d(params) into the parameter gradients, and
	// returns dL/d(input).
	Backward(grad tensor.Vec) tensor.Vec
	// Params returns the module's trainable parameters.
	Params() []*Param
}

// Trainable is implemented by modules whose behaviour differs between
// training and inference (currently BatchNorm).
type Trainable interface {
	SetTraining(bool)
}

// SetTraining switches every Trainable submodule of m.
func SetTraining(m Module, training bool) {
	Visit(m, func(sub Module) {
		if t, ok := sub.(Trainable); ok {
			t.SetTraining(training)
		}
	})
}

// ZeroGrads clears the gradients of every parameter of m.
func ZeroGrads(m Module) {
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
}

// Dense is a fully connected layer y = W·x + b.
type Dense struct {
	In, Out int
	w, b    *Param
	x       tensor.Vec // cached input
}

// NewDense returns a dense layer with Xavier-uniform initialized weights.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out, w: newParam("dense.w", in*out), b: newParam("dense.b", out)}
	bound := math.Sqrt(6.0 / float64(in+out))
	for i := range d.w.W {
		d.w.W[i] = (rng.Float64()*2 - 1) * bound
	}
	return d
}

// Forward implements Module.
func (d *Dense) Forward(x tensor.Vec) tensor.Vec {
	d.x = x.Clone()
	m := &tensor.Mat{R: d.Out, C: d.In, W: d.w.W}
	y := m.MulVec(x)
	y.AddInPlace(d.b.W)
	return y
}

// Backward implements Module.
func (d *Dense) Backward(grad tensor.Vec) tensor.Vec {
	gw := &tensor.Mat{R: d.Out, C: d.In, W: d.w.G}
	gw.AddOuter(1, grad, d.x)
	d.b.G.AddInPlace(grad)
	m := &tensor.Mat{R: d.Out, C: d.In, W: d.w.W}
	return m.MulTVec(grad)
}

// Params implements Module.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// ReLU is the elementwise rectifier.
type ReLU struct{ x tensor.Vec }

// Forward implements Module.
func (r *ReLU) Forward(x tensor.Vec) tensor.Vec {
	r.x = x.Clone()
	y := x.Clone()
	for i, v := range y {
		if v < 0 {
			y[i] = 0
		}
	}
	return y
}

// Backward implements Module.
func (r *ReLU) Backward(grad tensor.Vec) tensor.Vec {
	g := grad.Clone()
	for i := range g {
		if r.x[i] <= 0 {
			g[i] = 0
		}
	}
	return g
}

// Params implements Module.
func (r *ReLU) Params() []*Param { return nil }

// Tanh is the elementwise hyperbolic tangent.
type Tanh struct{ y tensor.Vec }

// Forward implements Module.
func (t *Tanh) Forward(x tensor.Vec) tensor.Vec {
	y := make(tensor.Vec, len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	t.y = y.Clone()
	return y
}

// Backward implements Module.
func (t *Tanh) Backward(grad tensor.Vec) tensor.Vec {
	g := grad.Clone()
	for i := range g {
		g[i] *= 1 - t.y[i]*t.y[i]
	}
	return g
}

// Params implements Module.
func (t *Tanh) Params() []*Param { return nil }

// BatchNorm normalizes each feature with running mean/variance
// statistics and applies a learned affine transform. The statistics are
// updated online (exponential moving average over the sample stream)
// while training and frozen during inference; the backward pass treats
// them as constants. This "online" variant replaces minibatch statistics
// because the library processes one sample at a time; it fills the same
// conditioning role as the paper's batch-normalization layers.
type BatchNorm struct {
	Dim         int
	gamma, beta *Param
	mean, vari  tensor.Vec
	momentum    float64
	eps         float64
	training    bool
	x           tensor.Vec
}

// NewBatchNorm returns a BatchNorm over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Dim:      dim,
		gamma:    newParam("bn.gamma", dim),
		beta:     newParam("bn.beta", dim),
		mean:     tensor.NewVec(dim),
		vari:     tensor.NewVec(dim),
		momentum: 0.01,
		eps:      1e-5,
	}
	for i := range bn.gamma.W {
		bn.gamma.W[i] = 1
		bn.vari[i] = 1
	}
	return bn
}

// SetTraining implements Trainable.
func (bn *BatchNorm) SetTraining(t bool) { bn.training = t }

// Forward implements Module.
func (bn *BatchNorm) Forward(x tensor.Vec) tensor.Vec {
	if bn.training {
		for i, v := range x {
			d := v - bn.mean[i]
			bn.mean[i] += bn.momentum * d
			bn.vari[i] += bn.momentum * (d*d - bn.vari[i])
		}
	}
	bn.x = x.Clone()
	y := make(tensor.Vec, len(x))
	for i, v := range x {
		y[i] = bn.gamma.W[i]*(v-bn.mean[i])/math.Sqrt(bn.vari[i]+bn.eps) + bn.beta.W[i]
	}
	return y
}

// Backward implements Module.
func (bn *BatchNorm) Backward(grad tensor.Vec) tensor.Vec {
	g := make(tensor.Vec, len(grad))
	for i, gv := range grad {
		inv := 1 / math.Sqrt(bn.vari[i]+bn.eps)
		bn.gamma.G[i] += gv * (bn.x[i] - bn.mean[i]) * inv
		bn.beta.G[i] += gv
		g[i] = gv * bn.gamma.W[i] * inv
	}
	return g
}

// Params implements Module.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.gamma, bn.beta} }

// Sequential chains modules.
type Sequential struct{ mods []Module }

// NewSequential returns the composition of mods, applied left to right.
func NewSequential(mods ...Module) *Sequential { return &Sequential{mods: mods} }

// Forward implements Module.
func (s *Sequential) Forward(x tensor.Vec) tensor.Vec {
	for _, m := range s.mods {
		x = m.Forward(x)
	}
	return x
}

// Backward implements Module.
func (s *Sequential) Backward(grad tensor.Vec) tensor.Vec {
	for i := len(s.mods) - 1; i >= 0; i-- {
		grad = s.mods[i].Backward(grad)
	}
	return grad
}

// Params implements Module.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, m := range s.mods {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// Residual computes y = x + body(x); input and output widths must match.
type Residual struct {
	body Module
}

// NewResidual wraps body in a skip connection.
func NewResidual(body Module) *Residual { return &Residual{body: body} }

// Forward implements Module.
func (r *Residual) Forward(x tensor.Vec) tensor.Vec {
	y := r.body.Forward(x)
	return y.Add(x)
}

// Backward implements Module.
func (r *Residual) Backward(grad tensor.Vec) tensor.Vec {
	g := r.body.Backward(grad)
	return g.Add(grad)
}

// Params implements Module.
func (r *Residual) Params() []*Param { return r.body.Params() }

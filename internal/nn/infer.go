package nn

// Read-only batched inference. InferBatch walks a module tree built
// from this package's concrete types and evaluates a whole batch of
// input rows in one pass per layer, without touching the activation
// caches that Forward keeps for Backward and without updating
// BatchNorm statistics. Every output element is computed by exactly
// the operations (in the same order) the scalar Forward performs on
// that row, so InferBatch is bit-identical to row-by-row Forward in
// inference mode. Buffers come from an InferScratch arena owned by the
// caller; the steady-state pass allocates nothing.

import (
	"math"

	"pbqprl/internal/tensor"
)

// InferScratch is the buffer arena of one InferBatch caller. A scratch
// must not be shared between goroutines; layers take buffers from it
// in deterministic walk order, so after the first call on a given
// architecture every take is a reuse.
type InferScratch struct {
	bufs []*tensor.Mat
	next int
}

// Reset rewinds the arena; the next InferBatch call reuses the buffers
// from the start. Callers reset once per batch.
func (sc *InferScratch) Reset() { sc.next = 0 }

// take returns the next arena buffer resized to r×c, reusing its
// backing array whenever the capacity suffices.
func (sc *InferScratch) take(r, c int) *tensor.Mat {
	if sc.next < len(sc.bufs) {
		m := sc.bufs[sc.next]
		sc.next++
		if cap(m.W) >= r*c {
			m.W = m.W[:r*c]
			m.R, m.C = r, c
			return m
		}
		//pbqpvet:ignore hotalloc arena growth on first sight of a larger batch; steady state reuses the buffer
		m.W = tensor.NewVec(r * c)
		m.R, m.C = r, c
		return m
	}
	//pbqpvet:ignore hotalloc arena growth on the first pass over a new architecture; steady state reuses the buffer
	m := tensor.NewMat(r, c)
	sc.bufs = append(sc.bufs, m)
	sc.next++
	return m
}

// InferBatch evaluates mod on every row of x (batch × in) and returns
// the batch × out result in an arena buffer, valid until the next
// Reset. The module tree is read-only during the walk: activation
// caches stay untouched and BatchNorm uses its frozen statistics. It
// panics on a module type it does not know or on a BatchNorm left in
// training mode — evaluating through the batched path while statistics
// are being updated would silently diverge from the scalar path.
//
//pbqpvet:hotpath
func InferBatch(mod Module, x *tensor.Mat, sc *InferScratch) *tensor.Mat {
	switch m := mod.(type) {
	case *Dense:
		w := &tensor.Mat{R: m.Out, C: m.In, W: m.w.W}
		out := sc.take(x.R, m.Out)
		tensor.MatMulTInto(out, x, w)
		for r := 0; r < out.R; r++ {
			out.Row(r).AddInPlace(m.b.W)
		}
		return out
	case *ReLU:
		out := sc.take(x.R, x.C)
		for i, v := range x.W {
			if v < 0 {
				out.W[i] = 0
			} else {
				out.W[i] = v
			}
		}
		return out
	case *Tanh:
		out := sc.take(x.R, x.C)
		for i, v := range x.W {
			out.W[i] = math.Tanh(v)
		}
		return out
	case *BatchNorm:
		if m.training {
			//pbqpvet:ignore panicfree training-mode batched inference would silently diverge from the scalar path; failing fast is the contract
			panic("nn: InferBatch through a training-mode BatchNorm")
		}
		out := sc.take(x.R, x.C)
		for r := 0; r < x.R; r++ {
			xr, or := x.Row(r), out.Row(r)
			for i, v := range xr {
				// identical expression (and rounding order) to the
				// scalar Forward
				or[i] = m.gamma.W[i]*(v-m.mean[i])/math.Sqrt(m.vari[i]+m.eps) + m.beta.W[i]
			}
		}
		return out
	case *Sequential:
		for _, sub := range m.mods {
			x = InferBatch(sub, x, sc)
		}
		return x
	case *Residual:
		// body buffers come from later arena slots, so x stays intact
		// for the skip connection
		y := InferBatch(m.body, x, sc)
		out := sc.take(x.R, x.C)
		for i := range out.W {
			out.W[i] = y.W[i] + x.W[i]
		}
		return out
	default:
		//pbqpvet:ignore panicfree unknown module type is a code bug in the net assembly, not a runtime condition
		panic("nn: InferBatch on unknown module type")
	}
}

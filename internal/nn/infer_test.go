package nn

import (
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/tensor"
)

// torsoLike builds the module shape net.PBQPNet uses: dense + batchnorm
// + relu with residual blocks, plus a tanh to cover every module type.
func torsoLike(rng *rand.Rand, in, hidden int) Module {
	block := NewResidual(NewSequential(
		NewDense(rng, hidden, hidden), NewBatchNorm(hidden), &ReLU{},
		NewDense(rng, hidden, hidden), NewBatchNorm(hidden),
	))
	return NewSequential(
		NewDense(rng, in, hidden), NewBatchNorm(hidden), &ReLU{},
		block, &ReLU{},
		NewDense(rng, hidden, hidden), &Tanh{},
	)
}

// warmStats runs a few training-mode samples through mod so the
// BatchNorm statistics are not the trivial (0, 1) initialization.
func warmStats(rng *rand.Rand, mod Module, in int) {
	SetTraining(mod, true)
	for i := 0; i < 7; i++ {
		x := make(tensor.Vec, in)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		mod.Forward(x)
	}
	SetTraining(mod, false)
}

// TestInferBatchBitIdenticalToForward is the walker's core contract:
// one batched pass equals row-by-row scalar Forward, bit for bit.
func TestInferBatchBitIdenticalToForward(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const in, hidden = 10, 16
	mod := torsoLike(rng, in, hidden)
	warmStats(rng, mod, in)
	sc := &InferScratch{}
	for _, batch := range []int{1, 2, 5, 8, 13} {
		x := tensor.NewMat(batch, in)
		for i := range x.W {
			x.W[i] = rng.NormFloat64()
		}
		sc.Reset()
		got := InferBatch(mod, x, sc)
		for r := 0; r < batch; r++ {
			want := mod.Forward(x.Row(r))
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got.At(r, i)) {
					t.Fatalf("batch %d row %d col %d: got %x want %x",
						batch, r, i, math.Float64bits(got.At(r, i)), math.Float64bits(want[i]))
				}
			}
		}
	}
}

// TestInferBatchLeavesModuleUntouched pins the read-only property: the
// walker neither updates BatchNorm statistics nor the Forward caches.
func TestInferBatchLeavesModuleUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const in, hidden = 6, 8
	mod := torsoLike(rng, in, hidden)
	warmStats(rng, mod, in)

	probe := make(tensor.Vec, in)
	for j := range probe {
		probe[j] = rng.NormFloat64()
	}
	before := mod.Forward(probe).Clone()

	sc := &InferScratch{}
	x := tensor.NewMat(4, in)
	for i := range x.W {
		x.W[i] = rng.NormFloat64()
	}
	InferBatch(mod, x, sc)

	after := mod.Forward(probe)
	for i := range before {
		if math.Float64bits(before[i]) != math.Float64bits(after[i]) {
			t.Fatalf("InferBatch changed module state: forward[%d] %x -> %x",
				i, math.Float64bits(before[i]), math.Float64bits(after[i]))
		}
	}
}

// TestInferBatchAllocFree: after the first pass sizes the arena, the
// steady-state batched pass performs zero allocations.
func TestInferBatchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const in, hidden = 10, 16
	mod := torsoLike(rng, in, hidden)
	warmStats(rng, mod, in)
	sc := &InferScratch{}
	x := tensor.NewMat(8, in)
	for i := range x.W {
		x.W[i] = rng.NormFloat64()
	}
	sc.Reset()
	InferBatch(mod, x, sc) // size the arena
	if n := testing.AllocsPerRun(50, func() {
		sc.Reset()
		InferBatch(mod, x, sc)
	}); n != 0 {
		t.Fatalf("steady-state InferBatch allocates %.1f times per run", n)
	}
}

// TestInferBatchTrainingModePanics: evaluating through a training-mode
// BatchNorm must fail fast instead of silently diverging.
func TestInferBatchTrainingModePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	mod := torsoLike(rng, 4, 4)
	SetTraining(mod, true)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	InferBatch(mod, tensor.NewMat(1, 4), &InferScratch{})
}

// TestSoftmaxAllInfiniteLogits is the saturated-vertex regression: when
// every unmasked logit is -∞ the old code produced NaN probabilities
// (exp(-∞ − -∞)); the defined result is the all-zero distribution.
func TestSoftmaxAllInfiniteLogits(t *testing.T) {
	neg := math.Inf(-1)
	cases := []struct {
		logits tensor.Vec
		mask   []bool
	}{
		{tensor.Vec{neg, neg, neg}, nil},
		{tensor.Vec{neg, 1, neg}, []bool{true, false, true}},
		{tensor.Vec{1, 2, 3}, []bool{false, false, false}},
	}
	for i, c := range cases {
		got := Softmax(c.logits, c.mask)
		for j, p := range got {
			if p != 0 || math.Signbit(p) {
				t.Errorf("case %d: Softmax[%d] = %v, want +0", i, j, p)
			}
		}
	}
}

// TestSoftmaxIntoMatchesSoftmax: the Into variant is the same function.
func TestSoftmaxIntoMatchesSoftmax(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(12)
		logits := make(tensor.Vec, n)
		mask := make([]bool, n)
		for i := range logits {
			logits[i] = rng.NormFloat64() * 3
			mask[i] = rng.Intn(4) > 0
		}
		want := Softmax(logits, mask)
		got := make(tensor.Vec, n)
		for i := range got {
			got[i] = math.NaN()
		}
		SoftmaxInto(got, logits, mask)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d: SoftmaxInto[%d] = %x, want %x", trial, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

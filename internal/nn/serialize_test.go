package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"pbqprl/internal/tensor"
)

func buildNet(seed int64) Module {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		NewDense(rng, 3, 8), NewBatchNorm(8), &ReLU{},
		NewResidual(NewSequential(NewDense(rng, 8, 8), &Tanh{})),
		NewDense(rng, 8, 2),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := buildNet(1)
	// touch batchnorm stats so state serialization is exercised
	SetTraining(src, true)
	src.Forward(tensor.Vec{1, -2, 3})
	SetTraining(src, false)

	var buf bytes.Buffer
	if err := Save(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := buildNet(2) // different init
	if err := Load(&buf, dst); err != nil {
		t.Fatal(err)
	}
	x := tensor.Vec{0.5, 0.25, -1}
	a, b := src.Forward(x), dst.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ after load: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, buildNet(1)); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	other := NewSequential(NewDense(rng, 3, 4))
	if err := Load(&buf, other); err == nil {
		t.Error("Load accepted a mismatched architecture")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if err := Load(bytes.NewReader([]byte("not a checkpoint")), buildNet(1)); err == nil {
		t.Error("Load accepted garbage")
	}
}

func TestCopyInto(t *testing.T) {
	src, dst := buildNet(4), buildNet(5)
	SetTraining(src, true)
	src.Forward(tensor.Vec{2, 2, 2})
	SetTraining(src, false)
	if err := CopyInto(dst, src); err != nil {
		t.Fatal(err)
	}
	x := tensor.Vec{-1, 0, 1}
	a, b := src.Forward(x), dst.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ after CopyInto")
		}
	}
	// mutating dst must not affect src
	dst.Params()[0].W[0] += 1
	if src.Params()[0].W[0] == dst.Params()[0].W[0] {
		t.Error("CopyInto aliased parameters")
	}
}

func TestCopyIntoRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if err := CopyInto(NewSequential(NewDense(rng, 2, 2)), buildNet(1)); err == nil {
		t.Error("CopyInto accepted mismatched architectures")
	}
}

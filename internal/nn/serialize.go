package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"pbqprl/internal/tensor"
)

// Stateful is implemented by modules with non-trainable state that must
// survive checkpointing (BatchNorm running statistics).
type Stateful interface {
	// StateVecs returns the state tensors; they are serialized and
	// restored in place, in order.
	StateVecs() []tensor.Vec
}

// StateVecs implements Stateful for BatchNorm.
func (bn *BatchNorm) StateVecs() []tensor.Vec { return []tensor.Vec{bn.mean, bn.vari} }

// Visit calls f on m and, recursively, on every submodule of Sequential
// and Residual containers, in definition order.
func Visit(m Module, f func(Module)) {
	f(m)
	switch t := m.(type) {
	case *Sequential:
		for _, sub := range t.mods {
			Visit(sub, f)
		}
	case *Residual:
		Visit(t.body, f)
	}
}

// snapshot is the serialized form of a module's tensors.
type snapshot struct {
	Params [][]float64
	State  [][]float64
}

// Collect gathers a module's parameter and state tensors in
// deterministic order, for callers that compose Modules with non-Module
// components (the GCN) and serialize everything themselves.
func Collect(m Module) (params, state []tensor.Vec) { return collect(m) }

// SaveTensors serializes an ordered list of tensors.
func SaveTensors(w io.Writer, tensors []tensor.Vec) error {
	snap := snapshot{}
	for _, t := range tensors {
		snap.Params = append(snap.Params, t)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// LoadTensors restores tensors saved by SaveTensors, in order, in place.
func LoadTensors(r io.Reader, tensors []tensor.Vec) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	if len(snap.Params) != len(tensors) {
		return fmt.Errorf("nn: checkpoint has %d tensors, want %d", len(snap.Params), len(tensors))
	}
	for i, t := range tensors {
		if len(snap.Params[i]) != len(t) {
			return fmt.Errorf("nn: tensor %d has length %d, want %d", i, len(snap.Params[i]), len(t))
		}
		copy(t, snap.Params[i])
	}
	return nil
}

// collect gathers parameter and state tensors in deterministic order.
func collect(m Module) (params, state []tensor.Vec) {
	Visit(m, func(sub Module) {
		switch t := sub.(type) {
		case *Sequential, *Residual:
			// containers contribute via their children
		default:
			for _, p := range t.Params() {
				params = append(params, p.W)
			}
			if s, ok := t.(Stateful); ok {
				state = append(state, s.StateVecs()...)
			}
		}
	})
	return params, state
}

// Save serializes every parameter and state tensor of m.
func Save(w io.Writer, m Module) error {
	params, state := collect(m)
	snap := snapshot{}
	for _, p := range params {
		snap.Params = append(snap.Params, p)
	}
	for _, s := range state {
		snap.State = append(snap.State, s)
	}
	return gob.NewEncoder(w).Encode(snap)
}

// Load restores tensors saved by Save into an identically structured
// module. It fails if the architecture (tensor counts or shapes) differs.
func Load(r io.Reader, m Module) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	params, state := collect(m)
	if len(snap.Params) != len(params) || len(snap.State) != len(state) {
		return fmt.Errorf("nn: checkpoint has %d/%d tensors, module wants %d/%d",
			len(snap.Params), len(snap.State), len(params), len(state))
	}
	for i, p := range params {
		if len(snap.Params[i]) != len(p) {
			return fmt.Errorf("nn: parameter %d has length %d, want %d", i, len(snap.Params[i]), len(p))
		}
		copy(p, snap.Params[i])
	}
	for i, s := range state {
		if len(snap.State[i]) != len(s) {
			return fmt.Errorf("nn: state %d has length %d, want %d", i, len(snap.State[i]), len(s))
		}
		copy(s, snap.State[i])
	}
	return nil
}

// CopyInto copies every parameter and state tensor of src into dst,
// which must have the identical architecture. It is how the self-play
// trainer clones the current network into the best network.
func CopyInto(dst, src Module) error {
	sp, ss := collect(src)
	dp, ds := collect(dst)
	if len(sp) != len(dp) || len(ss) != len(ds) {
		return fmt.Errorf("nn: architecture mismatch: %d/%d vs %d/%d tensors", len(sp), len(ss), len(dp), len(ds))
	}
	for i := range sp {
		if len(sp[i]) != len(dp[i]) {
			return fmt.Errorf("nn: parameter %d shape mismatch", i)
		}
		copy(dp[i], sp[i])
	}
	for i := range ss {
		if len(ss[i]) != len(ds[i]) {
			return fmt.Errorf("nn: state %d shape mismatch", i)
		}
		copy(ds[i], ss[i])
	}
	return nil
}

package nn

import (
	"math"

	"pbqprl/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step updates every parameter from its accumulated gradient and
	// clears the gradients.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]tensor.Vec
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]tensor.Vec)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum == 0 {
			p.W.AddScaled(-s.LR, p.G)
		} else {
			v, ok := s.vel[p]
			if !ok {
				v = tensor.NewVec(len(p.W))
				s.vel[p] = v
			}
			for i := range v {
				v[i] = s.Momentum*v[i] + p.G[i]
				p.W[i] -= s.LR * v[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015), the paper's choice for
// training the networks.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]tensor.Vec
}

// NewAdam returns an Adam optimizer with the standard β/ε defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]tensor.Vec), v: make(map[*Param]tensor.Vec),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.NewVec(len(p.W))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.NewVec(len(p.W))
			a.v[p] = v
		}
		for i, g := range p.G {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / c1
			vHat := v[i] / c2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

package nn

import (
	"fmt"
	"math"

	"pbqprl/internal/tensor"
)

// Optimizer applies accumulated gradients to parameters.
type Optimizer interface {
	// Step updates every parameter from its accumulated gradient and
	// clears the gradients.
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      map[*Param]tensor.Vec
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, vel: make(map[*Param]tensor.Vec)}
}

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
		if s.Momentum == 0 {
			p.W.AddScaled(-s.LR, p.G)
		} else {
			v, ok := s.vel[p]
			if !ok {
				v = tensor.NewVec(len(p.W))
				s.vel[p] = v
			}
			for i := range v {
				v[i] = s.Momentum*v[i] + p.G[i]
				p.W[i] -= s.LR * v[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015), the paper's choice for
// training the networks.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  map[*Param]tensor.Vec
}

// NewAdam returns an Adam optimizer with the standard β/ε defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*Param]tensor.Vec), v: make(map[*Param]tensor.Vec),
	}
}

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			m = tensor.NewVec(len(p.W))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = tensor.NewVec(len(p.W))
			a.v[p] = v
		}
		for i, g := range p.G {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			mHat := m[i] / c1
			vHat := v[i] / c2
			p.W[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// AdamState is the serializable snapshot of an Adam optimizer: the
// hyperparameters, the step count, and the first/second moment vectors
// in the order of the params slice passed to State. It is what a
// training checkpoint needs for a resumed run to take bit-identical
// optimizer steps.
type AdamState struct {
	LR, Beta1, Beta2, Eps float64
	T                     int
	M, V                  [][]float64
}

// State captures the optimizer's state for params. Parameters the
// optimizer has not stepped yet get zero moments, which is exactly the
// state a fresh Step would create for them.
func (a *Adam) State(params []*Param) AdamState {
	st := AdamState{LR: a.LR, Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps, T: a.t}
	for _, p := range params {
		st.M = append(st.M, momentCopy(a.m[p], len(p.W)))
		st.V = append(st.V, momentCopy(a.v[p], len(p.W)))
	}
	return st
}

// LoadState restores a snapshot taken by State, matching moments to
// params by position. The params slice must list the same parameters in
// the same order (same shapes) as the State call that produced st.
func (a *Adam) LoadState(params []*Param, st AdamState) error {
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("nn: adam state has %d/%d moment vectors, want %d", len(st.M), len(st.V), len(params))
	}
	for i, p := range params {
		if len(st.M[i]) != len(p.W) || len(st.V[i]) != len(p.W) {
			return fmt.Errorf("nn: adam state moment %d has length %d/%d, want %d", i, len(st.M[i]), len(st.V[i]), len(p.W))
		}
	}
	a.LR, a.Beta1, a.Beta2, a.Eps, a.t = st.LR, st.Beta1, st.Beta2, st.Eps, st.T
	a.m = make(map[*Param]tensor.Vec, len(params))
	a.v = make(map[*Param]tensor.Vec, len(params))
	for i, p := range params {
		a.m[p] = tensor.Vec(momentCopy(st.M[i], len(p.W)))
		a.v[p] = tensor.Vec(momentCopy(st.V[i], len(p.W)))
	}
	return nil
}

// momentCopy returns a copy of v, or a zero vector of length n when v
// is nil.
func momentCopy(v []float64, n int) []float64 {
	out := make([]float64, n)
	copy(out, v)
	return out
}

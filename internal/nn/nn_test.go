package nn

import (
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/tensor"
)

// numericalGrad estimates dL/dw by central differences.
func numericalGrad(loss func() float64, w *float64) float64 {
	const h = 1e-5
	orig := *w
	*w = orig + h
	lp := loss()
	*w = orig - h
	lm := loss()
	*w = orig
	return (lp - lm) / (2 * h)
}

// checkModuleGrads verifies parameter and input gradients of a module
// against numerical differentiation for a quadratic loss L = Σ y².
func checkModuleGrads(t *testing.T, m Module, in int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	x := make(tensor.Vec, in)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		y := m.Forward(x)
		s := 0.0
		for _, v := range y {
			s += v * v
		}
		return s
	}
	y := m.Forward(x)
	grad := make(tensor.Vec, len(y))
	for i, v := range y {
		grad[i] = 2 * v
	}
	ZeroGrads(m)
	gx := m.Backward(grad)
	for _, p := range m.Params() {
		for i := range p.W {
			want := numericalGrad(loss, &p.W[i])
			if math.Abs(want-p.G[i]) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("param %s[%d]: analytic %.6f, numeric %.6f", p.Name, i, p.G[i], want)
			}
		}
	}
	for i := range x {
		want := numericalGrad(loss, &x[i])
		if math.Abs(want-gx[i]) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("input[%d]: analytic %.6f, numeric %.6f", i, gx[i], want)
		}
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	checkModuleGrads(t, NewDense(rng, 4, 3), 4)
}

func TestReLUGradients(t *testing.T) {
	checkModuleGrads(t, &ReLU{}, 5)
}

func TestTanhGradients(t *testing.T) {
	checkModuleGrads(t, &Tanh{}, 5)
}

func TestBatchNormGradients(t *testing.T) {
	bn := NewBatchNorm(4)
	// leave training off: stats frozen, gradients exact
	checkModuleGrads(t, bn, 4)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewSequential(NewDense(rng, 4, 6), &ReLU{}, NewDense(rng, 6, 2), &Tanh{})
	checkModuleGrads(t, m, 4)
}

func TestResidualGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewResidual(NewSequential(NewDense(rng, 4, 4), &Tanh{}))
	checkModuleGrads(t, m, 4)
}

func TestDeepTorsoGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	block := func() Module {
		return NewResidual(NewSequential(NewDense(rng, 6, 6), NewBatchNorm(6), &ReLU{}, NewDense(rng, 6, 6), NewBatchNorm(6)))
	}
	m := NewSequential(NewDense(rng, 5, 6), &ReLU{}, block(), block(), NewDense(rng, 6, 3))
	checkModuleGrads(t, m, 5)
}

func TestBatchNormUpdatesStatsOnlyInTraining(t *testing.T) {
	bn := NewBatchNorm(2)
	x := tensor.Vec{10, -10}
	bn.Forward(x)
	if bn.mean[0] != 0 {
		t.Error("stats updated in eval mode")
	}
	SetTraining(bn, true)
	bn.Forward(x)
	if bn.mean[0] == 0 {
		t.Error("stats not updated in training mode")
	}
	SetTraining(bn, false)
	m := bn.mean[0]
	bn.Forward(x)
	if bn.mean[0] != m {
		t.Error("stats updated after switching back to eval")
	}
}

func TestSetTrainingRecurses(t *testing.T) {
	bn := NewBatchNorm(2)
	m := NewSequential(NewResidual(NewSequential(bn)))
	SetTraining(m, true)
	if !bn.training {
		t.Error("SetTraining did not reach nested BatchNorm")
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax(tensor.Vec{1, 2, 3}, nil)
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("ordering broken: %v", p)
	}
	// numerical stability with huge logits
	p = Softmax(tensor.Vec{1000, 1001}, nil)
	if math.IsNaN(p[0]) || math.Abs(p[0]+p[1]-1) > 1e-12 {
		t.Errorf("unstable softmax: %v", p)
	}
}

func TestSoftmaxMask(t *testing.T) {
	p := Softmax(tensor.Vec{5, 1, 1}, []bool{false, true, true})
	if p[0] != 0 {
		t.Errorf("masked entry nonzero: %v", p)
	}
	if math.Abs(p[1]-0.5) > 1e-12 || math.Abs(p[2]-0.5) > 1e-12 {
		t.Errorf("unmasked entries wrong: %v", p)
	}
	p = Softmax(tensor.Vec{1, 2}, []bool{false, false})
	if p[0] != 0 || p[1] != 0 {
		t.Errorf("all-masked softmax = %v, want zeros", p)
	}
}

func TestCrossEntropyGradMatchesNumeric(t *testing.T) {
	logits := tensor.Vec{0.5, -1, 2}
	target := tensor.Vec{0.2, 0.3, 0.5}
	loss := func() float64 { return CrossEntropy(Softmax(logits, nil), target) }
	g := CrossEntropyGrad(Softmax(logits, nil), target, nil)
	for i := range logits {
		want := numericalGrad(loss, &logits[i])
		if math.Abs(want-g[i]) > 1e-5 {
			t.Errorf("dL/dlogit[%d]: analytic %.6f, numeric %.6f", i, g[i], want)
		}
	}
}

func TestL2PenaltyAndGrad(t *testing.T) {
	p := newParam("p", 2)
	p.W[0], p.W[1] = 3, 4
	if got := L2Penalty([]*Param{p}, 0.1); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("L2Penalty = %v, want 2.5", got)
	}
	AddL2Grad([]*Param{p}, 0.1)
	if math.Abs(p.G[0]-0.6) > 1e-12 || math.Abs(p.G[1]-0.8) > 1e-12 {
		t.Errorf("L2 grad = %v", p.G)
	}
}

func TestSGDConvergesOnLinearRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDense(rng, 2, 1)
	opt := NewSGD(0.005, 0.9)
	for step := 0; step < 4000; step++ {
		x := tensor.Vec{rng.NormFloat64(), rng.NormFloat64()}
		want := 3*x[0] - 2*x[1] + 0.5
		y := d.Forward(x)
		d.Backward(tensor.Vec{MSEGrad(y[0], want)})
		opt.Step(d.Params())
	}
	w := d.Params()[0].W
	b := d.Params()[1].W
	if math.Abs(w[0]-3) > 0.05 || math.Abs(w[1]+2) > 0.05 || math.Abs(b[0]-0.5) > 0.05 {
		t.Errorf("did not converge: w=%v b=%v", w, b)
	}
}

func TestAdamConvergesOnClassification(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewSequential(NewDense(rng, 2, 16), &ReLU{}, NewDense(rng, 16, 2))
	opt := NewAdam(0.01)
	sample := func() (tensor.Vec, int) {
		x := tensor.Vec{rng.NormFloat64(), rng.NormFloat64()}
		cls := 0
		if x[0]*x[1] > 0 { // XOR-like quadrant problem
			cls = 1
		}
		return x, cls
	}
	for step := 0; step < 4000; step++ {
		x, cls := sample()
		logits := m.Forward(x)
		p := Softmax(logits, nil)
		target := tensor.Vec{0, 0}
		target[cls] = 1
		m.Backward(CrossEntropyGrad(p, target, nil))
		opt.Step(m.Params())
	}
	correct := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		x, cls := sample()
		logits := m.Forward(x)
		pred := 0
		if logits[1] > logits[0] {
			pred = 1
		}
		if pred == cls {
			correct++
		}
	}
	if acc := float64(correct) / trials; acc < 0.9 {
		t.Errorf("accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestOptimizerClearsGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(rng, 2, 2)
	d.Forward(tensor.Vec{1, 1})
	d.Backward(tensor.Vec{1, 1})
	NewAdam(0.001).Step(d.Params())
	for _, p := range d.Params() {
		for _, g := range p.G {
			if g != 0 {
				t.Fatal("gradients not cleared after Step")
			}
		}
	}
}

package nn

import (
	"math"

	"pbqprl/internal/tensor"
)

// Softmax returns the softmax of logits in a numerically stable way.
// Entries where mask is false are treated as -∞ (probability zero); a
// nil mask enables every entry. If every entry is masked — or every
// unmasked logit is itself -∞, which would otherwise turn the
// denominator into 0/0 — the result is all zeros: the defined
// "distribution over nothing" that callers (MCTS dead-end handling)
// already treat as "no move", instead of a NaN prior.
func Softmax(logits tensor.Vec, mask []bool) tensor.Vec {
	out := make(tensor.Vec, len(logits))
	SoftmaxInto(out, logits, mask)
	return out
}

// SoftmaxInto is Softmax writing into out (same length as logits)
// without allocating; out is fully overwritten. The two are
// bit-identical.
func SoftmaxInto(out, logits tensor.Vec, mask []bool) {
	out.Zero()
	maxv := math.Inf(-1)
	any := false
	for i, v := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		any = true
		if v > maxv {
			maxv = v
		}
	}
	// A fully saturated vertex (every color infinite) produces an
	// all-false mask; an all--∞ logit row produces maxv = -∞ and
	// exp(-∞ − -∞) = NaN. Both collapse to the all-zero distribution.
	if !any || math.IsInf(maxv, -1) {
		return
	}
	sum := 0.0
	for i, v := range logits {
		if mask != nil && !mask[i] {
			continue
		}
		e := math.Exp(v - maxv)
		out[i] = e
		sum += e
	}
	// sum ≥ 1 whenever maxv is finite; a NaN logit is the only way
	// here, and zeros beat NaN probabilities downstream.
	if math.IsNaN(sum) {
		out.Zero()
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// CrossEntropy returns −Σ target_i · log p_i, the policy loss term of
// the paper's loss function. Zero-probability entries with zero target
// contribute nothing.
func CrossEntropy(p, target tensor.Vec) float64 {
	l := 0.0
	for i, t := range target {
		//pbqpvet:ignore floatcmp one-hot targets carry exact zeros; skips the 0*log(p) terms
		if t == 0 {
			continue
		}
		l -= t * math.Log(math.Max(p[i], 1e-12))
	}
	return l
}

// CrossEntropyGrad returns dL/dlogits for L = −Σ target·log softmax(logits):
// the well-known p − target, with masked entries forced to zero.
func CrossEntropyGrad(p, target tensor.Vec, mask []bool) tensor.Vec {
	g := make(tensor.Vec, len(p))
	for i := range p {
		if mask != nil && !mask[i] {
			continue
		}
		g[i] = p[i] - target[i]
	}
	return g
}

// MSE returns (a − b)².
func MSE(a, b float64) float64 { return (a - b) * (a - b) }

// MSEGrad returns d(a−b)²/da = 2(a − b).
func MSEGrad(a, b float64) float64 { return 2 * (a - b) }

// L2Penalty returns c·‖θ‖² over all parameters (the regularization term
// of the paper's loss); AddL2Grad accumulates its gradient 2cθ.
func L2Penalty(params []*Param, c float64) float64 {
	s := 0.0
	for _, p := range params {
		s += p.W.Dot(p.W)
	}
	return c * s
}

// AddL2Grad adds the gradient of L2Penalty into the parameter gradients.
func AddL2Grad(params []*Param, c float64) {
	for _, p := range params {
		p.G.AddScaled(2*c, p.W)
	}
}

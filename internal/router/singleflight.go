package router

import (
	"context"
	"sync"
)

// singleflight coalesces concurrent identical work: the first caller
// for a key becomes the leader and runs the function; every caller
// that arrives while the leader is in flight becomes a follower and
// just waits for the leader's answer. On a repetitive allocation
// workload a recompile storm of one hot function costs one backend
// solve instead of N.
//
// This is a from-scratch stdlib implementation (the module takes no
// external dependencies) with one deliberate deviation from the
// well-known x/sync shape: followers wait under their *own* context,
// so a follower whose request deadline expires gets its context error
// immediately instead of being held hostage by a slow leader. The
// leader's execution context is the caller's responsibility — the
// router hands Do a context detached from any single client
// disconnect (context.WithoutCancel + the request deadline) so an
// impatient leader cannot strand its followers.

// flightResult is what a completed flight hands every waiter.
type flightResult struct {
	status int
	body   []byte
	err    error
}

// flightCall is one in-flight execution.
type flightCall struct {
	done chan struct{}
	res  flightResult
}

// flightGroup tracks in-flight calls by key.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flightCall{}}
}

// Do runs fn for key, coalescing concurrent callers: exactly one
// caller (the leader, leader=true) executes fn; the rest wait for its
// result. A follower whose ctx expires first returns ctx.Err() without
// waiting further. The key is forgotten once the leader finishes, so a
// later request re-executes rather than reusing a stale flight.
func (g *flightGroup) Do(ctx context.Context, key string, fn func() flightResult) (res flightResult, leader bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.res, false
		case <-ctx.Done():
			return flightResult{err: ctx.Err()}, false
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.res = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.res, true
}

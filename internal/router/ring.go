package router

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over backend indices. Each backend
// owns replicasPerBackend points placed by hashing "addr#i", and a
// graph maps to the first point clockwise from its canonical hash.
// Consistent hashing keeps two properties the router wants: the same
// graph always lands on the same backend (so each backend's own
// batching and OS page cache see repeat traffic), and adding or
// removing one backend remaps only ~1/N of the key space instead of
// reshuffling everything.
type ring struct {
	points []ringPoint // sorted by hash
	n      int         // number of distinct backends
}

type ringPoint struct {
	hash    uint64
	backend int
}

// replicasPerBackend is the virtual-node count per backend: enough to
// even out the key-space split across a handful of backends without
// making ring construction noticeable.
const replicasPerBackend = 128

// newRing builds the ring for n backends identified by their addresses
// (the address, not the slice index, determines point placement, so a
// fleet rollout that reorders the backend list does not remap keys).
func newRing(addrs []string) *ring {
	r := &ring{n: len(addrs)}
	for i, addr := range addrs {
		for v := 0; v < replicasPerBackend; v++ {
			r.points = append(r.points, ringPoint{
				hash:    pointHash(addr + "#" + strconv.Itoa(v)),
				backend: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r
}

// pointHash places one virtual node: the first 8 bytes of SHA-256,
// matching the strength of the graph-side key so point placement and
// key placement are uniformly distributed over the same space.
func pointHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// successors returns every backend index in ring order starting from
// the owner of key: element 0 is the primary, element 1 the first
// failover target, and so on — each distinct backend exactly once.
// The order is a pure function of the key, so retries walk a stable
// replica chain instead of stampeding a random backend.
func (r *ring) successors(key [sha256.Size]byte) []int {
	if r.n == 0 {
		return nil
	}
	h := binary.BigEndian.Uint64(key[:8])
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, p.backend)
		}
	}
	return out
}

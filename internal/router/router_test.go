package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbqprl/internal/failpoint"
	"pbqprl/internal/server"
	"pbqprl/internal/server/metrics"
)

// fig2 is the paper's Figure 2 example — small, feasible, and solvable
// by every backend chain.
const fig2 = "pbqp 3 2\nv 0 5 2\nv 1 5 0\nv 2 0 0\ne 0 1 0 inf inf 4\ne 1 2 1 0 0 2\n"

// graphN varies a vertex cost so each i is a distinct cache key with
// unchanged feasibility.
func graphN(i int) string {
	return fmt.Sprintf("pbqp 3 2\nv 0 %d 2\nv 1 5 0\nv 2 0 0\ne 0 1 0 inf inf 4\ne 1 2 1 0 0 2\n", i+1)
}

// okBody is a canned complete feasible answer (cacheable).
const okBody = `{"solver":"stub","result":{"feasible":true,"truncated":false}}`

// testConfig returns a Config tuned for fast tests: no active health
// loop, tiny backoffs, a twitchy breaker, pinned jitter.
func testConfig(backends ...string) Config {
	return Config{
		Backends:         backends,
		MaxTries:         4,
		BackoffBase:      time.Millisecond,
		BackoffMax:       5 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		DefaultDeadline:  5 * time.Second,
		JitterSeed:       1,
	}
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		r.Drain(ctx)
	})
	return r
}

// post sends body to the router's /v1/solve with optional headers.
func post(h http.Handler, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// counterSum adds every counter whose name starts with prefix.
func counterSum(reg *metrics.Registry, prefix string) int64 {
	var sum int64
	for name, v := range reg.Snapshot().Counters {
		if strings.HasPrefix(name, prefix) {
			sum += v
		}
	}
	return sum
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterDecompChainPassThrough: the "decomp:" stage prefix rides
// the chain knob through the router to a real backend, which solves
// via the big-graph decomposition pipeline.
func TestRouterDecompChainPassThrough(t *testing.T) {
	srv, err := server.New(server.Config{Workers: 2, DefaultChain: []string{"scholz"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	r := newTestRouter(t, testConfig(ts.URL))
	rec := post(r.Handler(), fig2, map[string]string{"X-PBQP-Chain": "decomp:brute"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	var resp struct {
		Stats struct {
			Stages []struct {
				Name string `json:"name"`
			} `json:"stages"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response: %v", err)
	}
	if len(resp.Stats.Stages) != 1 || resp.Stats.Stages[0].Name != "decomp(brute)" {
		t.Fatalf("stages %+v, want one decomp(brute) stage", resp.Stats.Stages)
	}
}

// TestRouterCacheHitPath pins the content-addressed cache: the second
// identical request answers from memory without touching a backend.
func TestRouterCacheHitPath(t *testing.T) {
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		w.Write([]byte(okBody))
	}))
	defer ts.Close()
	r := newTestRouter(t, testConfig(ts.URL))

	first := post(r.Handler(), fig2, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("first request: %d %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-PBQP-Cache"); got != "miss" {
		t.Fatalf("first request cache header = %q, want miss", got)
	}
	second := post(r.Handler(), fig2, nil)
	if second.Code != http.StatusOK {
		t.Fatalf("second request: %d %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-PBQP-Cache"); got != "hit" {
		t.Fatalf("second request cache header = %q, want hit", got)
	}
	if second.Body.String() != first.Body.String() {
		t.Fatal("cached answer differs from the original")
	}
	if got := arrivals.Load(); got != 1 {
		t.Fatalf("backend saw %d requests, want 1", got)
	}
	snap := r.Registry().Snapshot()
	if snap.Counters["router_cache_hits_total"] != 1 || snap.Counters["router_cache_misses_total"] != 1 {
		t.Fatalf("cache counters off: %+v", snap.Counters)
	}
}

// TestCanonicalizationSharesCacheSlot pins that two textual spellings
// of the same graph are one key: the canonical hash, not the client's
// bytes, addresses the cache.
func TestCanonicalizationSharesCacheSlot(t *testing.T) {
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		w.Write([]byte(okBody))
	}))
	defer ts.Close()
	r := newTestRouter(t, testConfig(ts.URL))

	// Same graph, scrambled line order plus a comment.
	scrambled := "# same graph\npbqp 3 2\nv 2 0 0\ne 1 2 1 0 0 2\nv 0 5 2\ne 0 1 0 inf inf 4\nv 1 5 0\n"
	if rec := post(r.Handler(), fig2, nil); rec.Code != http.StatusOK {
		t.Fatalf("canonical spelling: %d %s", rec.Code, rec.Body)
	}
	rec := post(r.Handler(), scrambled, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("scrambled spelling: %d %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-PBQP-Cache"); got != "hit" {
		t.Fatalf("scrambled spelling missed the cache (header %q)", got)
	}
	if got := arrivals.Load(); got != 1 {
		t.Fatalf("backend saw %d requests, want 1", got)
	}
}

// TestSingleflightCoalesces64 is the coalescing gate: 64 concurrent
// identical requests cost exactly one backend solve. The backend
// blocks until released, so every request is in flight at once; run
// under -race this also exercises the flight group's synchronization.
func TestSingleflightCoalesces64(t *testing.T) {
	release := make(chan struct{})
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		<-release
		w.Write([]byte(okBody))
	}))
	defer ts.Close()
	r := newTestRouter(t, testConfig(ts.URL))

	const clients = 64
	codes := make([]int, clients)
	headers := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(r.Handler(), fig2, nil)
			codes[i] = rec.Code
			headers[i] = rec.Header().Get("X-PBQP-Cache")
		}(i)
	}
	// Let the leader reach the backend and the followers join the
	// flight, then release the one solve.
	waitFor(t, 5*time.Second, "leader to reach the backend", func() bool { return arrivals.Load() == 1 })
	time.Sleep(200 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := arrivals.Load(); got != 1 {
		t.Fatalf("backend saw %d solves for 64 identical requests, want exactly 1", got)
	}
	var miss, coalesced, hit int
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d failed: %d", i, code)
		}
		switch headers[i] {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		case "hit":
			hit++
		default:
			t.Fatalf("request %d has cache header %q", i, headers[i])
		}
	}
	if miss != 1 {
		t.Fatalf("%d leaders, want 1 (coalesced=%d hit=%d)", miss, coalesced, hit)
	}
	if coalesced == 0 {
		t.Fatal("no request was coalesced")
	}
	if got := r.Registry().Snapshot().Counters["router_coalesced_total"]; got != int64(coalesced) {
		t.Fatalf("coalesced counter %d, want %d", got, coalesced)
	}
}

// TestFailoverOnBackendError pins failover: the primary answering 500
// does not fail the request, the next replica does the work, and the
// failover counter moves.
func TestFailoverOnBackendError(t *testing.T) {
	// Whichever backend is contacted first misbehaves forever.
	var firstID atomic.Int64
	mk := func(id int64) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if firstID.CompareAndSwap(0, id) || firstID.Load() == id {
				http.Error(w, "boom", http.StatusInternalServerError)
				return
			}
			w.Write([]byte(okBody))
		}))
	}
	a, b := mk(1), mk(2)
	defer a.Close()
	defer b.Close()
	r := newTestRouter(t, testConfig(a.URL, b.URL))

	rec := post(r.Handler(), fig2, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("request failed despite a healthy replica: %d %s", rec.Code, rec.Body)
	}
	if got := counterSum(r.Registry(), "router_backend_failovers_total."); got < 1 {
		t.Fatalf("failover counter = %d, want >= 1", got)
	}
	if got := counterSum(r.Registry(), "router_backend_tries_total."); got < 2 {
		t.Fatalf("tries counter = %d, want >= 2", got)
	}
}

// TestFailoverOnTornResponse pins the torn-read path: a response that
// dies after the status line is a transport failure, retried like any
// other.
func TestFailoverOnTornResponse(t *testing.T) {
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		w.Write([]byte(okBody))
	}))
	defer ts.Close()
	if err := failpoint.Enable("router/forward/read", "error*1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)
	r := newTestRouter(t, testConfig(ts.URL))

	rec := post(r.Handler(), fig2, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("request failed on a transient torn response: %d %s", rec.Code, rec.Body)
	}
	if got := failpoint.Hits("router/forward/read"); got != 1 {
		t.Fatalf("torn-response failpoint fired %d times, want 1", got)
	}
	if got := arrivals.Load(); got != 2 {
		t.Fatalf("backend saw %d tries, want 2 (torn then retried)", got)
	}
}

// TestBreakerTripsAndRecovers walks the breaker state machine
// end-to-end: consecutive failures trip it open, open sheds without
// contacting the backend, and a half-open probe after the cooldown
// closes it again — no operator action anywhere.
func TestBreakerTripsAndRecovers(t *testing.T) {
	var healthy atomic.Bool
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		if !healthy.Load() {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(okBody))
	}))
	defer ts.Close()
	r := newTestRouter(t, testConfig(ts.URL)) // threshold 2, cooldown 100ms

	// Request 1 burns its tries against the failing backend and trips
	// the breaker (2 consecutive failures >= threshold).
	if rec := post(r.Handler(), graphN(0), nil); rec.Code != http.StatusBadGateway {
		t.Fatalf("against a failing backend: %d, want 502", rec.Code)
	}
	if got := counterSum(r.Registry(), "router_breaker_trips_total."); got != 1 {
		t.Fatalf("trips counter = %d, want 1", got)
	}
	contactsAfterTrip := arrivals.Load()

	// Request 2 arrives while the breaker is open: shed with 503 +
	// Retry-After, zero backend contact.
	rec := post(r.Handler(), graphN(1), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("while breaker open: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("open-breaker 503 carries no Retry-After")
	}
	if got := arrivals.Load(); got != contactsAfterTrip {
		t.Fatalf("open breaker still contacted the backend (%d -> %d)", contactsAfterTrip, got)
	}

	// Backend recovers; after the cooldown the next request is the
	// half-open probe and closes the breaker.
	healthy.Store(true)
	time.Sleep(150 * time.Millisecond)
	if rec := post(r.Handler(), graphN(2), nil); rec.Code != http.StatusOK {
		t.Fatalf("after recovery: %d %s", rec.Code, rec.Body)
	}
	state := r.Registry().Snapshot().Gauges
	for name, v := range state {
		if strings.HasPrefix(name, "router_breaker_state.") && v != breakerClosed {
			t.Fatalf("breaker did not close after successful probe: %s=%d", name, v)
		}
	}
}

// TestRetryAfterHintHonored pins that a backend's 429 Retry-After
// ejects it from selection for the hinted window instead of being
// hammered by retries.
func TestRetryAfterHintHonored(t *testing.T) {
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		w.Header().Set("Retry-After", "60")
		http.Error(w, "shedding", http.StatusTooManyRequests)
	}))
	defer ts.Close()
	r := newTestRouter(t, testConfig(ts.URL))

	if rec := post(r.Handler(), graphN(0), nil); rec.Code != http.StatusBadGateway {
		t.Fatalf("first request: %d, want 502 after the hinted backend is exhausted", rec.Code)
	}
	if got := arrivals.Load(); got != 1 {
		t.Fatalf("backend contacted %d times, want 1 (hint honored within the request)", got)
	}
	// The hint outlives the request: the next one sheds immediately.
	rec := post(r.Handler(), graphN(1), nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request: %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed answer carries no Retry-After")
	}
	if got := arrivals.Load(); got != 1 {
		t.Fatalf("backend contacted %d times total, want still 1", got)
	}
}

// TestDegradedModeServesCacheHitsAndShedsRest is the total-loss story:
// with every backend gone, cached answers keep flowing and everything
// else sheds with 503 + Retry-After instead of hanging.
func TestDegradedModeServesCacheHitsAndShedsRest(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.Write([]byte(`{"status":"ready"}`))
			return
		}
		w.Write([]byte(okBody))
	}))
	cfg := testConfig(ts.URL)
	cfg.HealthInterval = 10 * time.Millisecond
	cfg.HealthTimeout = 200 * time.Millisecond
	r := newTestRouter(t, cfg)

	if rec := post(r.Handler(), fig2, nil); rec.Code != http.StatusOK {
		t.Fatalf("warm-up request: %d %s", rec.Code, rec.Body)
	}

	// The whole fleet dies. The active prober ejects it.
	ts.Close()
	waitFor(t, 5*time.Second, "prober to eject the dead backend", func() bool {
		return r.Registry().Snapshot().Gauges["router_backend_ready."+strings.TrimPrefix(ts.URL, "http://")] == 0
	})

	start := time.Now()
	hitRec := post(r.Handler(), fig2, nil)
	if hitRec.Code != http.StatusOK || hitRec.Header().Get("X-PBQP-Cache") != "hit" {
		t.Fatalf("cache hit under total loss: %d cache=%q", hitRec.Code, hitRec.Header().Get("X-PBQP-Cache"))
	}
	missRec := post(r.Handler(), graphN(7), nil)
	if missRec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cache miss under total loss: %d, want 503", missRec.Code)
	}
	if missRec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded 503 carries no Retry-After")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("degraded answers took %v; shedding must not hang", elapsed)
	}
	if got := r.Registry().Snapshot().Counters["requests_shed_total"]; got < 1 {
		t.Fatalf("requests_shed_total = %d, want >= 1", got)
	}
}

// TestRouterDrain pins the shutdown story: draining answers 503 with
// Retry-After on both the solve path and readyz, healthz stays 200.
func TestRouterDrain(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(okBody))
	}))
	defer ts.Close()
	r, err := New(testConfig(ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := r.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	rec := post(r.Handler(), fig2, nil)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("draining solve: %d retry-after=%q, want 503 with a hint", rec.Code, rec.Header().Get("Retry-After"))
	}
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	ready := httptest.NewRecorder()
	r.Handler().ServeHTTP(ready, req)
	if ready.Code != http.StatusServiceUnavailable || ready.Header().Get("Retry-After") == "" {
		t.Fatalf("draining readyz: %d retry-after=%q, want 503 with a hint", ready.Code, ready.Header().Get("Retry-After"))
	}
	live := httptest.NewRecorder()
	r.Handler().ServeHTTP(live, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if live.Code != http.StatusOK {
		t.Fatalf("draining healthz: %d, want 200", live.Code)
	}
}

// TestBadInputHandledLocally pins that hostile bodies die at the
// router: no backend sees them.
func TestBadInputHandledLocally(t *testing.T) {
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		w.Write([]byte(okBody))
	}))
	defer ts.Close()
	cfg := testConfig(ts.URL)
	cfg.MaxRequestBytes = 1024
	r := newTestRouter(t, cfg)

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"garbage", "not a graph", http.StatusBadRequest},
		{"hostile header", "pbqp 2000000000 9999\n", http.StatusBadRequest},
		{"oversized", fig2 + strings.Repeat("# padding\n", 200), http.StatusRequestEntityTooLarge},
	} {
		rec := post(r.Handler(), tc.body, nil)
		if rec.Code != tc.want {
			t.Fatalf("%s: %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body)
		}
	}
	if got := arrivals.Load(); got != 0 {
		t.Fatalf("backend saw %d hostile requests, want 0", got)
	}
	rec := post(r.Handler(), fig2, map[string]string{"X-PBQP-Cost-Mode": "bogus"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad cost-mode: %d, want 400", rec.Code)
	}
}

// TestCacheKeyIncludesKnobs pins that the chain and cost-mode knobs
// partition the cache — and that knob normalization ("a, b" vs "a,b")
// does not.
func TestCacheKeyIncludesKnobs(t *testing.T) {
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		w.Write([]byte(okBody))
	}))
	defer ts.Close()
	r := newTestRouter(t, testConfig(ts.URL))

	if rec := post(r.Handler(), fig2, map[string]string{"X-PBQP-Chain": "liberty,scholz"}); rec.Code != http.StatusOK {
		t.Fatalf("first: %d", rec.Code)
	}
	if rec := post(r.Handler(), fig2, map[string]string{"X-PBQP-Chain": " liberty , scholz "}); rec.Header().Get("X-PBQP-Cache") != "hit" {
		t.Fatalf("normalized chain spelling missed the cache: %q", rec.Header().Get("X-PBQP-Cache"))
	}
	if rec := post(r.Handler(), fig2, map[string]string{"X-PBQP-Chain": "scholz"}); rec.Header().Get("X-PBQP-Cache") != "miss" {
		t.Fatalf("different chain hit the same cache slot: %q", rec.Header().Get("X-PBQP-Cache"))
	}
	if rec := post(r.Handler(), fig2, map[string]string{"X-PBQP-Cost-Mode": "spill", "X-PBQP-Chain": "scholz"}); rec.Header().Get("X-PBQP-Cache") != "miss" {
		t.Fatalf("different cost-mode hit the same cache slot: %q", rec.Header().Get("X-PBQP-Cache"))
	}
	if got := arrivals.Load(); got != 3 {
		t.Fatalf("backend saw %d solves, want 3", got)
	}
}

// TestTruncatedAnswersNeverCached pins the cacheability rule: an
// answer cut short by its deadline depends on that deadline and must
// not be replayed to other requests.
func TestTruncatedAnswersNeverCached(t *testing.T) {
	var arrivals atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		arrivals.Add(1)
		w.Write([]byte(`{"solver":"stub","result":{"feasible":true,"truncated":true}}`))
	}))
	defer ts.Close()
	r := newTestRouter(t, testConfig(ts.URL))
	for i := 0; i < 2; i++ {
		if rec := post(r.Handler(), fig2, nil); rec.Header().Get("X-PBQP-Cache") == "hit" {
			t.Fatal("truncated answer was cached")
		}
	}
	if got := arrivals.Load(); got != 2 {
		t.Fatalf("backend saw %d solves, want 2 (no caching of truncated answers)", got)
	}
}

// TestRouterAgainstRealBackends is the integration path: two genuine
// pbqp-serve service instances behind the router, solving for real.
func TestRouterAgainstRealBackends(t *testing.T) {
	mkBackend := func() (*httptest.Server, *server.Server) {
		srv, err := server.New(server.Config{
			Workers:         2,
			DefaultChain:    []string{"liberty", "scholz"},
			DefaultDeadline: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(srv.Handler()), srv
	}
	tsA, srvA := mkBackend()
	tsB, srvB := mkBackend()
	defer tsA.Close()
	defer tsB.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srvA.Drain(ctx)
		srvB.Drain(ctx)
	}()
	r := newTestRouter(t, testConfig(tsA.URL, tsB.URL))

	for i := 0; i < 8; i++ {
		rec := post(r.Handler(), graphN(i), nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("graph %d: %d %s", i, rec.Code, rec.Body)
		}
		var resp struct {
			Result struct {
				Feasible  bool `json:"feasible"`
				Truncated bool `json:"truncated"`
			} `json:"result"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		if !resp.Result.Feasible || resp.Result.Truncated {
			t.Fatalf("graph %d: feasible=%v truncated=%v", i, resp.Result.Feasible, resp.Result.Truncated)
		}
	}
	// Repeats are all cache hits.
	for i := 0; i < 8; i++ {
		if rec := post(r.Handler(), graphN(i), nil); rec.Header().Get("X-PBQP-Cache") != "hit" {
			t.Fatalf("repeat of graph %d missed the cache", i)
		}
	}
	// Both real backends took some share of the 8 distinct graphs.
	var active int
	for name, v := range r.Registry().Snapshot().Counters {
		if strings.HasPrefix(name, "router_backend_tries_total.") && v > 0 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("only %d backends saw traffic; consistent hashing should spread 8 graphs over 2", active)
	}
}

package router

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbqprl/internal/failpoint"
	"pbqprl/internal/server"
)

// TestChaosZeroFailedRequestsWhileAnyReplicaSurvives is the headline
// robustness claim under -race: three real pbqp-serve backends behind
// the router, one hard-killed mid-load (listener torn down and every
// open connection cut, the in-process stand-in for SIGKILL — the CI
// fleet-smoke stage does it with a real signal), plus failpoint-
// injected latency spikes and torn responses on the forward path. Every
// request must still complete with a correct answer within its
// deadline, and the failover and breaker-trip counters must show the
// machinery actually fired.
func TestChaosZeroFailedRequestsWhileAnyReplicaSurvives(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test takes seconds")
	}

	mkBackend := func() (*httptest.Server, *server.Server) {
		srv, err := server.New(server.Config{
			Workers:         4,
			DefaultChain:    []string{"liberty", "scholz"},
			DefaultDeadline: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return httptest.NewServer(srv.Handler()), srv
	}
	var backends []*httptest.Server
	var srvs []*server.Server
	for i := 0; i < 3; i++ {
		ts, srv := mkBackend()
		backends = append(backends, ts)
		srvs = append(srvs, srv)
	}
	defer func() {
		for _, ts := range backends {
			ts.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for _, srv := range srvs {
			srv.Drain(ctx)
		}
	}()

	// Latency spikes on some forwards, torn responses on others. Both
	// must be absorbed by retries, never surfaced to a client.
	if err := failpoint.Enable("router/forward", "delay(50ms)*10"); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("router/forward/read", "error*4"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	cfg := Config{
		Backends:         []string{backends[0].URL, backends[1].URL, backends[2].URL},
		MaxTries:         6,
		MinTryTimeout:    250 * time.Millisecond,
		BackoffBase:      2 * time.Millisecond,
		BackoffMax:       20 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		HealthInterval:   50 * time.Millisecond,
		HealthTimeout:    500 * time.Millisecond,
		DefaultDeadline:  15 * time.Second,
		MaxDeadline:      15 * time.Second,
		JitterSeed:       42,
	}
	r := newTestRouter(t, cfg)

	const (
		workers        = 16
		perWorker      = 20
		distinctGraphs = 64
	)
	var failures atomic.Int64
	var firstFailure atomic.Value
	var wg sync.WaitGroup
	kill := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Mostly distinct graphs with some repeats, so the run
				// exercises the forward path and the cache together.
				g := graphN((w*perWorker + i) % distinctGraphs)
				rec := post(r.Handler(), g, nil)
				if rec.Code != http.StatusOK {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf(
						"worker %d request %d: %d %s", w, i, rec.Code, rec.Body.String()))
				}
				if w == 0 && i == 4 {
					close(kill) // one replica dies while everyone is mid-load
				}
			}
		}(w)
	}

	// Hard-kill backend 0 once the load is flowing: stop the listener
	// and sever every established connection, so in-flight forwards
	// fail at the transport level exactly as with a SIGKILLed process.
	go func() {
		<-kill
		backends[0].CloseClientConnections()
		backends[0].Listener.Close()
	}()
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed while two replicas survived; first: %s",
			n, workers*perWorker, firstFailure.Load())
	}
	snap := r.Registry().Snapshot()
	if got := counterSum(r.Registry(), "router_backend_failovers_total."); got == 0 {
		t.Fatal("no failovers recorded; the kill or the failpoints should have forced some")
	}
	if snap.Counters["http_requests_total.200"] != workers*perWorker {
		t.Fatalf("http_requests_total.200 = %d, want %d",
			snap.Counters["http_requests_total.200"], workers*perWorker)
	}
	// The dead backend must end ejected — by the breaker, the prober,
	// or both.
	deadLabel := strings.TrimPrefix(backends[0].URL, "http://")
	tripped := counterSum(r.Registry(), "router_breaker_trips_total.") > 0
	ejected := snap.Gauges["router_backend_ready."+deadLabel] == 0
	if !tripped && !ejected {
		t.Fatalf("dead backend neither tripped a breaker nor was ejected by the prober: %+v", snap.Gauges)
	}
	t.Logf("chaos summary: tries=%d failovers=%d trips=%d coalesced=%d cache_hits=%d",
		counterSum(r.Registry(), "router_backend_tries_total."),
		counterSum(r.Registry(), "router_backend_failovers_total."),
		counterSum(r.Registry(), "router_breaker_trips_total."),
		snap.Counters["router_coalesced_total"],
		snap.Counters["router_cache_hits_total"])
}

// TestChaosHealthProbeFailpoint pins the router/health hook: an armed
// failpoint makes active probes fail, ejecting backends exactly like a
// network partition, and disarming it re-admits them.
func TestChaosHealthProbeFailpoint(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ready"}`))
	}))
	defer ts.Close()
	if err := failpoint.Enable("router/health", "error"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(failpoint.DisableAll)

	cfg := testConfig(ts.URL)
	cfg.HealthInterval = 10 * time.Millisecond
	cfg.HealthTimeout = 200 * time.Millisecond
	r := newTestRouter(t, cfg)

	label := strings.TrimPrefix(ts.URL, "http://")
	waitFor(t, 5*time.Second, "failpoint-broken probe to eject the backend", func() bool {
		return r.Registry().Snapshot().Gauges["router_backend_ready."+label] == 0
	})
	failpoint.DisableAll()
	waitFor(t, 5*time.Second, "healthy probe to re-admit the backend", func() bool {
		return r.Registry().Snapshot().Gauges["router_backend_ready."+label] == 1
	})
}

// Package router is the fleet front of the PBQP allocation service: a
// thin HTTP shard router that spreads solve traffic across N
// pbqp-serve backends and keeps answering while any replica survives.
//
// The request path, in order:
//
//   - canonicalize: the request graph is parsed and content-addressed
//     with pbqp.CanonicalHash (SHA-256 over the byte-stable canonical
//     serialization pinned by FuzzReadGraph), so two spellings of the
//     same graph are the same key everywhere downstream; a raw-bytes →
//     canonical-hash memo in the same LRU lets byte-identical repeats
//     skip the parse entirely;
//   - cache: a memory-bounded LRU solution cache answers repeat
//     traffic without touching a backend — register allocation is
//     dominated by recompiles of the same functions;
//   - coalesce: N identical in-flight requests collapse into one
//     backend solve (singleflight); followers wait for the leader's
//     answer under their own deadlines;
//   - shard: the graph hash picks a backend by consistent hashing, so
//     repeat traffic for a graph keeps hitting the same replica and
//     adding a backend remaps only ~1/N of the key space;
//   - forward: per-try timeouts are carved from the request deadline,
//     failures (connection errors, 5xx, timeouts) fail over along the
//     ring with capped exponential backoff + jitter, and backend
//     Retry-After hints are honored;
//   - protect: active health checks (/readyz probes) plus passive
//     circuit breakers (consecutive-failure trip, half-open probes)
//     eject dead or draining backends and re-admit them without
//     operator action;
//   - degrade: under total backend loss the router keeps serving cache
//     hits and sheds the rest with 503 + Retry-After instead of
//     hanging.
//
// The router reuses the internal/server admission pool (bounded
// forwarding concurrency, load shedding, drain barrier) and metrics
// registry for its own endpoint; new metric families cover cache
// hits/misses/evictions, coalesced requests, per-backend tries and
// failovers, and breaker state.
package router

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"pbqprl/internal/failpoint"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/server"
	"pbqprl/internal/server/metrics"
)

// Config tunes a Router. Backends is the only required field; every
// other zero value falls back to the documented default.
type Config struct {
	// Backends are the pbqp-serve base URLs, e.g.
	// "http://10.0.0.1:8723". At least one is required.
	Backends []string
	// CacheBytes bounds the solution cache's memory. Default: 64 MiB;
	// negative disables caching.
	CacheBytes int64
	// MaxTries is the total forwarding attempts per request across all
	// backends. Default: 4.
	MaxTries int
	// MinTryTimeout floors the per-try deadline slice so late tries
	// are not starved into guaranteed failure. Default: 50ms.
	MinTryTimeout time.Duration
	// BackoffBase/BackoffMax shape the capped exponential backoff
	// between failover rounds. Defaults: 25ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold is the consecutive-failure count that trips a
	// backend's circuit breaker open. Default: 5.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before
	// admitting a half-open probe request. Default: 2s.
	BreakerCooldown time.Duration
	// HealthInterval is the active health-check period; 0 disables
	// active checking (passive breakers still run). cmd/pbqp-router
	// defaults its flag to 1s.
	HealthInterval time.Duration
	// HealthTimeout bounds one active probe. Default: 1s.
	HealthTimeout time.Duration
	// Workers/QueueDepth size the admission pool for forwarded
	// requests. Forwarding is I/O-bound, so the defaults are larger
	// than a solve pool's: 256 workers, queue 512.
	Workers    int
	QueueDepth int
	// MaxRequestBytes caps the request body. Default: 4 MiB.
	MaxRequestBytes int64
	// MaxResponseBytes caps a backend response body. Default: 16 MiB.
	MaxResponseBytes int64
	// DefaultDeadline/MaxDeadline mirror the backend's deadline knobs.
	// Defaults: 2s / 30s.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// RetryAfter is the floor for Retry-After hints on 429/503
	// answers. Default: 1s.
	RetryAfter time.Duration
	// ReadLimits tightens the PBQP parser caps for request bodies.
	ReadLimits pbqp.ReadLimits
	// Client issues backend requests; nil builds one with a pooled
	// transport and no global timeout (per-try contexts govern).
	Client *http.Client
	// JitterSeed seeds the backoff jitter RNG; 0 draws a random seed.
	// Tests pin it for reproducible backoff schedules.
	JitterSeed uint64
	// Logf receives operational log lines. Nil uses a no-op.
	Logf func(format string, args ...any)
	// Registry receives the router's metrics. Nil creates a fresh one.
	Registry *metrics.Registry
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxTries <= 0 {
		c.MaxTries = 4
	}
	if c.MinTryTimeout <= 0 {
		c.MinTryTimeout = 50 * time.Millisecond
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 512
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 4 << 20
	}
	if c.MaxResponseBytes <= 0 {
		c.MaxResponseBytes = 16 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if c.JitterSeed == 0 {
		var b [8]byte
		if _, err := crand.Read(b[:]); err == nil {
			c.JitterSeed = binary.LittleEndian.Uint64(b[:])
		}
		if c.JitterSeed == 0 {
			c.JitterSeed = 1
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// Router is the fleet front. Create with New, expose via Handler,
// stop via Drain.
type Router struct {
	cfg      Config
	reg      *metrics.Registry
	adm      *server.Admission
	cache    *Cache
	flights  *flightGroup
	ring     *ring
	backends []*backend
	client   *http.Client
	mux      *http.ServeMux

	jitterMu sync.Mutex
	jitter   *rand.Rand

	healthCancel context.CancelFunc
	healthDone   chan struct{}
}

// Sentinel errors for the forward path, mapped to HTTP statuses in
// handleSolve.
var (
	// errNoBackends means no backend was available for the whole
	// attempt budget: everything ejected, tripped, or hinting away.
	errNoBackends = errors.New("router: no backend available")
	// errUpstream wraps the last upstream failure after the attempt
	// budget was exhausted.
	errUpstream = errors.New("router: all forwarding attempts failed")
)

// New builds a Router over the configured backend fleet and starts its
// active health loop (when HealthInterval > 0).
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("router: at least one backend is required")
	}
	r := &Router{
		cfg:     cfg,
		reg:     cfg.Registry,
		adm:     server.NewAdmission(cfg.Workers, cfg.QueueDepth),
		cache:   NewCache(cfg.CacheBytes),
		flights: newFlightGroup(),
		client:  cfg.Client,
		mux:     http.NewServeMux(),
		jitter:  rand.New(rand.NewPCG(cfg.JitterSeed, 0x9e3779b97f4a7c15)),
	}
	seen := map[string]bool{}
	for _, addr := range cfg.Backends {
		b, err := newBackend(addr)
		if err != nil {
			return nil, err
		}
		if seen[b.addr] {
			return nil, fmt.Errorf("router: duplicate backend %q", addr)
		}
		seen[b.addr] = true
		r.backends = append(r.backends, b)
	}
	r.ring = newRing(cfg.Backends)
	r.mux.HandleFunc("/v1/solve", r.handleSolve)
	r.mux.HandleFunc("/metrics", r.handleMetrics)
	r.mux.HandleFunc("/healthz", r.handleHealthz)
	r.mux.HandleFunc("/readyz", r.handleReadyz)
	r.mux.HandleFunc("/debug/pprof/", pprof.Index)
	r.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	r.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	r.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	r.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	r.publishBackendGauges()
	r.healthDone = make(chan struct{})
	if cfg.HealthInterval > 0 {
		var hctx context.Context
		hctx, r.healthCancel = context.WithCancel(context.Background())
		go r.healthLoop(hctx)
	} else {
		close(r.healthDone)
	}
	return r, nil
}

// Handler returns the router's HTTP handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Registry returns the router's metrics registry.
func (r *Router) Registry() *metrics.Registry { return r.reg }

// CacheStats exposes the solution cache counters for tests and the
// fleet smoke stage.
func (r *Router) CacheStats() (hits, misses, evictions int64) { return r.cache.Stats() }

// Draining reports whether the router has begun draining.
func (r *Router) Draining() bool { return r.adm.IsDraining() }

// Drain gracefully shuts the forward path down: admission flips to
// draining (new solves and readyz answer 503), accepted requests run
// to completion, the workers exit, and the health loop stops.
func (r *Router) Drain(ctx context.Context) error {
	r.cfg.Logf("router: draining (queued: %d)", r.adm.Depth())
	err := r.adm.Drain(ctx)
	if r.healthCancel != nil {
		r.healthCancel()
	}
	<-r.healthDone
	r.client.CloseIdleConnections()
	if err != nil {
		r.cfg.Logf("router: drain incomplete: %v", err)
		return err
	}
	r.cfg.Logf("router: drain complete")
	return nil
}

// now is the router's only wall-clock read point, for deadline
// arithmetic, breaker timing, and latency metrics.
func now() time.Time {
	//pbqpvet:ignore determinism serving-path timing is operational (deadlines, breakers, latency), never solver input
	return time.Now()
}

// handleSolve is POST /v1/solve: canonicalize, consult the cache,
// coalesce, forward with failover.
func (r *Router) handleSolve(w http.ResponseWriter, req *http.Request) {
	start := now()
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		st := sw.status
		if st == 0 {
			st = http.StatusOK
		}
		code := strconv.Itoa(st)
		r.reg.Counter("http_requests_total." + code).Inc()
		r.reg.Histogram("http_request_seconds." + code).Observe(now().Sub(start))
	}()

	if req.Method != http.MethodPost {
		sw.Header().Set("Allow", http.MethodPost)
		r.writeError(sw, http.StatusMethodNotAllowed, "POST a PBQP graph in the textual format")
		return
	}
	if r.adm.IsDraining() {
		r.shed(sw, http.StatusServiceUnavailable, "router is draining; retry elsewhere")
		return
	}

	knobs, err := r.parseKnobs(req)
	if err != nil {
		r.writeError(sw, http.StatusBadRequest, err.Error())
		return
	}

	// Canonicalize: key every downstream decision on the canonical
	// graph hash so two spellings of the same graph share a cache slot,
	// a flight, and a shard. The raw request bytes are hashed first and
	// memoized against the canonical hash in the same bounded LRU:
	// byte-identical repeats (the dominant recompile traffic) skip the
	// parse entirely, while a new spelling pays one full parse +
	// canonical serialization and lands on the same key.
	raw, err := io.ReadAll(http.MaxBytesReader(sw, req.Body, r.cfg.MaxRequestBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			r.writeError(sw, http.StatusRequestEntityTooLarge,
				"request body exceeds "+strconv.FormatInt(tooLarge.Limit, 10)+" bytes")
			return
		}
		r.writeError(sw, http.StatusBadRequest, err.Error())
		return
	}
	var g *pbqp.Graph
	var sum [sha256.Size]byte
	rawKey := rawCacheKey(raw)
	if _, memo, ok := r.cache.Get(rawKey); ok && len(memo) == sha256.Size {
		copy(sum[:], memo)
	} else {
		if g, err = r.parseGraph(raw); err != nil {
			r.writeError(sw, http.StatusBadRequest, err.Error())
			return
		}
		if sum, err = pbqp.CanonicalHash(g); err != nil {
			r.writeError(sw, http.StatusBadRequest, err.Error())
			return
		}
		r.cache.Put(rawKey, 0, append([]byte(nil), sum[:]...))
	}
	key := cacheKey(sum, knobs)

	if status, cached, ok := r.cache.Get(key); ok {
		r.reg.Counter("router_cache_hits_total").Inc()
		sw.Header().Set("X-PBQP-Cache", "hit")
		writeRaw(sw, status, cached)
		return
	}
	r.reg.Counter("router_cache_misses_total").Inc()

	// A raw-memo hit that misses the solution cache (evicted, or a new
	// knob combination) still needs the parsed graph to forward.
	if g == nil {
		if g, err = r.parseGraph(raw); err != nil {
			r.writeError(sw, http.StatusBadRequest, err.Error())
			return
		}
	}

	// The solve context is detached from this client's connection: a
	// coalesced flight may be feeding many waiters, and the leader
	// hanging up must not strand the followers. The deadline still
	// binds it, so an abandoned flight dies with the request budget.
	solveCtx, cancel := context.WithTimeout(context.WithoutCancel(req.Context()), knobs.deadline)
	defer cancel()

	res, leader := r.flights.Do(req.Context(), key, func() flightResult {
		return r.submitForward(solveCtx, g, sum, knobs)
	})
	if !leader {
		r.reg.Counter("router_coalesced_total").Inc()
	}

	if res.err != nil {
		switch {
		case errors.Is(res.err, server.ErrQueueFull):
			r.reg.Counter("requests_shed_total").Inc()
			sw.Header().Set("Retry-After", retryAfterSeconds(r.retryAfterHint()))
			r.writeError(sw, http.StatusTooManyRequests, "router queue full; retry after backoff")
		case errors.Is(res.err, server.ErrDraining):
			r.shed(sw, http.StatusServiceUnavailable, "router is draining; retry elsewhere")
		case errors.Is(res.err, errNoBackends):
			r.reg.Counter("requests_shed_total").Inc()
			r.shed(sw, http.StatusServiceUnavailable, "no backend available; retry after backoff")
		case errors.Is(res.err, context.DeadlineExceeded), errors.Is(res.err, context.Canceled):
			r.writeError(sw, http.StatusGatewayTimeout, "deadline exhausted before any backend answered")
		default:
			r.writeError(sw, http.StatusBadGateway, res.err.Error())
		}
		return
	}

	if cacheable(res.status, res.body) {
		r.cache.Put(key, res.status, res.body)
		r.publishCacheGauges()
	}
	if leader {
		sw.Header().Set("X-PBQP-Cache", "miss")
	} else {
		sw.Header().Set("X-PBQP-Cache", "coalesced")
	}
	writeRaw(sw, res.status, res.body)
}

// submitForward runs one forward through the admission pool: bounded
// concurrency, load shedding, and a drain barrier, exactly like the
// backend's solve pool. The graph is serialized once here — the
// canonical bytes, so backends see identical bodies for identical
// graphs across every retry.
func (r *Router) submitForward(ctx context.Context, g *pbqp.Graph, sum [sha256.Size]byte, k knobs) flightResult {
	var buf bytes.Buffer
	if err := pbqp.Write(&buf, g); err != nil {
		return flightResult{err: err}
	}
	var res flightResult
	job := server.NewJob(func() {
		r.reg.Gauge("requests_inflight").Add(1)
		defer r.reg.Gauge("requests_inflight").Add(-1)
		res = r.forward(ctx, buf.Bytes(), sum, k)
	})
	if err := r.adm.Submit(job); err != nil {
		return flightResult{err: err}
	}
	<-job.Done()
	if panicked, val, _ := job.Panicked(); panicked {
		return flightResult{err: fmt.Errorf("router: forward panicked: %s", val)}
	}
	return res
}

// forward pushes one solve to the fleet: walk the key's replica chain,
// carve a per-try timeout from the remaining deadline, fail over on
// connection errors / 5xx / timeouts with capped exponential backoff +
// jitter, and honor backend Retry-After hints. The loop is bounded by
// MaxTries and polls ctx at every turn, so a request can never hang
// past its deadline.
//
//pbqpvet:ctxroot bounded retry loop must stay cancellable: every try and every backoff sleep polls ctx
func (r *Router) forward(ctx context.Context, body []byte, sum [sha256.Size]byte, k knobs) flightResult {
	candidates := r.ring.successors(sum)
	backoff := r.cfg.BackoffBase
	var lastErr error
	for try := 0; try < r.cfg.MaxTries; try++ {
		if err := ctx.Err(); err != nil {
			return flightResult{err: err}
		}
		b := r.pickBackend(candidates, try)
		if b == nil {
			// Nobody is admitted right now. If no backend is even
			// health-ready the fleet is gone: shed instead of burning
			// the deadline. Otherwise a breaker cooldown or Retry-After
			// window is in the way — wait it out under the deadline.
			if !r.anyReady() {
				return flightResult{err: errNoBackends}
			}
			if !sleepCtx(ctx, r.withJitter(backoff)) {
				return flightResult{err: ctx.Err()}
			}
			backoff = nextBackoff(backoff, r.cfg.BackoffMax)
			continue
		}
		r.reg.Counter("router_backend_tries_total." + b.label).Inc()
		status, respBody, retryAfter, err := r.tryOnce(ctx, b, body, k, try)
		if err == nil && status != http.StatusTooManyRequests && status < 500 {
			b.success()
			r.publishBackendGauges()
			return flightResult{status: status, body: respBody}
		}

		// Retryable failure: classify, record, fail over.
		r.reg.Counter("router_backend_failovers_total." + b.label).Inc()
		switch {
		case err != nil:
			lastErr = err
			r.noteFailure(b, "transport error: "+err.Error())
		case status == http.StatusTooManyRequests, status == http.StatusServiceUnavailable:
			// The backend answered coherently but asked for space
			// (shedding or draining): honor its hint, no breaker
			// penalty.
			lastErr = fmt.Errorf("backend %s answered %d", b.label, status)
			b.hintRetryAfter(now().Add(retryAfter))
		default: // other 5xx
			lastErr = fmt.Errorf("backend %s answered %d", b.label, status)
			r.noteFailure(b, fmt.Sprintf("status %d", status))
		}

		// Back off only once per full lap of the replica chain:
		// failover to the next replica is immediate, hammering the
		// same shrinking set of survivors is not.
		if (try+1)%len(candidates) == 0 {
			if !sleepCtx(ctx, r.withJitter(backoff)) {
				return flightResult{err: ctx.Err()}
			}
			backoff = nextBackoff(backoff, r.cfg.BackoffMax)
		}
	}
	if lastErr == nil {
		return flightResult{err: errNoBackends}
	}
	return flightResult{err: fmt.Errorf("%w (last: %v)", errUpstream, lastErr)}
}

// tryOnce sends one request to one backend under a timeout carved from
// the remaining request budget: remaining/(tries left), floored at
// MinTryTimeout, so early failures leave later tries usable slices.
func (r *Router) tryOnce(ctx context.Context, b *backend, reqBody []byte, k knobs, try int) (status int, body []byte, retryAfter time.Duration, err error) {
	deadline, ok := ctx.Deadline()
	remaining := r.cfg.DefaultDeadline
	if ok {
		remaining = time.Until(deadline)
	}
	if remaining <= 0 {
		return 0, nil, 0, context.DeadlineExceeded
	}
	triesLeft := r.cfg.MaxTries - try
	slice := remaining / time.Duration(triesLeft)
	if slice < r.cfg.MinTryTimeout {
		slice = r.cfg.MinTryTimeout
	}
	if slice > remaining {
		slice = remaining
	}
	tryCtx, cancel := context.WithTimeout(ctx, slice)
	defer cancel()

	// Chaos hook: an armed router/forward failpoint stands in for a
	// connection that never establishes.
	if err := failpoint.Hit("router/forward"); err != nil {
		return 0, nil, 0, err
	}

	req, err := http.NewRequestWithContext(tryCtx, http.MethodPost,
		b.addr+"/v1/solve", bytes.NewReader(reqBody))
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-PBQP-Deadline", slice.String())
	if k.chain != "" {
		req.Header.Set("X-PBQP-Chain", k.chain)
	}
	req.Header.Set("X-PBQP-Cost-Mode", k.costMode)

	resp, err := r.client.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	defer drainBody(resp)
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxResponseBytes+1))
	if err != nil {
		// A torn response (connection cut mid-body, short read against
		// Content-Length) is a transport failure: fail over.
		return 0, nil, 0, fmt.Errorf("reading backend response: %w", err)
	}
	// Chaos hook: an armed router/forward/read failpoint stands in for
	// a response that tore after the status line.
	if err := failpoint.Hit("router/forward/read"); err != nil {
		return 0, nil, 0, err
	}
	if int64(len(respBody)) > r.cfg.MaxResponseBytes {
		return 0, nil, 0, fmt.Errorf("backend response exceeds %d bytes", r.cfg.MaxResponseBytes)
	}
	return resp.StatusCode, respBody, parseRetryAfter(resp.Header.Get("Retry-After"), r.cfg.RetryAfter), nil
}

// pickBackend scans the key's replica chain, starting at the attempt
// offset, for the first backend the breakers and health state admit.
func (r *Router) pickBackend(candidates []int, try int) *backend {
	if len(candidates) == 0 {
		return nil
	}
	t := now()
	start := try % len(candidates)
	for i := 0; i < len(candidates); i++ {
		b := r.backends[candidates[(start+i)%len(candidates)]]
		if ok, _ := b.admit(t, r.cfg.BreakerCooldown); ok {
			return b
		}
	}
	return nil
}

// anyReady reports whether at least one backend is health-ready
// (breaker state aside) — the difference between "wait for a cooldown"
// and "the fleet is gone".
func (r *Router) anyReady() bool {
	for _, b := range r.backends {
		if _, ready := b.snapshot(); ready {
			return true
		}
	}
	return false
}

// noteFailure records a request-path failure on b, publishing the trip
// counter and breaker gauge when the breaker state changed.
func (r *Router) noteFailure(b *backend, why string) {
	if b.failure(now(), r.cfg.BreakerThreshold) {
		r.reg.Counter("router_breaker_trips_total." + b.label).Inc()
		r.cfg.Logf("router: breaker open for backend %s: %s", b.label, why)
	}
	r.publishBackendGauges()
}

// publishBackendGauges mirrors each backend's breaker state
// (0 closed, 1 half-open, 2 open) and readiness into the registry.
func (r *Router) publishBackendGauges() {
	for _, b := range r.backends {
		state, ready := b.snapshot()
		r.reg.Gauge("router_breaker_state." + b.label).Set(state)
		rdy := int64(0)
		if ready {
			rdy = 1
		}
		r.reg.Gauge("router_backend_ready." + b.label).Set(rdy)
	}
}

// publishCacheGauges mirrors the cache's eviction count and memory
// footprint into the registry (hits and misses are counted inline on
// the request path). The eviction counter advances by the delta
// against the cache's own total, so publishing at scrape time and
// after inserts stays idempotent.
func (r *Router) publishCacheGauges() {
	_, _, evictions := r.cache.Stats()
	r.syncCounter("router_cache_evictions_total", evictions)
	r.reg.Gauge("router_cache_bytes").Set(r.cache.Bytes())
	r.reg.Gauge("router_cache_entries").Set(int64(r.cache.Len()))
}

// syncCounter advances the named counter to total (counters only move
// forward, so publish the delta).
func (r *Router) syncCounter(name string, total int64) {
	c := r.reg.Counter(name)
	if d := total - c.Value(); d > 0 {
		c.Add(d)
	}
}

// handleMetrics serves the registry snapshot with the sampled gauges
// refreshed at scrape time.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	r.reg.Gauge("queue_depth").Set(int64(r.adm.Depth()))
	r.publishBackendGauges()
	r.publishCacheGauges()
	r.reg.ServeHTTP(w, req)
}

// handleHealthz answers liveness: 200 as long as the process serves
// HTTP, draining included.
func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": r.adm.IsDraining(),
	})
}

// handleReadyz answers readiness: 200 while accepting, 503 (with a
// Retry-After hint) once draining.
func (r *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if r.adm.IsDraining() {
		w.Header().Set("Retry-After", retryAfterSeconds(r.retryAfterHint()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// knobs are the request parameters that shape the answer — and
// therefore the cache key.
type knobs struct {
	chain    string // normalized comma-joined solver chain; "" = backend default
	costMode string // "zeroinf" or "spill"
	deadline time.Duration
}

// parseKnobs extracts and normalizes the chain, deadline, and
// cost-mode knobs (same names and header aliases as pbqp-serve).
func (r *Router) parseKnobs(req *http.Request) (knobs, error) {
	k := knobs{costMode: "zeroinf", deadline: r.cfg.DefaultDeadline}
	if spec := knob(req, "chain", "X-PBQP-Chain"); spec != "" {
		names := splitTrim(spec)
		if len(names) == 0 {
			return knobs{}, errors.New("chain selects no solvers")
		}
		k.chain = strings.Join(names, ",")
	}
	if spec := knob(req, "deadline", "X-PBQP-Deadline"); spec != "" {
		d, err := time.ParseDuration(spec)
		if err != nil || d <= 0 {
			return knobs{}, errors.New("deadline wants a positive Go duration like 250ms")
		}
		k.deadline = d
	}
	if k.deadline > r.cfg.MaxDeadline {
		k.deadline = r.cfg.MaxDeadline
	}
	switch mode := knob(req, "cost-mode", "X-PBQP-Cost-Mode"); mode {
	case "", "zeroinf":
		k.costMode = "zeroinf"
	case "spill":
		k.costMode = "spill"
	default:
		return knobs{}, errors.New(`cost-mode wants "zeroinf" or "spill"`)
	}
	return k, nil
}

// parseGraph parses a buffered request body under the hardening caps.
func (r *Router) parseGraph(raw []byte) (*pbqp.Graph, error) {
	return pbqp.ReadWithLimits(bytes.NewReader(raw), r.cfg.ReadLimits)
}

// cacheKey builds the content-addressed key: the canonical graph hash
// plus every knob that changes the answer. The deadline is deliberately
// excluded — a cached complete answer satisfies any deadline. The "s|"
// prefix keeps solution entries disjoint from raw-memo entries in the
// shared LRU.
func cacheKey(sum [sha256.Size]byte, k knobs) string {
	return "s|" + string(sum[:]) + "|" + k.chain + "|" + k.costMode
}

// rawCacheKey keys the raw-bytes → canonical-hash memo: a repeat of the
// exact same request bytes resolves its canonical hash without a parse.
func rawCacheKey(raw []byte) string {
	sum := sha256.Sum256(raw)
	return "r|" + string(sum[:])
}

// cacheable decides whether an upstream answer may be replayed to
// future requests: complete feasible solves (200, not truncated) and
// complete infeasibility verdicts (422). Truncated answers depend on
// the deadline that produced them and are never cached.
func cacheable(status int, body []byte) bool {
	switch status {
	case http.StatusUnprocessableEntity:
		return true
	case http.StatusOK:
		var probe struct {
			Result struct {
				Truncated bool `json:"truncated"`
			} `json:"result"`
		}
		if err := json.Unmarshal(body, &probe); err != nil {
			return false
		}
		return !probe.Result.Truncated
	default:
		return false
	}
}

// shed answers a request the router cannot serve right now with the
// status and a Retry-After hint.
func (r *Router) shed(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Retry-After", retryAfterSeconds(r.retryAfterHint()))
	r.writeError(w, status, msg)
}

// retryAfterHint scales the configured floor by admission-queue
// pressure, the same shape as the backend's hint.
func (r *Router) retryAfterHint() time.Duration {
	return server.RetryAfterHint(r.cfg.RetryAfter, r.adm.Depth(), r.cfg.Workers)
}

// withJitter spreads d by ±50% so synchronized failures do not retry
// in lockstep.
func (r *Router) withJitter(d time.Duration) time.Duration {
	r.jitterMu.Lock()
	f := 0.5 + r.jitter.Float64()
	r.jitterMu.Unlock()
	return time.Duration(float64(d) * f)
}

// nextBackoff doubles the backoff up to the configured ceiling.
func nextBackoff(d, ceiling time.Duration) time.Duration {
	d *= 2
	if d > ceiling {
		d = ceiling
	}
	return d
}

// sleepCtx sleeps d or until ctx is done, reporting whether the full
// sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// parseRetryAfter reads a Retry-After header (whole seconds), falling
// back to floor when absent or malformed.
func parseRetryAfter(v string, floor time.Duration) time.Duration {
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return floor
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// knob reads one request knob: the header alias wins over the query
// parameter.
func knob(r *http.Request, query, header string) string {
	if v := r.Header.Get(header); v != "" {
		return v
	}
	return r.URL.Query().Get(query)
}

// splitTrim splits a comma-separated list, trimming blanks.
func splitTrim(spec string) []string {
	var out []string
	for _, s := range strings.Split(spec, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// drainBody finishes and closes a response body so the transport can
// reuse the connection.
func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// writeRaw replays a stored upstream answer.
func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// ErrorResponse is the JSON body of every router-originated error.
type ErrorResponse struct {
	Error string `json:"error"`
}

// writeError sends a JSON error body with the given status.
func (r *Router) writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// writeJSON sends v as a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// statusWriter records the status code actually written so the
// deferred metrics observation sees it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

package router

import (
	"container/list"
	"sync"
)

// Cache is the router's content-addressed solution cache: a
// memory-bounded LRU keyed on the canonical graph hash plus the
// answer-shaping knobs (solver chain, cost mode). Register-allocation
// traffic is dominated by recompiles of the same functions, so a small
// cache absorbs most of the offered load before any backend is
// touched.
//
// The bound is on memory, not entry count: each entry is charged its
// body length plus key length plus a fixed bookkeeping overhead, and
// inserts evict from the LRU tail until the total fits the ceiling. An
// entry larger than the whole ceiling is not admitted at all — one
// adversarial megagraph cannot flush the entire working set and then
// dominate it. All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	maxByte int64
	curByte int64
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits, misses, evictions int64
}

// cacheEntry is one cached answer: the upstream status code and the
// exact response body the router replays to later requests.
type cacheEntry struct {
	key    string
	status int
	body   []byte
}

// entryOverhead approximates the per-entry bookkeeping cost (map slot,
// list element, struct header) charged on top of the key and body
// bytes.
const entryOverhead = 128

func (e *cacheEntry) size() int64 {
	return int64(len(e.key)) + int64(len(e.body)) + entryOverhead
}

// NewCache builds a cache bounded at maxBytes. maxBytes <= 0 disables
// caching entirely: Get always misses and Put drops everything.
func NewCache(maxBytes int64) *Cache {
	return &Cache{
		maxByte: maxBytes,
		order:   list.New(),
		entries: map[string]*list.Element{},
	}
}

// Get returns the cached answer for key, marking it most recently
// used.
func (c *Cache) Get(key string) (status int, body []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return 0, nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.status, e.body, true
}

// Put stores an answer under key, evicting least-recently-used entries
// until the memory ceiling holds. Oversized entries (larger than the
// whole ceiling) and disabled caches drop the insert silently; a
// re-insert under an existing key replaces the old answer.
func (c *Cache) Put(key string, status int, body []byte) {
	e := &cacheEntry{key: key, status: status, body: body}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxByte <= 0 || e.size() > c.maxByte {
		return
	}
	if el, ok := c.entries[key]; ok {
		old := el.Value.(*cacheEntry)
		c.curByte -= old.size()
		el.Value = e
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(e)
	}
	c.curByte += e.size()
	for c.curByte > c.maxByte {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*cacheEntry)
		c.order.Remove(tail)
		delete(c.entries, victim.key)
		c.curByte -= victim.size()
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the current charged memory footprint.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curByte
}

// Stats returns the cumulative hit/miss/eviction counts.
func (c *Cache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

package router

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"time"

	"pbqprl/internal/failpoint"
)

// Breaker states. The passive circuit breaker per backend follows the
// classic three-state machine:
//
//	closed ──threshold consecutive failures──▶ open
//	open ──cooldown elapses──▶ half-open (one probe request admitted)
//	half-open ──probe succeeds──▶ closed
//	half-open ──probe fails──▶ open (fresh cooldown)
//
// plus an orthogonal readiness bit driven by the active health checker:
// a backend whose /readyz answers 503 (draining) or whose probe cannot
// connect is ejected from selection without burning request-path
// failures, and re-admitted the moment a probe succeeds — no operator
// action in either direction.
const (
	breakerClosed int64 = iota
	breakerHalfOpen
	breakerOpen
)

// backend is one pbqp-serve replica with its health and breaker state.
type backend struct {
	addr  string // base URL, e.g. "http://127.0.0.1:8723"
	label string // metrics label, host:port

	mu          sync.Mutex
	state       int64 // breakerClosed/HalfOpen/Open
	consecFails int
	openedAt    time.Time // when the breaker last tripped
	probing     bool      // a half-open probe request is in flight
	ready       bool      // active-health verdict; starts true so traffic flows before the first probe
	retryAfter  time.Time // honored Retry-After hint; skipped until then
}

func newBackend(addr string) (*backend, error) {
	u, err := url.Parse(addr)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("router: backend %q is not an absolute URL", addr)
	}
	return &backend{addr: addr, label: u.Host, ready: true}, nil
}

// admit decides whether a request may be sent to b now. A half-open
// breaker admits exactly one request at a time as its probe; the probe
// flag tells the caller this request's outcome decides re-closure.
func (b *backend) admit(now time.Time, cooldown time.Duration) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.ready || now.Before(b.retryAfter) {
		return false, false
	}
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerHalfOpen:
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	default: // breakerOpen
		if now.Sub(b.openedAt) < cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	}
}

// success records a request (or active probe) that worked: the breaker
// closes and the failure streak resets.
func (b *backend) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecFails = 0
	b.probing = false
	b.ready = true
	b.retryAfter = time.Time{}
}

// failure records a request that failed at the transport level (or
// with a 5xx). It reports whether this failure tripped the breaker
// open (for the trip counter): a half-open probe failure re-opens
// immediately, a closed-state failure opens once the consecutive
// streak reaches threshold.
func (b *backend) failure(now time.Time, threshold int) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	wasOpen := b.state == breakerOpen
	if b.probing || b.state == breakerHalfOpen {
		b.probing = false
		b.state = breakerOpen
		b.openedAt = now
		return true
	}
	if b.consecFails >= threshold {
		b.state = breakerOpen
		b.openedAt = now
		return !wasOpen
	}
	return false
}

// hintRetryAfter honors a backend's 429/503 Retry-After: selection
// skips b until the hinted moment. Not a breaker failure — the backend
// answered coherently, it just asked for space.
func (b *backend) hintRetryAfter(until time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if until.After(b.retryAfter) {
		b.retryAfter = until
	}
}

// setReady flips the active-health readiness bit. Becoming ready also
// clears breaker state: a probe just proved the backend answers, so
// request traffic may flow again.
func (b *backend) setReady(ready bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ready = ready
	if ready {
		b.state = breakerClosed
		b.consecFails = 0
		b.probing = false
	}
}

// snapshot returns the current breaker state and readiness for
// metrics.
func (b *backend) snapshot() (state int64, ready bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.ready
}

// probeOne runs one active health check against b: /readyz with a
// short timeout. 200 re-admits the backend (and resets its breaker),
// 503 marks it draining, a transport error marks it dead. The verdict
// is returned for logging ("" means healthy).
//
//pbqpvet:ctxroot the probe loop runs for the router's whole lifetime; its per-probe work must stay cancellable
func (r *Router) probeOne(ctx context.Context, b *backend) string {
	probeCtx, cancel := context.WithTimeout(ctx, r.cfg.HealthTimeout)
	defer cancel()
	verdict := ""
	if err := failpoint.Hit("router/health"); err != nil {
		verdict = err.Error()
	} else if req, err := http.NewRequestWithContext(probeCtx, http.MethodGet, b.addr+"/readyz", nil); err != nil {
		verdict = err.Error()
	} else if resp, err := r.client.Do(req); err != nil {
		verdict = err.Error()
	} else {
		drainBody(resp)
		if resp.StatusCode != http.StatusOK {
			verdict = fmt.Sprintf("readyz answered %d", resp.StatusCode)
		}
	}
	_, wasReady := b.snapshot()
	b.setReady(verdict == "")
	if (verdict == "") != wasReady {
		if verdict == "" {
			r.cfg.Logf("router: backend %s re-admitted", b.label)
		} else {
			r.cfg.Logf("router: backend %s ejected: %s", b.label, verdict)
		}
	}
	return verdict
}

// healthLoop drives active probes for every backend until ctx is
// cancelled. Probes run concurrently per tick so one black-holed
// backend cannot delay the others' verdicts.
func (r *Router) healthLoop(ctx context.Context) {
	defer close(r.healthDone)
	ticker := time.NewTicker(r.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		var wg sync.WaitGroup
		for _, b := range r.backends {
			wg.Add(1)
			go func(b *backend) {
				defer wg.Done()
				r.probeOne(ctx, b)
			}(b)
		}
		wg.Wait()
		r.publishBackendGauges()
	}
}

package router

import (
	"fmt"
	"sync"
	"testing"
)

// TestCacheMemoryCeilingUnderAdversarialInserts pins the LRU's memory
// bound: a stream of large inserts — including entries bigger than the
// whole ceiling — can never push the charged footprint past the
// configured maximum.
func TestCacheMemoryCeilingUnderAdversarialInserts(t *testing.T) {
	const ceiling = 64 << 10
	c := NewCache(ceiling)
	big := make([]byte, 20<<10)
	huge := make([]byte, ceiling) // with key+overhead this exceeds the ceiling outright
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("big-%d", i), 200, big)
		c.Put(fmt.Sprintf("huge-%d", i), 200, huge)
		if got := c.Bytes(); got > ceiling {
			t.Fatalf("insert %d: cache holds %d bytes, ceiling is %d", i, got, ceiling)
		}
	}
	if _, _, ok := c.Get("huge-0"); ok {
		t.Fatal("an entry larger than the whole ceiling was admitted")
	}
	if c.Len() == 0 {
		t.Fatal("ceiling-sized churn evicted everything; want the newest entries resident")
	}
	if _, _, evictions := c.Stats(); evictions == 0 {
		t.Fatal("no evictions recorded under a workload that must evict")
	}
}

// TestCacheLRUOrder pins that eviction removes the least recently used
// entry and that Get refreshes recency.
func TestCacheLRUOrder(t *testing.T) {
	// Three entries of ~1KiB fit; the fourth evicts the stalest.
	entry := make([]byte, 1024)
	c := NewCache(3 * (1024 + 1 + entryOverhead))
	c.Put("a", 200, entry)
	c.Put("b", 200, entry)
	c.Put("c", 200, entry)
	if _, _, ok := c.Get("a"); !ok { // refresh a: b is now the LRU
		t.Fatal("a missing before any eviction")
	}
	c.Put("d", 200, entry)
	if _, _, ok := c.Get("b"); ok {
		t.Fatal("b survived; want it evicted as the least recently used")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted; want it resident", k)
		}
	}
}

// TestCacheReplaceAndDisable pins re-insert accounting and the
// disabled (non-positive ceiling) mode.
func TestCacheReplaceAndDisable(t *testing.T) {
	c := NewCache(4 << 10)
	c.Put("k", 200, make([]byte, 1024))
	before := c.Bytes()
	c.Put("k", 422, make([]byte, 512))
	if c.Len() != 1 {
		t.Fatalf("replace duplicated the entry: len=%d", c.Len())
	}
	if c.Bytes() >= before {
		t.Fatalf("replace with a smaller body did not shrink the footprint: %d -> %d", before, c.Bytes())
	}
	if status, _, ok := c.Get("k"); !ok || status != 422 {
		t.Fatalf("replace kept the old answer: ok=%v status=%d", ok, status)
	}

	off := NewCache(-1)
	off.Put("k", 200, []byte("x"))
	if _, _, ok := off.Get("k"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if off.Bytes() != 0 || off.Len() != 0 {
		t.Fatal("disabled cache retained data")
	}
}

// TestCacheConcurrentAccess exercises the lock under -race: concurrent
// writers churning past the ceiling while readers hit and miss.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(32 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			body := make([]byte, 2048)
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k-%d", (w*200+i)%64)
				c.Put(key, 200, body)
				c.Get(key)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Bytes(); got > 32<<10 {
		t.Fatalf("concurrent churn broke the ceiling: %d bytes", got)
	}
}

package router

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// TestRingSuccessorsCoverAllBackendsOnce pins the failover chain
// shape: every backend appears exactly once, the order is a pure
// function of the key, and different keys spread over different
// primaries.
func TestRingSuccessorsCoverAllBackendsOnce(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := newRing(addrs)
	primaries := map[int]int{}
	for i := 0; i < 256; i++ {
		key := sha256.Sum256([]byte(fmt.Sprintf("graph-%d", i)))
		succ := r.successors(key)
		if len(succ) != len(addrs) {
			t.Fatalf("key %d: chain has %d backends, want %d", i, len(succ), len(addrs))
		}
		seen := map[int]bool{}
		for _, b := range succ {
			if b < 0 || b >= len(addrs) || seen[b] {
				t.Fatalf("key %d: bad or duplicate backend %d in %v", i, b, succ)
			}
			seen[b] = true
		}
		again := r.successors(key)
		for j := range succ {
			if succ[j] != again[j] {
				t.Fatalf("key %d: successor order not stable: %v vs %v", i, succ, again)
			}
		}
		primaries[succ[0]]++
	}
	// With 128 virtual nodes per backend, 256 keys over 4 backends
	// should not all collapse onto one primary.
	if len(primaries) < len(addrs) {
		t.Fatalf("only %d of %d backends ever primary: %v", len(primaries), len(addrs), primaries)
	}
}

// TestRingStableUnderReorder pins that point placement depends on the
// backend address, not its slice position: reordering the fleet list
// does not remap keys.
func TestRingStableUnderReorder(t *testing.T) {
	fwd := []string{"http://a:1", "http://b:1", "http://c:1"}
	rev := []string{"http://c:1", "http://b:1", "http://a:1"}
	rf, rr := newRing(fwd), newRing(rev)
	for i := 0; i < 64; i++ {
		key := sha256.Sum256([]byte(fmt.Sprintf("graph-%d", i)))
		a := fwd[rf.successors(key)[0]]
		b := rev[rr.successors(key)[0]]
		if a != b {
			t.Fatalf("key %d: primary changed from %s to %s under list reorder", i, a, b)
		}
	}
}

// TestRingEmpty pins the degenerate case.
func TestRingEmpty(t *testing.T) {
	r := newRing(nil)
	if got := r.successors(sha256.Sum256([]byte("x"))); got != nil {
		t.Fatalf("empty ring returned successors %v", got)
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pbqprl/internal/failpoint"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/portfolio"
)

// Request knobs. Each is a query parameter with a header alias (the
// header wins when both are set) so callers can keep graph bodies and
// routing concerns separate:
//
//	chain     / X-PBQP-Chain:     comma-separated solver chain, e.g.
//	                              "liberty,scholz"
//	deadline  / X-PBQP-Deadline:  Go duration, e.g. "250ms"; capped by
//	                              the server's MaxDeadline
//	cost-mode / X-PBQP-Cost-Mode: "zeroinf" (default) stops at the
//	                              first complete feasible answer — in
//	                              the ATE zero/infinity regime any
//	                              feasible selection is optimal;
//	                              "spill" runs every stage and keeps
//	                              the cheapest answer, the right
//	                              setting for weighted spill costs
const (
	headerChain    = "X-PBQP-Chain"
	headerDeadline = "X-PBQP-Deadline"
	headerCostMode = "X-PBQP-Cost-Mode"
)

// SolveResponse is the JSON body of a successful (or truncated or
// infeasible) solve. Result is the portfolio's best answer; Stats
// reports every stage — the same portfolio.Stats that pbqp-solve
// -stats-json prints.
type SolveResponse struct {
	// Solver names the portfolio that ran, e.g.
	// "portfolio(liberty→scholz)".
	Solver string `json:"solver"`
	// Result is the best answer across stages.
	Result solve.Result `json:"result"`
	// Stats has one outcome per stage, in chain order.
	Stats portfolio.Stats `json:"stats"`
	// QueueNanos is time spent waiting for a worker; SolveNanos is
	// time on the worker. Both count against the request deadline.
	QueueNanos int64 `json:"queue_ns"`
	SolveNanos int64 `json:"solve_ns"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
}

// now is the server's only wall-clock read point, for latency
// measurement and deadline arithmetic.
func now() time.Time {
	//pbqpvet:ignore determinism serving-path latency measurement and deadlines are operational, never solver inputs
	return time.Now()
}

// handleSolve is POST /v1/solve.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	start := now()
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		st := sw.status
		if st == 0 {
			st = http.StatusOK
		}
		s.observeRequest(st, now().Sub(start))
	}()

	if r.Method != http.MethodPost {
		sw.Header().Set("Allow", http.MethodPost)
		s.writeError(sw, http.StatusMethodNotAllowed, "POST a PBQP graph in the textual format")
		return
	}
	if s.adm.IsDraining() {
		sw.Header().Set("Retry-After", retryAfterSeconds(s.retryAfter()))
		s.writeError(sw, http.StatusServiceUnavailable, "server is draining; retry elsewhere")
		return
	}

	// Parse the knobs before the body: a bad knob should not cost a
	// graph parse.
	chainNames, deadline, stopOnFeasible, err := s.parseKnobs(r)
	if err != nil {
		s.writeError(sw, http.StatusBadRequest, err.Error())
		return
	}
	chain, err := buildChain(s.cfg, chainNames)
	if err != nil {
		s.writeError(sw, http.StatusBadRequest, err.Error())
		return
	}

	// Harden the parse path: body size cap first, then the parser's
	// own dimension caps.
	body := http.MaxBytesReader(sw, r.Body, s.cfg.MaxRequestBytes)
	g, err := pbqp.ReadWithLimits(body, s.cfg.ReadLimits)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(sw, http.StatusRequestEntityTooLarge,
				"request body exceeds "+strconv.FormatInt(tooLarge.Limit, 10)+" bytes")
			return
		}
		s.writeError(sw, http.StatusBadRequest, err.Error())
		return
	}

	// The deadline starts at admission and covers queue wait: a
	// request that queues for its whole budget gets a truncated
	// answer, not a free extension. Deriving from the request context
	// also cancels the solve when the client disconnects.
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	p := &portfolio.Solver{StopOnFeasible: stopOnFeasible, Logf: s.cfg.Logf}
	for _, sv := range chain {
		p.Stages = append(p.Stages, portfolio.Stage{Solver: sv})
	}

	var (
		res        solve.Result
		stats      portfolio.Stats
		solveStart time.Time
	)
	j := NewJob(func() {
		solveStart = now()
		s.reg.Gauge("requests_inflight").Add(1)
		defer s.reg.Gauge("requests_inflight").Add(-1)
		// Test fault injection: arming server/solve with a panic or
		// delay action drives the worker-panic and slow-drain paths
		// end-to-end without a bespoke MakeSolver stub.
		_ = failpoint.Hit("server/solve")
		res, stats = p.SolveStats(ctx, g)
	})
	queued := now()
	if err := s.adm.Submit(j); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			sw.Header().Set("Retry-After", retryAfterSeconds(s.retryAfter()))
			s.reg.Counter("requests_shed_total").Inc()
			s.writeError(sw, http.StatusTooManyRequests, "queue full; retry after backoff")
		default:
			sw.Header().Set("Retry-After", retryAfterSeconds(s.retryAfter()))
			s.writeError(sw, http.StatusServiceUnavailable, "server is draining; retry elsewhere")
		}
		return
	}
	<-j.Done()

	if panicked, val, stack := j.Panicked(); panicked {
		// Mirror the portfolio's repro logging for panics that escape
		// it (the portfolio already isolates per-stage panics; this
		// catches everything else on the worker). The serialization is
		// capped: a max-dimension hostile graph must not be able to
		// blow up the log pipeline.
		s.reg.Counter("solve_panics_total").Inc()
		s.cfg.Logf("server: solve panicked: %s\ngraph for repro:\n%s\n%s",
			val, pbqp.Elide(g.String(), maxGraphLogBytes), stack)
		s.writeError(sw, http.StatusInternalServerError, "solver panicked; the graph was logged for reproduction")
		return
	}

	finish := now()
	s.observeStages(stats)
	resp := SolveResponse{
		Solver:     p.Name(),
		Result:     res,
		Stats:      stats,
		QueueNanos: solveStart.Sub(queued).Nanoseconds(),
		SolveNanos: finish.Sub(solveStart).Nanoseconds(),
	}
	writeJSON(sw, statusFor(res), resp)
}

// statusFor maps a solve result to its HTTP status, mirroring
// pbqp-solve's exit codes: feasible → 200 (exit 0, or 3 when
// truncated — the JSON carries the flag), infeasible after a complete
// search → 422 (exit 2), deadline-truncated with nothing to show →
// 504 (exit 3).
func statusFor(res solve.Result) int {
	switch {
	case res.Feasible:
		return http.StatusOK
	case res.Truncated:
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// parseKnobs extracts the chain, deadline, and cost-mode knobs.
func (s *Server) parseKnobs(r *http.Request) (chain []string, deadline time.Duration, stopOnFeasible bool, err error) {
	chainSpec := knob(r, "chain", headerChain)
	if chainSpec == "" {
		chain = s.cfg.DefaultChain
	} else {
		for _, name := range strings.Split(chainSpec, ",") {
			name = strings.TrimSpace(name)
			if name != "" {
				chain = append(chain, name)
			}
		}
		if len(chain) == 0 {
			return nil, 0, false, errors.New("chain selects no solvers")
		}
	}

	deadline = s.cfg.DefaultDeadline
	if spec := knob(r, "deadline", headerDeadline); spec != "" {
		d, perr := time.ParseDuration(spec)
		if perr != nil || d <= 0 {
			return nil, 0, false, errors.New("deadline wants a positive Go duration like 250ms")
		}
		deadline = d
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}

	switch mode := knob(r, "cost-mode", headerCostMode); mode {
	case "", "zeroinf":
		stopOnFeasible = true
	case "spill":
		stopOnFeasible = false
	default:
		return nil, 0, false, errors.New(`cost-mode wants "zeroinf" or "spill"`)
	}
	return chain, deadline, stopOnFeasible, nil
}

// maxGraphLogBytes caps graph serializations written to the log for
// offline reproduction; past it the tail is elided with a byte count.
const maxGraphLogBytes = 64 << 10

// retryAfter derives the Retry-After hint for 429/503 answers from the
// server's current load via RetryAfterHint; cfg.RetryAfter is the
// floor.
func (s *Server) retryAfter() time.Duration {
	return RetryAfterHint(s.cfg.RetryAfter, s.adm.Depth(), s.cfg.Workers)
}

// RetryAfterHint scales a configured floor hint by queue pressure:
// with depth jobs queued ahead of a new arrival and workers draining
// them, ceil(depth/workers) "queue generations" must clear before a
// retry can be admitted, and each generation needs at least one
// service time — for which the floor stands in as a conservative
// unit. An idle queue returns the floor unchanged; the hint is capped
// at one minute so a deeply backed-up server still invites retries
// within the window a client plausibly waits. Exported for the
// distributed-training coordinator, whose lease endpoints shed load
// the same way and whose worker clients honor the header.
func RetryAfterHint(floor time.Duration, depth, workers int) time.Duration {
	if floor <= 0 {
		floor = time.Second
	}
	if workers < 1 {
		workers = 1
	}
	generations := (depth + workers - 1) / workers
	hint := floor * time.Duration(1+generations)
	if max := time.Minute; hint > max {
		hint = max
	}
	return hint
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// knob reads one request knob: the header alias wins over the query
// parameter.
func knob(r *http.Request, query, header string) string {
	if v := r.Header.Get(header); v != "" {
		return v
	}
	return r.URL.Query().Get(query)
}

// observeRequest records the per-status request metrics.
func (s *Server) observeRequest(status int, d time.Duration) {
	code := strconv.Itoa(status)
	s.reg.Counter("http_requests_total." + code).Inc()
	s.reg.Histogram("http_request_seconds." + code).Observe(d)
}

// observeStages records per-stage solver latency and outcome counts.
func (s *Server) observeStages(stats portfolio.Stats) {
	for _, out := range stats.Stages {
		if out.Skipped {
			s.reg.Counter("solve_stage_skipped_total." + out.Name).Inc()
			continue
		}
		s.reg.Histogram("solve_stage_seconds." + out.Name).Observe(out.Duration)
		switch {
		case out.Panicked:
			s.reg.Counter("solve_stage_panics_total." + out.Name).Inc()
		case out.Result.Feasible:
			s.reg.Counter("solve_stage_feasible_total." + out.Name).Inc()
		default:
			s.reg.Counter("solve_stage_infeasible_total." + out.Name).Inc()
		}
	}
}

// writeError sends a JSON error body with the given status.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}

// writeJSON sends v as a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshal of our own response types cannot fail; guard anyway.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

// statusWriter records the status code actually written so the
// deferred metrics observation sees it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Package server is the PBQP allocation service: a stdlib-only
// net/http layer that accepts PBQP graphs in the textual format,
// solves each request through a deadline-aware solver portfolio on a
// bounded worker pool, and reports per-stage statistics both in the
// response and through the built-in metrics registry.
//
// The production spine, in request order:
//
//   - input hardening: http.MaxBytesReader plus tightened
//     pbqp.ReadLimits on the parse path — hostile bodies are rejected
//     before any large allocation;
//   - admission control: a fixed worker pool behind a bounded queue;
//     past queue capacity the server sheds load with 429 + Retry-After
//     instead of queueing unboundedly, and while draining it answers
//     503;
//   - deadline propagation: each request's solve runs under the
//     client's deadline capped by the server maximum, derived from the
//     request context, so client disconnects cancel queued solves too;
//   - panic isolation: a panicking solve takes down its request (500,
//     with the offending graph serialized to the log for offline
//     reproduction, like the portfolio does per stage), never the
//     process;
//   - graceful drain: Drain stops admission (readyz goes 503, new
//     solves get 503), finishes every accepted request, then stops the
//     workers — the SIGTERM path of cmd/pbqp-serve.
//
// Endpoints: POST /v1/solve, GET /metrics (expvar-style JSON), GET
// /healthz, GET /readyz, and the /debug/pprof/* profiles.
package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"time"

	"pbqprl/internal/decomp"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/rl"
	"pbqprl/internal/server/metrics"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/anneal"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/scholz"
)

// Config tunes a Server. The zero value is serviceable: every field
// falls back to the documented default.
type Config struct {
	// Workers is the solver worker-pool size — the number of solves
	// in flight at once. Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the admission queue; requests beyond
	// Workers+QueueDepth in flight are shed with 429. Default: 128.
	QueueDepth int
	// MaxRequestBytes caps the request body. Default: 4 MiB.
	MaxRequestBytes int64
	// DefaultDeadline is the per-request solve budget when the client
	// does not ask for one. Default: 2s.
	DefaultDeadline time.Duration
	// MaxDeadline caps the client-requested deadline. Default: 30s.
	MaxDeadline time.Duration
	// RetryAfter is the hint returned with 429/503 responses.
	// Default: 1s.
	RetryAfter time.Duration
	// ReadLimits tightens the PBQP parser caps for request bodies.
	// Zero fields use the pbqp package defaults.
	ReadLimits pbqp.ReadLimits
	// DefaultChain is the solver fallback chain used when the request
	// does not select one. Default: rl-bt → liberty → scholz, the
	// same chain as pbqp-solve -portfolio. A "decomp:" prefix on any
	// stage name (e.g. "decomp:scholz") routes that stage through the
	// big-graph decomposition pipeline.
	DefaultChain []string
	// MaxStates is the per-stage search budget. Default: 50,000,000.
	MaxStates int64
	// K is the MCTS simulations-per-action count for rl stages.
	// Default: 50.
	K int
	// Order is the coloring order for rl stages; the zero value is
	// game.OrderFixed. cmd/pbqp-serve defaults its flag to the
	// paper's best, decreasing liberty.
	Order game.Order
	// Evaluator supplies the MCTS evaluator for rl stages; the factory
	// is called once per admitted request that uses one. Cloning
	// factories hand every request a private network (evaluators carry
	// scratch buffers that are not safe to share across worker
	// goroutines); a factory returning one shared net.Batcher instead
	// funnels every request's evaluations through a single network and
	// coalesces them into batches (cmd/pbqp-serve -batch). Nil uses
	// the uniform (untrained) prior.
	Evaluator func() mcts.Evaluator
	// BatchLeaves is the mcts.Config.BatchLeaves value for rl stages:
	// how many simulations' leaves each search collects per batched
	// evaluation. Search results are bit-identical whatever the value;
	// it only matters for throughput. Zero (or an evaluator without a
	// batched path) keeps the sequential per-leaf loop.
	BatchLeaves int
	// MakeSolver overrides solver construction by name; tests inject
	// blocking or panicking solvers through it. Nil uses the built-in
	// names (brute, scholz, liberty, anneal, rl, rl-bt).
	MakeSolver func(name string) (solve.Solver, error)
	// Logf receives operational log lines (panic reports with graph
	// serializations, drain progress). Nil uses a no-op; cmd/pbqp-serve
	// passes log.Printf.
	Logf func(format string, args ...any)
	// Registry receives the server's metrics. Nil creates a fresh one.
	Registry *metrics.Registry
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 4 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if len(c.DefaultChain) == 0 {
		c.DefaultChain = []string{"rl-bt", "liberty", "scholz"}
	}
	if c.MaxStates <= 0 {
		c.MaxStates = 50_000_000
	}
	if c.K <= 0 {
		c.K = 50
	}
	if c.Evaluator == nil {
		c.Evaluator = func() mcts.Evaluator { return mcts.Uniform{} }
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// Server is the allocation service. Create with New, expose via
// Handler, stop via Drain.
type Server struct {
	cfg Config
	reg *metrics.Registry
	adm *Admission
	mux *http.ServeMux
}

// New builds a Server (workers started, not yet listening — the caller
// owns the http.Server/listener so tests can use httptest).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	// Validate the default chain eagerly: a typo should fail startup,
	// not every request.
	if _, err := buildChain(cfg, cfg.DefaultChain); err != nil {
		return nil, fmt.Errorf("server: default chain: %w", err)
	}
	s := &Server{
		cfg: cfg,
		reg: cfg.Registry,
		adm: NewAdmission(cfg.Workers, cfg.QueueDepth),
		mux: http.NewServeMux(),
	}
	s.reg.Gauge("queue_depth").Set(0)
	s.reg.Gauge("requests_inflight").Set(0)
	s.mux.HandleFunc("/v1/solve", s.handleSolve)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Draining reports whether the server has begun draining.
func (s *Server) Draining() bool { return s.adm.IsDraining() }

// Drain gracefully shuts the solve path down: admission flips to
// draining (new solves and readyz answer 503), every accepted request
// runs to completion, then the workers exit. It returns nil on a
// complete drain and the context's error if the deadline cut it short.
// The caller still owns its http.Server and should Shutdown it after
// Drain returns so late health probes get answers during the drain.
func (s *Server) Drain(ctx context.Context) error {
	s.cfg.Logf("server: draining (in flight: %d queued: %d)",
		s.reg.Gauge("requests_inflight").Value(), s.adm.Depth())
	err := s.adm.Drain(ctx)
	if err != nil {
		s.cfg.Logf("server: drain incomplete: %v", err)
		return err
	}
	s.cfg.Logf("server: drain complete")
	return nil
}

// handleMetrics serves the registry snapshot. queue_depth is sampled
// here rather than written from request handlers: concurrent handlers
// racing Gauge.Set could persist a stale pre-dequeue snapshot, whereas
// sampling at scrape time always reflects the queue as it is now.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.reg.Gauge("queue_depth").Set(int64(s.adm.Depth()))
	s.reg.ServeHTTP(w, r)
}

// handleHealthz answers liveness: 200 as long as the process serves
// HTTP, draining included — a draining server is still healthy, just
// not ready.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.adm.IsDraining(),
	})
}

// handleReadyz answers readiness: 200 while accepting, 503 once
// draining so load balancers stop routing new work here. The 503
// carries the same load-derived Retry-After hint as the solve path, so
// a router's health prober knows when to re-check a draining replica.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.adm.IsDraining() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.retryAfter()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// buildChain constructs fresh solver instances for the named chain.
// Fresh per request on purpose: solver structs carry per-solve state,
// and with a cloning Evaluator factory each request also gets a
// private network (evaluators carry scratch buffers that are not safe
// to share across worker goroutines). A batching factory instead hands
// every request the same concurrency-safe net.Batcher, which
// serializes the shared network behind its queue.
func buildChain(cfg Config, names []string) ([]solve.Solver, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("empty solver chain")
	}
	chain := make([]solve.Solver, 0, len(names))
	for _, name := range names {
		sv, err := makeSolver(cfg, name)
		if err != nil {
			return nil, err
		}
		chain = append(chain, sv)
	}
	return chain, nil
}

// makeSolver builds one solver by name, honoring the test override. A
// "decomp:" prefix wraps the named solver in the big-graph
// decomposition pipeline (internal/decomp) — e.g. "decomp:scholz"
// reduces, splits into biconnected blocks, solves each block with
// scholz, and recombines. Components solve sequentially per request;
// the server already runs requests in parallel across its worker pool.
func makeSolver(cfg Config, name string) (solve.Solver, error) {
	if inner, ok := strings.CutPrefix(name, "decomp:"); ok {
		sv, err := makeSolver(cfg, inner)
		if err != nil {
			return nil, err
		}
		return decomp.Wrap(sv), nil
	}
	if cfg.MakeSolver != nil {
		return cfg.MakeSolver(name)
	}
	switch name {
	case "brute":
		return brute.Solver{MaxStates: cfg.MaxStates}, nil
	case "scholz":
		return scholz.Solver{}, nil
	case "liberty":
		return liberty.Solver{MaxStates: cfg.MaxStates}, nil
	case "anneal":
		return anneal.Solver{}, nil
	case "rl", "rl-bt":
		return &rl.Solver{Net: cfg.Evaluator(), Cfg: rl.Config{
			K:            cfg.K,
			Order:        cfg.Order,
			Backtrack:    name == "rl-bt",
			ReinvokeMCTS: true,
			MaxNodes:     cfg.MaxStates,
			MCTS:         mcts.Config{BatchLeaves: cfg.BatchLeaves},
		}}, nil
	default:
		return nil, fmt.Errorf("unknown solver %q (want brute, scholz, liberty, anneal, rl, or rl-bt, optionally prefixed decomp:)", name)
	}
}

package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // counters never go down
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	for _, d := range []time.Duration{
		500 * time.Microsecond, // ≤ 1ms
		time.Millisecond,       // == bound, inclusive
		5 * time.Millisecond,   // ≤ 10ms
		50 * time.Millisecond,  // ≤ 100ms
		time.Second,            // overflow
	} {
		h.Observe(d)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	wantCum := []int64{2, 3, 4, 5}
	wantLE := []string{"0.001", "0.01", "0.1", "+inf"}
	if len(s.Buckets) != len(wantCum) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] || b.LE != wantLE[i] {
			t.Fatalf("bucket %d = %+v, want le=%s count=%d", i, b, wantLE[i], wantCum[i])
		}
	}
	wantSum := (500*time.Microsecond + time.Millisecond + 5*time.Millisecond + 50*time.Millisecond + time.Second).Seconds()
	if s.SumSeconds < wantSum-1e-9 || s.SumSeconds > wantSum+1e-9 {
		t.Fatalf("sum = %v, want %v", s.SumSeconds, wantSum)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// the instruments must be race-free (run under -race in CI) and lose
// no events.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, events = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < events; i++ {
				r.Counter("hits").Inc()
				r.Histogram("lat").Observe(time.Millisecond)
				r.Gauge("depth").Add(1)
				r.Gauge("depth").Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != workers*events {
		t.Fatalf("hits = %d, want %d", got, workers*events)
	}
	if got := r.Histogram("lat").Count(); got != workers*events {
		t.Fatalf("observations = %d, want %d", got, workers*events)
	}
	if got := r.Gauge("depth").Value(); got != 0 {
		t.Fatalf("depth = %d, want 0", got)
	}
}

func TestServeHTTPSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter(Label("http_requests_total", "200")).Add(3)
	r.Histogram(Label("solve_stage_seconds", "scholz")).Observe(2 * time.Millisecond)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if snap.Counters["http_requests_total.200"] != 3 {
		t.Fatalf("counter missing: %+v", snap.Counters)
	}
	h, ok := snap.Histograms["solve_stage_seconds.scholz"]
	if !ok || h.Count != 1 {
		t.Fatalf("histogram missing: %+v", snap.Histograms)
	}
	if !strings.HasSuffix(rec.Body.String(), "\n") {
		t.Fatal("snapshot should end with a newline")
	}
}

// Package metrics is the repository's stdlib-only runtime
// instrumentation: lock-free counters, gauges, and fixed-bucket latency
// histograms collected in a Registry that serves an expvar-style JSON
// snapshot over HTTP. pbqp-serve uses it for per-stage and
// per-status-code request latency; the training pipeline can reuse the
// same registry for iteration timing without growing a dependency.
//
// Naming convention: flat dotted names with an optional trailing
// `.label` segment for one dimension, e.g. `http_requests_total.200`
// or `solve_stage_seconds.scholz`. Consumers that want all labels of a
// family match on the prefix.
package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level — queue depth, in-flight requests.
// Unlike a Counter it can go down. The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set overwrites the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency bucket upper bounds in seconds:
// half a millisecond to one minute, roughly ×2.5 per step. They bracket
// everything from a cached Scholz reduction to a deadline-bounded
// portfolio run.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram. Observations are
// atomic adds — no locks on the hot path — so concurrent request
// handlers can share one instance. Construct with NewHistogram; the
// zero value is not usable.
type Histogram struct {
	// bounds are the inclusive upper bounds in seconds, ascending.
	bounds []float64
	// counts has len(bounds)+1 entries; the last is the overflow
	// bucket (observations above every bound).
	counts []atomic.Int64
	count  atomic.Int64
	// sumNanos accumulates total observed time in nanoseconds; an
	// int64 holds ~292 years of it, far past any process lifetime.
	sumNanos atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds in seconds (DefBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	secs := d.Seconds()
	i := sort.SearchFloat64s(h.bounds, secs)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// Bucket is one row of a histogram snapshot: the cumulative count of
// observations at or below the upper bound LE ("+inf" for the overflow
// row), Prometheus-style.
type Bucket struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a point-in-time JSON-marshalable view of a
// histogram.
type HistogramSnapshot struct {
	Count      int64    `json:"count"`
	SumSeconds float64  `json:"sum_seconds"`
	Buckets    []Bucket `json:"buckets"`
}

// Snapshot captures the histogram's current state. Concurrent Observe
// calls may land between bucket reads; each row is individually exact
// and the cumulative rows are monotone.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:      h.count.Load(),
		SumSeconds: time.Duration(h.sumNanos.Load()).Seconds(),
		Buckets:    make([]Bucket, 0, len(h.counts)),
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%g", h.bounds[i])
		}
		s.Buckets = append(s.Buckets, Bucket{LE: le, Count: cum})
	}
	return s
}

// Registry is a named collection of metrics. Get-or-create lookups
// take a mutex; the returned instruments are lock-free, so callers
// should hold on to them rather than look them up per event when the
// name is known up front.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds (DefBuckets when none) on first use. Bounds are
// fixed at creation; later calls with different bounds get the
// original instrument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds...)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time view of every registered metric, ready
// for json.Marshal. encoding/json sorts map keys, so the output is
// stable for a fixed metric population.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// ServeHTTP serves the registry snapshot as indented JSON — the
// /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

// Label joins a metric family name with one label value, following the
// package naming convention: "family.value".
func Label(family, value string) string { return family + "." + value }

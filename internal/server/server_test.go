package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pbqprl/internal/cost"
	"pbqprl/internal/failpoint"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
)

const fig2 = "pbqp 3 2\nv 0 5 2\nv 1 5 0\nv 2 0 0\ne 0 1 0 inf inf 4\ne 1 2 1 0 0 2\n"

// infeasiblePair is unsolvable: one color, and the edge forbids it.
const infeasiblePair = "pbqp 2 1\ne 0 1 inf\n"

// post sends body to /v1/solve on h with optional query string and
// headers.
func post(h http.Handler, body, query string, hdr map[string]string) *httptest.ResponseRecorder {
	target := "/v1/solve"
	if query != "" {
		target += "?" + query
	}
	req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func decodeSolve(t *testing.T, rec *httptest.ResponseRecorder) SolveResponse {
	t.Helper()
	var resp SolveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad solve response JSON: %v\n%s", err, rec.Body.Bytes())
	}
	return resp
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !s.Draining() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("cleanup drain: %v", err)
			}
		}
	})
	return s
}

func TestSolveHappyPath(t *testing.T) {
	s := newTestServer(t, Config{DefaultChain: []string{"liberty", "scholz"}})
	rec := post(s.Handler(), fig2, "deadline=5s", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	resp := decodeSolve(t, rec)
	if !resp.Result.Feasible || resp.Result.Truncated {
		t.Fatalf("result %+v", resp.Result)
	}
	if len(resp.Result.Selection) != 3 {
		t.Fatalf("selection %v", resp.Result.Selection)
	}
	if len(resp.Stats.Stages) != 2 || resp.Stats.Winner != 0 {
		t.Fatalf("stats %+v", resp.Stats)
	}
	if resp.Solver != "portfolio(liberty→scholz)" {
		t.Fatalf("solver %q", resp.Solver)
	}
	if resp.SolveNanos <= 0 || resp.QueueNanos < 0 {
		t.Fatalf("timing queue=%d solve=%d", resp.QueueNanos, resp.SolveNanos)
	}
}

// TestSolveDecompChain exercises the "decomp:" stage prefix: the chain
// routes through the big-graph decomposition pipeline and still finds
// the fig2 optimum.
func TestSolveDecompChain(t *testing.T) {
	s := newTestServer(t, Config{DefaultChain: []string{"decomp:brute"}})
	rec := post(s.Handler(), fig2, "deadline=5s", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	resp := decodeSolve(t, rec)
	if !resp.Result.Feasible || resp.Result.Truncated {
		t.Fatalf("result %+v", resp.Result)
	}
	if resp.Stats.Stages[0].Name != "decomp(brute)" {
		t.Fatalf("stage name %q", resp.Stats.Stages[0].Name)
	}
	plain := decodeSolve(t, post(s.Handler(), fig2, "deadline=5s&chain=brute", nil))
	if resp.Result.Cost != plain.Result.Cost {
		t.Fatalf("decomp cost %v, plain brute %v", resp.Result.Cost, plain.Result.Cost)
	}
}

// TestSolveDecompUnknownInner: the prefix must not mask bad inner names.
func TestSolveDecompUnknownInner(t *testing.T) {
	s := newTestServer(t, Config{DefaultChain: []string{"scholz"}})
	rec := post(s.Handler(), fig2, "chain=decomp%3Azebra", nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
}

func TestSolveInfeasibleIs422(t *testing.T) {
	s := newTestServer(t, Config{DefaultChain: []string{"scholz"}})
	rec := post(s.Handler(), infeasiblePair, "", nil)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	resp := decodeSolve(t, rec)
	if resp.Result.Feasible || resp.Result.Truncated {
		t.Fatalf("result %+v", resp.Result)
	}
}

// spinner busy-waits until its context fires, then reports a truncated
// infeasible search — the shape of a solver that ran out of deadline
// with nothing to show.
type spinner struct{}

func (spinner) Name() string { return "spinner" }
func (spinner) Solve(g *pbqp.Graph) solve.Result {
	return spinner{}.SolveCtx(context.Background(), g)
}
func (spinner) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	for ctx.Err() == nil {
		time.Sleep(50 * time.Microsecond)
	}
	return solve.Result{Cost: cost.Inf, Truncated: true}
}

func TestDeadlineTruncationIs504(t *testing.T) {
	s := newTestServer(t, Config{
		DefaultChain: []string{"block"},
		MakeSolver: func(string) (solve.Solver, error) {
			return spinner{}, nil
		},
	})
	start := time.Now()
	rec := post(s.Handler(), fig2, "deadline=50ms", nil)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline ignored: took %v", elapsed)
	}
	resp := decodeSolve(t, rec)
	if !resp.Result.Truncated || resp.Result.Feasible {
		t.Fatalf("result %+v", resp.Result)
	}
}

// TestRequestHardening runs the handler table over hostile inputs,
// reusing the FuzzReadGraph seed corpus as fixtures so the server's
// parse path is pinned to exactly what the fuzzer's seeds exercise.
func TestRequestHardening(t *testing.T) {
	s := newTestServer(t, Config{
		DefaultChain:    []string{"liberty", "scholz"},
		MaxRequestBytes: 1 << 16,
		ReadLimits:      pbqp.ReadLimits{MaxVertices: 1 << 10, MaxColors: 1 << 6},
	})
	seeds := readFuzzSeeds(t)
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantErr    string
	}{
		{"seed_fig2", seeds["seed_fig2"], http.StatusOK, ""},
		{"seed_minimal", seeds["seed_minimal"], http.StatusOK, ""},
		{"seed_empty_graph", seeds["seed_empty_graph"], http.StatusOK, ""},
		{"seed_comment_inf", seeds["seed_comment_inf"], http.StatusOK, ""},
		{"seed_reversed_edge", seeds["seed_reversed_edge"], http.StatusOK, ""},
		{"seed_absurd_header", seeds["seed_absurd_header"], http.StatusBadRequest, "exceeds the limit"},
		{"seed_duplicate_edge", seeds["seed_duplicate_edge"], http.StatusBadRequest, "duplicate edge"},
		{"seed_reserved_range", seeds["seed_reserved_range"], http.StatusBadRequest, "reserved infinite range"},
		{"empty body", "", http.StatusBadRequest, "missing header"},
		{"not pbqp", "GET / HTTP/1.1", http.StatusBadRequest, "unknown directive"},
		{"vertices past tightened cap", "pbqp 2000 2\n", http.StatusBadRequest, "exceeds the limit 1024"},
		{"colors past tightened cap", "pbqp 2 100\n", http.StatusBadRequest, "exceeds the limit 64"},
		{"oversized body", strings.Repeat("# padding\n", 1<<13), http.StatusRequestEntityTooLarge, "exceeds"},
		{"bad chain", fig2, http.StatusBadRequest, "unknown solver"},
		{"empty chain", fig2, http.StatusBadRequest, "no solvers"},
		{"bad deadline", fig2, http.StatusBadRequest, "positive Go duration"},
		{"bad cost mode", fig2, http.StatusBadRequest, "zeroinf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			query := ""
			switch tc.name {
			case "bad chain":
				query = "chain=zebra"
			case "empty chain":
				query = "chain=%2C"
			case "bad deadline":
				query = "deadline=zebra"
			case "bad cost mode":
				query = "cost-mode=banana"
			}
			rec := post(s.Handler(), tc.body, query, nil)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.wantStatus, rec.Body.Bytes())
			}
			if tc.wantErr != "" {
				var e ErrorResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
					t.Fatalf("error body is not JSON: %s", rec.Body.Bytes())
				}
				if !strings.Contains(e.Error, tc.wantErr) {
					t.Fatalf("error %q, want it to mention %q", e.Error, tc.wantErr)
				}
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{DefaultChain: []string{"scholz"}})
	req := httptest.NewRequest(http.MethodGet, "/v1/solve", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", rec.Code)
	}
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Fatalf("Allow %q", allow)
	}
}

// readFuzzSeeds loads the FuzzReadGraph seed corpus from
// internal/pbqp/testdata as name → graph text.
func readFuzzSeeds(t *testing.T) map[string]string {
	t.Helper()
	dir := filepath.Join("..", "pbqp", "testdata", "fuzz", "FuzzReadGraph")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	seeds := map[string]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.SplitN(string(data), "\n", 2)
		if len(lines) != 2 {
			t.Fatalf("seed %s: unexpected corpus format", e.Name())
		}
		payload := strings.TrimSpace(lines[1])
		payload = strings.TrimPrefix(payload, "[]byte(")
		payload = strings.TrimSuffix(payload, ")")
		body, err := strconv.Unquote(payload)
		if err != nil {
			t.Fatalf("seed %s: cannot unquote %s: %v", e.Name(), payload, err)
		}
		seeds[e.Name()] = body
	}
	for _, want := range []string{"seed_fig2", "seed_duplicate_edge", "seed_absurd_header"} {
		if _, ok := seeds[want]; !ok {
			t.Fatalf("seed corpus lost %s; update this test's table", want)
		}
	}
	return seeds
}

// gate is a solver that blocks until released (or its context fires),
// reporting every start. It gives tests exact control over worker
// occupancy.
type gate struct {
	name    string
	started chan struct{}
	release chan struct{}
}

func newGate(name string) *gate {
	return &gate{name: name, started: make(chan struct{}, 1024), release: make(chan struct{})}
}

func (g *gate) Name() string { return g.name }
func (g *gate) Solve(gr *pbqp.Graph) solve.Result {
	return g.SolveCtx(context.Background(), gr)
}
func (g *gate) SolveCtx(ctx context.Context, gr *pbqp.Graph) solve.Result {
	g.started <- struct{}{}
	select {
	case <-g.release:
	case <-ctx.Done():
		return solve.Result{Cost: cost.Inf, Truncated: true}
	}
	return solve.Result{
		Selection: make(pbqp.Selection, gr.NumVertices()),
		Feasible:  true,
	}
}

// waitStarted waits for n solve starts.
func (g *gate) waitStarted(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-g.started:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d solves started", i, n)
		}
	}
}

// TestGracefulDrain fires concurrent requests, begins a drain while
// they are in flight (some running, some queued), and asserts the
// accepted ones complete with 200 while requests arriving during the
// drain get 503. Run under -race in CI.
func TestGracefulDrain(t *testing.T) {
	g := newGate("gate")
	s, err := New(Config{
		Workers:         2,
		QueueDepth:      16,
		DefaultChain:    []string{"gate"},
		DefaultDeadline: time.Minute,
		MakeSolver:      func(string) (solve.Solver, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 6
	codes := make(chan int, inflight)
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- post(s.Handler(), fig2, "", nil).Code
		}()
	}
	g.waitStarted(t, 2) // both workers busy...
	// ...and every other request admitted to the queue, so the drain
	// below owes all six of them a real answer.
	waitFor(t, func() bool { return s.adm.Depth() == inflight-2 }, "remaining requests to queue")

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	waitFor(t, s.Draining, "server to enter draining")

	// New arrivals during the drain are refused with 503 + Retry-After.
	for i := 0; i < 4; i++ {
		rec := post(s.Handler(), fig2, "", nil)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("during drain: status %d, want 503", rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("503 without Retry-After")
		}
	}
	if rec := post(s.Handler(), fig2, "", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz-equivalent refused: %d", rec.Code)
	}
	{
		req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("readyz during drain: %d, want 503", rec.Code)
		}
		// The readiness 503 carries the same load-derived hint as the
		// solve path, so fleet probers know when to re-check.
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("readyz 503 without Retry-After")
		}
	}
	{
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("healthz during drain: %d, want 200", rec.Code)
		}
	}

	// The drain must be waiting on the in-flight requests, not done.
	select {
	case err := <-drainDone:
		t.Fatalf("drain finished with %v while requests were gated", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(g.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("in-flight request got %d during drain, want 200", code)
		}
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestLoadShedding pins the 429 contract: with one worker and a
// two-slot queue, exactly three requests are admitted and every
// further arrival is shed immediately — synchronously, with no
// goroutine growth — until capacity frees up.
func TestLoadShedding(t *testing.T) {
	g := newGate("gate")
	s, err := New(Config{
		Workers:         1,
		QueueDepth:      2,
		DefaultChain:    []string{"gate"},
		DefaultDeadline: time.Minute,
		RetryAfter:      7 * time.Second,
		MakeSolver:      func(string) (solve.Solver, error) { return g, nil },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Fill the worker, then the queue.
	codes := make(chan int, 3)
	var wg sync.WaitGroup
	for i := 0; i < 1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- post(s.Handler(), fig2, "", nil).Code
		}()
	}
	g.waitStarted(t, 1)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- post(s.Handler(), fig2, "", nil).Code
		}()
	}
	waitFor(t, func() bool { return s.adm.Depth() == 2 }, "queue to fill")

	// Everything beyond capacity is shed synchronously with 429.
	before := numGoroutines()
	for i := 0; i < 20; i++ {
		rec := post(s.Handler(), fig2, "", nil)
		if rec.Code != http.StatusTooManyRequests {
			t.Fatalf("request %d past capacity: status %d, want 429", i, rec.Code)
		}
		// Adaptive hint: 2 queued jobs behind 1 worker is two full
		// drain generations past the floor, so 7s * (1+2) = 21s.
		if ra := rec.Header().Get("Retry-After"); ra != "21" {
			t.Fatalf("Retry-After %q, want \"21\"", ra)
		}
	}
	if after := numGoroutines(); after > before+3 {
		t.Fatalf("shedding grew goroutines %d → %d; queueing is not bounded", before, after)
	}
	if shed := s.Registry().Counter("requests_shed_total").Value(); shed != 20 {
		t.Fatalf("requests_shed_total = %d, want 20", shed)
	}

	close(g.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request got %d, want 200", code)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestSustains64ConcurrentRequests drives 64 in-flight requests
// through a bounded pool and expects every one to succeed — the
// acceptance bar for the serving subsystem, run under -race in CI.
func TestSustains64ConcurrentRequests(t *testing.T) {
	s := newTestServer(t, Config{
		Workers:         8,
		QueueDepth:      64,
		DefaultChain:    []string{"liberty", "scholz"},
		DefaultDeadline: time.Minute,
	})
	const n = 64
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- post(s.Handler(), fig2, "", nil).Code
		}()
	}
	wg.Wait()
	close(codes)
	ok := 0
	for code := range codes {
		if code == http.StatusOK {
			ok++
		}
	}
	if ok != n {
		t.Fatalf("only %d/%d concurrent requests succeeded", ok, n)
	}
	if shed := s.Registry().Counter("requests_shed_total").Value(); shed != 0 {
		t.Fatalf("%d requests shed below capacity", shed)
	}
}

// panicNamer panics outside the portfolio's per-stage recovery (in
// Name, which SolveStats calls on the worker goroutine), exercising
// the worker-level panic isolation and its graph-repro logging.
type panicNamer struct{}

func (panicNamer) Name() string                   { panic("injected Name panic") }
func (panicNamer) Solve(*pbqp.Graph) solve.Result { panic("unreachable") }

func TestWorkerPanicIsolation(t *testing.T) {
	var logged atomic.Value
	s := newTestServer(t, Config{
		DefaultChain: []string{"boom"},
		MakeSolver:   func(string) (solve.Solver, error) { return panicNamer{}, nil },
		Logf: func(format string, args ...any) {
			logged.Store(fmt.Sprintf(format, args...))
		},
	})
	rec := post(s.Handler(), fig2, "", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", rec.Code, rec.Body.Bytes())
	}
	msg, _ := logged.Load().(string)
	if !strings.Contains(msg, "injected Name panic") || !strings.Contains(msg, "pbqp 3 2") {
		t.Fatalf("panic log misses panic value or graph repro:\n%s", msg)
	}
	// The pool survives: the next request solves normally.
	s2 := post(s.Handler(), fig2, "chain=boom", nil)
	if s2.Code != http.StatusInternalServerError {
		t.Fatalf("second panic request: %d", s2.Code)
	}
	if c := s.Registry().Counter("solve_panics_total").Value(); c != 2 {
		t.Fatalf("solve_panics_total = %d, want 2", c)
	}
}

func TestKnobHeadersWinOverQuery(t *testing.T) {
	s := newTestServer(t, Config{DefaultChain: []string{"scholz"}})
	rec := post(s.Handler(), fig2, "chain=zebra", map[string]string{
		"X-PBQP-Chain":     "liberty",
		"X-PBQP-Deadline":  "5s",
		"X-PBQP-Cost-Mode": "spill",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.Bytes())
	}
	resp := decodeSolve(t, rec)
	if resp.Solver != "portfolio(liberty)" {
		t.Fatalf("solver %q; header did not win over query", resp.Solver)
	}
}

// TestSpillModeRunsWholeChain pins cost-mode semantics: zeroinf stops
// at the first feasible stage, spill runs the rest in search of a
// cheaper answer.
func TestSpillModeRunsWholeChain(t *testing.T) {
	s := newTestServer(t, Config{DefaultChain: []string{"liberty", "scholz"}})
	zero := decodeSolve(t, post(s.Handler(), fig2, "cost-mode=zeroinf", nil))
	if !zero.Stats.Stages[1].Skipped {
		t.Fatalf("zeroinf ran the fallback stage: %+v", zero.Stats)
	}
	spill := decodeSolve(t, post(s.Handler(), fig2, "cost-mode=spill", nil))
	if spill.Stats.Stages[1].Skipped {
		t.Fatalf("spill mode skipped the fallback stage: %+v", spill.Stats)
	}
	if !spill.Result.Feasible {
		t.Fatalf("spill result %+v", spill.Result)
	}
}

// TestMetricsSchema asserts the observability contract: request
// latency histograms per status code, stage latency histograms per
// solver, and live gauges.
func TestMetricsSchema(t *testing.T) {
	s := newTestServer(t, Config{DefaultChain: []string{"liberty", "scholz"}})
	post(s.Handler(), fig2, "", nil)
	post(s.Handler(), "not a graph", "", nil)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	var snap struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Count   int64 `json:"count"`
			Buckets []struct {
				LE    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics is not well-formed JSON: %v", err)
	}
	if snap.Counters["http_requests_total.200"] != 1 || snap.Counters["http_requests_total.400"] != 1 {
		t.Fatalf("status counters %+v", snap.Counters)
	}
	for _, name := range []string{"http_request_seconds.200", "http_request_seconds.400", "solve_stage_seconds.liberty"} {
		h, ok := snap.Histograms[name]
		if !ok || h.Count != 1 || len(h.Buckets) == 0 {
			t.Fatalf("histogram %s missing or empty: %+v", name, snap.Histograms)
		}
		if h.Buckets[len(h.Buckets)-1].LE != "+inf" {
			t.Fatalf("histogram %s lacks the +inf bucket", name)
		}
	}
	if snap.Counters["solve_stage_skipped_total.scholz"] != 1 {
		t.Fatalf("skipped-stage counter missing: %+v", snap.Counters)
	}
	if _, ok := snap.Gauges["requests_inflight"]; !ok {
		t.Fatalf("gauges %+v", snap.Gauges)
	}
}

func TestAdmissionStateMachine(t *testing.T) {
	a := NewAdmission(2, 4)
	j := NewJob(func() {})
	if err := a.Submit(j); err != nil {
		t.Fatalf("submit while accepting: %v", err)
	}
	<-j.Done()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := a.Submit(NewJob(func() {})); err != ErrDraining {
		t.Fatalf("submit after drain: %v, want ErrDraining", err)
	}
	if err := a.Drain(ctx); err == nil {
		t.Fatal("second drain did not error")
	}
}

func TestAdmissionQueueFull(t *testing.T) {
	a := NewAdmission(1, 1)
	block := make(chan struct{})
	running := NewJob(func() { <-block })
	if err := a.Submit(running); err != nil {
		t.Fatal(err)
	}
	// The single worker may not have picked the job up yet; admit jobs
	// until the queue reports full, then assert it stays full.
	var queued []*Job
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := NewJob(func() { <-block })
		err := a.Submit(j)
		if err == ErrQueueFull && a.Depth() == 1 {
			break
		}
		if err == nil {
			queued = append(queued, j)
		}
		if len(queued) > 2 || time.Now().After(deadline) {
			t.Fatalf("queue of depth 1 admitted %d jobs", len(queued))
		}
	}
	if err := a.Submit(NewJob(func() {})); err != ErrQueueFull {
		t.Fatalf("submit past capacity: %v, want ErrQueueFull", err)
	}
	close(block)
	<-running.Done()
	for _, j := range queued {
		<-j.Done()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionSubmitCompleteRace regression-tests the WaitGroup
// ordering in submit: accepted.Add must happen before the job is sent
// on the queue, or a fast worker's deferred Done can land first and
// panic the counter negative. Trivially fast jobs under contention
// maximize that window; a rejected (queue-full) submit must also leave
// the counter balanced or the final drain hangs.
func TestAdmissionSubmitCompleteRace(t *testing.T) {
	a := NewAdmission(4, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j := NewJob(func() {})
				if err := a.Submit(j); err != nil {
					continue // shed under contention; must not leak a WaitGroup Add
				}
				<-j.Done()
			}
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

func numGoroutines() int { return runtime.NumGoroutine() }

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFailpointSolvePanic drives the worker-level panic isolation
// through the server/solve failpoint instead of a bespoke panicking
// solver: the same injection point the chaos CI stage arms.
func TestFailpointSolvePanic(t *testing.T) {
	if err := failpoint.Enable("server/solve", "panic"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("server/solve")
	var logged atomic.Value
	s := newTestServer(t, Config{
		Logf: func(format string, args ...any) {
			logged.Store(fmt.Sprintf(format, args...))
		},
	})
	rec := post(s.Handler(), fig2, "", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", rec.Code, rec.Body.Bytes())
	}
	msg, _ := logged.Load().(string)
	if !strings.Contains(msg, "injected panic at server/solve") || !strings.Contains(msg, "pbqp 3 2") {
		t.Fatalf("panic log misses failpoint panic value or graph repro:\n%s", msg)
	}
	if c := s.Registry().Counter("solve_panics_total").Value(); c != 1 {
		t.Fatalf("solve_panics_total = %d, want 1", c)
	}
	// Disarmed, the same request solves normally.
	failpoint.Disable("server/solve")
	if rec := post(s.Handler(), fig2, "", nil); rec.Code != http.StatusOK {
		t.Fatalf("disarmed request: %d, want 200", rec.Code)
	}
}

func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		floor          time.Duration
		depth, workers int
		want           time.Duration
	}{
		{7 * time.Second, 0, 1, 7 * time.Second},  // empty queue: the floor
		{7 * time.Second, 2, 1, 21 * time.Second}, // two generations queued
		{7 * time.Second, 2, 4, 14 * time.Second}, // more workers drain faster
		{0, 0, 1, time.Second},                    // unset floor defaults to 1s
		{0, 3, 0, 4 * time.Second},                // workers clamped to 1
		{30 * time.Second, 100, 1, time.Minute},   // capped at one minute
	}
	for _, c := range cases {
		if got := RetryAfterHint(c.floor, c.depth, c.workers); got != c.want {
			t.Errorf("RetryAfterHint(%v, %d, %d) = %v, want %v",
				c.floor, c.depth, c.workers, got, c.want)
		}
	}
}

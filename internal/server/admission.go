package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// Admission control: a fixed worker pool behind a bounded queue.
//
// The state machine has three states:
//
//	accepting ──BeginDrain──▶ draining ──queue empty & jobs done──▶ stopped
//
// While accepting, submit either enqueues (queue has room) or fails
// fast with errQueueFull — the server load-sheds with 429 instead of
// queueing unboundedly, so memory and tail latency stay bounded no
// matter the offered load. While draining, submit fails with
// errDraining (503): everything already accepted still runs to
// completion, nothing new gets in. Stopped means the queue has been
// closed and every worker has exited.
var (
	// errQueueFull rejects a request because the bounded queue is at
	// capacity; the client should retry after backing off.
	errQueueFull = errors.New("server: queue full")
	// errDraining rejects a request because the server is shutting
	// down; the client should go elsewhere.
	errDraining = errors.New("server: draining")
)

// job is one unit of admitted work. The worker runs fn exactly once,
// converts a panic into the panicVal/stack fields, and closes done.
type job struct {
	fn       func()
	done     chan struct{}
	panicked bool
	panicVal string
	stack    []byte
}

// newJob wraps fn for submission.
func newJob(fn func()) *job {
	return &job{fn: fn, done: make(chan struct{})}
}

// admission is the worker pool. All state transitions take mu; job
// execution does not.
type admission struct {
	queue chan *job

	mu       sync.Mutex
	draining bool

	// accepted tracks admitted-but-unfinished jobs; drain waits on it.
	accepted sync.WaitGroup
	// workers tracks live worker goroutines.
	workers sync.WaitGroup
}

// newAdmission builds the pool and starts its workers.
func newAdmission(workers, queueDepth int) *admission {
	a := &admission{queue: make(chan *job, queueDepth)}
	a.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go a.worker()
	}
	return a
}

// submit tries to admit j. It never blocks: the outcome is nil
// (admitted), errQueueFull, or errDraining.
func (a *admission) submit(j *job) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return errDraining
	}
	// Add before the send: once j is on the queue a worker may run it
	// and fire accepted.Done() at any moment, and a Done that lands
	// before this Add would drive the counter negative and panic. The
	// Add cannot race drain's Wait either — drain flips draining under
	// mu first, and we re-checked it above while holding mu.
	a.accepted.Add(1)
	select {
	case a.queue <- j:
		return nil
	default:
		a.accepted.Done()
		return errQueueFull
	}
}

// depth is the current number of queued (not yet running) jobs.
func (a *admission) depth() int { return len(a.queue) }

// drain moves the pool to draining (new submits fail immediately),
// waits for every accepted job to finish — or for ctx to expire — then
// stops the workers. It returns nil on a complete drain and ctx's
// error when the deadline cut it short (workers are then abandoned
// mid-job; the process is exiting anyway).
func (a *admission) drain(ctx context.Context) error {
	a.mu.Lock()
	wasDraining := a.draining
	a.draining = true
	a.mu.Unlock()
	if wasDraining {
		return errors.New("server: drain already in progress")
	}

	finished := make(chan struct{})
	go func() {
		a.accepted.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		return ctx.Err()
	}
	// No accepted jobs remain and submit refuses new ones, so the
	// queue is empty and closing it cannot race a send (submit holds
	// mu and re-checks draining first).
	close(a.queue)
	a.workers.Wait()
	return nil
}

// isDraining reports whether BeginDrain/drain has been called.
func (a *admission) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// worker runs queued jobs until the queue is closed.
func (a *admission) worker() {
	defer a.workers.Done()
	for j := range a.queue {
		a.runJob(j)
	}
}

// runJob executes one job with panic isolation: a panicking handler
// takes down this request, never the process or its pool neighbours.
func (a *admission) runJob(j *job) {
	defer a.accepted.Done()
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			j.panicked = true
			j.panicVal = fmt.Sprint(r)
			j.stack = debug.Stack()
		}
	}()
	j.fn()
}

package server

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// Admission control: a fixed worker pool behind a bounded queue.
//
// The state machine has three states:
//
//	accepting ──Drain──▶ draining ──queue empty & jobs done──▶ stopped
//
// While accepting, Submit either enqueues (queue has room) or fails
// fast with ErrQueueFull — the server load-sheds with 429 instead of
// queueing unboundedly, so memory and tail latency stay bounded no
// matter the offered load. While draining, Submit fails with
// ErrDraining (503): everything already accepted still runs to
// completion, nothing new gets in. Stopped means the queue has been
// closed and every worker has exited.
//
// The type is exported (rather than private to the solve service)
// because the distributed-training coordinator (internal/dist) fronts
// its lease endpoints with the same pool: bounded handler concurrency,
// load shedding under claim storms, and a drain barrier for clean
// shutdown.
var (
	// ErrQueueFull rejects a request because the bounded queue is at
	// capacity; the client should retry after backing off.
	ErrQueueFull = errors.New("server: queue full")
	// ErrDraining rejects a request because the server is shutting
	// down; the client should go elsewhere.
	ErrDraining = errors.New("server: draining")
)

// Job is one unit of admitted work. The worker runs fn exactly once,
// converts a panic into the panicVal/stack fields, and closes done.
type Job struct {
	fn       func()
	done     chan struct{}
	panicked bool
	panicVal string
	stack    []byte
}

// NewJob wraps fn for submission.
func NewJob(fn func()) *Job {
	return &Job{fn: fn, done: make(chan struct{})}
}

// Done is closed once the job has run (or panicked). Until it is
// closed, the panic accessors must not be called.
func (j *Job) Done() <-chan struct{} { return j.done }

// Panicked reports whether the job's function panicked, with the
// recovered value and stack. Only valid after Done is closed.
func (j *Job) Panicked() (panicked bool, val string, stack []byte) {
	return j.panicked, j.panicVal, j.stack
}

// Admission is the worker pool. All state transitions take mu; job
// execution does not.
type Admission struct {
	queue chan *Job

	mu       sync.Mutex
	draining bool

	// accepted tracks admitted-but-unfinished jobs; Drain waits on it.
	accepted sync.WaitGroup
	// workers tracks live worker goroutines.
	workers sync.WaitGroup
}

// NewAdmission builds the pool and starts its workers.
func NewAdmission(workers, queueDepth int) *Admission {
	a := &Admission{queue: make(chan *Job, queueDepth)}
	a.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go a.worker()
	}
	return a
}

// Submit tries to admit j. It never blocks: the outcome is nil
// (admitted), ErrQueueFull, or ErrDraining.
func (a *Admission) Submit(j *Job) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.draining {
		return ErrDraining
	}
	// Add before the send: once j is on the queue a worker may run it
	// and fire accepted.Done() at any moment, and a Done that lands
	// before this Add would drive the counter negative and panic. The
	// Add cannot race Drain's Wait either — Drain flips draining under
	// mu first, and we re-checked it above while holding mu.
	a.accepted.Add(1)
	select {
	case a.queue <- j:
		return nil
	default:
		a.accepted.Done()
		return ErrQueueFull
	}
}

// Depth is the current number of queued (not yet running) jobs.
func (a *Admission) Depth() int { return len(a.queue) }

// Drain moves the pool to draining (new submits fail immediately),
// waits for every accepted job to finish — or for ctx to expire — then
// stops the workers. It returns nil on a complete drain and ctx's
// error when the deadline cut it short (workers are then abandoned
// mid-job; the process is exiting anyway).
func (a *Admission) Drain(ctx context.Context) error {
	a.mu.Lock()
	wasDraining := a.draining
	a.draining = true
	a.mu.Unlock()
	if wasDraining {
		return errors.New("server: drain already in progress")
	}

	finished := make(chan struct{})
	go func() {
		a.accepted.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		return ctx.Err()
	}
	// No accepted jobs remain and Submit refuses new ones, so the
	// queue is empty and closing it cannot race a send (Submit holds
	// mu and re-checks draining first).
	close(a.queue)
	a.workers.Wait()
	return nil
}

// IsDraining reports whether Drain has been called.
func (a *Admission) IsDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// worker runs queued jobs until the queue is closed.
func (a *Admission) worker() {
	defer a.workers.Done()
	for j := range a.queue {
		a.runJob(j)
	}
}

// runJob executes one job with panic isolation: a panicking handler
// takes down this request, never the process or its pool neighbours.
func (a *Admission) runJob(j *Job) {
	defer a.accepted.Done()
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			j.panicked = true
			j.panicVal = fmt.Sprint(r)
			j.stack = debug.Stack()
		}
	}()
	j.fn()
}

package server

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"pbqprl/internal/mcts"
	pbqpnet "pbqprl/internal/net"
)

// TestSharedBatcherBitIdenticalToClones exercises the cmd/pbqp-serve
// -batch wiring end to end: one server hands every rl-bt request its
// own clone of a trained-shape network, the other routes all requests
// through a single shared net.Batcher with BatchLeaves set. Concurrent
// requests against the batcher server must all succeed and return the
// clone server's exact selection and cost — batching is a throughput
// knob, never a results knob.
func TestSharedBatcherBitIdenticalToClones(t *testing.T) {
	base := pbqpnet.New(pbqpnet.Config{M: 2, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: 7})

	refSrv := newTestServer(t, Config{
		Workers:         2,
		DefaultChain:    []string{"rl-bt"},
		DefaultDeadline: time.Minute,
		K:               12,
		Evaluator:       func() mcts.Evaluator { return base.Clone() },
	})
	ref := decodeSolve(t, post(refSrv.Handler(), fig2, "", nil))
	if !ref.Result.Feasible {
		t.Fatalf("clone reference infeasible: %+v", ref.Result)
	}

	// Register the batcher's Close before newTestServer so the LIFO
	// cleanup order drains the server's workers (no evaluation can be
	// in flight) before the dispatcher stops.
	b := pbqpnet.NewBatcher(base, 8)
	t.Cleanup(b.Close)
	batSrv := newTestServer(t, Config{
		Workers:         4,
		DefaultChain:    []string{"rl-bt"},
		DefaultDeadline: time.Minute,
		K:               12,
		Evaluator:       func() mcts.Evaluator { return b },
		BatchLeaves:     8,
	})

	const n = 16
	resps := make([]SolveResponse, n)
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := post(batSrv.Handler(), fig2, "", nil)
			codes[i] = rec.Code
			if rec.Code == http.StatusOK {
				resps[i] = decodeSolve(t, rec)
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		got := resps[i]
		if !got.Result.Feasible {
			t.Fatalf("request %d infeasible: %+v", i, got.Result)
		}
		if got.Result.Cost != ref.Result.Cost {
			t.Fatalf("request %d cost %v != clone reference %v", i, got.Result.Cost, ref.Result.Cost)
		}
		if len(got.Result.Selection) != len(ref.Result.Selection) {
			t.Fatalf("request %d selection length %d != %d", i, len(got.Result.Selection), len(ref.Result.Selection))
		}
		for v := range got.Result.Selection {
			if got.Result.Selection[v] != ref.Result.Selection[v] {
				t.Fatalf("request %d selection %v != clone reference %v", i, got.Result.Selection, ref.Result.Selection)
			}
		}
	}
}

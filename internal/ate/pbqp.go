package ate

import (
	"fmt"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
)

// BuildPBQP derives the register-allocation PBQP graph of a program
// (Section II-B): one vertex per virtual register with m = Registers
// colors, all costs zero or infinity.
//
//   - Register classes: vreg v's vector is zero on Allowed[v] and
//     infinite elsewhere.
//   - Interference: vregs with overlapping live ranges must differ —
//     an infinite diagonal in the edge matrix.
//   - Major-cycle write-once: two vregs defined in the same major cycle
//     must differ.
//   - Major-cycle read-ahead-of-write: a vreg read at slot p and a vreg
//     defined at slot q > p of the same cycle must differ.
//   - Pairing: the two sources of an add must be a pairable register
//     pair — infinite entries at non-pairable combinations.
func BuildPBQP(p *Program) (*pbqp.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := p.Machine.Registers
	g := pbqp.New(p.NumVRegs, m)

	for v := 0; v < p.NumVRegs; v++ {
		vec := cost.NewVector(m)
		if len(p.Allowed) > 0 && p.Allowed[v] != nil {
			vec = cost.NewInfVector(m)
			for _, r := range p.Allowed[v] {
				if r < 0 || r >= m {
					return nil, fmt.Errorf("ate: vreg %d allows out-of-range register %d", v, r)
				}
				vec[r] = 0
			}
		}
		g.SetVertexCost(v, vec)
	}

	diag := cost.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		diag.Set(i, i, cost.Inf)
	}
	addDiff := func(u, v int) {
		if u != v {
			g.AddEdgeCost(u, v, diag)
		}
	}

	// interference
	start, end := p.LiveRanges()
	for u := 0; u < p.NumVRegs; u++ {
		for v := u + 1; v < p.NumVRegs; v++ {
			if start[u] <= end[v] && start[v] <= end[u] {
				addDiff(u, v)
			}
		}
	}

	// major-cycle constraints
	ways := p.Machine.Ways
	for c := 0; c*ways < len(p.Instrs); c++ {
		lo := c * ways
		hi := lo + ways
		if hi > len(p.Instrs) {
			hi = len(p.Instrs)
		}
		var defs []int
		type read struct{ vreg, slot int }
		var reads []read
		for i := lo; i < hi; i++ {
			in := p.Instrs[i]
			for _, u := range in.Uses {
				reads = append(reads, read{u, i})
			}
			if def := in.DefReg(); def >= 0 {
				for _, d := range defs {
					addDiff(d, def) // write-once
				}
				for _, r := range reads {
					if r.slot < i {
						addDiff(r.vreg, def) // read ahead of write
					}
				}
				defs = append(defs, def)
			}
		}
	}

	// pairing
	pair := cost.NewMatrix(m, m)
	for a := 0; a < m; a++ {
		for b := 0; b < m; b++ {
			if !p.Machine.Pairable(a, b) {
				pair.Set(a, b, cost.Inf)
			}
		}
	}
	for _, in := range p.Instrs {
		if in.Op == OpAdd && in.Uses[0] != in.Uses[1] {
			g.AddEdgeCost(in.Uses[0], in.Uses[1], pair)
		}
	}
	return g, nil
}

package ate

import (
	"fmt"

	"pbqprl/internal/pbqp"
)

// Benchmark is one product-level-style ATE program with its derived
// PBQP problem.
type Benchmark struct {
	Program *Program
	Graph   *pbqp.Graph
	// Hidden is the construction-time valid assignment (cost 0). It is
	// exported so experiments can verify solvability, but no solver
	// may consult it.
	Hidden pbqp.Selection
}

// suiteSpec mirrors the paper's reported spread: PBQP graphs with
// 28–241 vertices (PRO10 is the biggest at ~250), m = 13, and ~40 % of
// vertices with liberty ≤ 4. The seeds are instance selections, the
// synthetic analogue of the authors' ten specific product programs:
// each chosen instance is solvable by the liberty-enumeration baseline
// (as every real program was), while the original reduction solver
// succeeds only on PRO1 — the paper's 9-of-10 failure rate.
var suiteSpec = []struct {
	vregs int
	seed  int64
}{
	{28, 129}, {45, 151}, {60, 161}, {78, 180}, {95, 196},
	{115, 216}, {140, 243}, {170, 271}, {205, 306}, {250, 352},
}

// Suite generates the ten synthetic product-level programs PRO1–PRO10
// on the default machine. Generation is deterministic.
func Suite() []Benchmark {
	mach := DefaultMachine()
	out := make([]Benchmark, 0, len(suiteSpec))
	for i, spec := range suiteSpec {
		prog, hidden := Generate(mach, GenConfig{
			Name:      fmt.Sprintf("PRO%d", i+1),
			NumVRegs:  spec.vregs,
			PairRatio: 0.30,
			HardRatio: 0.40,
			MaxLive:   8,
			Seed:      spec.seed,
		})
		g, err := BuildPBQP(prog)
		if err != nil {
			//pbqpvet:ignore panicfree built-in suite programs are valid by construction; failure is a code bug caught by the suite tests
			panic("ate: suite program invalid: " + err.Error())
		}
		out = append(out, Benchmark{Program: prog, Graph: g, Hidden: hidden})
	}
	return out
}

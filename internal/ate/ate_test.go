package ate

import (
	"strings"
	"testing"

	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/scholz"
)

func TestDefaultMachineValid(t *testing.T) {
	m := DefaultMachine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Registers != 13 || m.Ways != 8 {
		t.Errorf("machine shape: %d regs, %d ways", m.Registers, m.Ways)
	}
	// pairing irregularity: same-bank pairs work, cross-bank mostly not
	if !m.Pairable(0, 1) || !m.Pairable(6, 7) {
		t.Error("same-bank pairing broken")
	}
	if m.Pairable(4, 10) {
		t.Error("unexpected cross-bank pair (4,10)")
	}
	if !m.Pairable(0, 6) {
		t.Error("cross-bank exception (0,6) missing")
	}
	if !m.Pairable(12, 2) || m.Pairable(12, 3) {
		t.Error("carry pairing wrong")
	}
}

func TestGenerateProgramValid(t *testing.T) {
	mach := DefaultMachine()
	for seed := int64(0); seed < 10; seed++ {
		prog, hidden := Generate(mach, GenConfig{
			Name: "t", NumVRegs: 40, PairRatio: 0.4, HardRatio: 0.4, Seed: seed,
		})
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if prog.NumVRegs != 40 || len(hidden) != 40 {
			t.Fatalf("seed %d: wrong sizes", seed)
		}
	}
}

func TestHiddenAssignmentIsAlwaysValid(t *testing.T) {
	mach := DefaultMachine()
	for seed := int64(20); seed < 40; seed++ {
		prog, hidden := Generate(mach, GenConfig{
			Name: "t", NumVRegs: 60, PairRatio: 0.35, HardRatio: 0.4, Seed: seed,
		})
		g, err := BuildPBQP(prog)
		if err != nil {
			t.Fatal(err)
		}
		if c := g.TotalCost(hidden); c != 0 {
			t.Fatalf("seed %d: hidden assignment costs %v, want 0", seed, c)
		}
	}
}

func TestPBQPCostsAreZeroOrInf(t *testing.T) {
	prog, _ := Generate(DefaultMachine(), GenConfig{Name: "t", NumVRegs: 30, Seed: 1})
	g, err := BuildPBQP(prog)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		for _, c := range g.VertexCost(v) {
			if c != 0 && !c.IsInf() {
				t.Fatalf("vreg %d: non-zero finite cost %v", v, c)
			}
		}
	}
	for _, e := range g.Edges() {
		for _, c := range e.M.Data {
			if c != 0 && !c.IsInf() {
				t.Fatalf("edge (%d,%d): non-zero finite cost %v", e.U, e.V, c)
			}
		}
	}
}

func TestInterferenceEncoded(t *testing.T) {
	mach := DefaultMachine()
	p := &Program{
		Name: "mini", Machine: mach, NumVRegs: 2,
		Instrs: []Instr{
			{Op: OpSet, Def: 0},
			{Op: OpSet, Def: 1},
			{Op: OpEmit, Uses: []int{0, 1}},
		},
	}
	g, err := BuildPBQP(p)
	if err != nil {
		t.Fatal(err)
	}
	e := g.EdgeCost(0, 1)
	if e == nil {
		t.Fatal("no interference edge")
	}
	for i := 0; i < mach.Registers; i++ {
		if !e.At(i, i).IsInf() {
			t.Fatalf("diagonal (%d,%d) not infinite", i, i)
		}
	}
	if e.At(0, 1).IsInf() {
		t.Error("off-diagonal infinite for pure interference")
	}
}

func TestPairingEncoded(t *testing.T) {
	mach := DefaultMachine()
	p := &Program{
		Name: "mini", Machine: mach, NumVRegs: 3,
		Instrs: []Instr{
			{Op: OpSet, Def: 0},
			{Op: OpSet, Def: 1},
			{Op: OpAdd, Def: 2, Uses: []int{0, 1}},
		},
	}
	g, err := BuildPBQP(p)
	if err != nil {
		t.Fatal(err)
	}
	e := g.EdgeCost(0, 1)
	if e == nil {
		t.Fatal("no pairing edge")
	}
	// (4,10) is not pairable on the default machine
	if !e.At(4, 10).IsInf() {
		t.Error("non-pairable combination allowed")
	}
	// (0,1) is pairable and non-interfering? v0 and v1 are both live at
	// the add, so the diagonal is also infinite; (0,1) off-diagonal
	// pairable must stay finite.
	if e.At(0, 1).IsInf() {
		t.Error("pairable combination forbidden")
	}
}

func TestMajorCycleWriteOnce(t *testing.T) {
	mach := DefaultMachine()
	// two defs in the same cycle, non-overlapping live ranges
	p := &Program{
		Name: "mini", Machine: mach, NumVRegs: 2,
		Instrs: []Instr{
			{Op: OpSet, Def: 0},
			{Op: OpEmit, Uses: []int{0}},
			{Op: OpSet, Def: 1}, // same cycle (ways=8): write-once applies
			{Op: OpEmit, Uses: []int{1}},
		},
	}
	g, err := BuildPBQP(p)
	if err != nil {
		t.Fatal(err)
	}
	e := g.EdgeCost(0, 1)
	if e == nil || !e.At(3, 3).IsInf() {
		t.Error("write-once constraint missing")
	}
}

func TestMajorCycleReadAheadOfWrite(t *testing.T) {
	mach := &Machine{Name: "w2", Registers: 4, Ways: 2}
	mach.pairable = make([][]bool, 4)
	for i := range mach.pairable {
		mach.pairable[i] = make([]bool, 4)
	}
	// cycle 0: def v0, def v1. cycle 1: read v0 (slot 2), def v2 (slot 3).
	p := &Program{
		Name: "mini", Machine: mach, NumVRegs: 3,
		Instrs: []Instr{
			{Op: OpSet, Def: 0},
			{Op: OpSet, Def: 1},
			{Op: OpEmit, Uses: []int{0}},
			{Op: OpMove, Def: 2, Uses: []int{1}},
		},
	}
	g, err := BuildPBQP(p)
	if err != nil {
		t.Fatal(err)
	}
	// v0 read at slot 2, v2 defined at slot 3 (same cycle 1): conflict
	e := g.EdgeCost(0, 2)
	if e == nil || !e.At(1, 1).IsInf() {
		t.Error("read-ahead-of-write constraint missing")
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	mach := DefaultMachine()
	bad := []*Program{
		{Name: "use-before-def", Machine: mach, NumVRegs: 1,
			Instrs: []Instr{{Op: OpEmit, Uses: []int{0}}, {Op: OpSet, Def: 0}}},
		{Name: "redefine", Machine: mach, NumVRegs: 1,
			Instrs: []Instr{{Op: OpSet, Def: 0}, {Op: OpSet, Def: 0}}},
		{Name: "never-defined", Machine: mach, NumVRegs: 2,
			Instrs: []Instr{{Op: OpSet, Def: 0}}},
		{Name: "out-of-range-use", Machine: mach, NumVRegs: 1,
			Instrs: []Instr{{Op: OpSet, Def: 0}, {Op: OpEmit, Uses: []int{5}}}},
		{Name: "bad-add", Machine: mach, NumVRegs: 2,
			Instrs: []Instr{{Op: OpSet, Def: 0}, {Op: OpAdd, Def: 1, Uses: []int{0}}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad program", p.Name)
		}
		if _, err := BuildPBQP(p); err == nil {
			t.Errorf("%s: BuildPBQP accepted a bad program", p.Name)
		}
	}
}

func TestProgramString(t *testing.T) {
	prog, _ := Generate(DefaultMachine(), GenConfig{Name: "demo", NumVRegs: 10, Seed: 3})
	s := prog.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "major cycle") {
		t.Errorf("listing missing structure:\n%s", s)
	}
}

func TestSuiteShape(t *testing.T) {
	suite := Suite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d programs", len(suite))
	}
	prev := 0
	totalHard, totalVerts := 0, 0
	for i, b := range suite {
		n := b.Graph.NumVertices()
		if n <= prev {
			t.Errorf("PRO%d not larger than predecessor (%d <= %d)", i+1, n, prev)
		}
		prev = n
		if b.Graph.M() != 13 {
			t.Errorf("PRO%d has m = %d", i+1, b.Graph.M())
		}
		if c := b.Graph.TotalCost(b.Hidden); c != 0 {
			t.Errorf("PRO%d hidden assignment costs %v", i+1, c)
		}
		for v := 0; v < n; v++ {
			totalVerts++
			if b.Graph.Liberty(v) <= 4 {
				totalHard++
			}
		}
	}
	if first, last := suite[0].Graph.NumVertices(), suite[9].Graph.NumVertices(); first != 28 || last != 250 {
		t.Errorf("size range [%d, %d], want [28, 250]", first, last)
	}
	ratio := float64(totalHard) / float64(totalVerts)
	if ratio < 0.3 || ratio > 0.5 {
		t.Errorf("hard-vertex ratio %.2f, want near 0.4", ratio)
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if a[i].Graph.String() != b[i].Graph.String() {
			t.Fatalf("PRO%d differs between generations", i+1)
		}
	}
}

// TestSolverBehaviourOnSuite reproduces the Section V-B baseline claims
// in shape: the original Scholz solver fails on most programs, while
// liberty enumeration solves all of them.
func TestSolverBehaviourOnSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("suite solving is slow")
	}
	suite := Suite()
	scholzFails := 0
	for i, b := range suite {
		if !(scholz.Solver{}).Solve(b.Graph).Feasible {
			scholzFails++
		}
		res := (liberty.Solver{MaxStates: 50_000_000}).Solve(b.Graph)
		if !res.Feasible {
			t.Errorf("liberty solver failed PRO%d", i+1)
		} else if res.Cost != 0 {
			t.Errorf("liberty solver cost %v on PRO%d", res.Cost, i+1)
		}
	}
	if scholzFails < 5 {
		t.Errorf("scholz failed only %d/10; paper shape wants most to fail", scholzFails)
	}
	t.Logf("scholz failed %d/10 programs", scholzFails)
}

func TestLiveRanges(t *testing.T) {
	mach := DefaultMachine()
	p := &Program{
		Name: "lr", Machine: mach, NumVRegs: 2,
		Instrs: []Instr{
			{Op: OpSet, Def: 0},
			{Op: OpSet, Def: 1},
			{Op: OpEmit, Uses: []int{0}},
		},
	}
	start, end := p.LiveRanges()
	if start[0] != 0 || end[0] != 2 {
		t.Errorf("v0 range [%d,%d]", start[0], end[0])
	}
	if start[1] != 1 || end[1] != 1 {
		t.Errorf("v1 range [%d,%d]", start[1], end[1])
	}
}

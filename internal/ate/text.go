package ate

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The ATE assembly text format is line oriented:
//
//	.machine ALPG-13        ; a registered machine name
//	.vregs 32
//	set    v0
//	mov    v1, v0
//	add    v2, v0, v1       ; sources must be a pairable register pair
//	emit   v0, v2
//	nop
//	.allowed v0 r3 r5 r12   ; optional register-class restriction
//
// ';' starts a comment. Machines resolve through a registry; the two
// built-in models are "ALPG-13" (DefaultMachine) and "ALPG-13C"
// (CompactMachine).

// Machines returns the built-in machine registry, keyed by name.
func Machines() map[string]*Machine {
	d, c := DefaultMachine(), CompactMachine()
	return map[string]*Machine{d.Name: d, c.Name: c}
}

// Marshal writes prog in the ATE assembly text format.
func Marshal(w io.Writer, prog *Program) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; %s\n", prog.Name)
	fmt.Fprintf(bw, ".machine %s\n", prog.Machine.Name)
	fmt.Fprintf(bw, ".vregs %d\n", prog.NumVRegs)
	for _, in := range prog.Instrs {
		ops := make([]string, 0, 3)
		if d := in.DefReg(); d >= 0 {
			ops = append(ops, fmt.Sprintf("v%d", d))
		}
		for _, u := range in.Uses {
			ops = append(ops, fmt.Sprintf("v%d", u))
		}
		if len(ops) == 0 {
			fmt.Fprintf(bw, "%s\n", in.Op)
		} else {
			fmt.Fprintf(bw, "%-5s %s\n", in.Op, strings.Join(ops, ", "))
		}
	}
	for v, allowed := range prog.Allowed {
		if allowed == nil {
			continue
		}
		fmt.Fprintf(bw, ".allowed v%d", v)
		for _, r := range allowed {
			fmt.Fprintf(bw, " r%d", r)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Unmarshal parses a program in the ATE assembly text format, resolving
// the machine through the built-in registry (or `machines` when
// non-nil). The returned program is validated.
func Unmarshal(r io.Reader, machines map[string]*Machine) (*Program, error) {
	if machines == nil {
		machines = Machines()
	}
	prog := &Program{Name: "unnamed"}
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, ';'); i >= 0 {
			if lineno == 1 && strings.TrimSpace(line[:i]) == "" {
				if name := strings.TrimSpace(line[i+1:]); name != "" {
					prog.Name = name
				}
			}
			line = line[:i]
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case ".machine":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ate: line %d: .machine wants a name", lineno)
			}
			m, ok := machines[fields[1]]
			if !ok {
				return nil, fmt.Errorf("ate: line %d: unknown machine %q", lineno, fields[1])
			}
			prog.Machine = m
		case ".vregs":
			if len(fields) != 2 {
				return nil, fmt.Errorf("ate: line %d: .vregs wants a count", lineno)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("ate: line %d: bad vreg count", lineno)
			}
			prog.NumVRegs = n
		case ".allowed":
			if prog.NumVRegs == 0 {
				return nil, fmt.Errorf("ate: line %d: .allowed before .vregs", lineno)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("ate: line %d: .allowed wants a vreg and registers", lineno)
			}
			v, err := parseOperand(fields[1], 'v')
			if err != nil || v >= prog.NumVRegs {
				return nil, fmt.Errorf("ate: line %d: bad vreg %q", lineno, fields[1])
			}
			if prog.Allowed == nil {
				prog.Allowed = make([][]int, prog.NumVRegs)
			}
			var regs []int
			for _, f := range fields[2:] {
				r, err := parseOperand(f, 'r')
				if err != nil {
					return nil, fmt.Errorf("ate: line %d: bad register %q", lineno, f)
				}
				regs = append(regs, r)
			}
			prog.Allowed[v] = regs
		default:
			op, ok := parseOpcode(fields[0])
			if !ok {
				return nil, fmt.Errorf("ate: line %d: unknown opcode %q", lineno, fields[0])
			}
			var operands []int
			for _, f := range fields[1:] {
				v, err := parseOperand(f, 'v')
				if err != nil {
					return nil, fmt.Errorf("ate: line %d: bad operand %q", lineno, f)
				}
				operands = append(operands, v)
			}
			in, err := buildInstr(op, operands)
			if err != nil {
				return nil, fmt.Errorf("ate: line %d: %v", lineno, err)
			}
			prog.Instrs = append(prog.Instrs, in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if prog.Machine == nil {
		return nil, fmt.Errorf("ate: missing .machine directive")
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

func parseOpcode(s string) (Opcode, bool) {
	switch s {
	case "set":
		return OpSet, true
	case "mov":
		return OpMove, true
	case "add":
		return OpAdd, true
	case "emit":
		return OpEmit, true
	case "nop":
		return OpNop, true
	default:
		return 0, false
	}
}

func buildInstr(op Opcode, operands []int) (Instr, error) {
	want := map[Opcode][2]int{ // {defs, uses}
		OpSet: {1, 0}, OpMove: {1, 1}, OpAdd: {1, 2}, OpNop: {0, 0},
	}
	if op == OpEmit {
		if len(operands) == 0 {
			return Instr{}, fmt.Errorf("emit wants at least one operand")
		}
		return Instr{Op: OpEmit, Def: -1, Uses: operands}, nil
	}
	w := want[op]
	if len(operands) != w[0]+w[1] {
		return Instr{}, fmt.Errorf("%s wants %d operands, got %d", op, w[0]+w[1], len(operands))
	}
	in := Instr{Op: op, Def: -1}
	if w[0] == 1 {
		in.Def = operands[0]
		in.Uses = operands[1:]
	} else {
		in.Uses = operands
	}
	return in, nil
}

func parseOperand(s string, prefix byte) (int, error) {
	if len(s) < 2 || s[0] != prefix {
		return 0, fmt.Errorf("want %c<number>", prefix)
	}
	return strconv.Atoi(s[1:])
}

// Package ate models automated test equipment (ATE) for DRAM chips: the
// ALPG processor units, their irregularly structured registers, and the
// translation-time register re-allocation problem of Section II-B.
//
// An ATE executes test-pattern programs that emit a bit vector to the
// pins of the chip under test every clock. Registers are irregular —
// only certain register pairs can be combined by arithmetic
// instructions — and an ATE with W interleaved ALPGs executes bundles of
// W instructions as one major cycle, within which a register may be
// written at most once and must not be read ahead of a write. There is
// no data memory, so register allocation must succeed without spills:
// the derived PBQP costs are all zero or infinity.
//
// Real product-level test programs are proprietary; this package
// generates synthetic programs with the statistics the paper reports
// (28–241 vertices, m = 13, ~40 % of vertices with liberty ≤ 4) that
// are guaranteed allocable by construction, exactly like a real program
// that is known to run on its source ATE.
package ate

import "fmt"

// Machine describes one ATE model's register architecture.
type Machine struct {
	// Name identifies the machine in reports.
	Name string
	// Registers is the number of physical registers (the paper's ATE
	// evaluation targets m = 13).
	Registers int
	// Ways is the interleaving factor: Ways consecutive instructions
	// form one major cycle.
	Ways int
	// pairable[a][b] reports whether registers a and b may be the two
	// operands of a pairing (arithmetic) instruction.
	pairable [][]bool
}

// Pairable reports whether physical registers a and b can be combined
// by a pairing instruction.
func (m *Machine) Pairable(a, b int) bool { return m.pairable[a][b] }

// DefaultMachine returns the 13-register, 8-way reference machine used
// throughout the experiments. Its pairing structure is irregular in the
// way ATE manuals describe: registers are grouped into two banks that
// pair internally, a carry register that pairs only with even registers,
// and a few cross-bank exceptions.
func DefaultMachine() *Machine {
	const regs = 13
	m := &Machine{Name: "ALPG-13", Registers: regs, Ways: 8}
	m.pairable = make([][]bool, regs)
	for a := 0; a < regs; a++ {
		m.pairable[a] = make([]bool, regs)
	}
	set := func(a, b int) {
		m.pairable[a][b] = true
		m.pairable[b][a] = true
	}
	// bank A: r0-r5 pair among themselves
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			set(a, b)
		}
	}
	// bank B: r6-r11 pair among themselves
	for a := 6; a < 12; a++ {
		for b := a + 1; b < 12; b++ {
			set(a, b)
		}
	}
	// r12 (carry) pairs with even registers only
	for a := 0; a < 12; a += 2 {
		set(12, a)
	}
	// cross-bank exceptions: rX pairs with rX+6 for X in 0..3
	for a := 0; a < 4; a++ {
		set(a, a+6)
	}
	return m
}

// Validate checks structural invariants (symmetric pairing table,
// positive sizes). It is intended for tests.
func (m *Machine) Validate() error {
	if m.Registers <= 0 || m.Ways <= 0 {
		return fmt.Errorf("ate: machine %q has non-positive sizes", m.Name)
	}
	if len(m.pairable) != m.Registers {
		return fmt.Errorf("ate: pairing table has %d rows, want %d", len(m.pairable), m.Registers)
	}
	for a := range m.pairable {
		if len(m.pairable[a]) != m.Registers {
			return fmt.Errorf("ate: pairing row %d has %d entries", a, len(m.pairable[a]))
		}
		for b := range m.pairable[a] {
			if m.pairable[a][b] != m.pairable[b][a] {
				return fmt.Errorf("ate: pairing table asymmetric at (%d,%d)", a, b)
			}
		}
	}
	return nil
}

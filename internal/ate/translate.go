package ate

import (
	"fmt"

	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
)

// CompactMachine returns a second ATE model with a different register
// architecture: 13 registers in three banks of four plus a carry
// register, 4-way interleaving, and no cross-bank pairing exceptions.
// Translating a program from the default machine to this one is the
// harder direction — fewer pairable combinations and shorter major
// cycles create more constraints for the same instruction stream.
func CompactMachine() *Machine {
	const regs = 13
	m := &Machine{Name: "ALPG-13C", Registers: regs, Ways: 4}
	m.pairable = make([][]bool, regs)
	for a := 0; a < regs; a++ {
		m.pairable[a] = make([]bool, regs)
	}
	set := func(a, b int) {
		m.pairable[a][b] = true
		m.pairable[b][a] = true
	}
	for bank := 0; bank < 3; bank++ {
		lo := bank * 4
		for a := lo; a < lo+4; a++ {
			for b := a + 1; b < lo+4; b++ {
				set(a, b)
			}
		}
	}
	for a := 0; a < 12; a += 3 {
		set(12, a) // carry pairs with every third register
	}
	return m
}

// Translation is the result of re-targeting a test-pattern program.
type Translation struct {
	// Program is the re-targeted program (same instruction stream,
	// new machine).
	Program *Program
	// Assignment maps each virtual register to a physical register of
	// the target machine.
	Assignment pbqp.Selection
	// Result carries the solver statistics.
	Result solve.Result
}

// Translate re-targets prog to the target machine: it rebuilds the
// register-allocation PBQP under the target's pairing and major-cycle
// rules and solves it with the given solver. This is the Section II-B
// workflow — DRAM chipmakers port a verified test program to a
// different vendor's ATE, and a failed allocation means the translation
// (and the testing plan) fails outright.
//
// Register-class restrictions (Allowed) carry over only when the
// target has at least as many registers; otherwise out-of-range
// registers are dropped from each class, and a class that becomes
// empty is an error.
func Translate(prog *Program, target *Machine, solver solve.Solver) (*Translation, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	re := &Program{
		Name:     prog.Name + "@" + target.Name,
		Machine:  target,
		Instrs:   prog.Instrs,
		NumVRegs: prog.NumVRegs,
	}
	if prog.Allowed != nil {
		re.Allowed = make([][]int, prog.NumVRegs)
		for v, allowed := range prog.Allowed {
			if allowed == nil {
				continue
			}
			var kept []int
			for _, r := range allowed {
				if r < target.Registers {
					kept = append(kept, r)
				}
			}
			if len(kept) == 0 {
				return nil, fmt.Errorf("ate: vreg %d has no registers on %s", v, target.Name)
			}
			re.Allowed[v] = kept
		}
	}
	g, err := BuildPBQP(re)
	if err != nil {
		return nil, err
	}
	res := solver.Solve(g)
	t := &Translation{Program: re, Result: res}
	if res.Feasible {
		t.Assignment = res.Selection
	}
	return t, nil
}

package ate

import (
	"strings"
	"testing"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	prog, _ := Generate(DefaultMachine(), GenConfig{
		Name: "roundtrip", NumVRegs: 25, PairRatio: 0.3, HardRatio: 0.4,
		MaxLive: 8, Seed: 77,
	})
	var sb strings.Builder
	if err := Marshal(&sb, prog); err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(strings.NewReader(sb.String()), nil)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if back.Name != "roundtrip" || back.NumVRegs != prog.NumVRegs {
		t.Errorf("header lost: %q %d", back.Name, back.NumVRegs)
	}
	if len(back.Instrs) != len(prog.Instrs) {
		t.Fatalf("instrs %d, want %d", len(back.Instrs), len(prog.Instrs))
	}
	for i, in := range prog.Instrs {
		got := back.Instrs[i]
		if got.Op != in.Op || got.DefReg() != in.DefReg() || len(got.Uses) != len(in.Uses) {
			t.Fatalf("instr %d differs: %+v vs %+v", i, got, in)
		}
	}
	// the derived PBQP problems must be identical
	g1, err := BuildPBQP(prog)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildPBQP(back)
	if err != nil {
		t.Fatal(err)
	}
	if g1.String() != g2.String() {
		t.Error("round trip changed the derived PBQP problem")
	}
}

func TestUnmarshalBasics(t *testing.T) {
	src := `; demo
.machine ALPG-13
.vregs 3
set   v0
mov   v1, v0
add   v2, v0, v1
emit  v2
.allowed v2 r0 r4
`
	prog, err := Unmarshal(strings.NewReader(src), nil)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "demo" || prog.NumVRegs != 3 {
		t.Errorf("header: %q %d", prog.Name, prog.NumVRegs)
	}
	if prog.Instrs[2].Op != OpAdd || prog.Instrs[2].Uses[1] != 1 {
		t.Errorf("add parsed wrong: %+v", prog.Instrs[2])
	}
	if len(prog.Allowed[2]) != 2 || prog.Allowed[2][1] != 4 {
		t.Errorf("allowed parsed wrong: %v", prog.Allowed[2])
	}
	if prog.Machine.Name != "ALPG-13" {
		t.Error("machine not resolved")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []string{
		".vregs 2\nset v0\nset v1",                           // no machine
		".machine NOPE\n.vregs 1\nset v0",                    // unknown machine
		".machine ALPG-13\n.vregs x",                         // bad count
		".machine ALPG-13\n.vregs 1\nfrob v0",                // unknown opcode
		".machine ALPG-13\n.vregs 1\nmov v0",                 // arity
		".machine ALPG-13\n.vregs 1\nset v0\nemit",           // emit needs operands
		".machine ALPG-13\n.vregs 1\nset q0",                 // bad operand
		".machine ALPG-13\n.vregs 1\n.allowed v5 r0",         // vreg range
		".machine ALPG-13\n.allowed v0 r0",                   // allowed before vregs
		".machine ALPG-13\n.vregs 2\nemit v0\nset v0",        // use before def
		".machine ALPG-13\n.vregs 1\nset v0\n.allowed v0 q1", // bad register
	}
	for _, src := range cases {
		if _, err := Unmarshal(strings.NewReader(src), nil); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestMachinesRegistry(t *testing.T) {
	ms := Machines()
	if ms["ALPG-13"] == nil || ms["ALPG-13C"] == nil {
		t.Error("built-in machines missing")
	}
}

package ate

import (
	"math/rand"

	"pbqprl/internal/pbqp"
)

// GenConfig parameterizes the synthetic test-pattern generator.
type GenConfig struct {
	// Name labels the program.
	Name string
	// NumVRegs is the number of virtual registers (= PBQP vertices).
	NumVRegs int
	// PairRatio is the fraction of defining instructions that are
	// pairing adds.
	PairRatio float64
	// HardRatio is the fraction of vregs whose register class is
	// restricted to at most 4 registers (the paper reports ~40 % of
	// ATE vertices with liberty ≤ 4).
	HardRatio float64
	// MaxLive bounds simultaneous live vregs (register pressure);
	// values near the register count make dense interference. Zero
	// means Registers - 3.
	MaxLive int
	// Seed drives the generator.
	Seed int64
}

// Generate builds a synthetic straight-line ATE program for mach,
// together with the hidden register assignment it was built around.
// The hidden assignment satisfies every constraint the program implies,
// so the derived PBQP graph always has a zero-cost solution — the
// synthetic analogue of a test program known to run on its source ATE.
func Generate(mach *Machine, cfg GenConfig) (*Program, pbqp.Selection) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxLive := cfg.MaxLive
	if maxLive == 0 {
		maxLive = mach.Registers - 3
	}
	if maxLive > mach.Registers {
		maxLive = mach.Registers
	}
	p := &Program{Name: cfg.Name, Machine: mach, NumVRegs: cfg.NumVRegs}
	hidden := make(pbqp.Selection, cfg.NumVRegs)

	type liveVReg struct {
		vreg, reg int
	}
	var live []liveVReg
	defined := 0
	slot := 0
	var writtenCycle, readCycle map[int]bool // physical regs this cycle
	resetCycle := func() {
		writtenCycle = make(map[int]bool)
		readCycle = make(map[int]bool)
	}
	resetCycle()

	liveRegs := func() map[int]bool {
		s := make(map[int]bool, len(live))
		for _, lv := range live {
			s[lv.reg] = true
		}
		return s
	}
	emit := func(in Instr) {
		for _, u := range in.Uses {
			readCycle[hidden[u]] = true
		}
		if d := in.DefReg(); d >= 0 {
			writtenCycle[hidden[d]] = true
		}
		p.Instrs = append(p.Instrs, in)
		slot++
		if slot%mach.Ways == 0 {
			resetCycle()
		}
	}
	// freeReg picks a hidden register for a new def that violates no
	// constraint the PBQP will encode; -1 if none exists right now.
	freeReg := func() int {
		inUse := liveRegs()
		var candidates []int
		for r := 0; r < mach.Registers; r++ {
			if !inUse[r] && !writtenCycle[r] && !readCycle[r] {
				candidates = append(candidates, r)
			}
		}
		if len(candidates) == 0 {
			return -1
		}
		return candidates[rng.Intn(len(candidates))]
	}
	kill := func(prob float64) {
		var kept []liveVReg
		for _, lv := range live {
			if rng.Float64() < prob && len(live) > 1 {
				continue
			}
			kept = append(kept, lv)
		}
		live = kept
	}
	pairableLive := func() (int, int, bool) {
		perm := rng.Perm(len(live))
		for _, i := range perm {
			for _, j := range perm {
				if i != j && mach.Pairable(live[i].reg, live[j].reg) {
					return live[i].vreg, live[j].vreg, true
				}
			}
		}
		return 0, 0, false
	}

	for defined < cfg.NumVRegs {
		wantDef := len(live) < maxLive
		r := -1
		if wantDef {
			r = freeReg()
		}
		switch {
		case wantDef && r >= 0:
			v := defined
			hidden[v] = r
			in := Instr{Op: OpSet, Def: v}
			if len(live) > 0 && rng.Float64() < cfg.PairRatio {
				if a, b, ok := pairableLive(); ok && a != b {
					in = Instr{Op: OpAdd, Def: v, Uses: []int{a, b}}
				}
			} else if len(live) > 0 && rng.Float64() < 0.4 {
				src := live[rng.Intn(len(live))].vreg
				in = Instr{Op: OpMove, Def: v, Uses: []int{src}}
			}
			emit(in)
			live = append(live, liveVReg{vreg: v, reg: r})
			defined++
			kill(0.10)
		case len(live) > 0:
			// relieve pressure: read some registers, kill a few
			n := 1 + rng.Intn(min(3, len(live)))
			uses := make([]int, 0, n)
			for _, i := range rng.Perm(len(live))[:n] {
				uses = append(uses, live[i].vreg)
			}
			emit(Instr{Op: OpEmit, Uses: uses})
			kill(0.5)
		default:
			emit(Instr{Op: OpNop})
		}
	}
	// tail: read whatever is still live so last uses are realistic,
	// draining the live set in chunks
	for len(live) > 0 {
		n := 1 + rng.Intn(min(3, len(live)))
		uses := make([]int, 0, n)
		for _, lv := range live[:n] {
			uses = append(uses, lv.vreg)
		}
		emit(Instr{Op: OpEmit, Uses: uses})
		live = live[n:]
	}

	// Register classes: restrict allowed sets around the hidden regs.
	// Hard (low-liberty) vregs form a contiguous kernel phase of the
	// program — the pressure-heavy inner pattern where the restricted
	// special-purpose registers live. Real test patterns have this
	// shape, and it is what keeps the liberty solver's sorted
	// enumeration order temporally local (conflicts between hard vregs
	// are discovered chronologically rather than arbitrarily late).
	p.Allowed = make([][]int, cfg.NumVRegs)
	kernelLen := int(cfg.HardRatio * float64(cfg.NumVRegs))
	kernelStart := 0
	if kernelLen < cfg.NumVRegs {
		kernelStart = rng.Intn(cfg.NumVRegs - kernelLen)
	}
	easyLo := 5 // easy vregs keep liberty in [5, registers] (clamped)
	if easyLo > mach.Registers {
		easyLo = mach.Registers
	}
	hardHi := 4
	if hardHi > mach.Registers {
		hardHi = mach.Registers
	}
	for v := 0; v < cfg.NumVRegs; v++ {
		liberty := easyLo + rng.Intn(mach.Registers-easyLo+1)
		if v >= kernelStart && v < kernelStart+kernelLen {
			liberty = 1 + rng.Intn(hardHi)
		}
		allowed := []int{hidden[v]}
		for _, r := range rng.Perm(mach.Registers) {
			if len(allowed) >= liberty {
				break
			}
			if r != hidden[v] {
				allowed = append(allowed, r)
			}
		}
		p.Allowed[v] = allowed
	}
	return p, hidden
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package ate

import (
	"fmt"
	"strings"
)

// Opcode is an ALPG instruction kind. The synthetic instruction set
// covers the allocation-relevant behaviours: defining a virtual
// register, reading registers, and pairing two registers in one
// arithmetic operation.
type Opcode int

const (
	// OpSet defines a virtual register from an immediate.
	OpSet Opcode = iota
	// OpMove defines a virtual register from another one.
	OpMove
	// OpAdd defines a virtual register as the sum of a *pairable*
	// register pair: its two source registers must satisfy the
	// machine's pairing table.
	OpAdd
	// OpEmit reads registers to drive the pin electronics (no def).
	OpEmit
	// OpNop is a filler slot in a major cycle.
	OpNop
)

// String names the opcode in listings.
func (o Opcode) String() string {
	switch o {
	case OpSet:
		return "set"
	case OpMove:
		return "mov"
	case OpAdd:
		return "add"
	case OpEmit:
		return "emit"
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Instr is one ALPG instruction over virtual registers.
type Instr struct {
	Op Opcode
	// Def is the virtual register written; it is only meaningful for
	// defining opcodes (set/mov/add) — use DefReg.
	Def int
	// Uses are the virtual registers read. For OpAdd, Uses[0] and
	// Uses[1] must be allocated to a pairable physical register pair.
	Uses []int
}

// DefReg returns the virtual register this instruction defines, or -1
// for non-defining opcodes (emit, nop) regardless of the Def field.
func (in Instr) DefReg() int {
	switch in.Op {
	case OpSet, OpMove, OpAdd:
		return in.Def
	default:
		return -1
	}
}

// Program is a straight-line ALPG test-pattern program (real ATE
// programs are single functions of bundled instruction slots).
type Program struct {
	// Name identifies the program (PRO1..PRO10 in the experiments).
	Name string
	// Machine is the target ATE model.
	Machine *Machine
	// Instrs is the instruction sequence; instruction i executes in
	// major cycle i / Machine.Ways, slot i % Machine.Ways.
	Instrs []Instr
	// NumVRegs is the number of virtual registers; they are numbered
	// 0..NumVRegs-1 and become the PBQP vertices.
	NumVRegs int
	// Allowed[v] is the set of physical registers vreg v may use
	// (register-class constraints); nil means all registers.
	Allowed [][]int
}

// String renders an assembly-style listing with major-cycle markers.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; %s: %d vregs, %d instrs, machine %s\n", p.Name, p.NumVRegs, len(p.Instrs), p.Machine.Name)
	for i, in := range p.Instrs {
		if i%p.Machine.Ways == 0 {
			fmt.Fprintf(&b, "; -- major cycle %d --\n", i/p.Machine.Ways)
		}
		b.WriteString("\t")
		b.WriteString(in.Op.String())
		if in.DefReg() >= 0 {
			fmt.Fprintf(&b, " v%d", in.DefReg())
		}
		for j, u := range in.Uses {
			if j == 0 && in.DefReg() < 0 {
				fmt.Fprintf(&b, " v%d", u)
			} else {
				fmt.Fprintf(&b, ", v%d", u)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LiveRanges returns, per vreg, the instruction interval [def, lastUse]
// (lastUse = def for never-read vregs). The second return value lists,
// per vreg, the defining instruction index (-1 if the program never
// defines it, which Validate rejects).
func (p *Program) LiveRanges() (start, end []int) {
	start = make([]int, p.NumVRegs)
	end = make([]int, p.NumVRegs)
	for v := range start {
		start[v] = -1
		end[v] = -1
	}
	for i, in := range p.Instrs {
		if d := in.DefReg(); d >= 0 && start[d] == -1 {
			start[d] = i
			end[d] = i
		}
		for _, u := range in.Uses {
			if u >= 0 && u < p.NumVRegs {
				end[u] = i
			}
		}
	}
	return start, end
}

// Validate checks program well-formedness: every vreg is defined before
// use and defined exactly once (ATE test patterns are SSA-like).
func (p *Program) Validate() error {
	defined := make([]bool, p.NumVRegs)
	for i, in := range p.Instrs {
		for _, u := range in.Uses {
			if u < 0 || u >= p.NumVRegs {
				return fmt.Errorf("ate: instr %d uses out-of-range vreg %d", i, u)
			}
			if !defined[u] {
				return fmt.Errorf("ate: instr %d uses undefined vreg %d", i, u)
			}
		}
		if d := in.DefReg(); d >= 0 {
			if d >= p.NumVRegs {
				return fmt.Errorf("ate: instr %d defines out-of-range vreg %d", i, d)
			}
			if defined[d] {
				return fmt.Errorf("ate: instr %d redefines vreg %d", i, d)
			}
			defined[d] = true
		}
		if in.Op == OpAdd && len(in.Uses) != 2 {
			return fmt.Errorf("ate: instr %d: add wants 2 uses", i)
		}
	}
	for v, d := range defined {
		if !d {
			return fmt.Errorf("ate: vreg %d never defined", v)
		}
	}
	if len(p.Allowed) != 0 && len(p.Allowed) != p.NumVRegs {
		return fmt.Errorf("ate: Allowed has %d entries, want %d", len(p.Allowed), p.NumVRegs)
	}
	return nil
}

package ate

import (
	"testing"

	"pbqprl/internal/solve/liberty"
)

func TestCompactMachineValid(t *testing.T) {
	m := CompactMachine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Ways != 4 || m.Registers != 13 {
		t.Errorf("shape: %d regs, %d ways", m.Registers, m.Ways)
	}
	if !m.Pairable(0, 1) || m.Pairable(3, 4) {
		t.Error("bank structure wrong")
	}
	if !m.Pairable(12, 0) || m.Pairable(12, 1) {
		t.Error("carry pairing wrong")
	}
}

func TestTranslateRebuildsConstraints(t *testing.T) {
	src := DefaultMachine()
	prog, _ := Generate(src, GenConfig{
		Name: "port-me", NumVRegs: 20, PairRatio: 0.2, HardRatio: 0.1,
		MaxLive: 6, Seed: 5,
	})
	// widen classes for portability: the hidden assignment was chosen
	// for the source machine and need not be valid on the target
	prog.Allowed = nil
	tr, err := Translate(prog, CompactMachine(), liberty.Solver{MaxStates: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Program.Machine.Name != "ALPG-13C" {
		t.Error("machine not swapped")
	}
	if !tr.Result.Feasible {
		t.Skip("this instance does not port to the compact machine (allowed)")
	}
	// the assignment must satisfy the *target* PBQP
	g, err := BuildPBQP(tr.Program)
	if err != nil {
		t.Fatal(err)
	}
	if c := g.TotalCost(tr.Assignment); c != 0 {
		t.Errorf("translated assignment costs %v on the target", c)
	}
}

func TestTranslateRejectsInvalidProgram(t *testing.T) {
	bad := &Program{Name: "bad", Machine: DefaultMachine(), NumVRegs: 1}
	if _, err := Translate(bad, CompactMachine(), liberty.Solver{}); err == nil {
		t.Error("accepted a program with undefined vregs")
	}
}

func TestTranslateDropsOutOfRangeClasses(t *testing.T) {
	src := DefaultMachine()
	prog := &Program{
		Name: "cls", Machine: src, NumVRegs: 1,
		Instrs:  []Instr{{Op: OpSet, Def: 0}, {Op: OpEmit, Uses: []int{0}}},
		Allowed: [][]int{{0, 1}},
	}
	small := &Machine{Name: "tiny", Registers: 1, Ways: 2}
	small.pairable = [][]bool{{false}}
	tr, err := Translate(prog, small, liberty.Solver{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Program.Allowed[0]) != 1 || tr.Program.Allowed[0][0] != 0 {
		t.Errorf("classes not narrowed: %v", tr.Program.Allowed[0])
	}
	// a class with no surviving registers is an error
	prog.Allowed = [][]int{{5, 6}}
	if _, err := Translate(prog, small, liberty.Solver{}); err == nil {
		t.Error("accepted an empty register class")
	}
}

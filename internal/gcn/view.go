package gcn

import (
	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/tensor"
)

// GraphView adapts a pbqp.Graph (its alive vertices, compacted to
// [0, N)) to the View interface, caching transformed edge matrices.
type GraphView struct {
	g    *pbqp.Graph
	ids  []int       // active index -> graph vertex
	pos  map[int]int // graph vertex -> active index
	nbrs [][]int
	mats []map[int]*tensor.Mat
}

// NewGraphView builds a View over the alive vertices of g. The view
// reads g's cost vectors lazily, so vector mutations are visible, but
// structural changes (edge or vertex removal) are not.
func NewGraphView(g *pbqp.Graph) *GraphView {
	ids := g.Vertices()
	pos := make(map[int]int, len(ids))
	for i, u := range ids {
		pos[u] = i
	}
	v := &GraphView{
		g: g, ids: ids, pos: pos,
		nbrs: make([][]int, len(ids)),
		mats: make([]map[int]*tensor.Mat, len(ids)),
	}
	for i, u := range ids {
		v.mats[i] = make(map[int]*tensor.Mat)
		for _, w := range g.Neighbors(u) {
			j := pos[w]
			v.nbrs[i] = append(v.nbrs[i], j)
			v.mats[i][j] = TransformMatrix(g.EdgeCost(u, w))
		}
	}
	return v
}

// N implements View.
func (v *GraphView) N() int { return len(v.ids) }

// M implements View.
func (v *GraphView) M() int { return v.g.M() }

// Vec implements View.
func (v *GraphView) Vec(i int) cost.Vector { return v.g.VertexCost(v.ids[i]) }

// Nbrs implements View.
func (v *GraphView) Nbrs(i int) []int { return v.nbrs[i] }

// Mat implements View.
func (v *GraphView) Mat(i, j int) *tensor.Mat { return v.mats[i][j] }

package gcn

// Read-only GCN inference. Infer embeds a view exactly like Forward
// but through caller-owned scratch buffers and specialized edge-matrix
// kernels, without touching the Backward caches. Its contract is
// bit-identity: every hidden element is produced by the same
// floating-point operations, in the same order, as Forward.
//
// Two IEEE-754 facts make the kernel specializations exact rather than
// approximate:
//
//   - Zero skipping. Every accumulator below starts at +0.0 and
//     round-to-nearest addition can never turn it into -0.0 (x + (-x)
//     rounds to +0.0, and +0.0 + ±0.0 = +0.0), so adding a term that
//     is exactly ±0.0 never changes the accumulator's bits. Terms
//     whose multiplicand is exactly zero can therefore be skipped.
//     Zero/infinity graphs — the paper's training regime — squash to
//     matrices that are mostly exact zeros, which is where the edge
//     kernels win their time back.
//
//   - Power-of-two factoring. The infinity stand-in infFeature is 2.0,
//     so a "binary" matrix row contributes Σ 2·h[j] = 2·Σ h[j]:
//     multiplication by a power of two is exact and commutes with
//     rounding, making the factored sum bit-identical to the unfactored
//     fold.

import (
	"encoding/binary"
	"fmt"
	"math"

	"pbqprl/internal/cost"
	"pbqprl/internal/tensor"
)

// matKernel kinds, from cheapest to most general.
const (
	kZero   = iota // every entry exactly 0: the edge contributes nothing
	kBinary        // entries ∈ {0, infFeature}: factored index sums
	kSparse        // mostly zero: (index, value) pairs in row-major order
	kDense         // dense fallback: plain row folds
)

// matKernel is the prepared form of one transformed edge matrix.
// Kernels are immutable once built (transformed matrices never change)
// and cached by matrix pointer; the map key keeps the matrix alive, so
// a cached pointer can never be recycled to a different matrix.
type matKernel struct {
	kind     int
	id       uint64 // never-reused identity for msg-cache keys
	mat      *tensor.Mat
	rowStart []int32 // len R+1; nonzero ranges per row (kBinary, kSparse)
	idx      []int32 // column indices, ascending within each row
	val      []float64
	// contrib caches mat · row per canonical row, keyed by the row's
	// base pointer (the key pins the row, so it can never be read
	// against recycled memory). Living on the kernel keeps the key a
	// single word — the map stays on the fast pointer-hash path.
	contrib map[*float64]tensor.Vec
}

// buildKernel classifies m and packs its nonzero structure.
func buildKernel(m *tensor.Mat) *matKernel {
	nz := 0
	binary := true
	for _, w := range m.W {
		//pbqpvet:ignore floatcmp exact-zero skipping is the kernel's contract; see the package comment on zero skipping
		if w != 0 {
			nz++
			//pbqpvet:ignore floatcmp infFeature is assigned, never computed, so the exact comparison identifies it
			if w != infFeature {
				binary = false
			}
		}
	}
	k := &matKernel{mat: m}
	switch {
	case nz == 0:
		k.kind = kZero
		return k
	case nz*5 > len(m.W)*3:
		// denser than 60 %: the packed form saves nothing
		k.kind = kDense
		return k
	case binary:
		k.kind = kBinary
	default:
		k.kind = kSparse
	}
	k.rowStart = make([]int32, m.R+1)
	k.idx = make([]int32, 0, nz)
	if k.kind == kSparse {
		k.val = make([]float64, 0, nz)
	}
	for i := 0; i < m.R; i++ {
		k.rowStart[i] = int32(len(k.idx))
		row := m.W[i*m.C : (i+1)*m.C]
		for j, w := range row {
			//pbqpvet:ignore floatcmp exact-zero skipping is the kernel's contract; see the package comment on zero skipping
			if w != 0 {
				k.idx = append(k.idx, int32(j))
				if k.kind == kSparse {
					k.val = append(k.val, w)
				}
			}
		}
	}
	k.rowStart[m.R] = int32(len(k.idx))
	return k
}

// addMulVec adds k.mat · x into dst, bit-identically to
// (*tensor.Mat).AddMulVec.
func (k *matKernel) addMulVec(dst, x tensor.Vec) {
	switch k.kind {
	case kZero:
		// Σ ±0.0 into a +0.0-started accumulator is a no-op
		return
	case kBinary:
		rs, idx := k.rowStart, k.idx
		for i := range dst {
			lo, hi := rs[i], rs[i+1]
			if lo == hi {
				continue
			}
			s := 0.0
			for _, j := range idx[lo:hi] {
				s += x[j]
			}
			dst[i] += 2 * s
		}
	case kSparse:
		rs, idx, val := k.rowStart, k.idx, k.val
		for i := range dst {
			lo, hi := rs[i], rs[i+1]
			if lo == hi {
				continue
			}
			s := 0.0
			for p := lo; p < hi; p++ {
				s += val[p] * x[idx[p]]
			}
			dst[i] += s
		}
	default: // kDense
		m := k.mat
		for i := range dst {
			row := m.W[i*m.C : (i+1)*m.C]
			s := 0.0
			for j, xj := range x {
				s += row[j] * xj
			}
			dst[i] += s
		}
	}
}

// Cache bounds: kernels accumulate across episodes (graphs come and
// go); h⁰, message-intern, contribution, and update entries accumulate
// across a search. Each map resets wholesale when it grows past its
// limit — resets cost recomputation, never correctness, because every
// cache key pins its referents (see the memoization comment on Infer).
const (
	maxKernels = 8192
	maxH0      = 4096
	maxIntern  = 8192
	maxContrib = 32768
	maxMsg     = 16384
	maxUpd     = 16384
)

// rowRef is a canonical cached row plus its identity: ids are drawn
// from a per-Scratch counter that never decreases and is never reused,
// so an id names one row's bits forever — a cache entry keyed by a
// stale id (its row evicted and recomputed under a fresh id) simply
// never hits again. That makes id-composed keys safe without any
// pinning or invalidation argument.
type rowRef struct {
	vec tensor.Vec
	id  uint64
}

// updKey identifies one layer-update output row: the layer index plus
// the ids of the vertex's canonical hidden row and its (interned)
// message row. Update rows depend on the layer weights, so the upd
// cache is dropped by InvalidateWeights.
type updKey struct {
	layer  int
	h, msg uint64
}

// Scratch holds the reusable state of one Infer caller: the flattened
// adjacency of the current view, the kernel cache, and the
// content-addressed memoization maps. A Scratch must not be shared
// between goroutines, and it belongs to one network: after the
// network's weights change the owner must call InvalidateWeights
// (net.PBQPNet does this on its training-mode and weight-loading
// transitions).
type Scratch struct {
	feat    tensor.Vec // one vertex's 2m-feature buffer
	featNZ  []int32    // ascending nonzero feature indices
	mrow    tensor.Vec // one vertex's message buffer
	rowsA   []rowRef
	rowsB   []rowRef
	rowsOut []tensor.Vec // Infer's return slice, aliasing cached rows

	edgeStart []int32
	edgeU     []int32
	edgeK     []*matKernel

	kern         map[*tensor.Mat]*matKernel
	h0           map[string]rowRef
	intern       map[string]rowRef
	msg          map[string]rowRef // (kernel id, row id) edge list → message
	upd          map[updKey]rowRef
	contribCount int // total entries across all kernels' contrib maps
	nextID       uint64
	key          []byte // content-key buffer (h0, intern)
	mkey         []byte // id-key buffer (msg); distinct: both live at once
}

// newID returns a fresh never-reused row/kernel identity.
func (sc *Scratch) newID() uint64 {
	sc.nextID++
	return sc.nextID
}

// InvalidateWeights drops every cache derived from network weights:
// the h⁰ rows and the layer-update rows. Kernels, interned message
// rows, and edge contributions survive — they depend only on the
// (immutable) edge matrices and on row contents, not on weights. The
// msg cache is dropped too, not for correctness (its keys name rows by
// never-reused ids, so stale entries can only miss) but because every
// entry keyed by a pre-change row id is dead weight after the rows are
// recomputed under fresh ids.
func (sc *Scratch) InvalidateWeights() {
	clear(sc.h0)
	clear(sc.upd)
	clear(sc.msg)
}

// ensure sizes the buffers for an n-vertex, m-color view.
func (sc *Scratch) ensure(m, n int) {
	if cap(sc.feat) < 2*m {
		//pbqpvet:ignore hotalloc scratch growth on first sight of a larger view; steady state reuses the buffers
		sc.feat = make(tensor.Vec, 2*m)
		sc.featNZ = make([]int32, 0, 2*m)
		sc.mrow = make(tensor.Vec, m) //pbqpvet:ignore hotalloc grow-once alongside feat
		sc.key = make([]byte, 0, 8*m)
	} else {
		sc.feat = sc.feat[:2*m]
		sc.mrow = sc.mrow[:m]
	}
	if cap(sc.rowsA) < n {
		//pbqpvet:ignore hotalloc scratch growth on first sight of a larger view; steady state reuses the buffers
		sc.rowsA = make([]rowRef, n)
		sc.rowsB = make([]rowRef, n)
		sc.rowsOut = make([]tensor.Vec, n) //pbqpvet:ignore hotalloc grow-once alongside rowsA
		sc.edgeStart = make([]int32, 0, n+1)
	} else {
		sc.rowsA, sc.rowsB = sc.rowsA[:n], sc.rowsB[:n]
		sc.rowsOut = sc.rowsOut[:n]
	}
	if sc.kern == nil {
		sc.kern = make(map[*tensor.Mat]*matKernel)
		sc.h0 = make(map[string]rowRef)
		sc.intern = make(map[string]rowRef)
		sc.msg = make(map[string]rowRef)
		sc.upd = make(map[updKey]rowRef)
	}
}

// kernel returns the prepared kernel for mat, building and caching it
// on first sight.
func (sc *Scratch) kernel(mat *tensor.Mat) *matKernel {
	if k, ok := sc.kern[mat]; ok {
		return k
	}
	if len(sc.kern) >= maxKernels {
		clear(sc.kern)
	}
	//pbqpvet:ignore hotalloc kernel build on first sight of an edge matrix; amortized across every later evaluation of its graph
	k := buildKernel(mat)
	k.id = sc.newID()
	sc.kern[mat] = k
	return k
}

// Infer embeds every active vertex of view, bit-identically to Forward
// but read-only and through sc's caches. The returned vectors alias
// sc's caches and stay valid until the next Infer on the same Scratch;
// callers consume them (net pools them into a fixed vector) before
// re-entering, and must never write into them.
//
// Beyond the sparse kernels, Infer memoizes the whole message pass on
// canonical rows. Every hidden row a layer consumes is a stable cached
// vector with a never-reused id — h⁰ rows come from the
// content-addressed h0 map, later rows from the upd map — so a
// (kernel, row) pair names an edge contribution, a vertex's (kernel
// id, row id) edge list names its whole message row, and a (layer,
// row, message) id triple names an update output, each computed once
// and replayed by lookup. On a steady-state hit a vertex's entire
// message fold — per-edge mat·vec adds and the mean — collapses to one
// key build and one map probe. Message rows are interned by content to
// give identical messages one identity. Replaying a cached value is
// exact, not approximate: each cached vector was produced by the
// identical floating-point fold the scalar path would run, and
// substituting a row for another with identical bits cannot change any
// downstream operation. Pointer-keyed maps pin their referents, and
// id-composed keys can only go stale towards misses (ids are never
// reused), so an entry can never be read against recycled memory;
// evicting any one map merely forces recomputation.
//
//pbqpvet:hotpath
func (g *GCN) Infer(view View, sc *Scratch) []tensor.Vec {
	n := view.N()
	m := g.m
	sc.ensure(m, n)

	// Flatten the adjacency once: Forward calls view.Mat per edge per
	// layer; one pass here resolves each directed edge to its kernel.
	sc.edgeStart = sc.edgeStart[:0]
	sc.edgeU = sc.edgeU[:0]
	sc.edgeK = sc.edgeK[:0]
	for v := 0; v < n; v++ {
		sc.edgeStart = append(sc.edgeStart, int32(len(sc.edgeU)))
		for _, u := range view.Nbrs(v) {
			mt := view.Mat(v, u)
			// Forward's AddMulVec rejects any edge matrix that is not
			// m×m before touching it; mirror both checks (columns
			// first) so a mismatched graph panics with the scalar
			// path's exact message instead of reading a kernel out of
			// bounds — or, worse, silently succeeding where the scalar
			// path panics (a zero kernel has no bounds to trip).
			if mt.C != m {
				//pbqpvet:ignore panicfree mirrors (*tensor.Mat).AddMulVec's shape panic on the scalar path
				panic(fmt.Sprintf("tensor: dimension mismatch: want %d, got %d", mt.C, m))
			}
			if mt.R != m {
				//pbqpvet:ignore panicfree mirrors (*tensor.Mat).AddMulVec's shape panic on the scalar path
				panic(fmt.Sprintf("tensor: dimension mismatch: want %d, got %d", mt.R, m))
			}
			sc.edgeU = append(sc.edgeU, int32(u))
			sc.edgeK = append(sc.edgeK, sc.kernel(mt))
		}
	}
	sc.edgeStart = append(sc.edgeStart, int32(len(sc.edgeU)))

	// h⁰ = tanh(W_in·φ(v) + b_in), content-cached by cost-vector bytes:
	// across the leaves of one search most vertices carry unchanged
	// vectors, so the squash + mat-vec + tanh runs once per distinct
	// vector instead of once per vertex per evaluation.
	cur, nxt := sc.rowsA, sc.rowsB
	for v := 0; v < n; v++ {
		cur[v] = sc.h0Row(g, view.Vec(v))
	}
	if g.layers == 0 {
		for v := 0; v < n; v++ {
			sc.rowsOut[v] = cur[v].vec
		}
		return sc.rowsOut
	}

	for l := 0; l < g.layers; l++ {
		wself, wnbr, b := g.wself[l].W, g.wnbr[l].W, g.b[l].W
		for v := 0; v < n; v++ {
			// message pass: msg_v = mean of M̃_vu · h_u over neighbors,
			// neighbor order and rounding identical to Forward. The
			// (kernel id, row id) edge list determines the whole fold,
			// including the mean's divisor (the key's length), so a hit
			// skips it entirely. Edgeless vertices share the empty key —
			// and, exactly like Forward, an unscaled all-zero message.
			sc.mkey = sc.mkey[:0]
			lo, hi := sc.edgeStart[v], sc.edgeStart[v+1]
			for e := lo; e < hi; e++ {
				sc.mkey = binary.LittleEndian.AppendUint64(sc.mkey, sc.edgeK[e].id)
				sc.mkey = binary.LittleEndian.AppendUint64(sc.mkey, cur[sc.edgeU[e]].id)
			}
			msg, ok := sc.msg[string(sc.mkey)]
			if !ok {
				msg = sc.msgRow(cur, lo, hi)
			}
			nxt[v] = sc.updateRow(l, cur[v], msg, wself, wnbr, b, m)
		}
		cur, nxt = nxt, cur
	}
	for v := 0; v < n; v++ {
		sc.rowsOut[v] = cur[v].vec
	}
	return sc.rowsOut
}

// msgRow computes one vertex's message row the slow way — per-edge
// cached contributions folded in neighbor order, then the mean — and
// caches it under the (kernel id, row id) edge list sc.mkey holds.
// Adding each whole contribution vector equals the kernel's selective
// per-row adds because a skipped row's entry is exactly +0.0 and the
// accumulator can never be -0.0 (see the package comment).
func (sc *Scratch) msgRow(cur []rowRef, lo, hi int32) rowRef {
	mrow := sc.mrow
	mrow.Zero()
	for e := lo; e < hi; e++ {
		mrow.AddInPlace(sc.contribution(sc.edgeK[e], cur[sc.edgeU[e]].vec))
	}
	if cnt := hi - lo; cnt > 0 {
		mrow.Scale(1 / float64(cnt))
	}
	c := sc.internMsg(mrow)
	if len(sc.msg) >= maxMsg {
		clear(sc.msg)
	}
	sc.msg[string(sc.mkey)] = c
	return c
}

// h0Row returns the canonical h⁰ row for vertex vec, computing and
// caching it on first sight of the vector's contents.
func (sc *Scratch) h0Row(g *GCN, vec cost.Vector) rowRef {
	// Forward featurizes into a 2·len(vec) vector that W_in·φ rejects
	// unless len(vec) == m; mirror the check with the scalar path's
	// message so a mismatched vertex never silently embeds short.
	if len(vec) != g.m {
		//pbqpvet:ignore panicfree mirrors (*tensor.Mat).MulVec's shape panic on the scalar path
		panic(fmt.Sprintf("tensor: dimension mismatch: want %d, got %d", 2*g.m, 2*len(vec)))
	}
	sc.key = sc.key[:0]
	for _, c := range vec {
		sc.key = binary.LittleEndian.AppendUint64(sc.key, math.Float64bits(float64(c)))
	}
	if h, ok := sc.h0[string(sc.key)]; ok {
		return h
	}
	m := g.m
	// φ(v): squashed finite channel then infinity mask, nonzero indices
	// recorded in ascending order so the sparse fold below visits them
	// exactly as Forward's dense fold does
	sc.feat.Zero()
	sc.featNZ = sc.featNZ[:0]
	for i, c := range vec {
		s := squash(c)
		//pbqpvet:ignore floatcmp exact-zero skipping is the kernel's contract; see the package comment on zero skipping
		if s != 0 {
			sc.feat[i] = s
			sc.featNZ = append(sc.featNZ, int32(i))
		}
	}
	for i, c := range vec {
		if c.IsInf() {
			sc.feat[m+i] = 1
			sc.featNZ = append(sc.featNZ, int32(m+i))
		}
	}
	//pbqpvet:ignore hotalloc h⁰ cache fill on first sight of a cost vector; later evaluations of the same vector hit the cache
	dst := make(tensor.Vec, m)
	win, bin := g.win.W, g.bin.W
	for i := 0; i < m; i++ {
		row := win[i*2*m : (i+1)*2*m]
		s := 0.0
		for _, j := range sc.featNZ {
			s += row[j] * sc.feat[j]
		}
		dst[i] = math.Tanh(s + bin[i])
	}
	if len(sc.h0) >= maxH0 {
		clear(sc.h0)
	}
	r := rowRef{vec: dst, id: sc.newID()}
	sc.h0[string(sc.key)] = r
	return r
}

// contribution returns k.mat · x as a cached vector. x must be a
// canonical cached row so its pointer names its contents.
func (sc *Scratch) contribution(k *matKernel, x tensor.Vec) tensor.Vec {
	if c, ok := k.contrib[&x[0]]; ok {
		return c
	}
	if sc.contribCount >= maxContrib {
		// Dropping the kernel map releases every per-kernel contribution
		// cache at once; kernels rebuild on first sight like any miss.
		clear(sc.kern)
		sc.contribCount = 0
	}
	if k.contrib == nil {
		k.contrib = make(map[*float64]tensor.Vec)
	}
	//pbqpvet:ignore hotalloc contribution cache fill on first sight of a (kernel, row) pair; later message passes hit the cache
	c := make(tensor.Vec, len(x))
	k.addMulVec(c, x)
	k.contrib[&x[0]] = c
	sc.contribCount++
	return c
}

// internMsg returns the canonical row holding mrow's contents, so
// identical message rows share one identity the msg and upd caches can
// key on.
func (sc *Scratch) internMsg(mrow tensor.Vec) rowRef {
	sc.key = sc.key[:0]
	for _, f := range mrow {
		sc.key = binary.LittleEndian.AppendUint64(sc.key, math.Float64bits(f))
	}
	if c, ok := sc.intern[string(sc.key)]; ok {
		return c
	}
	if len(sc.intern) >= maxIntern {
		clear(sc.intern)
	}
	//pbqpvet:ignore hotalloc intern fill on first sight of a message row; later identical rows share the canonical vector
	c := rowRef{vec: mrow.Clone(), id: sc.newID()}
	sc.intern[string(sc.key)] = c
	return c
}

// updateRow returns tanh(W_self·h + W_nbr·msg + b) for one vertex as a
// cached canonical row. Both folds run in ascending j exactly like
// Forward's MulVec calls, and the combination (self + nbr) + b matches
// Forward's AddInPlace order, so the computed row is bit-identical to
// the scalar layer. h and msg must be canonical cached rows.
func (sc *Scratch) updateRow(l int, h, msg rowRef, wself, wnbr, b tensor.Vec, m int) rowRef {
	uk := updKey{layer: l, h: h.id, msg: msg.id}
	if o, ok := sc.upd[uk]; ok {
		return o
	}
	if len(sc.upd) >= maxUpd {
		clear(sc.upd)
	}
	hv, mv := h.vec, msg.vec
	//pbqpvet:ignore hotalloc update cache fill on first sight of a (layer, row, message) triple; later evaluations hit the cache
	o := make(tensor.Vec, m)
	for i := 0; i < m; i++ {
		ws := wself[i*m : (i+1)*m]
		wn := wnbr[i*m : (i+1)*m]
		var s, t float64
		for j, wsj := range ws {
			s += wsj * hv[j]
			t += wn[j] * mv[j]
		}
		o[i] = math.Tanh(s + t + b[i])
	}
	r := rowRef{vec: o, id: sc.newID()}
	sc.upd[uk] = r
	return r
}

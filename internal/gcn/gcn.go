// Package gcn implements the paper's PBQP graph embedding (Section
// III-D): a message-passing graph convolutional network whose messages
// are multiplied by the edge cost matrices, so that the embedding
// reflects the actual cost interaction between neighboring vertices,
// not just adjacency.
//
// Hidden vectors have width m (the color count), exactly as in the
// paper, so that an m×m cost matrix can multiply a hidden vector.
// Infinite costs cannot flow through a network directly: Featurize maps
// a cost vector to a 2m-feature input (a squashed finite channel plus a
// 0/1 infinity mask) and TransformMatrix maps cost matrix entries to
// bounded floats with a distinguished value for infinity.
//
// Layer update for vertex v with neighbors N(v):
//
//	h⁰_v      = tanh(W_in·φ(v) + b_in)
//	msg_v     = mean_{u ∈ N(v)} M̃_vu · hˡ_u
//	hˡ⁺¹_v    = tanh(W_self·hˡ_v + W_nbr·msg_v + b)
//
// where M̃_vu is the transformed cost matrix oriented (rows = v's color).
package gcn

import (
	"math"
	"math/rand"

	"pbqprl/internal/cost"
	"pbqprl/internal/nn"
	"pbqprl/internal/tensor"
)

// View is the graph a GCN embeds: the uncolored remainder of a PBQP
// problem in reduced form. Implementations must present transformed
// (finite) edge matrices; TransformMatrix is the canonical conversion.
type View interface {
	// N returns the number of active vertices, addressed as [0, N).
	N() int
	// M returns the color count.
	M() int
	// Vec returns active vertex v's current cost vector.
	Vec(v int) cost.Vector
	// Nbrs returns the active neighbors of v.
	Nbrs(v int) []int
	// Mat returns the transformed cost matrix of edge (v, u), oriented
	// with rows indexing v's color.
	Mat(v, u int) *tensor.Mat
}

const (
	// infFeature is the numeric stand-in for an infinite cost after
	// transformation. Finite costs squash into [0, 1); infinity maps
	// well above them so the network can separate the regimes.
	infFeature = 2.0
	// costScale divides log1p(cost) in the squashing transform.
	costScale = 4.0
)

// squash maps one cost entry to a bounded float feature. Finite costs
// use a sign-preserving logarithmic compression (register-allocation
// PBQP graphs contain negative coalescing-hint costs).
func squash(c cost.Cost) float64 {
	if c.IsInf() {
		return infFeature
	}
	f := float64(c)
	if f < 0 {
		return -math.Log1p(-f) / costScale
	}
	return math.Log1p(f) / costScale
}

// TransformMatrix converts a cost matrix to the numeric form the GCN
// multiplies messages by.
func TransformMatrix(m *cost.Matrix) *tensor.Mat {
	t := tensor.NewMat(m.Rows, m.Cols)
	for i, c := range m.Data {
		t.W[i] = squash(c)
	}
	return t
}

// Featurize converts a cost vector to the 2m-feature GCN input: the
// squashed finite channel followed by the 0/1 infinity mask.
func Featurize(v cost.Vector) tensor.Vec {
	f := tensor.NewVec(2 * len(v))
	for i, c := range v {
		f[i] = squash(c)
		if c.IsInf() {
			f[len(v)+i] = 1
		}
	}
	return f
}

// GCN is the trainable graph embedding network.
type GCN struct {
	m      int
	layers int
	win    *nn.Param // m × 2m
	bin    *nn.Param // m
	wself  []*nn.Param
	wnbr   []*nn.Param
	b      []*nn.Param

	// caches from the most recent Forward, consumed by Backward
	feats []tensor.Vec   // φ(v)
	hs    [][]tensor.Vec // hs[l][v], l = 0..layers
	msgs  [][]tensor.Vec // msgs[l][v], message into layer l+1
}

// New returns a GCN with the given number of message-passing layers for
// m-color problems, Xavier-initialized from rng.
func New(rng *rand.Rand, m, layers int) *GCN {
	g := &GCN{m: m, layers: layers}
	g.win = xavier(rng, "gcn.win", m, 2*m)
	g.bin = &nn.Param{Name: "gcn.bin", W: tensor.NewVec(m), G: tensor.NewVec(m)}
	for l := 0; l < layers; l++ {
		g.wself = append(g.wself, xavier(rng, "gcn.wself", m, m))
		g.wnbr = append(g.wnbr, xavier(rng, "gcn.wnbr", m, m))
		g.b = append(g.b, &nn.Param{Name: "gcn.b", W: tensor.NewVec(m), G: tensor.NewVec(m)})
	}
	return g
}

func xavier(rng *rand.Rand, name string, out, in int) *nn.Param {
	p := &nn.Param{Name: name, W: tensor.NewVec(out * in), G: tensor.NewVec(out * in)}
	bound := math.Sqrt(6.0 / float64(in+out))
	for i := range p.W {
		p.W[i] = (rng.Float64()*2 - 1) * bound
	}
	return p
}

// M returns the color count the network was built for.
func (g *GCN) M() int { return g.m }

// Layers returns the number of message-passing layers.
func (g *GCN) Layers() int { return g.layers }

// Params returns all trainable parameters.
func (g *GCN) Params() []*nn.Param {
	ps := []*nn.Param{g.win, g.bin}
	for l := 0; l < g.layers; l++ {
		ps = append(ps, g.wself[l], g.wnbr[l], g.b[l])
	}
	return ps
}

// Forward embeds every active vertex of view, returning the final
// hidden vectors (one length-m vector per vertex). The caches needed by
// Backward are retained until the next Forward.
func (g *GCN) Forward(view View) []tensor.Vec {
	n := view.N()
	g.feats = make([]tensor.Vec, n)
	g.hs = make([][]tensor.Vec, g.layers+1)
	g.msgs = make([][]tensor.Vec, g.layers)
	h0 := make([]tensor.Vec, n)
	winM := &tensor.Mat{R: g.m, C: 2 * g.m, W: g.win.W}
	for v := 0; v < n; v++ {
		g.feats[v] = Featurize(view.Vec(v))
		pre := winM.MulVec(g.feats[v])
		pre.AddInPlace(g.bin.W)
		h0[v] = tanhVec(pre)
	}
	g.hs[0] = h0
	for l := 0; l < g.layers; l++ {
		prev := g.hs[l]
		next := make([]tensor.Vec, n)
		msgs := make([]tensor.Vec, n)
		wself := &tensor.Mat{R: g.m, C: g.m, W: g.wself[l].W}
		wnbr := &tensor.Mat{R: g.m, C: g.m, W: g.wnbr[l].W}
		for v := 0; v < n; v++ {
			msg := tensor.NewVec(g.m)
			nbrs := view.Nbrs(v)
			for _, u := range nbrs {
				view.Mat(v, u).AddMulVec(msg, prev[u])
			}
			if len(nbrs) > 0 {
				msg.Scale(1 / float64(len(nbrs)))
			}
			msgs[v] = msg
			pre := wself.MulVec(prev[v])
			pre.AddInPlace(wnbr.MulVec(msg))
			pre.AddInPlace(g.b[l].W)
			next[v] = tanhVec(pre)
		}
		g.msgs[l] = msgs
		g.hs[l+1] = next
	}
	return g.hs[g.layers]
}

// Backward accumulates parameter gradients given dL/dH for the final
// hidden vectors returned by the most recent Forward over view.
func (g *GCN) Backward(view View, dH []tensor.Vec) {
	n := view.N()
	grad := make([]tensor.Vec, n)
	for v := 0; v < n; v++ {
		grad[v] = dH[v].Clone()
	}
	for l := g.layers - 1; l >= 0; l-- {
		prev := g.hs[l]
		out := g.hs[l+1]
		wself := &tensor.Mat{R: g.m, C: g.m, W: g.wself[l].W}
		wnbr := &tensor.Mat{R: g.m, C: g.m, W: g.wnbr[l].W}
		gwself := &tensor.Mat{R: g.m, C: g.m, W: g.wself[l].G}
		gwnbr := &tensor.Mat{R: g.m, C: g.m, W: g.wnbr[l].G}
		nextGrad := make([]tensor.Vec, n)
		for v := 0; v < n; v++ {
			nextGrad[v] = tensor.NewVec(g.m)
		}
		for v := 0; v < n; v++ {
			dpre := grad[v].Clone()
			for i := range dpre {
				dpre[i] *= 1 - out[v][i]*out[v][i]
			}
			gwself.AddOuter(1, dpre, prev[v])
			gwnbr.AddOuter(1, dpre, g.msgs[l][v])
			g.b[l].G.AddInPlace(dpre)
			nextGrad[v].AddInPlace(wself.MulTVec(dpre))
			dmsg := wnbr.MulTVec(dpre)
			nbrs := view.Nbrs(v)
			if len(nbrs) == 0 {
				continue
			}
			scale := 1 / float64(len(nbrs))
			for _, u := range nbrs {
				// d msg_v / d h_u = scale · M̃_vu, so the gradient
				// flows back through M̃_vuᵀ = M̃_uv.
				nextGrad[u].AddScaled(scale, view.Mat(u, v).MulVec(dmsg))
			}
		}
		grad = nextGrad
	}
	gwin := &tensor.Mat{R: g.m, C: 2 * g.m, W: g.win.G}
	for v := 0; v < n; v++ {
		dpre := grad[v].Clone()
		for i := range dpre {
			dpre[i] *= 1 - g.hs[0][v][i]*g.hs[0][v][i]
		}
		gwin.AddOuter(1, dpre, g.feats[v])
		g.bin.G.AddInPlace(dpre)
	}
}

func tanhVec(x tensor.Vec) tensor.Vec {
	y := make(tensor.Vec, len(x))
	for i, v := range x {
		y[i] = math.Tanh(v)
	}
	return y
}

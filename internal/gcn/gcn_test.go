package gcn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/nn"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/tensor"
)

func testView(t *testing.T, seed int64, n, m int) View {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: n, M: m, PEdge: 0.5, PInf: 0.1})
	return NewGraphView(g)
}

func TestFeaturize(t *testing.T) {
	f := Featurize(cost.Vector{0, 3, cost.Inf})
	if len(f) != 6 {
		t.Fatalf("len = %d", len(f))
	}
	if f[0] != 0 {
		t.Errorf("zero cost feature = %v", f[0])
	}
	if f[1] <= 0 || f[1] >= 1 {
		t.Errorf("finite cost feature = %v, want in (0,1)", f[1])
	}
	if f[2] != infFeature {
		t.Errorf("inf cost feature = %v", f[2])
	}
	if f[3] != 0 || f[4] != 0 || f[5] != 1 {
		t.Errorf("mask channel = %v", f[3:])
	}
}

func TestTransformMatrix(t *testing.T) {
	m := TransformMatrix(cost.NewMatrixFrom([][]cost.Cost{{0, cost.Inf}, {1, 2}}))
	if m.At(0, 0) != 0 || m.At(0, 1) != infFeature {
		t.Errorf("transform = %v", m.W)
	}
	if m.At(1, 0) >= m.At(1, 1) {
		t.Error("transform not monotone in cost")
	}
}

func TestForwardShapeAndDeterminism(t *testing.T) {
	view := testView(t, 1, 8, 3)
	g := New(rand.New(rand.NewSource(2)), 3, 2)
	h1 := g.Forward(view)
	h2 := g.Forward(view)
	if len(h1) != 8 {
		t.Fatalf("returned %d vectors", len(h1))
	}
	for v := range h1 {
		if len(h1[v]) != 3 {
			t.Fatalf("vector %d has width %d", v, len(h1[v]))
		}
		for i := range h1[v] {
			if h1[v][i] != h2[v][i] {
				t.Fatal("Forward not deterministic")
			}
			if math.Abs(h1[v][i]) > 1 {
				t.Fatal("tanh output out of range")
			}
		}
	}
}

func TestEmbeddingDependsOnCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g1 := randgraph.ErdosRenyi(rng, randgraph.Config{N: 6, M: 3, PEdge: 0.5, PInf: 0.1})
	g2 := g1.Clone()
	g2.AddToVertexCost(0, cost.Vector{50, 0, 0})
	net := New(rand.New(rand.NewSource(4)), 3, 2)
	h1 := net.Forward(NewGraphView(g1))
	h2 := net.Forward(NewGraphView(g2))
	diff := 0.0
	for i := range h1[0] {
		diff += math.Abs(h1[0][i] - h2[0][i])
	}
	if diff == 0 {
		t.Error("embedding insensitive to vertex cost change")
	}
}

func TestMessagesPropagate(t *testing.T) {
	// with 2 layers, a cost change at vertex 0 must influence the
	// embedding of a vertex two hops away
	m := 3
	g1 := buildPath(4, m)
	g2 := buildPath(4, m)
	g2.AddToVertexCost(0, cost.Vector{40, 0, 0})
	net := New(rand.New(rand.NewSource(5)), m, 2)
	h1 := net.Forward(g1)
	h2 := net.Forward(g2)
	diff := 0.0
	for i := 0; i < m; i++ {
		diff += math.Abs(h1[2][i] - h2[2][i])
	}
	if diff == 0 {
		t.Error("two-hop influence missing")
	}
	// but with 2 layers, three hops away must be unreachable
	diff = 0.0
	for i := 0; i < m; i++ {
		diff += math.Abs(h1[3][i] - h2[3][i])
	}
	if diff != 0 {
		t.Error("three-hop influence present with 2 layers")
	}
}

func buildPath(n, m int) *cheapGraph {
	g := newCheapGraph(n, m)
	for i := 0; i+1 < n; i++ {
		g.connect(i, i+1)
	}
	return g
}

// cheapGraph is a minimal View for hop tests, with identity-ish edges.
type cheapGraph struct {
	n, m int
	vecs []cost.Vector
	nbrs [][]int
	mat  *tensor.Mat
}

func newCheapGraph(n, m int) *cheapGraph {
	g := &cheapGraph{n: n, m: m, nbrs: make([][]int, n)}
	for i := 0; i < n; i++ {
		g.vecs = append(g.vecs, cost.NewVector(m))
	}
	mat := tensor.NewMat(m, m)
	for i := 0; i < m; i++ {
		mat.Set(i, i, 1)
	}
	g.mat = mat
	return g
}

func (g *cheapGraph) connect(u, v int) {
	g.nbrs[u] = append(g.nbrs[u], v)
	g.nbrs[v] = append(g.nbrs[v], u)
}

func (g *cheapGraph) AddToVertexCost(u int, v cost.Vector) { g.vecs[u].AddInPlace(v) }

func (g *cheapGraph) N() int                   { return g.n }
func (g *cheapGraph) M() int                   { return g.m }
func (g *cheapGraph) Vec(v int) cost.Vector    { return g.vecs[v] }
func (g *cheapGraph) Nbrs(v int) []int         { return g.nbrs[v] }
func (g *cheapGraph) Mat(_, _ int) *tensor.Mat { return g.mat }

func TestGradientsNumerically(t *testing.T) {
	view := testView(t, 6, 5, 3)
	net := New(rand.New(rand.NewSource(7)), 3, 2)
	// loss = sum of squares of all final hidden entries
	loss := func() float64 {
		h := net.Forward(view)
		s := 0.0
		for _, hv := range h {
			for _, x := range hv {
				s += x * x
			}
		}
		return s
	}
	h := net.Forward(view)
	dH := make([]tensor.Vec, len(h))
	for v := range h {
		dH[v] = make(tensor.Vec, len(h[v]))
		for i := range h[v] {
			dH[v][i] = 2 * h[v][i]
		}
	}
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	net.Backward(view, dH)
	const hstep = 1e-5
	for _, p := range net.Params() {
		for i := range p.W {
			orig := p.W[i]
			p.W[i] = orig + hstep
			lp := loss()
			p.W[i] = orig - hstep
			lm := loss()
			p.W[i] = orig
			want := (lp - lm) / (2 * hstep)
			if math.Abs(want-p.G[i]) > 1e-4*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %.6g, numeric %.6g", p.Name, i, p.G[i], want)
			}
		}
	}
}

func TestGradientsOnDisconnectedGraph(t *testing.T) {
	// no edges: only W_in/b_in and the self paths receive gradient
	rng := rand.New(rand.NewSource(8))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 4, M: 2, PEdge: 0, PInf: 0.1})
	view := NewGraphView(g)
	net := New(rand.New(rand.NewSource(9)), 2, 1)
	h := net.Forward(view)
	dH := make([]tensor.Vec, len(h))
	for v := range h {
		dH[v] = make(tensor.Vec, len(h[v]))
		for i := range h[v] {
			dH[v][i] = 1
		}
	}
	net.Backward(view, dH) // must not panic
	gotGrad := false
	for _, p := range net.Params() {
		for _, gv := range p.G {
			if gv != 0 {
				gotGrad = true
			}
		}
	}
	if !gotGrad {
		t.Error("no gradients at all")
	}
}

func TestParamsCount(t *testing.T) {
	net := New(rand.New(rand.NewSource(10)), 4, 3)
	// win, bin + 3 layers × (wself, wnbr, b)
	if got := len(net.Params()); got != 2+3*3 {
		t.Errorf("param tensors = %d, want 11", got)
	}
	if net.M() != 4 || net.Layers() != 3 {
		t.Error("accessors wrong")
	}
}

func TestCheckpointThroughNNHelpers(t *testing.T) {
	a := New(rand.New(rand.NewSource(11)), 3, 2)
	b := New(rand.New(rand.NewSource(12)), 3, 2)
	var tensors []tensor.Vec
	for _, p := range a.Params() {
		tensors = append(tensors, p.W)
	}
	var buf bytes.Buffer
	if err := nn.SaveTensors(&buf, tensors); err != nil {
		t.Fatal(err)
	}
	var dst []tensor.Vec
	for _, p := range b.Params() {
		dst = append(dst, p.W)
	}
	if err := nn.LoadTensors(&buf, dst); err != nil {
		t.Fatal(err)
	}
	view := testView(t, 13, 6, 3)
	ha, hb := a.Forward(view), b.Forward(view)
	for v := range ha {
		for i := range ha[v] {
			if ha[v][i] != hb[v][i] {
				t.Fatal("loaded GCN differs")
			}
		}
	}
}

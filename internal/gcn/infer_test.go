package gcn

import (
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/randgraph"
	"pbqprl/internal/tensor"
)

func zeroInfView(seed int64, n, m int) View {
	rng := rand.New(rand.NewSource(seed))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: n, M: m, PEdge: 0.4, HardRatio: 0.4, PEdgeInf: 0.3,
	})
	return NewGraphView(g)
}

func TestBuildKernelKinds(t *testing.T) {
	mk := func(vals ...float64) *tensor.Mat {
		m := tensor.NewMat(2, 2)
		copy(m.W, vals)
		return m
	}
	cases := []struct {
		mat  *tensor.Mat
		kind int
	}{
		{mk(0, 0, 0, 0), kZero},
		{mk(infFeature, 0, 0, 0), kBinary},
		{mk(infFeature, 0, 0, infFeature), kBinary},
		{mk(0.5, 0, 0, 0), kSparse},
		{mk(infFeature, 0.5, 0, 0), kSparse},
		{mk(0.5, 0.25, 0.125, 0), kDense},
		{mk(infFeature, infFeature, infFeature, 0), kDense},
	}
	for i, c := range cases {
		if k := buildKernel(c.mat); k.kind != c.kind {
			t.Errorf("case %d: kind = %d, want %d", i, k.kind, c.kind)
		}
	}
}

// TestKernelAddMulVecBitIdentical drives every kernel kind against the
// scalar AddMulVec it replaces, accumulating twice into the same
// destination the way the message pass does.
func TestKernelAddMulVecBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		r := 1 + rng.Intn(9)
		c := 1 + rng.Intn(9)
		m := tensor.NewMat(r, c)
		switch trial % 4 {
		case 0: // zero matrix
		case 1: // binary {0, infFeature}
			for i := range m.W {
				if rng.Float64() < 0.3 {
					m.W[i] = infFeature
				}
			}
		case 2: // sparse general values
			for i := range m.W {
				if rng.Float64() < 0.3 {
					m.W[i] = rng.NormFloat64()
				}
			}
		default: // dense
			for i := range m.W {
				m.W[i] = rng.NormFloat64()
			}
		}
		x := make(tensor.Vec, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := make(tensor.Vec, r)
		got := make(tensor.Vec, r)
		k := buildKernel(m)
		for pass := 0; pass < 2; pass++ {
			m.AddMulVec(want, x)
			k.addMulVec(got, x)
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("trial %d (kind %d) row %d: got %x want %x",
					trial, k.kind, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

// TestInferBitIdenticalToForward is the engine's core contract: Infer
// equals Forward bit for bit, across mixed finite/infinite graphs,
// zero/infinity graphs, every n mod 4 residue, and repeated calls on
// one Scratch so the kernel and h⁰ cache hit paths are exercised.
func TestInferBitIdenticalToForward(t *testing.T) {
	sc := &Scratch{}
	views := []View{
		testView(t, 41, 1, 3),
		testView(t, 42, 2, 3),
		testView(t, 43, 5, 4),
		testView(t, 44, 8, 4),
		testView(t, 45, 11, 5),
		zeroInfView(46, 13, 6),
		zeroInfView(47, 19, 6),
	}
	for vi, view := range views {
		g := New(rand.New(rand.NewSource(int64(50+vi))), view.M(), 3)
		sc.InvalidateWeights() // the scratch switches networks: drop weight-derived caches
		want := g.Forward(view)
		for pass := 0; pass < 2; pass++ { // second pass runs fully cached
			got := g.Infer(view, sc)
			if len(got) != len(want) {
				t.Fatalf("view %d: %d vectors, want %d", vi, len(got), len(want))
			}
			for v := range want {
				for i := range want[v] {
					if math.Float64bits(want[v][i]) != math.Float64bits(got[v][i]) {
						t.Fatalf("view %d pass %d vertex %d col %d: got %x want %x",
							vi, pass, v, i, math.Float64bits(got[v][i]), math.Float64bits(want[v][i]))
					}
				}
			}
		}
	}
}

// TestInferAllocFree: once the scratch is sized and the caches warm,
// Infer allocates nothing.
func TestInferAllocFree(t *testing.T) {
	view := zeroInfView(61, 16, 6)
	g := New(rand.New(rand.NewSource(62)), 6, 3)
	sc := &Scratch{}
	g.Infer(view, sc) // size buffers, build kernels, fill h⁰ cache
	if n := testing.AllocsPerRun(50, func() {
		g.Infer(view, sc)
	}); n != 0 {
		t.Fatalf("steady-state Infer allocates %.1f times per run", n)
	}
}

// TestInferInvalidateWeights: after a weight update the h⁰ cache is
// stale; InvalidateWeights restores bit-identity with Forward.
func TestInferInvalidateWeights(t *testing.T) {
	view := testView(t, 71, 7, 4)
	g := New(rand.New(rand.NewSource(72)), 4, 2)
	sc := &Scratch{}
	g.Infer(view, sc) // warm the h⁰ cache against the original weights

	for i := range g.win.W {
		g.win.W[i] += 0.125
	}
	sc.InvalidateWeights()

	want := g.Forward(view)
	got := g.Infer(view, sc)
	for v := range want {
		for i := range want[v] {
			if math.Float64bits(want[v][i]) != math.Float64bits(got[v][i]) {
				t.Fatalf("vertex %d col %d: got %x want %x after weight change",
					v, i, math.Float64bits(got[v][i]), math.Float64bits(want[v][i]))
			}
		}
	}
}

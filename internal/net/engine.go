package net

// Read-only batched evaluation. The engine runs the same computation
// as Evaluate — GCN embedding, pooling, torso, heads, masked softmax —
// through the read-only inference paths (gcn.Infer, nn.InferBatch) and
// reusable scratch buffers, batching any number of views through one
// blocked matmul pass per layer. Its contract is bit-identity: each
// view's (prior, value) is bit-for-bit what the scalar Evaluate
// returns for that view, for any batch size and order, so batching is
// purely a throughput decision.
//
// The engine shares the owning net's single-goroutine discipline (as
// do the Forward caches). Weight-derived caches are dropped whenever
// the weights can have changed: SetTraining (which brackets every
// training step), Load, and CopyFrom all invalidate.

import (
	"pbqprl/internal/gcn"
	"pbqprl/internal/nn"
	"pbqprl/internal/tensor"
)

// engine is the scratch state of the batched evaluation path.
type engine struct {
	gsc    gcn.Scratch
	isc    nn.InferScratch
	pooled *tensor.Mat // batch × (2m+2) torso input
	mask   []bool
	one    [1]gcn.View // view buffer for the single-eval path
}

func (p *PBQPNet) engineState() *engine {
	if p.eng == nil {
		p.eng = &engine{}
	}
	return p.eng
}

// invalidateEngine drops every engine cache derived from the weights.
func (p *PBQPNet) invalidateEngine() {
	if p.eng != nil {
		p.eng.gsc.InvalidateWeights()
	}
}

// inferHeads runs the batched pass up to the raw head outputs:
// logits[b] and value[b][0] for each view, both aliasing the arena.
//
//pbqpvet:hotpath
func (p *PBQPNet) inferHeads(views []gcn.View) (logits, vals *tensor.Mat) {
	e := p.engineState()
	b := len(views)
	in := 2*p.cfg.M + 2
	if e.pooled == nil || cap(e.pooled.W) < b*in {
		//pbqpvet:ignore hotalloc scratch growth on first sight of a larger batch; steady state reuses the buffer
		e.pooled = tensor.NewMat(b, in)
	} else {
		e.pooled.R, e.pooled.C = b, in
		e.pooled.W = e.pooled.W[:b*in]
	}
	for i, view := range views {
		// Infer's rows alias the gcn scratch; poolInto consumes them
		// before the next iteration overwrites
		poolInto(e.pooled.Row(i), view, p.gcn.Infer(view, &e.gsc))
	}
	e.isc.Reset()
	t := nn.InferBatch(p.torso, e.pooled, &e.isc)
	return nn.InferBatch(p.policy, t, &e.isc), nn.InferBatch(p.value, t, &e.isc)
}

// EvaluateInto is Evaluate writing the prior into a caller-provided
// length-m vector: bit-identical results, no allocation in the steady
// state, no Forward caches touched.
//
//pbqpvet:hotpath
func (p *PBQPNet) EvaluateInto(view gcn.View, prior tensor.Vec) (value float64) {
	e := p.engineState()
	e.one[0] = view
	logits, vals := p.inferHeads(e.one[:])
	e.one[0] = nil
	if cap(e.mask) < p.cfg.M {
		e.mask = make([]bool, p.cfg.M)
	}
	nn.SoftmaxInto(prior, logits.Row(0), MaskInto(e.mask[:p.cfg.M], view))
	return vals.At(0, 0)
}

// EvaluateBatch evaluates every view in one batched pass and returns
// per-view priors (freshly allocated, caller-owned) and values. Each
// (priors[i], values[i]) is bit-identical to Evaluate(views[i]),
// whatever the batch composition.
//
//pbqpvet:hotpath
func (p *PBQPNet) EvaluateBatch(views []gcn.View) (priors []tensor.Vec, values []float64) {
	if len(views) == 0 {
		return nil, nil
	}
	e := p.engineState()
	logits, vals := p.inferHeads(views)
	m := p.cfg.M
	if cap(e.mask) < m {
		e.mask = make([]bool, m)
	}
	priors = make([]tensor.Vec, len(views))
	values = make([]float64, len(views))
	//pbqpvet:ignore hotalloc caller-owned result priors; EvaluateBatch's contract returns fresh vectors
	flat := make(tensor.Vec, len(views)*m)
	for i, view := range views {
		pr := flat[i*m : (i+1)*m]
		nn.SoftmaxInto(pr, logits.Row(i), MaskInto(e.mask[:m], view))
		priors[i] = pr
		values[i] = vals.At(i, 0)
	}
	return priors, values
}

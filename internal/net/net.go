// Package net assembles the paper's neural network f_θ (Section IV-D):
// GCN layers produce the graph embedding, which is pooled to a fixed-size
// feature vector, passed through a residual (ResNet-style) torso with
// batch normalization, and split into two heads — the P-Net (a
// fully-connected layer feeding a softmax over the m colors) and the
// V-Net (a fully-connected layer feeding tanh).
//
// The paper concatenates all n per-vertex embeddings into an m×n matrix
// before the ResNet; n varies per state, which a fixed fully-connected
// torso cannot consume, so this implementation pools instead: the
// embedding of the next vertex to color, the mean embedding of the
// remaining graph, and two scalar summaries (graph size, liberty of the
// next vertex). See DESIGN.md for the rationale.
//
// Convention: in every View passed to this package, active vertex 0 is
// the next vertex to color (reduced states always expose the uncolored
// suffix in coloring order).
package net

import (
	"bytes"
	"io"
	"math/rand"

	"pbqprl/internal/gcn"
	"pbqprl/internal/nn"
	"pbqprl/internal/tensor"
)

// Config sizes a PBQPNet.
type Config struct {
	// M is the color count (register count, plus one if spill is an
	// option); it fixes the GCN width and the policy head size.
	M int
	// GCNLayers is the number of message-passing layers (default 3).
	GCNLayers int
	// Hidden is the torso width (default 64).
	Hidden int
	// Blocks is the number of residual torso blocks (default 2).
	Blocks int
	// Seed initializes the weights deterministically.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.GCNLayers == 0 {
		c.GCNLayers = 3
	}
	if c.Hidden == 0 {
		c.Hidden = 64
	}
	if c.Blocks == 0 {
		c.Blocks = 2
	}
	return c
}

// PBQPNet is the combined policy/value network.
type PBQPNet struct {
	cfg    Config
	gcn    *gcn.GCN
	torso  nn.Module
	policy nn.Module
	value  nn.Module

	// caches from the most recent Forward
	lastView   gcn.View
	lastPooled tensor.Vec
	lastH      []tensor.Vec
	lastN      int

	// eng is the lazily built read-only inference engine (engine.go).
	// Like the Forward caches it makes the net single-goroutine.
	eng *engine
}

// New builds a PBQPNet from cfg.
func New(cfg Config) *PBQPNet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := cfg.M
	in := 2*m + 2
	block := func() nn.Module {
		return nn.NewResidual(nn.NewSequential(
			nn.NewDense(rng, cfg.Hidden, cfg.Hidden), nn.NewBatchNorm(cfg.Hidden), &nn.ReLU{},
			nn.NewDense(rng, cfg.Hidden, cfg.Hidden), nn.NewBatchNorm(cfg.Hidden),
		))
	}
	torso := []nn.Module{nn.NewDense(rng, in, cfg.Hidden), nn.NewBatchNorm(cfg.Hidden), &nn.ReLU{}}
	for i := 0; i < cfg.Blocks; i++ {
		torso = append(torso, block(), &nn.ReLU{})
	}
	return &PBQPNet{
		cfg:    cfg,
		gcn:    gcn.New(rng, m, cfg.GCNLayers),
		torso:  nn.NewSequential(torso...),
		policy: nn.NewDense(rng, cfg.Hidden, m),
		value:  nn.NewSequential(nn.NewDense(rng, cfg.Hidden, 1), &nn.Tanh{}),
	}
}

// Cfg returns the configuration the network was built with.
func (p *PBQPNet) Cfg() Config { return p.cfg }

// SetTraining switches batch-normalization statistics updates. The
// toggle brackets every weight update (selfplay trains between search
// phases), so it doubles as the engine's weight-change signal.
func (p *PBQPNet) SetTraining(training bool) {
	nn.SetTraining(p.torso, training)
	nn.SetTraining(p.policy, training)
	nn.SetTraining(p.value, training)
	p.invalidateEngine()
}

// Forward runs the network on view (active vertex 0 is the next to
// color) and returns the raw policy logits and the value in (-1, 1).
func (p *PBQPNet) Forward(view gcn.View) (logits tensor.Vec, value float64) {
	h := p.gcn.Forward(view)
	p.lastView, p.lastH, p.lastN = view, h, view.N()
	p.lastPooled = pool(view, h)
	t := p.torso.Forward(p.lastPooled)
	logits = p.policy.Forward(t)
	value = p.value.Forward(t)[0]
	return logits, value
}

// pool builds the fixed-size torso input: target embedding ‖ mean
// embedding ‖ [n scale, target liberty share].
func pool(view gcn.View, h []tensor.Vec) tensor.Vec {
	f := tensor.NewVec(2*view.M() + 2)
	poolInto(f, view, h)
	return f
}

// poolInto is pool writing into a caller-provided 2m+2 vector. The mean
// embedding accumulates the per-vertex sum first and divides once per
// element — n−1 fewer divisions and n−1 fewer roundings per element
// than dividing every term, and the same single-division mean the GCN
// message pass computes. (The old per-term x/n accumulation was the
// slower and noisier of the two; switching changes forward outputs in
// the last bits, see the checkpoint-compatibility note in DESIGN.md.)
func poolInto(f tensor.Vec, view gcn.View, h []tensor.Vec) {
	m := view.M()
	copy(f[:m], h[0])
	mean := f[m : 2*m]
	mean.Zero()
	for _, hv := range h {
		mean.AddInPlace(hv)
	}
	mean.Scale(1 / float64(len(h)))
	f[2*m] = float64(len(h)) / 100.0
	f[2*m+1] = float64(view.Vec(0).Liberty()) / float64(m)
}

// Evaluate returns the masked prior distribution p̂(·|s) over colors and
// the value estimate v̂ for the state presented by view. Colors whose
// vertex cost is infinite get probability zero.
func (p *PBQPNet) Evaluate(view gcn.View) (prior tensor.Vec, value float64) {
	logits, value := p.Forward(view)
	return nn.Softmax(logits, Mask(view)), value
}

// Mask returns the legal-color mask of the next vertex to color. A
// fully saturated vertex (every color infinite — a dead end the search
// still evaluates before detecting) yields the all-false mask, which
// nn.Softmax maps to the all-zero prior rather than NaN.
func Mask(view gcn.View) []bool {
	return MaskInto(make([]bool, len(view.Vec(0))), view)
}

// MaskInto is Mask writing into a caller-provided slice, which it
// returns.
func MaskInto(mask []bool, view gcn.View) []bool {
	for i, c := range view.Vec(0) {
		mask[i] = !c.IsInf()
	}
	return mask
}

// Backward accumulates gradients for the most recent Forward given
// dL/dlogits and dL/dvalue (pre-tanh gradients are handled internally).
func (p *PBQPNet) Backward(dLogits tensor.Vec, dValue float64) {
	gt := p.policy.Backward(dLogits)
	gv := p.value.Backward(tensor.Vec{dValue})
	gt.AddInPlace(gv)
	gf := p.torso.Backward(gt)
	m := p.cfg.M
	dH := make([]tensor.Vec, p.lastN)
	inv := 1 / float64(p.lastN)
	for v := 0; v < p.lastN; v++ {
		dH[v] = tensor.NewVec(m)
		dH[v].AddScaled(inv, gf[m:2*m])
	}
	dH[0].AddInPlace(gf[:m])
	p.gcn.Backward(p.lastView, dH)
}

// Params returns every trainable parameter.
func (p *PBQPNet) Params() []*nn.Param {
	ps := p.gcn.Params()
	for _, m := range []nn.Module{p.torso, p.policy, p.value} {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// tensors returns every parameter and state tensor in deterministic
// order, for checkpointing and cloning.
func (p *PBQPNet) tensors() []tensor.Vec {
	var ts []tensor.Vec
	for _, param := range p.gcn.Params() {
		ts = append(ts, param.W)
	}
	for _, m := range []nn.Module{p.torso, p.policy, p.value} {
		params, state := nn.Collect(m)
		ts = append(ts, params...)
		ts = append(ts, state...)
	}
	return ts
}

// Save serializes the network weights and normalization statistics.
func (p *PBQPNet) Save(w io.Writer) error { return nn.SaveTensors(w, p.tensors()) }

// Load restores weights saved by Save into an identically configured
// network.
func (p *PBQPNet) Load(r io.Reader) error {
	p.invalidateEngine()
	return nn.LoadTensors(r, p.tensors())
}

// SaveBytes serializes the network into a byte slice (the Save format),
// for embedding in checkpoints or comparing two networks exactly.
func (p *PBQPNet) SaveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// LoadBytes restores weights serialized by SaveBytes (or Save).
func (p *PBQPNet) LoadBytes(data []byte) error { return p.Load(bytes.NewReader(data)) }

// Clone returns an independent copy of the network (same architecture,
// copied weights and statistics).
func (p *PBQPNet) Clone() *PBQPNet {
	c := New(p.cfg)
	c.CopyFrom(p)
	return c
}

// CopyFrom copies all weights and statistics from src; architectures
// must match (they do whenever both nets were built from the same Config).
func (p *PBQPNet) CopyFrom(src *PBQPNet) {
	p.invalidateEngine()
	dst, s := p.tensors(), src.tensors()
	if len(dst) != len(s) {
		//pbqpvet:ignore panicfree both nets come from the same Config by construction; mismatch is a code bug
		panic("net: CopyFrom across different architectures")
	}
	for i := range dst {
		if len(dst[i]) != len(s[i]) {
			//pbqpvet:ignore panicfree both nets come from the same Config by construction; mismatch is a code bug
			panic("net: CopyFrom across different architectures")
		}
		copy(dst[i], s[i])
	}
}

package net

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/gcn"
	"pbqprl/internal/nn"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/tensor"
)

func testView(seed int64, n, m int) gcn.View {
	rng := rand.New(rand.NewSource(seed))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: n, M: m, PEdge: 0.5, PInf: 0.1})
	return gcn.NewGraphView(g)
}

func smallNet(m int) *PBQPNet {
	return New(Config{M: m, GCNLayers: 2, Hidden: 16, Blocks: 1, Seed: 1})
}

func TestEvaluateShape(t *testing.T) {
	p := smallNet(4)
	view := testView(2, 7, 4)
	prior, v := p.Evaluate(view)
	if len(prior) != 4 {
		t.Fatalf("prior length = %d", len(prior))
	}
	sum := 0.0
	for _, x := range prior {
		if x < 0 {
			t.Fatalf("negative prior %v", x)
		}
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("prior sum = %v", sum)
	}
	if v <= -1 || v >= 1 {
		t.Errorf("value = %v, want in (-1,1)", v)
	}
}

func TestMaskZeroesInfColors(t *testing.T) {
	m := 3
	g := randgraph.ErdosRenyi(rand.New(rand.NewSource(3)), randgraph.Config{N: 5, M: m, PEdge: 0.4, PInf: 0})
	g.VertexCost(g.Vertices()[0])[1] = cost.Inf
	view := gcn.NewGraphView(g)
	prior, _ := smallNet(m).Evaluate(view)
	if prior[1] != 0 {
		t.Errorf("masked color has prior %v", prior[1])
	}
	if prior[0] == 0 && prior[2] == 0 {
		t.Error("all legal colors got zero prior")
	}
}

func TestDeterminism(t *testing.T) {
	view := testView(4, 6, 3)
	a, b := smallNet(3), smallNet(3)
	pa, va := a.Evaluate(view)
	pb, vb := b.Evaluate(view)
	if va != vb {
		t.Error("same seed, different values")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed, different priors")
		}
	}
}

func TestBackwardGradCheck(t *testing.T) {
	// Full end-to-end gradient check through heads, torso, pooling and
	// GCN: loss = CE(policy, target) + (v - z)^2.
	m := 3
	view := testView(5, 5, m)
	p := smallNet(m)
	target := tensor.Vec{0.2, 0.5, 0.3}
	const z = 0.7
	loss := func() float64 {
		logits, v := p.Forward(view)
		return nn.CrossEntropy(nn.Softmax(logits, nil), target) + nn.MSE(v, z)
	}
	logits, v := p.Forward(view)
	dLogits := nn.CrossEntropyGrad(nn.Softmax(logits, nil), target, nil)
	// v = tanh(s) is produced inside the value head; Backward wants
	// dL/dv and the head applies the tanh jacobian itself.
	dValue := nn.MSEGrad(v, z)
	for _, param := range p.Params() {
		param.ZeroGrad()
	}
	p.Backward(dLogits, dValue)
	const h = 1e-5
	checked := 0
	for _, param := range p.Params() {
		for i := 0; i < len(param.W); i += 7 { // sample every 7th weight
			orig := param.W[i]
			param.W[i] = orig + h
			lp := loss()
			param.W[i] = orig - h
			lm := loss()
			param.W[i] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(want-param.G[i]) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("%s[%d]: analytic %.6g numeric %.6g", param.Name, i, param.G[i], want)
			}
			checked++
		}
	}
	if checked < 50 {
		t.Fatalf("only checked %d weights", checked)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	a := smallNet(3)
	view := testView(6, 6, 3)
	// move stats away from init
	a.SetTraining(true)
	a.Forward(view)
	a.SetTraining(false)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := New(Config{M: 3, GCNLayers: 2, Hidden: 16, Blocks: 1, Seed: 99})
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	pa, va := a.Evaluate(view)
	pb, vb := b.Evaluate(view)
	if va != vb {
		t.Error("values differ after load")
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("priors differ after load")
		}
	}
}

func TestLoadRejectsWrongShape(t *testing.T) {
	var buf bytes.Buffer
	if err := smallNet(3).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := smallNet(4).Load(&buf); err == nil {
		t.Error("Load accepted wrong architecture")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := smallNet(3)
	b := a.Clone()
	view := testView(7, 5, 3)
	pa, _ := a.Evaluate(view)
	pb, _ := b.Evaluate(view)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("clone differs")
		}
	}
	b.Params()[0].W[0] += 0.5
	pa2, _ := a.Evaluate(view)
	for i := range pa {
		if pa[i] != pa2[i] {
			t.Fatal("mutating clone changed original")
		}
	}
}

func TestCopyFromPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	smallNet(3).CopyFrom(smallNet(5))
}

func TestTrainingReducesLoss(t *testing.T) {
	// sanity: a few Adam steps on one sample must reduce the loss
	m := 3
	view := testView(8, 6, m)
	p := smallNet(m)
	target := tensor.Vec{0, 1, 0}
	const z = -0.5
	lossOf := func() float64 {
		logits, v := p.Forward(view)
		return nn.CrossEntropy(nn.Softmax(logits, nil), target) + nn.MSE(v, z)
	}
	before := lossOf()
	opt := nn.NewAdam(0.01)
	p.SetTraining(true)
	for i := 0; i < 30; i++ {
		logits, v := p.Forward(view)
		p.Backward(nn.CrossEntropyGrad(nn.Softmax(logits, nil), target, nil), nn.MSEGrad(v, z))
		opt.Step(p.Params())
	}
	p.SetTraining(false)
	after := lossOf()
	if after >= before {
		t.Errorf("loss did not decrease: %v -> %v", before, after)
	}
}

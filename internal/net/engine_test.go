package net

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/gcn"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/tensor"
)

func zeroInfView(seed int64, n, m int) gcn.View {
	rng := rand.New(rand.NewSource(seed))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: n, M: m, PEdge: 0.4, HardRatio: 0.4, PEdgeInf: 0.3,
	})
	return gcn.NewGraphView(g)
}

// vecView is a minimal edgeless View whose vertex-0 cost vector the
// test controls exactly.
type vecView struct {
	m    int
	vecs []cost.Vector
}

func (v *vecView) N() int                   { return len(v.vecs) }
func (v *vecView) M() int                   { return v.m }
func (v *vecView) Vec(i int) cost.Vector    { return v.vecs[i] }
func (v *vecView) Nbrs(int) []int           { return nil }
func (v *vecView) Mat(_, _ int) *tensor.Mat { return nil }

// TestPoolMeanSingleDivision is the golden test for the pooling fix:
// the mean channel must be the per-element sum scaled by exactly one
// division — not n per-term divisions, which cost n−1 extra roundings
// (and divides) per element and disagree with the reference in the
// last bits.
func TestPoolMeanSingleDivision(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	m := 5
	view := &vecView{m: m, vecs: []cost.Vector{cost.NewVector(m)}}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(9)
		h := make([]tensor.Vec, n)
		for v := range h {
			h[v] = make(tensor.Vec, m)
			for i := range h[v] {
				h[v][i] = rng.NormFloat64()
			}
		}
		f := pool(view, h)
		for i := 0; i < m; i++ {
			sum := 0.0
			for v := 0; v < n; v++ {
				sum += h[v][i]
			}
			want := sum * (1 / float64(n))
			if math.Float64bits(f[m+i]) != math.Float64bits(want) {
				t.Fatalf("trial %d col %d: pooled mean %x, want sum-then-scale %x",
					trial, i, math.Float64bits(f[m+i]), math.Float64bits(want))
			}
		}
	}
}

// TestEvaluateSaturatedVertex is the all-infinite-vertex regression:
// a vertex with no finite color must produce the all-zero prior and a
// finite value, not NaN probabilities.
func TestEvaluateSaturatedVertex(t *testing.T) {
	m := 4
	view := &vecView{m: m, vecs: []cost.Vector{
		cost.NewInfVector(m), // next-to-color vertex: fully saturated
		cost.NewVector(m),
	}}
	p := New(Config{M: m, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: 82})
	prior, value := p.Evaluate(view)
	for i, pr := range prior {
		if pr != 0 || math.Signbit(pr) {
			t.Errorf("prior[%d] = %v, want +0", i, pr)
		}
	}
	if math.IsNaN(value) {
		t.Error("value is NaN")
	}
	// the batched path must agree
	got := make(tensor.Vec, m)
	if v := p.EvaluateInto(view, got); math.Float64bits(v) != math.Float64bits(value) {
		t.Errorf("EvaluateInto value %v, want %v", v, value)
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(prior[i]) {
			t.Errorf("EvaluateInto prior[%d] mismatch", i)
		}
	}
}

func engineTestViews(m int) []gcn.View {
	views := []gcn.View{
		testView(91, 1, m),
		testView(92, 3, m),
		testView(93, 6, m),
		testView(94, 9, m),
		zeroInfView(95, 12, m),
		zeroInfView(96, 17, m),
		testView(97, 4, m),
	}
	return views
}

// TestEvaluateBatchBitIdenticalShuffled is the tentpole property test:
// for shuffled batches of mixed views, every (prior, value) pair out
// of the batched engine equals the scalar Evaluate bit for bit,
// independent of batch composition and of cache warmth.
func TestEvaluateBatchBitIdenticalShuffled(t *testing.T) {
	const m = 5
	p := New(Config{M: m, GCNLayers: 2, Hidden: 16, Blocks: 1, Seed: 98})
	views := engineTestViews(m)

	wantPrior := make([]tensor.Vec, len(views))
	wantValue := make([]float64, len(views))
	for i, v := range views {
		wantPrior[i], wantValue[i] = p.Evaluate(v)
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		idx := rng.Perm(len(views))
		sz := 1 + rng.Intn(len(views))
		idx = idx[:sz]
		batch := make([]gcn.View, sz)
		for i, j := range idx {
			batch[i] = views[j]
		}
		priors, values := p.EvaluateBatch(batch)
		for i, j := range idx {
			if math.Float64bits(values[i]) != math.Float64bits(wantValue[j]) {
				t.Fatalf("trial %d view %d: value %x, want %x",
					trial, j, math.Float64bits(values[i]), math.Float64bits(wantValue[j]))
			}
			for c := range priors[i] {
				if math.Float64bits(priors[i][c]) != math.Float64bits(wantPrior[j][c]) {
					t.Fatalf("trial %d view %d color %d: prior %x, want %x",
						trial, j, c, math.Float64bits(priors[i][c]), math.Float64bits(wantPrior[j][c]))
				}
			}
		}
	}
}

// TestEvaluateIntoAllocFree: the single-view engine path allocates
// nothing once the scratch is warm.
func TestEvaluateIntoAllocFree(t *testing.T) {
	const m = 5
	p := New(Config{M: m, GCNLayers: 2, Hidden: 16, Blocks: 1, Seed: 100})
	view := zeroInfView(101, 14, m)
	prior := make(tensor.Vec, m)
	p.EvaluateInto(view, prior) // warm scratch and caches
	if n := testing.AllocsPerRun(50, func() {
		p.EvaluateInto(view, prior)
	}); n != 0 {
		t.Fatalf("steady-state EvaluateInto allocates %.1f times per run", n)
	}
}

// TestEvaluateEngineAfterWeightChange: training toggles and weight
// loads must invalidate the engine's weight-derived caches.
func TestEvaluateEngineAfterWeightChange(t *testing.T) {
	const m = 4
	p := New(Config{M: m, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: 102})
	q := New(Config{M: m, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: 103})
	view := testView(104, 6, m)

	prior := make(tensor.Vec, m)
	p.EvaluateInto(view, prior) // warm caches against p's initial weights

	p.CopyFrom(q)
	wantPrior, wantValue := q.Evaluate(view)
	value := p.EvaluateInto(view, prior)
	if math.Float64bits(value) != math.Float64bits(wantValue) {
		t.Fatalf("value %x, want %x after CopyFrom", math.Float64bits(value), math.Float64bits(wantValue))
	}
	for i := range prior {
		if math.Float64bits(prior[i]) != math.Float64bits(wantPrior[i]) {
			t.Fatalf("prior[%d] stale after CopyFrom", i)
		}
	}
}

// TestBatcherConcurrentBitIdentical: many goroutines sharing one
// Batcher each get exactly the scalar results, whatever microbatches
// their requests coalesce into. Run under -race in CI.
func TestBatcherConcurrentBitIdentical(t *testing.T) {
	const m = 5
	p := New(Config{M: m, GCNLayers: 2, Hidden: 16, Blocks: 1, Seed: 105})
	views := engineTestViews(m)

	ref := p.Clone()
	wantPrior := make([]tensor.Vec, len(views))
	wantValue := make([]float64, len(views))
	for i, v := range views {
		wantPrior[i], wantValue[i] = ref.Evaluate(v)
	}

	b := NewBatcher(p, 8)
	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + w)))
			for iter := 0; iter < 30; iter++ {
				j := rng.Intn(len(views))
				prior, value := b.Evaluate(views[j])
				if math.Float64bits(value) != math.Float64bits(wantValue[j]) {
					errs <- "value mismatch"
					return
				}
				for c := range prior {
					if math.Float64bits(prior[c]) != math.Float64bits(wantPrior[j][c]) {
						errs <- "prior mismatch"
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	b.Close()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// TestBatcherContainsEvaluationPanics pins the failure isolation of
// the shared-batcher path: a view whose dimensions do not match the
// network panics on its caller's goroutine — where the portfolio's
// per-stage recovery lives — with the scalar path's message, while
// batchmates sharing the microbatch still get their bit-identical
// answers and the dispatcher keeps serving. Before this pin, one
// mismatched request killed the dispatcher goroutine and with it the
// whole server.
func TestBatcherContainsEvaluationPanics(t *testing.T) {
	const m = 5
	p := New(Config{M: m, GCNLayers: 2, Hidden: 16, Blocks: 1, Seed: 106})
	views := engineTestViews(m)
	bad := zeroInfView(9, 8, 3) // M=3 graph: the scalar path rejects it

	ref := p.Clone()
	wantPrior := make([]tensor.Vec, len(views))
	wantValue := make([]float64, len(views))
	for i, v := range views {
		wantPrior[i], wantValue[i] = ref.Evaluate(v)
	}

	b := NewBatcher(p, 8)
	defer b.Close()

	recovered := func(view gcn.View) (pv any) {
		defer func() { pv = recover() }()
		b.Evaluate(view)
		return nil
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(300 + w)))
			for iter := 0; iter < 25; iter++ {
				j := rng.Intn(len(views))
				prior, value := b.Evaluate(views[j])
				if math.Float64bits(value) != math.Float64bits(wantValue[j]) {
					errs <- "value mismatch beside panicking batchmate"
					return
				}
				for c := range prior {
					if math.Float64bits(prior[c]) != math.Float64bits(wantPrior[j][c]) {
						errs <- "prior mismatch beside panicking batchmate"
						return
					}
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 10; iter++ {
				pv := recovered(bad)
				if pv == nil {
					errs <- "mismatched view did not panic"
					return
				}
				if !strings.Contains(fmt.Sprint(pv), "dimension mismatch") {
					errs <- fmt.Sprintf("unexpected panic value: %v", pv)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}

	// the dispatcher survived: a fresh request still gets exact answers
	prior, value := b.Evaluate(views[0])
	if math.Float64bits(value) != math.Float64bits(wantValue[0]) {
		t.Fatal("value mismatch after recovered panics")
	}
	for c := range prior {
		if math.Float64bits(prior[c]) != math.Float64bits(wantPrior[0][c]) {
			t.Fatal("prior mismatch after recovered panics")
		}
	}
}

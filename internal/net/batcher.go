package net

// Batcher funnels concurrent Evaluate calls through one shared network
// without cloning it. Callers block on their own result; a single
// dispatcher goroutine drains whatever requests are pending (up to the
// microbatch cap) and serves them with one EvaluateBatch pass, so the
// network's scratch buffers are only ever touched from one goroutine
// and concurrent callers transparently coalesce into batches. Because
// EvaluateBatch is bit-identical to Evaluate per view, coalescing
// never changes any caller's result — only the throughput.

import (
	"sync"

	"pbqprl/internal/gcn"
	"pbqprl/internal/tensor"
)

// DefaultMaxBatch is the microbatch cap used when NewBatcher is given
// a non-positive one.
const DefaultMaxBatch = 32

type batchReq struct {
	view gcn.View
	resp chan batchResp
}

type batchResp struct {
	prior tensor.Vec
	value float64
	// panicked carries an evaluation panic (hostile graph, dimension
	// mismatch) back to the submitting goroutine, where Evaluate
	// re-raises it. Panics must surface on the caller — that is where
	// the portfolio's per-stage recovery lives — not on the dispatcher,
	// where one bad request would kill the shared network for everyone.
	panicked any
}

// Batcher is a concurrency-safe mcts.Evaluator over one shared
// PBQPNet. The Batcher owns the net's evaluation path: while it is
// open, nothing else may run the net.
type Batcher struct {
	net  *PBQPNet
	max  int
	reqs chan batchReq
	quit chan struct{}
	wg   sync.WaitGroup
}

// NewBatcher starts a batcher over n with the given microbatch cap.
// The caller hands the net's evaluation path to the batcher until
// Close.
func NewBatcher(n *PBQPNet, maxBatch int) *Batcher {
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	b := &Batcher{
		net:  n,
		max:  maxBatch,
		reqs: make(chan batchReq, maxBatch),
		quit: make(chan struct{}),
	}
	b.wg.Add(1)
	go b.dispatch()
	return b
}

// Evaluate submits view and blocks until its batch is served. The
// returned prior is caller-owned. Bit-identical to the scalar
// (*PBQPNet).Evaluate — including panics: an evaluation panic (e.g. a
// graph whose dimensions do not match the network) is re-raised here,
// on the caller's goroutine, exactly as the scalar call would have
// raised it. Safe for any number of concurrent callers; must not be
// called after Close.
func (b *Batcher) Evaluate(view gcn.View) (prior tensor.Vec, value float64) {
	resp := make(chan batchResp, 1)
	b.reqs <- batchReq{view: view, resp: resp}
	r := <-resp
	if r.panicked != nil {
		//pbqpvet:ignore panicfree re-raises the evaluation's own panic on the submitting goroutine, matching the scalar call
		panic(r.panicked)
	}
	return r.prior, r.value
}

// EvaluateBatch implements mcts.BatchEvaluator on top of the queue:
// the views are submitted as individual requests (so they coalesce
// with other callers' work in the dispatcher) and collected in order.
// Per-view results are bit-identical to Evaluate.
func (b *Batcher) EvaluateBatch(views []gcn.View) (priors []tensor.Vec, values []float64) {
	resps := make([]chan batchResp, len(views))
	for i, v := range views {
		resps[i] = make(chan batchResp, 1)
		b.reqs <- batchReq{view: v, resp: resps[i]}
	}
	priors = make([]tensor.Vec, len(views))
	values = make([]float64, len(views))
	var panicked any
	for i, ch := range resps {
		// collect every response before re-raising a panic, so no
		// dispatcher send is left blocking on an abandoned channel
		r := <-ch
		if r.panicked != nil && panicked == nil {
			panicked = r.panicked
		}
		priors[i], values[i] = r.prior, r.value
	}
	if panicked != nil {
		//pbqpvet:ignore panicfree re-raises the evaluation's own panic on the submitting goroutine, matching the scalar call
		panic(panicked)
	}
	return priors, values
}

// Close stops the dispatcher after serving every request already
// submitted. Callers must have stopped submitting (the server drains
// its workers first).
func (b *Batcher) Close() {
	close(b.quit)
	b.wg.Wait()
}

// eval runs one EvaluateBatch pass, converting a panic into a value so
// the dispatcher survives hostile or mismatched views.
func (b *Batcher) eval(views []gcn.View) (priors []tensor.Vec, values []float64, panicked any) {
	defer func() {
		if r := recover(); r != nil {
			priors, values, panicked = nil, nil, r
		}
	}()
	priors, values = b.net.EvaluateBatch(views)
	return priors, values, nil
}

func (b *Batcher) dispatch() {
	defer b.wg.Done()
	pend := make([]batchReq, 0, b.max)
	views := make([]gcn.View, 0, b.max)
	serve := func() {
		priors, values, pv := b.eval(views)
		if pv == nil {
			for i, r := range pend {
				r.resp <- batchResp{prior: priors[i], value: values[i]}
			}
		} else {
			// One view poisoned the whole pass. Replay each view alone
			// so its batchmates still get their answers; only the
			// offending submitters see the panic, each on its own
			// goroutine. Bit-identity makes the replay exact, and the
			// engine's caches only ever hold fully computed entries, so
			// scratch state stays sound across a recovered panic.
			for i, r := range pend {
				p1, v1, pv1 := b.eval(views[i : i+1])
				if pv1 != nil {
					r.resp <- batchResp{panicked: pv1}
				} else {
					r.resp <- batchResp{prior: p1[0], value: v1[0]}
				}
			}
		}
		pend, views = pend[:0], views[:0]
	}
	for {
		select {
		case r := <-b.reqs:
			pend = append(pend, r)
			views = append(views, r.view)
			// coalesce whatever else is already waiting
		drain:
			for len(pend) < b.max {
				select {
				case r := <-b.reqs:
					pend = append(pend, r)
					views = append(views, r.view)
				default:
					break drain
				}
			}
			serve()
		case <-b.quit:
			// serve stragglers that were enqueued before Close
			for {
				select {
				case r := <-b.reqs:
					pend = append(pend, r)
					views = append(views, r.view)
				default:
					if len(pend) > 0 {
						serve()
					}
					return
				}
			}
		}
	}
}

// Worker pool for parallel self-play: episodes (and arena games) of one
// iteration are independent given their pre-drawn seeds and the frozen
// iteration networks, so they fan out over a fixed pool of goroutines
// and merge back in episode order. Every source of randomness a job
// sees is derived from its own seed, and every job runs on bit-exact
// clones of the networks, so a parallel run is bit-identical to a
// sequential one regardless of scheduling.
package selfplay

import (
	"context"
	"sync"

	"pbqprl/internal/net"
)

// runParallel fans jobs 0..n-1 out over a pool of `workers` goroutines,
// each holding its own clone pair of the trainer's networks
// (net.PBQPNet.Forward caches intermediate activations and is not
// goroutine-safe). Dispatching checks ctx at every job boundary and
// stops once it is cancelled; in-flight jobs always finish, exactly
// like the sequential loop finishes its in-flight episode. The results
// of the dispatched prefix are returned in job order along with the
// prefix length.
//
// Jobs must depend only on their index and the networks they are
// handed — never on dispatch timing — which is what keeps a parallel
// run bit-identical to a sequential one.
func runParallel[R any](ctx context.Context, workers, n int, clone func() (cur, best *net.PBQPNet), job func(cur, best *net.PBQPNet, i int) R) ([]R, int) {
	if n <= 0 {
		return nil, 0
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	type indexed struct {
		i int
		r R
	}
	// fully buffered so a worker never blocks publishing a result while
	// the dispatcher is blocked handing out the next job
	results := make(chan indexed, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cur, best := clone()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results <- indexed{i, job(cur, best, i)}
			}
		}()
	}
	dispatched := 0
dispatch:
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		select {
		case jobs <- i:
			dispatched++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	close(results)
	out := make([]R, dispatched)
	for r := range results {
		out[r.i] = r.r
	}
	return out, dispatched
}

// Package selfplay implements the paper's training pipeline (Section
// IV-A): episodes of the PBQP game played against the previously best
// network, iterations of a fixed number of episodes, a bounded replay
// queue of training tuples, minibatch Adam training with the combined
// loss L = (v − v̂)² − pᵀ log p̂ + c‖θ‖², and arena gating — the new
// network replaces the best one only if it wins more than half of a set
// of fresh evaluation games.
package selfplay

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime/debug"

	"pbqprl/internal/cost"
	"pbqprl/internal/game"
	"pbqprl/internal/gcn"
	"pbqprl/internal/mcts"
	"pbqprl/internal/net"
	"pbqprl/internal/nn"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/rl"
	"pbqprl/internal/tensor"
)

// Sample is one training tuple (s, p, v): a frozen reduced-graph state,
// the MCTS policy label, and the final episode reward label.
type Sample struct {
	View gcn.View
	Pi   tensor.Vec
	Z    float64
}

// Config tunes the trainer. Zero values take the listed defaults, which
// are laptop-scale versions of the paper's hyperparameters.
type Config struct {
	// EpisodesPerIter is the number of self-play episodes per
	// iteration (paper: 100).
	EpisodesPerIter int
	// KTrain is the MCTS simulation count per move during training
	// runs (paper: 50 or 100).
	KTrain int
	// ReplayCap bounds the replay queue (paper: 200,000 tuples).
	ReplayCap int
	// BatchSize is the Adam minibatch size (paper: 64).
	BatchSize int
	// TrainSteps is the number of minibatch steps per iteration
	// (default: 2 × EpisodesPerIter).
	TrainSteps int
	// LR is the Adam learning rate (default 1e-3).
	LR float64
	// L2 is the c of the loss's regularization term (default 1e-4).
	L2 float64
	// ArenaGames and ArenaWins gate network promotion: the new
	// network is kept if it wins strictly more than ArenaWins of
	// ArenaGames fresh games (paper: more than 5 of 10).
	ArenaGames int
	ArenaWins  int
	// PromoteOnTie additionally keeps the candidate whenever it wins
	// at least as many arena games as it loses. In the zero/infinity
	// ATE regime most games tie (both players reach cost zero or both
	// dead-end), so the paper's absolute-win gate would discard every
	// iteration's learning at laptop scale; this rule keeps the gate
	// meaningful for decisive games without starving training.
	PromoteOnTie bool
	// RootNoise mixes Dirichlet noise into root priors during
	// training runs (AlphaZero's self-play exploration); NoiseAlpha
	// and NoiseFrac default to 0.5 and 0.25 when enabled.
	RootNoise  bool
	NoiseAlpha float64
	NoiseFrac  float64
	// Order is the coloring order for training games.
	Order game.Order
	// MCTS configures the search constants.
	MCTS mcts.Config
	// Workers is the number of goroutines playing self-play episodes
	// (and arena games) concurrently, each on its own clone of the
	// networks; 0 or 1 plays sequentially. Every episode's randomness
	// comes from a seed pre-drawn from the master stream and results
	// are merged in episode order, so any worker count — including
	// resuming a checkpoint under a different one — trains
	// bit-identically. With Workers > 1, Generate must be safe for
	// concurrent calls (derive all randomness from the rng it is
	// handed).
	Workers int
	// Episodes optionally delegates the episode phase of each
	// iteration to an external backend — internal/dist's coordinator
	// hands the batch out to remote workers lease by lease. Nil plays
	// episodes in process on the Workers pool. See EpisodeBackend for
	// the contract that keeps a backend-driven run bit-identical to a
	// sequential one. Arena games always run in process.
	Episodes EpisodeBackend
	// Generate produces the episode graph distribution (paper:
	// Erdős–Rényi with normally distributed n). Required.
	Generate func(rng *rand.Rand) *pbqp.Graph
	// Seed makes training reproducible.
	Seed int64
	// Logf receives warnings — a skipped (panicked) episode with its
	// reproduction seed, for example. Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.EpisodesPerIter == 0 {
		c.EpisodesPerIter = 100
	}
	if c.KTrain == 0 {
		c.KTrain = 50
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 200_000
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.TrainSteps == 0 {
		c.TrainSteps = 2 * c.EpisodesPerIter
	}
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if c.LR == 0 {
		c.LR = 1e-3
	}
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.ArenaGames == 0 {
		c.ArenaGames = 10
	}
	if c.ArenaWins == 0 {
		c.ArenaWins = c.ArenaGames / 2
	}
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if c.NoiseAlpha == 0 {
		c.NoiseAlpha = 0.5
	}
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.25
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	return c
}

// EpisodeResult is the outcome of one self-play episode: the reward of
// the training run against the best player, the collected training
// tuples (Z still unset — the merge stamps it), and the recovered
// panic, if any, that made the episode unusable (the merge counts it
// as skipped).
type EpisodeResult struct {
	Z       float64
	Samples []Sample
	Err     error
}

// EpisodeBatch is the unit of work handed to an EpisodeBackend: the
// seeds of episodes [Start, Start+len(Seeds)) of the iteration, plus
// the two networks frozen for its duration. Seed i fully determines
// episode Start+i; the backend may play the episodes anywhere, in any
// order, on bit-exact copies of the networks (RunEpisode is the
// reference implementation).
type EpisodeBatch struct {
	Iteration int
	Start     int
	Seeds     []int64
	Cur, Best *net.PBQPNet
}

// EpisodeBackend runs an episode batch on behalf of the trainer. It
// must return results for a prefix of the batch in episode order: all
// of them with a nil error (batch complete), or the committed prefix
// plus the reason dispatch stopped — typically ctx.Err(). The trainer
// merges the prefix and rewinds its master RNG over the remainder,
// exactly as the in-process pool does on cancellation, so the run
// resumes bit-identically however the batch was scheduled or where it
// was cut short.
type EpisodeBackend func(ctx context.Context, batch EpisodeBatch) ([]EpisodeResult, error)

// IterStats summarizes one training iteration.
type IterStats struct {
	Iteration   int
	Episodes    int
	Wins        int // training-run wins against the best player
	Losses      int
	Ties        int
	Skipped     int // episodes abandoned after a panic
	Samples     int // tuples collected this iteration
	ReplaySize  int
	AvgLoss     float64
	ArenaWins   int
	ArenaLosses int
	Promoted    bool // whether the new network replaced the best one
}

// String renders the stats on one line.
func (s IterStats) String() string {
	line := fmt.Sprintf("iter %d: episodes=%d W/L/T=%d/%d/%d samples=%d replay=%d loss=%.4f arena=%d-%d promoted=%v",
		s.Iteration, s.Episodes, s.Wins, s.Losses, s.Ties, s.Samples, s.ReplaySize, s.AvgLoss, s.ArenaWins, s.ArenaLosses, s.Promoted)
	if s.Skipped > 0 {
		line += fmt.Sprintf(" skipped=%d", s.Skipped)
	}
	return line
}

// Trainer runs the self-play loop.
type Trainer struct {
	cfg    Config
	cur    *net.PBQPNet // θ, the network being trained
	best   *net.PBQPNet // θ*, the best player so far
	replay replayQueue
	opt    *nn.Adam
	src    *pcgSource // serializable master RNG stream
	rng    *rand.Rand
	iter   int // iterations started (including an interrupted one)

	// pending holds the partial stats of an iteration interrupted by
	// context cancellation; RunIteration resumes it at pendingEpisode.
	// Both survive checkpointing, so a resumed run picks up exactly
	// where the interrupted one stopped.
	pending        *IterStats
	pendingEpisode int
}

// NewTrainer creates a trainer around an initial network, which is
// cloned for the best player. It returns an error for an invalid
// configuration (Generate missing, negative sizes).
func NewTrainer(n *net.PBQPNet, cfg Config) (*Trainer, error) {
	if n == nil {
		return nil, errors.New("selfplay: network is required")
	}
	if cfg.Generate == nil {
		return nil, errors.New("selfplay: Config.Generate is required")
	}
	if cfg.EpisodesPerIter < 0 || cfg.KTrain < 0 || cfg.ReplayCap < 0 ||
		cfg.BatchSize < 0 || cfg.TrainSteps < 0 || cfg.ArenaGames < 0 || cfg.Workers < 0 {
		return nil, fmt.Errorf("selfplay: negative size in config %+v", cfg)
	}
	if cfg.LR < 0 || cfg.L2 < 0 {
		return nil, fmt.Errorf("selfplay: negative learning rate or L2 weight")
	}
	cfg = cfg.withDefaults()
	src := newPCGSource(cfg.Seed)
	return &Trainer{
		cfg:    cfg,
		cur:    n,
		best:   n.Clone(),
		replay: newReplayQueue(cfg.ReplayCap),
		opt:    nn.NewAdam(cfg.LR),
		src:    src,
		rng:    rand.New(src),
	}, nil
}

// New creates a trainer like NewTrainer but panics on an invalid
// configuration; it is a convenience for tests and examples.
func New(n *net.PBQPNet, cfg Config) *Trainer {
	t, err := NewTrainer(n, cfg)
	if err != nil {
		//pbqpvet:ignore panicfree documented panicking twin of NewTrainer, like regexp.MustCompile vs Compile
		panic(err.Error())
	}
	return t
}

// Current returns the network being trained.
func (t *Trainer) Current() *net.PBQPNet { return t.cur }

// Best returns the best player's network.
func (t *Trainer) Best() *net.PBQPNet { return t.best }

// ReplaySize returns the number of tuples in the replay queue.
func (t *Trainer) ReplaySize() int { return t.replay.len() }

// Iter returns the number of completed iterations; an interrupted
// iteration does not count until it finishes.
func (t *Trainer) Iter() int {
	if t.pending != nil {
		return t.iter - 1
	}
	return t.iter
}

// Interrupted reports whether the trainer holds a partially finished
// iteration that the next RunIteration call will resume.
func (t *Trainer) Interrupted() bool { return t.pending != nil }

func (t *Trainer) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// RunIteration executes one iteration: EpisodesPerIter self-play
// episodes, TrainSteps minibatch updates, and the arena gate.
//
// Cancelling ctx stops the iteration at the next episode boundary — the
// in-flight episode always finishes — and returns the partial stats
// with ctx's error; the trainer remembers its position, so the next
// RunIteration call (possibly after a checkpoint round trip) resumes
// the same iteration at the same episode with identical results. An
// episode that panics is logged with its reproduction seed and skipped
// rather than aborting the run. A non-context error (training
// divergence: NaN/Inf loss or weights) poisons the trainer; callers
// must not checkpoint after one.
func (t *Trainer) RunIteration(ctx context.Context) (IterStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats IterStats
	start := 0
	if t.pending != nil {
		stats, start = *t.pending, t.pendingEpisode
		// clear both fields: a stale pendingEpisode is ignored while
		// pending is nil, but it would leak into EncodeState and break
		// byte-identity with an uninterrupted run
		t.pending, t.pendingEpisode = nil, 0
	} else {
		t.iter++
		stats = IterStats{Iteration: t.iter, Episodes: t.cfg.EpisodesPerIter}
	}
	if t.cfg.Episodes != nil || t.cfg.Workers > 1 {
		next, err := t.runEpisodesBatch(ctx, start, &stats)
		if err != nil {
			snap := stats
			t.pending, t.pendingEpisode = &snap, next
			return stats, err
		}
	} else {
		for e := start; e < t.cfg.EpisodesPerIter; e++ {
			if err := ctx.Err(); err != nil {
				snap := stats
				t.pending, t.pendingEpisode = &snap, e
				return stats, err
			}
			epSeed := t.rng.Int63()
			z, samples, err := runEpisode(&t.cfg, t.cur, t.best, epSeed)
			t.recordEpisode(&stats, e, z, samples, err)
		}
	}
	stats.ReplaySize = t.replay.len()
	avg, err := t.train()
	stats.AvgLoss = avg
	if err != nil {
		return stats, err
	}
	wins, losses := t.arena()
	stats.ArenaWins = wins
	stats.ArenaLosses = losses
	if wins > t.cfg.ArenaWins || (t.cfg.PromoteOnTie && wins >= losses) {
		stats.Promoted = true
		t.best.CopyFrom(t.cur)
	} else {
		// discard the candidate, as the paper does
		t.cur.CopyFrom(t.best)
	}
	return stats, nil
}

// recordEpisode merges the outcome of episode e into the iteration
// stats and the replay queue. Both the sequential loop and the parallel
// merge call it in strict episode order, which is what keeps the replay
// contents and stats independent of the worker count.
func (t *Trainer) recordEpisode(stats *IterStats, e int, z float64, samples []Sample, err error) {
	if err != nil {
		stats.Skipped++
		t.logf("selfplay: iteration %d episode %d skipped: %v", stats.Iteration, e, err)
		return
	}
	switch {
	case z > 0:
		stats.Wins++
	case z < 0:
		stats.Losses++
	default:
		stats.Ties++
	}
	for i := range samples {
		samples[i].Z = z
	}
	t.enqueue(samples)
	stats.Samples += len(samples)
}

// runEpisodesBatch plays episodes [start, EpisodesPerIter) — on the
// in-process worker pool, or through the external Episodes backend —
// and merges the results in episode order. All episode seeds are
// pre-drawn from the master stream in episode order, so a completed
// batch leaves the stream exactly where the sequential loop would. On
// cancellation (or a backend failure), the committed results cover an
// in-order prefix of the batch and the stream is rewound to exactly
// that prefix's seeds — so the returned resume position carries the
// same pendingEpisode semantics as the sequential loop and a resumed
// run stays bit-identical. The returned error is nil only when the
// batch completed.
func (t *Trainer) runEpisodesBatch(ctx context.Context, start int, stats *IterStats) (int, error) {
	total := t.cfg.EpisodesPerIter
	if start >= total {
		return total, nil
	}
	pre, err := t.src.state()
	if err != nil {
		// the PCG state marshal cannot fail; losing it silently would
		// forfeit the rewind guarantee, so fail loudly
		//pbqpvet:ignore panicfree PCG state marshal cannot fail; losing it silently would forfeit the bit-identical resume guarantee
		panic("selfplay: snapshot master RNG: " + err.Error())
	}
	seeds := make([]int64, total-start)
	for i := range seeds {
		seeds[i] = t.rng.Int63()
	}
	var results []EpisodeResult
	var batchErr error
	if t.cfg.Episodes != nil {
		results, batchErr = t.cfg.Episodes(ctx, EpisodeBatch{
			Iteration: stats.Iteration, Start: start, Seeds: seeds,
			Cur: t.cur, Best: t.best,
		})
		if len(results) > len(seeds) {
			results = results[:len(seeds)]
		}
		if batchErr == nil && len(results) < len(seeds) {
			batchErr = fmt.Errorf("selfplay: episode backend returned %d of %d results without an error", len(results), len(seeds))
		}
	} else {
		all, dispatched := runParallel(ctx, t.cfg.Workers, len(seeds),
			func() (cur, best *net.PBQPNet) { return t.cur.Clone(), t.best.Clone() },
			func(cur, best *net.PBQPNet, i int) EpisodeResult {
				z, samples, err := runEpisode(&t.cfg, cur, best, seeds[i])
				return EpisodeResult{Z: z, Samples: samples, Err: err}
			})
		results = all[:dispatched]
		if dispatched < len(seeds) {
			batchErr = ctx.Err()
		}
	}
	for i, r := range results {
		t.recordEpisode(stats, start+i, r.Z, r.Samples, r.Err)
	}
	if batchErr == nil {
		return total, nil
	}
	// interrupted: rewind the master stream to exactly the seeds of the
	// committed prefix, as if the sequential loop had stopped here
	if err := t.src.setState(pre); err != nil {
		//pbqpvet:ignore panicfree PCG state rewind cannot fail; losing it silently would forfeit the bit-identical resume guarantee
		panic("selfplay: rewind master RNG: " + err.Error())
	}
	for range results {
		t.rng.Int63()
	}
	return start + len(results), batchErr
}

// RunEpisode plays one self-play episode exactly as the trainer's own
// loops do — it is the reference implementation an EpisodeBackend's
// remote workers run. Zero Config fields take the same defaults the
// trainer applies, so a worker handed the coordinator's (pre-default)
// Config produces bit-identical episodes. cur and best are mutated
// only through their inference caches; they must not be shared across
// concurrent calls.
func RunEpisode(cfg Config, cur, best *net.PBQPNet, seed int64) EpisodeResult {
	cfg = cfg.withDefaults()
	z, samples, err := runEpisode(&cfg, cur, best, seed)
	return EpisodeResult{Z: z, Samples: samples, Err: err}
}

// runEpisode plays one self-play episode pair (best, then current, on
// the same graph) seeded by epSeed, which fully determines the episode:
// a panic anywhere inside — graph generation, MCTS, the network — is
// recovered into an error carrying epSeed so the failure is
// reproducible offline, and the master RNG stream is unaffected beyond
// the single draw that produced epSeed. It runs on the trainer's own
// networks in the sequential path and on per-worker clones in the
// parallel one.
func runEpisode(cfg *Config, cur, best *net.PBQPNet, epSeed int64) (z float64, samples []Sample, err error) {
	defer func() {
		if r := recover(); r != nil {
			z, samples = 0, nil
			err = fmt.Errorf("episode panic (graph seed %d): %v\n%s", epSeed, r, debug.Stack())
		}
	}()
	rng := rand.New(rand.NewSource(epSeed))
	g := cfg.Generate(rng)
	order := game.MakeOrder(g, cfg.Order, rng)
	baseCost, _ := playEpisode(cfg, rng, best, g, order, false)
	curCost, samples := playEpisode(cfg, rng, cur, g, order, true)
	return game.CompareCosts(curCost, baseCost), samples, nil
}

// playEpisode colors g with n, using sampling from the MCTS policy for
// training runs (collect) and greedy argmax otherwise. It returns the
// achieved cost (infinite on a dead end) and, for training runs, the
// collected tuples (with Z still unset).
func playEpisode(cfg *Config, rng *rand.Rand, n *net.PBQPNet, g *pbqp.Graph, order []int, collect bool) (cost.Cost, []Sample) {
	st := game.New(g, order)
	tree := mcts.New(n, g.M(), cfg.MCTS)
	var samples []Sample
	for !st.Done() {
		if st.DeadEnd() {
			return cost.Inf, samples
		}
		tree.Run(st, cfg.KTrain)
		if collect && cfg.RootNoise {
			tree.AddRootNoise(rng, cfg.NoiseAlpha, cfg.NoiseFrac)
			tree.Run(st, cfg.KTrain/2+1)
		}
		pi := tree.Policy()
		var a int
		if collect {
			samples = append(samples, Sample{View: st.Snapshot(), Pi: pi.Clone()})
			a = samplePolicy(rng, pi)
		} else {
			a = rl.Argmax(pi)
		}
		if a < 0 {
			return cost.Inf, samples
		}
		st.Play(a)
		tree.Advance(a)
	}
	return st.Acc(), samples
}

// samplePolicy draws an action from the distribution pi; it returns -1
// (treated as a dead end by the caller) if pi is all zero or contains a
// non-finite entry. Without the NaN check, a single NaN would make the
// running total NaN, every x < 0 comparison false, and the function
// would silently fall through to Argmax on a poisoned distribution.
func samplePolicy(rng *rand.Rand, pi tensor.Vec) int {
	total := 0.0
	for _, p := range pi {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			return -1
		}
		total += p
	}
	//pbqpvet:ignore floatcmp policy weights are non-negative; an exactly-zero total means no legal action
	if total == 0 {
		return -1
	}
	x := rng.Float64() * total
	for a, p := range pi {
		x -= p
		if x < 0 {
			return a
		}
	}
	return rl.Argmax(pi)
}

// enqueue appends samples to the replay queue, evicting the oldest
// tuples beyond the capacity (the queue tracks ReplayCap in case the
// caller adjusted it between iterations).
func (t *Trainer) enqueue(samples []Sample) {
	t.replay.setCap(t.cfg.ReplayCap)
	for _, s := range samples {
		t.replay.push(s)
	}
}

// train runs TrainSteps Adam minibatch updates over the replay queue
// and returns the average per-sample loss (including the L2 term). It
// reports an error when training has diverged — a non-finite loss or
// non-finite weights — so the caller can abort before a poisoned
// network reaches a checkpoint or the promotion gate.
func (t *Trainer) train() (float64, error) {
	if t.replay.len() == 0 {
		return 0, t.checkFinite()
	}
	t.cur.SetTraining(true)
	defer t.cur.SetTraining(false)
	totalLoss, count := 0.0, 0
	for step := 0; step < t.cfg.TrainSteps; step++ {
		for b := 0; b < t.cfg.BatchSize; b++ {
			s := t.replay.at(t.rng.Intn(t.replay.len()))
			logits, v := t.cur.Forward(s.View)
			mask := net.Mask(s.View)
			p := nn.Softmax(logits, mask)
			totalLoss += nn.CrossEntropy(p, s.Pi) + nn.MSE(v, s.Z)
			count++
			dLogits := nn.CrossEntropyGrad(p, s.Pi, mask)
			dLogits.Scale(1 / float64(t.cfg.BatchSize))
			t.cur.Backward(dLogits, nn.MSEGrad(v, s.Z)/float64(t.cfg.BatchSize))
		}
		nn.AddL2Grad(t.cur.Params(), t.cfg.L2)
		t.opt.Step(t.cur.Params())
	}
	avg := totalLoss/float64(count) + nn.L2Penalty(t.cur.Params(), t.cfg.L2)
	if math.IsNaN(avg) || math.IsInf(avg, 0) {
		return avg, fmt.Errorf("selfplay: training diverged at iteration %d: loss = %v", t.iter, avg)
	}
	return avg, t.checkFinite()
}

// checkFinite scans the current network for NaN/Inf weights.
func (t *Trainer) checkFinite() error {
	for _, p := range t.cur.Params() {
		for _, w := range p.W {
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("selfplay: training diverged at iteration %d: parameter %q has non-finite weights", t.iter, p.Name)
			}
		}
	}
	return nil
}

// arena plays ArenaGames fresh graphs with both networks (greedy
// inference runs) and returns how many the current network wins and
// loses outright. Like the episode loop, each game is fully determined
// by a seed pre-drawn from the master stream, so the games parallelize
// over the worker pool without perturbing the stream.
func (t *Trainer) arena() (wins, losses int) {
	seeds := make([]int64, t.cfg.ArenaGames)
	for i := range seeds {
		seeds[i] = t.rng.Int63()
	}
	var cmps []int
	if t.cfg.Workers > 1 {
		cmps, _ = runParallel(context.Background(), t.cfg.Workers, len(seeds),
			func() (cur, best *net.PBQPNet) { return t.cur.Clone(), t.best.Clone() },
			func(cur, best *net.PBQPNet, i int) int { return arenaGame(&t.cfg, cur, best, seeds[i]) })
	} else {
		for _, seed := range seeds {
			cmps = append(cmps, arenaGame(&t.cfg, t.cur, t.best, seed))
		}
	}
	for _, c := range cmps {
		switch c {
		case 1:
			wins++
		case -1:
			losses++
		}
	}
	return wins, losses
}

// arenaGame plays one evaluation game, fully determined by seed, and
// returns the comparison of the current network's cost against the best
// network's (+1 current wins, -1 loses, 0 tie).
func arenaGame(cfg *Config, cur, best *net.PBQPNet, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	g := cfg.Generate(rng)
	order := game.MakeOrder(g, cfg.Order, rng)
	curCost, _ := playEpisode(cfg, rng, cur, g, order, false)
	bestCost, _ := playEpisode(cfg, rng, best, g, order, false)
	return int(game.CompareCosts(curCost, bestCost))
}

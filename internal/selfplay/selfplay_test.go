package selfplay

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pbqprl/internal/game"
	"pbqprl/internal/gcn"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/tensor"
)

func tinyTrainer(t *testing.T, seed int64) *Trainer {
	t.Helper()
	m := 4
	n := net.New(net.Config{M: m, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: seed})
	return New(n, Config{
		EpisodesPerIter: 4,
		KTrain:          8,
		ReplayCap:       500,
		BatchSize:       8,
		TrainSteps:      4,
		ArenaGames:      4,
		ArenaWins:       2,
		Order:           game.OrderFixed,
		Seed:            seed,
		Generate: func(rng *rand.Rand) *pbqp.Graph {
			return randgraph.ErdosRenyi(rng, randgraph.Config{
				N: 6 + rng.Intn(4), M: m, PEdge: 0.4, PInf: 0.05,
			})
		},
	})
}

func TestRunIterationCollectsAndTrains(t *testing.T) {
	tr := tinyTrainer(t, 1)
	stats, err := tr.RunIteration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iteration != 1 || stats.Episodes != 4 {
		t.Errorf("stats header wrong: %+v", stats)
	}
	if stats.Samples == 0 || tr.ReplaySize() == 0 {
		t.Error("no samples collected")
	}
	if stats.Wins+stats.Losses+stats.Ties != stats.Episodes {
		t.Errorf("W/L/T does not add up: %+v", stats)
	}
	if stats.AvgLoss <= 0 {
		t.Errorf("avg loss = %v", stats.AvgLoss)
	}
	if len(stats.String()) == 0 {
		t.Error("empty stats string")
	}
}

func TestSamplesHaveConsistentLabels(t *testing.T) {
	tr := tinyTrainer(t, 2)
	tr.RunIteration(context.Background())
	for i := 0; i < tr.replay.len(); i++ {
		s := tr.replay.at(i)
		if s.Z != 1 && s.Z != -1 && s.Z != 0 {
			t.Fatalf("sample %d has reward %v", i, s.Z)
		}
		sum := 0.0
		for _, p := range s.Pi {
			if p < 0 {
				t.Fatalf("sample %d has negative policy", i)
			}
			sum += p
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("sample %d policy sums to %v", i, sum)
		}
		if s.View.N() == 0 {
			t.Fatalf("sample %d has empty view", i)
		}
	}
}

func TestReplayCapEvictsOldest(t *testing.T) {
	tr := tinyTrainer(t, 3)
	tr.cfg.ReplayCap = 10
	tr.RunIteration(context.Background())
	if got := tr.ReplaySize(); got > 10 {
		t.Errorf("replay size = %d, cap 10", got)
	}
}

func TestPromotionGate(t *testing.T) {
	tr := tinyTrainer(t, 4)
	stats, err := tr.RunIteration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// whatever the outcome, cur and best must agree afterwards:
	// promoted -> best := cur; rejected -> cur := best.
	view := sampleView(t)
	pc, vc := tr.Current().Evaluate(view)
	pb, vb := tr.Best().Evaluate(view)
	if vc != vb {
		t.Errorf("cur and best diverge after gate (promoted=%v)", stats.Promoted)
	}
	for i := range pc {
		if pc[i] != pb[i] {
			t.Fatalf("cur and best priors diverge after gate")
		}
	}
}

func sampleView(t *testing.T) gcn.View {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 5, M: 4, PEdge: 0.5, PInf: 0.05})
	st := game.New(g, game.MakeOrder(g, game.OrderFixed, nil))
	return st.Snapshot()
}

func TestSamplePolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pi := tensor.Vec{0, 0.7, 0.3}
	counts := [3]int{}
	for i := 0; i < 3000; i++ {
		a := samplePolicy(rng, pi)
		if a < 0 || a > 2 {
			t.Fatalf("sampled %d", a)
		}
		counts[a]++
	}
	if counts[0] != 0 {
		t.Error("zero-probability action sampled")
	}
	if counts[1] < 1800 || counts[1] > 2400 {
		t.Errorf("action 1 sampled %d/3000, want ~2100", counts[1])
	}
	if samplePolicy(rng, tensor.Vec{0, 0}) != -1 {
		t.Error("all-zero policy should return -1")
	}
}

func TestDeterministicTraining(t *testing.T) {
	a, b := tinyTrainer(t, 7), tinyTrainer(t, 7)
	sa, errA := a.RunIteration(context.Background())
	sb, errB := b.RunIteration(context.Background())
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if sa != sb {
		t.Errorf("same seed diverged: %+v vs %+v", sa, sb)
	}
}

func TestMissingGeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(net.New(net.Config{M: 2, Seed: 1}), Config{})
}

func TestSamplePolicyRejectsNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if a := samplePolicy(rng, tensor.Vec{0.2, math.NaN(), 0.5}); a != -1 {
		t.Errorf("NaN policy sampled action %d, want -1", a)
	}
	if a := samplePolicy(rng, tensor.Vec{0.2, math.Inf(1), 0.5}); a != -1 {
		t.Errorf("Inf policy sampled action %d, want -1", a)
	}
}

func TestNewTrainerValidates(t *testing.T) {
	n := net.New(net.Config{M: 2, Seed: 1})
	if _, err := NewTrainer(n, Config{}); err == nil {
		t.Error("missing Generate accepted")
	}
	if _, err := NewTrainer(nil, Config{Generate: func(*rand.Rand) *pbqp.Graph { return nil }}); err == nil {
		t.Error("nil network accepted")
	}
	gen := func(rng *rand.Rand) *pbqp.Graph {
		return randgraph.ErdosRenyi(rng, randgraph.Config{N: 4, M: 2, PEdge: 0.4})
	}
	if _, err := NewTrainer(n, Config{Generate: gen, EpisodesPerIter: -1}); err == nil {
		t.Error("negative episode count accepted")
	}
	if _, err := NewTrainer(n, Config{Generate: gen, LR: -0.1}); err == nil {
		t.Error("negative learning rate accepted")
	}
	if _, err := NewTrainer(n, Config{Generate: gen}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPanickingEpisodeIsIsolated(t *testing.T) {
	tr := tinyTrainer(t, 11)
	var warnings []string
	tr.cfg.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	inner := tr.cfg.Generate
	calls := 0
	tr.cfg.Generate = func(rng *rand.Rand) *pbqp.Graph {
		calls++
		if calls == 2 {
			panic("synthetic generator failure")
		}
		return inner(rng)
	}
	stats, err := tr.RunIteration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 1 {
		t.Errorf("Skipped = %d, want 1", stats.Skipped)
	}
	if got := stats.Wins + stats.Losses + stats.Ties; got != stats.Episodes-1 {
		t.Errorf("W+L+T = %d, want %d", got, stats.Episodes-1)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "graph seed") {
		t.Errorf("expected one skip warning naming the graph seed, got %v", warnings)
	}
	if !strings.Contains(stats.String(), "skipped=1") {
		t.Errorf("stats string %q does not report the skip", stats)
	}
	// the run must remain usable afterwards
	if _, err := tr.RunIteration(context.Background()); err != nil {
		t.Fatalf("iteration after a skipped episode failed: %v", err)
	}
}

func TestDivergenceDetection(t *testing.T) {
	tr := tinyTrainer(t, 12)
	if _, err := tr.RunIteration(context.Background()); err != nil {
		t.Fatal(err)
	}
	tr.cur.Params()[0].W[0] = math.NaN()
	_, err := tr.RunIteration(context.Background())
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("poisoned network not detected: err = %v", err)
	}
	if _, err := tr.EncodeState(); err == nil {
		t.Error("EncodeState checkpointed a poisoned network")
	}
}

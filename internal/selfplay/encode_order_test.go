// Regression test for the checkpoint-encoding audit: the serialized
// form of a replay sample must not depend on the insertion order of the
// view's edge-matrix maps or the presentation order of neighbor lists.
// freezeSample guarantees this by sorting neighbors before emitting
// edge matrices; if anyone reintroduces map-order iteration in the
// encode path, this test (and the determinism analyzer) catches it.
package selfplay

import (
	"bytes"
	"encoding/gob"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/tensor"
)

// orderedView builds a two-vertex frozenView whose neighbor slices and
// edge-matrix maps are populated in the given key order.
func orderedView(keys []int) *frozenView {
	mat := func(v float64) *tensor.Mat {
		m := tensor.NewMat(2, 2)
		m.W[0] = v
		return m
	}
	v := &frozenView{m: 2}
	for i := 0; i < 4; i++ {
		vec := cost.NewVector(2)
		vec[0] = cost.Cost(i)
		v.vecs = append(v.vecs, vec)
		nbrs := make([]int, 0, len(keys))
		mats := make(map[int]*tensor.Mat, len(keys))
		for _, j := range keys {
			if j == i {
				continue
			}
			nbrs = append(nbrs, j)
			// derive the matrix from the (i, j) pair only, so both
			// insertion orders describe the same logical graph
			mats[j] = mat(float64(10*i + j))
		}
		v.nbrs = append(v.nbrs, nbrs)
		v.mats = append(v.mats, mats)
	}
	return v
}

func gobBytes(t *testing.T, rs replaySample) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFreezeSampleIgnoresMapInsertionOrder(t *testing.T) {
	pi := tensor.Vec{0.25, 0.75}
	fwd := Sample{View: orderedView([]int{0, 1, 2, 3}), Pi: pi, Z: 1}
	rev := Sample{View: orderedView([]int{3, 2, 1, 0}), Pi: pi, Z: 1}
	a := gobBytes(t, freezeSample(fwd))
	b := gobBytes(t, freezeSample(rev))
	if !bytes.Equal(a, b) {
		t.Error("freezeSample bytes depend on map insertion / neighbor order")
	}
	// thaw and refreeze: the round trip must also be byte-stable
	c := gobBytes(t, freezeSample(thawSample(freezeSample(rev))))
	if !bytes.Equal(a, c) {
		t.Error("freeze/thaw round trip changed the encoding")
	}
}

package selfplay

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pbqprl/internal/checkpoint"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
)

// netBytes serializes a network for exact comparison.
func netBytes(t *testing.T, n *net.PBQPNet) []byte {
	t.Helper()
	b, err := n.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func runIters(t *testing.T, tr *Trainer, n int) []IterStats {
	t.Helper()
	var out []IterStats
	for i := 0; i < n; i++ {
		stats, err := tr.RunIteration(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, stats)
	}
	return out
}

// TestResumeIsBitIdentical is the core fault-tolerance guarantee: train
// k iterations, checkpoint, restore into a fresh trainer, train N-k
// more, and the per-iteration stats and final network tensors must
// equal an uninterrupted N-iteration run with the same seed.
func TestResumeIsBitIdentical(t *testing.T) {
	const total, cut = 4, 2
	ref := tinyTrainer(t, 21)
	refStats := runIters(t, ref, total)

	a := tinyTrainer(t, 21)
	aStats := runIters(t, a, cut)
	blob, err := a.EncodeState()
	if err != nil {
		t.Fatal(err)
	}

	b := tinyTrainer(t, 21)
	if err := b.DecodeState(blob); err != nil {
		t.Fatal(err)
	}
	if b.Iter() != cut {
		t.Fatalf("restored Iter() = %d, want %d", b.Iter(), cut)
	}
	bStats := append(aStats, runIters(t, b, total-cut)...)

	for i := range refStats {
		if refStats[i] != bStats[i] {
			t.Errorf("iteration %d stats diverged:\n  uninterrupted %+v\n  resumed       %+v", i+1, refStats[i], bStats[i])
		}
	}
	if !bytes.Equal(netBytes(t, ref.Best()), netBytes(t, b.Best())) {
		t.Error("best-network tensors diverged after resume")
	}
	if !bytes.Equal(netBytes(t, ref.Current()), netBytes(t, b.Current())) {
		t.Error("current-network tensors diverged after resume")
	}
	if ref.ReplaySize() != b.ReplaySize() {
		t.Errorf("replay size diverged: %d vs %d", ref.ReplaySize(), b.ReplaySize())
	}
}

// TestMidIterationInterruptResumes simulates SIGINT mid-iteration: the
// context is cancelled from inside the episode loop, the trainer
// finishes the in-flight episode, checkpoints, and a restored trainer
// finishes the iteration with results identical to an uninterrupted run.
func TestMidIterationInterruptResumes(t *testing.T) {
	const total = 3
	ref := tinyTrainer(t, 22)
	refStats := runIters(t, ref, total)

	a := tinyTrainer(t, 22)
	runIters(t, a, 1)
	// cancel during the second episode of iteration 2
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	inner := a.cfg.Generate
	a.cfg.Generate = func(rng *rand.Rand) *pbqp.Graph {
		calls++
		if calls == 2 {
			cancel()
		}
		return inner(rng)
	}
	partial, err := a.RunIteration(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !a.Interrupted() {
		t.Fatal("trainer does not report the interrupted iteration")
	}
	if got := partial.Wins + partial.Losses + partial.Ties; got != 2 {
		t.Fatalf("finished %d episodes before stopping, want 2 (in-flight episode must finish)", got)
	}
	if a.Iter() != 1 {
		t.Fatalf("Iter() = %d during interrupted iteration 2, want 1", a.Iter())
	}
	blob, err := a.EncodeState()
	if err != nil {
		t.Fatal(err)
	}

	b := tinyTrainer(t, 22)
	if err := b.DecodeState(blob); err != nil {
		t.Fatal(err)
	}
	if !b.Interrupted() {
		t.Fatal("pending iteration lost in the checkpoint round trip")
	}
	resumed, err := b.RunIteration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed != refStats[1] {
		t.Errorf("resumed iteration 2 stats %+v, want %+v", resumed, refStats[1])
	}
	finalStats, err := b.RunIteration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if finalStats != refStats[2] {
		t.Errorf("iteration 3 stats %+v, want %+v", finalStats, refStats[2])
	}
	if !bytes.Equal(netBytes(t, ref.Best()), netBytes(t, b.Best())) {
		t.Error("best-network tensors diverged after mid-iteration resume")
	}
}

// TestStoreFallbackResumesFromPreviousCheckpoint covers the corruption
// acceptance criterion end to end: the newest checkpoint is truncated,
// LoadLatest falls back to the previous valid one, and training resumed
// from it still matches the uninterrupted run.
func TestStoreFallbackResumesFromPreviousCheckpoint(t *testing.T) {
	const total = 3
	ref := tinyTrainer(t, 23)
	refStats := runIters(t, ref, total)

	store, err := checkpoint.NewStore(filepath.Join(t.TempDir(), "ckpts"), 5)
	if err != nil {
		t.Fatal(err)
	}
	warned := false
	store.Logf = func(string, ...any) { warned = true }

	a := tinyTrainer(t, 23)
	for i := 1; i <= 2; i++ {
		runIters(t, a, 1)
		blob, err := a.EncodeState()
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Save(i, blob); err != nil {
			t.Fatal(err)
		}
	}
	// truncate the newest checkpoint, as a crash mid-write would
	data, err := os.ReadFile(store.Path(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(2), data[:len(data)*2/3], 0o644); err != nil {
		t.Fatal(err)
	}

	id, blob, err := store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("fell back to checkpoint %d, want 1", id)
	}
	if !warned {
		t.Error("no warning logged for the corrupt checkpoint")
	}
	b := tinyTrainer(t, 23)
	if err := b.DecodeState(blob); err != nil {
		t.Fatal(err)
	}
	bStats := runIters(t, b, total-1)
	for i, want := range refStats[1:] {
		if bStats[i] != want {
			t.Errorf("iteration %d stats diverged after fallback: %+v vs %+v", i+2, bStats[i], want)
		}
	}
	if !bytes.Equal(netBytes(t, ref.Best()), netBytes(t, b.Best())) {
		t.Error("best-network tensors diverged after fallback resume")
	}
}

// TestDecodeStateRejectsGarbage ensures a corrupted payload (one that
// somehow passed the frame checksum) fails loudly rather than loading
// garbage.
func TestDecodeStateRejectsGarbage(t *testing.T) {
	tr := tinyTrainer(t, 24)
	if err := tr.DecodeState([]byte("not a gob stream")); err == nil {
		t.Error("garbage state accepted")
	}
}

// TestEncodeStateRoundTripsReplayViews checks that a thawed replay
// sample drives the network exactly like the original snapshot.
func TestEncodeStateRoundTripsReplayViews(t *testing.T) {
	tr := tinyTrainer(t, 25)
	runIters(t, tr, 1)
	if tr.ReplaySize() == 0 {
		t.Fatal("no replay samples to round-trip")
	}
	blob, err := tr.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	other := tinyTrainer(t, 25)
	if err := other.DecodeState(blob); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.replay.len(); i++ {
		a, b := tr.replay.at(i), other.replay.at(i)
		if a.Z != b.Z || a.View.N() != b.View.N() {
			t.Fatalf("sample %d shape/label mismatch", i)
		}
		la, va := tr.cur.Forward(a.View)
		lb, vb := other.cur.Forward(b.View)
		if va != vb {
			t.Fatalf("sample %d value diverged: %v vs %v", i, va, vb)
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("sample %d logit %d diverged", i, j)
			}
		}
	}
}

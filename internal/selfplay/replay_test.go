package selfplay

import (
	"math/rand"
	"testing"
)

// mark builds a Sample distinguishable by its Z label; the ring buffer
// never inspects the view, so a nil one is fine here.
func mark(i int) Sample { return Sample{Z: float64(i)} }

func drain(q *replayQueue) []float64 {
	out := make([]float64, 0, q.len())
	for i := 0; i < q.len(); i++ {
		out = append(out, q.at(i).Z)
	}
	return out
}

func TestReplayQueueFillsThenWraps(t *testing.T) {
	q := newReplayQueue(3)
	for i := 0; i < 2; i++ {
		q.push(mark(i))
	}
	if got := drain(&q); got[0] != 0 || got[1] != 1 || len(got) != 2 {
		t.Fatalf("partial fill order = %v", got)
	}
	for i := 2; i < 7; i++ {
		q.push(mark(i))
	}
	// pushed 0..6 into cap 3: logical order must be the newest three
	got := drain(&q)
	want := []float64{4, 5, 6}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("after wrap = %v, want %v", got, want)
	}
}

// TestReplayQueueMatchesSliceModel drives random push sequences against
// the obvious slice implementation the ring buffer replaced.
func TestReplayQueueMatchesSliceModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		capacity := 1 + rng.Intn(8)
		q := newReplayQueue(capacity)
		var model []Sample
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			s := mark(trial*100 + i)
			q.push(s)
			model = append(model, s)
			if len(model) > capacity {
				model = model[len(model)-capacity:]
			}
			if q.len() != len(model) {
				t.Fatalf("trial %d push %d: len %d, model %d", trial, i, q.len(), len(model))
			}
			for j := range model {
				if q.at(j).Z != model[j].Z {
					t.Fatalf("trial %d push %d at(%d) = %v, model %v", trial, i, j, q.at(j).Z, model[j].Z)
				}
			}
		}
	}
}

func TestReplayQueueSetCap(t *testing.T) {
	q := newReplayQueue(4)
	for i := 0; i < 7; i++ { // wrapped: logical order 3,4,5,6
		q.push(mark(i))
	}
	q.setCap(2) // shrink keeps the newest samples
	if got := drain(&q); len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("after shrink = %v, want [5 6]", got)
	}
	q.setCap(5) // grow preserves contents and accepts more
	for i := 7; i < 10; i++ {
		q.push(mark(i))
	}
	if got := drain(&q); len(got) != 5 || got[0] != 5 || got[4] != 9 {
		t.Fatalf("after grow = %v, want [5 6 7 8 9]", got)
	}
	q.setCap(5) // no-op when unchanged
	if got := drain(&q); len(got) != 5 || got[0] != 5 {
		t.Fatalf("no-op setCap changed contents: %v", got)
	}
}

func TestReplayQueueReset(t *testing.T) {
	q := newReplayQueue(3)
	for i := 0; i < 5; i++ {
		q.push(mark(i))
	}
	q.reset()
	if q.len() != 0 {
		t.Fatalf("len after reset = %d", q.len())
	}
	q.push(mark(9))
	if got := drain(&q); len(got) != 1 || got[0] != 9 {
		t.Fatalf("push after reset = %v", got)
	}
}

// TestEncodeStateRoundTripsWrappedReplay forces the ring buffer to wrap
// during real training and checks the checkpoint still round-trips in
// logical order.
func TestEncodeStateRoundTripsWrappedReplay(t *testing.T) {
	tr := tinyTrainer(t, 42)
	tr.cfg.ReplayCap = 10
	runIters(t, tr, 2) // enough samples to wrap a cap-10 ring
	if tr.ReplaySize() != 10 {
		t.Fatalf("replay size = %d, want full cap 10", tr.ReplaySize())
	}
	blob, err := tr.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	other := tinyTrainer(t, 42)
	other.cfg.ReplayCap = 10
	if err := other.DecodeState(blob); err != nil {
		t.Fatal(err)
	}
	if other.ReplaySize() != tr.ReplaySize() {
		t.Fatalf("replay size %d after decode, want %d", other.ReplaySize(), tr.ReplaySize())
	}
	for i := 0; i < tr.replay.len(); i++ {
		a, b := tr.replay.at(i), other.replay.at(i)
		if a.Z != b.Z || a.View.N() != b.View.N() {
			t.Fatalf("sample %d diverged after wrapped round trip", i)
		}
	}
}

// Trainer-state serialization for fault-tolerant training: EncodeState
// captures everything a resumed run needs to be bit-identical to an
// uninterrupted one — both networks, the Adam moments, the replay
// queue, the master RNG stream, the iteration counter, and the position
// inside an interrupted iteration. The bytes are opaque; pair them with
// internal/checkpoint for atomic, checksummed on-disk storage.
package selfplay

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"sort"

	"pbqprl/internal/cost"
	"pbqprl/internal/gcn"
	"pbqprl/internal/nn"
	"pbqprl/internal/tensor"
)

// pcgSource adapts math/rand/v2's PCG generator — whose state is
// serializable — to math/rand's Source64 interface, so the trainer's
// RNG stream survives a checkpoint/restore round trip exactly. The
// stock math/rand source keeps its state private and cannot be resumed.
type pcgSource struct{ pcg *randv2.PCG }

// pcgStream is the fixed second seed word; the user seed is the first.
const pcgStream = 0x9e3779b97f4a7c15

func newPCGSource(seed int64) *pcgSource {
	return &pcgSource{pcg: randv2.NewPCG(uint64(seed), pcgStream)}
}

func (s *pcgSource) Uint64() uint64 { return s.pcg.Uint64() }
func (s *pcgSource) Int63() int64   { return int64(s.pcg.Uint64() >> 1) }
func (s *pcgSource) Seed(seed int64) {
	s.pcg.Seed(uint64(seed), pcgStream)
}
func (s *pcgSource) state() ([]byte, error)  { return s.pcg.MarshalBinary() }
func (s *pcgSource) setState(b []byte) error { return s.pcg.UnmarshalBinary(b) }

// trainerState is the gob payload of a trainer checkpoint.
type trainerState struct {
	Iter           int
	Pending        *IterStats
	PendingEpisode int
	Cur, Best      []byte // net.PBQPNet.SaveBytes
	Adam           nn.AdamState
	RNG            []byte // PCG state
	Replay         []replaySample
}

// replaySample is the self-contained serialized form of a Sample: the
// view's vertex vectors, adjacency, and transformed edge matrices, laid
// out with exported fields for gob. Edge matrices shared between
// samples of one episode are duplicated here; correctness over
// compactness.
type replaySample struct {
	M    int
	Vecs []cost.Vector
	Nbrs [][]int
	Mats [][]edgeMat
	Pi   tensor.Vec
	Z    float64
}

type edgeMat struct {
	J   int
	Mat *tensor.Mat
}

// frozenView is the gcn.View a restored replay sample presents to the
// network; Forward over it is bit-identical to the original snapshot.
type frozenView struct {
	m    int
	vecs []cost.Vector
	nbrs [][]int
	mats []map[int]*tensor.Mat
}

func (v *frozenView) N() int                   { return len(v.vecs) }
func (v *frozenView) M() int                   { return v.m }
func (v *frozenView) Vec(i int) cost.Vector    { return v.vecs[i] }
func (v *frozenView) Nbrs(i int) []int         { return v.nbrs[i] }
func (v *frozenView) Mat(i, j int) *tensor.Mat { return v.mats[i][j] }

// freezeSample converts a Sample to its serialized form through the
// gcn.View interface, so it works for live snapshots and already-thawed
// samples alike. Edge matrices are emitted in sorted neighbor order for
// deterministic encodings.
func freezeSample(s Sample) replaySample {
	v := s.View
	out := replaySample{M: v.M(), Pi: s.Pi, Z: s.Z}
	for i := 0; i < v.N(); i++ {
		out.Vecs = append(out.Vecs, v.Vec(i))
		nbrs := append([]int(nil), v.Nbrs(i)...)
		sort.Ints(nbrs)
		var mats []edgeMat
		for _, j := range nbrs {
			mats = append(mats, edgeMat{J: j, Mat: v.Mat(i, j)})
		}
		out.Nbrs = append(out.Nbrs, nbrs)
		out.Mats = append(out.Mats, mats)
	}
	return out
}

// thawSample reverses freezeSample.
func thawSample(rs replaySample) Sample {
	v := &frozenView{m: rs.M, vecs: rs.Vecs, nbrs: rs.Nbrs}
	for _, mats := range rs.Mats {
		m := make(map[int]*tensor.Mat, len(mats))
		for _, em := range mats {
			m[em.J] = em.Mat
		}
		v.mats = append(v.mats, m)
	}
	return Sample{View: gcn.View(v), Pi: rs.Pi, Z: rs.Z}
}

// EncodeSamples serializes training samples for transport between
// distributed self-play workers and the coordinator. It uses the same
// frozen form as checkpoints (sorted neighbor order, gob), so the
// encoding is deterministic and a decoded sample trains bit-identically
// to the live snapshot it came from.
func EncodeSamples(samples []Sample) ([]byte, error) {
	frozen := make([]replaySample, 0, len(samples))
	for _, s := range samples {
		frozen = append(frozen, freezeSample(s))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(frozen); err != nil {
		return nil, fmt.Errorf("selfplay: encode samples: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSamples reverses EncodeSamples.
func DecodeSamples(data []byte) ([]Sample, error) {
	var frozen []replaySample
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&frozen); err != nil {
		return nil, fmt.Errorf("selfplay: decode samples: %w", err)
	}
	samples := make([]Sample, 0, len(frozen))
	for _, rs := range frozen {
		samples = append(samples, thawSample(rs))
	}
	return samples, nil
}

// EncodeState serializes the full trainer state. It refuses to encode a
// diverged (NaN/Inf) network so that a poisoned state can never reach a
// checkpoint.
func (t *Trainer) EncodeState() ([]byte, error) {
	if err := t.checkFinite(); err != nil {
		return nil, fmt.Errorf("selfplay: refusing to checkpoint: %w", err)
	}
	cur, err := t.cur.SaveBytes()
	if err != nil {
		return nil, err
	}
	best, err := t.best.SaveBytes()
	if err != nil {
		return nil, err
	}
	rng, err := t.src.state()
	if err != nil {
		return nil, err
	}
	st := trainerState{
		Iter:           t.iter,
		Pending:        t.pending,
		PendingEpisode: t.pendingEpisode,
		Cur:            cur,
		Best:           best,
		Adam:           t.opt.State(t.cur.Params()),
		RNG:            rng,
	}
	// logical (oldest-first) order, so the encoding is byte-identical
	// to the pre-ring-buffer slice layout and v1 checkpoints round-trip
	for i := 0; i < t.replay.len(); i++ {
		st.Replay = append(st.Replay, freezeSample(t.replay.at(i)))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("selfplay: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeState restores a state produced by EncodeState into a trainer
// built with the same Config and network architecture, replacing its
// networks, optimizer moments, replay queue, RNG stream, and iteration
// position. On error the trainer may be partially modified and should
// be discarded.
func (t *Trainer) DecodeState(data []byte) error {
	var st trainerState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("selfplay: decode state: %w", err)
	}
	if err := t.cur.LoadBytes(st.Cur); err != nil {
		return fmt.Errorf("selfplay: restore current network: %w", err)
	}
	if err := t.best.LoadBytes(st.Best); err != nil {
		return fmt.Errorf("selfplay: restore best network: %w", err)
	}
	if err := t.opt.LoadState(t.cur.Params(), st.Adam); err != nil {
		return fmt.Errorf("selfplay: restore optimizer: %w", err)
	}
	if err := t.src.setState(st.RNG); err != nil {
		return fmt.Errorf("selfplay: restore rng: %w", err)
	}
	t.rng = rand.New(t.src)
	t.iter = st.Iter
	t.pending, t.pendingEpisode = st.Pending, st.PendingEpisode
	t.replay.reset()
	t.replay.setCap(t.cfg.ReplayCap)
	for _, rs := range st.Replay {
		t.replay.push(thawSample(rs))
	}
	return nil
}

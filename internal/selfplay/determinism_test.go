// Determinism property tests for parallel self-play: the worker count
// must never leak into training results. Training with workers=1 and
// workers=4 — and resuming a run that was interrupted mid-iteration
// under workers>1 — must produce byte-identical EncodeState payloads.
// CI runs this package under -race, so these tests double as the data
// race check for the worker pool.
package selfplay

import (
	"bytes"
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"pbqprl/internal/game"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
)

// poolTrainer is tinyTrainer with enough episodes to keep a 4-worker
// pool busy and an explicit worker count.
func poolTrainer(t *testing.T, seed int64, workers int) *Trainer {
	t.Helper()
	m := 4
	n := net.New(net.Config{M: m, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: seed})
	return New(n, Config{
		EpisodesPerIter: 8,
		KTrain:          8,
		ReplayCap:       500,
		BatchSize:       8,
		TrainSteps:      4,
		ArenaGames:      4,
		ArenaWins:       2,
		Workers:         workers,
		Order:           game.OrderFixed,
		Seed:            seed,
		Generate: func(rng *rand.Rand) *pbqp.Graph {
			return randgraph.ErdosRenyi(rng, randgraph.Config{
				N: 6 + rng.Intn(4), M: m, PEdge: 0.4, PInf: 0.05,
			})
		},
	})
}

func encodeBytes(t *testing.T, tr *Trainer) []byte {
	t.Helper()
	b, err := tr.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestWorkerCountIsBitIdentical(t *testing.T) {
	seq := poolTrainer(t, 31, 1)
	par := poolTrainer(t, 31, 4)
	seqStats := runIters(t, seq, 2)
	parStats := runIters(t, par, 2)
	for i := range seqStats {
		if seqStats[i] != parStats[i] {
			t.Errorf("iteration %d stats diverged:\n  workers=1 %+v\n  workers=4 %+v", i+1, seqStats[i], parStats[i])
		}
	}
	if !bytes.Equal(encodeBytes(t, seq), encodeBytes(t, par)) {
		t.Error("EncodeState diverged between workers=1 and workers=4")
	}
}

// TestParallelInterruptResumesBitIdentical interrupts a workers=4 run
// mid-iteration, round-trips the checkpoint, finishes under workers=4,
// and compares byte-for-byte against an uninterrupted workers=1 run:
// the pendingEpisode semantics must survive the parallel episode loop.
func TestParallelInterruptResumesBitIdentical(t *testing.T) {
	const total = 3
	ref := poolTrainer(t, 32, 1)
	refStats := runIters(t, ref, total)

	// Cancelling on the first Generate call stops dispatch while the
	// pool is saturated, so the iteration is interrupted mid-way. The
	// commit point depends on scheduling, which is exactly what the
	// byte-identity below must be robust to; the rare run where every
	// episode still gets dispatched is retried.
	var a *Trainer
	interrupted := false
	for attempt := 0; attempt < 5 && !interrupted; attempt++ {
		a = poolTrainer(t, 32, 4)
		runIters(t, a, 1)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		inner := a.cfg.Generate
		var calls atomic.Int64
		a.cfg.Generate = func(rng *rand.Rand) *pbqp.Graph {
			if calls.Add(1) == 1 {
				cancel()
			}
			return inner(rng)
		}
		_, err := a.RunIteration(ctx)
		a.cfg.Generate = inner
		switch {
		case err == context.Canceled && a.Interrupted():
			interrupted = true
		case err == nil:
			// every episode was dispatched before the cancellation
			// landed; try again with a fresh trainer
		default:
			t.Fatalf("interrupted iteration: err=%v interrupted=%v", err, a.Interrupted())
		}
	}
	if !interrupted {
		t.Fatal("could not interrupt a parallel iteration in 5 attempts")
	}
	if done := a.pendingEpisode; done <= 0 || done >= a.cfg.EpisodesPerIter {
		t.Fatalf("pendingEpisode = %d, want a mid-iteration position", done)
	}

	b := poolTrainer(t, 32, 4)
	if err := b.DecodeState(encodeBytes(t, a)); err != nil {
		t.Fatal(err)
	}
	if !b.Interrupted() {
		t.Fatal("pending iteration lost in the checkpoint round trip")
	}
	bStats := runIters(t, b, total-1)
	for i, want := range refStats[1:] {
		if bStats[i] != want {
			t.Errorf("iteration %d stats diverged after parallel resume: %+v vs %+v", i+2, bStats[i], want)
		}
	}
	if !bytes.Equal(encodeBytes(t, ref), encodeBytes(t, b)) {
		t.Error("EncodeState diverged between sequential run and parallel interrupt+resume")
	}
}

// TestParallelPreCancelledContextPends mirrors the sequential loop's
// boundary check: a context that is already cancelled commits zero
// episodes, pends at the current position, and the resumed iteration is
// unaffected.
func TestParallelPreCancelledContextPends(t *testing.T) {
	ref := poolTrainer(t, 33, 1)
	refStats := runIters(t, ref, 1)

	tr := poolTrainer(t, 33, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := tr.RunIteration(ctx)
	if err != context.Canceled || !tr.Interrupted() {
		t.Fatalf("pre-cancelled context: err=%v interrupted=%v", err, tr.Interrupted())
	}
	if got := stats.Wins + stats.Losses + stats.Ties + stats.Skipped; got != 0 {
		t.Fatalf("played %d episodes under a pre-cancelled context", got)
	}
	resumed, err := tr.RunIteration(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed != refStats[0] {
		t.Errorf("resumed stats %+v, want %+v", resumed, refStats[0])
	}
	if !bytes.Equal(encodeBytes(t, ref), encodeBytes(t, tr)) {
		t.Error("EncodeState diverged after pre-cancelled pend+resume")
	}
}

// TestEpisodeBackendBitIdentical drives the Episodes seam with a
// backend that plays the batch in reverse order on network clones and
// round-trips every sample through the wire codec: the trained state
// must stay byte-identical to the in-process run.
func TestEpisodeBackendBitIdentical(t *testing.T) {
	ref := poolTrainer(t, 35, 1)
	refStats := runIters(t, ref, 2)

	tr := poolTrainer(t, 35, 1)
	tr.cfg.Episodes = func(ctx context.Context, b EpisodeBatch) ([]EpisodeResult, error) {
		results := make([]EpisodeResult, len(b.Seeds))
		for i := len(b.Seeds) - 1; i >= 0; i-- {
			r := RunEpisode(tr.cfg, b.Cur.Clone(), b.Best.Clone(), b.Seeds[i])
			if r.Err == nil {
				wire, err := EncodeSamples(r.Samples)
				if err != nil {
					t.Fatal(err)
				}
				r.Samples, err = DecodeSamples(wire)
				if err != nil {
					t.Fatal(err)
				}
			}
			results[i] = r
		}
		return results, nil
	}
	trStats := runIters(t, tr, 2)
	for i := range refStats {
		if refStats[i] != trStats[i] {
			t.Errorf("iteration %d stats diverged:\n  in-process %+v\n  backend    %+v", i+1, refStats[i], trStats[i])
		}
	}
	if !bytes.Equal(encodeBytes(t, ref), encodeBytes(t, tr)) {
		t.Error("EncodeState diverged between in-process pool and episode backend")
	}
}

// TestEpisodeBackendPartialCommitResumes cuts the backend off after a
// three-episode prefix (the distributed shape of a coordinator SIGINT
// or a dead worker fleet): the trainer must pend at the prefix
// boundary, survive a checkpoint round trip, and finish byte-identical
// to an uninterrupted sequential run.
func TestEpisodeBackendPartialCommitResumes(t *testing.T) {
	const total = 3
	ref := poolTrainer(t, 36, 1)
	refStats := runIters(t, ref, total)

	a := poolTrainer(t, 36, 1)
	armed := false
	backend := func(ctx context.Context, b EpisodeBatch) ([]EpisodeResult, error) {
		n := len(b.Seeds)
		var err error
		if armed && n > 3 {
			n, err = 3, context.Canceled
			armed = false
		}
		results := make([]EpisodeResult, n)
		for i := 0; i < n; i++ {
			results[i] = RunEpisode(a.cfg, b.Cur.Clone(), b.Best.Clone(), b.Seeds[i])
		}
		return results, err
	}
	a.cfg.Episodes = backend
	runIters(t, a, 1)
	armed = true
	if _, err := a.RunIteration(context.Background()); err != context.Canceled || !a.Interrupted() {
		t.Fatalf("partial backend commit: err=%v interrupted=%v", err, a.Interrupted())
	}
	if a.pendingEpisode != 3 {
		t.Fatalf("pendingEpisode = %d, want 3", a.pendingEpisode)
	}

	b := poolTrainer(t, 36, 1)
	firstBatch := true
	b.cfg.Episodes = func(ctx context.Context, batch EpisodeBatch) ([]EpisodeResult, error) {
		if firstBatch && batch.Start != 3 {
			t.Errorf("resumed batch starts at %d, want 3", batch.Start)
		}
		firstBatch = false
		results := make([]EpisodeResult, len(batch.Seeds))
		for i := range batch.Seeds {
			results[i] = RunEpisode(b.cfg, batch.Cur.Clone(), batch.Best.Clone(), batch.Seeds[i])
		}
		return results, nil
	}
	if err := b.DecodeState(encodeBytes(t, a)); err != nil {
		t.Fatal(err)
	}
	if !b.Interrupted() {
		t.Fatal("pending iteration lost in the checkpoint round trip")
	}
	bStats := runIters(t, b, total-1)
	for i, want := range refStats[1:] {
		if bStats[i] != want {
			t.Errorf("iteration %d stats diverged after backend resume: %+v vs %+v", i+2, bStats[i], want)
		}
	}
	if !bytes.Equal(encodeBytes(t, ref), encodeBytes(t, b)) {
		t.Error("EncodeState diverged between sequential run and backend partial-commit resume")
	}
}

// TestEpisodeBackendShortReturnIsAnError pins the backend contract: a
// backend that silently under-returns without an error must not be
// treated as a completed batch.
func TestEpisodeBackendShortReturnIsAnError(t *testing.T) {
	tr := poolTrainer(t, 37, 1)
	tr.cfg.Episodes = func(ctx context.Context, b EpisodeBatch) ([]EpisodeResult, error) {
		results := make([]EpisodeResult, 2)
		for i := range results {
			results[i] = RunEpisode(tr.cfg, b.Cur.Clone(), b.Best.Clone(), b.Seeds[i])
		}
		return results, nil
	}
	_, err := tr.RunIteration(context.Background())
	if err == nil {
		t.Fatal("short backend return accepted as a completed batch")
	}
	if !tr.Interrupted() {
		t.Fatal("short backend return did not pend the iteration")
	}
	if tr.pendingEpisode != 2 {
		t.Fatalf("pendingEpisode = %d, want 2 (the committed prefix)", tr.pendingEpisode)
	}
}

// TestBatchLeavesBitIdentical pins the leaf-batching contract end to
// end: training with MCTS.BatchLeaves > 1 — alone and combined with a
// parallel worker pool — must produce byte-identical EncodeState
// payloads to the sequential search, because the batched evaluator is
// per-view bit-identical and the speculate/replay loop leaves the tree
// statistics untouched.
func TestBatchLeavesBitIdentical(t *testing.T) {
	ref := poolTrainer(t, 38, 1)
	refStats := runIters(t, ref, 2)

	for _, c := range []struct {
		name        string
		workers     int
		batchLeaves int
	}{
		{"batch=4", 1, 4},
		{"batch=16", 1, 16},
		{"batch=8 workers=4", 4, 8},
	} {
		tr := poolTrainer(t, 38, c.workers)
		tr.cfg.MCTS.BatchLeaves = c.batchLeaves
		stats := runIters(t, tr, 2)
		for i := range refStats {
			if stats[i] != refStats[i] {
				t.Errorf("%s: iteration %d stats diverged:\n  sequential %+v\n  batched    %+v",
					c.name, i+1, refStats[i], stats[i])
			}
		}
		if !bytes.Equal(encodeBytes(t, ref), encodeBytes(t, tr)) {
			t.Errorf("%s: EncodeState diverged from sequential search", c.name)
		}
	}
}

// TestParallelSkipsPanickedEpisodesIdentically makes the generator
// panic on a seed-determined subset of episodes: the skip accounting
// and the surviving state must still be independent of the worker
// count.
func TestParallelSkipsPanickedEpisodesIdentically(t *testing.T) {
	mk := func(workers int) *Trainer {
		tr := poolTrainer(t, 34, workers)
		inner := tr.cfg.Generate
		episodes := tr.cfg.EpisodesPerIter
		var calls atomic.Int64
		tr.cfg.Generate = func(rng *rand.Rand) *pbqp.Graph {
			g := inner(rng)
			fail := rng.Int63()%2 == 0
			// Each episode makes exactly one Generate call and the
			// arena only starts after every episode has finished, so
			// the first EpisodesPerIter calls of the (single)
			// iteration are episode calls under any worker count.
			// Panics must stay out of the arena, which — unlike
			// runEpisode — does not recover them. The failing subset
			// is seed-derived, so the same episodes fail under any
			// schedule.
			if calls.Add(1) <= int64(episodes) && fail {
				panic("synthetic episode failure")
			}
			return g
		}
		return tr
	}
	seq, par := mk(1), mk(4)
	seqStats := runIters(t, seq, 1)
	parStats := runIters(t, par, 1)
	if seqStats[0] != parStats[0] {
		t.Errorf("stats diverged:\n  workers=1 %+v\n  workers=4 %+v", seqStats[0], parStats[0])
	}
	if seqStats[0].Skipped == 0 {
		t.Fatal("test generator never failed; the skip path was not exercised")
	}
	if !bytes.Equal(encodeBytes(t, seq), encodeBytes(t, par)) {
		t.Error("EncodeState diverged between workers=1 and workers=4 with skipped episodes")
	}
}

package selfplay

// replayQueue is the bounded replay buffer, stored as a ring: the
// logical order (oldest first) starts at head and wraps around the end
// of buf. Once the queue reaches capacity, each push overwrites the
// oldest sample in place, so steady-state eviction costs O(pushed)
// instead of reallocating and copying all ReplayCap samples per episode
// the way the previous slice implementation did.
type replayQueue struct {
	cap  int
	buf  []Sample
	head int // physical index of the logically oldest sample
	size int
}

func newReplayQueue(capacity int) replayQueue { return replayQueue{cap: capacity} }

// len returns the number of stored samples.
func (q *replayQueue) len() int { return q.size }

// at returns the sample at logical index i (0 = oldest).
func (q *replayQueue) at(i int) Sample {
	j := q.head + i
	if j >= len(q.buf) {
		j -= len(q.buf)
	}
	return q.buf[j]
}

// push appends a sample, overwriting the oldest one at capacity.
func (q *replayQueue) push(s Sample) {
	if q.cap <= 0 {
		return
	}
	if q.size < q.cap {
		// the ring has not wrapped yet: head is 0 and buf holds the
		// logical order directly
		q.buf = append(q.buf, s)
		q.size++
		return
	}
	q.buf[q.head] = s
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
}

// setCap adjusts the capacity (Config.ReplayCap may be changed between
// iterations), keeping the newest samples and re-linearizing the ring.
func (q *replayQueue) setCap(capacity int) {
	if capacity == q.cap {
		return
	}
	keep := q.size
	if keep > capacity {
		keep = capacity
	}
	if keep < 0 {
		keep = 0
	}
	buf := make([]Sample, keep)
	for i := 0; i < keep; i++ {
		buf[i] = q.at(q.size - keep + i)
	}
	q.buf, q.head, q.size, q.cap = buf, 0, keep, capacity
}

// reset drops every sample but keeps the capacity and storage.
func (q *replayQueue) reset() {
	clear(q.buf)
	q.buf, q.head, q.size = q.buf[:0], 0, 0
}

package perfmodel

import (
	"testing"

	"pbqprl/internal/ir"
	"pbqprl/internal/llvmsuite"
	"pbqprl/internal/regalloc"
	"pbqprl/internal/solve/scholz"
)

func TestSpilledUsesCostMore(t *testing.T) {
	f := &ir.Func{
		Name: "f", NumValues: 2,
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpArith, Def: 1, Uses: []ir.Value{0}},
			{Op: ir.OpRet, Uses: []ir.Value{1}},
		}}},
	}
	p := DefaultParams()
	allReg := regalloc.Assignment{Reg: []int{0, 1}}
	allSpill := regalloc.Assignment{Reg: []int{-1, -1}}
	cr := EstimateFunc(f, allReg, p)
	cs := EstimateFunc(f, allSpill, p)
	if cr != 3 { // three instructions, base cost 1 each
		t.Errorf("register cycles = %v, want 3", cr)
	}
	// spills: v0 def store (+2), v0 use load (+3), v1 def store (+2),
	// v1 use load (+3) => 3 + 10 = 13
	if cs != 13 {
		t.Errorf("spill cycles = %v, want 13", cs)
	}
}

func TestLoopDepthScalesCost(t *testing.T) {
	mk := func(depth int) *ir.Func {
		return &ir.Func{
			Name: "f", NumValues: 1,
			Blocks: []*ir.Block{{Name: "b", LoopDepth: depth, Instrs: []ir.Instr{
				{Op: ir.OpConst, Def: 0},
			}}},
		}
	}
	p := DefaultParams()
	asn := regalloc.Assignment{Reg: []int{0}}
	c0 := EstimateFunc(mk(0), asn, p)
	c2 := EstimateFunc(mk(2), asn, p)
	if c2 != 100*c0 {
		t.Errorf("depth-2 cost %v, want 100× depth-0 %v", c2, c0)
	}
}

func TestCoalescedMoveIsFree(t *testing.T) {
	f := &ir.Func{
		Name: "f", NumValues: 2,
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpMove, Def: 1, Uses: []ir.Value{0}},
			{Op: ir.OpRet, Uses: []ir.Value{1}},
		}}},
	}
	p := DefaultParams()
	same := EstimateFunc(f, regalloc.Assignment{Reg: []int{2, 2}}, p)
	diff := EstimateFunc(f, regalloc.Assignment{Reg: []int{2, 3}}, p)
	if same >= diff {
		t.Errorf("coalesced %v should cost less than %v", same, diff)
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(200, 100) != 2 {
		t.Error("wrong speedup")
	}
	if !((Speedup(1, 0)) > 1e308) {
		t.Error("zero-cycle speedup not infinite")
	}
}

// TestAllocatorSpeedupOrdering reproduces the Section V-C shape on the
// whole synthetic suite: GREEDY ≥ PBQP > FAST, all well above 1.
func TestAllocatorSpeedupOrdering(t *testing.T) {
	target := regalloc.DefaultTarget()
	p := DefaultParams()
	var fastC, basicC, greedyC, pbqpC float64
	for _, b := range llvmsuite.All() {
		for i, f := range b.Prog.Funcs {
			in := regalloc.NewInput(f, target, b.Allowed[i])
			fastC += EstimateFunc(f, regalloc.Fast(in), p)
			basicC += EstimateFunc(f, regalloc.Basic(in), p)
			greedyC += EstimateFunc(f, regalloc.Greedy(in), p)
			asn, _ := regalloc.PBQPAlloc(in, scholz.Solver{})
			pbqpC += EstimateFunc(f, asn, p)
		}
	}
	gSpeed := Speedup(fastC, greedyC)
	bSpeed := Speedup(fastC, basicC)
	pSpeed := Speedup(fastC, pbqpC)
	t.Logf("speedup vs FAST: basic=%.3f greedy=%.3f pbqp=%.3f", bSpeed, gSpeed, pSpeed)
	if gSpeed <= 1.05 || pSpeed <= 1.05 {
		t.Errorf("speedups too small: greedy=%.3f pbqp=%.3f", gSpeed, pSpeed)
	}
	if bSpeed > gSpeed {
		t.Errorf("basic (%.3f) should not beat greedy (%.3f)", bSpeed, gSpeed)
	}
}

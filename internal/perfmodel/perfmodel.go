// Package perfmodel estimates the dynamic cost of a compiled function
// under a register assignment: a deterministic cycle model that stands
// in for running generated code on hardware (Section V-C reports
// speedups on an i7-9700K; the reproducible shape is the *ratio*
// between allocators, which this model preserves — spill traffic inside
// hot loops dominates).
package perfmodel

import (
	"math"

	"pbqprl/internal/ir"
	"pbqprl/internal/regalloc"
)

// Params are the cycle weights of the model.
type Params struct {
	// Base is the cost of executing one instruction.
	Base float64
	// Load and Store are the extra cycles for reloading a spilled use
	// and storing a spilled def.
	Load, Store float64
}

// DefaultParams returns weights resembling a small out-of-order core
// with an L1-hit stack slot.
func DefaultParams() Params { return Params{Base: 1, Load: 3, Store: 2} }

// EstimateFunc returns the estimated cycles of one function: each block
// contributes its instruction costs multiplied by 10^loopDepth (the
// standard static frequency estimate). Moves whose source and
// destination land in the same register cost nothing (coalesced); a
// spilled-to-spilled move costs a load plus a store.
func EstimateFunc(f *ir.Func, asn regalloc.Assignment, p Params) float64 {
	total := 0.0
	for _, blk := range f.Blocks {
		freq := math.Pow(10, float64(blk.LoopDepth))
		for _, instr := range blk.Instrs {
			c := p.Base
			if instr.Op == ir.OpMove && instr.DefValue() >= 0 && len(instr.Uses) == 1 {
				src, dst := instr.Uses[0], instr.Def
				if asn.Reg[src] >= 0 && asn.Reg[src] == asn.Reg[dst] {
					total += 0 // coalesced away
					continue
				}
			}
			for _, u := range instr.Uses {
				if asn.Reg[u] == -1 {
					c += p.Load
				}
			}
			if d := instr.DefValue(); d >= 0 && asn.Reg[d] == -1 {
				c += p.Store
			}
			total += c * freq
		}
	}
	return total
}

// EstimateProgram sums EstimateFunc over a program's functions given
// one assignment per function.
func EstimateProgram(prog *ir.Program, asns []regalloc.Assignment, p Params) float64 {
	total := 0.0
	for i, f := range prog.Funcs {
		total += EstimateFunc(f, asns[i], p)
	}
	return total
}

// Speedup returns base/other: how much faster `other` cycles are than
// `base` cycles (>1 means faster than the baseline allocator).
func Speedup(baseCycles, otherCycles float64) float64 {
	//pbqpvet:ignore floatcmp guards division; exactly zero cycles only comes from an empty schedule
	if otherCycles == 0 {
		return math.Inf(1)
	}
	return baseCycles / otherCycles
}

// Package reduce implements the exact PBQP reductions R0, R1 and R2 of
// Scholz and Eckstein as a standalone, solver-agnostic preprocessing
// pass. Unlike the full original solver (internal/solve/scholz), this
// pass never applies the lossy RN heuristic: the reduced problem is
// cost-equivalent to the original, so any solver — exact, enumeration,
// or Deep-RL — can run on the (often much smaller) remainder and the
// removed vertices are recolored optimally afterwards.
//
// This mirrors production PBQP allocators, which always run the exact
// reductions before anything expensive.
package reduce

import (
	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
)

// Reduction is the result of exactly reducing a PBQP graph.
type Reduction struct {
	// Graph is the reduced remainder: every alive vertex has degree
	// ≥ 3. It may be empty, in which case Expand solves the whole
	// problem by itself.
	Graph *pbqp.Graph
	// Eliminated is the number of vertices removed by R0/R1/R2.
	Eliminated int
	stack      []record
}

type kind int

const (
	r0 kind = iota
	r1
	r2
)

type record struct {
	kind kind
	u    int
	vec  cost.Vector
	nbrs []int
	mats []*cost.Matrix
}

// Apply exhaustively applies R0/R1/R2 to a copy of g and returns the
// reduction. The input graph is not mutated.
func Apply(g *pbqp.Graph) *Reduction {
	w := g.Clone()
	red := &Reduction{Graph: w}
	for {
		u := lowestDegree(w)
		if u < 0 || w.Degree(u) > 2 {
			return red
		}
		red.Eliminated++
		switch w.Degree(u) {
		case 0:
			red.stack = append(red.stack, record{kind: r0, u: u, vec: w.VertexCost(u).Clone()})
			w.RemoveVertex(u)
		case 1:
			red.stack = append(red.stack, reduceR1(w, u))
		default:
			red.stack = append(red.stack, reduceR2(w, u))
		}
	}
}

// lowestDegree returns the alive vertex with minimum degree, -1 when
// the graph is empty.
func lowestDegree(g *pbqp.Graph) int {
	best, bestDeg := -1, 0
	for _, u := range g.Vertices() {
		if d := g.Degree(u); best == -1 || d < bestDeg {
			best, bestDeg = u, d
			if d == 0 {
				return u
			}
		}
	}
	return best
}

func reduceR1(g *pbqp.Graph, u int) record {
	y := g.Neighbors(u)[0]
	m := g.EdgeCost(u, y).Clone()
	vec := g.VertexCost(u).Clone()
	delta := make(cost.Vector, g.M())
	for j := 0; j < g.M(); j++ {
		best := cost.Inf
		for i := 0; i < g.M(); i++ {
			if c := vec[i].Add(m.At(i, j)); c.Less(best) {
				best = c
			}
		}
		delta[j] = best
	}
	g.AddToVertexCost(y, delta)
	g.RemoveVertex(u)
	return record{kind: r1, u: u, vec: vec, nbrs: []int{y}, mats: []*cost.Matrix{m}}
}

func reduceR2(g *pbqp.Graph, u int) record {
	ns := g.Neighbors(u)
	y, z := ns[0], ns[1]
	my := g.EdgeCost(u, y).Clone()
	mz := g.EdgeCost(u, z).Clone()
	vec := g.VertexCost(u).Clone()
	m := g.M()
	delta := cost.NewMatrix(m, m)
	for jy := 0; jy < m; jy++ {
		for jz := 0; jz < m; jz++ {
			best := cost.Inf
			for i := 0; i < m; i++ {
				if c := vec[i].Add(my.At(i, jy)).Add(mz.At(i, jz)); c.Less(best) {
					best = c
				}
			}
			delta.Set(jy, jz, best)
		}
	}
	g.RemoveVertex(u)
	g.AddEdgeCost(y, z, delta)
	if g.EdgeCost(y, z).IsZero() {
		g.RemoveEdge(y, z)
	}
	return record{kind: r2, u: u, vec: vec, nbrs: []int{y, z}, mats: []*cost.Matrix{my, mz}}
}

// Expand completes a selection of the reduced remainder into a full
// selection of the original graph, choosing every eliminated vertex's
// color optimally given its (by then colored) former neighbors. sel
// must assign every alive vertex of the reduced graph; eliminated
// entries may hold anything. It reports false if some eliminated vertex
// has no finite color (the problem is infeasible regardless of sel).
func (r *Reduction) Expand(sel pbqp.Selection) (pbqp.Selection, bool) {
	out := sel.Clone()
	for i := len(r.stack) - 1; i >= 0; i-- {
		rec := r.stack[i]
		best, bestCost := -1, cost.Inf
		for c := range rec.vec {
			v := rec.vec[c]
			for k, nb := range rec.nbrs {
				v = v.Add(rec.mats[k].At(c, out[nb]))
			}
			if !v.IsInf() && (best == -1 || v.Less(bestCost)) {
				best, bestCost = c, v
			}
		}
		if best == -1 {
			if rec.kind == r0 {
				// an isolated all-infinite vertex: infeasible
				return out, false
			}
			return out, false
		}
		out[rec.u] = best
	}
	return out, true
}

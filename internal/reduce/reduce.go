// Package reduce implements the exact PBQP reductions R0, R1 and R2 of
// Scholz and Eckstein as a standalone, solver-agnostic preprocessing
// pass. Unlike the full original solver (internal/solve/scholz), this
// pass never applies the lossy RN heuristic: the reduced problem is
// cost-equivalent to the original, so any solver — exact, enumeration,
// or Deep-RL — can run on the (often much smaller) remainder and the
// removed vertices are recolored optimally afterwards.
//
// This mirrors production PBQP allocators, which always run the exact
// reductions before anything expensive.
package reduce

import (
	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
)

// Reduction is the result of exactly reducing a PBQP graph.
type Reduction struct {
	// Graph is the reduced remainder: every alive vertex has degree
	// ≥ 3. It may be empty, in which case Expand solves the whole
	// problem by itself.
	Graph *pbqp.Graph
	// Eliminated is the number of vertices removed by R0/R1/R2.
	Eliminated int
	stack      []record
}

type kind int

const (
	r0 kind = iota
	r1
	r2
)

type record struct {
	kind kind
	u    int
	vec  cost.Vector
	nbrs []int
	mats []*cost.Matrix
}

// Apply exhaustively applies R0/R1/R2 to a copy of g and returns the
// reduction. The input graph is not mutated.
//
// Elimination order is the (degree, id)-lexicographic minimum among
// vertices of degree ≤ 2, recomputed after every reduction — the same
// order a full min-degree scan per step would produce, but maintained
// by a lazy worklist heap so reducing an n-vertex graph costs
// O((n + pushes) log n) instead of O(n · eliminated). The equivalence
// rests on degrees never increasing during reduction (R0 touches
// nothing, R1 drops its neighbor by one, R2 drops y and z by one or
// keeps them level), so a popped entry is stale exactly when its
// recorded degree or liveness no longer matches and a fresh entry was
// pushed at the moment of the change.
func Apply(g *pbqp.Graph) *Reduction {
	w := g.Clone()
	red := &Reduction{Graph: w}
	var h worklist
	for u := 0; u < w.NumVertices(); u++ {
		if w.Alive(u) && w.Degree(u) <= 2 {
			h.push(w.Degree(u), u)
		}
	}
	for len(h) > 0 {
		d, u := h.pop()
		if !w.Alive(u) || w.Degree(u) != d {
			continue // stale: the vertex was eliminated or re-pushed at a lower degree
		}
		red.Eliminated++
		var affected []int
		switch d {
		case 0:
			red.stack = append(red.stack, record{kind: r0, u: u, vec: w.VertexCost(u).Clone()})
			w.RemoveVertex(u)
		case 1:
			rec := reduceR1(w, u)
			red.stack = append(red.stack, rec)
			affected = rec.nbrs
		default:
			rec := reduceR2(w, u)
			red.stack = append(red.stack, rec)
			affected = rec.nbrs
		}
		for _, v := range affected {
			if w.Alive(v) && w.Degree(v) <= 2 {
				h.push(w.Degree(v), v)
			}
		}
	}
	return red
}

// worklist is a binary min-heap of (degree, vertex) pairs packed into
// one int64 key each, so the lexicographic (degree, id) minimum is the
// plain integer minimum. Entries are never updated in place: a vertex
// whose degree drops is pushed again and the stale entry is skipped on
// pop.
type worklist []int64

func (h *worklist) push(deg, u int) {
	*h = append(*h, int64(deg)<<32|int64(u))
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *worklist) pop() (deg, u int) {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l] < s[min] {
			min = l
		}
		if r < len(s) && s[r] < s[min] {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return int(top >> 32), int(top & 0xffffffff)
}

func reduceR1(g *pbqp.Graph, u int) record {
	y := g.Neighbors(u)[0]
	m := g.EdgeCost(u, y).Clone()
	vec := g.VertexCost(u).Clone()
	delta := make(cost.Vector, g.M())
	for j := 0; j < g.M(); j++ {
		best := cost.Inf
		for i := 0; i < g.M(); i++ {
			if c := vec[i].Add(m.At(i, j)); c.Less(best) {
				best = c
			}
		}
		delta[j] = best
	}
	g.AddToVertexCost(y, delta)
	g.RemoveVertex(u)
	return record{kind: r1, u: u, vec: vec, nbrs: []int{y}, mats: []*cost.Matrix{m}}
}

func reduceR2(g *pbqp.Graph, u int) record {
	ns := g.Neighbors(u)
	y, z := ns[0], ns[1]
	my := g.EdgeCost(u, y).Clone()
	mz := g.EdgeCost(u, z).Clone()
	vec := g.VertexCost(u).Clone()
	m := g.M()
	delta := cost.NewMatrix(m, m)
	for jy := 0; jy < m; jy++ {
		for jz := 0; jz < m; jz++ {
			best := cost.Inf
			for i := 0; i < m; i++ {
				if c := vec[i].Add(my.At(i, jy)).Add(mz.At(i, jz)); c.Less(best) {
					best = c
				}
			}
			delta.Set(jy, jz, best)
		}
	}
	g.RemoveVertex(u)
	g.AddEdgeCost(y, z, delta)
	if g.EdgeCost(y, z).IsZero() {
		g.RemoveEdge(y, z)
	}
	return record{kind: r2, u: u, vec: vec, nbrs: []int{y, z}, mats: []*cost.Matrix{my, mz}}
}

// Expand completes a selection of the reduced remainder into a full
// selection of the original graph, choosing every eliminated vertex's
// color optimally given its (by then colored) former neighbors. sel
// must assign every alive vertex of the reduced graph; eliminated
// entries may hold anything. It reports false if some eliminated vertex
// has no finite color (the problem is infeasible regardless of sel).
func (r *Reduction) Expand(sel pbqp.Selection) (pbqp.Selection, bool) {
	out := sel.Clone()
	for i := len(r.stack) - 1; i >= 0; i-- {
		rec := r.stack[i]
		best, bestCost := -1, cost.Inf
		for c := range rec.vec {
			v := rec.vec[c]
			for k, nb := range rec.nbrs {
				v = v.Add(rec.mats[k].At(c, out[nb]))
			}
			if !v.IsInf() && (best == -1 || v.Less(bestCost)) {
				best, bestCost = c, v
			}
		}
		if best == -1 {
			if rec.kind == r0 {
				// an isolated all-infinite vertex: infeasible
				return out, false
			}
			return out, false
		}
		out[rec.u] = best
	}
	return out, true
}

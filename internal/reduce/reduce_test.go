package reduce

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/solve/brute"
)

func TestTriangleReducesCompletely(t *testing.T) {
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, 2})
	g.SetVertexCost(1, cost.Vector{5, 0})
	g.SetVertexCost(2, cost.Vector{0, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{1, 3}, {7, 8}}))
	g.SetEdgeCost(1, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 4}, {9, 6}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 2}, {5, 3}}))
	r := Apply(g)
	if r.Graph.AliveCount() != 0 || r.Eliminated != 3 {
		t.Fatalf("triangle not fully reduced: alive=%d eliminated=%d", r.Graph.AliveCount(), r.Eliminated)
	}
	sel, ok := r.Expand(make(pbqp.Selection, 3))
	if !ok {
		t.Fatal("expand infeasible")
	}
	if c := g.TotalCost(sel); c != 11 {
		t.Errorf("expanded selection costs %v, want the optimum 11", c)
	}
}

func TestReducedRemainderHasMinDegree3(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{
			N: 4 + rng.Intn(12), M: 2 + rng.Intn(3), PEdge: 0.4, PInf: 0.1,
		})
		r := Apply(g)
		for _, u := range r.Graph.Vertices() {
			if r.Graph.Degree(u) < 3 {
				t.Fatalf("trial %d: vertex %d has degree %d after reduction", trial, u, r.Graph.Degree(u))
			}
		}
		if err := r.Graph.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReductionPreservesOptimum(t *testing.T) {
	// exact property: solving the reduced remainder optimally and
	// expanding yields the original optimum.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{
			N: 3 + rng.Intn(8), M: 2 + rng.Intn(3), PEdge: 0.45, PInf: 0.15,
		})
		want := (brute.Solver{}).Solve(g)
		r := Apply(g)
		var sel pbqp.Selection
		feasible := true
		if r.Graph.AliveCount() > 0 {
			sub := (brute.Solver{}).Solve(r.Graph)
			feasible = sub.Feasible
			if feasible {
				sel = sub.Selection
			}
		} else {
			sel = make(pbqp.Selection, g.NumVertices())
		}
		if !feasible {
			if want.Feasible {
				t.Fatalf("trial %d: reduction made a feasible problem infeasible", trial)
			}
			continue
		}
		full, ok := r.Expand(sel)
		if ok != want.Feasible {
			t.Fatalf("trial %d: expand ok=%v, brute feasible=%v", trial, ok, want.Feasible)
		}
		if !ok {
			continue
		}
		got := g.TotalCost(full)
		d := float64(got - want.Cost)
		if d > 1e-9*(1+float64(want.Cost)) || d < -1e-9*(1+float64(want.Cost)) {
			t.Fatalf("trial %d: expanded cost %v, optimum %v", trial, got, want.Cost)
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 8, M: 3, PEdge: 0.4, PInf: 0.1})
	before := g.String()
	Apply(g)
	if g.String() != before {
		t.Error("Apply mutated its input")
	}
}

func TestInfeasibleIsolatedVertex(t *testing.T) {
	g := pbqp.New(1, 2)
	g.SetVertexCost(0, cost.NewInfVector(2))
	r := Apply(g)
	if _, ok := r.Expand(make(pbqp.Selection, 1)); ok {
		t.Error("expanded an infeasible problem")
	}
}

func TestEmptyGraph(t *testing.T) {
	r := Apply(pbqp.New(0, 3))
	if r.Eliminated != 0 || r.Graph.AliveCount() != 0 {
		t.Error("empty graph misbehaved")
	}
	if _, ok := r.Expand(pbqp.Selection{}); !ok {
		t.Error("empty expand failed")
	}
}

func TestStarGraphR1Chain(t *testing.T) {
	// star: center 0, leaves 1..4. Leaves are R1-reduced, the center
	// becomes degree 0 and R0-reduced.
	m := 3
	g := pbqp.New(5, m)
	for v := 0; v < 5; v++ {
		vec := make(cost.Vector, m)
		for i := range vec {
			vec[i] = cost.Cost((v + i) % 4)
		}
		g.SetVertexCost(v, vec)
	}
	diag := cost.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		diag.Set(i, i, cost.Inf)
	}
	for leaf := 1; leaf < 5; leaf++ {
		g.SetEdgeCost(0, leaf, diag)
	}
	want := (brute.Solver{}).Solve(g)
	r := Apply(g)
	if r.Graph.AliveCount() != 0 {
		t.Fatalf("star not fully reduced")
	}
	sel, ok := r.Expand(make(pbqp.Selection, 5))
	if !ok {
		t.Fatal("infeasible")
	}
	if got := g.TotalCost(sel); got != want.Cost {
		t.Errorf("cost %v, optimum %v", got, want.Cost)
	}
}

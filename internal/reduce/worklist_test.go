package reduce

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/solve/brute"
)

// applyReference is the original full-scan formulation of Apply: pick
// the (degree, id)-minimum alive vertex by scanning the whole graph
// each step. The worklist heap in Apply must reproduce its elimination
// sequence exactly.
func applyReference(g *pbqp.Graph) *Reduction {
	w := g.Clone()
	red := &Reduction{Graph: w}
	lowest := func() int {
		best, bestDeg := -1, 0
		for _, u := range w.Vertices() {
			if d := w.Degree(u); best == -1 || d < bestDeg {
				best, bestDeg = u, d
				if d == 0 {
					return u
				}
			}
		}
		return best
	}
	for {
		u := lowest()
		if u < 0 || w.Degree(u) > 2 {
			return red
		}
		red.Eliminated++
		switch w.Degree(u) {
		case 0:
			red.stack = append(red.stack, record{kind: r0, u: u, vec: w.VertexCost(u).Clone()})
			w.RemoveVertex(u)
		case 1:
			red.stack = append(red.stack, reduceR1(w, u))
		default:
			red.stack = append(red.stack, reduceR2(w, u))
		}
	}
}

// TestWorklistMatchesReferenceOrder checks that the heap-driven Apply
// is observationally identical to the full-scan reference: same
// elimination sequence (kind and vertex, in order), same residual
// bytes, same eliminated count.
func TestWorklistMatchesReferenceOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{
			N:     1 + rng.Intn(14),
			M:     1 + rng.Intn(3),
			PEdge: rng.Float64() * 0.6,
			PInf:  0.05,
		})
		got := Apply(g)
		want := applyReference(g)
		if got.Eliminated != want.Eliminated {
			t.Fatalf("eliminated %d, reference %d\n%s", got.Eliminated, want.Eliminated, g)
		}
		if len(got.stack) != len(want.stack) {
			t.Fatalf("stack length %d, reference %d\n%s", len(got.stack), len(want.stack), g)
		}
		for i := range got.stack {
			if got.stack[i].kind != want.stack[i].kind || got.stack[i].u != want.stack[i].u {
				t.Fatalf("step %d: (kind=%d, u=%d), reference (kind=%d, u=%d)\n%s",
					i, got.stack[i].kind, got.stack[i].u, want.stack[i].kind, want.stack[i].u, g)
			}
		}
		if got.Graph.String() != want.Graph.String() {
			t.Fatalf("residuals differ\nworklist:\n%s\nreference:\n%s", got.Graph, want.Graph)
		}
	}
}

// TestExpandFullyDisconnected covers Expand when the whole input is
// edgeless: every vertex is R0-eliminated, the residual is empty, and
// Expand alone must recover the per-vertex minima.
func TestExpandFullyDisconnected(t *testing.T) {
	g := pbqp.New(6, 3)
	var want cost.Cost
	for u := 0; u < 6; u++ {
		vec := cost.Vector{cost.Cost(u + 3), cost.Cost(u % 2), cost.Cost(5)}
		if u == 4 {
			vec = cost.Vector{cost.Inf, cost.Cost(2), cost.Inf}
		}
		g.SetVertexCost(u, vec)
		min, _ := vec.Min()
		want = want.Add(min)
	}
	red := Apply(g)
	if red.Graph.AliveCount() != 0 {
		t.Fatalf("edgeless graph left %d residual vertices", red.Graph.AliveCount())
	}
	if red.Eliminated != 6 {
		t.Fatalf("eliminated %d of 6", red.Eliminated)
	}
	sel, ok := red.Expand(make(pbqp.Selection, g.NumVertices()))
	if !ok {
		t.Fatal("expansion failed on a feasible edgeless graph")
	}
	if got := g.TotalCost(sel); got != want {
		t.Fatalf("expanded cost %v, want sum of minima %v", got, want)
	}
	exact := brute.Solver{}.Solve(g)
	if !exact.Feasible || exact.Cost != want {
		t.Fatalf("oracle disagrees: feasible=%v cost=%v want %v", exact.Feasible, exact.Cost, want)
	}
}

// TestExpandFullyDisconnectedInfeasible: an all-infinite isolated
// vertex makes the problem infeasible, and Expand must say so even
// though the residual (empty) is trivially solvable.
func TestExpandFullyDisconnectedInfeasible(t *testing.T) {
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{1, 2})
	g.SetVertexCost(1, cost.Vector{cost.Inf, cost.Inf})
	g.SetVertexCost(2, cost.Vector{0, 4})
	red := Apply(g)
	if red.Graph.AliveCount() != 0 {
		t.Fatalf("edgeless graph left %d residual vertices", red.Graph.AliveCount())
	}
	if _, ok := red.Expand(make(pbqp.Selection, g.NumVertices())); ok {
		t.Fatal("expansion succeeded despite an all-infinite isolated vertex")
	}
}

// Package randgraph generates random PBQP problem instances.
//
// The paper trains its networks on Erdős–Rényi random PBQP graphs
// G(n, p_edge) whose cost vectors and matrices are random reals with a
// ratio p_inf of infinite entries (Section V-A uses p_inf = 1 % and
// normally distributed n with mean 100). For the ATE domain, every cost
// is zero or infinity; ZeroInf generates such instances around a hidden
// valid assignment so that a zero-cost solution is guaranteed to exist,
// mirroring real translatable test-pattern programs.
package randgraph

import (
	"math/rand"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
)

// Config parameterizes the Erdős–Rényi generator.
type Config struct {
	N     int     // number of vertices
	M     int     // number of colors
	PEdge float64 // probability of each of the n(n-1)/2 edges
	PInf  float64 // ratio of infinite cost entries (paper: 0.01)
	// MaxCost bounds finite random costs; zero means 10.
	MaxCost float64
}

// ErdosRenyi generates a random PBQP graph per the paper's training
// distribution. Vertex vectors always keep at least one finite entry so
// every instance has at least one finite-cost assignment candidate.
func ErdosRenyi(rng *rand.Rand, cfg Config) *pbqp.Graph {
	maxCost := cfg.MaxCost
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if maxCost == 0 {
		maxCost = 10
	}
	g := pbqp.New(cfg.N, cfg.M)
	entry := func() cost.Cost {
		if rng.Float64() < cfg.PInf {
			return cost.Inf
		}
		return cost.Cost(rng.Float64() * maxCost)
	}
	for u := 0; u < cfg.N; u++ {
		v := make(cost.Vector, cfg.M)
		for i := range v {
			v[i] = entry()
		}
		if v.AllInf() {
			v[rng.Intn(cfg.M)] = cost.Cost(rng.Float64() * maxCost)
		}
		g.SetVertexCost(u, v)
	}
	for u := 0; u < cfg.N; u++ {
		for w := u + 1; w < cfg.N; w++ {
			if rng.Float64() >= cfg.PEdge {
				continue
			}
			mat := cost.NewMatrix(cfg.M, cfg.M)
			for i := range mat.Data {
				mat.Data[i] = entry()
			}
			if mat.IsZero() {
				mat.Set(rng.Intn(cfg.M), rng.Intn(cfg.M), cost.Cost(1+rng.Float64()*maxCost))
			}
			g.SetEdgeCost(u, w, mat)
		}
	}
	return g
}

// LargeSparseConfig parameterizes the big-graph generator. It produces
// the kind of instance the decomposition pipeline targets: up to 10⁵
// vertices, locally dense but globally sparse, with a controllable
// number of connected components and articulation points.
type LargeSparseConfig struct {
	N int // total number of vertices (split across components)
	M int // number of colors
	// Components is the number of connected components; zero means 1.
	// Vertices are split into contiguous, near-equal ranges.
	Components int
	// ClusterSize is the target size of each dense cluster (a
	// biconnected block candidate); zero means 12. Each component is a
	// chain of clusters joined by single bridge edges, so every bridge
	// endpoint is an articulation point.
	ClusterSize int
	// Chords is the number of extra random intra-cluster edges per
	// cluster, on top of the circulant C(1,2) base (every cluster
	// vertex connects to its two ring successors, min degree 4, so the
	// clusters survive the R0/R1/R2 reductions). More chords shift the
	// degree distribution upward.
	Chords int
	// PInf is the ratio of infinite cost entries; keep it small (or
	// zero) on large instances if a feasible instance is required.
	PInf float64
	// MaxCost bounds finite random costs; zero means 10.
	MaxCost float64
}

// LargeSparse generates a large sparse PBQP graph as chains of dense
// circulant clusters joined by bridges. The same seed yields a
// byte-identical instance (see TestLargeSparseDeterministic); the
// layout guarantees cfg.Components connected components and, for
// cluster counts ≥ 2, articulation points at every bridge endpoint.
func LargeSparse(rng *rand.Rand, cfg LargeSparseConfig) *pbqp.Graph {
	comps := cfg.Components
	if comps <= 0 {
		comps = 1
	}
	if comps > cfg.N {
		comps = cfg.N
	}
	clusterSize := cfg.ClusterSize
	if clusterSize <= 0 {
		clusterSize = 12
	}
	maxCost := cfg.MaxCost
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if maxCost == 0 {
		maxCost = 10
	}
	g := pbqp.New(cfg.N, cfg.M)
	entry := func() cost.Cost {
		if rng.Float64() < cfg.PInf {
			return cost.Inf
		}
		return cost.Cost(rng.Float64() * maxCost)
	}
	for u := 0; u < cfg.N; u++ {
		v := make(cost.Vector, cfg.M)
		for i := range v {
			v[i] = entry()
		}
		if v.AllInf() {
			v[rng.Intn(cfg.M)] = cost.Cost(rng.Float64() * maxCost)
		}
		g.SetVertexCost(u, v)
	}
	edge := func(u, w int) {
		if u == w || g.EdgeCost(u, w) != nil {
			return
		}
		mat := cost.NewMatrix(cfg.M, cfg.M)
		for i := range mat.Data {
			mat.Data[i] = entry()
		}
		if mat.IsZero() {
			mat.Set(rng.Intn(cfg.M), rng.Intn(cfg.M), cost.Cost(1+rng.Float64()*maxCost))
		}
		g.SetEdgeCost(u, w, mat)
	}
	for c := 0; c < comps; c++ {
		// Contiguous vertex range [lo, hi) for this component.
		lo := c * cfg.N / comps
		hi := (c + 1) * cfg.N / comps
		size := hi - lo
		clusters := size / clusterSize
		if clusters == 0 {
			clusters = 1
		}
		prevEnd := -1
		for k := 0; k < clusters; k++ {
			cLo := lo + k*size/clusters
			cHi := lo + (k+1)*size/clusters
			n := cHi - cLo
			// Circulant base: u — u+1 and u — u+2 around the ring.
			for i := 0; i < n; i++ {
				edge(cLo+i, cLo+(i+1)%n)
				if n > 2 {
					edge(cLo+i, cLo+(i+2)%n)
				}
			}
			for ch := 0; ch < cfg.Chords && n > 3; ch++ {
				edge(cLo+rng.Intn(n), cLo+rng.Intn(n))
			}
			if prevEnd >= 0 {
				// Single bridge from the previous cluster: both
				// endpoints become articulation points.
				edge(prevEnd, cLo)
			}
			prevEnd = cHi - 1
		}
	}
	return g
}

// NormalN samples a vertex count from a normal distribution with the
// given mean and standard deviation, clamped to [min, ∞).
func NormalN(rng *rand.Rand, mean, stddev float64, min int) int {
	n := int(rng.NormFloat64()*stddev + mean)
	if n < min {
		n = min
	}
	return n
}

// ZeroInfConfig parameterizes the ATE-style zero/infinity generator.
type ZeroInfConfig struct {
	N     int     // number of vertices
	M     int     // number of colors (ATE: 13)
	PEdge float64 // edge probability
	// HardRatio is the fraction of vertices with liberty ≤ 4
	// (the paper reports ~40 % for real ATE programs).
	HardRatio float64
	// PEdgeInf is the probability that an edge matrix entry (other
	// than the hidden assignment's) is infinite, for edges incident
	// to at least one hard vertex.
	PEdgeInf float64
	// PEasyInf is the same probability for edges between two easy
	// vertices. Zero means PEdgeInf/8: in real ATE programs the
	// irregular pairing and major-cycle constraints concentrate on a
	// minority of registers, so easy-easy interactions are sparse and
	// the liberty solver's approximated remainder is tractable.
	PEasyInf float64
}

// ZeroInf generates a zero/infinity PBQP graph with a guaranteed
// zero-cost solution, which it returns alongside the graph. All finite
// entries are exactly zero, so any solution cost is zero or infinity —
// the no-spill ATE regime of Section II-B.
func ZeroInf(rng *rand.Rand, cfg ZeroInfConfig) (*pbqp.Graph, pbqp.Selection) {
	pEasyInf := cfg.PEasyInf
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if pEasyInf == 0 {
		pEasyInf = cfg.PEdgeInf / 8
	}
	g := pbqp.New(cfg.N, cfg.M)
	hidden := make(pbqp.Selection, cfg.N)
	hard := make([]bool, cfg.N)
	for u := range hidden {
		hidden[u] = rng.Intn(cfg.M)
		hard[u] = rng.Float64() < cfg.HardRatio
	}
	easyLo := 5 // easy vertex: liberty in [5, m] (clamped for small m)
	if easyLo > cfg.M {
		easyLo = cfg.M
	}
	hardHi := 4 // hard vertex: liberty in [1, 4] (clamped for small m)
	if hardHi > cfg.M {
		hardHi = cfg.M
	}
	for u := 0; u < cfg.N; u++ {
		liberty := easyLo + rng.Intn(cfg.M-easyLo+1)
		if hard[u] {
			liberty = 1 + rng.Intn(hardHi)
		}
		v := cost.NewInfVector(cfg.M)
		v[hidden[u]] = 0
		for _, c := range rng.Perm(cfg.M) {
			if liberty <= 1 {
				break
			}
			if v[c].IsInf() {
				v[c] = 0
				liberty--
			}
		}
		g.SetVertexCost(u, v)
	}
	for u := 0; u < cfg.N; u++ {
		for w := u + 1; w < cfg.N; w++ {
			if rng.Float64() >= cfg.PEdge {
				continue
			}
			pInf := cfg.PEdgeInf
			if !hard[u] && !hard[w] {
				pInf = pEasyInf
			}
			mat := cost.NewMatrix(cfg.M, cfg.M)
			for i := 0; i < cfg.M; i++ {
				for j := 0; j < cfg.M; j++ {
					if i == hidden[u] && j == hidden[w] {
						continue // keep the hidden solution feasible
					}
					if rng.Float64() < pInf {
						mat.Set(i, j, cost.Inf)
					}
				}
			}
			if !mat.IsZero() {
				g.SetEdgeCost(u, w, mat)
			}
		}
	}
	return g, hidden
}

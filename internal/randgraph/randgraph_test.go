package randgraph

import (
	"bytes"
	"math/rand"
	"testing"

	"pbqprl/internal/pbqp"
)

func TestErdosRenyiShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{N: 30, M: 4, PEdge: 0.3, PInf: 0.05}
	g := ErdosRenyi(rng, cfg)
	if g.NumVertices() != 30 || g.M() != 4 {
		t.Fatalf("shape = (%d, %d)", g.NumVertices(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// expected edges ≈ 0.3 * 30*29/2 = 130; allow a wide band
	if e := g.NumEdges(); e < 60 || e > 220 {
		t.Errorf("NumEdges = %d, outside plausible band", e)
	}
	for u := 0; u < g.NumVertices(); u++ {
		if g.VertexCost(u).AllInf() {
			t.Errorf("vertex %d has no selectable color", u)
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	cfg := Config{N: 10, M: 3, PEdge: 0.5, PInf: 0.1}
	a := ErdosRenyi(rand.New(rand.NewSource(5)), cfg)
	b := ErdosRenyi(rand.New(rand.NewSource(5)), cfg)
	if a.String() != b.String() {
		t.Error("same seed produced different graphs")
	}
	c := ErdosRenyi(rand.New(rand.NewSource(6)), cfg)
	if a.String() == c.String() {
		t.Error("different seeds produced identical graphs")
	}
}

func TestErdosRenyiInfRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := ErdosRenyi(rng, Config{N: 50, M: 5, PEdge: 0.4, PInf: 0.2})
	total, inf := 0, 0
	for u := 0; u < g.NumVertices(); u++ {
		for _, c := range g.VertexCost(u) {
			total++
			if c.IsInf() {
				inf++
			}
		}
	}
	for _, e := range g.Edges() {
		for _, c := range e.M.Data {
			total++
			if c.IsInf() {
				inf++
			}
		}
	}
	ratio := float64(inf) / float64(total)
	if ratio < 0.1 || ratio > 0.3 {
		t.Errorf("inf ratio = %.3f, want near 0.2", ratio)
	}
}

func TestNormalN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sum := 0
	for i := 0; i < 1000; i++ {
		n := NormalN(rng, 100, 15, 10)
		if n < 10 {
			t.Fatalf("NormalN returned %d < min", n)
		}
		sum += n
	}
	mean := float64(sum) / 1000
	if mean < 90 || mean > 110 {
		t.Errorf("mean = %.1f, want near 100", mean)
	}
}

func TestZeroInfHiddenSolutionIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		g, hidden := ZeroInf(rng, ZeroInfConfig{
			N: 40, M: 13, PEdge: 0.2, HardRatio: 0.4, PEdgeInf: 0.3,
		})
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if c := g.TotalCost(hidden); c != 0 {
			t.Fatalf("trial %d: hidden solution cost = %v, want 0", trial, c)
		}
	}
}

func TestZeroInfCostsAreZeroOrInf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _ := ZeroInf(rng, ZeroInfConfig{N: 20, M: 6, PEdge: 0.3, HardRatio: 0.5, PEdgeInf: 0.25})
	for u := 0; u < g.NumVertices(); u++ {
		for _, c := range g.VertexCost(u) {
			if c != 0 && !c.IsInf() {
				t.Fatalf("vertex %d has non-zero finite cost %v", u, c)
			}
		}
	}
	for _, e := range g.Edges() {
		for _, c := range e.M.Data {
			if c != 0 && !c.IsInf() {
				t.Fatalf("edge (%d,%d) has non-zero finite cost %v", e.U, e.V, c)
			}
		}
	}
}

func TestZeroInfHardRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, _ := ZeroInf(rng, ZeroInfConfig{N: 200, M: 13, PEdge: 0.1, HardRatio: 0.4, PEdgeInf: 0.1})
	hard := 0
	for u := 0; u < g.NumVertices(); u++ {
		if g.Liberty(u) <= 4 {
			hard++
		}
	}
	ratio := float64(hard) / 200
	if ratio < 0.25 || ratio > 0.6 {
		t.Errorf("hard ratio = %.2f, want near 0.4", ratio)
	}
}

// largeSparseComponents counts connected components by BFS, independent
// of the generator's layout bookkeeping.
func largeSparseComponents(g *pbqp.Graph) int {
	n := g.NumVertices()
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	comps := 0
	for r := 0; r < n; r++ {
		if seen[r] {
			continue
		}
		comps++
		seen[r] = true
		queue = append(queue[:0], r)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
	}
	return comps
}

func TestLargeSparseShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := LargeSparseConfig{N: 2000, M: 4, Components: 5, ClusterSize: 20, Chords: 6}
	g := LargeSparse(rng, cfg)
	if g.NumVertices() != 2000 || g.M() != 4 {
		t.Fatalf("shape = (%d, %d)", g.NumVertices(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := largeSparseComponents(g); got != 5 {
		t.Fatalf("components = %d, want 5", got)
	}
	// Circulant C(1,2) base: every vertex has degree ≥ 4 except where
	// a cluster is tiny, so the graph is sparse but not reducible to
	// nothing. Average degree stays well under 2·(4+2·Chords/Cluster).
	minDeg, sumDeg := g.NumVertices(), 0
	for u := 0; u < g.NumVertices(); u++ {
		d := g.Degree(u)
		sumDeg += d
		if d < minDeg {
			minDeg = d
		}
	}
	if minDeg < 4 {
		t.Errorf("min degree = %d, want ≥ 4 with full-size clusters", minDeg)
	}
	if avg := float64(sumDeg) / 2000; avg > 8 {
		t.Errorf("average degree = %.1f, graph is not sparse", avg)
	}
}

// TestLargeSparseDeterministic pins the satellite promise: the same
// seed yields a byte-identical serialized instance.
func TestLargeSparseDeterministic(t *testing.T) {
	cfg := LargeSparseConfig{N: 500, M: 3, Components: 3, ClusterSize: 15, Chords: 4, PInf: 0.01}
	write := func(seed int64) string {
		g := LargeSparse(rand.New(rand.NewSource(seed)), cfg)
		var buf bytes.Buffer
		if err := pbqp.Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if write(11) != write(11) {
		t.Error("same seed produced different bytes")
	}
	if write(11) == write(12) {
		t.Error("different seeds produced identical bytes")
	}
}

func TestLargeSparseDefaultsAndSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := LargeSparse(rng, LargeSparseConfig{N: 7, M: 2})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := largeSparseComponents(g); got != 1 {
		t.Fatalf("components = %d, want 1", got)
	}
	// More components than vertices clamps to one vertex per component.
	g = LargeSparse(rand.New(rand.NewSource(9)), LargeSparseConfig{N: 3, M: 2, Components: 10})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := largeSparseComponents(g); got != 3 {
		t.Fatalf("components = %d, want 3 singletons", got)
	}
}

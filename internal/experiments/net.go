// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) at laptop scale: the Figure 6 node counts, the
// Section V-B success/search-space/ablation numbers, and the Section
// V-C LLVM-style cost-sum and speedup comparisons. See DESIGN.md's
// per-experiment index (E1–E9) for the mapping.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"pbqprl/internal/ate"
	"pbqprl/internal/checkpoint"
	"pbqprl/internal/game"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/selfplay"
)

// TrainSpec identifies a trained network. The paper trains with MCTS
// budget k_train on 20,000 random graphs over two weeks of GPU time;
// the laptop-scale defaults train the same pipeline on the same graph
// family for a few minutes. Identical specs are cached on disk.
type TrainSpec struct {
	// KTrain is the self-play MCTS budget (the paper's k_train).
	KTrain int
	// Iterations and Episodes size the run (paper: 200 × 100).
	Iterations int
	Episodes   int
	// Seed fixes the whole training run.
	Seed int64
}

// DefaultNetConfig is the laptop-scale network: m = 13 (the ATE
// register count, and equally the compiler target's 12 registers +
// spill), two GCN layers, a compact torso.
func DefaultNetConfig() net.Config {
	return net.Config{M: 13, GCNLayers: 1, Hidden: 24, Blocks: 1, Seed: 7}
}

// ateTrainingGraph samples the training distribution: PBQP graphs
// derived from random synthetic ATE programs — the same pairing,
// interference and major-cycle structure the evaluation programs have.
// (The paper trains on random PBQP graphs of mean size 100; we train
// in-distribution at smaller sizes to keep self-play affordable, which
// matters much more at laptop scale than it does after two GPU-weeks.)
func ateTrainingGraph(rng *rand.Rand) *pbqp.Graph {
	n := randgraph.NormalN(rng, 50, 16, 20)
	prog, _ := ate.Generate(ate.DefaultMachine(), ate.GenConfig{
		Name:      "train",
		NumVRegs:  n,
		PairRatio: 0.3,
		HardRatio: 0.4,
		MaxLive:   8,
		Seed:      rng.Int63(),
	})
	g, err := ate.BuildPBQP(prog)
	if err != nil {
		//pbqpvet:ignore panicfree experiment harness: aborting beats publishing figures from a broken training setup
		panic("experiments: training program invalid: " + err.Error())
	}
	return g
}

type cacheKey struct {
	spec TrainSpec
	tag  string
}

// netEntry is one in-flight or completed training run. ready closes
// once n is set, so duplicate requesters wait on the channel instead
// of holding netCacheMu across a training run (minutes) — the mutex
// only ever guards map access.
type netEntry struct {
	ready chan struct{}
	n     *net.PBQPNet
}

var (
	netCacheMu sync.Mutex
	netCache   = map[cacheKey]*netEntry{}
)

// TrainedNet returns the ATE-regime network for spec, training it on
// first use and caching it in memory and on disk (os.TempDir). Progress
// lines go to progress when non-nil.
func TrainedNet(spec TrainSpec, progress func(string)) *net.PBQPNet {
	return trainedNetWith(spec, ateTrainingGraph, game.OrderDecLiberty, "ate", progress)
}

// trainedNetWith trains (or loads) a network for the given training
// graph distribution and coloring order, keyed by (spec, tag).
func trainedNetWith(spec TrainSpec, gen func(*rand.Rand) *pbqp.Graph, order game.Order, tag string, progress func(string)) *net.PBQPNet {
	key := cacheKey{spec: spec, tag: tag}
	netCacheMu.Lock()
	e, inFlight := netCache[key]
	if !inFlight {
		e = &netEntry{ready: make(chan struct{})}
		netCache[key] = e
	}
	netCacheMu.Unlock()
	if inFlight {
		<-e.ready
		return e.n
	}
	e.n = buildNet(spec, gen, order, tag, progress)
	close(e.ready)
	return e.n
}

// buildNet loads the network for (spec, tag) from the disk cache or
// trains it from scratch. Callers hold no lock: training takes minutes
// and must not serialize unrelated cache lookups.
func buildNet(spec TrainSpec, gen func(*rand.Rand) *pbqp.Graph, order game.Order, tag string, progress func(string)) *net.PBQPNet {
	n := net.New(DefaultNetConfig())
	path := cachePath(spec, tag)
	if f, err := os.Open(path); err == nil {
		err = n.Load(f)
		f.Close()
		if err == nil {
			if progress != nil {
				progress(fmt.Sprintf("loaded cached net %s", path))
			}
			return n
		}
		// cache from an older architecture: retrain
		n = net.New(DefaultNetConfig())
	}
	trainer := selfplay.New(n, selfplay.Config{
		EpisodesPerIter: spec.Episodes,
		KTrain:          spec.KTrain,
		ReplayCap:       20_000,
		BatchSize:       32,
		TrainSteps:      2 * spec.Episodes,
		// parallel episodes; the worker count does not affect the
		// trained network, so the disk cache stays valid across runs
		// on machines with different core counts
		Workers: runtime.GOMAXPROCS(0),
		// Laptop-scale promotion gate: the paper keeps the candidate
		// when it wins > 5 of 10 arena games; at our tiny episode
		// counts (and in the tie-heavy zero/∞ regime) that gate
		// almost never opens and every iteration's learning would be
		// discarded, so the candidate is kept when it wins > 2 of 8.
		ArenaGames:   8,
		ArenaWins:    2,
		PromoteOnTie: true,
		Order:        order,
		Generate:     gen,
		Seed:         spec.Seed,
	})
	for i := 0; i < spec.Iterations; i++ {
		stats, err := trainer.RunIteration(context.Background())
		if err != nil {
			//pbqpvet:ignore panicfree experiment harness: aborting beats publishing figures from a broken training setup
			panic("experiments: training failed: " + err.Error())
		}
		if progress != nil {
			progress(stats.String())
		}
	}
	best := trainer.Best()
	// best-effort disk cache; the atomic write keeps a concurrent
	// reader from seeing a torn file
	if data, err := best.SaveBytes(); err == nil {
		_ = checkpoint.WriteFileAtomic(path, data)
	}
	return best
}

func cachePath(spec TrainSpec, tag string) string {
	dir := filepath.Join(os.TempDir(), "pbqprl-nets")
	_ = os.MkdirAll(dir, 0o755)
	return filepath.Join(dir, fmt.Sprintf("%s-k%d-i%d-e%d-s%d.gob",
		tag, spec.KTrain, spec.Iterations, spec.Episodes, spec.Seed))
}

// LoadNet loads a checkpoint with the default architecture from path,
// returning nil if the file is missing or incompatible.
func LoadNet(path string) *net.PBQPNet {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	n := net.New(DefaultNetConfig())
	if err := n.Load(f); err != nil {
		return nil
	}
	return n
}

// SpecK50 and SpecK100 are the two training budgets of Section V-B,
// scaled to laptop time.
func SpecK50() TrainSpec  { return TrainSpec{KTrain: 50, Iterations: 6, Episodes: 20, Seed: 13} }
func SpecK100() TrainSpec { return TrainSpec{KTrain: 100, Iterations: 6, Episodes: 20, Seed: 14} }

package experiments

import (
	"os"
	"strings"
	"testing"

	"pbqprl/internal/ate"
	"pbqprl/internal/game"
	"pbqprl/internal/rl"
)

// tinySpec trains almost instantly; enough to exercise the plumbing.
func tinySpec() TrainSpec { return TrainSpec{KTrain: 4, Iterations: 1, Episodes: 2, Seed: 99} }

func TestTrainedNetCachesOnDisk(t *testing.T) {
	spec := tinySpec()
	os.Remove(cachePath(spec, "ate"))
	var lines []string
	n1 := TrainedNet(spec, func(s string) { lines = append(lines, s) })
	if n1 == nil || len(lines) == 0 {
		t.Fatal("no training happened")
	}
	// drop the in-memory cache to force the disk path
	netCacheMu.Lock()
	delete(netCache, cacheKey{spec: spec, tag: "ate"})
	netCacheMu.Unlock()
	var lines2 []string
	n2 := TrainedNet(spec, func(s string) { lines2 = append(lines2, s) })
	if n2 == nil {
		t.Fatal("reload failed")
	}
	if len(lines2) != 1 || !strings.Contains(lines2[0], "loaded cached net") {
		t.Fatalf("expected disk-cache load, got %v", lines2)
	}
}

func TestLoadNetRejectsMissing(t *testing.T) {
	if LoadNet("/nonexistent/net.gob") != nil {
		t.Fatal("loaded a nonexistent checkpoint")
	}
}

func TestTrainedNetSolvesSmallATEProgram(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a network")
	}
	n := TrainedNet(tinySpec(), nil)
	b := ate.Suite()[0]
	s := &rl.Solver{Net: n, Cfg: rl.Config{
		K: 25, Order: game.OrderIncLiberty, Backtrack: true,
		ReinvokeMCTS: true, MaxNodes: 200_000,
	}}
	res := s.Solve(b.Graph)
	if !res.Feasible {
		t.Errorf("tiny-trained net + backtracking failed PRO1 (states=%d)", res.States)
	}
}

func TestFig6VariantsShape(t *testing.T) {
	vs := Fig6Variants()
	if len(vs) != 4 {
		t.Fatalf("variants = %d", len(vs))
	}
	if vs[0].Backtrack || !vs[3].Backtrack {
		t.Error("variant backtracking flags wrong")
	}
	if vs[3].Order != game.OrderDecLiberty || vs[2].Order != game.OrderIncLiberty {
		t.Error("variant orders wrong")
	}
}

func TestPrintersProduceTables(t *testing.T) {
	var sb strings.Builder
	PrintFig6(&sb, []Fig6Row{{Program: "PRO1", KInfer: 25,
		Cells: []Fig6Cell{{10, true}, {20, true}, {30, false}, {40, true}}}})
	out := sb.String()
	if !strings.Contains(out, "PRO1") || !strings.Contains(out, "X") {
		t.Errorf("fig6 table malformed:\n%s", out)
	}
	sb.Reset()
	PrintATESuccess(&sb, []ATESuccessRow{{KTrain: 50, KInfer: 25, Failures: 7}})
	if !strings.Contains(sb.String(), "( 50, 25): 7 failures") {
		t.Errorf("ate-k table malformed:\n%s", sb.String())
	}
	sb.Reset()
	PrintSearchSpace(&sb, []SearchSpaceRow{{Program: "PRO10", LibertyStates: 19_800_000, RLNodes: 5600, Ratio: 3535, LibertyOK: true, RLOK: true}})
	if !strings.Contains(sb.String(), "PRO10") {
		t.Errorf("searchspace table malformed:\n%s", sb.String())
	}
	sb.Reset()
	PrintDeadEnd(&sb, []DeadEndRow{{Program: "PRO1", WithMCTS: 5, WithoutMCTS: 6, OKWithMCTS: true, OKWithout: true}})
	if !strings.Contains(sb.String(), "PRO1") {
		t.Errorf("deadend table malformed:\n%s", sb.String())
	}
	sb.Reset()
	PrintKTradeoff(&sb, []KTradeoffRow{{Label: "(50,25)", TotalNodes: 100}})
	if !strings.Contains(sb.String(), "(50,25)") {
		t.Errorf("ktradeoff table malformed:\n%s", sb.String())
	}
	sb.Reset()
	PrintCostSums(&sb, []CostSumRow{{Program: "Oscar", PBQP: 100,
		RL: map[int]float64{40: 105, 80: 100, 160: 100}, Delta: map[int]float64{40: 0.05, 80: 0, 160: 0}}})
	if !strings.Contains(sb.String(), "Oscar") {
		t.Errorf("cost table malformed:\n%s", sb.String())
	}
	sb.Reset()
	PrintSpeedups(&sb, []SpeedupRow{{Allocator: "GREEDY", Speedup: 1.464}})
	if !strings.Contains(sb.String(), "GREEDY") || !strings.Contains(sb.String(), "1.464") {
		t.Errorf("speedup table malformed:\n%s", sb.String())
	}
}

package experiments

import (
	"fmt"
	"io"

	"pbqprl/internal/ate"
	"pbqprl/internal/game"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/scholz"
)

// rlConfig builds the standard inference configuration used across the
// ATE experiments.
func rlConfig(k int, order game.Order, backtrack bool) rl.Config {
	return rlConfigBudget(k, order, backtrack, 100_000)
}

// rlConfigBudget allows per-experiment node budgets: Figure 6 sweeps 80
// solver configurations and keeps failures cheap, while the
// search-space comparison gives the solver room on the biggest
// programs.
func rlConfigBudget(k int, order game.Order, backtrack bool, budget int64) rl.Config {
	return rl.Config{
		K:            k,
		Order:        order,
		Backtrack:    backtrack,
		ReinvokeMCTS: true,
		MaxNodes:     budget,
		Seed:         1,
	}
}

// Fig6Variant identifies one bar group of Figure 6.
type Fig6Variant struct {
	Label     string
	Order     game.Order
	Backtrack bool
}

// Fig6Variants returns the paper's four variants: (a) no backtracking,
// (b) backtracking + random order, (c) + increasing liberty, (d) +
// decreasing liberty.
func Fig6Variants() []Fig6Variant {
	return []Fig6Variant{
		{Label: "(a) no-backtrack", Order: game.OrderDecLiberty, Backtrack: false},
		{Label: "(b) bt+random", Order: game.OrderRandom, Backtrack: true},
		{Label: "(c) bt+inc-liberty", Order: game.OrderIncLiberty, Backtrack: true},
		{Label: "(d) bt+dec-liberty", Order: game.OrderDecLiberty, Backtrack: true},
	}
}

// Fig6Cell is one bar of Figure 6.
type Fig6Cell struct {
	Nodes   int64
	Success bool
}

// Fig6Row is one program's bars for one k_infer.
type Fig6Row struct {
	Program string
	KInfer  int
	Cells   []Fig6Cell // indexed like Fig6Variants
}

// Fig6 reproduces experiment E1: the total number of game-tree nodes
// generated per ATE program for the four solver variants, at the two
// inference budgets of the figure (k_infer 25 and 50), with a network
// trained at k_train = 50. Failures carry the X mark via Success=false.
func Fig6(progress func(string)) []Fig6Row {
	n := TrainedNet(SpecK50(), progress)
	var rows []Fig6Row
	for _, kInfer := range []int{25, 50} {
		for _, b := range ate.Suite() {
			row := Fig6Row{Program: b.Program.Name, KInfer: kInfer}
			for _, v := range Fig6Variants() {
				s := &rl.Solver{Net: n, Cfg: rlConfigBudget(kInfer, v.Order, v.Backtrack, 25_000)}
				res := s.Solve(b.Graph)
				row.Cells = append(row.Cells, Fig6Cell{Nodes: res.States, Success: res.Feasible})
				if progress != nil {
					progress(fmt.Sprintf("fig6 %s k=%d %s: nodes=%d ok=%v",
						b.Program.Name, kInfer, v.Label, res.States, res.Feasible))
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// PrintFig6 renders the rows as the two panels of Figure 6.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	variants := Fig6Variants()
	for _, kInfer := range []int{25, 50} {
		fmt.Fprintf(w, "\nFigure 6 — nodes generated (k_infer = %d); X = no valid solution\n", kInfer)
		fmt.Fprintf(w, "%-8s", "program")
		for _, v := range variants {
			fmt.Fprintf(w, " %18s", v.Label)
		}
		fmt.Fprintln(w)
		for _, r := range rows {
			if r.KInfer != kInfer {
				continue
			}
			fmt.Fprintf(w, "%-8s", r.Program)
			for _, c := range r.Cells {
				mark := ""
				if !c.Success {
					mark = " X"
				}
				fmt.Fprintf(w, " %16d%2s", c.Nodes, mark)
			}
			fmt.Fprintln(w)
		}
	}
}

// ATESuccessRow is one (k_train, k_infer) line of experiment E2.
type ATESuccessRow struct {
	KTrain, KInfer int
	Failures       int
	FailedPrograms []string
}

// ATESuccess reproduces experiment E2: Deep-RL without backtracking for
// the paper's (k_train, k_infer) pairs; the paper reports 7 / 1 / 0
// failing programs for (50,25) / (50,50) / (100,150).
func ATESuccess(progress func(string)) []ATESuccessRow {
	pairs := []struct {
		spec   TrainSpec
		kinfer int
	}{
		{SpecK50(), 25},
		{SpecK50(), 50},
		{SpecK100(), 150},
	}
	var rows []ATESuccessRow
	for _, p := range pairs {
		n := TrainedNet(p.spec, progress)
		row := ATESuccessRow{KTrain: p.spec.KTrain, KInfer: p.kinfer}
		for _, b := range ate.Suite() {
			// one-way runs use the increasing-liberty order at laptop
			// scale (see EXPERIMENTS.md E1/E2)
			s := &rl.Solver{Net: n, Cfg: rlConfig(p.kinfer, game.OrderIncLiberty, false)}
			if !s.Solve(b.Graph).Feasible {
				row.Failures++
				row.FailedPrograms = append(row.FailedPrograms, b.Program.Name)
			}
		}
		if progress != nil {
			progress(fmt.Sprintf("ate-k (%d,%d): %d failures %v", row.KTrain, row.KInfer, row.Failures, row.FailedPrograms))
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintATESuccess renders E2.
func PrintATESuccess(w io.Writer, rows []ATESuccessRow) {
	fmt.Fprintln(w, "\nSection V-B — Deep-RL without backtracking: failing programs per (k_train, k_infer)")
	fmt.Fprintln(w, "(paper: (50,25) fails 7, (50,50) fails 1, (100,150) fails 0)")
	for _, r := range rows {
		fmt.Fprintf(w, "(%3d,%3d): %d failures %v\n", r.KTrain, r.KInfer, r.Failures, r.FailedPrograms)
	}
}

// SearchSpaceRow compares explored states per program (experiment E3).
type SearchSpaceRow struct {
	Program       string
	ScholzOK      bool
	LibertyStates int64
	LibertyOK     bool
	RLNodes       int64
	RLOK          bool
	Ratio         float64 // LibertyStates / RLNodes
}

// SearchSpace reproduces experiments E3 and E9: the original solver's
// failures, the liberty enumeration's explored states, and the Deep-RL
// (variant d) node counts, per ATE program.
func SearchSpace(progress func(string)) []SearchSpaceRow {
	n := TrainedNet(SpecK50(), progress)
	var rows []SearchSpaceRow
	for _, b := range ate.Suite() {
		row := SearchSpaceRow{Program: b.Program.Name}
		row.ScholzOK = (scholz.Solver{}).Solve(b.Graph).Feasible
		lres := (liberty.Solver{MaxStates: 50_000_000}).Solve(b.Graph)
		row.LibertyStates, row.LibertyOK = lres.States, lres.Feasible
		// variant (c): backtracking with the increasing-liberty order.
		// At laptop training scale it is the variant that, like the
		// paper's solvers, succeeds on every program; see EXPERIMENTS.md
		// on the dec-liberty variant's budget sensitivity.
		s := &rl.Solver{Net: n, Cfg: rlConfig(25, game.OrderIncLiberty, true)}
		rres := s.Solve(b.Graph)
		row.RLNodes, row.RLOK = rres.States, rres.Feasible
		if row.RLNodes > 0 {
			row.Ratio = float64(row.LibertyStates) / float64(row.RLNodes)
		}
		if progress != nil {
			progress(fmt.Sprintf("searchspace %s: scholz=%v liberty=%d(%v) rl=%d(%v) ratio=%.0f",
				row.Program, row.ScholzOK, row.LibertyStates, row.LibertyOK, row.RLNodes, row.RLOK, row.Ratio))
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintSearchSpace renders E3/E9.
func PrintSearchSpace(w io.Writer, rows []SearchSpaceRow) {
	fmt.Fprintln(w, "\nSection V-B — search space: liberty enumeration states vs Deep-RL+backtracking nodes")
	fmt.Fprintln(w, "(paper: original solver fails 9/10; ratio 3,500–13,000, e.g. 19.8M vs 5.6K on PRO10)")
	fmt.Fprintf(w, "%-8s %-8s %14s %14s %10s\n", "program", "scholz", "liberty", "deep-rl+bt", "ratio")
	for _, r := range rows {
		mark := func(ok bool) string {
			if ok {
				return ""
			}
			return " X"
		}
		fmt.Fprintf(w, "%-8s %-8v %12d%2s %12d%2s %10.0f\n",
			r.Program, r.ScholzOK, r.LibertyStates, mark(r.LibertyOK), r.RLNodes, mark(r.RLOK), r.Ratio)
	}
}

// DeadEndRow is one program of the E4 ablation.
type DeadEndRow struct {
	Program               string
	WithMCTS, WithoutMCTS int64
	OKWithMCTS, OKWithout bool
}

// DeadEndAblation reproduces experiment E4: variant (d) at k_infer = 25
// with and without re-invoking MCTS at the parent of a dead end. The
// paper found no tangible difference.
func DeadEndAblation(progress func(string)) []DeadEndRow {
	n := TrainedNet(SpecK50(), progress)
	var rows []DeadEndRow
	for _, b := range ate.Suite() {
		row := DeadEndRow{Program: b.Program.Name}
		with := &rl.Solver{Net: n, Cfg: rlConfigBudget(25, game.OrderIncLiberty, true, 40_000)}
		res := with.Solve(b.Graph)
		row.WithMCTS, row.OKWithMCTS = res.States, res.Feasible
		cfg := rlConfigBudget(25, game.OrderIncLiberty, true, 40_000)
		cfg.ReinvokeMCTS = false
		without := &rl.Solver{Net: n, Cfg: cfg}
		res = without.Solve(b.Graph)
		row.WithoutMCTS, row.OKWithout = res.States, res.Feasible
		if progress != nil {
			progress(fmt.Sprintf("deadend %s: with=%d(%v) without=%d(%v)",
				row.Program, row.WithMCTS, row.OKWithMCTS, row.WithoutMCTS, row.OKWithout))
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintDeadEnd renders E4.
func PrintDeadEnd(w io.Writer, rows []DeadEndRow) {
	fmt.Fprintln(w, "\nSection V-B — dead-end ablation: re-invoke MCTS at the parent vs next-best action")
	fmt.Fprintf(w, "%-8s %14s %14s\n", "program", "re-invoke", "next-best")
	for _, r := range rows {
		mark := func(ok bool) string {
			if ok {
				return ""
			}
			return " X"
		}
		fmt.Fprintf(w, "%-8s %12d%2s %12d%2s\n", r.Program,
			r.WithMCTS, mark(r.OKWithMCTS), r.WithoutMCTS, mark(r.OKWithout))
	}
}

// KTradeoffRow is experiment E5: thinking more in training vs inference.
type KTradeoffRow struct {
	Label      string
	TotalNodes int64
	Failures   int
}

// KTradeoff reproduces experiment E5: (k_train=100, k_infer=20) vs
// (k_train=50, k_infer=25); the paper reports up to 10 % fewer nodes
// for the higher-k_train network.
func KTradeoff(progress func(string)) []KTradeoffRow {
	configs := []struct {
		label  string
		spec   TrainSpec
		kinfer int
	}{
		{"(50,25)", SpecK50(), 25},
		{"(100,20)", SpecK100(), 20},
	}
	var rows []KTradeoffRow
	for _, c := range configs {
		n := TrainedNet(c.spec, progress)
		row := KTradeoffRow{Label: c.label}
		for _, b := range ate.Suite() {
			s := &rl.Solver{Net: n, Cfg: rlConfigBudget(c.kinfer, game.OrderIncLiberty, true, 40_000)}
			res := s.Solve(b.Graph)
			row.TotalNodes += res.States
			if !res.Feasible {
				row.Failures++
			}
		}
		if progress != nil {
			progress(fmt.Sprintf("ktradeoff %s: nodes=%d failures=%d", row.Label, row.TotalNodes, row.Failures))
		}
		rows = append(rows, row)
	}
	return rows
}

// PrintKTradeoff renders E5.
func PrintKTradeoff(w io.Writer, rows []KTradeoffRow) {
	fmt.Fprintln(w, "\nSection V-B — k_train/k_infer trade-off (total nodes over PRO1-10, backtracking, dec-liberty)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s nodes=%-10d failures=%d\n", r.Label, r.TotalNodes, r.Failures)
	}
}

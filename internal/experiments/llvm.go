package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"pbqprl/internal/cost"
	"pbqprl/internal/game"
	"pbqprl/internal/llvmsuite"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/perfmodel"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/regalloc"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/scholz"
)

// llvmTrainingGraph samples the paper's stated training distribution
// for the regular-CPU experiments: Erdős–Rényi random PBQP graphs with
// real-valued costs and a 1 % infinity ratio (Section V-A).
func llvmTrainingGraph(rng *rand.Rand) *pbqp.Graph {
	n := randgraph.NormalN(rng, 30, 6, 10)
	return randgraph.ErdosRenyi(rng, randgraph.Config{
		N: n, M: 13, PEdge: 0.15, PInf: 0.01, MaxCost: 40,
	})
}

// SpecLLVM is the laptop-scale training budget for the compiler
// experiments (the paper's k_train = 50 run).
func SpecLLVM() TrainSpec { return TrainSpec{KTrain: 50, Iterations: 6, Episodes: 20, Seed: 23} }

// LLVMNet returns the network trained for the compiler cost regime.
func LLVMNet(progress func(string)) *net.PBQPNet {
	return trainedNetWith(SpecLLVM(), llvmTrainingGraph, game.OrderFixed, "llvm", progress)
}

// CostSumRow is one program of experiment E6.
type CostSumRow struct {
	Program string
	PBQP    float64         // Scholz–Eckstein cost sum
	RL      map[int]float64 // k_infer -> PBQP-RL cost sum
	Delta   map[int]float64 // k_infer -> (RL-PBQP)/PBQP
}

// KInferLLVM are the inference budgets of Section V-C (150, 300, 650 in
// the paper), scaled to laptop time while preserving the 1:2:4+ shape.
var KInferLLVM = []int{20, 40, 80, 160}

// CostSums reproduces experiment E6: the PBQP cost sums achieved by the
// original solver vs PBQP-RL at increasing k_infer, per program. The
// paper's shape: nearly identical sums, with Oscar and FloatMM slightly
// (< 9 %) worse at the lowest budget, converging as k_infer grows.
func CostSums(progress func(string)) []CostSumRow {
	n := LLVMNet(progress)
	target := regalloc.DefaultTarget()
	var rows []CostSumRow
	for _, b := range llvmsuite.All() {
		row := CostSumRow{Program: b.Prog.Name, RL: map[int]float64{}, Delta: map[int]float64{}}
		type fnProblem struct {
			in regalloc.Input
			g  *pbqp.Graph
			sc solve.Result
		}
		var problems []fnProblem
		for i, f := range b.Prog.Funcs {
			in := regalloc.NewInput(f, target, b.Allowed[i])
			g := regalloc.BuildPBQP(in)
			sc := (scholz.Solver{}).Solve(g)
			row.PBQP += float64(sc.Cost)
			problems = append(problems, fnProblem{in: in, g: g, sc: sc})
		}
		for _, k := range KInferLLVM {
			sum := 0.0
			for _, p := range problems {
				s := &rl.Solver{Net: n, Cfg: rl.Config{
					K: k, Order: game.OrderFixed,
					Baseline: p.sc.Cost, HasBaseline: true, Graded: true, HeuristicValue: true,
					MaxNodes: 2_000_000, Seed: 3,
				}}
				res := s.Solve(p.g)
				if res.Feasible {
					sum += float64(res.Cost)
				} else {
					// spill-everything is always finite; treat an
					// aborted search as that worst case
					sum += float64(spillEverythingCost(p.g))
				}
			}
			row.RL[k] = sum
			//pbqpvet:ignore floatcmp exact zero marks a missing PBQP baseline, assigned not computed
			if row.PBQP != 0 {
				row.Delta[k] = (sum - row.PBQP) / row.PBQP
			}
		}
		if progress != nil {
			progress(fmt.Sprintf("llvm-cost %s: pbqp=%.1f rl=%v", row.Program, row.PBQP, row.RL))
		}
		rows = append(rows, row)
	}
	return rows
}

// spillEverythingCost evaluates the all-spill selection.
func spillEverythingCost(g *pbqp.Graph) cost.Cost {
	sel := make([]int, g.NumVertices())
	return g.TotalCost(sel) // color 0 is the spill option
}

// PrintCostSums renders E6.
func PrintCostSums(w io.Writer, rows []CostSumRow) {
	fmt.Fprintln(w, "\nSection V-C — PBQP cost sums: original solver vs PBQP-RL per k_infer")
	fmt.Fprintln(w, "(paper shape: ≈equal, Oscar/FloatMM < 9 % worse at the lowest k, converging at higher k)")
	fmt.Fprintf(w, "%-12s %12s", "program", "PBQP")
	for _, k := range KInferLLVM {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("RL(k=%d)", k))
	}
	fmt.Fprintf(w, " %22s\n", "delta per k")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %12.1f", r.Program, r.PBQP)
		for _, k := range KInferLLVM {
			fmt.Fprintf(w, " %10.1f", r.RL[k])
		}
		for _, k := range KInferLLVM {
			fmt.Fprintf(w, " %+6.1f%%", 100*r.Delta[k])
		}
		fmt.Fprintln(w)
	}
}

// SpeedupRow is experiment E7's summary line.
type SpeedupRow struct {
	Allocator string
	Speedup   float64 // geometric-mean-free aggregate: total FAST cycles / total cycles
}

// Speedups reproduces experiment E7: estimated speedup of generated
// code over the FAST baseline for BASIC, GREEDY, PBQP and PBQP-RL
// (paper: GREEDY 1.464×, PBQP 1.422×, PBQP-RL 1.416×).
func Speedups(progress func(string)) []SpeedupRow {
	n := LLVMNet(progress)
	target := regalloc.DefaultTarget()
	params := perfmodel.DefaultParams()
	cycles := map[string]float64{}
	for _, b := range llvmsuite.All() {
		for i, f := range b.Prog.Funcs {
			in := regalloc.NewInput(f, target, b.Allowed[i])
			cycles["FAST"] += perfmodel.EstimateFunc(f, regalloc.Fast(in), params)
			cycles["BASIC"] += perfmodel.EstimateFunc(f, regalloc.Basic(in), params)
			cycles["GREEDY"] += perfmodel.EstimateFunc(f, regalloc.Greedy(in), params)
			asn, sc := regalloc.PBQPAlloc(in, scholz.Solver{})
			cycles["PBQP"] += perfmodel.EstimateFunc(f, asn, params)
			rlSolver := &rl.Solver{Net: n, Cfg: rl.Config{
				K: KInferLLVM[len(KInferLLVM)-1], Order: game.OrderFixed,
				Baseline: sc.Cost, HasBaseline: true, Graded: true, HeuristicValue: true,
				MaxNodes: 2_000_000, Seed: 3,
			}}
			rlAsn, rlRes := regalloc.PBQPAlloc(in, rlSolver)
			_ = rlRes
			cycles["PBQP-RL"] += perfmodel.EstimateFunc(f, rlAsn, params)
		}
		if progress != nil {
			progress(fmt.Sprintf("llvm-speedup %s done", b.Prog.Name))
		}
	}
	var rows []SpeedupRow
	for _, name := range []string{"BASIC", "GREEDY", "PBQP", "PBQP-RL"} {
		rows = append(rows, SpeedupRow{
			Allocator: name,
			Speedup:   perfmodel.Speedup(cycles["FAST"], cycles[name]),
		})
	}
	return rows
}

// PrintSpeedups renders E7.
func PrintSpeedups(w io.Writer, rows []SpeedupRow) {
	fmt.Fprintln(w, "\nSection V-C — estimated speedup of generated code vs FAST")
	fmt.Fprintln(w, "(paper: GREEDY 1.464×, PBQP 1.422×, PBQP-RL 1.416×)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %.3fx\n", r.Allocator, r.Speedup)
	}
}

package rl

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/tensor"
)

func TestArgmax(t *testing.T) {
	if Argmax(tensor.Vec{0, 0.2, 0.8}) != 2 {
		t.Error("wrong argmax")
	}
	if Argmax(tensor.Vec{0, 0, 0}) != -1 {
		t.Error("all-zero argmax should be -1")
	}
	if Argmax(tensor.Vec{0.5, 0.5}) != 0 {
		t.Error("tie should resolve to lowest index")
	}
}

func TestOneWaySolvesEasyGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 15, M: 6, PEdge: 0.2, HardRatio: 0.2, PEdgeInf: 0.1,
	})
	s := &Solver{Net: mcts.Uniform{}, Cfg: Config{K: 25, Order: game.OrderDecLiberty}}
	res, stats := s.SolveStats(g)
	if !res.Feasible {
		t.Fatalf("failed on an easy graph (deadends=%d)", stats.DeadEnds)
	}
	if res.Cost != 0 {
		t.Errorf("cost = %v, want 0", res.Cost)
	}
	if got := g.TotalCost(res.Selection); got != 0 {
		t.Errorf("selection cost = %v", got)
	}
	if res.States != stats.Nodes || stats.Nodes == 0 {
		t.Errorf("states bookkeeping: %d vs %d", res.States, stats.Nodes)
	}
}

func TestBacktrackingRescuesHardGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	oneWayFails, backtrackFails := 0, 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
			N: 30, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
		})
		oneWay := &Solver{Net: mcts.Uniform{}, Cfg: Config{
			K: 10, Order: game.OrderDecLiberty, Seed: int64(trial),
		}}
		if !oneWay.Solve(g).Feasible {
			oneWayFails++
		}
		// inc-liberty: with an untrained (uniform) evaluator, coloring
		// hard vertices first keeps conflicts chronological; the
		// dec-liberty advantage of Figure 6 needs a trained network and
		// is exercised by the experiment harness.
		bt := &Solver{Net: mcts.Uniform{}, Cfg: Config{
			K: 10, Order: game.OrderIncLiberty, Backtrack: true,
			ReinvokeMCTS: true, MaxNodes: 150_000, Seed: int64(trial),
		}}
		if !bt.Solve(g).Feasible {
			backtrackFails++
		}
	}
	if backtrackFails > 0 {
		t.Errorf("backtracking failed %d/%d solvable graphs", backtrackFails, trials)
	}
	t.Logf("failures: one-way %d/%d, backtrack %d/%d", oneWayFails, trials, backtrackFails, trials)
}

func TestAblationNoReinvokeStillSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fails := 0
	for trial := 0; trial < 5; trial++ {
		g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
			N: 30, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
		})
		s := &Solver{Net: mcts.Uniform{}, Cfg: Config{
			K: 10, Order: game.OrderIncLiberty, Backtrack: true,
			ReinvokeMCTS: false, MaxNodes: 150_000,
		}}
		if !s.Solve(g).Feasible {
			fails++
		}
	}
	if fails > 0 {
		t.Errorf("ablation variant failed %d/5", fails)
	}
}

func TestMaxNodesAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 50, M: 13, PEdge: 0.3, HardRatio: 0.6, PEdgeInf: 0.4,
	})
	s := &Solver{Net: mcts.Uniform{}, Cfg: Config{
		K: 25, Order: game.OrderDecLiberty, Backtrack: true, ReinvokeMCTS: true,
		MaxNodes: 100,
	}}
	res := s.Solve(g)
	if res.States > 100+25+1 {
		t.Errorf("states = %d, budget not respected", res.States)
	}
}

func TestAllOrdersSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 25, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
	})
	for _, order := range []game.Order{game.OrderFixed, game.OrderRandom, game.OrderIncLiberty, game.OrderDecLiberty} {
		s := &Solver{Net: mcts.Uniform{}, Cfg: Config{
			K: 10, Order: order, Backtrack: true, ReinvokeMCTS: true,
			MaxNodes: 300_000, Seed: 7,
		}}
		res := s.Solve(g)
		if !res.Feasible {
			// only inc-liberty is guaranteed with an untrained net;
			// the others depend on a trained value function
			if order == game.OrderIncLiberty {
				t.Errorf("order %v failed", order)
			} else {
				t.Logf("order %v failed with uniform evaluator (needs a trained net)", order)
			}
			continue
		}
		if got := g.TotalCost(res.Selection); got != 0 {
			t.Errorf("order %v: selection cost %v", order, got)
		}
	}
}

func TestDecLibertyGeneratesFewerNodesThanRandom(t *testing.T) {
	// the Figure 6 trend; averaged over several graphs to damp noise
	rng := rand.New(rand.NewSource(6))
	var decNodes, randNodes int64
	for trial := 0; trial < 5; trial++ {
		g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
			N: 30, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
		})
		dec := &Solver{Net: mcts.Uniform{}, Cfg: Config{
			K: 10, Order: game.OrderDecLiberty, Backtrack: true, ReinvokeMCTS: true,
			MaxNodes: 500_000, Seed: int64(trial),
		}}
		rnd := &Solver{Net: mcts.Uniform{}, Cfg: Config{
			K: 10, Order: game.OrderRandom, Backtrack: true, ReinvokeMCTS: true,
			MaxNodes: 500_000, Seed: int64(trial),
		}}
		decNodes += dec.Solve(g).States
		randNodes += rnd.Solve(g).States
	}
	if decNodes > randNodes {
		t.Logf("note: dec-liberty %d nodes vs random %d (trend may flip for tiny samples)", decNodes, randNodes)
	} else {
		t.Logf("dec-liberty %d nodes vs random %d", decNodes, randNodes)
	}
}

func TestBaselineChangesTerminalReward(t *testing.T) {
	// a tiny minimization problem: with a tight baseline, MCTS should
	// still find *a* coloring; the result cost equals the greedy pass.
	g := pbqp.New(2, 2)
	g.SetVertexCost(0, cost.Vector{3, 1})
	g.SetVertexCost(1, cost.Vector{0, 4})
	s := &Solver{Net: mcts.Uniform{}, Cfg: Config{
		K: 50, Order: game.OrderFixed, Baseline: 1, HasBaseline: true,
	}}
	res := s.Solve(g)
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	opt := (brute.Solver{}).Solve(g)
	if res.Cost != opt.Cost {
		t.Logf("note: greedy pass found %v, optimum %v", res.Cost, opt.Cost)
	}
}

func TestSolverName(t *testing.T) {
	s := &Solver{Net: mcts.Uniform{}}
	if s.Name() != "deep-rl" {
		t.Error("wrong name")
	}
	s.Cfg.Backtrack = true
	if s.Name() != "deep-rl+backtrack" {
		t.Error("wrong backtrack name")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 20, M: 8, PEdge: 0.3, HardRatio: 0.4, PEdgeInf: 0.3,
	})
	run := func() (bool, int64) {
		s := &Solver{Net: mcts.Uniform{}, Cfg: Config{
			K: 10, Order: game.OrderRandom, Backtrack: true, ReinvokeMCTS: true,
			MaxNodes: 100_000, Seed: 42,
		}}
		r := s.Solve(g)
		return r.Feasible, r.States
	}
	f1, s1 := run()
	f2, s2 := run()
	if f1 != f2 || s1 != s2 {
		t.Errorf("non-deterministic: (%v,%d) vs (%v,%d)", f1, s1, f2, s2)
	}
}

// Package rl implements the paper's Deep-RL PBQP solver: MCTS-guided
// coloring (inference runs of Section IV-A) with the optional
// backtracking and liberty-based coloring orders of Section IV-E.
//
// Without backtracking the solver performs a one-way pass: k MCTS
// simulations per vertex, then the visit-count-maximizing color. With
// backtracking, a dead end cancels the most recent coloring action,
// masks it in the game tree, re-invokes MCTS at the parent state ("more
// thinking time"), and tries the next most promising color —
// depth-first until a solution is found or the node budget is spent.
package rl

import (
	"context"
	"math/rand"

	"pbqprl/internal/cost"
	"pbqprl/internal/game"
	"pbqprl/internal/mcts"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
	"pbqprl/internal/tensor"
)

// Config tunes an inference run.
type Config struct {
	// K is the number of MCTS simulations per coloring action
	// (k_infer in the paper).
	K int
	// Order is the coloring order (the paper recommends
	// game.OrderDecLiberty for ATE problems).
	Order game.Order
	// Backtrack enables dead-end backtracking.
	Backtrack bool
	// ReinvokeMCTS controls whether MCTS runs again at the parent of a
	// dead end before the next color is tried. The paper's default is
	// true; false reproduces the Section V-B ablation that simply
	// takes the next highest-probability action.
	ReinvokeMCTS bool
	// MaxNodes aborts the search once the game tree has generated
	// this many nodes (0 = unlimited).
	MaxNodes int64
	// MCTS configures the search constants of Equation 2.
	MCTS mcts.Config
	// Seed drives the random coloring order.
	Seed int64
	// Baseline, when HasBaseline is set, is the best-known cost the
	// terminal reward compares against; otherwise any finite-cost
	// coloring counts as a win (the ATE zero/infinity regime).
	Baseline    cost.Cost
	HasBaseline bool
	// Graded switches terminal rewards from ternary win/tie/loss to
	// the margin against the baseline — the right setting for
	// minimization inference (see game.State.SetGraded).
	Graded bool
	// HeuristicValue uses the lower-bound heuristic instead of the
	// V-Net at MCTS leaves (see mcts.Config.HeuristicValue).
	HeuristicValue bool
}

// Stats reports search effort beyond the solve.Result fields.
type Stats struct {
	// Nodes is the total number of game-tree nodes generated
	// (Figure 6's metric); it equals Result.States.
	Nodes int64
	// Backtracks counts canceled coloring actions.
	Backtracks int64
	// DeadEnds counts dead-end states reached.
	DeadEnds int64
}

// Solver colors PBQP graphs with a trained network and MCTS.
type Solver struct {
	Net mcts.Evaluator
	Cfg Config
}

// Name implements solve.Solver.
func (s *Solver) Name() string {
	if s.Cfg.Backtrack {
		return "deep-rl+backtrack"
	}
	return "deep-rl"
}

// Solve implements solve.Solver.
func (s *Solver) Solve(g *pbqp.Graph) solve.Result {
	res, _ := s.SolveStats(g)
	return res
}

// SolveCtx implements solve.ContextSolver. The context is polled before
// every MCTS simulation and every coloring action, so cancellation
// lands within one simulation's latency. The solver commits to a
// coloring only when it reaches a complete feasible one, so there is no
// partial incumbent: on cancellation the result is infeasible with
// Truncated set.
func (s *Solver) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	res, _ := s.SolveStatsCtx(ctx, g)
	return res
}

// SolveStats solves g and additionally reports search statistics.
func (s *Solver) SolveStats(g *pbqp.Graph) (solve.Result, Stats) {
	return s.SolveStatsCtx(context.Background(), g)
}

// SolveStatsCtx is SolveStats under a context (see SolveCtx).
func (s *Solver) SolveStatsCtx(ctx context.Context, g *pbqp.Graph) (solve.Result, Stats) {
	cfg := s.Cfg
	if cfg.K <= 0 {
		cfg.K = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	order := game.MakeOrder(g, cfg.Order, rng)
	st := game.New(g, order)
	if cfg.HasBaseline {
		st.SetBaseline(cfg.Baseline)
	}
	st.SetGraded(cfg.Graded)
	mcfg := cfg.MCTS
	mcfg.HeuristicValue = cfg.HeuristicValue
	// Backtracking re-roots at the parent after a dead end (Back), so
	// the parent chain must stay alive; one-way runs let Advance free it.
	mcfg.RetainParents = cfg.Backtrack
	tree := mcts.New(s.Net, g.M(), mcfg)
	run := &runner{ctx: ctx, cfg: cfg, st: st, tree: tree}

	var ok bool
	if cfg.Backtrack {
		ok = run.backtrack()
	} else {
		ok = run.oneWay()
	}
	run.stats.Nodes = tree.Nodes()
	res := solve.Result{Cost: cost.Inf, Truncated: run.truncated, States: tree.Nodes()}
	if ok {
		res.Feasible = true
		res.Cost = st.Acc()
		res.Selection = st.Selection(g.NumVertices())
	}
	return res, run.stats
}

type runner struct {
	ctx       context.Context
	cfg       Config
	st        *game.State
	tree      *mcts.Tree
	stats     Stats
	truncated bool
}

func (r *runner) overBudget() bool {
	return r.cfg.MaxNodes > 0 && r.tree.Nodes() >= r.cfg.MaxNodes
}

// cancelled polls the context and latches the truncation flag.
func (r *runner) cancelled() bool {
	if r.truncated {
		return true
	}
	if r.ctx.Err() != nil {
		r.truncated = true
	}
	return r.truncated
}

// oneWay is the inference run without backtracking: a dead end is a
// failure.
func (r *runner) oneWay() bool {
	for !r.st.Done() {
		if r.st.DeadEnd() {
			r.stats.DeadEnds++
			return false
		}
		if r.overBudget() || r.cancelled() {
			return false
		}
		r.tree.RunCtx(r.ctx, r.st, r.cfg.K)
		if r.cancelled() {
			return false
		}
		a := Argmax(r.tree.Policy())
		if a < 0 {
			return false
		}
		r.st.Play(a)
		r.tree.Advance(a)
	}
	return true
}

// backtrack is the depth-first inference run of Section IV-E.
func (r *runner) backtrack() bool {
	if r.st.Done() {
		return true
	}
	if r.st.DeadEnd() {
		r.stats.DeadEnds++
		return false
	}
	first := true
	for {
		if r.overBudget() || r.cancelled() {
			return false
		}
		if first || r.cfg.ReinvokeMCTS {
			r.tree.RunCtx(r.ctx, r.st, r.cfg.K)
			if r.cancelled() {
				return false
			}
		}
		first = false
		if !r.tree.RootHasMove() {
			return false
		}
		a := Argmax(r.tree.Policy())
		if a < 0 {
			return false
		}
		r.st.Play(a)
		r.tree.Advance(a)
		if r.backtrack() {
			return true
		}
		r.st.Undo()
		r.tree.Back()
		r.tree.DisableRootAction(a)
		r.stats.Backtracks++
	}
}

// Argmax returns the index of the largest entry of pi, or -1 if every
// entry is zero (no available action). Ties resolve to the lowest index.
func Argmax(pi tensor.Vec) int {
	best, bestV := -1, 0.0
	for i, v := range pi {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

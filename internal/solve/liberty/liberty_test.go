package liberty

import (
	"math/rand"
	"testing"

	"pbqprl/internal/ate"
	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/scholz"
)

func TestSolvesATEDerivedGraphs(t *testing.T) {
	// The headline property from TACO 2020: enumeration over hard
	// vertices finds valid solutions for real ATE problems. The
	// chronological search depends on the temporal locality that real
	// test-pattern programs have, so it is exercised on graphs derived
	// from synthetic ATE programs (not on structureless random
	// zero/inf graphs, where chronological backtracking is known to
	// blow its budget — see the package comment).
	fails := 0
	const trials = 12
	for seed := int64(500); seed < 500+trials; seed++ {
		prog, _ := ate.Generate(ate.DefaultMachine(), ate.GenConfig{
			Name: "t", NumVRegs: 40, PairRatio: 0.3, HardRatio: 0.4,
			MaxLive: 8, Seed: seed,
		})
		g, err := ate.BuildPBQP(prog)
		if err != nil {
			t.Fatal(err)
		}
		res := Solver{MaxStates: 5_000_000}.Solve(g)
		if !res.Feasible {
			fails++
			continue
		}
		if res.Cost != 0 {
			t.Fatalf("seed %d: cost = %v, want 0", seed, res.Cost)
		}
		if got := g.TotalCost(res.Selection); got != 0 {
			t.Fatalf("seed %d: selection costs %v", seed, got)
		}
	}
	if fails > trials/3 {
		t.Errorf("liberty failed %d/%d solvable ATE graphs", fails, trials)
	}
}

func TestBeatsScholzOnHardGraphs(t *testing.T) {
	// The chronological enumeration is budget-bound, so this asserts
	// the Section V-B *shape* on ATE-derived graphs: liberty solves
	// far more of them than the original solver does.
	scholzFail, libertyFail := 0, 0
	const trials = 12
	for seed := int64(700); seed < 700+trials; seed++ {
		prog, _ := ate.Generate(ate.DefaultMachine(), ate.GenConfig{
			Name: "t", NumVRegs: 45, PairRatio: 0.3, HardRatio: 0.4,
			MaxLive: 8, Seed: seed,
		})
		g, err := ate.BuildPBQP(prog)
		if err != nil {
			t.Fatal(err)
		}
		if !(scholz.Solver{}).Solve(g).Feasible {
			scholzFail++
		}
		if !(Solver{MaxStates: 5_000_000}).Solve(g).Feasible {
			libertyFail++
		}
	}
	if libertyFail >= scholzFail || libertyFail > trials/3 {
		t.Errorf("liberty failed %d/%d, scholz %d/%d; expected liberty to dominate", libertyFail, trials, scholzFail, trials)
	}
	t.Logf("failures: scholz %d/%d, liberty %d/%d (budget-bound: the search is complete but capped)", scholzFail, trials, libertyFail, trials)
}

func TestSelectionCostMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{
			N: 3 + rng.Intn(8), M: 2 + rng.Intn(4), PEdge: 0.5, PInf: 0.15,
		})
		res := Solver{}.Solve(g)
		if !res.Feasible {
			continue
		}
		if got := g.TotalCost(res.Selection); !approxEq(got, res.Cost) {
			t.Fatalf("trial %d: reported %v, selection costs %v", trial, res.Cost, got)
		}
		opt := (brute.Solver{}).Solve(g)
		if res.Cost.Less(opt.Cost) && !approxEq(res.Cost, opt.Cost) {
			t.Fatalf("trial %d: beat the optimum", trial)
		}
	}
}

func TestNeverMissesFeasibleAllHard(t *testing.T) {
	// With threshold ≥ m every vertex is enumerated: the solver is
	// then exact on feasibility.
	rng := rand.New(rand.NewSource(34))
	for trial := 0; trial < 30; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{
			N: 2 + rng.Intn(6), M: 2 + rng.Intn(2), PEdge: 0.6, PInf: 0.4,
		})
		opt := (brute.Solver{}).Solve(g)
		res := Solver{Threshold: g.M()}.Solve(g)
		if res.Feasible != opt.Feasible {
			t.Fatalf("trial %d: feasible=%v, brute=%v", trial, res.Feasible, opt.Feasible)
		}
	}
}

func TestDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 20, M: 5, PEdge: 0.3, HardRatio: 0.5, PEdgeInf: 0.3,
	})
	before := g.String()
	Solver{}.Solve(g)
	if g.String() != before {
		t.Error("Solve mutated its input")
	}
}

func TestMaxStatesAborts(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 60, M: 13, PEdge: 0.3, HardRatio: 0.6, PEdgeInf: 0.4,
	})
	res := Solver{MaxStates: 3}.Solve(g)
	if res.States > 3+int64(g.M()) {
		t.Errorf("states = %d, cap not respected", res.States)
	}
}

func TestStatesGrowWithHardness(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	easy, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 40, M: 13, PEdge: 0.1, HardRatio: 0.1, PEdgeInf: 0.1,
	})
	hard, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
		N: 40, M: 13, PEdge: 0.3, HardRatio: 0.7, PEdgeInf: 0.35,
	})
	re := Solver{MaxStates: 10_000_000}.Solve(easy)
	rh := Solver{MaxStates: 10_000_000}.Solve(hard)
	if !re.Feasible || !rh.Feasible {
		t.Fatalf("feasibility: easy=%v hard=%v", re.Feasible, rh.Feasible)
	}
	if rh.States <= re.States {
		t.Logf("note: hard instance explored %d states vs easy %d", rh.States, re.States)
	}
}

func approxEq(a, b cost.Cost) bool {
	if a.IsInf() || b.IsInf() {
		return a.IsInf() == b.IsInf()
	}
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+float64(a)+float64(b))
}

func TestEmptyAndSingleton(t *testing.T) {
	if res := (Solver{}).Solve(pbqp.New(0, 3)); !res.Feasible || res.Cost != 0 {
		t.Errorf("empty graph: %+v", res)
	}
	g := pbqp.New(1, 3)
	g.SetVertexCost(0, cost.Vector{cost.Inf, 2, 5})
	res := Solver{}.Solve(g)
	if !res.Feasible || res.Cost != 2 || res.Selection[0] != 1 {
		t.Errorf("singleton: %+v", res)
	}
}

// Package liberty implements the liberty-based enumeration PBQP solver
// of Kim, Park and Moon (TACO 2020), the previous state of the art for
// ATE register allocation and the search-space baseline of the paper's
// Section V-B.
//
// Liberty is the number of finite entries in a vertex's cost vector: the
// number of registers the vertex can still take. The solver sorts the
// vertices by increasing initial liberty and fully enumerates the hard
// prefix (liberty ≤ Threshold) in that fixed order with chronological
// backtracking: at each hard vertex it tries every currently selectable
// color, and a vertex left with no selectable color triggers a
// backtrack. The easy remainder is approximated with the original
// Scholz–Eckstein reduction; if the approximation fails, the solver
// backtracks into the hard enumeration.
//
// The enumeration is deliberately chronological — conflicts are only
// discovered when the affected vertex comes up for coloring — matching
// the TACO description. That is why its explored-state count explodes
// combinatorially on hard instances (the paper measures tens of
// millions of states), which is precisely the search space the Deep-RL
// solver is shown to cut.
package liberty

import (
	"context"
	"sort"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/scholz"
)

// DefaultThreshold is the liberty bound below which (inclusive) a vertex
// is enumerated rather than approximated, per the TACO 2020 paper.
const DefaultThreshold = 4

// Solver is the liberty-based enumeration solver.
type Solver struct {
	// Threshold is the maximum liberty of an enumerated (hard) vertex.
	// Zero means DefaultThreshold.
	Threshold int
	// MaxStates, when positive, aborts the enumeration after that many
	// explored states, reporting infeasible.
	MaxStates int64
}

// Name implements solve.Solver.
func (Solver) Name() string { return "liberty" }

// Solve implements solve.Solver. It returns the first feasible solution
// found (ATE problems only need any zero-cost solution); the easy-vertex
// remainder is approximated, so the cost is not guaranteed minimal.
func (s Solver) Solve(g *pbqp.Graph) solve.Result {
	return s.SolveCtx(context.Background(), g)
}

// SolveCtx implements solve.ContextSolver. The enumeration stops at the
// first feasible solution, so there is no incumbent to salvage: on
// cancellation the result is infeasible with Truncated set.
func (s Solver) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	threshold := s.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	// Hard vertices (liberty ≤ threshold) come first; the stable sort
	// keeps program order within each class. Real test-pattern programs
	// concentrate their register constraints in contiguous phases, so
	// preserving temporal order inside the hard prefix keeps conflicts
	// chronologically local — sorting strictly by liberty value scatters
	// related vregs across the enumeration order and makes the
	// backtracking thrash.
	vs := g.Vertices()
	sort.SliceStable(vs, func(i, j int) bool {
		return (g.Liberty(vs[i]) <= threshold) && (g.Liberty(vs[j]) > threshold)
	})
	numHard := 0
	for _, u := range vs {
		if g.Liberty(u) <= threshold {
			numHard++
		}
	}
	e := &enum{
		ctx:      ctx,
		g:        g.Permute(vs),
		numHard:  numHard,
		sel:      make([]int, len(vs)),
		maxState: s.MaxStates,
	}
	e.stopped = ctx.Err() != nil
	var ok bool
	var total cost.Cost
	if !e.stopped {
		ok, total = e.run(0, 0)
	}
	res := solve.Result{Cost: cost.Inf, Truncated: e.stopped, States: e.states}
	if ok {
		res.Feasible = true
		res.Cost = total
		res.Selection = make(pbqp.Selection, g.NumVertices())
		for i, u := range vs {
			res.Selection[u] = e.sel[i]
		}
	}
	return res
}

type enum struct {
	ctx      context.Context
	g        *pbqp.Graph // renumbered: hard prefix [0, numHard), easy suffix
	numHard  int
	sel      []int
	states   int64
	maxState int64
	stopped  bool // ctx fired; unwind without further enumeration
}

// run enumerates colors for vertex depth in the fixed order. Vertex
// cost vectors of later vertices are mutated in place during descent
// and restored on backtrack.
//
// Once the hard prefix is fully colored, the easy remainder is first
// approximated with the Scholz–Eckstein reduction (the TACO fast path);
// if the approximation fails, the enumeration simply continues over the
// easy vertices in the same chronological order — the backtracking
// search is complete, it just prefers to stop enumerating as soon as
// the approximation succeeds. It returns success and the total cost.
func (e *enum) run(depth int, acc cost.Cost) (bool, cost.Cost) {
	if depth == e.g.NumVertices() {
		return true, acc
	}
	if depth >= e.numHard {
		if ok, total := e.solveEasyRemainder(depth, acc); ok {
			return true, total
		}
		// fall through: keep enumerating chronologically
	}
	if e.stopped || (e.maxState > 0 && e.states >= e.maxState) {
		return false, cost.Inf
	}
	vec := e.g.VertexCost(depth).Clone()
	later := laterNeighbors(e.g, depth)
	for c := 0; c < e.g.M(); c++ {
		if vec[c].IsInf() {
			continue
		}
		e.states++
		if e.stopped || (e.maxState > 0 && e.states > e.maxState) {
			break
		}
		if e.states%solve.CheckInterval == 0 && e.ctx.Err() != nil {
			e.stopped = true
			break
		}
		saved := propagate(e.g, depth, c, later)
		e.sel[depth] = c
		if ok, total := e.run(depth+1, acc.Add(vec[c])); ok {
			restore(e.g, saved)
			return true, total
		}
		restore(e.g, saved)
	}
	return false, cost.Inf
}

// solveEasyRemainder builds the induced subgraph over the uncolored
// suffix [from, n) with its propagated cost vectors and approximates it
// with the Scholz–Eckstein solver.
func (e *enum) solveEasyRemainder(from int, acc cost.Cost) (bool, cost.Cost) {
	n := e.g.NumVertices()
	if from == n {
		return true, acc
	}
	// Fast path with identical semantics: a vertex whose propagated
	// vector is all-infinite makes the reduction infeasible no matter
	// what, so skip building and solving the subproblem.
	for v := from; v < n; v++ {
		if e.g.VertexCost(v).AllInf() {
			e.states++
			return false, cost.Inf
		}
	}
	sub := pbqp.New(n-from, e.g.M())
	for v := from; v < n; v++ {
		sub.SetVertexCost(v-from, e.g.VertexCost(v))
	}
	for _, edge := range e.g.Edges() {
		if edge.U >= from && edge.V >= from {
			sub.SetEdgeCost(edge.U-from, edge.V-from, edge.M)
		}
	}
	res := (scholz.Solver{}).SolveCtx(e.ctx, sub)
	e.states += res.States
	if res.Truncated {
		// Deadline hit inside the approximation: a feasible coloring is
		// still a valid answer, but either way stop enumerating.
		e.stopped = true
	}
	if !res.Feasible {
		return false, cost.Inf
	}
	for v := from; v < n; v++ {
		e.sel[v] = res.Selection[v-from]
	}
	return true, acc.Add(res.Cost)
}

// laterNeighbors returns u's neighbors with a larger index (the ones
// not yet colored in the fixed enumeration order).
func laterNeighbors(g *pbqp.Graph, u int) []int {
	var later []int
	for _, v := range g.Neighbors(u) {
		if v > u {
			later = append(later, v)
		}
	}
	return later
}

// change records one overwritten cost-vector entry so backtracking can
// restore it exactly (infinity saturation is not subtractable).
type change struct {
	v, i int
	old  cost.Cost
}

// propagate adds row c of each (u, v) edge matrix into the later
// neighbors' vectors, recording only the entries that actually change
// (adding an exact zero never does — and in the ATE zero/infinity
// regime almost every row entry is zero, so the undo log stays tiny).
func propagate(g *pbqp.Graph, u, c int, later []int) []change {
	var undo []change
	for _, v := range later {
		row := g.EdgeCost(u, v).Row(c)
		vec := g.VertexCost(v)
		for i, rc := range row {
			if rc.IsZero() {
				continue
			}
			undo = append(undo, change{v: v, i: i, old: vec[i]})
			vec[i] = vec[i].Add(rc)
		}
	}
	return undo
}

// restore undoes propagate, newest change first.
func restore(g *pbqp.Graph, undo []change) {
	for i := len(undo) - 1; i >= 0; i-- {
		ch := undo[i]
		g.VertexCost(ch.v)[ch.i] = ch.old
	}
}

package solve_test

import (
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/decomp"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/reduce"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/scholz"
)

// graphFromBytes deterministically decodes a tiny PBQP graph (1–5
// vertices, 1–3 colors, costs in {0..6, inf}) from fuzz input. Small
// enough that the brute solver is an exact oracle in microseconds.
func graphFromBytes(data []byte) *pbqp.Graph {
	if len(data) < 2 {
		return nil
	}
	n := int(data[0]%5) + 1
	m := int(data[1]%3) + 1
	idx := 2
	next := func() byte {
		if idx < len(data) {
			b := data[idx]
			idx++
			return b
		}
		return 0
	}
	pick := func() cost.Cost {
		b := next()
		if b%4 == 3 {
			return cost.Inf
		}
		return cost.Cost(b % 7)
	}
	g := pbqp.New(n, m)
	for u := 0; u < n; u++ {
		vec := make(cost.Vector, m)
		for c := range vec {
			vec[c] = pick()
		}
		g.SetVertexCost(u, vec)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if next()%2 == 0 {
				continue
			}
			mat := cost.NewMatrix(m, m)
			for i := range mat.Data {
				mat.Data[i] = pick()
			}
			if mat.IsZero() {
				continue
			}
			g.SetEdgeCost(u, v, mat)
		}
	}
	return g
}

// FuzzSolverAgreement cross-checks the solver stack on tiny random
// graphs against the exact brute-force oracle:
//
//   - liberty enumeration is complete, so it must agree with brute on
//     feasibility exactly, and its (first-feasible) cost can never beat
//     the optimum;
//   - the R0/R1/R2 reduction is exact, so brute-on-the-remainder plus
//     Expand must reproduce the optimal cost bit-for-bit;
//   - scholz's RN heuristic may miss feasible solutions (the paper's 9
//     of 10 ATE failures), so agreement is one-sided: whenever scholz
//     (with or without prior exact reduction) claims feasibility the
//     oracle must concur and the claimed cost is ≥ the optimum;
//   - the decomposition pipeline (reduce → block-cut split → per-block
//     brute → recombine) is exact for an exact inner solver, so it must
//     match brute on feasibility and cost bit-for-bit;
//   - every reported selection must re-evaluate to the reported cost.
func FuzzSolverAgreement(f *testing.F) {
	f.Add([]byte{2, 1, 0, 1, 2, 3, 1, 0, 5})
	f.Add([]byte{4, 2, 3, 3, 3, 1, 0, 2})
	f.Add([]byte{1, 0, 6})
	f.Add([]byte{3, 1, 7, 7, 7, 7, 7, 7, 1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		if g == nil {
			return
		}
		exact := brute.Solver{}.Solve(g)
		if exact.Feasible && g.TotalCost(exact.Selection) != exact.Cost {
			t.Fatalf("brute selection does not re-evaluate to its cost\n%s", g)
		}

		lib := liberty.Solver{}.Solve(g)
		if lib.Feasible != exact.Feasible {
			t.Fatalf("liberty feasible=%v, brute feasible=%v\n%s", lib.Feasible, exact.Feasible, g)
		}
		if lib.Feasible {
			if g.TotalCost(lib.Selection) != lib.Cost {
				t.Fatalf("liberty selection does not re-evaluate to its cost\n%s", g)
			}
			if lib.Cost.Less(exact.Cost) {
				t.Fatalf("liberty cost %v beats the optimum %v\n%s", lib.Cost, exact.Cost, g)
			}
		}

		red := reduce.Apply(g)
		redExact := brute.Solver{}.Solve(red.Graph)
		if exact.Feasible {
			if !redExact.Feasible {
				t.Fatalf("reduce+brute infeasible on a feasible graph\n%s", g)
			}
			full, ok := red.Expand(redExact.Selection.Clone())
			if !ok {
				t.Fatalf("reduction expansion failed on a feasible graph\n%s", g)
			}
			if got := g.TotalCost(full); got != exact.Cost {
				t.Fatalf("reduce+brute cost %v, optimum %v\n%s", got, exact.Cost, g)
			}
		} else if redExact.Feasible {
			// The remainder can be feasible on its own (e.g. an isolated
			// all-infinite vertex was eliminated by R0), but then the
			// expansion must report the infeasibility.
			if full, ok := red.Expand(redExact.Selection.Clone()); ok && !g.TotalCost(full).IsInf() {
				t.Fatalf("reduce+brute produced a finite coloring of an infeasible graph\n%s", g)
			}
		}

		dec := decomp.Wrap(brute.Solver{}).Solve(g)
		if dec.Feasible != exact.Feasible {
			t.Fatalf("decomp feasible=%v, brute feasible=%v\n%s", dec.Feasible, exact.Feasible, g)
		}
		if dec.Feasible {
			if g.TotalCost(dec.Selection) != dec.Cost {
				t.Fatalf("decomp selection does not re-evaluate to its cost\n%s", g)
			}
			if dec.Cost != exact.Cost {
				t.Fatalf("decomp cost %v, optimum %v\n%s", dec.Cost, exact.Cost, g)
			}
		}

		sch := scholz.Solver{}.Solve(g)
		if sch.Feasible {
			if !exact.Feasible {
				t.Fatalf("scholz feasible on an infeasible graph\n%s", g)
			}
			if g.TotalCost(sch.Selection) != sch.Cost {
				t.Fatalf("scholz selection does not re-evaluate to its cost\n%s", g)
			}
			if sch.Cost.Less(exact.Cost) {
				t.Fatalf("scholz cost %v beats the optimum %v\n%s", sch.Cost, exact.Cost, g)
			}
		}

		schRed := scholz.Solver{}.Solve(red.Graph)
		if schRed.Feasible {
			full, ok := red.Expand(schRed.Selection.Clone())
			if ok && !g.TotalCost(full).IsInf() {
				if !exact.Feasible {
					t.Fatalf("reduce+scholz produced a finite coloring of an infeasible graph\n%s", g)
				}
				if got := g.TotalCost(full); got.Less(exact.Cost) {
					t.Fatalf("reduce+scholz cost %v beats the optimum %v\n%s", got, exact.Cost, g)
				}
			}
		}
	})
}

// Package portfolio implements a deadline-aware PBQP solver portfolio:
// a configurable fallback chain of solvers (e.g. Deep-RL → liberty
// enumeration → Scholz–Eckstein) run under one total time budget with
// graceful degradation. Each stage gets a slice of the remaining
// budget, runs through solve.SolveCtx so it can be truncated
// cooperatively, and is isolated from the others — a panicking stage is
// recovered (with the offending graph serialized for reproduction) and
// the chain simply moves on. The portfolio keeps the cheapest feasible
// selection seen across all stages, so the caller always gets the best
// answer the budget allowed, never a crash and never an unbounded wait.
package portfolio

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"strings"
	"time"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
)

// Stage is one solver in the fallback chain.
type Stage struct {
	// Solver runs this stage. Solvers implementing solve.ContextSolver
	// are cancelled cooperatively at the stage deadline; legacy solvers
	// run through solve.WithContext (only checked before starting).
	Solver solve.Solver
	// Fraction, when positive, is the share of the budget remaining at
	// this stage's start that it may spend. Zero divides the remainder
	// evenly among this and all later stages, so a chain of unset
	// fractions degrades from an even split to "last stage gets all the
	// time the earlier ones did not use".
	Fraction float64
}

// Outcome reports how one stage of a portfolio run went. It marshals
// to JSON — the duration in nanoseconds, like time.Duration itself —
// so the CLI's -stats-json and the serving layer emit the same shape.
type Outcome struct {
	// Name is the stage solver's name.
	Name string `json:"name"`
	// Result is the stage's result; zero-valued when the stage was
	// skipped or panicked.
	Result solve.Result `json:"result"`
	// Duration is the stage's wall-clock time (JSON: nanoseconds).
	Duration time.Duration `json:"duration_ns"`
	// Panicked reports that the stage solver panicked and was
	// recovered; PanicValue carries the panic message.
	Panicked   bool   `json:"panicked,omitempty"`
	PanicValue string `json:"panic_value,omitempty"`
	// Skipped reports that the stage never ran because the budget (or
	// the caller's context) was already exhausted.
	Skipped bool `json:"skipped,omitempty"`
}

// Stats reports a full portfolio run.
type Stats struct {
	// Stages has one entry per configured stage, in chain order.
	Stages []Outcome `json:"stages"`
	// Winner is the index of the stage that produced the returned
	// selection, or -1 when no stage found a feasible one.
	Winner int `json:"winner"`
}

// Solver runs a fallback chain of PBQP solvers under a total time
// budget. It implements both solve.Solver and solve.ContextSolver.
type Solver struct {
	// Stages is the fallback chain, tried in order.
	Stages []Stage
	// Budget is the total wall-clock budget for the whole chain. Zero
	// means no budget of its own — only the caller's context limits
	// the run.
	Budget time.Duration
	// StopOnFeasible stops the chain as soon as a stage returns a
	// feasible, untruncated result instead of running later stages in
	// search of a cheaper one. This is the right setting for the ATE
	// zero/infinity regime, where any feasible selection is optimal.
	StopOnFeasible bool
	// Logf receives panic-recovery reports, including the offending
	// graph's textual serialization for reproduction. Nil uses the
	// standard logger.
	Logf func(format string, args ...any)
}

// New returns a portfolio over the given chain with an even budget
// split and StopOnFeasible semantics.
func New(budget time.Duration, chain ...solve.Solver) *Solver {
	s := &Solver{Budget: budget, StopOnFeasible: true}
	for _, c := range chain {
		s.Stages = append(s.Stages, Stage{Solver: c})
	}
	return s
}

// Name implements solve.Solver.
func (s *Solver) Name() string {
	names := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		names[i] = st.Solver.Name()
	}
	return "portfolio(" + strings.Join(names, "→") + ")"
}

// Solve implements solve.Solver.
func (s *Solver) Solve(g *pbqp.Graph) solve.Result {
	return s.SolveCtx(context.Background(), g)
}

// SolveCtx implements solve.ContextSolver.
func (s *Solver) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	res, _ := s.SolveStats(ctx, g)
	return res
}

// SolveStats runs the chain and additionally reports per-stage
// outcomes. The returned result is the cheapest feasible one any stage
// produced; Truncated is set when some stage was cut short (or skipped)
// by the deadline and no later stage finished untruncated — i.e. when
// more time could have produced a different answer.
func (s *Solver) SolveStats(ctx context.Context, g *pbqp.Graph) (solve.Result, Stats) {
	logf := s.Logf
	if logf == nil {
		logf = log.Printf
	}
	var deadline time.Time
	hasDeadline := false
	if d, ok := ctx.Deadline(); ok {
		deadline, hasDeadline = d, true
	}
	if s.Budget > 0 {
		//pbqpvet:ignore determinism wall-clock budget split is the portfolio's contract; solver outputs stay deterministic, only truncation timing varies
		if b := time.Now().Add(s.Budget); !hasDeadline || b.Before(deadline) {
			deadline, hasDeadline = b, true
		}
	}

	best := solve.Result{Cost: cost.Inf}
	stats := Stats{Stages: make([]Outcome, len(s.Stages)), Winner: -1}
	deadlineHit := false
	for i, stage := range s.Stages {
		out := &stats.Stages[i]
		out.Name = stage.Solver.Name()
		remaining := time.Duration(0)
		if hasDeadline {
			remaining = time.Until(deadline)
		}
		if ctx.Err() != nil || (hasDeadline && remaining <= 0) {
			out.Skipped = true
			deadlineHit = true
			continue
		}
		stageCtx := ctx
		var cancel context.CancelFunc
		if hasDeadline {
			share := stage.Fraction
			if share <= 0 {
				share = 1 / float64(len(s.Stages)-i)
			}
			if share > 1 {
				share = 1
			}
			stageBudget := time.Duration(float64(remaining) * share)
			stageCtx, cancel = context.WithTimeout(ctx, stageBudget)
		}
		//pbqpvet:ignore determinism per-stage wall time is reporting only; it never feeds back into solver decisions
		start := time.Now()
		res, panicked, panicVal := runStage(stageCtx, stage.Solver, g, logf)
		if cancel != nil {
			cancel()
		}
		out.Duration = time.Since(start)
		out.Panicked = panicked
		out.PanicValue = panicVal
		if panicked {
			continue
		}
		out.Result = res
		best.States += res.States
		if res.Truncated {
			deadlineHit = true
		}
		if res.Feasible && (!best.Feasible || res.Cost.Less(best.Cost)) {
			best.Selection = res.Selection
			best.Cost = res.Cost
			best.Feasible = true
			stats.Winner = i
		}
		if s.StopOnFeasible && res.Feasible && !res.Truncated {
			// A complete feasible answer: mark the stages that will not
			// run and report the result as untruncated — more time
			// would not have changed it under these semantics.
			for j := i + 1; j < len(s.Stages); j++ {
				stats.Stages[j].Name = s.Stages[j].Solver.Name()
				stats.Stages[j].Skipped = true
			}
			deadlineHit = false
			break
		}
	}
	best.Truncated = deadlineHit
	return best, stats
}

// maxGraphLogBytes caps the repro serialization in panic logs; graphs
// past this size are elided rather than flooding the log.
const maxGraphLogBytes = 64 << 10

// runStage runs one solver under its stage context, converting a panic
// into a recovered failure. The graph is cloned first so a stage that
// dies mid-mutation (or violates the no-mutate contract) cannot poison
// later stages, and the original serialization is logged for repro.
func runStage(ctx context.Context, sv solve.Solver, g *pbqp.Graph, logf func(string, ...any)) (res solve.Result, panicked bool, panicVal string) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			panicVal = fmt.Sprint(r)
			res = solve.Result{Cost: cost.Inf}
			logf("portfolio: stage %q panicked: %v\ngraph for repro:\n%s\n%s",
				sv.Name(), r, pbqp.Elide(g.String(), maxGraphLogBytes), debug.Stack())
		}
	}()
	return solve.SolveCtx(ctx, sv, g.Clone()), false, ""
}

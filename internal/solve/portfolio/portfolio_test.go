package portfolio

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"pbqprl/internal/cost"
	"pbqprl/internal/mcts"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/scholz"
)

// stub returns a fixed result, ignoring the graph.
type stub struct {
	name string
	res  solve.Result
}

func (s stub) Name() string                   { return s.name }
func (s stub) Solve(*pbqp.Graph) solve.Result { return s.res }

// panicky always panics, simulating a buggy stage.
type panicky struct{}

func (panicky) Name() string                   { return "panicky" }
func (panicky) Solve(*pbqp.Graph) solve.Result { panic("injected failure") }

// spinner is a ContextSolver that busy-loops until its context fires.
type spinner struct{}

func (spinner) Name() string { return "spinner" }
func (spinner) Solve(g *pbqp.Graph) solve.Result {
	return spinner{}.SolveCtx(context.Background(), g)
}
func (spinner) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	for ctx.Err() == nil {
		time.Sleep(50 * time.Microsecond)
	}
	return solve.Result{Cost: cost.Inf, Truncated: true}
}

// chainGraph is a tiny feasible graph: two vertices that must disagree.
func chainGraph(t *testing.T) *pbqp.Graph {
	t.Helper()
	g := pbqp.New(2, 2)
	g.SetVertexCost(0, cost.Vector{0, 1})
	g.SetVertexCost(1, cost.Vector{0, 1})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{
		{cost.Inf, 0},
		{0, cost.Inf},
	}))
	return g
}

func feasible(c cost.Cost, sel ...int) solve.Result {
	return solve.Result{Selection: sel, Cost: c, Feasible: true}
}

func TestPanicRecoveredAndLogged(t *testing.T) {
	var logged strings.Builder
	p := &Solver{
		Stages: []Stage{
			{Solver: panicky{}},
			{Solver: stub{name: "ok", res: feasible(7, 0, 1)}},
		},
		StopOnFeasible: true,
		Logf:           func(f string, args ...any) { fmt.Fprintf(&logged, f, args...) },
	}
	g := chainGraph(t)
	res, stats := p.SolveStats(context.Background(), g)
	if !res.Feasible || res.Cost != 7 {
		t.Fatalf("want the fallback stage's result, got %+v", res)
	}
	if !stats.Stages[0].Panicked || stats.Stages[0].PanicValue != "injected failure" {
		t.Fatalf("stage 0 outcome = %+v, want recovered panic", stats.Stages[0])
	}
	if stats.Winner != 1 {
		t.Fatalf("winner = %d, want 1", stats.Winner)
	}
	if !strings.Contains(logged.String(), "injected failure") ||
		!strings.Contains(logged.String(), "pbqp 2 2") {
		t.Fatalf("panic log is missing the message or the graph dump:\n%s", logged.String())
	}
}

func TestBudgetTruncatesEveryStage(t *testing.T) {
	p := New(60*time.Millisecond, spinner{}, spinner{})
	start := time.Now()
	res, stats := p.SolveStats(context.Background(), chainGraph(t))
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("portfolio ran %v, far past its 60ms budget", elapsed)
	}
	if res.Feasible || !res.Truncated {
		t.Fatalf("want infeasible truncated result, got %+v", res)
	}
	for i, out := range stats.Stages {
		if !out.Result.Truncated && !out.Skipped {
			t.Fatalf("stage %d neither truncated nor skipped: %+v", i, out)
		}
	}
}

func TestStopOnFeasibleSkipsRest(t *testing.T) {
	p := &Solver{
		Stages: []Stage{
			{Solver: stub{name: "first", res: feasible(3, 1, 0)}},
			{Solver: panicky{}}, // must never run
		},
		StopOnFeasible: true,
	}
	res, stats := p.SolveStats(context.Background(), chainGraph(t))
	if !res.Feasible || res.Cost != 3 || res.Truncated {
		t.Fatalf("got %+v", res)
	}
	if !stats.Stages[1].Skipped || stats.Stages[1].Panicked {
		t.Fatalf("stage 1 should have been skipped: %+v", stats.Stages[1])
	}
}

func TestKeepsCheapestAcrossStages(t *testing.T) {
	p := &Solver{
		Stages: []Stage{
			{Solver: stub{name: "pricey", res: feasible(10, 0, 1)}},
			{Solver: stub{name: "cheap", res: feasible(2, 1, 0)}},
			{Solver: stub{name: "mid", res: feasible(5, 0, 1)}},
		},
		StopOnFeasible: false,
	}
	res, stats := p.SolveStats(context.Background(), chainGraph(t))
	if !res.Feasible || res.Cost != 2 || stats.Winner != 1 {
		t.Fatalf("res=%+v winner=%d, want cost 2 from stage 1", res, stats.Winner)
	}
}

func TestExpiredContextSkipsEverything(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(time.Second, stub{name: "never", res: feasible(1, 0, 1)})
	res, stats := p.SolveStats(ctx, chainGraph(t))
	if res.Feasible || !res.Truncated {
		t.Fatalf("got %+v, want skipped truncated result", res)
	}
	if !stats.Stages[0].Skipped {
		t.Fatalf("stage 0 should be skipped: %+v", stats.Stages[0])
	}
}

// TestRealChain runs the paper's fallback order — Deep-RL (uniform
// prior), liberty enumeration, Scholz — on a small feasible problem.
func TestRealChain(t *testing.T) {
	g := chainGraph(t)
	deepRL := &rl.Solver{Net: mcts.Uniform{}, Cfg: rl.Config{
		K: 8, Backtrack: true, ReinvokeMCTS: true,
	}}
	p := New(2*time.Second, deepRL, liberty.Solver{}, scholz.Solver{})
	res, stats := p.SolveStats(context.Background(), g)
	if !res.Feasible || res.Truncated {
		t.Fatalf("res=%+v stats=%+v", res, stats)
	}
	if got := g.TotalCost(res.Selection); got != res.Cost {
		t.Fatalf("reported cost %v, recomputed %v", res.Cost, got)
	}
	if p.Name() != "portfolio(deep-rl+backtrack→liberty→scholz)" {
		t.Fatalf("name = %q", p.Name())
	}
}

// TestMutatingStageCannotPoisonLaterStages gives the first stage a
// solver that violates the no-mutate contract before panicking; the
// second stage must still see the original graph.
func TestMutatingStageCannotPoisonLaterStages(t *testing.T) {
	p := &Solver{
		Stages: []Stage{
			{Solver: vandal{}},
			{Solver: scholz.Solver{}},
		},
		StopOnFeasible: true,
		Logf:           func(string, ...any) {},
	}
	g := chainGraph(t)
	res, _ := p.SolveStats(context.Background(), g)
	if !res.Feasible {
		t.Fatalf("second stage failed after first-stage vandalism: %+v", res)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("caller's graph corrupted: %v", err)
	}
	if g.AliveCount() != 2 {
		t.Fatalf("caller's graph mutated: %d alive vertices", g.AliveCount())
	}
}

// vandal mutates its input graph and then panics.
type vandal struct{}

func (vandal) Name() string { return "vandal" }
func (vandal) Solve(g *pbqp.Graph) solve.Result {
	g.RemoveVertex(0)
	panic("vandalized")
}

// TestStatsJSONRoundTrip pins the wire shape of SolveStats: the same
// struct the server returns and pbqp-solve -stats-json prints. Infinite
// costs must encode as "inf", durations as nanoseconds, and decoding
// must invert encoding.
func TestStatsJSONRoundTrip(t *testing.T) {
	p := &Solver{
		Stages: []Stage{
			{Solver: panicky{}},
			{Solver: stub{"hopeless", solve.Result{Cost: cost.Inf}}},
			{Solver: stub{"winner", feasible(3, 1, 0)}},
			{Solver: stub{"spare", feasible(5, 0, 1)}},
		},
		StopOnFeasible: true,
		Logf:           func(string, ...any) {},
	}
	_, stats := p.SolveStats(context.Background(), chainGraph(t))
	data, err := json.Marshal(stats)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	for _, want := range []string{`"name":"panicky"`, `"panicked":true`, `"winner":2`, `"skipped":true`, `"cost":"inf"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("stats JSON %s\nmissing %s", data, want)
		}
	}
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal stats: %v", err)
	}
	if back.Winner != stats.Winner || len(back.Stages) != len(stats.Stages) {
		t.Fatalf("round trip changed shape: %+v vs %+v", back, stats)
	}
	if r := back.Stages[2].Result; !r.Feasible || r.Cost != stats.Stages[2].Result.Cost {
		t.Fatalf("winning stage result did not survive the round trip: %+v", r)
	}
}

package anneal

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/solve/brute"
)

func TestNearOptimalOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	worse := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{
			N: 4 + rng.Intn(6), M: 2 + rng.Intn(3), PEdge: 0.5, PInf: 0.05,
		})
		opt := (brute.Solver{}).Solve(g)
		res := Solver{Seed: int64(trial)}.Solve(g)
		if !opt.Feasible {
			continue
		}
		if !res.Feasible {
			t.Fatalf("trial %d: annealing infeasible on a feasible graph", trial)
		}
		if float64(res.Cost) > float64(opt.Cost)*1.3+1e-9 {
			worse++
		}
	}
	if worse > trials/4 {
		t.Errorf("annealing was >30%% off optimal on %d/%d graphs", worse, trials)
	}
}

func TestSelectionMatchesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 15, M: 4, PEdge: 0.3, PInf: 0.1})
	res := Solver{Seed: 7}.Solve(g)
	if res.Feasible {
		if got := g.TotalCost(res.Selection); got.IsInf() || float64(got-res.Cost) > 1e-6 || float64(res.Cost-got) > 1e-6 {
			t.Errorf("reported %v, selection costs %v", res.Cost, got)
		}
	}
}

func TestSolvesZeroInfAsRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	solved := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
			N: 20, M: 13, PEdge: 0.2, HardRatio: 0.3, PEdgeInf: 0.2,
		})
		res := Solver{Steps: 50_000, Seed: int64(trial)}.Solve(g)
		if res.Feasible && g.TotalCost(res.Selection) == 0 {
			solved++
		}
	}
	if solved < trials/2 {
		t.Errorf("annealing repaired only %d/%d zero/inf graphs", solved, trials)
	}
	t.Logf("annealing solved %d/%d zero/inf graphs", solved, trials)
}

func TestDeterministicGivenSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 12, M: 3, PEdge: 0.4, PInf: 0.1})
	a := Solver{Seed: 5}.Solve(g)
	b := Solver{Seed: 5}.Solve(g)
	if a.Cost != b.Cost || a.States != b.States {
		t.Error("same seed diverged")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if res := (Solver{}).Solve(pbqp.New(0, 2)); !res.Feasible {
		t.Error("empty graph infeasible")
	}
	g := pbqp.New(1, 3)
	g.SetVertexCost(0, cost.Vector{cost.Inf, 4, 9})
	res := Solver{Seed: 1}.Solve(g)
	if !res.Feasible || res.Cost != 4 {
		t.Errorf("singleton: %+v", res)
	}
}

func TestName(t *testing.T) {
	if (Solver{}).Name() != "anneal" {
		t.Error("wrong name")
	}
}

// Package anneal implements a simulated-annealing PBQP solver: a
// classical stochastic-local-search baseline that complements the
// deterministic reduction and enumeration solvers. Starting from a
// greedy finite assignment (or a random one), it proposes single-vertex
// recolorings and accepts them with the Metropolis criterion under a
// geometric cooling schedule. Infinite-cost assignments are handled by
// counting constraint violations, so the search can traverse infeasible
// regions on its way to feasible ones — useful in the zero/infinity
// ATE regime, where it doubles as a repair-style heuristic.
package anneal

import (
	"context"
	"math"
	"math/rand"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
)

// Solver is a simulated-annealing PBQP solver.
type Solver struct {
	// Steps is the number of proposals (default 200 × vertices).
	Steps int
	// T0 and T1 are the initial and final temperatures of the
	// geometric schedule (defaults 2.0 and 0.01).
	T0, T1 float64
	// ViolationPenalty converts one infinite selected entry into a
	// finite energy term (default 1000).
	ViolationPenalty float64
	// Restarts is the number of independent annealing runs; the best
	// result wins (default 4). Restarts after a feasible run keep
	// searching for lower cost; infeasible runs always retry.
	Restarts int
	// Seed drives the proposal stream.
	Seed int64
}

// Name implements solve.Solver.
func (Solver) Name() string { return "anneal" }

// energy is the annealing objective: finite cost plus a penalty per
// selected infinite entry.
func (s Solver) energy(g *pbqp.Graph, sel pbqp.Selection) (float64, int) {
	penalty := s.ViolationPenalty
	e := 0.0
	violations := 0
	for _, u := range g.Vertices() {
		c := g.VertexCost(u)[sel[u]]
		if c.IsInf() {
			violations++
			e += penalty
		} else {
			e += float64(c)
		}
	}
	for _, edge := range g.Edges() {
		c := edge.M.At(sel[edge.U], sel[edge.V])
		if c.IsInf() {
			violations++
			e += penalty
		} else {
			e += float64(c)
		}
	}
	return e, violations
}

// Solve implements solve.Solver. It runs Restarts independent
// annealing passes and keeps the cheapest result.
func (s Solver) Solve(g *pbqp.Graph) solve.Result {
	return s.SolveCtx(context.Background(), g)
}

// SolveCtx implements solve.ContextSolver. Annealing is inherently
// anytime: on cancellation the lowest-energy assignment seen so far in
// the interrupted run still competes with completed restarts, so the
// result carries the best feasible selection found overall, marked
// Truncated.
func (s Solver) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	if s.Restarts == 0 {
		s.Restarts = 4
	}
	best := solve.Result{Cost: cost.Inf}
	var totalStates int64
	truncated := false
	for r := 0; r < s.Restarts; r++ {
		if ctx.Err() != nil {
			truncated = true
			break
		}
		// the first run starts from the greedy assignment, later
		// restarts from random ones (diversification)
		res := s.solveOnce(ctx, g, s.Seed+int64(r)*7919, r > 0)
		totalStates += res.States
		truncated = truncated || res.Truncated
		if !best.Feasible || (res.Feasible && res.Cost.Less(best.Cost)) {
			best = res
		}
	}
	best.States = totalStates
	best.Truncated = truncated
	return best
}

// solveOnce is one annealing run.
func (s Solver) solveOnce(ctx context.Context, g *pbqp.Graph, seed int64, randomInit bool) solve.Result {
	vs := g.Vertices()
	if len(vs) == 0 {
		return solve.Result{Selection: pbqp.Selection{}, Feasible: true}
	}
	if s.Steps == 0 {
		s.Steps = 200 * len(vs)
	}
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if s.T0 == 0 {
		s.T0 = 2.0
	}
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if s.T1 == 0 {
		s.T1 = 0.01
	}
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned by the caller and never computed
	if s.ViolationPenalty == 0 {
		s.ViolationPenalty = 1000
	}
	rng := rand.New(rand.NewSource(seed))
	m := g.M()

	// start: per vertex the cheapest finite color, or (for restarts)
	// a random finite one
	sel := make(pbqp.Selection, g.NumVertices())
	for _, u := range vs {
		vec := g.VertexCost(u)
		if randomInit {
			finite := make([]int, 0, m)
			for c := range vec {
				if !vec[c].IsInf() {
					finite = append(finite, c)
				}
			}
			if len(finite) > 0 {
				sel[u] = finite[rng.Intn(len(finite))]
				continue
			}
		}
		if _, idx := vec.Min(); idx >= 0 {
			sel[u] = idx
		} else {
			sel[u] = rng.Intn(m)
		}
	}
	energy, _ := s.energy(g, sel)
	best := sel.Clone()
	bestEnergy := energy
	var states int64

	cooling := math.Pow(s.T1/s.T0, 1/float64(s.Steps))
	temp := s.T0
	truncated := false
	for step := 0; step < s.Steps; step++ {
		states++
		if states%solve.CheckInterval == 0 && ctx.Err() != nil {
			truncated = true
			break
		}
		u := vs[rng.Intn(len(vs))]
		old := sel[u]
		next := rng.Intn(m)
		if next == old {
			continue
		}
		delta := s.moveDelta(g, sel, u, next)
		if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
			sel[u] = next
			energy += delta
			if energy < bestEnergy {
				bestEnergy = energy
				copy(best, sel)
			}
		}
		temp *= cooling
	}

	total := g.TotalCost(best)
	return solve.Result{
		Selection: best,
		Cost:      total,
		Feasible:  !total.IsInf(),
		Truncated: truncated,
		States:    states,
	}
}

// moveDelta computes the energy change of recoloring u to next, looking
// only at u's vector entry and incident edges.
func (s Solver) moveDelta(g *pbqp.Graph, sel pbqp.Selection, u, next int) float64 {
	old := sel[u]
	e := s.term(g.VertexCost(u)[next]) - s.term(g.VertexCost(u)[old])
	for _, v := range g.Neighbors(u) {
		m := g.EdgeCost(u, v)
		e += s.term(m.At(next, sel[v])) - s.term(m.At(old, sel[v]))
	}
	return e
}

func (s Solver) term(c cost.Cost) float64 {
	if c.IsInf() {
		return s.ViolationPenalty
	}
	return float64(c)
}

package scholz

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/solve/brute"
)

func fig2Graph() *pbqp.Graph {
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, 2})
	g.SetVertexCost(1, cost.Vector{5, 0})
	g.SetVertexCost(2, cost.Vector{0, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{1, 3}, {7, 8}}))
	g.SetEdgeCost(1, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 4}, {9, 6}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 2}, {5, 3}}))
	return g
}

func TestFig2IsSolvedOptimally(t *testing.T) {
	// a triangle reduces by R2/R1/R0 only, all exact
	res := Solver{}.Solve(fig2Graph())
	if !res.Feasible || res.Cost != 11 {
		t.Errorf("got (%v, feasible=%v), want (11, true)", res.Cost, res.Feasible)
	}
}

func TestDoesNotMutateInput(t *testing.T) {
	g := fig2Graph()
	before := g.String()
	Solver{}.Solve(g)
	if g.String() != before {
		t.Error("Solve mutated its input")
	}
}

func TestLowDegreeGraphsAreOptimal(t *testing.T) {
	// Graphs whose reduction never needs RN (max degree ≤ 2 at every
	// step): paths and cycles. The solver must match the brute optimum.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		m := 2 + rng.Intn(3)
		g := pbqp.New(n, m)
		for u := 0; u < n; u++ {
			vec := make(cost.Vector, m)
			for i := range vec {
				vec[i] = cost.Cost(rng.Intn(20))
			}
			g.SetVertexCost(u, vec)
		}
		addRandEdge := func(u, v int) {
			mat := cost.NewMatrix(m, m)
			for i := range mat.Data {
				mat.Data[i] = cost.Cost(rng.Intn(20))
			}
			if mat.IsZero() {
				mat.Set(0, 0, 1)
			}
			g.SetEdgeCost(u, v, mat)
		}
		for u := 0; u+1 < n; u++ {
			addRandEdge(u, u+1)
		}
		if trial%2 == 0 {
			addRandEdge(n-1, 0) // close the cycle
		}
		want := (brute.Solver{}).Solve(g)
		got := Solver{}.Solve(g)
		if !got.Feasible {
			t.Fatalf("trial %d: infeasible on a finite graph", trial)
		}
		if d := float64(got.Cost - want.Cost); d > 1e-9 || d < -1e-9 {
			t.Fatalf("trial %d: cost %v, optimum %v", trial, got.Cost, want.Cost)
		}
	}
}

func TestRandomGraphsSelectionConsistent(t *testing.T) {
	// On general graphs the RN heuristic may be sub-optimal, but the
	// reported cost must always equal the cost of the reported
	// selection, and must never beat the true optimum.
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 40; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{
			N: 3 + rng.Intn(7), M: 2 + rng.Intn(3), PEdge: 0.6, PInf: 0.1,
		})
		got := Solver{}.Solve(g)
		if got.Feasible {
			if c := g.TotalCost(got.Selection); !approxEq(c, got.Cost) {
				t.Fatalf("trial %d: cost %v but selection costs %v", trial, got.Cost, c)
			}
			want := (brute.Solver{}).Solve(g)
			if got.Cost.Less(want.Cost) && !approxEq(got.Cost, want.Cost) {
				t.Fatalf("trial %d: beat the optimum: %v < %v", trial, got.Cost, want.Cost)
			}
		}
	}
}

func TestDisconnectedVertices(t *testing.T) {
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{4, 7})
	g.SetVertexCost(1, cost.Vector{9, 1})
	g.SetVertexCost(2, cost.Vector{cost.Inf, 3})
	res := Solver{}.Solve(g)
	if !res.Feasible || res.Cost != 8 {
		t.Errorf("got (%v, %v), want (8, true)", res.Cost, res.Feasible)
	}
	if res.Selection[0] != 0 || res.Selection[1] != 1 || res.Selection[2] != 1 {
		t.Errorf("selection = %v", res.Selection)
	}
}

func TestInfeasibleVertex(t *testing.T) {
	g := pbqp.New(1, 2)
	g.SetVertexCost(0, cost.NewInfVector(2))
	res := Solver{}.Solve(g)
	if res.Feasible {
		t.Error("reported feasible for an all-inf vertex")
	}
}

// TestATEStyleOftenFails reproduces the Section V-B observation that the
// original solver, which approximates all high-degree vertices, usually
// fails on dense zero/infinity graphs even though a solution exists.
func TestATEStyleOftenFails(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	failures := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
			N: 60, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.35,
		})
		if res := (Solver{}).Solve(g); !res.Feasible {
			failures++
		}
	}
	if failures == 0 {
		t.Error("scholz never failed on dense zero/inf graphs; RN heuristic suspiciously strong")
	}
	t.Logf("scholz failed %d/%d dense zero/inf graphs", failures, trials)
}

func TestR2CreatesEdge(t *testing.T) {
	// star: center 0 connected to 1 and 2 (degree 2), no edge (1,2);
	// R2 on vertex 0 must create edge (1,2) and stay exact.
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{1, 5})
	g.SetVertexCost(1, cost.Vector{0, 2})
	g.SetVertexCost(2, cost.Vector{3, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{0, 6}, {2, 0}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{4, 0}, {0, 3}}))
	want := (brute.Solver{}).Solve(g)
	got := Solver{}.Solve(g)
	if !got.Feasible || got.Cost != want.Cost {
		t.Errorf("got %v, want %v", got.Cost, want.Cost)
	}
}

func TestStatesCounted(t *testing.T) {
	res := Solver{}.Solve(fig2Graph())
	if res.States != 3 {
		t.Errorf("states = %d, want 3 (one per reduction)", res.States)
	}
}

func approxEq(a, b cost.Cost) bool {
	if a.IsInf() || b.IsInf() {
		return a.IsInf() == b.IsInf()
	}
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+float64(a)+float64(b))
}

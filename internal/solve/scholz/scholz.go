// Package scholz implements the original PBQP solver of Scholz and
// Eckstein (LCTES 2002), as used by LLVM's PBQP register allocator.
//
// The solver repeatedly removes the vertex of minimum degree:
//
//   - degree 0 (R0): the vertex is independent; its color is the local
//     minimum, chosen during back-propagation.
//   - degree 1 (R1): the vertex's vector and edge matrix are folded into
//     its neighbor's vector; the reduction is exact.
//   - degree 2 (R2): the vertex is folded into a (possibly new) edge
//     between its two neighbors; the reduction is exact.
//   - degree ≥ 3 (RN): a heuristic, possibly sub-optimal color is chosen
//     immediately — the minimizer of the vertex cost plus each incident
//     edge's row minimum — and the selected rows are propagated to the
//     neighbors.
//
// After the graph is empty, colors are assigned in reverse removal order.
// For graphs whose vertices are mostly high degree with zero/infinity
// costs (ATE programs), RN frequently picks a row that later turns out
// infeasible, which is why the paper reports this solver failing for
// 9 of 10 ATE programs.
package scholz

import (
	"context"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
)

// Solver is the Scholz–Eckstein reduction solver.
type Solver struct{}

// Name implements solve.Solver.
func (Solver) Name() string { return "scholz" }

type reductionKind int

const (
	r0 reductionKind = iota
	r1
	r2
	rn
)

// record captures one reduction so back-propagation can re-derive the
// removed vertex's color from its (by then colored) former neighbors.
type record struct {
	kind   reductionKind
	u      int
	vec    cost.Vector // u's vector at removal time
	nbrs   []int       // former neighbors (1 for R1, 2 for R2, any for RN)
	mats   []*cost.Matrix
	chosen int // RN: color decided at reduction time
}

// Solve implements solve.Solver.
func (s Solver) Solve(g *pbqp.Graph) solve.Result {
	return s.SolveCtx(context.Background(), g)
}

// SolveCtx implements solve.ContextSolver. The reduction is polynomial
// and normally finishes well inside any realistic deadline; when the
// context fires mid-reduction the solver degrades gracefully instead of
// stopping cold: every remaining vertex is colored immediately with the
// cheap RN local-minimum rule (no more exact R1/R2 folds), so a
// complete — possibly worse — selection is still produced and marked
// Truncated.
func (Solver) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	w := g.Clone()
	var stack []record
	var states int64
	truncated := ctx.Err() != nil

	for w.AliveCount() > 0 {
		states++
		if !truncated && states%solve.CheckInterval == 0 && ctx.Err() != nil {
			truncated = true
		}
		u := minDegreeVertex(w)
		if truncated {
			stack = append(stack, reduceRN(w, u))
			continue
		}
		switch w.Degree(u) {
		case 0:
			stack = append(stack, record{kind: r0, u: u, vec: w.VertexCost(u).Clone()})
			w.RemoveVertex(u)
		case 1:
			stack = append(stack, reduceR1(w, u))
		case 2:
			stack = append(stack, reduceR2(w, u))
		default:
			stack = append(stack, reduceRN(w, u))
		}
	}

	sel := make(pbqp.Selection, g.NumVertices())
	for i := range sel {
		sel[i] = -1
	}
	feasible := true
	for i := len(stack) - 1; i >= 0; i-- {
		rec := stack[i]
		c := rec.backPropagate(sel)
		if c < 0 {
			feasible = false
			c = 0 // arbitrary; the assignment is infeasible anyway
		}
		sel[rec.u] = c
	}
	for i := range sel {
		if !g.Alive(i) {
			sel[i] = 0
		}
	}
	total := g.TotalCost(sel)
	return solve.Result{
		Selection: sel,
		Cost:      total,
		Feasible:  feasible && !total.IsInf(),
		Truncated: truncated,
		States:    states,
	}
}

// minDegreeVertex returns the alive vertex with the fewest incident
// edges, breaking ties by index for determinism.
func minDegreeVertex(g *pbqp.Graph) int {
	best, bestDeg := -1, 0
	for _, u := range g.Vertices() {
		d := g.Degree(u)
		if best == -1 || d < bestDeg {
			best, bestDeg = u, d
		}
	}
	return best
}

// reduceR1 folds degree-1 vertex u into its single neighbor y:
// vec[y][j] += min_i (vec[u][i] + M_uy[i][j]).
func reduceR1(g *pbqp.Graph, u int) record {
	y := g.Neighbors(u)[0]
	m := g.EdgeCost(u, y).Clone()
	vec := g.VertexCost(u).Clone()
	delta := make(cost.Vector, g.M())
	for j := 0; j < g.M(); j++ {
		best := cost.Inf
		for i := 0; i < g.M(); i++ {
			if c := vec[i].Add(m.At(i, j)); c.Less(best) {
				best = c
			}
		}
		delta[j] = best
	}
	g.AddToVertexCost(y, delta)
	g.RemoveVertex(u)
	return record{kind: r1, u: u, vec: vec, nbrs: []int{y}, mats: []*cost.Matrix{m}}
}

// reduceR2 folds degree-2 vertex u into the edge between its neighbors
// (y, z): Δ[jy][jz] = min_i (vec[u][i] + M_uy[i][jy] + M_uz[i][jz]).
func reduceR2(g *pbqp.Graph, u int) record {
	ns := g.Neighbors(u)
	y, z := ns[0], ns[1]
	my := g.EdgeCost(u, y).Clone()
	mz := g.EdgeCost(u, z).Clone()
	vec := g.VertexCost(u).Clone()
	m := g.M()
	delta := cost.NewMatrix(m, m)
	for jy := 0; jy < m; jy++ {
		for jz := 0; jz < m; jz++ {
			best := cost.Inf
			for i := 0; i < m; i++ {
				if c := vec[i].Add(my.At(i, jy)).Add(mz.At(i, jz)); c.Less(best) {
					best = c
				}
			}
			delta.Set(jy, jz, best)
		}
	}
	g.RemoveVertex(u)
	g.AddEdgeCost(y, z, delta)
	if g.EdgeCost(y, z).IsZero() {
		g.RemoveEdge(y, z)
	}
	return record{kind: r2, u: u, vec: vec, nbrs: []int{y, z}, mats: []*cost.Matrix{my, mz}}
}

// reduceRN heuristically colors high-degree vertex u with the minimizer
// of its own cost plus, per incident edge, the best achievable combined
// edge-plus-neighbor cost (LLVM's RN local minimum), then propagates the
// selected rows (the paper's transition T) to the neighbors.
func reduceRN(g *pbqp.Graph, u int) record {
	ns := g.Neighbors(u)
	vec := g.VertexCost(u).Clone()
	mats := make([]*cost.Matrix, len(ns))
	for k, v := range ns {
		mats[k] = g.EdgeCost(u, v).Clone()
	}
	best, bestCost := -1, cost.Inf
	for i := 0; i < g.M(); i++ {
		c := vec[i]
		for k, m := range mats {
			nvec := g.VertexCost(ns[k])
			local := cost.Inf
			for j := 0; j < g.M(); j++ {
				if combined := m.At(i, j).Add(nvec[j]); combined.Less(local) {
					local = combined
				}
			}
			c = c.Add(local)
		}
		if best == -1 || c.Less(bestCost) {
			best, bestCost = i, c
		}
	}
	g.ColorVertex(u, best)
	return record{kind: rn, u: u, vec: vec, nbrs: ns, mats: mats, chosen: best}
}

// backPropagate re-derives the color of the removed vertex given the
// already-assigned colors of its former neighbors. It returns -1 when
// every color is infinite (infeasible).
func (rec *record) backPropagate(sel pbqp.Selection) int {
	switch rec.kind {
	case rn:
		return rec.chosen
	case r0:
		_, idx := rec.vec.Min()
		return idx
	default:
		best, bestCost := -1, cost.Inf
		for i := range rec.vec {
			c := rec.vec[i]
			for k, v := range rec.nbrs {
				c = c.Add(rec.mats[k].At(i, sel[v]))
			}
			if !c.IsInf() && (best == -1 || c.Less(bestCost)) {
				best, bestCost = i, c
			}
		}
		return best
	}
}

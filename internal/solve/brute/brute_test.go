package brute

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
)

func fig2Graph() *pbqp.Graph {
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, 2})
	g.SetVertexCost(1, cost.Vector{5, 0})
	g.SetVertexCost(2, cost.Vector{0, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{1, 3}, {7, 8}}))
	g.SetEdgeCost(1, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 4}, {9, 6}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 2}, {5, 3}}))
	return g
}

func TestFig2Optimum(t *testing.T) {
	res := Solver{}.Solve(fig2Graph())
	if !res.Feasible {
		t.Fatal("infeasible")
	}
	if res.Cost != 11 {
		t.Errorf("optimum = %v, want 11", res.Cost)
	}
	want := pbqp.Selection{0, 0, 0}
	for i := range want {
		if res.Selection[i] != want[i] {
			t.Errorf("selection = %v, want %v", res.Selection, want)
			break
		}
	}
}

// exhaustive computes the optimum by unpruned enumeration.
func exhaustive(g *pbqp.Graph) (cost.Cost, bool) {
	n, m := g.NumVertices(), g.M()
	best := cost.Inf
	sel := make(pbqp.Selection, n)
	var rec func(int)
	rec = func(d int) {
		if d == n {
			if c := g.TotalCost(sel); c.Less(best) {
				best = c
			}
			return
		}
		for c := 0; c < m; c++ {
			sel[d] = c
			rec(d + 1)
		}
	}
	rec(0)
	return best, !best.IsInf()
}

func TestMatchesExhaustiveOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{
			N: 2 + rng.Intn(6), M: 2 + rng.Intn(3), PEdge: 0.5, PInf: 0.2,
		})
		wantCost, wantFeasible := exhaustive(g)
		res := Solver{}.Solve(g)
		if res.Feasible != wantFeasible {
			t.Fatalf("trial %d: feasible = %v, want %v", trial, res.Feasible, wantFeasible)
		}
		if !wantFeasible {
			continue
		}
		if diff := float64(res.Cost - wantCost); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("trial %d: cost = %v, want %v", trial, res.Cost, wantCost)
		}
		if got := g.TotalCost(res.Selection); !approxEq(got, res.Cost) {
			t.Fatalf("trial %d: reported cost %v but selection costs %v", trial, res.Cost, got)
		}
	}
}

func TestInfeasibleGraph(t *testing.T) {
	g := pbqp.New(2, 2)
	g.SetVertexCost(0, cost.Vector{0, 0})
	g.SetVertexCost(1, cost.Vector{0, 0})
	mat := cost.NewMatrix(2, 2)
	for i := range mat.Data {
		mat.Data[i] = cost.Inf
	}
	g.SetEdgeCost(0, 1, mat)
	res := Solver{}.Solve(g)
	if res.Feasible {
		t.Error("reported feasible for an all-inf edge")
	}
	if !res.Cost.IsInf() {
		t.Errorf("cost = %v, want inf", res.Cost)
	}
}

func TestStateCounting(t *testing.T) {
	res := Solver{}.Solve(fig2Graph())
	if res.States <= 0 {
		t.Error("no states counted")
	}
	// m^1 states at minimum (first vertex alone)
	if res.States < 2 {
		t.Errorf("states = %d, implausibly low", res.States)
	}
}

func TestMaxStatesTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 14, M: 4, PEdge: 0.3, PInf: 0})
	res := Solver{MaxStates: 5}.Solve(g)
	if res.States > 5+int64(g.M()) {
		t.Errorf("states = %d, cap not respected", res.States)
	}
}

func TestEmptyGraph(t *testing.T) {
	res := Solver{}.Solve(pbqp.New(0, 2))
	if !res.Feasible || res.Cost != 0 {
		t.Errorf("empty graph: %+v", res)
	}
}

func TestName(t *testing.T) {
	if (Solver{}).Name() != "brute" {
		t.Error("wrong name")
	}
}

// approxEq compares costs with a relative tolerance: solvers may sum the
// same terms in different orders.
func approxEq(a, b cost.Cost) bool {
	if a.IsInf() || b.IsInf() {
		return a.IsInf() == b.IsInf()
	}
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+float64(a)+float64(b))
}

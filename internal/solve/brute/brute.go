// Package brute implements an exact branch-and-bound PBQP solver.
//
// It enumerates colorings in vertex order, pruning branches whose partial
// cost already reaches infinity or the best finite cost found so far. It
// is exponential and intended as a test oracle and for small problems.
package brute

import (
	"context"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
)

// Solver is an exact branch-and-bound PBQP solver.
type Solver struct {
	// MaxStates, when positive, aborts the search after that many
	// explored states; the best solution found so far is returned.
	MaxStates int64
}

// Name implements solve.Solver.
func (Solver) Name() string { return "brute" }

// Solve implements solve.Solver. The returned cost is globally optimal
// (unless MaxStates truncated the search). When the graph contains
// negative costs (coalescing hints), bound pruning is disabled — a
// partial sum can still decrease — and only infinite branches are cut.
func (s Solver) Solve(g *pbqp.Graph) solve.Result {
	return s.SolveCtx(context.Background(), g)
}

// SolveCtx implements solve.ContextSolver. The context is polled every
// solve.CheckInterval explored states; on cancellation the search stops
// and the best (incumbent) selection found so far is returned with
// Truncated set.
func (s Solver) SolveCtx(ctx context.Context, g *pbqp.Graph) solve.Result {
	vs := g.Vertices()
	st := &search{
		ctx:      ctx,
		g:        g,
		vs:       vs,
		sel:      make([]int, len(vs)),
		best:     cost.Inf,
		maxState: s.MaxStates,
		prune:    !hasNegativeCosts(g),
	}
	st.stopped = ctx.Err() != nil
	if !st.stopped {
		st.run(0, 0)
	}
	res := solve.Result{
		Cost:      st.best,
		Feasible:  !st.best.IsInf(),
		Truncated: st.stopped,
		States:    st.states,
	}
	if res.Feasible {
		res.Selection = make(pbqp.Selection, g.NumVertices())
		for i, u := range vs {
			res.Selection[u] = st.bestSel[i]
		}
	}
	return res
}

type search struct {
	ctx      context.Context
	g        *pbqp.Graph
	vs       []int
	sel      []int // color of vs[i] for i < depth
	best     cost.Cost
	bestSel  []int
	states   int64
	maxState int64
	prune    bool
	stopped  bool // ctx fired; unwind keeping the incumbent
}

// hasNegativeCosts reports whether any vertex or edge cost is negative.
func hasNegativeCosts(g *pbqp.Graph) bool {
	for _, u := range g.Vertices() {
		for _, c := range g.VertexCost(u) {
			if c.Less(0) {
				return true
			}
		}
	}
	for _, e := range g.Edges() {
		for _, c := range e.M.Data {
			if c.Less(0) {
				return true
			}
		}
	}
	return false
}

// worse reports whether partial can be pruned against the incumbent.
func (st *search) worse(partial cost.Cost) bool {
	if partial.IsInf() {
		return true
	}
	return st.prune && !partial.Less(st.best)
}

func (st *search) run(depth int, acc cost.Cost) {
	if st.stopped || (st.maxState > 0 && st.states >= st.maxState) {
		return
	}
	if depth == len(st.vs) {
		if acc.Less(st.best) {
			st.best = acc
			st.bestSel = append(st.bestSel[:0], st.sel...)
		}
		return
	}
	u := st.vs[depth]
	vec := st.g.VertexCost(u)
	for c := 0; c < st.g.M(); c++ {
		if st.stopped || (st.maxState > 0 && st.states >= st.maxState) {
			return
		}
		st.states++
		if st.states%solve.CheckInterval == 0 && st.ctx.Err() != nil {
			st.stopped = true
			return
		}
		partial := acc.Add(vec[c])
		if st.worse(partial) {
			continue
		}
		// add edge costs to already-colored neighbors
		for j := 0; j < depth; j++ {
			if m := st.g.EdgeCost(u, st.vs[j]); m != nil {
				partial = partial.Add(m.At(c, st.sel[j]))
				if st.worse(partial) {
					break
				}
			}
		}
		if st.worse(partial) {
			continue
		}
		st.sel[depth] = c
		st.run(depth+1, partial)
	}
}

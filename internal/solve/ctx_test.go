package solve_test

import (
	"context"
	"testing"
	"time"

	"pbqprl/internal/cost"
	"pbqprl/internal/mcts"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/rl"
	"pbqprl/internal/solve"
	"pbqprl/internal/solve/anneal"
	"pbqprl/internal/solve/brute"
	"pbqprl/internal/solve/liberty"
	"pbqprl/internal/solve/portfolio"
	"pbqprl/internal/solve/scholz"
)

// hardFeasible60 is a 60-vertex, 2-color graph on which branch and
// bound cannot prune: every assignment is feasible and the negative
// costs (legal coalescing hints) disable bound pruning, so brute faces
// 2^60 states — yet an incumbent appears on the very first descent.
func hardFeasible60() *pbqp.Graph {
	g := pbqp.New(60, 2)
	for u := 0; u < 60; u++ {
		g.SetVertexCost(u, cost.Vector{-1, -2})
	}
	for u := 0; u < 59; u++ {
		g.SetEdgeCost(u, u+1, cost.NewMatrixFrom([][]cost.Cost{
			{1, 0},
			{0, 1},
		}))
	}
	return g
}

// pigeonhole60 is a 60-vertex graph whose first 12 vertices form a
// clique with "must differ" edges over only 11 colors — infeasible, and
// a worst case for chronological enumeration (≈ 11!·e states) and for
// MCTS backtracking, which can never reach a complete coloring.
func pigeonhole60() *pbqp.Graph {
	const m = 11
	g := pbqp.New(60, m)
	neq := cost.NewMatrix(m, m)
	for i := 0; i < m; i++ {
		neq.Set(i, i, cost.Inf)
	}
	for u := 0; u < 12; u++ {
		for v := u + 1; v < 12; v++ {
			g.SetEdgeCost(u, v, neq)
		}
	}
	return g
}

// checkAnytime asserts the ContextSolver contract on a result: a
// feasible answer must be internally consistent, an infeasible one must
// say so rather than hang or lie.
func checkAnytime(t *testing.T, g *pbqp.Graph, res solve.Result) {
	t.Helper()
	if res.Feasible {
		if got := g.TotalCost(res.Selection); got != res.Cost {
			t.Fatalf("best-so-far selection re-evaluates to %v, reported %v", got, res.Cost)
		}
		if res.Cost.IsInf() {
			t.Fatalf("feasible result with infinite cost")
		}
	}
}

// solverUnderTest pairs a context-aware solver with the graph that
// makes it slow and whether a feasible incumbent must survive
// truncation.
type solverUnderTest struct {
	name         string
	solver       solve.Solver
	graph        *pbqp.Graph
	wantFeasible bool // best-so-far must be feasible even when truncated
	// mustTruncate: the graph is beyond this solver's reach, so a 50 ms
	// deadline has to cut it short. False for the polynomial Scholz
	// solver, which may legitimately finish first.
	mustTruncate bool
}

func ctxSolvers() []solverUnderTest {
	deepRL := &rl.Solver{Net: mcts.Uniform{}, Cfg: rl.Config{
		K: 30, Backtrack: true, ReinvokeMCTS: true,
	}}
	return []solverUnderTest{
		{"brute", brute.Solver{}, hardFeasible60(), true, true},
		{"liberty", liberty.Solver{Threshold: 11}, pigeonhole60(), false, true},
		{"anneal", anneal.Solver{Steps: 1 << 30, Restarts: 1}, hardFeasible60(), true, true},
		{"rl-backtrack", deepRL, pigeonhole60(), false, true},
		{"scholz", scholz.Solver{}, pigeonhole60(), false, false},
		{"portfolio", portfolio.New(0,
			&rl.Solver{Net: mcts.Uniform{}, Cfg: rl.Config{K: 30, Backtrack: true, ReinvokeMCTS: true}},
			liberty.Solver{Threshold: 11},
		), pigeonhole60(), false, true},
	}
}

// TestExpiredContextReturnsImmediately feeds every solver an
// already-cancelled context on its worst-case graph: each must return
// promptly with Truncated set, never hang and never panic.
func TestExpiredContextReturnsImmediately(t *testing.T) {
	for _, tc := range ctxSolvers() {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			start := time.Now()
			res := solve.SolveCtx(ctx, tc.solver, tc.graph)
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Fatalf("took %v with an expired context", elapsed)
			}
			if !res.Truncated {
				t.Fatalf("expected a truncated result, got %+v", res)
			}
			checkAnytime(t, tc.graph, res)
		})
	}
}

// TestDeadlineTruncatesWithBestSoFar gives every solver 50 ms on a
// 60-vertex graph it cannot finish. Each must come back around the
// deadline (the hard bound below is generous for loaded CI machines;
// the polling interval targets single-digit-millisecond overshoot) with
// its best feasible selection when it tracks an incumbent.
func TestDeadlineTruncatesWithBestSoFar(t *testing.T) {
	const deadline = 50 * time.Millisecond
	for _, tc := range ctxSolvers() {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			start := time.Now()
			res := solve.SolveCtx(ctx, tc.solver, tc.graph)
			elapsed := time.Since(start)
			if elapsed > 2*time.Second {
				t.Fatalf("took %v against a %v deadline", elapsed, deadline)
			}
			if elapsed > 2*deadline {
				t.Logf("note: overshot the %v deadline: %v", deadline, elapsed)
			}
			if tc.mustTruncate && !res.Truncated {
				t.Fatalf("%s finished a graph it cannot finish: %+v", tc.name, res)
			}
			checkAnytime(t, tc.graph, res)
			if tc.wantFeasible && !res.Feasible {
				t.Fatalf("%s should keep a feasible incumbent, got %+v", tc.name, res)
			}
		})
	}
}

// TestCrossGoroutineCancel cancels mid-solve from another goroutine —
// the path the race detector cares about in a serving stack.
func TestCrossGoroutineCancel(t *testing.T) {
	g := hardFeasible60()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan solve.Result, 1)
	go func() {
		done <- solve.SolveCtx(ctx, brute.Solver{}, g)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		checkAnytime(t, g, res)
		if !res.Feasible {
			t.Fatalf("brute lost its incumbent: %+v", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solver did not return after cancellation")
	}
}

// TestScholzDeadlineStillCompletes pins the graceful-degradation
// behavior: a cancelled Scholz run falls back to pure-RN coloring but
// still returns a complete selection for every vertex.
func TestScholzDeadlineStillCompletes(t *testing.T) {
	g := hardFeasible60()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := scholz.Solver{}.SolveCtx(ctx, g)
	if !res.Truncated {
		t.Fatalf("expected truncated result, got %+v", res)
	}
	if len(res.Selection) != 60 {
		t.Fatalf("selection length %d, want 60", len(res.Selection))
	}
	if !res.Feasible {
		t.Fatalf("all-finite graph must stay feasible under RN fallback: %+v", res)
	}
	if got := g.TotalCost(res.Selection); got != res.Cost {
		t.Fatalf("cost %v, selection re-evaluates to %v", res.Cost, got)
	}
}

// TestUncancelledSolversUnchanged pins that a background context leaves
// results identical to the plain Solve path.
func TestUncancelledSolversUnchanged(t *testing.T) {
	// Small feasible chain of "must differ" constraints.
	small := pbqp.New(4, 3)
	neq := cost.NewMatrix(3, 3)
	for i := 0; i < 3; i++ {
		neq.Set(i, i, cost.Inf)
	}
	small.SetEdgeCost(0, 1, neq)
	small.SetEdgeCost(1, 2, neq)
	small.SetEdgeCost(2, 3, neq)
	for _, s := range []solve.Solver{brute.Solver{}, liberty.Solver{}, scholz.Solver{}} {
		plain := s.Solve(small)
		ctxed := solve.SolveCtx(context.Background(), s, small)
		if plain.Feasible != ctxed.Feasible || plain.Cost != ctxed.Cost ||
			plain.States != ctxed.States || ctxed.Truncated {
			t.Fatalf("%s: plain %+v != ctx %+v", s.Name(), plain, ctxed)
		}
	}
}

// Package solve defines the common interface of PBQP solvers and the
// statistics they report. Concrete solvers live in the subpackages
// brute (exact branch and bound), scholz (the original Scholz–Eckstein
// reduction solver) and liberty (the liberty-based enumeration solver of
// Kim et al., TACO 2020); the Deep-RL solver lives in internal/rl and
// the deadline-aware fallback chain in the portfolio subpackage.
package solve

import (
	"context"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
)

// Result is the outcome of solving one PBQP problem. It marshals to
// JSON (infinite costs as the string "inf") so the CLI and the serving
// layer report identically.
type Result struct {
	// Selection is the color chosen for each vertex. It is only
	// meaningful when Feasible is true.
	Selection pbqp.Selection `json:"selection,omitempty"`
	// Cost is the total cost of Selection (Equation 1), or cost.Inf
	// when no finite-cost assignment was found.
	Cost cost.Cost `json:"cost"`
	// Feasible reports whether a finite-cost assignment was found.
	Feasible bool `json:"feasible"`
	// Truncated reports that the solve was cut short by context
	// cancellation or deadline expiry before the solver finished its
	// search. A truncated result carries the best feasible selection
	// found so far when one exists (Feasible is then still true); it
	// is an anytime answer, not a completed one. Budget truncation via
	// solver-specific caps (MaxStates, MaxNodes) does not set it.
	Truncated bool `json:"truncated"`
	// States counts the search states the solver explored: one per
	// attempted (vertex, color) assignment for enumeration solvers,
	// one per reduction step for reduction solvers. It is the paper's
	// search-space metric.
	States int64 `json:"states"`
}

// Solver solves PBQP problems.
type Solver interface {
	// Name identifies the solver in experiment reports.
	Name() string
	// Solve finds a (locally or globally) minimal coloring of g.
	// Implementations must not retain or mutate g.
	Solve(g *pbqp.Graph) Result
}

// ContextSolver is a Solver that honors context cancellation: SolveCtx
// periodically polls ctx and, once it is done, stops searching and
// returns its best feasible selection found so far with
// Result.Truncated set (Feasible=false when none was found yet).
// Implementations never hang past a few polling intervals and never
// panic on cancellation.
type ContextSolver interface {
	Solver
	// SolveCtx is Solve under a context. A canceled ctx truncates the
	// search; it never produces an error or a panic.
	SolveCtx(ctx context.Context, g *pbqp.Graph) Result
}

// CheckInterval is how many search states context-aware solvers explore
// between ctx polls. Polling a context is cheap but not free; at a few
// hundred states per poll the overhead is unmeasurable while a 50 ms
// deadline still lands within a small fraction of itself.
const CheckInterval = 256

// SolveCtx solves g with s under ctx: solvers implementing
// ContextSolver are cancelled cooperatively, legacy solvers run through
// the WithContext adapter (checked before starting, not interruptible
// mid-run).
func SolveCtx(ctx context.Context, s Solver, g *pbqp.Graph) Result {
	if cs, ok := s.(ContextSolver); ok {
		return cs.SolveCtx(ctx, g)
	}
	return WithContext(s).SolveCtx(ctx, g)
}

// WithContext adapts a legacy Solver to the ContextSolver interface.
// The adapter is best-effort: a context that is already done yields an
// immediate truncated, infeasible result, but once the wrapped solver
// starts it runs to completion — true mid-solve cancellation requires
// the solver to implement ContextSolver itself.
func WithContext(s Solver) ContextSolver {
	if cs, ok := s.(ContextSolver); ok {
		return cs
	}
	return ctxAdapter{s}
}

type ctxAdapter struct {
	Solver
}

// SolveCtx implements ContextSolver.
func (a ctxAdapter) SolveCtx(ctx context.Context, g *pbqp.Graph) Result {
	if ctx.Err() != nil {
		return Result{Cost: cost.Inf, Truncated: true}
	}
	res := a.Solver.Solve(g)
	return res
}

// Package solve defines the common interface of PBQP solvers and the
// statistics they report. Concrete solvers live in the subpackages
// brute (exact branch and bound), scholz (the original Scholz–Eckstein
// reduction solver) and liberty (the liberty-based enumeration solver of
// Kim et al., TACO 2020); the Deep-RL solver lives in internal/rl.
package solve

import (
	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
)

// Result is the outcome of solving one PBQP problem.
type Result struct {
	// Selection is the color chosen for each vertex. It is only
	// meaningful when Feasible is true.
	Selection pbqp.Selection
	// Cost is the total cost of Selection (Equation 1), or cost.Inf
	// when no finite-cost assignment was found.
	Cost cost.Cost
	// Feasible reports whether a finite-cost assignment was found.
	Feasible bool
	// States counts the search states the solver explored: one per
	// attempted (vertex, color) assignment for enumeration solvers,
	// one per reduction step for reduction solvers. It is the paper's
	// search-space metric.
	States int64
}

// Solver solves PBQP problems.
type Solver interface {
	// Name identifies the solver in experiment reports.
	Name() string
	// Solve finds a (locally or globally) minimal coloring of g.
	// Implementations must not retain or mutate g.
	Solve(g *pbqp.Graph) Result
}

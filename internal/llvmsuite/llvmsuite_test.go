package llvmsuite

import (
	"testing"

	"pbqprl/internal/ir"
)

func TestAllBenchmarksValid(t *testing.T) {
	benches := All()
	if len(benches) != 24 {
		t.Fatalf("suite has %d programs, want 24", len(benches))
	}
	for _, b := range benches {
		if err := b.Prog.Validate(); err != nil {
			t.Errorf("%s: %v", b.Prog.Name, err)
		}
		if len(b.Allowed) != len(b.Prog.Funcs) {
			t.Errorf("%s: allowed tables mismatch", b.Prog.Name)
		}
		for i, f := range b.Prog.Funcs {
			if len(b.Allowed[i]) != f.NumValues {
				t.Errorf("%s/%s: allowed covers %d of %d values", b.Prog.Name, f.Name, len(b.Allowed[i]), f.NumValues)
			}
		}
	}
}

func TestOscarAndFloatMMPresent(t *testing.T) {
	found := map[string]bool{}
	for _, n := range Names {
		found[n] = true
	}
	if !found["Oscar"] || !found["FloatMM"] {
		t.Error("paper outlier benchmarks missing")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := Generate("Oscar"), Generate("Oscar")
	if a.Prog.Funcs[0].String() != b.Prog.Funcs[0].String() {
		t.Error("generation not deterministic")
	}
	c := Generate("FloatMM")
	if a.Prog.Funcs[0].String() == c.Prog.Funcs[0].String() {
		t.Error("different benchmarks identical")
	}
}

func TestProgramsHaveLoopsAndBranches(t *testing.T) {
	loops, branches, moves := 0, 0, 0
	for _, b := range All() {
		for _, f := range b.Prog.Funcs {
			for _, blk := range f.Blocks {
				if blk.LoopDepth > 0 {
					loops++
				}
				if len(blk.Succs) == 2 {
					branches++
				}
				for _, in := range blk.Instrs {
					if in.Op == ir.OpMove {
						moves++
					}
				}
			}
		}
	}
	if loops == 0 || branches == 0 || moves == 0 {
		t.Errorf("suite lacks structure: loops=%d branches=%d moves=%d", loops, branches, moves)
	}
}

func TestSizesInRange(t *testing.T) {
	for _, b := range All() {
		total := 0
		for _, f := range b.Prog.Funcs {
			if f.NumValues < 20 {
				t.Errorf("%s/%s has only %d values", b.Prog.Name, f.Name, f.NumValues)
			}
			total += f.NumValues
		}
		if total > 2500 {
			t.Errorf("%s is implausibly large: %d values", b.Prog.Name, total)
		}
	}
}

func TestClassRestrictedMinority(t *testing.T) {
	restricted, total := 0, 0
	for _, b := range All() {
		for _, al := range b.Allowed {
			for _, a := range al {
				total++
				if a != nil {
					restricted++
				}
			}
		}
	}
	ratio := float64(restricted) / float64(total)
	if ratio < 0.1 || ratio > 0.35 {
		t.Errorf("restricted ratio %.2f, want near 0.2", ratio)
	}
}

// Package llvmsuite provides the synthetic stand-in for the 24 C/C++
// programs of llvm-test-suite used by the paper's Section V-C
// evaluation. Each named benchmark deterministically expands to a small
// ir.Program with structured control flow (nested loops and branches up
// to depth 3), a realistic opcode mix including coalescable moves, and
// register-class restrictions on a minority of values — the features
// that exercise a register allocator.
//
// Real llvm-test-suite sources require clang and LLVM; this generator
// produces IR with the same allocation-relevant structure so the
// allocator comparison (FAST/BASIC/GREEDY/PBQP/PBQP-RL) runs the same
// code paths. Program names follow the Stanford/McGill suites, including
// Oscar and FloatMM, the two cost-sum outliers discussed in the paper.
package llvmsuite

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"pbqprl/internal/ir"
)

// Names lists the 24 benchmark programs.
var Names = []string{
	"Bubblesort", "FloatMM", "IntMM", "Oscar", "Perm", "Puzzle",
	"Queens", "Quicksort", "RealMM", "Towers", "Treesort",
	"chomp", "misr", "exptree", "ackermann", "ary3", "fib2",
	"hash", "heapsort", "lists", "matrix", "nestedloop", "random", "sieve",
}

// Bench is one benchmark program with its per-function register-class
// restrictions (Allowed[f][v] = permitted registers of value v in
// function f; nil = any).
type Bench struct {
	Prog    *ir.Program
	Allowed [][][]int
}

// All generates every benchmark.
func All() []Bench {
	out := make([]Bench, 0, len(Names))
	for _, n := range Names {
		out = append(out, Generate(n))
	}
	return out
}

// Generate deterministically builds the named benchmark.
func Generate(name string) Bench {
	h := fnv.New64a()
	h.Write([]byte(name))
	rng := rand.New(rand.NewSource(int64(h.Sum64() % (1 << 62))))
	nfuncs := 1 + rng.Intn(2)
	prog := &ir.Program{Name: name}
	allowed := make([][][]int, 0, nfuncs)
	for i := 0; i < nfuncs; i++ {
		size := 50 + rng.Intn(90)
		f, al := genFunc(fmt.Sprintf("%s_f%d", name, i), rng, size)
		prog.Funcs = append(prog.Funcs, f)
		allowed = append(allowed, al)
	}
	return Bench{Prog: prog, Allowed: allowed}
}

// builder holds generation state for one function.
type builder struct {
	f    *ir.Func
	rng  *rand.Rand
	cur  int // current block index
	next ir.Value
}

func (b *builder) newBlock(depth int) int {
	idx := len(b.f.Blocks)
	b.f.Blocks = append(b.f.Blocks, &ir.Block{
		Name:      fmt.Sprintf("b%d", idx),
		LoopDepth: depth,
	})
	return idx
}

func (b *builder) block() *ir.Block { return b.f.Blocks[b.cur] }

func (b *builder) def() ir.Value {
	v := b.next
	b.next++
	return v
}

func (b *builder) pick(avail []ir.Value) ir.Value {
	return avail[b.rng.Intn(len(avail))]
}

// emitRun appends 3–8 straight-line instructions to the current block,
// extending avail with the new definitions (they dominate everything
// that follows in this scope).
func (b *builder) emitRun(avail *[]ir.Value) {
	n := 3 + b.rng.Intn(6)
	for i := 0; i < n; i++ {
		switch b.rng.Intn(10) {
		case 0, 1:
			v := b.def()
			b.block().Instrs = append(b.block().Instrs, ir.Instr{Op: ir.OpConst, Def: v})
			*avail = append(*avail, v)
		case 2, 3, 4:
			v := b.def()
			uses := []ir.Value{b.pick(*avail)}
			if b.rng.Intn(2) == 0 {
				uses = append(uses, b.pick(*avail))
			}
			b.block().Instrs = append(b.block().Instrs, ir.Instr{Op: ir.OpArith, Def: v, Uses: uses})
			*avail = append(*avail, v)
		case 5:
			v := b.def()
			b.block().Instrs = append(b.block().Instrs, ir.Instr{Op: ir.OpLoad, Def: v, Uses: []ir.Value{b.pick(*avail)}})
			*avail = append(*avail, v)
		case 6:
			b.block().Instrs = append(b.block().Instrs, ir.Instr{Op: ir.OpStore, Uses: []ir.Value{b.pick(*avail), b.pick(*avail)}})
		case 7:
			v := b.def()
			b.block().Instrs = append(b.block().Instrs, ir.Instr{Op: ir.OpMove, Def: v, Uses: []ir.Value{b.pick(*avail)}})
			*avail = append(*avail, v)
		case 8:
			v := b.def()
			b.block().Instrs = append(b.block().Instrs, ir.Instr{Op: ir.OpCmp, Def: v, Uses: []ir.Value{b.pick(*avail), b.pick(*avail)}})
			*avail = append(*avail, v)
		default:
			v := b.def()
			var uses []ir.Value
			for k := b.rng.Intn(3); k > 0; k-- {
				uses = append(uses, b.pick(*avail))
			}
			b.block().Instrs = append(b.block().Instrs, ir.Instr{Op: ir.OpCall, Def: v, Uses: uses})
			*avail = append(*avail, v)
		}
	}
}

// emitCond appends a compare and conditional branch to the current
// block, wiring succs later.
func (b *builder) emitCond(avail []ir.Value) {
	c := b.def()
	b.block().Instrs = append(b.block().Instrs,
		ir.Instr{Op: ir.OpCmp, Def: c, Uses: []ir.Value{b.pick(avail), b.pick(avail)}},
		ir.Instr{Op: ir.OpBranch, Uses: []ir.Value{c}})
}

// genScope emits `budget` constructs into the current scope. Values
// defined by straight-line runs join avail (they dominate the rest of
// the scope); values defined inside branches or loop bodies do not
// escape.
func (b *builder) genScope(avail []ir.Value, depth, budget int) {
	for i := 0; i < budget; i++ {
		switch {
		case depth < 3 && b.rng.Intn(4) == 0:
			b.genLoop(avail, depth)
		case b.rng.Intn(3) == 0:
			b.genIf(avail, depth)
		default:
			b.emitRun(&avail)
		}
	}
	b.emitRun(&avail)
}

// genIf builds if/else diamonds: cond in the current block, two arms,
// one join block that becomes current.
func (b *builder) genIf(avail []ir.Value, depth int) {
	b.emitCond(avail)
	condBlk := b.cur
	thenBlk := b.newBlock(depth)
	elseBlk := b.newBlock(depth)
	b.f.Blocks[condBlk].Succs = []int{thenBlk, elseBlk}

	b.cur = thenBlk
	armAvail := append([]ir.Value(nil), avail...)
	b.genArm(armAvail, depth)
	thenExit := b.cur

	b.cur = elseBlk
	armAvail = append([]ir.Value(nil), avail...)
	b.genArm(armAvail, depth)
	elseExit := b.cur

	join := b.newBlock(depth)
	b.f.Blocks[thenExit].Succs = append(b.f.Blocks[thenExit].Succs, join)
	b.f.Blocks[elseExit].Succs = append(b.f.Blocks[elseExit].Succs, join)
	b.cur = join
}

// genArm fills one branch arm with a run and, occasionally, a nested
// construct.
func (b *builder) genArm(avail []ir.Value, depth int) {
	b.emitRun(&avail)
	if depth < 3 && b.rng.Intn(3) == 0 {
		b.genLoop(avail, depth)
	}
}

// genLoop builds a while-style natural loop: a header with the exit
// condition, a body at depth+1 that loops back to the header, and an
// exit block that becomes current.
func (b *builder) genLoop(avail []ir.Value, depth int) {
	header := b.newBlock(depth + 1)
	b.f.Blocks[b.cur].Succs = append(b.f.Blocks[b.cur].Succs, header)
	b.cur = header
	headerAvail := append([]ir.Value(nil), avail...)
	b.emitRun(&headerAvail)
	b.emitCond(headerAvail)

	body := b.newBlock(depth + 1)
	exit := b.newBlock(depth)
	b.f.Blocks[header].Succs = []int{body, exit}

	b.cur = body
	bodyAvail := append([]ir.Value(nil), headerAvail...)
	b.emitRun(&bodyAvail)
	if depth+1 < 3 && b.rng.Intn(3) == 0 {
		b.genIf(bodyAvail, depth+1)
	}
	b.f.Blocks[b.cur].Succs = append(b.f.Blocks[b.cur].Succs, header)

	b.cur = exit
	// header definitions execute at least once before the exit branch,
	// so headerAvail values dominate the exit; keep avail unchanged to
	// stay conservative (and obviously correct).
}

// genFunc builds one function of roughly `size` instructions and its
// register-class restriction table.
func genFunc(name string, rng *rand.Rand, size int) (*ir.Func, [][]int) {
	b := &builder{f: &ir.Func{Name: name}, rng: rng}
	entry := b.newBlock(0)
	b.cur = entry
	nparams := 2 + rng.Intn(3)
	for i := 0; i < nparams; i++ {
		b.f.Params = append(b.f.Params, b.def())
	}
	avail := append([]ir.Value(nil), b.f.Params...)
	budget := size / 12
	if budget < 3 {
		budget = 3
	}
	b.genScope(avail, 0, budget)
	// return something that is definitely defined: a parameter
	b.block().Instrs = append(b.block().Instrs, ir.Instr{Op: ir.OpRet, Uses: []ir.Value{b.f.Params[0]}})
	b.f.NumValues = int(b.next)

	allowed := make([][]int, b.f.NumValues)
	for v := range allowed {
		if rng.Float64() < 0.2 {
			allowed[v] = []int{0, 1, 2, 3} // "byte class" restriction
		}
	}
	return b.f, allowed
}

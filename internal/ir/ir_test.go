package ir

import (
	"strings"
	"testing"
)

// diamond builds a valid if/else diamond function.
func diamond() *Func {
	return &Func{
		Name:      "diamond",
		NumValues: 6,
		Params:    []Value{0, 1},
		Blocks: []*Block{
			{Name: "entry", Succs: []int{1, 2}, Instrs: []Instr{
				{Op: OpCmp, Def: 2, Uses: []Value{0, 1}},
				{Op: OpBranch, Uses: []Value{2}},
			}},
			{Name: "then", Succs: []int{3}, Instrs: []Instr{
				{Op: OpArith, Def: 3, Uses: []Value{0}},
			}},
			{Name: "else", Succs: []int{3}, Instrs: []Instr{
				{Op: OpArith, Def: 4, Uses: []Value{1}},
			}},
			{Name: "join", Instrs: []Instr{
				{Op: OpMove, Def: 5, Uses: []Value{0}},
				{Op: OpRet, Uses: []Value{5}},
			}},
		},
	}
}

func TestValidateAcceptsDiamond(t *testing.T) {
	if err := diamond().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBranchOnlyDefinition(t *testing.T) {
	// v3 is defined only in the then-arm; using it at the join must fail
	f := diamond()
	f.Blocks[3].Instrs = append([]Instr{{Op: OpStore, Uses: []Value{3, 0}}}, f.Blocks[3].Instrs...)
	if err := f.Validate(); err == nil {
		t.Fatal("accepted a use of a conditionally defined value")
	}
}

func TestValidateRejectsBadSuccessor(t *testing.T) {
	f := diamond()
	f.Blocks[1].Succs = []int{9}
	if err := f.Validate(); err == nil {
		t.Fatal("accepted out-of-range successor")
	}
}

func TestValidateRejectsOutOfRangeValues(t *testing.T) {
	f := diamond()
	f.Blocks[1].Instrs = append(f.Blocks[1].Instrs, Instr{Op: OpArith, Def: 99, Uses: []Value{0}})
	if err := f.Validate(); err == nil {
		t.Fatal("accepted out-of-range def")
	}
	f = diamond()
	f.Blocks[1].Instrs = append(f.Blocks[1].Instrs, Instr{Op: OpStore, Uses: []Value{42, 0}})
	if err := f.Validate(); err == nil {
		t.Fatal("accepted out-of-range use")
	}
}

func TestValidateRejectsEmptyFunc(t *testing.T) {
	if err := (&Func{Name: "empty"}).Validate(); err == nil {
		t.Fatal("accepted function with no blocks")
	}
}

func TestValidateLoop(t *testing.T) {
	// while loop: entry -> header <-> body, header -> exit
	f := &Func{
		Name:      "loop",
		NumValues: 4,
		Params:    []Value{0},
		Blocks: []*Block{
			{Name: "entry", Succs: []int{1}, Instrs: []Instr{
				{Op: OpConst, Def: 1},
			}},
			{Name: "header", Succs: []int{2, 3}, LoopDepth: 1, Instrs: []Instr{
				{Op: OpCmp, Def: 2, Uses: []Value{0, 1}},
				{Op: OpBranch, Uses: []Value{2}},
			}},
			{Name: "body", Succs: []int{1}, LoopDepth: 1, Instrs: []Instr{
				{Op: OpArith, Def: 3, Uses: []Value{1, 0}},
				{Op: OpStore, Uses: []Value{3, 1}},
			}},
			{Name: "exit", Instrs: []Instr{
				{Op: OpRet, Uses: []Value{1}},
			}},
		},
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefValue(t *testing.T) {
	if (Instr{Op: OpStore, Uses: []Value{1, 2}}).DefValue() != -1 {
		t.Error("store should define nothing")
	}
	if (Instr{Op: OpBranch, Uses: []Value{1}}).DefValue() != -1 {
		t.Error("branch should define nothing")
	}
	if (Instr{Op: OpRet}).DefValue() != -1 {
		t.Error("ret should define nothing")
	}
	if (Instr{Op: OpArith, Def: 7}).DefValue() != 7 {
		t.Error("arith def lost")
	}
}

func TestStringListsBlocks(t *testing.T) {
	s := diamond().String()
	for _, want := range []string{"func diamond", "entry:", "then:", "join:", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q:\n%s", want, s)
		}
	}
}

func TestOpcodeStrings(t *testing.T) {
	ops := map[Opcode]string{
		OpConst: "const", OpArith: "arith", OpLoad: "load", OpStore: "store",
		OpMove: "mov", OpCmp: "cmp", OpBranch: "br", OpCall: "call", OpRet: "ret",
		Opcode(42): "op(42)",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	p := &Program{Name: "p", Funcs: []*Func{diamond()}}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Funcs = append(p.Funcs, &Func{Name: "bad"})
	if err := p.Validate(); err == nil {
		t.Fatal("accepted program with invalid function")
	}
}

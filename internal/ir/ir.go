// Package ir defines the small compiler intermediate representation the
// LLVM-style evaluation is built on: functions of basic blocks over
// virtual registers, with explicit control-flow successors and loop
// depths. It is deliberately minimal — just enough structure for
// liveness analysis, interference construction, spill-cost weighting and
// the four register allocators of internal/regalloc.
package ir

import (
	"fmt"
	"strings"
)

// Value is a virtual register id, dense in [0, Func.NumValues).
type Value int

// Opcode is an instruction kind.
type Opcode int

const (
	// OpConst defines a value from an immediate.
	OpConst Opcode = iota
	// OpArith defines a value from one or two operands.
	OpArith
	// OpLoad defines a value from memory through an address operand.
	OpLoad
	// OpStore writes an operand to memory through an address operand.
	OpStore
	// OpMove copies Uses[0] into Def (coalescing candidate).
	OpMove
	// OpCmp defines a flag-like value from two operands.
	OpCmp
	// OpBranch ends a block; with one use it is conditional.
	OpBranch
	// OpCall defines a value from arguments (clobbers nothing in this
	// model; calling conventions are out of scope).
	OpCall
	// OpRet ends the function, optionally using a value.
	OpRet
)

// String names the opcode.
func (o Opcode) String() string {
	switch o {
	case OpConst:
		return "const"
	case OpArith:
		return "arith"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpMove:
		return "mov"
	case OpCmp:
		return "cmp"
	case OpBranch:
		return "br"
	case OpCall:
		return "call"
	case OpRet:
		return "ret"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Instr is one instruction. The Def field is only meaningful for
// defining opcodes — use DefValue, which returns -1 for store, branch
// and return instructions regardless of the field.
type Instr struct {
	Op   Opcode
	Def  Value
	Uses []Value
}

// DefValue returns the value this instruction defines, or -1.
func (in Instr) DefValue() Value {
	switch in.Op {
	case OpConst, OpArith, OpLoad, OpMove, OpCmp, OpCall:
		return in.Def
	default:
		return -1
	}
}

// Block is a basic block.
type Block struct {
	Name string
	// Instrs execute in order; control transfers at the end.
	Instrs []Instr
	// Succs are indices into Func.Blocks.
	Succs []int
	// LoopDepth is the natural-loop nesting depth (0 = not in a loop);
	// spill costs scale by 10^LoopDepth, as LLVM's do.
	LoopDepth int
}

// Func is a function: Blocks[0] is the entry.
type Func struct {
	Name      string
	Blocks    []*Block
	NumValues int
	// Params are defined on entry to Blocks[0].
	Params []Value
}

// String renders a readable listing.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%d params, %d values)\n", f.Name, len(f.Params), f.NumValues)
	for i, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s: ; depth=%d succs=%v\n", blk.Name, blk.LoopDepth, blk.Succs)
		for _, in := range blk.Instrs {
			b.WriteString("\t")
			b.WriteString(in.Op.String())
			if in.DefValue() >= 0 {
				fmt.Fprintf(&b, " v%d =", in.DefValue())
			}
			for _, u := range in.Uses {
				fmt.Fprintf(&b, " v%d", u)
			}
			b.WriteByte('\n')
		}
		_ = i
	}
	return b.String()
}

// Validate checks structural invariants: successor indices in range,
// value ids in range, a non-empty entry block, and (conservatively)
// def-before-use along every path — verified via a simple forward
// "definitely defined" dataflow.
func (f *Func) Validate() error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: %s has no blocks", f.Name)
	}
	for bi, blk := range f.Blocks {
		for _, s := range blk.Succs {
			if s < 0 || s >= len(f.Blocks) {
				return fmt.Errorf("ir: %s block %d has bad successor %d", f.Name, bi, s)
			}
		}
		for ii, in := range blk.Instrs {
			if in.DefValue() >= Value(f.NumValues) {
				return fmt.Errorf("ir: %s block %d instr %d defines out-of-range v%d", f.Name, bi, ii, in.DefValue())
			}
			for _, u := range in.Uses {
				if u < 0 || u >= Value(f.NumValues) {
					return fmt.Errorf("ir: %s block %d instr %d uses out-of-range v%d", f.Name, bi, ii, u)
				}
			}
		}
	}
	// Forward must-define analysis: block-out sets start at ⊤ (nil,
	// optimistic — required for loop back edges) and shrink to the
	// greatest fixpoint; uses are checked only after convergence.
	defined := make([]map[Value]bool, len(f.Blocks))
	entry := make(map[Value]bool)
	for _, p := range f.Params {
		entry[p] = true
	}
	preds := make([][]int, len(f.Blocks))
	for bi, blk := range f.Blocks {
		for _, s := range blk.Succs {
			preds[s] = append(preds[s], bi)
		}
	}
	inSet := func(bi int) map[Value]bool {
		in := make(map[Value]bool)
		if bi == 0 {
			for v := range entry {
				in[v] = true
			}
			return in
		}
		first := true
		for _, p := range preds[bi] {
			if defined[p] == nil {
				continue // ⊤ contributes nothing to the intersection
			}
			if first {
				for v := range defined[p] {
					in[v] = true
				}
				first = false
			} else {
				for v := range in {
					if !defined[p][v] {
						delete(in, v)
					}
				}
			}
		}
		if first {
			return nil // every predecessor still ⊤
		}
		return in
	}
	changed := true
	for iter := 0; changed; iter++ {
		if iter > 4*len(f.Blocks)+8 {
			return fmt.Errorf("ir: %s definedness analysis did not converge", f.Name)
		}
		changed = false
		for bi, blk := range f.Blocks {
			in := inSet(bi)
			if in == nil && bi != 0 {
				continue // still ⊤
			}
			for _, instr := range blk.Instrs {
				if d := instr.DefValue(); d >= 0 {
					in[d] = true
				}
			}
			if defined[bi] == nil || !mapsEqual(defined[bi], in) {
				defined[bi] = in
				changed = true
			}
		}
	}
	for bi, blk := range f.Blocks {
		if bi != 0 && defined[bi] == nil {
			continue // unreachable
		}
		in := inSet(bi)
		if in == nil {
			in = make(map[Value]bool)
		}
		for ii, instr := range blk.Instrs {
			for _, u := range instr.Uses {
				if !in[u] {
					return fmt.Errorf("ir: %s block %d instr %d uses v%d before any definite definition", f.Name, bi, ii, u)
				}
			}
			if d := instr.DefValue(); d >= 0 {
				in[d] = true
			}
		}
	}
	return nil
}

func mapsEqual(a, b map[Value]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

// Program is a named collection of functions — one benchmark of the
// synthetic llvm-test-suite stand-in.
type Program struct {
	Name  string
	Funcs []*Func
}

// Validate validates every function.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		if err := f.Validate(); err != nil {
			return err
		}
	}
	return nil
}

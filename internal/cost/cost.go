// Package cost implements arithmetic over the extended reals R ∪ {+∞}
// used by PBQP cost vectors and matrices.
//
// PBQP costs are either finite non-negative reals or +∞ ("forbidden").
// Addition saturates at infinity, and comparisons treat +∞ as larger than
// every finite value. The package also provides dense Vector and Matrix
// types with the small set of operations PBQP solvers need: row/column
// extraction, pointwise addition, minima, and selection.
package cost

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Cost is a single PBQP cost entry: a finite float64 or +∞.
type Cost float64

// Inf is the infinite (forbidden) cost.
const Inf = Cost(math.MaxFloat64)

// infThreshold is the value above which a Cost is considered infinite.
// Saturating addition can produce values above Inf/2 without overflowing,
// and any such value is semantically "forbidden".
const infThreshold = Cost(math.MaxFloat64 / 4)

// IsInf reports whether c represents the infinite cost.
func (c Cost) IsInf() bool { return c >= infThreshold }

// IsZero reports whether c is the exact finite zero cost. Zero is the
// additive identity of the zero/infinity ATE regime — it is assigned,
// never accumulated through rounding — so the exact comparison is
// sound. Use it instead of a raw c == 0 outside this package.
func (c Cost) IsZero() bool { return !c.IsInf() && c == 0 }

// Add returns c + d, saturating at Inf if either operand is infinite.
func (c Cost) Add(d Cost) Cost {
	if c.IsInf() || d.IsInf() {
		return Inf
	}
	return c + d
}

// Less reports whether c is strictly smaller than d. All infinite values
// compare equal to each other and greater than any finite value.
func (c Cost) Less(d Cost) bool {
	if c.IsInf() {
		return false
	}
	if d.IsInf() {
		return true
	}
	return c < d
}

// Finite returns the float64 value of a finite cost; it panics on Inf.
func (c Cost) Finite() float64 {
	if c.IsInf() {
		//pbqpvet:ignore panicfree documented contract: Finite on Inf is a caller bug, there is no value to return
		panic("cost: Finite called on infinite cost")
	}
	return float64(c)
}

// String renders the cost, using "inf" for the infinite value.
func (c Cost) String() string {
	if c.IsInf() {
		return "inf"
	}
	return strconv.FormatFloat(float64(c), 'g', -1, 64)
}

// MarshalJSON renders a finite cost as a JSON number and the infinite
// cost as the string "inf" — JSON has no infinity literal, and emitting
// the raw MaxFloat64 sentinel would invite consumers to do arithmetic
// on it.
func (c Cost) MarshalJSON() ([]byte, error) {
	if c.IsInf() {
		return []byte(`"inf"`), nil
	}
	return json.Marshal(float64(c))
}

// UnmarshalJSON accepts what MarshalJSON emits plus the textual
// spellings Parse accepts ("inf", "infinity", ...). Finite numbers in
// the reserved infinite range are rejected, mirroring the text parser:
// they are almost certainly corrupted data, and the explicit spelling
// exists.
func (c *Cost) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := Parse(s)
		if err != nil {
			return err
		}
		*c = v
		return nil
	}
	var f float64
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("cost: %q is not a valid PBQP cost", data)
	}
	v, err := fromFloat(f)
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// fromFloat validates a numeric literal the way Parse validates a
// textual one.
func fromFloat(f float64) (Cost, error) {
	if math.IsNaN(f) || math.IsInf(f, -1) || f <= -float64(infThreshold) {
		return 0, fmt.Errorf("cost: %v is not a valid PBQP cost", f)
	}
	if math.IsInf(f, 1) {
		return Inf, nil
	}
	if Cost(f).IsInf() {
		return 0, fmt.Errorf("cost: finite value %v is in the reserved infinite range; use \"inf\"", f)
	}
	return Cost(f), nil
}

// Parse parses a cost from its textual form. "inf" (case-insensitive)
// denotes the infinite cost.
func Parse(s string) (Cost, error) {
	if strings.EqualFold(strings.TrimSpace(s), "inf") {
		return Inf, nil
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("cost: parse %q: %w", s, err)
	}
	if math.IsInf(f, 1) {
		return Inf, nil
	}
	if math.IsNaN(f) || math.IsInf(f, -1) {
		return 0, fmt.Errorf("cost: parse %q: not a valid PBQP cost", s)
	}
	return Cost(f), nil
}

// Vector is a dense PBQP cost vector (one entry per selectable color).
type Vector []Cost

// NewVector returns a zero vector of length m.
func NewVector(m int) Vector { return make(Vector, m) }

// NewInfVector returns a vector of length m with every entry infinite.
func NewInfVector(m int) Vector {
	v := make(Vector, m)
	for i := range v {
		v[i] = Inf
	}
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// AddInPlace adds w to v elementwise, saturating at infinity.
// It panics if the lengths differ.
func (v Vector) AddInPlace(w Vector) {
	if len(v) != len(w) {
		//pbqpvet:ignore panicfree shape mismatch is a caller bug, like the slice bounds panic it mirrors
		panic("cost: vector length mismatch")
	}
	for i := range v {
		v[i] = v[i].Add(w[i])
	}
}

// Min returns the smallest finite entry and its index, resolving ties to
// the lowest index. If the vector is empty or every entry is infinite it
// returns (Inf, -1).
func (v Vector) Min() (Cost, int) {
	best, idx := Inf, -1
	for i, c := range v {
		if c.IsInf() {
			continue
		}
		if idx == -1 || c.Less(best) {
			best, idx = c, i
		}
	}
	return best, idx
}

// Liberty returns the number of finite (selectable) entries.
func (v Vector) Liberty() int {
	n := 0
	for _, c := range v {
		if !c.IsInf() {
			n++
		}
	}
	return n
}

// AllInf reports whether every entry of v is infinite (a dead end).
func (v Vector) AllInf() bool { return v.Liberty() == 0 }

// Equal reports whether v and w are identical entrywise, with all infinite
// representations comparing equal.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].IsInf() != w[i].IsInf() {
			return false
		}
		if !v[i].IsInf() && v[i] != w[i] {
			return false
		}
	}
	return true
}

// String renders the vector as "[a b c]".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, c := range v {
		parts[i] = c.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Matrix is a dense rows×cols PBQP cost matrix stored row-major.
type Matrix struct {
	Rows, Cols int
	Data       []Cost
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]Cost, rows*cols)}
}

// NewMatrixFrom builds a matrix from a row-major slice of rows.
// It panics if the rows are ragged.
func NewMatrixFrom(rows [][]Cost) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			//pbqpvet:ignore panicfree ragged literal is a caller bug in test/fixture construction code
			panic("cost: ragged matrix rows")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// At returns the (i, j) entry.
func (m *Matrix) At(i, j int) Cost { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Matrix) Set(i, j int, c Cost) { m.Data[i*m.Cols+j] = c }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	v := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// AddInPlace adds o to m elementwise, saturating at infinity.
// It panics on shape mismatch.
func (m *Matrix) AddInPlace(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		//pbqpvet:ignore panicfree shape mismatch is a caller bug, like the slice bounds panic it mirrors
		panic("cost: matrix shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] = m.Data[i].Add(o.Data[i])
	}
}

// IsZero reports whether every entry of m is (finitely) zero. A PBQP edge
// with an all-zero matrix is semantically absent.
func (m *Matrix) IsZero() bool {
	for _, c := range m.Data {
		if c != 0 {
			return false
		}
	}
	return true
}

// Equal reports entrywise equality (all infinities compare equal).
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	return Vector(m.Data).Equal(Vector(o.Data))
}

// String renders the matrix one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).String())
	}
	return b.String()
}

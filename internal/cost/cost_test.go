package cost

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestJSONRoundTrip pins the JSON encoding: finite costs are numbers,
// infinity is the string "inf", and decoding inverts encoding exactly.
func TestJSONRoundTrip(t *testing.T) {
	for _, c := range []Cost{0, 1, 0.30000000000000004, 1e307, -0.25, Inf} {
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal %v: %v", c, err)
		}
		var back Cost
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != c && !(back.IsInf() && c.IsInf()) {
			t.Fatalf("round trip %v → %s → %v", c, data, back)
		}
	}
	if data, _ := json.Marshal(Inf); string(data) != `"inf"` {
		t.Fatalf("Inf marshals as %s, want \"inf\"", data)
	}
}

// TestJSONRejectsHostileValues mirrors the text parser's hardening.
func TestJSONRejectsHostileValues(t *testing.T) {
	for _, in := range []string{`"NaN"`, `"-inf"`, `1e308`, `-1e308`, `"zebra"`, `{}`, `[1]`} {
		var c Cost
		if err := json.Unmarshal([]byte(in), &c); err == nil {
			t.Fatalf("UnmarshalJSON accepted %s as %v", in, c)
		}
	}
	// Explicit spellings keep working through the JSON path too.
	for _, in := range []string{`"inf"`, `"INF"`, `"infinity"`, `"+inf"`} {
		var c Cost
		if err := json.Unmarshal([]byte(in), &c); err != nil || !c.IsInf() {
			t.Fatalf("UnmarshalJSON(%s) = %v, %v; want Inf", in, c, err)
		}
	}
}

func TestInfPredicates(t *testing.T) {
	if !Inf.IsInf() {
		t.Fatal("Inf.IsInf() = false")
	}
	if Cost(0).IsInf() {
		t.Fatal("0 reported infinite")
	}
	if Cost(1e100).IsInf() {
		t.Fatal("1e100 should be finite")
	}
	if !Inf.Add(Inf).IsInf() {
		t.Fatal("saturated sum not infinite")
	}
}

func TestAddSaturates(t *testing.T) {
	cases := []struct {
		a, b Cost
		inf  bool
		want Cost
	}{
		{0, 0, false, 0},
		{1, 2, false, 3},
		{Inf, 1, true, 0},
		{1, Inf, true, 0},
		{Inf, Inf, true, 0},
	}
	for _, c := range cases {
		got := c.a.Add(c.b)
		if got.IsInf() != c.inf {
			t.Errorf("%v.Add(%v): inf = %v, want %v", c.a, c.b, got.IsInf(), c.inf)
		}
		if !c.inf && got != c.want {
			t.Errorf("%v.Add(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLess(t *testing.T) {
	if !Cost(1).Less(Cost(2)) {
		t.Error("1 < 2 failed")
	}
	if Cost(2).Less(Cost(1)) {
		t.Error("2 < 1 succeeded")
	}
	if Inf.Less(Cost(1)) {
		t.Error("Inf < 1 succeeded")
	}
	if !Cost(1).Less(Inf) {
		t.Error("1 < Inf failed")
	}
	if Inf.Less(Inf) {
		t.Error("Inf < Inf succeeded")
	}
}

func TestFinitePanicsOnInf(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Finite on Inf did not panic")
		}
	}()
	_ = Inf.Finite()
}

func TestParseAndString(t *testing.T) {
	for _, s := range []string{"inf", "Inf", "INF", " inf "} {
		c, err := Parse(s)
		if err != nil || !c.IsInf() {
			t.Errorf("Parse(%q) = %v, %v; want Inf", s, c, err)
		}
	}
	c, err := Parse("3.5")
	if err != nil || c != 3.5 {
		t.Errorf("Parse(3.5) = %v, %v", c, err)
	}
	if _, err := Parse("NaN"); err == nil {
		t.Error("Parse(NaN) succeeded")
	}
	if _, err := Parse("-Inf"); err == nil {
		t.Error("Parse(-Inf) succeeded")
	}
	if _, err := Parse("bogus"); err == nil {
		t.Error("Parse(bogus) succeeded")
	}
	if got := Inf.String(); got != "inf" {
		t.Errorf("Inf.String() = %q", got)
	}
	if got := Cost(2).String(); got != "2" {
		t.Errorf("Cost(2).String() = %q", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		x = math.Abs(x)
		if math.IsNaN(x) || math.IsInf(x, 0) || Cost(x).IsInf() {
			return true
		}
		c, err := Parse(Cost(x).String())
		return err == nil && c == Cost(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorMin(t *testing.T) {
	v := Vector{Inf, 3, 1, 1, Inf}
	c, i := v.Min()
	if c != 1 || i != 2 {
		t.Errorf("Min = (%v, %d), want (1, 2)", c, i)
	}
	if _, i := (Vector{Inf, Inf}).Min(); i != -1 {
		t.Errorf("all-inf Min index = %d, want -1", i)
	}
	if _, i := (Vector{}).Min(); i != -1 {
		t.Errorf("empty Min index = %d, want -1", i)
	}
}

func TestVectorLibertyAndAllInf(t *testing.T) {
	v := Vector{Inf, 0, 2, Inf}
	if got := v.Liberty(); got != 2 {
		t.Errorf("Liberty = %d, want 2", got)
	}
	if v.AllInf() {
		t.Error("AllInf true for mixed vector")
	}
	if !NewInfVector(3).AllInf() {
		t.Error("AllInf false for inf vector")
	}
	if NewVector(3).AllInf() {
		t.Error("AllInf true for zero vector")
	}
}

func TestVectorAddInPlace(t *testing.T) {
	v := Vector{1, 2, Inf}
	v.AddInPlace(Vector{10, Inf, 0})
	if v[0] != 11 || !v[1].IsInf() || !v[2].IsInf() {
		t.Errorf("AddInPlace = %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	v.AddInPlace(Vector{1})
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original")
	}
}

func TestVectorEqual(t *testing.T) {
	a := Vector{1, Inf}
	b := Vector{1, Inf + 0} // same semantics
	if !a.Equal(b) {
		t.Error("equal vectors reported unequal")
	}
	if a.Equal(Vector{1}) {
		t.Error("different lengths reported equal")
	}
	if a.Equal(Vector{2, Inf}) {
		t.Error("different values reported equal")
	}
	if a.Equal(Vector{1, 0}) {
		t.Error("inf vs finite reported equal")
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Error("At/Set mismatch")
	}
	if got := m.Row(1); got[2] != 7 {
		t.Errorf("Row = %v", got)
	}
	if got := m.Col(2); got[1] != 7 || got[0] != 0 {
		t.Errorf("Col = %v", got)
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 7 {
		t.Errorf("Transpose wrong: %v", tr)
	}
}

func TestMatrixFromAndEqual(t *testing.T) {
	m := NewMatrixFrom([][]Cost{{1, 2}, {3, Inf}})
	if m.At(1, 1) != Inf || m.At(0, 1) != 2 {
		t.Errorf("NewMatrixFrom wrong: %v", m)
	}
	if !m.Equal(m.Clone()) {
		t.Error("clone not equal")
	}
	other := m.Clone()
	other.Set(0, 0, 9)
	if m.Equal(other) {
		t.Error("different matrices equal")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	NewMatrixFrom([][]Cost{{1}, {1, 2}})
}

func TestMatrixAddInPlaceAndZero(t *testing.T) {
	m := NewMatrixFrom([][]Cost{{0, 1}, {2, 3}})
	m.AddInPlace(NewMatrixFrom([][]Cost{{0, Inf}, {1, 1}}))
	if m.At(0, 0) != 0 || !m.At(0, 1).IsInf() || m.At(1, 0) != 3 {
		t.Errorf("AddInPlace = %v", m)
	}
	if m.IsZero() {
		t.Error("nonzero matrix reported zero")
	}
	if !NewMatrix(2, 2).IsZero() {
		t.Error("zero matrix not reported zero")
	}
}

// Property: Add is commutative and associative over random costs
// (including infinities), and Inf is absorbing.
func TestAddAlgebraProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randCost := func() Cost {
		if rng.Intn(4) == 0 {
			return Inf
		}
		return Cost(rng.Float64() * 100)
	}
	for i := 0; i < 1000; i++ {
		a, b, c := randCost(), randCost(), randCost()
		ab, ba := a.Add(b), b.Add(a)
		if ab.IsInf() != ba.IsInf() || (!ab.IsInf() && ab != ba) {
			t.Fatalf("Add not commutative: %v %v", a, b)
		}
		l, r := a.Add(b).Add(c), a.Add(b.Add(c))
		if l.IsInf() != r.IsInf() || (!l.IsInf() && math.Abs(float64(l-r)) > 1e-9) {
			t.Fatalf("Add not associative: %v %v %v", a, b, c)
		}
		if !a.Add(Inf).IsInf() {
			t.Fatalf("Inf not absorbing for %v", a)
		}
	}
}

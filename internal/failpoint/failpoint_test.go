package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoOp(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Hit("never/armed"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
	if Active("never/armed") {
		t.Fatal("unarmed point reports active")
	}
}

func TestErrorAction(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("a/b", "error"); err != nil {
		t.Fatal(err)
	}
	err := Hit("a/b")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	if got := Hits("a/b"); got != 1 {
		t.Fatalf("Hits = %d, want 1", got)
	}
	Disable("a/b")
	if err := Hit("a/b"); err != nil {
		t.Fatalf("Hit after Disable = %v", err)
	}
}

func TestPanicAction(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("boom", "panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic action did not panic")
		}
	}()
	Hit("boom")
}

func TestDelayAction(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("slow", "delay(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Hit("slow"); err != nil {
		t.Fatalf("delay Hit = %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay Hit returned after %v, want >= 30ms", d)
	}
}

func TestHitBudgetDisarmsItself(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("flaky", "error*2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Hit("flaky"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d = %v, want ErrInjected", i, err)
		}
	}
	if err := Hit("flaky"); err != nil {
		t.Fatalf("hit past budget = %v, want nil", err)
	}
	if Active("flaky") {
		t.Fatal("exhausted point still armed")
	}
	if got := Hits("flaky"); got != 2 {
		t.Fatalf("Hits = %d, want 2", got)
	}
}

func TestEnableSpec(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := EnableSpec("a=error; b=delay(1ms),c=panic*1"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		if !Active(name) {
			t.Fatalf("point %q not armed by spec", name)
		}
	}
}

func TestBadSpecs(t *testing.T) {
	t.Cleanup(DisableAll)
	for _, spec := range []string{"a", "a=", "a=explode", "a=delay(ms)", "a=error*0", "a=error*x"} {
		if err := EnableSpec(spec); err == nil {
			t.Errorf("EnableSpec(%q) accepted", spec)
		}
	}
}

func TestReenableReplacesBudget(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("p", "error*1"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("p", "delay(0s)"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("p"); err != nil {
		t.Fatalf("replaced action Hit = %v, want nil (delay)", err)
	}
	if !Active("p") {
		t.Fatal("unlimited-budget point disarmed itself")
	}
}

// Package failpoint makes fault injection a first-class testing tool:
// code under test calls Hit at the places where the real world can go
// wrong (a write that tears, a network call that times out, a worker
// that dies), and tests — or an operator via the environment — arm
// those named points with an action. Disarmed points cost one atomic
// load, so production call sites stay effectively free.
//
// Actions:
//
//	error      Hit returns an error wrapping ErrInjected
//	panic      Hit panics
//	delay(D)   Hit sleeps for the Go duration D, then returns nil
//
// An action may carry a hit budget: "error*2" fires on the first two
// Hit calls, then the point disarms itself — the shape of a transient
// failure that a retry loop should survive.
//
// Points are armed programmatically (Enable, EnableSpec) or from the
// PBQPFAIL environment variable at process start, so chaos tests can
// inject faults into child processes they cannot reach with a function
// call:
//
//	PBQPFAIL='dist/worker/episode=delay(300ms);checkpoint/torn-write=error' ./pbqp-train ...
//
// Spec grammar: name=action pairs separated by ';' (or ','). Names are
// slash-separated paths by convention, e.g. "checkpoint/torn-write".
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every error returned by an error-action
// failpoint; test assertions use errors.Is against it.
var ErrInjected = errors.New("failpoint: injected failure")

type action int

const (
	actError action = iota
	actPanic
	actDelay
)

type point struct {
	act   action
	delay time.Duration
	// remaining is the hit budget; < 0 means unlimited.
	remaining int
}

var (
	// armed counts enabled points; Hit's fast path is a single load of
	// it, so call sites in disarmed processes pay no lock.
	armed atomic.Int32

	mu     sync.Mutex
	points = map[string]*point{}
	hits   = map[string]int{}
)

func init() {
	if spec := os.Getenv("PBQPFAIL"); spec != "" {
		if err := EnableSpec(spec); err != nil {
			// Arming happens before any work is at risk; a malformed
			// spec means the chaos run would silently test nothing, so
			// fail the process loudly.
			panic("failpoint: $PBQPFAIL: " + err.Error())
		}
	}
}

// Enable arms the named point with an action ("error", "panic",
// "delay(D)", optionally suffixed "*N" for a hit budget). Re-enabling
// replaces the previous action and budget.
func Enable(name, spec string) error {
	p, err := parseAction(spec)
	if err != nil {
		return fmt.Errorf("failpoint %s: %w", name, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = p
	return nil
}

// Disable disarms the named point; disarming an unarmed point is a
// no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// DisableAll disarms every point and clears the hit counts; tests call
// it in cleanup so armed points never leak across test cases.
func DisableAll() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = map[string]*point{}
	hits = map[string]int{}
}

// EnableSpec arms every name=action pair in spec (the PBQPFAIL
// grammar).
func EnableSpec(spec string) error {
	for _, part := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, act, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return fmt.Errorf("failpoint: %q is not name=action", part)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(act)); err != nil {
			return err
		}
	}
	return nil
}

// Active reports whether the named point is currently armed.
func Active(name string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := points[name]
	return ok
}

// Hits returns how many times the named point has fired since the last
// DisableAll; tests use it to assert an injection actually happened.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	return hits[name]
}

// Hit fires the named point if it is armed: an error action returns a
// non-nil error, a panic action panics, a delay action sleeps and
// returns nil. Disarmed (the overwhelmingly common case) it returns
// nil after one atomic load.
func Hit(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	hits[name]++
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			delete(points, name)
			armed.Add(-1)
		}
	}
	act, delay := p.act, p.delay
	mu.Unlock()
	switch act {
	case actPanic:
		//pbqpvet:ignore panicfree panicking is this failpoint action's documented contract; it only fires when a test armed the point
		panic("failpoint: injected panic at " + name)
	case actDelay:
		time.Sleep(delay)
	}
	if act == actError {
		return fmt.Errorf("%w at %s", ErrInjected, name)
	}
	return nil
}

// parseAction parses "error", "panic", "delay(D)", each optionally
// suffixed with "*N".
func parseAction(spec string) (*point, error) {
	p := &point{remaining: -1}
	if base, budget, ok := strings.Cut(spec, "*"); ok {
		n, err := strconv.Atoi(budget)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad hit budget %q (want a positive integer)", budget)
		}
		p.remaining = n
		spec = base
	}
	switch {
	case spec == "error":
		p.act = actError
	case spec == "panic":
		p.act = actPanic
	case strings.HasPrefix(spec, "delay(") && strings.HasSuffix(spec, ")"):
		d, err := time.ParseDuration(spec[len("delay(") : len(spec)-1])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad delay %q (want delay(50ms))", spec)
		}
		p.act, p.delay = actDelay, d
	default:
		return nil, fmt.Errorf("unknown action %q (want error, panic, or delay(D), optionally *N)", spec)
	}
	return p, nil
}

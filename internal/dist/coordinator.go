package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"pbqprl/internal/selfplay"
	"pbqprl/internal/server"
	"pbqprl/internal/server/metrics"
)

// CoordinatorConfig tunes a Coordinator. Zero values take the listed
// defaults.
type CoordinatorConfig struct {
	// Spec pins the training run; its fingerprint gates claims.
	Spec Spec
	// LeaseEpisodes is the number of episodes per lease (default 4).
	// Smaller leases spread better and lose less work to a crash;
	// larger ones amortize the network-transfer overhead.
	LeaseEpisodes int
	// LeaseTTL is how long a claimed lease survives without a
	// heartbeat before it is reassigned (default 10s). Workers
	// heartbeat at a third of this.
	LeaseTTL time.Duration
	// Workers is the HTTP handler pool size (default 8) and
	// QueueDepth its bounded queue (default 64); claims beyond both
	// are shed with 429 + Retry-After, same as the solve service.
	Workers    int
	QueueDepth int
	// RetryAfter is the floor of the adaptive Retry-After hint
	// (default 1s).
	RetryAfter time.Duration
	// Logf receives progress and anomaly logs; nil discards them.
	Logf func(format string, args ...any)
	// Registry receives the coordinator's metrics. Nil creates one.
	Registry *metrics.Registry
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseEpisodes <= 0 {
		c.LeaseEpisodes = 4
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Registry == nil {
		c.Registry = metrics.NewRegistry()
	}
	return c
}

// now is the coordinator's only wall-clock read point, for lease TTL
// arithmetic.
func now() time.Time {
	//pbqpvet:ignore determinism lease TTLs are scheduling state; expiry timing never reaches episode results or trained bytes
	return time.Now()
}

// Lease states. available → claimed on claim; claimed → available on
// TTL expiry (epoch bumped, work reassigned); claimed → done on a
// valid complete. done is terminal for the batch.
const (
	leaseAvailable = iota
	leaseClaimed
	leaseDone
)

// lease is one seed-range unit of work inside the current batch.
type lease struct {
	id    string
	epoch int64
	start int // episode index of seeds[0] within the iteration
	seeds []int64
	state int
	// holder is the worker name of the current claimant (diagnostic).
	holder  string
	expires time.Time
	// results is len(seeds) long once state == leaseDone.
	results []selfplay.EpisodeResult
}

// batchState is the in-flight EpisodeBatch being handed out.
type batchState struct {
	iteration int
	leases    []*lease
	curNet    []byte
	bestNet   []byte
}

// Coordinator hands out episode leases over HTTP and merges the
// results back into trainer order. One Coordinator serves one training
// run; RunEpisodes is its selfplay.EpisodeBackend.
type Coordinator struct {
	cfg CoordinatorConfig
	fp  string
	adm *server.Admission
	reg *metrics.Registry
	mux *http.ServeMux

	mu    sync.Mutex
	batch *batchState // nil between iterations
	epoch int64       // global epoch counter; bumped on claim and expiry
	// progress wakes RunEpisodes' wait loop after any lease state
	// change. Buffered 1: a signal is never lost, never blocks.
	progress chan struct{}
}

// NewCoordinator builds the coordinator and its HTTP handler.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:      cfg,
		fp:       cfg.Spec.Fingerprint(),
		adm:      server.NewAdmission(cfg.Workers, cfg.QueueDepth),
		reg:      cfg.Registry,
		mux:      http.NewServeMux(),
		progress: make(chan struct{}, 1),
	}
	for _, m := range []string{
		"leases_granted_total", "leases_completed_total",
		"leases_expired_total", "lease_results_discarded_total",
		"heartbeats_total", "heartbeats_rejected_total",
		"requests_shed_total",
	} {
		c.reg.Counter(m)
	}
	c.mux.HandleFunc("/v1/lease/claim", c.admitted(c.handleClaim))
	c.mux.HandleFunc("/v1/lease/heartbeat", c.admitted(c.handleHeartbeat))
	c.mux.HandleFunc("/v1/lease/complete", c.admitted(c.handleComplete))
	c.mux.HandleFunc("/metrics", c.handleMetrics)
	c.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	c.mux.HandleFunc("/readyz", c.handleReadyz)
	return c
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Registry returns the coordinator's metrics registry.
func (c *Coordinator) Registry() *metrics.Registry { return c.reg }

// Fingerprint returns the spec fingerprint workers must present.
func (c *Coordinator) Fingerprint() string { return c.fp }

// Drain stops admitting lease requests and waits for in-flight
// handlers to finish (or ctx to expire). Call before HTTP shutdown.
func (c *Coordinator) Drain(ctx context.Context) error { return c.adm.Drain(ctx) }

// signal wakes the RunEpisodes wait loop; safe under mu or not.
func (c *Coordinator) signal() {
	select {
	case c.progress <- struct{}{}:
	default:
	}
}

// RunEpisodes is the selfplay.EpisodeBackend: it chunks the batch into
// leases, serves them to workers until every lease is done (merging in
// episode order), and on ctx cancellation returns the contiguous
// done-prefix so the trainer commits exactly what a sequential run
// would have before the same cut.
func (c *Coordinator) RunEpisodes(ctx context.Context, batch selfplay.EpisodeBatch) ([]selfplay.EpisodeResult, error) {
	cur, err := batch.Cur.SaveBytes()
	if err != nil {
		return nil, fmt.Errorf("dist: freeze current network: %w", err)
	}
	best, err := batch.Best.SaveBytes()
	if err != nil {
		return nil, fmt.Errorf("dist: freeze best network: %w", err)
	}

	bs := &batchState{iteration: batch.Iteration, curNet: cur, bestNet: best}
	for off := 0; off < len(batch.Seeds); off += c.cfg.LeaseEpisodes {
		end := min(off+c.cfg.LeaseEpisodes, len(batch.Seeds))
		bs.leases = append(bs.leases, &lease{
			id:    fmt.Sprintf("i%d-e%d", batch.Iteration, batch.Start+off),
			start: batch.Start + off,
			seeds: batch.Seeds[off:end],
			state: leaseAvailable,
		})
	}

	c.mu.Lock()
	if c.batch != nil {
		c.mu.Unlock()
		return nil, errors.New("dist: a batch is already in flight")
	}
	c.batch = bs
	c.mu.Unlock()
	c.cfg.Logf("dist: iteration %d: %d episodes in %d leases", batch.Iteration+1, len(batch.Seeds), len(bs.leases))

	// Sweep for expired leases at a fraction of the TTL so a dead
	// worker's lease is reassigned promptly.
	sweep := time.NewTicker(maxDur(c.cfg.LeaseTTL/4, 10*time.Millisecond))
	defer sweep.Stop()

	for {
		c.mu.Lock()
		done := 0
		for _, l := range bs.leases {
			if l.state == leaseDone {
				done++
			}
		}
		if done == len(bs.leases) {
			results := c.collectLocked(bs, len(batch.Seeds))
			c.batch = nil
			c.mu.Unlock()
			return results, nil
		}
		c.mu.Unlock()

		select {
		case <-ctx.Done():
			c.mu.Lock()
			// Only the contiguous done-prefix is returned: the trainer
			// commits it and rewinds its RNG over the rest, exactly as
			// the in-process pool does on cancellation.
			results := c.collectLocked(bs, c.donePrefixLocked(bs))
			c.batch = nil
			c.mu.Unlock()
			return results, ctx.Err()
		case <-c.progress:
		case <-sweep.C:
			c.expireStale()
		}
	}
}

// collectLocked flattens the first n episode results in order. Caller
// holds mu; every lease covering [0, n) must be done.
func (c *Coordinator) collectLocked(bs *batchState, n int) []selfplay.EpisodeResult {
	results := make([]selfplay.EpisodeResult, 0, n)
	for _, l := range bs.leases {
		for i := range l.seeds {
			if len(results) == n {
				return results
			}
			results = append(results, l.results[i])
		}
	}
	return results
}

// donePrefixLocked returns the episode count of the contiguous done
// prefix: leases are in episode order, so it is the seed count of the
// leading run of done leases.
func (c *Coordinator) donePrefixLocked(bs *batchState) int {
	n := 0
	for _, l := range bs.leases {
		if l.state != leaseDone {
			break
		}
		n += len(l.seeds)
	}
	return n
}

// expireStale reassigns claimed leases whose TTL lapsed (takes mu
// itself). The epoch bump is what invalidates the dead holder: its
// heartbeats and results now answer 409.
func (c *Coordinator) expireStale() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.batch == nil {
		return
	}
	now := now()
	for _, l := range c.batch.leases {
		if l.state == leaseClaimed && now.After(l.expires) {
			c.cfg.Logf("dist: lease %s (epoch %d, holder %s) expired; reassigning", l.id, l.epoch, l.holder)
			c.epoch++
			l.epoch = c.epoch
			l.state = leaseAvailable
			l.holder = ""
			c.reg.Counter("leases_expired_total").Inc()
		}
	}
}

// admitted wraps a lease handler with the solve service's admission
// control: bounded handler concurrency, load shedding with an adaptive
// Retry-After under claim storms, and a drain barrier for shutdown.
func (c *Coordinator) admitted(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		j := server.NewJob(func() { h(w, r) })
		if err := c.adm.Submit(j); err != nil {
			hint := server.RetryAfterHint(c.cfg.RetryAfter, c.adm.Depth(), c.cfg.Workers)
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(hint.Seconds()+0.5)))
			c.reg.Counter("requests_shed_total").Inc()
			if errors.Is(err, server.ErrQueueFull) {
				writeError(w, http.StatusTooManyRequests, "coordinator busy; retry after backoff")
			} else {
				writeError(w, http.StatusServiceUnavailable, "coordinator draining")
			}
			return
		}
		<-j.Done()
		if panicked, val, _ := j.Panicked(); panicked {
			writeError(w, http.StatusInternalServerError, "handler panicked: "+val)
		}
	}
}

// handleClaim grants the first available lease: 200 with the lease, or
// 204 + Retry-After when there is no work right now (between
// iterations, or everything claimed).
func (c *Coordinator) handleClaim(w http.ResponseWriter, r *http.Request) {
	var req claimRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad claim body: "+err.Error())
		return
	}
	if req.Fingerprint != c.fp {
		writeError(w, http.StatusConflict, fmt.Sprintf(
			"spec fingerprint mismatch: coordinator has %q, worker sent %q", c.fp, req.Fingerprint))
		return
	}

	c.mu.Lock()
	var grant *lease
	var bs *batchState
	if c.batch != nil {
		for _, l := range c.batch.leases {
			if l.state == leaseAvailable {
				grant, bs = l, c.batch
				c.epoch++
				l.epoch = c.epoch
				l.state = leaseClaimed
				l.holder = req.Worker
				l.expires = now().Add(c.cfg.LeaseTTL)
				break
			}
		}
	}
	c.mu.Unlock()

	if grant == nil {
		hint := server.RetryAfterHint(c.cfg.RetryAfter, 0, c.cfg.Workers)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(hint.Seconds()+0.5)))
		w.WriteHeader(http.StatusNoContent)
		return
	}
	c.reg.Counter("leases_granted_total").Inc()
	c.cfg.Logf("dist: lease %s (epoch %d, %d episodes) -> %s", grant.id, grant.epoch, len(grant.seeds), req.Worker)
	writeJSON(w, http.StatusOK, wireLease{
		ID:        grant.id,
		Epoch:     grant.epoch,
		Iteration: bs.iteration,
		Start:     grant.start,
		Seeds:     grant.seeds,
		TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		CurNet:    bs.curNet,
		BestNet:   bs.bestNet,
	})
}

// handleHeartbeat extends a claimed lease's TTL; a stale epoch (the
// lease expired and was reassigned, or the batch moved on) gets 409 so
// the old holder abandons the work.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat body: "+err.Error())
		return
	}
	c.reg.Counter("heartbeats_total").Inc()

	c.mu.Lock()
	l := c.findLocked(req.ID)
	ok := l != nil && l.state == leaseClaimed && l.epoch == req.Epoch
	if ok {
		l.expires = now().Add(c.cfg.LeaseTTL)
	}
	c.mu.Unlock()

	if !ok {
		c.reg.Counter("heartbeats_rejected_total").Inc()
		writeError(w, http.StatusConflict, "stale lease: expired, reassigned, or unknown")
		return
	}
	w.WriteHeader(http.StatusOK)
}

// handleComplete commits a lease's results. The validity check runs
// twice — before the (possibly large) sample decode without holding
// the decode under mu, and again before the commit — so a lease that
// expires mid-decode is still discarded by its stale epoch.
func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad complete body: "+err.Error())
		return
	}

	c.mu.Lock()
	l := c.findLocked(req.ID)
	valid := l != nil && l.state == leaseClaimed && l.epoch == req.Epoch
	want := 0
	if valid {
		want = len(l.seeds)
	}
	c.mu.Unlock()
	if !valid {
		c.reg.Counter("lease_results_discarded_total").Inc()
		writeError(w, http.StatusConflict, "stale lease: results discarded")
		return
	}
	if len(req.Episodes) != want {
		// A malformed payload from a confused worker: reject it and
		// put the lease back up for grabs under a fresh epoch.
		c.reassign(req.ID)
		writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"lease %s: %d episodes submitted, lease covers %d; lease reassigned", req.ID, len(req.Episodes), want))
		return
	}

	results := make([]selfplay.EpisodeResult, len(req.Episodes))
	for i, ep := range req.Episodes {
		if ep.Skip != "" {
			results[i] = selfplay.EpisodeResult{Err: errors.New(ep.Skip)}
			continue
		}
		samples, err := selfplay.DecodeSamples(ep.Samples)
		if err != nil {
			c.reassign(req.ID)
			writeError(w, http.StatusBadRequest, fmt.Sprintf(
				"lease %s episode %d: %v; lease reassigned", req.ID, i, err))
			return
		}
		results[i] = selfplay.EpisodeResult{Z: ep.Z, Samples: samples}
	}

	c.mu.Lock()
	l = c.findLocked(req.ID)
	// Re-check: the lease may have expired and been reassigned (or the
	// batch torn down) while we were decoding.
	if l == nil || l.state != leaseClaimed || l.epoch != req.Epoch {
		c.mu.Unlock()
		c.reg.Counter("lease_results_discarded_total").Inc()
		writeError(w, http.StatusConflict, "lease reassigned during submission: results discarded")
		return
	}
	l.state = leaseDone
	l.results = results
	c.mu.Unlock()
	c.reg.Counter("leases_completed_total").Inc()
	c.signal()
	w.WriteHeader(http.StatusOK)
}

// reassign puts a claimed lease back to available under a fresh epoch.
func (c *Coordinator) reassign(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if l := c.findLocked(id); l != nil && l.state == leaseClaimed {
		c.epoch++
		l.epoch = c.epoch
		l.state = leaseAvailable
		l.holder = ""
	}
}

// findLocked returns the lease with the given id in the current batch,
// or nil. Caller holds mu.
func (c *Coordinator) findLocked(id string) *lease {
	if c.batch == nil {
		return nil
	}
	for _, l := range c.batch.leases {
		if l.id == id {
			return l
		}
	}
	return nil
}

// handleMetrics serves the registry snapshot with lease gauges sampled
// at scrape time.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	var avail, claimed, done int64
	if c.batch != nil {
		for _, l := range c.batch.leases {
			switch l.state {
			case leaseAvailable:
				avail++
			case leaseClaimed:
				claimed++
			case leaseDone:
				done++
			}
		}
	}
	c.mu.Unlock()
	c.reg.Gauge("leases_available").Set(avail)
	c.reg.Gauge("leases_claimed").Set(claimed)
	c.reg.Gauge("leases_done").Set(done)
	c.reg.ServeHTTP(w, r)
}

// handleReadyz is 200 while accepting lease traffic, 503 once
// draining.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if c.adm.IsDraining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

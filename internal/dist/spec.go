// Package dist distributes the episode phase of self-play training
// across processes without giving up bit-identical results.
//
// A Coordinator owns the trainer and hands out episode seed-range
// leases over HTTP; Workers claim leases, play the episodes on their
// own copies of the frozen networks, and stream the trajectories back.
// Leases carry a TTL refreshed by worker heartbeats: when a worker
// dies mid-lease the TTL lapses, the lease's epoch is bumped, and the
// work is handed to the next claimant. A late result from the dead
// worker's epoch is detected by the stale epoch and discarded, so a
// SIGKILLed worker can never double-commit an episode.
//
// Determinism: every episode's randomness comes from a seed the
// trainer pre-draws in episode order, and the coordinator only merges
// results as a contiguous in-order prefix (selfplay.EpisodeBackend's
// contract). Which worker plays an episode, in what order, or how many
// times it is replayed after a crash therefore never reaches the
// trained networks — a distributed run is byte-identical to -workers 1.
package dist

import (
	"fmt"
	"math/rand"

	"pbqprl/internal/game"
	"pbqprl/internal/net"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
	"pbqprl/internal/selfplay"
)

// Spec pins everything that shapes an episode's outcome: the training
// distribution, the search depth, the seed, and the network
// architecture. Coordinator and workers must agree on it exactly —
// the fingerprint handshake rejects a worker built from a different
// spec before it can poison the run. Scheduling knobs (worker counts,
// lease sizes, TTLs) are deliberately excluded: they may differ per
// process without affecting results.
type Spec struct {
	// Episodes per iteration (selfplay.Config.EpisodesPerIter).
	Episodes int
	// KTrain is the MCTS simulation count per move.
	KTrain int
	// Regime selects the training distribution: "ate" (zero/infinity
	// graphs, decreasing-liberty order) or "er" (Erdős–Rényi with 1%
	// infinities, fixed order).
	Regime string
	// MeanN is the mean graph size of the distribution.
	MeanN float64
	// Seed is the master training seed.
	Seed int64
	// Net is the network architecture.
	Net net.Config
}

// Fingerprint is the canonical one-line rendering of the spec used in
// the claim handshake. Two processes with equal fingerprints play
// bit-identical episodes for equal seeds.
func (s Spec) Fingerprint() string {
	return fmt.Sprintf("pbqp-dist-v1 regime=%s episodes=%d ktrain=%d mean-n=%g seed=%d net=m%d,g%d,h%d,b%d,s%d",
		s.Regime, s.Episodes, s.KTrain, s.MeanN, s.Seed,
		s.Net.M, s.Net.GCNLayers, s.Net.Hidden, s.Net.Blocks, s.Net.Seed)
}

// SelfplayConfig builds the selfplay.Config both sides derive their
// episode behavior from: the coordinator feeds it to the trainer, a
// worker feeds it to selfplay.RunEpisode. Deriving both from one Spec
// is what makes the fingerprint handshake sufficient for determinism.
func (s Spec) SelfplayConfig() (selfplay.Config, error) {
	cfg := selfplay.Config{
		EpisodesPerIter: s.Episodes,
		KTrain:          s.KTrain,
		Seed:            s.Seed,
	}
	meanN := s.MeanN
	switch s.Regime {
	case "ate":
		cfg.Order = game.OrderDecLiberty
		cfg.Generate = func(rng *rand.Rand) *pbqp.Graph {
			n := randgraph.NormalN(rng, meanN, meanN/4, 10)
			g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
				N: n, M: 13, PEdge: 0.25, HardRatio: 0.4, PEdgeInf: 0.3,
			})
			return g
		}
	case "er":
		cfg.Order = game.OrderFixed
		cfg.Generate = func(rng *rand.Rand) *pbqp.Graph {
			n := randgraph.NormalN(rng, meanN, meanN/4, 10)
			return randgraph.ErdosRenyi(rng, randgraph.Config{
				N: n, M: 13, PEdge: 0.15, PInf: 0.01, MaxCost: 40,
			})
		}
	default:
		return selfplay.Config{}, fmt.Errorf("dist: unknown regime %q (want ate or er)", s.Regime)
	}
	return cfg, nil
}

package dist

// Wire types for the coordinator's lease API. Bodies are JSON; sample
// payloads inside them are the gob frames of selfplay.EncodeSamples,
// which encoding/json transports as base64.

// claimRequest asks for a lease. Fingerprint must match the
// coordinator's spec exactly; a mismatched worker is rejected with 409
// before it can contribute episodes from the wrong distribution.
type claimRequest struct {
	Worker      string `json:"worker"`
	Fingerprint string `json:"fingerprint"`
}

// wireLease is a granted lease: the episode seed range, the frozen
// networks to play it with, and the heartbeat deadline.
type wireLease struct {
	ID        string  `json:"id"`
	Epoch     int64   `json:"epoch"`
	Iteration int     `json:"iteration"`
	Start     int     `json:"start"`
	Seeds     []int64 `json:"seeds"`
	TTLMillis int64   `json:"ttl_millis"`
	CurNet    []byte  `json:"cur_net"`
	BestNet   []byte  `json:"best_net"`
}

// heartbeatRequest extends a claimed lease's TTL. Epoch must match the
// value granted with the lease; after an expiry reassignment the old
// holder's heartbeats answer 409 so it stops wasting work.
type heartbeatRequest struct {
	ID    string `json:"id"`
	Epoch int64  `json:"epoch"`
}

// wireEpisode is one played episode: the reward, the encoded training
// samples, and — when the episode panicked on the worker — the skip
// reason (the trainer counts it as skipped, same as in-process).
type wireEpisode struct {
	Z       float64 `json:"z"`
	Samples []byte  `json:"samples,omitempty"`
	Skip    string  `json:"skip,omitempty"`
}

// completeRequest submits a lease's results, one wireEpisode per seed
// in order. A stale epoch gets 409 and the payload is discarded.
type completeRequest struct {
	ID       string        `json:"id"`
	Epoch    int64         `json:"epoch"`
	Episodes []wireEpisode `json:"episodes"`
}

// errorResponse is the JSON error body for non-2xx lease responses.
type errorResponse struct {
	Error string `json:"error"`
}

package dist

import (
	"bytes"
	"context"
	"log"
	"net/http/httptest"
	"os"
	"os/exec"
	"testing"
	"time"
)

// TestMain doubles as the worker entry point for the cross-process
// chaos test: re-executing the test binary with PBQP_DIST_WORKER=1
// runs a real lease worker against PBQP_DIST_COORD instead of the test
// suite — the standard helper-process pattern, so the SIGKILL in
// TestWorkerSIGKILLBitIdentical lands on a genuinely separate process.
func TestMain(m *testing.M) {
	if os.Getenv("PBQP_DIST_WORKER") == "1" {
		workerMain()
		return
	}
	os.Exit(m.Run())
}

func workerMain() {
	log.SetPrefix("dist-worker: ")
	w, err := NewWorker(WorkerConfig{
		Coordinator: os.Getenv("PBQP_DIST_COORD"),
		Spec:        chaosSpec(),
		BackoffBase: 10 * time.Millisecond,
		Logf:        log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Runs until the parent kills the process; there is deliberately
	// no graceful path — the whole point is dying without one.
	if err := w.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
}

// chaosSpec must be identical in parent and child; both compile it
// from this function, and the fingerprint handshake double-checks.
func chaosSpec() Spec {
	return testSpec(59)
}

// TestWorkerSIGKILLBitIdentical is the headline robustness pin: a real
// worker process is SIGKILLed while it provably holds a lease (a
// failpoint delays its episodes so the kill always lands mid-lease),
// the lease expires and is reassigned to a second process, and the
// resulting trainer state is byte-identical to a sequential run — a
// hard crash costs wall-clock time, never correctness.
func TestWorkerSIGKILLBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	spec := chaosSpec()

	seq := newTrainer(t, spec, nil)
	if _, err := seq.RunIteration(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := encodeBytes(t, seq)

	coord := NewCoordinator(CoordinatorConfig{
		Spec:          spec,
		LeaseEpisodes: 2,
		LeaseTTL:      300 * time.Millisecond,
		Logf:          t.Logf,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	spawn := func(name string, extraEnv ...string) *exec.Cmd {
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(),
			"PBQP_DIST_WORKER=1",
			"PBQP_DIST_COORD="+srv.URL,
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("spawn %s: %v", name, err)
		}
		t.Logf("spawned %s (pid %d)", name, cmd.Process.Pid)
		return cmd
	}

	// The victim's episodes are slowed by a failpoint so the SIGKILL
	// reliably lands while it holds a claimed, incomplete lease.
	victim := spawn("victim", "PBQPFAIL=dist/worker/episode=delay(200ms)")
	defer victim.Process.Kill()

	trainDone := make(chan error, 1)
	dist := newTrainer(t, spec, coord.RunEpisodes)
	go func() {
		_, err := dist.RunIteration(context.Background())
		trainDone <- err
	}()

	// Kill the victim as soon as it holds an unfinished lease.
	reg := coord.Registry()
	deadline := time.Now().Add(30 * time.Second)
	for {
		granted := reg.Counter("leases_granted_total").Value()
		completed := reg.Counter("leases_completed_total").Value()
		if granted > completed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never claimed a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := victim.Process.Kill(); err != nil { // SIGKILL: no cleanup, no complete, no heartbeat
		t.Fatal(err)
	}
	victim.Wait()
	t.Log("victim killed mid-lease")

	// A healthy worker picks up the pieces, including the expired
	// lease, and the iteration finishes.
	healthy := spawn("healthy")
	defer func() {
		healthy.Process.Kill()
		healthy.Wait()
	}()

	select {
	case err := <-trainDone:
		if err != nil {
			t.Fatalf("distributed iteration: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("distributed iteration never finished after worker kill")
	}

	if expired := reg.Counter("leases_expired_total").Value(); expired < 1 {
		t.Fatalf("leases_expired_total = %d, want >= 1 (the victim's lease must have been reassigned)", expired)
	}
	got := encodeBytes(t, dist)
	if !bytes.Equal(got, want) {
		t.Fatalf("state after SIGKILL + reassignment diverged from sequential: %d vs %d bytes", len(got), len(want))
	}
	t.Logf("bit-identical after SIGKILL: %d state bytes, %d leases expired",
		len(got), reg.Counter("leases_expired_total").Value())
}

package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"time"

	"pbqprl/internal/failpoint"
	"pbqprl/internal/net"
	"pbqprl/internal/selfplay"
)

// WorkerConfig tunes a lease worker. Zero values take the listed
// defaults.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://127.0.0.1:8090".
	Coordinator string
	// Name identifies the worker in coordinator logs (default
	// hostname-pid).
	Name string
	// Spec must match the coordinator's; episodes from a mismatched
	// spec would silently corrupt training, so the claim handshake
	// compares fingerprints and a mismatch is a permanent error.
	Spec Spec
	// HTTPClient defaults to a fresh client with no global timeout
	// (heartbeats keep long solves alive; per-call contexts bound the
	// rest).
	HTTPClient *http.Client
	// BackoffBase and BackoffMax bound the jittered exponential
	// backoff after transport errors (defaults 100ms and 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed feeds the backoff jitter — NOT episode randomness, which
	// comes exclusively from coordinator-issued lease seeds (default:
	// pid so concurrent workers desynchronize).
	Seed int64
	// Logf receives progress logs; nil discards them.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		c.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = int64(os.Getpid())
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Worker claims leases from a coordinator, plays them, and streams the
// trajectories back, heartbeating while it works. It is deliberately
// stateless across leases: everything that matters is on the
// coordinator, so a worker may be SIGKILLed at any instant without
// affecting the trained networks.
type Worker struct {
	cfg WorkerConfig
	fp  string
	sp  selfplay.Config
	rng *rand.Rand
}

// NewWorker validates the spec and builds a worker.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	if cfg.Coordinator == "" {
		return nil, errors.New("dist: worker needs a coordinator URL")
	}
	sp, err := cfg.Spec.SelfplayConfig()
	if err != nil {
		return nil, err
	}
	return &Worker{
		cfg: cfg,
		fp:  cfg.Spec.Fingerprint(),
		sp:  sp,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}, nil
}

// errFatal marks claim-loop errors that retrying cannot fix.
var errFatal = errors.New("dist: permanent worker error")

// Run claims and plays leases until ctx is canceled. Transport errors
// back off exponentially with jitter; 204/429/503 honor the
// coordinator's Retry-After; a fingerprint mismatch is permanent and
// returns an error. A canceled ctx returns nil.
func (w *Worker) Run(ctx context.Context) error {
	backoff := w.cfg.BackoffBase
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, wait, err := w.claim(ctx)
		switch {
		case errors.Is(err, errFatal):
			return err
		case err != nil:
			// Transport-level failure: jittered exponential backoff so
			// a restarting coordinator is not met by a thundering herd.
			d := w.jitter(backoff)
			w.cfg.Logf("dist: claim failed (%v); backing off %v", err, d)
			if !sleepCtx(ctx, d) {
				return nil
			}
			backoff = minDur(backoff*2, w.cfg.BackoffMax)
			continue
		case lease == nil:
			// No work right now (204) or shed (429/503): the
			// coordinator told us when to come back.
			if !sleepCtx(ctx, wait) {
				return nil
			}
			continue
		}
		backoff = w.cfg.BackoffBase
		if err := w.play(ctx, lease); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			w.cfg.Logf("dist: lease %s abandoned: %v", lease.ID, err)
		}
	}
}

// claim asks for a lease. Returns (lease, 0, nil) on a grant,
// (nil, wait, nil) when there is no work yet, and an error otherwise
// (wrapped errFatal when retrying cannot help).
func (w *Worker) claim(ctx context.Context) (*wireLease, time.Duration, error) {
	if err := failpoint.Hit("dist/worker/claim"); err != nil {
		return nil, 0, err
	}
	resp, err := w.post(ctx, "/v1/lease/claim", claimRequest{Worker: w.cfg.Name, Fingerprint: w.fp})
	if err != nil {
		return nil, 0, err
	}
	defer drainClose(resp)
	switch resp.StatusCode {
	case http.StatusOK:
		var lease wireLease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			return nil, 0, fmt.Errorf("bad lease body: %w", err)
		}
		return &lease, 0, nil
	case http.StatusNoContent, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return nil, w.retryAfter(resp), nil
	case http.StatusConflict:
		return nil, 0, fmt.Errorf("%w: %s", errFatal, readError(resp))
	default:
		return nil, 0, fmt.Errorf("claim: unexpected status %d: %s", resp.StatusCode, readError(resp))
	}
}

// play runs one lease: restore the frozen networks, heartbeat in the
// background, play the episodes in seed order, submit the results.
func (w *Worker) play(ctx context.Context, lease *wireLease) error {
	cur := net.New(w.cfg.Spec.Net)
	if err := cur.LoadBytes(lease.CurNet); err != nil {
		return fmt.Errorf("restore current network: %w", err)
	}
	best := net.New(w.cfg.Spec.Net)
	if err := best.LoadBytes(lease.BestNet); err != nil {
		return fmt.Errorf("restore best network: %w", err)
	}

	// leaseCtx is canceled when a heartbeat answers 409: the lease was
	// reassigned and finishing it would be wasted work.
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeat(leaseCtx, lease, cancel)
	}()
	defer func() { cancel(); <-hbDone }()

	w.cfg.Logf("dist: playing lease %s (epoch %d, episodes %d-%d)",
		lease.ID, lease.Epoch, lease.Start, lease.Start+len(lease.Seeds)-1)
	episodes := make([]wireEpisode, 0, len(lease.Seeds))
	for _, seed := range lease.Seeds {
		if err := leaseCtx.Err(); err != nil {
			return err
		}
		// Chaos hook: delay actions here slow a worker mid-lease so
		// tests can SIGKILL it with work provably in flight.
		_ = failpoint.Hit("dist/worker/episode")
		res := selfplay.RunEpisode(w.sp, cur, best, seed)
		if res.Err != nil {
			episodes = append(episodes, wireEpisode{Skip: res.Err.Error()})
			continue
		}
		data, err := selfplay.EncodeSamples(res.Samples)
		if err != nil {
			return fmt.Errorf("encode episode samples: %w", err)
		}
		episodes = append(episodes, wireEpisode{Z: res.Z, Samples: data})
	}
	return w.complete(ctx, lease, episodes)
}

// heartbeat extends the lease at a third of its TTL until ctx fires,
// canceling the lease work when the coordinator says the lease is
// stale. Transport errors are tolerated: the TTL absorbs a few missed
// beats, and if the coordinator is really gone the claim loop finds
// out soon enough.
func (w *Worker) heartbeat(ctx context.Context, lease *wireLease, cancel context.CancelFunc) {
	interval := time.Duration(lease.TTLMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		resp, err := w.post(ctx, "/v1/lease/heartbeat", heartbeatRequest{ID: lease.ID, Epoch: lease.Epoch})
		if err != nil {
			w.cfg.Logf("dist: heartbeat %s failed: %v", lease.ID, err)
			continue
		}
		code := resp.StatusCode
		drainClose(resp)
		if code == http.StatusConflict {
			w.cfg.Logf("dist: lease %s is stale; abandoning", lease.ID)
			cancel()
			return
		}
	}
}

// complete submits the lease results, retrying transport errors with
// backoff. 409 means the lease was reassigned while we played it — the
// coordinator discarded the results, nothing to do. 400 means the
// coordinator rejected the payload; retrying identical bytes cannot
// help.
func (w *Worker) complete(ctx context.Context, lease *wireLease, episodes []wireEpisode) error {
	backoff := w.cfg.BackoffBase
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var err error
		if err = failpoint.Hit("dist/worker/complete"); err == nil {
			var resp *http.Response
			resp, err = w.post(ctx, "/v1/lease/complete", completeRequest{ID: lease.ID, Epoch: lease.Epoch, Episodes: episodes})
			if err == nil {
				code, msg := resp.StatusCode, ""
				if resp.StatusCode != http.StatusOK {
					msg = readError(resp)
				}
				drainClose(resp)
				switch code {
				case http.StatusOK:
					w.cfg.Logf("dist: lease %s complete", lease.ID)
					return nil
				case http.StatusConflict:
					w.cfg.Logf("dist: lease %s results discarded as stale", lease.ID)
					return nil
				case http.StatusBadRequest:
					return fmt.Errorf("complete rejected: %s", msg)
				default:
					err = fmt.Errorf("complete: unexpected status %d: %s", code, msg)
				}
			}
		}
		d := w.jitter(backoff)
		w.cfg.Logf("dist: complete %s failed (%v); retrying in %v", lease.ID, err, d)
		if !sleepCtx(ctx, d) {
			return ctx.Err()
		}
		backoff = minDur(backoff*2, w.cfg.BackoffMax)
	}
}

// post sends v as JSON to the coordinator path.
func (w *Worker) post(ctx context.Context, path string, v any) (*http.Response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.cfg.HTTPClient.Do(req)
}

// retryAfter reads the Retry-After hint (seconds), defaulting to the
// worker's base backoff when absent or malformed.
func (w *Worker) retryAfter(resp *http.Response) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return w.cfg.BackoffBase
}

// jitter spreads d over [d/2, 3d/2) so synchronized workers
// desynchronize instead of hammering the coordinator in lockstep.
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(w.rng.Int63n(int64(d)))
}

// sleepCtx sleeps for d, reporting false if ctx fired first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// readError extracts the error message from a non-2xx response body.
func readError(resp *http.Response) string {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var e errorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	return string(data)
}

// drainClose discards the rest of the body and closes it so the
// transport can reuse the connection.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pbqprl/internal/failpoint"
	"pbqprl/internal/net"
	"pbqprl/internal/selfplay"
)

// testSpec is laptop-scale: tiny graphs, shallow search. The regime
// fixes M=13, so the net must match.
func testSpec(seed int64) Spec {
	return Spec{
		Episodes: 6,
		KTrain:   2,
		Regime:   "er",
		MeanN:    10,
		Seed:     seed,
		Net:      net.Config{M: 13, GCNLayers: 1, Hidden: 8, Blocks: 1, Seed: 7},
	}
}

func newTrainer(t *testing.T, spec Spec, backend selfplay.EpisodeBackend) *selfplay.Trainer {
	t.Helper()
	cfg, err := spec.SelfplayConfig()
	if err != nil {
		t.Fatal(err)
	}
	cfg.ArenaGames = 4
	cfg.ArenaWins = 2
	cfg.Episodes = backend
	tr, err := selfplay.NewTrainer(net.New(spec.Net), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func encodeBytes(t *testing.T, tr *selfplay.Trainer) []byte {
	t.Helper()
	b, err := tr.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestSpecFingerprint(t *testing.T) {
	a, b := testSpec(41), testSpec(41)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("equal specs, different fingerprints:\n%s\n%s", a.Fingerprint(), b.Fingerprint())
	}
	b.KTrain++
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different specs share a fingerprint")
	}
	if _, err := (Spec{Regime: "zebra"}).SelfplayConfig(); err == nil || !strings.Contains(err.Error(), "zebra") {
		t.Fatalf("bad regime error = %v", err)
	}
}

// TestEpochStaleResultsDiscarded proves the epoch mechanism at the
// HTTP layer: a lease claimed, expired, and reclaimed carries a new
// epoch, and the original holder's late results — poisoned so that
// acceptance would be visible — answer 409 and never reach the
// trainer. A duplicate submission of the accepted result is likewise
// discarded.
func TestEpochStaleResultsDiscarded(t *testing.T) {
	spec := testSpec(43)
	coord := NewCoordinator(CoordinatorConfig{
		Spec:          spec,
		LeaseEpisodes: 2,
		LeaseTTL:      80 * time.Millisecond,
		Logf:          t.Logf,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// Drive RunEpisodes with a two-seed batch so a single lease covers
	// everything.
	cur, best := net.New(spec.Net), net.New(spec.Net)
	batch := selfplay.EpisodeBatch{Iteration: 0, Start: 0, Seeds: []int64{101, 102}, Cur: cur, Best: best}
	type backendOut struct {
		results []selfplay.EpisodeResult
		err     error
	}
	outc := make(chan backendOut, 1)
	go func() {
		results, err := coord.RunEpisodes(context.Background(), batch)
		outc <- backendOut{results, err}
	}()

	// A mismatched fingerprint is rejected before any lease moves.
	resp := postJSON(t, srv.URL+"/v1/lease/claim", claimRequest{Worker: "intruder", Fingerprint: "bogus"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("bogus fingerprint claim: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	// Claim the lease, then let it expire unheartbeaten.
	claim := func() (*wireLease, int) {
		resp := postJSON(t, srv.URL+"/v1/lease/claim", claimRequest{Worker: "w", Fingerprint: spec.Fingerprint()})
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, resp.StatusCode
		}
		var l wireLease
		if err := json.NewDecoder(resp.Body).Decode(&l); err != nil {
			t.Fatal(err)
		}
		return &l, resp.StatusCode
	}
	first, code := claim()
	if first == nil {
		t.Fatalf("first claim: status %d", code)
	}

	// The expiry sweep runs inside RunEpisodes; poll until the lease is
	// reclaimable under a bumped epoch.
	var second *wireLease
	deadline := time.Now().Add(10 * time.Second)
	for second == nil {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
		second, _ = claim()
	}
	if second.ID != first.ID || second.Epoch <= first.Epoch {
		t.Fatalf("reclaim: id %s epoch %d, want same id %s with epoch > %d", second.ID, second.Epoch, first.ID, first.Epoch)
	}
	if got := coord.Registry().Counter("leases_expired_total").Value(); got < 1 {
		t.Fatalf("leases_expired_total = %d, want >= 1", got)
	}

	// The dead holder's heartbeat and poisoned results are both stale.
	resp = postJSON(t, srv.URL+"/v1/lease/heartbeat", heartbeatRequest{ID: first.ID, Epoch: first.Epoch})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale heartbeat: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	poisoned := completeRequest{ID: first.ID, Epoch: first.Epoch, Episodes: []wireEpisode{
		{Z: 999, Skip: "poisoned"}, {Z: 999, Skip: "poisoned"},
	}}
	resp = postJSON(t, srv.URL+"/v1/lease/complete", poisoned)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale complete: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()
	if got := coord.Registry().Counter("lease_results_discarded_total").Value(); got < 1 {
		t.Fatalf("lease_results_discarded_total = %d, want >= 1", got)
	}

	// The live holder heartbeats and submits real episodes.
	resp = postJSON(t, srv.URL+"/v1/lease/heartbeat", heartbeatRequest{ID: second.ID, Epoch: second.Epoch})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live heartbeat: %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	cfg, err := spec.SelfplayConfig()
	if err != nil {
		t.Fatal(err)
	}
	var episodes []wireEpisode
	for _, seed := range second.Seeds {
		res := selfplay.RunEpisode(cfg, cur, best, seed)
		if res.Err != nil {
			t.Fatalf("episode seed %d: %v", seed, res.Err)
		}
		data, err := selfplay.EncodeSamples(res.Samples)
		if err != nil {
			t.Fatal(err)
		}
		episodes = append(episodes, wireEpisode{Z: res.Z, Samples: data})
	}
	good := completeRequest{ID: second.ID, Epoch: second.Epoch, Episodes: episodes}
	resp = postJSON(t, srv.URL+"/v1/lease/complete", good)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid complete: %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// A duplicate of the accepted submission is stale too: the lease
	// is done, its epoch retired.
	resp = postJSON(t, srv.URL+"/v1/lease/complete", good)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate complete: %d, want 409", resp.StatusCode)
	}
	resp.Body.Close()

	out := <-outc
	if out.err != nil {
		t.Fatalf("RunEpisodes: %v", out.err)
	}
	if len(out.results) != 2 {
		t.Fatalf("RunEpisodes returned %d results, want 2", len(out.results))
	}
	for i, r := range out.results {
		if r.Err != nil || r.Z == 999 {
			t.Fatalf("result %d carries poisoned data: %+v", i, r)
		}
	}
}

// TestDistributedTrainingBitIdentical runs two iterations through the
// coordinator with two concurrent in-process workers — with transient
// complete failures injected — and asserts the full trainer state is
// byte-identical to a sequential run.
func TestDistributedTrainingBitIdentical(t *testing.T) {
	spec := testSpec(47)

	seq := newTrainer(t, spec, nil)
	for i := 0; i < 2; i++ {
		if _, err := seq.RunIteration(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	want := encodeBytes(t, seq)

	coord := NewCoordinator(CoordinatorConfig{
		Spec:          spec,
		LeaseEpisodes: 2,
		LeaseTTL:      2 * time.Second,
		Logf:          t.Logf,
	})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	// The first two complete calls fail at the transport layer; the
	// worker's retry loop must recover without duplicating results.
	if err := failpoint.Enable("dist/worker/complete", "error*2"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("dist/worker/complete")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	workerDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator: srv.URL,
			Name:        "w" + string(rune('1'+i)),
			Spec:        spec,
			BackoffBase: 5 * time.Millisecond,
			Seed:        int64(i + 1),
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		go func() { workerDone <- w.Run(ctx) }()
	}

	dist := newTrainer(t, spec, coord.RunEpisodes)
	for i := 0; i < 2; i++ {
		if _, err := dist.RunIteration(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	got := encodeBytes(t, dist)

	cancel()
	for i := 0; i < 2; i++ {
		if err := <-workerDone; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}

	if !bytes.Equal(got, want) {
		t.Fatalf("distributed state diverged from sequential: %d vs %d bytes", len(got), len(want))
	}
	if hits := failpoint.Hits("dist/worker/complete"); hits != 2 {
		t.Fatalf("complete failpoint hit %d times, want 2", hits)
	}
	if c := coord.Registry().Counter("leases_completed_total").Value(); c < 6 {
		t.Fatalf("leases_completed_total = %d, want >= 6", c)
	}
}

// TestWorkerFingerprintMismatchIsPermanent pins that a worker built
// from a different spec exits with an error instead of retrying
// forever against a coordinator that will never accept it.
func TestWorkerFingerprintMismatchIsPermanent(t *testing.T) {
	coord := NewCoordinator(CoordinatorConfig{Spec: testSpec(53), Logf: t.Logf})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	other := testSpec(53)
	other.KTrain++ // different spec, different fingerprint
	w, err := NewWorker(WorkerConfig{Coordinator: srv.URL, Spec: other, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := w.Run(ctx); err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("mismatched worker: %v, want permanent fingerprint error", err)
	}
}

package game

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pbqprl/internal/cost"
	"pbqprl/internal/randgraph"
)

// Property: CompareCosts is antisymmetric — swapping the operands
// negates the reward.
func TestCompareCostsAntisymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		x, y := cost.Cost(a), cost.Cost(b)
		return CompareCosts(x, y) == -CompareCosts(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if CompareCosts(cost.Inf, 3) != -CompareCosts(3, cost.Inf) {
		t.Error("antisymmetry broken for infinity")
	}
}

// Property: for any legal play sequence, the accumulated cost equals
// the Equation-1 cost of the selection on the original graph — and the
// eager dead-end flag agrees with a from-scratch scan of the suffix.
func TestPlayInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		g, _ := randgraph.ZeroInf(rng, randgraph.ZeroInfConfig{
			N: 4 + rng.Intn(12), M: 3 + rng.Intn(4), PEdge: 0.4, HardRatio: 0.4, PEdgeInf: 0.3,
		})
		order := MakeOrder(g, OrderRandom, rng)
		st := New(g, order)
		for !st.Done() && !st.DeadEnd() {
			var legal []int
			for a := 0; a < st.M(); a++ {
				if st.Legal(a) {
					legal = append(legal, a)
				}
			}
			st.Play(legal[rng.Intn(len(legal))])
			// recompute deadness from scratch
			fresh := false
			for i := st.Turn(); i < st.N(); i++ {
				if st.vecs[i].AllInf() {
					fresh = true
					break
				}
			}
			if fresh != st.DeadEnd() {
				t.Fatalf("trial %d: dead-end flag %v, scan %v", trial, st.DeadEnd(), fresh)
			}
		}
		if st.Done() {
			sel := st.Selection(g.NumVertices())
			if got := g.TotalCost(sel); got.IsInf() != st.Acc().IsInf() ||
				(!got.IsInf() && got != st.Acc()) {
				t.Fatalf("trial %d: acc %v, Equation 1 %v", trial, st.Acc(), got)
			}
		}
	}
}

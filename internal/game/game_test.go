package game

import (
	"math/rand"
	"testing"

	"pbqprl/internal/cost"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/randgraph"
)

func fig2Graph() *pbqp.Graph {
	g := pbqp.New(3, 2)
	g.SetVertexCost(0, cost.Vector{5, 2})
	g.SetVertexCost(1, cost.Vector{5, 0})
	g.SetVertexCost(2, cost.Vector{0, 0})
	g.SetEdgeCost(0, 1, cost.NewMatrixFrom([][]cost.Cost{{1, 3}, {7, 8}}))
	g.SetEdgeCost(1, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 4}, {9, 6}}))
	g.SetEdgeCost(0, 2, cost.NewMatrixFrom([][]cost.Cost{{0, 2}, {5, 3}}))
	return g
}

func TestPlayAccumulatesEquationOneCost(t *testing.T) {
	g := fig2Graph()
	st := New(g, []int{0, 1, 2})
	st.Play(1)
	st.Play(1)
	st.Play(0)
	if !st.Done() {
		t.Fatal("not done after n plays")
	}
	if st.Acc() != 24 {
		t.Errorf("acc = %v, want 24", st.Acc())
	}
	sel := st.Selection(3)
	if got := g.TotalCost(sel); got != 24 {
		t.Errorf("selection cost = %v", got)
	}
}

func TestUndoRestoresExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randgraph.ErdosRenyi(rng, randgraph.Config{N: 8, M: 3, PEdge: 0.5, PInf: 0.2})
		st := New(g, MakeOrder(g, OrderFixed, nil))
		// record reachable state fingerprints while playing randomly
		type fp struct {
			t    int
			acc  cost.Cost
			vecs []cost.Vector
		}
		snap := func() fp {
			f := fp{t: st.Turn(), acc: st.Acc()}
			for _, v := range st.vecs {
				f.vecs = append(f.vecs, v.Clone())
			}
			return f
		}
		var stack []fp
		for !st.Done() && !st.DeadEnd() {
			stack = append(stack, snap())
			legal := []int{}
			for a := 0; a < st.M(); a++ {
				if st.Legal(a) {
					legal = append(legal, a)
				}
			}
			st.Play(legal[rng.Intn(len(legal))])
		}
		for len(stack) > 0 {
			st.Undo()
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if st.Turn() != want.t {
				t.Fatalf("turn after undo = %d, want %d", st.Turn(), want.t)
			}
			if st.Acc().IsInf() != want.acc.IsInf() || (!st.Acc().IsInf() && st.Acc() != want.acc) {
				t.Fatalf("acc after undo = %v, want %v", st.Acc(), want.acc)
			}
			for u, v := range st.vecs {
				if !v.Equal(want.vecs[u]) {
					t.Fatalf("vertex %d vector after undo = %v, want %v", u, v, want.vecs[u])
				}
			}
		}
	}
}

func TestDeadEndDetection(t *testing.T) {
	g := pbqp.New(2, 2)
	g.SetVertexCost(0, cost.Vector{0, 0})
	g.SetVertexCost(1, cost.Vector{0, 0})
	mat := cost.NewMatrix(2, 2)
	for i := range mat.Data {
		mat.Data[i] = cost.Inf
	}
	g.SetEdgeCost(0, 1, mat)
	st := New(g, []int{0, 1})
	if st.DeadEnd() {
		t.Fatal("dead end before any play")
	}
	st.Play(0)
	if !st.DeadEnd() {
		t.Fatal("dead end not detected")
	}
	if st.TerminalValue() != -1 {
		t.Errorf("dead-end value = %v, want -1", st.TerminalValue())
	}
	st.Undo()
	if st.DeadEnd() {
		t.Fatal("dead end persists after undo")
	}
}

func TestIllegalPlayPanics(t *testing.T) {
	g := pbqp.New(1, 2)
	g.SetVertexCost(0, cost.Vector{0, cost.Inf})
	st := New(g, []int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Play(1)
}

func TestUndoAtStartPanics(t *testing.T) {
	st := New(fig2Graph(), []int{0, 1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	st.Undo()
}

func TestTerminalValueAgainstBaseline(t *testing.T) {
	g := fig2Graph()
	st := New(g, []int{0, 1, 2})
	st.Play(0)
	st.Play(0)
	st.Play(0)                           // optimal, cost 11
	if v := st.TerminalValue(); v != 1 { // default baseline is Inf
		t.Errorf("value vs Inf baseline = %v, want 1", v)
	}
	st.SetBaseline(11)
	if v := st.TerminalValue(); v != 0 {
		t.Errorf("value vs equal baseline = %v, want 0", v)
	}
	st.SetBaseline(10)
	if v := st.TerminalValue(); v != -1 {
		t.Errorf("value vs better baseline = %v, want -1", v)
	}
	st.SetBaseline(12)
	if v := st.TerminalValue(); v != 1 {
		t.Errorf("value vs worse baseline = %v, want 1", v)
	}
}

func TestCompareCosts(t *testing.T) {
	if CompareCosts(cost.Inf, cost.Inf) != 0 {
		t.Error("inf vs inf")
	}
	if CompareCosts(cost.Inf, 5) != -1 {
		t.Error("inf vs finite")
	}
	if CompareCosts(5, cost.Inf) != 1 {
		t.Error("finite vs inf")
	}
	if CompareCosts(5, 5.0000000000001) != 0 {
		t.Error("near-tie not a tie")
	}
}

func TestMakeOrderLiberty(t *testing.T) {
	g := pbqp.New(3, 3)
	g.SetVertexCost(0, cost.Vector{0, 0, 0})               // liberty 3
	g.SetVertexCost(1, cost.Vector{cost.Inf, cost.Inf, 0}) // liberty 1
	g.SetVertexCost(2, cost.Vector{cost.Inf, 0, 0})        // liberty 2
	inc := MakeOrder(g, OrderIncLiberty, nil)
	if inc[0] != 1 || inc[1] != 2 || inc[2] != 0 {
		t.Errorf("inc order = %v", inc)
	}
	dec := MakeOrder(g, OrderDecLiberty, nil)
	if dec[0] != 0 || dec[1] != 2 || dec[2] != 1 {
		t.Errorf("dec order = %v", dec)
	}
	fixed := MakeOrder(g, OrderFixed, nil)
	if fixed[0] != 0 || fixed[1] != 1 || fixed[2] != 2 {
		t.Errorf("fixed order = %v", fixed)
	}
	rng := rand.New(rand.NewSource(7))
	random := MakeOrder(g, OrderRandom, rng)
	if len(random) != 3 {
		t.Errorf("random order = %v", random)
	}
}

func TestOrderStrings(t *testing.T) {
	for o, want := range map[Order]string{
		OrderFixed: "fixed", OrderRandom: "random",
		OrderIncLiberty: "inc-liberty", OrderDecLiberty: "dec-liberty",
		Order(9): "order(9)",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestSelectionRespectsOrder(t *testing.T) {
	g := fig2Graph()
	order := []int{2, 0, 1}
	st := New(g, order)
	st.Play(0) // colors original vertex 2
	st.Play(1) // colors original vertex 0
	sel := st.Selection(3)
	if sel[2] != 0 || sel[0] != 1 || sel[1] != -1 {
		t.Errorf("selection = %v", sel)
	}
}

func TestViewConvention(t *testing.T) {
	g := fig2Graph()
	st := New(g, []int{0, 1, 2})
	v := st.View()
	if v.N() != 3 || v.M() != 2 {
		t.Fatalf("view shape (%d,%d)", v.N(), v.M())
	}
	st.Play(1)
	v = st.View()
	if v.N() != 2 {
		t.Fatalf("view N after play = %d", v.N())
	}
	// active vertex 0 is game vertex 1; its vector gained row 1 of
	// the (0,1) edge matrix: (5,0) + (7,8) = (12,8)
	if !v.Vec(0).Equal(cost.Vector{12, 8}) {
		t.Errorf("view vec(0) = %v", v.Vec(0))
	}
	// edge between the remaining two vertices must be visible
	if len(v.Nbrs(0)) != 1 || v.Nbrs(0)[0] != 1 {
		t.Errorf("view nbrs = %v", v.Nbrs(0))
	}
	if v.Mat(0, 1) == nil {
		t.Error("view missing edge matrix")
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	g := fig2Graph()
	st := New(g, []int{0, 1, 2})
	st.Play(1)
	snap := st.Snapshot()
	before := snap.Vec(0).Clone()
	st.Play(0)
	st.Undo()
	st.Undo()
	if !snap.Vec(0).Equal(before) {
		t.Error("snapshot changed after play/undo")
	}
	if snap.N() != 2 {
		t.Errorf("snapshot N = %d", snap.N())
	}
}

func TestPlayedAndLegalMask(t *testing.T) {
	g := fig2Graph()
	st := New(g, []int{0, 1, 2})
	mask := st.LegalMask()
	if !mask[0] || !mask[1] {
		t.Errorf("mask = %v", mask)
	}
	st.Play(0)
	played := st.Played()
	if len(played) != 1 || played[0] != 0 {
		t.Errorf("played = %v", played)
	}
	played[0] = 99 // must be a copy
	if st.Played()[0] != 0 {
		t.Error("Played aliases internal state")
	}
}

// Package game formulates PBQP as the paper's single-player, turn-based
// coloring game (Section III).
//
// A State wraps a PBQP graph whose vertices are numbered in coloring
// order. An action colors the next uncolored vertex; the transition
// detaches it and folds the selected edge-matrix rows into the uncolored
// neighbors' cost vectors (Figure 3), so every state is an equivalent,
// smaller uncolored graph — exactly the reduced-state encoding the
// paper uses to keep the network input uniform.
//
// Play/Undo are O(degree): the structure of the graph is immutable for a
// fixed order, only the suffix cost vectors mutate, and Undo restores
// the saved neighbor vectors. This makes MCTS simulation cheap and makes
// the backtracking solver's take-backs exact (infinity saturation is not
// arithmetically reversible, so vectors are restored, not subtracted).
package game

import (
	"fmt"
	"math/rand"
	"sort"

	"pbqprl/internal/cost"
	"pbqprl/internal/gcn"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/tensor"
)

// Order selects the coloring order of a PBQP game (Section IV-E).
type Order int

const (
	// OrderFixed colors vertices in their existing numbering, the
	// paper's formulation for training on random graphs.
	OrderFixed Order = iota
	// OrderRandom shuffles the vertices (Figure 6 variant b).
	OrderRandom
	// OrderIncLiberty colors low-liberty (hard) vertices first, the
	// order used by the liberty enumeration solver (variant c).
	OrderIncLiberty
	// OrderDecLiberty colors high-liberty (easy) vertices first so
	// that hard decisions are made when MCTS is most informed — the
	// paper's recommended strategy (variant d).
	OrderDecLiberty
)

// String names the order as in Figure 6.
func (o Order) String() string {
	switch o {
	case OrderFixed:
		return "fixed"
	case OrderRandom:
		return "random"
	case OrderIncLiberty:
		return "inc-liberty"
	case OrderDecLiberty:
		return "dec-liberty"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// MakeOrder returns the coloring order for g: a permutation listing the
// alive vertices in the order they will be colored. rng is only used by
// OrderRandom and may be nil otherwise.
func MakeOrder(g *pbqp.Graph, o Order, rng *rand.Rand) []int {
	vs := g.Vertices()
	switch o {
	case OrderRandom:
		rng.Shuffle(len(vs), func(i, j int) { vs[i], vs[j] = vs[j], vs[i] })
	case OrderIncLiberty:
		sort.SliceStable(vs, func(i, j int) bool { return g.Liberty(vs[i]) < g.Liberty(vs[j]) })
	case OrderDecLiberty:
		sort.SliceStable(vs, func(i, j int) bool { return g.Liberty(vs[i]) > g.Liberty(vs[j]) })
	}
	return vs
}

// State is a PBQP game in progress.
type State struct {
	n, m     int
	vecs     []cost.Vector // current cost vectors (mutated in place)
	adj      [][]int       // full adjacency among all vertices
	tmats    []map[int]*tensor.Mat
	rawmats  []map[int]*cost.Matrix // oriented rows = first index
	order    []int                  // game vertex -> original vertex
	t        int                    // next vertex to color
	played   []int
	acc      cost.Cost
	dead     int // uncolored vertices with all-infinite vectors
	undo     []undoRec
	baseline cost.Cost
	graded   bool
}

// change records one overwritten cost-vector entry (infinity saturation
// is not subtractable, so Undo restores saved values). Only entries that
// actually change are logged; in the ATE zero/infinity regime most edge
// row entries are zero, so logs stay tiny and Play/Undo stay cheap
// inside MCTS simulation.
type change struct {
	v, i int
	old  cost.Cost
}

type undoRec struct {
	changes []change
	acc     cost.Cost
	dead    int
}

// New builds a game over g with the given coloring order (a permutation
// of g's alive vertices, as returned by MakeOrder). The graph is not
// retained or mutated. The baseline for terminal rewards defaults to
// infinity: any finite-cost coloring counts as a win, the ATE regime.
func New(g *pbqp.Graph, order []int) *State {
	h := g.Permute(order)
	n, m := h.NumVertices(), h.M()
	s := &State{
		n: n, m: m,
		vecs:     make([]cost.Vector, n),
		adj:      make([][]int, n),
		tmats:    make([]map[int]*tensor.Mat, n),
		rawmats:  make([]map[int]*cost.Matrix, n),
		order:    append([]int(nil), order...),
		baseline: cost.Inf,
	}
	for u := 0; u < n; u++ {
		s.vecs[u] = h.VertexCost(u).Clone()
		s.adj[u] = h.Neighbors(u)
		s.tmats[u] = make(map[int]*tensor.Mat)
		s.rawmats[u] = make(map[int]*cost.Matrix)
		if s.vecs[u].AllInf() {
			s.dead++
		}
	}
	for _, e := range h.Edges() {
		mu := e.M.Clone()
		s.rawmats[e.U][e.V] = mu
		s.rawmats[e.V][e.U] = mu.Transpose()
		s.tmats[e.U][e.V] = gcn.TransformMatrix(s.rawmats[e.U][e.V])
		s.tmats[e.V][e.U] = gcn.TransformMatrix(s.rawmats[e.V][e.U])
	}
	return s
}

// N returns the total number of vertices in the game.
func (s *State) N() int { return s.n }

// M returns the color count.
func (s *State) M() int { return s.m }

// Turn returns the index of the next vertex to color (= the number of
// coloring actions taken so far).
func (s *State) Turn() int { return s.t }

// Done reports whether every vertex has been colored.
func (s *State) Done() bool { return s.t == s.n }

// Acc returns the accumulated cost of the actions taken so far. Because
// edge costs are folded into vertex vectors on each transition, this is
// the full Equation-1 cost of the colored prefix.
func (s *State) Acc() cost.Cost { return s.acc }

// SetBaseline sets the best player's cost for this episode; terminal
// values compare against it (Section III-B).
func (s *State) SetBaseline(c cost.Cost) { s.baseline = c }

// Baseline returns the current baseline.
func (s *State) Baseline() cost.Cost { return s.baseline }

// SetGraded switches terminal values from the paper's ternary
// win/tie/loss to a graded margin against the baseline. The ternary
// reward is right for training (the competition of Section III-B) and
// for the ATE zero/∞ regime, but during *minimization inference* every
// coloring that fails to beat a strong baseline scores the same −1 and
// the search cannot tell nearly-as-good from terrible; the graded value
// (baseline − cost)/baseline, clamped to [−1, 1], restores the
// gradient.
func (s *State) SetGraded(g bool) { s.graded = g }

// Legal reports whether coloring the next vertex with color a has
// finite cost.
func (s *State) Legal(a int) bool { return !s.vecs[s.t][a].IsInf() }

// LegalMask returns the legal-color mask of the next vertex.
func (s *State) LegalMask() []bool {
	mask := make([]bool, s.m)
	for i, c := range s.vecs[s.t] {
		mask[i] = !c.IsInf()
	}
	return mask
}

// DeadEnd reports whether the game is stuck: some uncolored vertex has
// no finite color left (Section IV-E). Detection is eager, as in the
// paper's graph manager, which notices a dead end as soon as it
// "transits to a new reduced graph": the propagation that kills a
// vertex makes the state terminal immediately, not only once the dead
// vertex comes up for coloring.
func (s *State) DeadEnd() bool { return !s.Done() && s.dead > 0 }

// Play colors the next vertex with color a, propagating costs to its
// uncolored neighbors. It panics if the game is done or a is illegal;
// use Legal first.
func (s *State) Play(a int) {
	if s.Done() {
		//pbqpvet:ignore panicfree documented contract: callers check Done/Legal first; the self-play hot path cannot afford error returns
		panic("game: Play on a finished game")
	}
	if a < 0 || a >= s.m || !s.Legal(a) {
		//pbqpvet:ignore panicfree documented contract: callers check Done/Legal first; the self-play hot path cannot afford error returns
		panic(fmt.Sprintf("game: illegal action %d at turn %d", a, s.t))
	}
	rec := undoRec{acc: s.acc, dead: s.dead}
	for _, v := range s.adj[s.t] {
		if v <= s.t {
			continue
		}
		row := s.rawmats[s.t][v].Row(a)
		vec := s.vecs[v]
		wasDead := vec.AllInf()
		for i, rc := range row {
			if rc.IsZero() {
				continue
			}
			rec.changes = append(rec.changes, change{v: v, i: i, old: vec[i]})
			vec[i] = vec[i].Add(rc)
		}
		if !wasDead && vec.AllInf() {
			s.dead++
		}
	}
	s.undo = append(s.undo, rec)
	s.acc = s.acc.Add(s.vecs[s.t][a])
	s.played = append(s.played, a)
	s.t++
}

// Undo reverts the most recent Play. It panics if no action was taken.
func (s *State) Undo() {
	if s.t == 0 {
		//pbqpvet:ignore panicfree documented contract: Undo without a prior Play is a caller bug
		panic("game: Undo at initial state")
	}
	s.t--
	rec := s.undo[len(s.undo)-1]
	s.undo = s.undo[:len(s.undo)-1]
	s.played = s.played[:len(s.played)-1]
	s.acc = rec.acc
	s.dead = rec.dead
	for i := len(rec.changes) - 1; i >= 0; i-- {
		ch := rec.changes[i]
		s.vecs[ch.v][ch.i] = ch.old
	}
}

// Played returns the colors chosen so far, indexed by game vertex.
func (s *State) Played() []int { return append([]int(nil), s.played...) }

// Selection maps the colors played so far back to original vertex ids.
// It is only complete when Done.
func (s *State) Selection(numOriginal int) pbqp.Selection {
	sel := make(pbqp.Selection, numOriginal)
	for i := range sel {
		sel[i] = -1
	}
	for i, a := range s.played {
		sel[s.order[i]] = a
	}
	return sel
}

// TerminalValue returns the reward of the current position against the
// baseline: +1 (win) when the accumulated cost beats the baseline, -1
// (loss) when it is worse or the game is stuck at a dead end, 0 for a
// tie. It is meaningful for finished or dead-end games.
func (s *State) TerminalValue() float64 {
	if s.DeadEnd() {
		return -1
	}
	if s.graded {
		return GradedReward(s.acc, s.baseline)
	}
	return CompareCosts(s.acc, s.baseline)
}

// LowerBound returns an optimistic completion estimate of the current
// position: the accumulated cost plus, for every uncolored vertex, the
// minimum finite entry of its current (propagated) vector. Edge costs
// between uncolored vertices are ignored, so for non-negative edge
// matrices this is a true lower bound on any completion.
func (s *State) LowerBound() cost.Cost {
	lb := s.acc
	for i := s.t; i < s.n; i++ {
		m, idx := s.vecs[i].Min()
		if idx < 0 {
			return cost.Inf
		}
		lb = lb.Add(m)
	}
	return lb
}

// HeuristicValue scores the current position by comparing the
// LowerBound against the baseline on the graded scale. It is a cheap
// stand-in for the V-Net during minimization inference: optimistic (a
// bound, not an estimate), which is exactly what UCT-style search
// wants from an admissible heuristic.
func (s *State) HeuristicValue() float64 {
	return GradedReward(s.LowerBound(), s.baseline)
}

// GradedReward returns the margin-based reward of achieving cost got
// against cost base: (base − got)/|base| clamped to [−1, 1], with the
// infinite cases degenerating to ±1 as in CompareCosts.
func GradedReward(got, base cost.Cost) float64 {
	if got.IsInf() && base.IsInf() {
		return 0
	}
	if got.IsInf() {
		return -1
	}
	if base.IsInf() {
		return 1
	}
	if base.IsZero() {
		return CompareCosts(got, base)
	}
	b := base.Finite()
	if b < 0 {
		b = -b
	}
	v := (base.Finite() - got.Finite()) / b
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// CompareCosts returns the competition reward of achieving cost got
// against cost base: +1 if strictly lower, -1 if strictly higher, 0 on
// a tie (within a small relative tolerance).
func CompareCosts(got, base cost.Cost) float64 {
	if got.IsInf() && base.IsInf() {
		return 0
	}
	if got.IsInf() {
		return -1
	}
	if base.IsInf() {
		return 1
	}
	diff := got.Finite() - base.Finite()
	tol := 1e-9 * (1 + got.Finite() + base.Finite())
	switch {
	case diff < -tol:
		return 1
	case diff > tol:
		return -1
	default:
		return 0
	}
}

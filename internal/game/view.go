package game

import (
	"pbqprl/internal/cost"
	"pbqprl/internal/gcn"
	"pbqprl/internal/tensor"
)

// View returns a gcn.View over the uncolored suffix of the game. Active
// vertex 0 is the next vertex to color, matching the net package's
// convention. Adjacency is materialized once at creation (the GCN walks
// it once per layer); vertex vectors are read live, so the view is
// invalidated by Play/Undo. Use Snapshot for a frozen copy.
func (s *State) View() gcn.View {
	n := s.n - s.t
	v := &suffixView{s: s, t: s.t, nbrs: make([][]int, n)}
	for i := 0; i < n; i++ {
		u := s.t + i
		for _, w := range s.adj[u] {
			if w >= s.t {
				v.nbrs[i] = append(v.nbrs[i], w-s.t)
			}
		}
	}
	return v
}

type suffixView struct {
	s    *State
	t    int
	nbrs [][]int
}

func (v *suffixView) N() int { return v.s.n - v.t }
func (v *suffixView) M() int { return v.s.m }

func (v *suffixView) Vec(i int) cost.Vector { return v.s.vecs[v.t+i] }

func (v *suffixView) Nbrs(i int) []int { return v.nbrs[i] }

func (v *suffixView) Mat(i, j int) *tensor.Mat {
	return v.s.tmats[v.t+i][v.t+j]
}

// Snapshot returns a self-contained, immutable gcn.View of the current
// uncolored suffix, for storing in a training replay buffer. Vertex cost
// vectors are copied; the transformed edge matrices are shared with the
// state (they never change during an episode).
func (s *State) Snapshot() gcn.View {
	n := s.n - s.t
	snap := &snapshotView{
		m:    s.m,
		vecs: make([]cost.Vector, n),
		nbrs: make([][]int, n),
		mats: make([]map[int]*tensor.Mat, n),
	}
	for i := 0; i < n; i++ {
		u := s.t + i
		snap.vecs[i] = s.vecs[u].Clone()
		snap.mats[i] = make(map[int]*tensor.Mat)
		for _, w := range s.adj[u] {
			if w >= s.t {
				j := w - s.t
				snap.nbrs[i] = append(snap.nbrs[i], j)
				snap.mats[i][j] = s.tmats[u][w]
			}
		}
	}
	return snap
}

type snapshotView struct {
	m    int
	vecs []cost.Vector
	nbrs [][]int
	mats []map[int]*tensor.Mat
}

func (v *snapshotView) N() int                   { return len(v.vecs) }
func (v *snapshotView) M() int                   { return v.m }
func (v *snapshotView) Vec(i int) cost.Vector    { return v.vecs[i] }
func (v *snapshotView) Nbrs(i int) []int         { return v.nbrs[i] }
func (v *snapshotView) Mat(i, j int) *tensor.Mat { return v.mats[i][j] }

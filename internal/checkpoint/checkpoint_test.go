package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pbqprl/internal/failpoint"
)

func TestWriteReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.ckpt")
	payload := []byte("the trainer state")
	if err := Write(path, payload); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload round trip: got %q", got)
	}
}

func TestWriteReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.ckpt")
	if err := Write(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := Write(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Errorf("got %q, want new", got)
	}
	// no temp files left behind
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, mutate func([]byte) []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := Write(path, []byte("payload bytes")); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := map[string]string{
		"truncated-header":  write("a.ckpt", func(b []byte) []byte { return b[:10] }),
		"truncated-payload": write("b.ckpt", func(b []byte) []byte { return b[:len(b)-3] }),
		"flipped-bit": write("c.ckpt", func(b []byte) []byte {
			b[len(b)-1] ^= 0x40
			return b
		}),
		"bad-magic": write("d.ckpt", func(b []byte) []byte {
			copy(b, "NOTACKPT")
			return b
		}),
		"bad-version": write("e.ckpt", func(b []byte) []byte {
			b[8] = 99
			return b
		}),
	}
	for name, path := range cases {
		if _, err := Read(path); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestReadMissingFileIsNotCorrupt(t *testing.T) {
	_, err := Read(filepath.Join(t.TempDir(), "nope.ckpt"))
	if err == nil || errors.Is(err, ErrCorrupt) {
		t.Errorf("missing file: err = %v, want plain os error", err)
	}
}

func TestStoreRotationKeepsLastK(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 7; i++ {
		if err := store.Save(i, []byte(fmt.Sprintf("state %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	ids, err := store.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{5, 6, 7}; len(ids) != 3 || ids[0] != want[0] || ids[1] != want[1] || ids[2] != want[2] {
		t.Errorf("ids after rotation = %v, want %v", ids, want)
	}
	id, payload, err := store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || string(payload) != "state 7" {
		t.Errorf("latest = %d %q", id, payload)
	}
}

func TestStoreFallsBackPastCorruptLatest(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"), 5)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	store.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	for i := 1; i <= 3; i++ {
		if err := store.Save(i, []byte(fmt.Sprintf("state %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// simulate a crash mid-write of the newest checkpoint
	data, err := os.ReadFile(store.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(store.Path(3), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	id, payload, err := store.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 || string(payload) != "state 2" {
		t.Errorf("fallback loaded %d %q, want 2 \"state 2\"", id, payload)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "skipping") {
		t.Errorf("expected one skip warning, got %v", warnings)
	}
}

func TestStoreLoadLatestEmpty(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.LoadLatest(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreIgnoresForeignFiles(t *testing.T) {
	store, err := NewStore(filepath.Join(t.TempDir(), "ckpts"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(store.Dir(), "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := store.Save(1, []byte("state 1")); err != nil {
		t.Fatal(err)
	}
	ids, err := store.IDs()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("ids = %v, want [1]", ids)
	}
}

// TestFailpointTornWrite arms checkpoint/torn-write so Save leaves half
// a frame at the final path (the non-atomic crash Write normally makes
// impossible) and asserts the keep-last-K store recovers the previous
// checkpoint, logging the skip.
func TestFailpointTornWrite(t *testing.T) {
	s, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	var logged []string
	s.Logf = func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}
	if err := s.Save(1, []byte("good state")); err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Enable("checkpoint/torn-write", "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("checkpoint/torn-write")
	if err := s.Save(2, []byte("doomed state")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("torn save error = %v, want ErrInjected", err)
	}
	// The torn file really is on disk and really is garbage.
	if _, err := Read(s.Path(2)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reading torn checkpoint: %v, want ErrCorrupt", err)
	}

	id, payload, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 || string(payload) != "good state" {
		t.Fatalf("recovered id=%d payload=%q, want the previous checkpoint", id, payload)
	}
	if len(logged) == 0 || !strings.Contains(logged[0], "skipping") {
		t.Fatalf("corrupt skip not logged: %q", logged)
	}

	// Disarmed, the same id saves and loads cleanly over the torn file.
	failpoint.Disable("checkpoint/torn-write")
	if err := s.Save(2, []byte("healed state")); err != nil {
		t.Fatal(err)
	}
	if id, payload, err := s.LoadLatest(); err != nil || id != 2 || string(payload) != "healed state" {
		t.Fatalf("after heal: id=%d payload=%q err=%v", id, payload, err)
	}
}

// TestFailpointPartialRename arms checkpoint/partial-rename: the save
// reports success but the renamed file lost its tail (a lying disk at
// power loss). Only the CRC on the next load catches it; the store must
// still fall back to the previous good checkpoint.
func TestFailpointPartialRename(t *testing.T) {
	s, err := NewStore(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(7, []byte("good state")); err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Enable("checkpoint/partial-rename", "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("checkpoint/partial-rename")
	// The injected failure is silent: Save returns nil.
	if err := s.Save(8, []byte("silently torn state")); err != nil {
		t.Fatalf("partial-rename save should report success, got %v", err)
	}
	if _, err := Read(s.Path(8)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reading truncated checkpoint: %v, want ErrCorrupt", err)
	}

	id, payload, err := s.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 || string(payload) != "good state" {
		t.Fatalf("recovered id=%d payload=%q, want the previous checkpoint", id, payload)
	}
}

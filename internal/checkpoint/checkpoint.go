// Package checkpoint provides crash-safe checkpoint files for the
// training pipeline: every file is written atomically (write to a temp
// file in the same directory, sync, rename) and framed with a magic
// string, a format version, and a CRC32 checksum over the payload, so a
// torn or bit-rotted write is detected on load instead of being
// deserialized into garbage. A Store manages a directory of numbered
// checkpoints with keep-last-K rotation and falls back to the newest
// valid file when the latest one is corrupt.
//
// The payload is opaque bytes; callers bring their own serialization
// (the trainer uses gob).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pbqprl/internal/failpoint"
)

const (
	// magic identifies a checkpoint file; it never changes across
	// versions so that stale files are reported as version mismatches
	// rather than foreign garbage.
	magic = "PBQPCKPT"
	// Version is the current checkpoint frame version. Bump it when the
	// frame layout (not the payload) changes incompatibly.
	Version = 1
	// Ext is the checkpoint file extension used by Store.
	Ext = ".ckpt"

	headerSize = len(magic) + 4 + 4 + 8 // magic, version, crc32, payload length
)

// ErrCorrupt marks a file that is not a complete, valid checkpoint:
// truncated, checksum mismatch, wrong magic, or wrong version. Returned
// errors wrap it, so use errors.Is to test.
var ErrCorrupt = errors.New("corrupt checkpoint")

// ErrNoCheckpoint is returned by Store.LoadLatest when the directory
// holds no valid checkpoint at all.
var ErrNoCheckpoint = errors.New("no valid checkpoint found")

// Write frames payload (magic, version, CRC32, length) and writes it
// atomically to path: a reader never observes a partially written file,
// and a crash mid-write leaves any previous checkpoint at path intact.
func Write(path string, payload []byte) error {
	buf := make([]byte, headerSize+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint32(buf[8:12], Version)
	binary.LittleEndian.PutUint32(buf[12:16], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(len(payload)))
	copy(buf[headerSize:], payload)
	// Chaos hook: simulate a crash mid-write on a filesystem (or code
	// path) without the atomic temp-file dance — half a frame lands at
	// the final path. Recovery tests assert LoadLatest skips it.
	if err := failpoint.Hit("checkpoint/torn-write"); err != nil {
		os.WriteFile(path, buf[:len(buf)/2], 0o644)
		return fmt.Errorf("checkpoint: torn write: %w", err)
	}
	return WriteFileAtomic(path, buf)
}

// Read loads and validates a checkpoint written by Write, returning the
// payload. Validation failures wrap ErrCorrupt.
func Read(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %s: %d bytes, shorter than the %d-byte header", ErrCorrupt, path, len(data), headerSize)
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, path)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != Version {
		return nil, fmt.Errorf("%w: %s: format version %d, want %d", ErrCorrupt, path, v, Version)
	}
	sum := binary.LittleEndian.Uint32(data[12:16])
	want := binary.LittleEndian.Uint64(data[16:24])
	payload := data[headerSize:]
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("%w: %s: payload is %d bytes, header says %d", ErrCorrupt, path, len(payload), want)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: %s: checksum %08x, want %08x", ErrCorrupt, path, got, sum)
	}
	return payload, nil
}

// WriteFileAtomic writes data to path through a temp file in the same
// directory followed by a rename, syncing before the rename and
// checking every close error. On any error path either keeps its old
// content or does not exist; it is never left truncated.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Chaos hook: the nastiest torn-write variant — the rename goes
	// through but the temp file lost its tail first (think a lying disk
	// cache at power loss). The caller sees success; only the CRC check
	// on the next load catches it.
	if err := failpoint.Hit("checkpoint/partial-rename"); err != nil {
		if terr := os.Truncate(tmp, int64(len(data)/2)); terr != nil {
			os.Remove(tmp)
			return terr
		}
		return os.Rename(tmp, path)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// Best-effort directory sync so the rename itself survives a crash;
	// some filesystems don't support fsync on directories.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Store manages numbered checkpoints (ckpt-00000042.ckpt) in one
// directory with keep-last-K rotation.
type Store struct {
	dir  string
	keep int
	// Logf receives warnings about skipped corrupt checkpoints; nil
	// discards them.
	Logf func(format string, args ...any)
}

// NewStore opens (creating if needed) a checkpoint directory that
// retains the keep newest checkpoints; keep <= 0 means 3.
func NewStore(dir string, keep int) (*Store, error) {
	if keep <= 0 {
		keep = 3
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, keep: keep}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file path used for checkpoint id.
func (s *Store) Path(id int) string {
	return filepath.Join(s.dir, fmt.Sprintf("ckpt-%08d%s", id, Ext))
}

// IDs returns the checkpoint ids present on disk, ascending. Files that
// don't match the naming scheme are ignored.
func (s *Store) IDs() ([]int, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ckpt-") || !strings.HasSuffix(name, Ext) {
			continue
		}
		id, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "ckpt-"), Ext))
		if err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// Save atomically writes payload as checkpoint id and prunes all but
// the keep newest checkpoints. Saving an existing id replaces it.
func (s *Store) Save(id int, payload []byte) error {
	if err := Write(s.Path(id), payload); err != nil {
		return err
	}
	return s.prune()
}

// LoadLatest returns the newest checkpoint that validates, skipping (and
// logging) corrupt ones, so a crash during the most recent save falls
// back to the previous good state. It returns ErrNoCheckpoint when
// nothing valid remains.
func (s *Store) LoadLatest() (id int, payload []byte, err error) {
	ids, err := s.IDs()
	if err != nil {
		return 0, nil, err
	}
	for i := len(ids) - 1; i >= 0; i-- {
		payload, err := Read(s.Path(ids[i]))
		if err == nil {
			return ids[i], payload, nil
		}
		s.logf("checkpoint: skipping %s: %v", s.Path(ids[i]), err)
	}
	return 0, nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, s.dir)
}

func (s *Store) prune() error {
	ids, err := s.IDs()
	if err != nil {
		return err
	}
	for _, id := range ids[:max(0, len(ids)-s.keep)] {
		if err := os.Remove(s.Path(id)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

func (s *Store) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

package regalloc

import (
	"pbqprl/internal/cost"
	"pbqprl/internal/ir"
	"pbqprl/internal/pbqp"
	"pbqprl/internal/solve"
)

// SpillColor is the PBQP color representing "spill this value"; physical
// register r is color r+1. The total color count is NumRegs+1, which is
// 13 on the default target — the same m the ATE experiments use, so one
// trained network serves both evaluations.
const SpillColor = 0

// BuildPBQP constructs the register-allocation PBQP problem of the
// function, the structure LLVM's PBQP module produces:
//
//   - every value gets a vertex with NumRegs+1 colors; color 0 is the
//     spill option with the value's loop-weighted spill cost, register
//     colors cost 0 where the class allows and ∞ where it does not;
//   - interference edges carry ∞ on (r, r) register diagonals (two
//     spilled values never conflict);
//   - move-related pairs get a coalescing hint: a negative cost on the
//     same-register diagonal proportional to the move's weight.
func BuildPBQP(in Input) *pbqp.Graph {
	m := in.Target.NumRegs + 1
	g := pbqp.New(in.F.NumValues, m)

	for v := 0; v < in.F.NumValues; v++ {
		vec := cost.NewInfVector(m)
		vec[SpillColor] = cost.Cost(in.Info.SpillWeight[v])
		for r, ok := range in.allowedSet(ir.Value(v)) {
			if ok {
				vec[r+1] = 0
			}
		}
		g.SetVertexCost(v, vec)
	}

	interfere := cost.NewMatrix(m, m)
	for r := 1; r < m; r++ {
		interfere.Set(r, r, cost.Inf)
	}
	seen := make(map[[2]int]bool)
	for v := 0; v < in.F.NumValues; v++ {
		for u := range in.Info.Interference[v] {
			a, b := v, int(u)
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			g.AddEdgeCost(a, b, interfere)
		}
	}

	for v := 0; v < in.F.NumValues; v++ {
		for u := range in.Info.MoveRelated[v] {
			if int(u) <= v || in.Info.Interferes(ir.Value(v), u) {
				continue
			}
			w := in.Info.SpillWeight[v]
			if in.Info.SpillWeight[u] < w {
				w = in.Info.SpillWeight[u]
			}
			hint := cost.NewMatrix(m, m)
			bonus := cost.Cost(-0.25 * (1 + w))
			for r := 1; r < m; r++ {
				hint.Set(r, r, bonus)
			}
			g.AddEdgeCost(v, int(u), hint)
		}
	}
	return g
}

// FromSelection converts a PBQP selection back to a register
// assignment.
func FromSelection(sel pbqp.Selection) Assignment {
	reg := make([]int, len(sel))
	for v, c := range sel {
		if c <= SpillColor {
			reg[v] = -1
		} else {
			reg[v] = c - 1
		}
	}
	return Assignment{Reg: reg}
}

// PBQPAlloc builds the PBQP problem for in, solves it with solver, and
// returns the assignment together with the solver result (for cost-sum
// reporting). An infeasible result falls back to spilling everything,
// which is always legal.
func PBQPAlloc(in Input, solver solve.Solver) (Assignment, solve.Result) {
	g := BuildPBQP(in)
	res := solver.Solve(g)
	if !res.Feasible {
		reg := make([]int, in.F.NumValues)
		for v := range reg {
			reg[v] = -1
		}
		return Assignment{Reg: reg}, res
	}
	return FromSelection(res.Selection), res
}

package regalloc

import (
	"testing"

	"pbqprl/internal/ir"
	"pbqprl/internal/llvmsuite"
)

func TestRewriteInsertsSpillCode(t *testing.T) {
	bench := llvmsuite.Generate("Quicksort")
	target := DefaultTarget()
	for i, f := range bench.Prog.Funcs {
		in := NewInput(f, target, bench.Allowed[i])
		asn := Basic(in)
		if asn.SpillCount() == 0 {
			continue
		}
		out, extended, err := Rewrite(in, asn)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("rewritten function invalid: %v", err)
		}
		if out.NumValues <= f.NumValues {
			t.Error("no reload temporaries created")
		}
		// every new temporary holds a reserved register
		for v := f.NumValues; v < out.NumValues; v++ {
			r := extended.Reg[v]
			if r < target.NumRegs || r >= target.NumRegs+3 {
				t.Fatalf("temp v%d in non-reserved register %d", v, r)
			}
		}
		// the rewritten function validates against the widened machine
		wide := &Target{Name: "wide", NumRegs: target.NumRegs + 3}
		wideIn := NewInput(out, wide, nil)
		if err := (Assignment{Reg: extended.Reg}).Validate(wideIn); err != nil {
			t.Fatalf("extended assignment invalid: %v", err)
		}
		// instruction count grew by exactly the inserted loads/stores
		count := func(fn *ir.Func) (n int) {
			for _, b := range fn.Blocks {
				n += len(b.Instrs)
			}
			return n
		}
		if count(out) <= count(f) {
			t.Error("no spill code inserted")
		}
		return
	}
	t.Skip("no function with spills in this benchmark")
}

func TestRewriteNoSpillsIsIdentityShaped(t *testing.T) {
	f := &ir.Func{
		Name: "clean", NumValues: 2,
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpArith, Def: 1, Uses: []ir.Value{0}},
			{Op: ir.OpRet, Uses: []ir.Value{1}},
		}}},
	}
	in := NewInput(f, DefaultTarget(), nil)
	out, extended, err := Rewrite(in, Assignment{Reg: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumValues != 2 || len(out.Blocks[0].Instrs) != 3 {
		t.Error("rewrite changed a spill-free function")
	}
	if len(extended.Reg) != 2 {
		t.Error("assignment grew without spills")
	}
}

func TestRewriteRejectsShortAssignment(t *testing.T) {
	bench := llvmsuite.Generate("sieve")
	in := NewInput(bench.Prog.Funcs[0], DefaultTarget(), nil)
	if _, _, err := Rewrite(in, Assignment{Reg: []int{0}}); err == nil {
		t.Error("accepted a truncated assignment")
	}
}

func TestCountSpillCode(t *testing.T) {
	f := &ir.Func{
		Name: "hot", NumValues: 2,
		Blocks: []*ir.Block{{Name: "loop", LoopDepth: 2, Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpArith, Def: 1, Uses: []ir.Value{0, 0}},
		}}},
	}
	in := NewInput(f, DefaultTarget(), nil)
	reloads, stores := CountSpillCode(in, Assignment{Reg: []int{-1, 3}})
	if reloads != 200 { // two uses × 10^2
		t.Errorf("reloads = %v, want 200", reloads)
	}
	if stores != 100 { // one def × 10^2
		t.Errorf("stores = %v, want 100", stores)
	}
}

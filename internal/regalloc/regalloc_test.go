package regalloc

import (
	"testing"

	"pbqprl/internal/ir"
	"pbqprl/internal/llvmsuite"
	"pbqprl/internal/solve/scholz"
)

func suiteInputs(t *testing.T, n int) []Input {
	t.Helper()
	target := DefaultTarget()
	var ins []Input
	for _, b := range llvmsuite.All()[:n] {
		if err := b.Prog.Validate(); err != nil {
			t.Fatal(err)
		}
		for i, f := range b.Prog.Funcs {
			ins = append(ins, NewInput(f, target, b.Allowed[i]))
		}
	}
	return ins
}

func TestFastSpillsSpanningValues(t *testing.T) {
	for _, in := range suiteInputs(t, 4) {
		asn := Fast(in)
		if err := asn.Validate(in); err != nil {
			t.Fatal(err)
		}
		for v := 0; v < in.F.NumValues; v++ {
			if in.Info.Spans[v] && asn.Reg[v] != -1 {
				t.Fatalf("%s: FAST kept spanning v%d in a register", in.F.Name, v)
			}
		}
	}
}

func TestBasicProducesValidAssignments(t *testing.T) {
	for _, in := range suiteInputs(t, 6) {
		asn := Basic(in)
		if err := asn.Validate(in); err != nil {
			t.Fatalf("%s: %v", in.F.Name, err)
		}
	}
}

func TestGreedyProducesValidAssignments(t *testing.T) {
	for _, in := range suiteInputs(t, 6) {
		asn := Greedy(in)
		if err := asn.Validate(in); err != nil {
			t.Fatalf("%s: %v", in.F.Name, err)
		}
	}
}

func TestAllocatorQualityOrdering(t *testing.T) {
	// FAST must spill the most values; GREEDY optimizes *weighted*
	// spill cost (it may spill more cold values than BASIC but far
	// less hot weight — exactly LLVM's trade).
	var fastN, basicN int
	var fastW, basicW, greedyW float64
	weight := func(in Input, a Assignment) float64 {
		w := 0.0
		for v, r := range a.Reg {
			if r == -1 {
				w += in.Info.SpillWeight[v]
			}
		}
		return w
	}
	for _, in := range suiteInputs(t, 24) {
		fa, ba, ga := Fast(in), Basic(in), Greedy(in)
		fastN += fa.SpillCount()
		basicN += ba.SpillCount()
		fastW += weight(in, fa)
		basicW += weight(in, ba)
		greedyW += weight(in, ga)
	}
	t.Logf("spill weight: fast=%.0f basic=%.0f greedy=%.0f (counts: fast=%d basic=%d)",
		fastW, basicW, greedyW, fastN, basicN)
	if fastN <= basicN {
		t.Errorf("FAST (%d) should spill more values than BASIC (%d)", fastN, basicN)
	}
	if greedyW > basicW {
		t.Errorf("GREEDY weight (%.0f) should not exceed BASIC (%.0f)", greedyW, basicW)
	}
	if greedyW >= fastW {
		t.Errorf("GREEDY weight (%.0f) should be far below FAST (%.0f)", greedyW, fastW)
	}
}

func TestBuildPBQPStructure(t *testing.T) {
	in := suiteInputs(t, 1)[0]
	g := BuildPBQP(in)
	if g.M() != in.Target.NumRegs+1 {
		t.Fatalf("m = %d, want %d", g.M(), in.Target.NumRegs+1)
	}
	for v := 0; v < g.NumVertices(); v++ {
		vec := g.VertexCost(v)
		if vec[SpillColor].IsInf() {
			t.Fatalf("v%d: spill option infinite", v)
		}
		if float64(vec[SpillColor]) != in.Info.SpillWeight[v] {
			t.Fatalf("v%d: spill cost %v != weight %v", v, vec[SpillColor], in.Info.SpillWeight[v])
		}
	}
	// interference edges: register diagonal infinite, spill row free
	for v := 0; v < in.F.NumValues; v++ {
		for u := range in.Info.Interference[v] {
			e := g.EdgeCost(v, int(u))
			if e == nil {
				t.Fatalf("interference (v%d,v%d) has no edge", v, u)
			}
			if !e.At(1, 1).IsInf() {
				t.Fatal("register diagonal not infinite")
			}
			if e.At(SpillColor, SpillColor).IsInf() {
				t.Fatal("spill-spill marked infinite")
			}
			if e.At(1, 2).IsInf() {
				t.Fatal("distinct registers marked infinite")
			}
		}
	}
}

func TestPBQPHintsAreNegative(t *testing.T) {
	// hand-built move chain: v0 -> v1 (move), no interference
	f := &ir.Func{
		Name: "hint", NumValues: 2,
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpMove, Def: 1, Uses: []ir.Value{0}},
			{Op: ir.OpStore, Uses: []ir.Value{1, 1}},
			{Op: ir.OpRet},
		}}},
	}
	in := NewInput(f, DefaultTarget(), nil)
	g := BuildPBQP(in)
	e := g.EdgeCost(0, 1)
	if e == nil {
		t.Fatal("no hint edge for move-related pair")
	}
	if !(e.At(1, 1) < 0) {
		t.Errorf("same-register hint = %v, want negative", e.At(1, 1))
	}
	if e.At(1, 2) != 0 {
		t.Errorf("different-register cost = %v, want 0", e.At(1, 2))
	}
}

func TestPBQPAllocRoundTrip(t *testing.T) {
	for _, in := range suiteInputs(t, 4) {
		asn, res := PBQPAlloc(in, scholz.Solver{})
		if !res.Feasible {
			t.Fatalf("%s: PBQP infeasible (spill should always be available)", in.F.Name)
		}
		if err := asn.Validate(in); err != nil {
			t.Fatalf("%s: %v", in.F.Name, err)
		}
	}
}

func TestFromSelection(t *testing.T) {
	asn := FromSelection([]int{0, 1, 5})
	if asn.Reg[0] != -1 || asn.Reg[1] != 0 || asn.Reg[2] != 4 {
		t.Errorf("FromSelection = %v", asn.Reg)
	}
	if asn.SpillCount() != 1 {
		t.Errorf("SpillCount = %d", asn.SpillCount())
	}
}

func TestClassRestrictionsRespected(t *testing.T) {
	f := &ir.Func{
		Name: "cls", NumValues: 2,
		Blocks: []*ir.Block{{Name: "entry", Instrs: []ir.Instr{
			{Op: ir.OpConst, Def: 0},
			{Op: ir.OpConst, Def: 1},
			{Op: ir.OpStore, Uses: []ir.Value{0, 1}},
			{Op: ir.OpRet},
		}}},
	}
	allowed := [][]int{{3}, {3, 4}}
	in := NewInput(f, DefaultTarget(), allowed)
	for name, alloc := range map[string]func(Input) Assignment{
		"fast": Fast, "basic": Basic, "greedy": Greedy,
	} {
		asn := alloc(in)
		if err := asn.Validate(in); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if asn.Reg[0] != -1 && asn.Reg[0] != 3 {
			t.Errorf("%s: v0 got register %d outside class", name, asn.Reg[0])
		}
	}
	asn, _ := PBQPAlloc(in, scholz.Solver{})
	if err := asn.Validate(in); err != nil {
		t.Errorf("pbqp: %v", err)
	}
}

func TestValidateCatchesConflicts(t *testing.T) {
	in := suiteInputs(t, 1)[0]
	asn := Greedy(in)
	// force a conflict
	for v := 0; v < in.F.NumValues; v++ {
		for u := range in.Info.Interference[v] {
			asn.Reg[v], asn.Reg[u] = 0, 0
			if err := asn.Validate(in); err == nil {
				t.Fatal("Validate accepted conflicting registers")
			}
			return
		}
	}
	t.Skip("no interference in first function")
}

// Package regalloc implements the four register allocators the paper's
// LLVM evaluation compares (Section V-C):
//
//   - FAST: the baseline local allocator — only block-local values get
//     registers, everything that spans a block boundary is spilled.
//   - BASIC: a linear-scan allocator (Poletto & Sarkar style).
//   - GREEDY: a priority allocator with eviction, the spirit of LLVM's
//     default GRA (linear scan with aggressive splitting; this model
//     substitutes weight-based eviction for splitting).
//   - PBQP: constructs the PBQP problem (spill option + interference +
//     register-class restrictions + coalescing hints) and defers to any
//     PBQP solver — the original Scholz–Eckstein reduction or the
//     Deep-RL solver (PBQP-RL).
package regalloc

import (
	"container/heap"
	"fmt"
	"sort"

	"pbqprl/internal/ir"
	"pbqprl/internal/liveness"
)

// Target describes the physical register file.
type Target struct {
	Name string
	// NumRegs is the number of allocatable registers. The experiments
	// use 12 so that the PBQP color count (registers + spill) is 13,
	// matching the ATE-trained network.
	NumRegs int
}

// DefaultTarget returns the 12-register reference target.
func DefaultTarget() *Target { return &Target{Name: "x86-ish", NumRegs: 12} }

// Input bundles what every allocator consumes.
type Input struct {
	F      *ir.Func
	Info   *liveness.Info
	Target *Target
	// Allowed restricts values to register subsets (register classes);
	// nil, or a nil entry, means any register.
	Allowed [][]int
}

// NewInput analyzes f and builds an allocator input.
func NewInput(f *ir.Func, target *Target, allowed [][]int) Input {
	return Input{F: f, Info: liveness.Analyze(f), Target: target, Allowed: allowed}
}

// allowedSet returns the permitted registers of value v as a bitmask
// slice of size NumRegs.
func (in Input) allowedSet(v ir.Value) []bool {
	ok := make([]bool, in.Target.NumRegs)
	if in.Allowed == nil || in.Allowed[v] == nil {
		for r := range ok {
			ok[r] = true
		}
		return ok
	}
	for _, r := range in.Allowed[v] {
		if r >= 0 && r < in.Target.NumRegs {
			ok[r] = true
		}
	}
	return ok
}

// Assignment maps each value to a physical register or -1 (spilled).
type Assignment struct {
	Reg []int
}

// SpillCount returns the number of spilled values.
func (a Assignment) SpillCount() int {
	n := 0
	for _, r := range a.Reg {
		if r == -1 {
			n++
		}
	}
	return n
}

// Validate checks that the assignment respects interference and class
// constraints.
func (a Assignment) Validate(in Input) error {
	if len(a.Reg) != in.F.NumValues {
		return fmt.Errorf("regalloc: assignment covers %d of %d values", len(a.Reg), in.F.NumValues)
	}
	for v, r := range a.Reg {
		if r == -1 {
			continue
		}
		if r < 0 || r >= in.Target.NumRegs {
			return fmt.Errorf("regalloc: v%d assigned out-of-range register %d", v, r)
		}
		if !in.allowedSet(ir.Value(v))[r] {
			return fmt.Errorf("regalloc: v%d assigned register %d outside its class", v, r)
		}
		for u := range in.Info.Interference[v] {
			if a.Reg[u] == r {
				return fmt.Errorf("regalloc: interfering values v%d and v%d share register %d", v, u, r)
			}
		}
	}
	return nil
}

// intervals computes linearized live intervals: instructions are
// numbered consecutively in block order, block boundaries included.
func intervals(in Input) (start, end []int) {
	n := in.F.NumValues
	start = make([]int, n)
	end = make([]int, n)
	for v := 0; v < n; v++ {
		start[v], end[v] = -1, -1
	}
	touch := func(v ir.Value, pos int) {
		if start[v] == -1 || pos < start[v] {
			start[v] = pos
		}
		if pos > end[v] {
			end[v] = pos
		}
	}
	pos := 0
	for b, blk := range in.F.Blocks {
		blockStart := pos
		for v := range in.Info.LiveIn[b] {
			touch(v, blockStart)
		}
		for _, instr := range blk.Instrs {
			if d := instr.DefValue(); d >= 0 {
				touch(d, pos)
			}
			for _, u := range instr.Uses {
				touch(u, pos)
			}
			pos++
		}
		for v := range in.Info.LiveOut[b] {
			touch(v, pos)
		}
		pos++ // block boundary
	}
	for _, p := range in.F.Params {
		touch(p, 0)
	}
	return start, end
}

// Fast is the baseline local allocator: values that span block
// boundaries are spilled; block-local values are assigned greedily
// within their block.
func Fast(in Input) Assignment {
	reg := make([]int, in.F.NumValues)
	for v := range reg {
		reg[v] = -1
	}
	for b, blk := range in.F.Blocks {
		_ = b
		// last use position of each block-local value
		lastUse := map[ir.Value]int{}
		for i, instr := range blk.Instrs {
			if d := instr.DefValue(); d >= 0 && !in.Info.Spans[d] {
				lastUse[d] = i
			}
			for _, u := range instr.Uses {
				if _, ok := lastUse[u]; ok && i > lastUse[u] {
					lastUse[u] = i
				}
			}
		}
		inUse := make([]ir.Value, in.Target.NumRegs)
		for r := range inUse {
			inUse[r] = -1
		}
		for i, instr := range blk.Instrs {
			// free registers whose value died before this instruction
			for r, v := range inUse {
				if v >= 0 && lastUse[v] < i {
					inUse[r] = -1
				}
			}
			if d := instr.DefValue(); d >= 0 && !in.Info.Spans[d] {
				ok := in.allowedSet(d)
				for r := 0; r < in.Target.NumRegs; r++ {
					if ok[r] && inUse[r] == -1 {
						reg[d] = r
						inUse[r] = d
						break
					}
				}
			}
		}
	}
	return Assignment{Reg: reg}
}

// Basic is a linear-scan allocator over linearized intervals.
func Basic(in Input) Assignment {
	start, end := intervals(in)
	n := in.F.NumValues
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if start[v] != -1 {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if start[order[i]] != start[order[j]] {
			return start[order[i]] < start[order[j]]
		}
		return order[i] < order[j]
	})
	reg := make([]int, n)
	for v := range reg {
		reg[v] = -1
	}
	type active struct{ v, r int }
	var act []active
	for _, v := range order {
		// expire
		kept := act[:0]
		for _, a := range act {
			if end[a.v] >= start[v] {
				kept = append(kept, a)
			}
		}
		act = kept
		free := make([]bool, in.Target.NumRegs)
		for r := range free {
			free[r] = true
		}
		for _, a := range act {
			free[a.r] = false
		}
		ok := in.allowedSet(ir.Value(v))
		chosen := -1
		for r := 0; r < in.Target.NumRegs; r++ {
			if free[r] && ok[r] {
				chosen = r
				break
			}
		}
		if chosen == -1 {
			// spill the conflicting interval that ends last (classic
			// linear-scan heuristic), if it outlives the current one
			worst := -1
			for i, a := range act {
				if ok[a.r] && (worst == -1 || end[a.v] > end[act[worst].v]) {
					worst = i
				}
			}
			if worst >= 0 && end[act[worst].v] > end[v] {
				reg[v] = act[worst].r
				reg[act[worst].v] = -1
				act[worst] = active{v: v, r: reg[v]}
			}
			continue
		}
		reg[v] = chosen
		act = append(act, active{v: v, r: chosen})
	}
	return Assignment{Reg: reg}
}

// prioItem is a value in the greedy allocator's worklist.
type prioItem struct {
	v      ir.Value
	weight float64
}

type prioQueue []prioItem

func (q prioQueue) Len() int      { return len(q) }
func (q prioQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q prioQueue) Less(i, j int) bool {
	//pbqpvet:ignore floatcmp sort comparator: bit-unequal weights order by value, exact ties fall through to the index tie-break
	if q[i].weight != q[j].weight {
		return q[i].weight > q[j].weight
	}
	return q[i].v < q[j].v
}
func (q *prioQueue) Push(x any) { *q = append(*q, x.(prioItem)) }
func (q *prioQueue) Pop() any {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// Greedy is a priority allocator with weight-based eviction, modeling
// LLVM's GRA: heavier (hotter) values allocate first and may evict
// strictly lighter interfering values, which re-enter the queue and may
// end up spilled.
func Greedy(in Input) Assignment {
	n := in.F.NumValues
	reg := make([]int, n)
	for v := range reg {
		reg[v] = -1
	}
	q := &prioQueue{}
	for v := 0; v < n; v++ {
		heap.Push(q, prioItem{v: ir.Value(v), weight: in.Info.SpillWeight[v]})
	}
	evictions := make([]int, n)
	const maxEvictions = 4
	for q.Len() > 0 {
		it := heap.Pop(q).(prioItem)
		v := it.v
		ok := in.allowedSet(v)
		// direct assignment
		conflict := make([]float64, in.Target.NumRegs) // eviction cost per reg
		holders := make([][]ir.Value, in.Target.NumRegs)
		assigned := false
		for r := 0; r < in.Target.NumRegs && !assigned; r++ {
			if !ok[r] {
				conflict[r] = -1
				continue
			}
			freeHere := true
			for u := range in.Info.Interference[v] {
				if reg[u] == r {
					freeHere = false
					conflict[r] += in.Info.SpillWeight[u]
					holders[r] = append(holders[r], u)
				}
			}
			if freeHere {
				reg[v] = r
				assigned = true
			}
		}
		if assigned {
			continue
		}
		// eviction: find the register whose holders are strictly
		// lighter in total than v
		bestR, bestCost := -1, 0.0
		for r := 0; r < in.Target.NumRegs; r++ {
			if conflict[r] < 0 {
				continue
			}
			if conflict[r] < it.weight && (bestR == -1 || conflict[r] < bestCost) {
				bestR, bestCost = r, conflict[r]
			}
		}
		if bestR >= 0 && evictions[v] < maxEvictions {
			for _, u := range holders[bestR] {
				reg[u] = -1
				evictions[u]++
				heap.Push(q, prioItem{v: u, weight: in.Info.SpillWeight[u]})
			}
			reg[v] = bestR
			continue
		}
		// spilled: reg[v] stays -1
	}
	return Assignment{Reg: reg}
}

package regalloc

import (
	"fmt"

	"pbqprl/internal/ir"
)

// Rewrite materializes an assignment into the function: every use of a
// spilled value is preceded by a reload into a fresh value and every
// definition of a spilled value is followed by a store, exactly what a
// backend's spill-code insertion does. The result is a new function
// (the input is not mutated) together with the extended assignment in
// which every value, including the new reload temporaries, holds a
// physical register.
//
// Reload temporaries live in three reserved spill registers numbered
// just past the allocatable set (in.Target.NumRegs .. NumRegs+2) — the
// classic reserved-register spilling scheme, conflict-free by
// construction because no allocated value can hold them. A single
// instruction reads at most three operands, so three always suffice.
// The returned assignment therefore validates against a machine with
// NumRegs+3 registers.
func Rewrite(in Input, asn Assignment) (*ir.Func, Assignment, error) {
	if len(asn.Reg) != in.F.NumValues {
		return nil, Assignment{}, fmt.Errorf("regalloc: assignment covers %d of %d values", len(asn.Reg), in.F.NumValues)
	}
	out := &ir.Func{
		Name:      in.F.Name,
		NumValues: in.F.NumValues,
		Params:    append([]ir.Value(nil), in.F.Params...),
	}
	reg := append([]int(nil), asn.Reg...)
	newValue := func(r int) ir.Value {
		v := ir.Value(out.NumValues)
		out.NumValues++
		reg = append(reg, r)
		return v
	}
	for _, blk := range in.F.Blocks {
		nb := &ir.Block{
			Name:      blk.Name,
			Succs:     append([]int(nil), blk.Succs...),
			LoopDepth: blk.LoopDepth,
		}
		for _, instr := range blk.Instrs {
			scratch := 0
			uses := append([]ir.Value(nil), instr.Uses...)
			for i, u := range uses {
				if reg[u] != -1 {
					continue
				}
				// reload the stack slot of u into a reserved register
				tmp := newValue(in.Target.NumRegs + scratch)
				scratch = (scratch + 1) % 3
				nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpLoad, Def: tmp, Uses: []ir.Value{u}})
				uses[i] = tmp
			}
			ni := ir.Instr{Op: instr.Op, Def: instr.Def, Uses: uses}
			nb.Instrs = append(nb.Instrs, ni)
			if d := instr.DefValue(); d >= 0 && reg[d] == -1 {
				// store the freshly computed value to its stack slot
				nb.Instrs = append(nb.Instrs, ir.Instr{Op: ir.OpStore, Uses: []ir.Value{d, d}})
			}
		}
		out.Blocks = append(out.Blocks, nb)
	}
	return out, Assignment{Reg: reg}, nil
}

// CountSpillCode returns the number of reload and store instructions a
// Rewrite of asn would insert, weighted by 10^loopDepth — a direct
// measure of the dynamic spill traffic the perfmodel charges for.
func CountSpillCode(in Input, asn Assignment) (reloads, stores float64) {
	pow := func(d int) float64 {
		f := 1.0
		for i := 0; i < d; i++ {
			f *= 10
		}
		return f
	}
	for _, blk := range in.F.Blocks {
		w := pow(blk.LoopDepth)
		for _, instr := range blk.Instrs {
			for _, u := range instr.Uses {
				if asn.Reg[u] == -1 {
					reloads += w
				}
			}
			if d := instr.DefValue(); d >= 0 && asn.Reg[d] == -1 {
				stores += w
			}
		}
	}
	return reloads, stores
}

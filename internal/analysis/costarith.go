package analysis

import (
	"go/ast"
	"go/token"
)

// CostArith guards the saturating ℝ∞ arithmetic of Equation 1: outside
// internal/cost, a raw `+` on two cost.Cost values can walk a cost out
// of the reserved infinite range (inf + x must stay inf), and a raw
// `==` distinguishes representations of infinity that are semantically
// equal. All arithmetic and equality on costs must go through the cost
// package's methods (Add, Less, IsInf, Vector.Equal).
var CostArith = &Analyzer{
	Name: "costarith",
	Doc: "flags raw +, -, *, /, ==, != (and their assignment forms) on " +
		"cost.Cost values outside internal/cost, which bypass saturating ℝ∞ semantics",
	Run: runCostArith,
}

// costArithOps are the operators that bypass saturation (arithmetic)
// or infinite-representation equality (comparison). Ordering operators
// <, <=, >, >= are equally unsafe on mixed finite/infinite values and
// are included: Cost.Less is the one true comparison.
var costArithOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true, token.QUO: true,
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true, token.GTR: true, token.GEQ: true,
}

var costAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true, token.QUO_ASSIGN: true,
}

func runCostArith(pass *Pass) error {
	if inCostPackage(pass) {
		return nil
	}
	suggest := func(op token.Token) string {
		switch op {
		case token.ADD, token.ADD_ASSIGN:
			return "use Cost.Add, which saturates at Inf"
		case token.EQL, token.NEQ:
			return "use IsInf/Vector.Equal; infinite representations differ bitwise"
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			return "use Cost.Less, which orders Inf above every finite cost"
		default:
			return "route it through internal/cost so ℝ∞ saturation is preserved"
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if costArithOps[n.Op] && (isCost(pass.TypeOf(n.X)) || isCost(pass.TypeOf(n.Y))) {
					pass.Reportf(n.OpPos, "raw %s on cost.Cost bypasses extended-real semantics; %s", n.Op, suggest(n.Op))
				}
			case *ast.AssignStmt:
				if costAssignOps[n.Tok] && len(n.Lhs) == 1 && isCost(pass.TypeOf(n.Lhs[0])) {
					pass.Reportf(n.TokPos, "raw %s on cost.Cost bypasses extended-real semantics; %s", n.Tok, suggest(n.Tok))
				}
			case *ast.IncDecStmt:
				if isCost(pass.TypeOf(n.X)) {
					pass.Reportf(n.TokPos, "raw %s on cost.Cost bypasses extended-real semantics; %s", n.Tok, suggest(n.Tok))
				}
			}
			return true
		})
	}
	return nil
}

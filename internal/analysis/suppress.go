package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//pbqpvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// A directive suppresses findings of the named analyzers on the line it
// occupies and on the following line, so it works both as a trailing
// comment and as a standalone comment above the offending statement.
// The reason is mandatory: a suppression without a justification is
// itself reported.
const ignorePrefix = "pbqpvet:ignore"

// suppressions maps file name → line → analyzer names suppressed there.
type suppressions map[string]map[int]map[string]bool

// collectSuppressions extracts every //pbqpvet:ignore directive from
// the files, returning the suppression table and a diagnostic for each
// malformed directive.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, ignorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason := splitDirective(rest)
				if len(names) == 0 || reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "pbqpvet",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "malformed suppression: want //pbqpvet:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				for _, ln := range []int{pos.Line, pos.Line + 1} {
					set := lines[ln]
					if set == nil {
						set = map[string]bool{}
						lines[ln] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return sup, bad
}

// splitDirective parses "name1,name2 some reason text" into the
// analyzer names and the reason.
func splitDirective(rest string) ([]string, string) {
	rest = strings.TrimSpace(rest)
	name, reason, _ := strings.Cut(rest, " ")
	var names []string
	for _, n := range strings.Split(name, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(reason)
}

// merge folds other into s (allocating s when nil) so one table can
// cover every package of a module run.
func (s suppressions) merge(other suppressions) suppressions {
	if s == nil {
		return other
	}
	for file, lines := range other {
		if s[file] == nil {
			s[file] = lines
			continue
		}
		for ln, set := range lines {
			if s[file][ln] == nil {
				s[file][ln] = set
				continue
			}
			for n := range set {
				s[file][ln][n] = true
			}
		}
	}
	return s
}

// IgnoreCensus counts //pbqpvet:ignore directive sites per analyzer
// name across the packages' files. A directive naming several
// analyzers counts once per name; malformed directives count under the
// pseudo-analyzer "pbqpvet". The census feeds cmd/pbqp-vet -counts so
// suppression creep stays visible in review.
func IgnoreCensus(pkgs []*Package) map[string]int {
	census := map[string]int{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, ignorePrefix)
					if !ok {
						continue
					}
					names, reason := splitDirective(rest)
					if len(names) == 0 || reason == "" {
						census["pbqpvet"]++
						continue
					}
					for _, n := range names {
						census[n]++
					}
				}
			}
		}
	}
	return census
}

// filter drops diagnostics covered by a suppression directive.
func (s suppressions) filter(diags []Diagnostic) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		if set := s[d.File][d.Line]; set[d.Analyzer] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

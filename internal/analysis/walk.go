package analysis

import (
	"io/fs"
	"path/filepath"
	"strings"
)

// PackageDirs returns every directory under root containing at least
// one non-test Go file, in lexical order. testdata, vendor, hidden and
// underscore-prefixed directories are skipped. The walker is shared by
// the cmd/pbqp-vet driver and the analysis tests so both agree on what
// "the whole module" means — in particular that analyzer fixtures under
// testdata are never vetted as production code.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			return nil
		}
		dir := filepath.Dir(p)
		if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []Diagnostic, suppressions) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sup, bad := collectSuppressions(fset, []*ast.File{f})
	return fset, bad, sup
}

func TestMalformedDirectives(t *testing.T) {
	cases := []struct {
		name, directive string
	}{
		{"missing reason", "//pbqpvet:ignore floatcmp"},
		{"missing name and reason", "//pbqpvet:ignore"},
		{"only commas", "//pbqpvet:ignore ,, some reason"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package p\n\n" + tc.directive + "\nvar x = 1\n"
			_, bad, sup := parseSrc(t, src)
			if len(bad) != 1 {
				t.Fatalf("got %d malformed diagnostics, want 1: %v", len(bad), bad)
			}
			if bad[0].Analyzer != "pbqpvet" || !strings.Contains(bad[0].Message, "malformed suppression") {
				t.Errorf("unexpected diagnostic %+v", bad[0])
			}
			if len(sup) != 0 {
				t.Errorf("malformed directive still registered a suppression: %v", sup)
			}
		})
	}
}

func TestWellFormedDirectiveCoversTwoLines(t *testing.T) {
	src := "package p\n\n//pbqpvet:ignore floatcmp,panicfree the reason\nvar x = 1\n"
	_, bad, sup := parseSrc(t, src)
	if len(bad) != 0 {
		t.Fatalf("unexpected malformed diagnostics: %v", bad)
	}
	for _, line := range []int{3, 4} {
		for _, name := range []string{"floatcmp", "panicfree"} {
			if !sup["sup.go"][line][name] {
				t.Errorf("line %d analyzer %s not suppressed", line, name)
			}
		}
	}
	if sup["sup.go"][5]["floatcmp"] {
		t.Error("suppression leaked past the following line")
	}
	kept := sup.filter([]Diagnostic{
		{Analyzer: "floatcmp", File: "sup.go", Line: 4},
		{Analyzer: "determinism", File: "sup.go", Line: 4},
		{Analyzer: "floatcmp", File: "sup.go", Line: 9},
	})
	if len(kept) != 2 {
		t.Fatalf("filter kept %d diagnostics, want 2: %v", len(kept), kept)
	}
	if kept[0].Analyzer != "determinism" || kept[1].Line != 9 {
		t.Errorf("filter kept the wrong diagnostics: %v", kept)
	}
}

func TestSplitDirective(t *testing.T) {
	names, reason := splitDirective(" a,b  some reason here ")
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if reason != "some reason here" {
		t.Errorf("reason = %q", reason)
	}
}

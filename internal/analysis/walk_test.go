package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPackageDirsSkipsNonPackageTrees(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a/a.go", "package a\n")
	write("a/a_test.go", "package a\n") // test-only files don't make a package dir
	write("b/only_test.go", "package b\n")
	write("c/testdata/src/fix/fix.go", "package fix\n")
	write("c/c.go", "package c\n")
	write("vendor/v/v.go", "package v\n")
	write(".hidden/h.go", "package h\n")
	write("_skip/s.go", "package s\n")
	write("d/notgo.txt", "hello\n")

	dirs, err := PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	var rel []string
	for _, d := range dirs {
		r, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		rel = append(rel, filepath.ToSlash(r))
	}
	want := []string{"a", "c"}
	if strings.Join(rel, ",") != strings.Join(want, ",") {
		t.Errorf("PackageDirs = %v, want %v", rel, want)
	}
}

func TestLoaderRejectsDirOutsideModule(t *testing.T) {
	l := testLoader(t)
	if _, err := l.LoadDir(t.TempDir()); err == nil {
		t.Error("LoadDir outside the module succeeded, want error")
	}
}

func TestLoaderModulePath(t *testing.T) {
	l := testLoader(t)
	if l.ModulePath != "pbqprl" {
		t.Errorf("ModulePath = %q, want %q", l.ModulePath, "pbqprl")
	}
}

// TestRepoClean is the acceptance gate in test form: the five analyzers
// must report nothing on the production tree (the same walk the driver
// does for ./...). Everything deliberate is expected to carry a
// pbqpvet:ignore with a reason.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module vet is slow; run without -short")
	}
	l := testLoader(t)
	dirs, err := PackageDirs(l.ModuleDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		diags, err := Run(pkg, All())
		if err != nil {
			t.Fatalf("run %s: %v", dir, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// isNamedType reports whether t is (after unaliasing) the named type
// pkg.name, where pkg matches either the full import path or a
// "/"-separated suffix of it. Suffix matching keeps the analyzers
// independent of the module path — "internal/cost" identifies the cost
// package whether the module is pbqprl or a fork.
func isNamedType(t types.Type, pkg, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	p := obj.Pkg().Path()
	return p == pkg || strings.HasSuffix(p, "/"+pkg)
}

// isCost reports whether t is the cost.Cost extended-real type.
func isCost(t types.Type) bool { return isNamedType(t, "internal/cost", "Cost") }

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool { return isNamedType(t, "context", "Context") }

// pkgFunc resolves a call expression to the package-level function or
// method object it invokes, or nil for builtins, conversions, and
// dynamic calls through function values.
func pkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// funcPath returns the import path of the package declaring fn, or ""
// for builtins and universe-scope objects.
func funcPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// inCostPackage reports whether the pass's package is internal/cost
// itself, where raw extended-real arithmetic is the implementation.
func inCostPackage(p *Pass) bool {
	path := p.Pkg.Path()
	return path == "internal/cost" || strings.HasSuffix(path, "/internal/cost")
}

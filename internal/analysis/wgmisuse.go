package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WgMisuse catches the three standing WaitGroup/sync-value mistakes:
//
//   - wg.Add called inside the spawned goroutine it accounts for. The
//     spawner can reach Wait before the goroutine runs, see a zero
//     counter, and return while work is still in flight; Add must
//     happen-before the go statement.
//   - wg.Add after wg.Wait on the same WaitGroup in straight-line
//     code. Reusing a WaitGroup for a second wave is legal only once
//     Wait has returned everywhere; an Add racing a concurrent Wait
//     panics ("WaitGroup misuse"). Flagged only within one statement
//     list, where the reuse is unambiguous.
//   - sync primitives passed by value through parameters or receivers.
//     A copied mutex forks the lock state (two lockers both succeed); a
//     copied WaitGroup forks the counter. go vet's copylocks catches
//     direct copies; this check also walks struct containment so a
//     helper taking a config struct with an embedded mutex is caught.
var WgMisuse = &Analyzer{
	Name: "wgmisuse",
	Doc: "WaitGroup protocol: Add before the go statement (never inside the " +
		"spawned goroutine), never Add after Wait in the same flow, and never " +
		"pass sync primitives by value through parameters or receivers",
	RunModule: runWgMisuse,
}

func runWgMisuse(pass *ModulePass) error {
	c := &wgMisuseChecker{pass: pass, conc: pass.Conc}
	for _, u := range c.conc.units {
		if u.goSpawned {
			c.checkAddInSpawn(u)
		}
		c.checkAddAfterWait(u)
		c.checkByValueSync(u)
	}
	return nil
}

type wgMisuseChecker struct {
	pass *ModulePass
	conc *Conc
}

// checkAddInSpawn flags wg.Add inside a go-spawned literal when the
// WaitGroup is declared outside it — the Add races the spawner's Wait.
// The check is directly syntactic (not threaded through calls): a
// callee that does its own Add under its own protocol, like a pool's
// Submit, is not the bug this catches.
func (c *wgMisuseChecker) checkAddInSpawn(u *funcUnit) {
	info := u.info()
	forEachCall(u.body(), func(call *ast.CallExpr) {
		sc := classifySyncCall(info, call)
		if sc == nil || sc.typ != "WaitGroup" || sc.method != "Add" || sc.recv == nil {
			return
		}
		if declaredWithin(sc.recv, u.lit) {
			return // goroutine-local WaitGroup: its own protocol
		}
		c.pass.Reportf(call.Pos(), "%s.Add inside the goroutine it accounts for: the spawner's Wait can observe a zero counter before this runs — call Add before the go statement", sc.label)
	})
}

// declaredWithin reports whether v's declaration lies inside node's
// source range.
func declaredWithin(v *types.Var, node ast.Node) bool {
	if node == nil || v.IsField() {
		return false
	}
	return v.Pos() >= node.Pos() && v.Pos() < node.End()
}

// checkAddAfterWait flags Add-after-Wait on the same WaitGroup within
// one statement list. Straight-line source order makes the reuse
// certain; loops and cross-function reuse are left to the race
// detector rather than guessed at.
func (c *wgMisuseChecker) checkAddAfterWait(u *funcUnit) {
	info := u.info()
	for _, list := range stmtLists(u.body()) {
		waited := map[*types.Var]token.Pos{}
		for _, stmt := range list {
			forEachCall(stmt, func(call *ast.CallExpr) {
				sc := classifySyncCall(info, call)
				if sc == nil || sc.typ != "WaitGroup" || sc.recv == nil {
					return
				}
				switch sc.method {
				case "Wait":
					if _, ok := waited[sc.recv]; !ok {
						waited[sc.recv] = call.Pos()
					}
				case "Add":
					if wpos, ok := waited[sc.recv]; ok {
						c.pass.Reportf(call.Pos(), "%s.Add after its Wait (%s) reuses the WaitGroup; an Add racing a straggling Wait panics — use a fresh WaitGroup per wave", sc.label, describePos(c.pass.Fset, wpos))
					}
				}
			})
		}
	}
}

// stmtLists yields every statement list in body (the body itself,
// nested blocks, if/for/case/comm bodies), excluding nested function
// literals.
func stmtLists(body *ast.BlockStmt) [][]ast.Stmt {
	var lists [][]ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BlockStmt:
			lists = append(lists, n.List)
		case *ast.CaseClause:
			lists = append(lists, n.Body)
		case *ast.CommClause:
			lists = append(lists, n.Body)
		}
		return true
	})
	return lists
}

// checkByValueSync flags receivers and parameters whose type contains
// a sync primitive by value.
func (c *wgMisuseChecker) checkByValueSync(u *funcUnit) {
	var fields []*ast.Field
	if u.decl != nil {
		if u.decl.Recv != nil {
			fields = append(fields, u.decl.Recv.List...)
		}
		if u.decl.Type.Params != nil {
			fields = append(fields, u.decl.Type.Params.List...)
		}
	} else if u.lit.Type.Params != nil {
		fields = append(fields, u.lit.Type.Params.List...)
	}
	info := u.info()
	for _, f := range fields {
		t := info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if s := syncTypeIn(t); s != "" {
			what := "parameter"
			if u.decl != nil && u.decl.Recv != nil && len(u.decl.Recv.List) > 0 && f == u.decl.Recv.List[0] {
				what = "receiver"
			}
			c.pass.Reportf(f.Type.Pos(), "%s passes %s by value; every call copies the primitive and forks its state — take a pointer", what, s)
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition graph and enforces
// two invariants on it. First, acquisition order must be acyclic at
// lock-class granularity (a lock class is the mutex field or variable,
// so "(backend).mu" is one class across every instance): a cycle —
// including the one-edge cycle of acquiring a class while already
// holding it — is how ABBA deadlocks are spelled. Second, no lock may
// be held across a blocking operation: a channel send or receive, a
// select without a default, a WaitGroup/Cond Wait, a net/http round
// trip, or a time.Sleep. A holder blocked on peer progress stalls
// every other acquirer, and when the peer needs the same lock the stall
// is a deadlock. Both checks thread interprocedurally: calling a
// function that (transitively) acquires a lock or blocks counts at the
// call site, across package boundaries. Goroutine bodies are separate
// flows — locks held at a `go` statement are not held inside the
// spawned goroutine.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "mutex acquisition order must be acyclic across the module, and no " +
		"lock may be held across a blocking operation (channel send/receive, " +
		"select without default, WaitGroup.Wait, net/http round trips, time.Sleep)",
	RunModule: runLockOrder,
}

// lockEdge records "to was acquired while from was held", with the
// acquisition (or call) site and an optional callee the acquisition
// was reached through.
type lockEdge struct {
	from, to           *types.Var
	fromLabel, toLabel string
	pos                token.Pos
	via                string // callee name for summary-propagated edges
}

// blockFact describes why a function may block, for diagnostics at the
// call site.
type blockFact struct {
	what string
	pos  token.Pos
}

// lockSummary is what one function unit may do to the lock world:
// which lock classes it may acquire anywhere (transitively), and
// whether it may block.
type lockSummary struct {
	acquires map[*types.Var]acqSite
	block    *blockFact
}

type acqSite struct {
	label string
	pos   token.Pos
}

type lockOrderChecker struct {
	pass      *ModulePass
	conc      *Conc
	summaries map[*funcUnit]*lockSummary
	inFlight  map[*funcUnit]bool
	edges     []lockEdge
	edgeSeen  map[[2]*types.Var]bool
}

// heldLock is one entry of the ordered held set.
type heldLock struct {
	v     *types.Var
	label string
}

type heldSet []heldLock

func (h heldSet) copyAll() heldSet { return append(heldSet(nil), h...) }

func (h heldSet) names() string {
	var parts []string
	for _, l := range h {
		parts = append(parts, l.label)
	}
	return strings.Join(parts, ", ")
}

// removeLast drops the most recent occurrence of v (LIFO unlock).
func (h heldSet) removeLast(v *types.Var) heldSet {
	for i := len(h) - 1; i >= 0; i-- {
		if h[i].v == v {
			return append(h[:i:i], h[i+1:]...)
		}
	}
	return h
}

func (h heldSet) holds(v *types.Var) bool {
	for _, l := range h {
		if l.v == v {
			return true
		}
	}
	return false
}

// intersect keeps the locks present in both sets, preserving h's order.
func (h heldSet) intersect(other heldSet) heldSet {
	var out heldSet
	for _, l := range h {
		if other.holds(l.v) {
			out = append(out, l)
		}
	}
	return out
}

func runLockOrder(pass *ModulePass) error {
	c := &lockOrderChecker{
		pass:      pass,
		conc:      pass.Conc,
		summaries: map[*funcUnit]*lockSummary{},
		inFlight:  map[*funcUnit]bool{},
		edgeSeen:  map[[2]*types.Var]bool{},
	}
	for _, u := range c.conc.units {
		c.walkStmts(u, u.body().List, heldSet{})
	}
	c.reportCycles()
	return nil
}

// summary computes (memoized, cycle-safe) what unit u may acquire and
// whether it may block, folding in non-go-spawned nested literals and
// module-internal static callees. A recursion cycle resolves to the
// facts gathered so far.
func (c *lockOrderChecker) summary(u *funcUnit) *lockSummary {
	if s, ok := c.summaries[u]; ok {
		return s
	}
	if c.inFlight[u] {
		return &lockSummary{acquires: map[*types.Var]acqSite{}}
	}
	c.inFlight[u] = true
	defer delete(c.inFlight, u)
	s := &lockSummary{acquires: map[*types.Var]acqSite{}}
	c.scanSummary(u, u.body(), s)
	c.summaries[u] = s
	return s
}

// scanSummary walks node collecting acquisition and blocking facts into
// s. Nested function literals are folded in unless go-spawned (their
// bodies run on another goroutine and do not block or order this one).
func (c *lockOrderChecker) scanSummary(u *funcUnit, node ast.Node, s *lockSummary) {
	info := u.info()
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if lu := c.conc.byLit[n]; lu != nil && lu.goSpawned {
				return false
			}
			return true
		case *ast.SendStmt:
			if s.block == nil {
				s.block = &blockFact{what: "a channel send", pos: n.Pos()}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && s.block == nil {
				s.block = &blockFact{what: "a channel receive", pos: n.Pos()}
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && s.block == nil {
					s.block = &blockFact{what: "a range over a channel", pos: n.Pos()}
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) && s.block == nil {
				s.block = &blockFact{what: "a select without default", pos: n.Pos()}
			}
			// comm clauses of a non-blocking select would double-count;
			// walk only the clause bodies either way.
			for _, clause := range n.Body.List {
				for _, body := range clause.(*ast.CommClause).Body {
					ast.Inspect(body, walk)
				}
			}
			return false
		case *ast.CallExpr:
			if sc := classifySyncCall(info, n); sc != nil {
				switch {
				case isLockAcquire(sc):
					if sc.recv != nil {
						if _, ok := s.acquires[sc.recv]; !ok {
							s.acquires[sc.recv] = acqSite{label: sc.label, pos: n.Pos()}
						}
					}
				case isSyncWait(sc):
					if s.block == nil {
						s.block = &blockFact{what: "sync." + sc.typ + ".Wait", pos: n.Pos()}
					}
				}
				return true
			}
			if what := blockingStdlibCall(info, n); what != "" && s.block == nil {
				s.block = &blockFact{what: what, pos: n.Pos()}
			}
			if callee := c.conc.calleeUnit(info, n); callee != nil {
				cs := c.summary(callee)
				for v, site := range cs.acquires {
					if _, ok := s.acquires[v]; !ok {
						s.acquires[v] = site
					}
				}
				if cs.block != nil && s.block == nil {
					s.block = &blockFact{what: cs.block.what + " inside " + callee.name(), pos: n.Pos()}
				}
			}
		}
		return true
	}
	ast.Inspect(node, walk)
}

// isLockAcquire reports whether sc acquires a mutex.
func isLockAcquire(sc *syncCall) bool {
	if sc.typ != "Mutex" && sc.typ != "RWMutex" {
		return false
	}
	return sc.method == "Lock" || sc.method == "RLock"
}

// isLockRelease reports whether sc releases a mutex.
func isLockRelease(sc *syncCall) bool {
	if sc.typ != "Mutex" && sc.typ != "RWMutex" {
		return false
	}
	return sc.method == "Unlock" || sc.method == "RUnlock"
}

// isSyncWait reports whether sc is a blocking sync Wait.
func isSyncWait(sc *syncCall) bool {
	return sc.method == "Wait" && (sc.typ == "WaitGroup" || sc.typ == "Cond")
}

// blockingStdlibCall recognizes standard-library calls that block on
// peer progress or wall-clock time.
func blockingStdlibCall(info *types.Info, call *ast.CallExpr) string {
	fn := pkgFunc(info, call)
	if fn == nil {
		return ""
	}
	switch funcPath(fn) {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "a net/http round trip (http." + fn.Name() + ")"
		}
	}
	return ""
}

// selectHasDefault reports whether sel has a default clause (making it
// non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if clause.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// walkStmts is the intraprocedural flow walk: it tracks the ordered
// held-lock set through a statement list, records acquisition-order
// edges, and reports blocking operations reached while holding. It
// returns the held set at fall-through and whether the list always
// terminates (returns, branches, panics) before falling through.
// Branch merges are conservative: the fall-through held set of a
// conditional is the intersection of its falling-through arms, so an
// early-unlock-and-return branch does not poison the main path.
func (c *lockOrderChecker) walkStmts(u *funcUnit, stmts []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, stmt := range stmts {
		var terminated bool
		held, terminated = c.walkStmt(u, stmt, held)
		if terminated {
			return held, true
		}
	}
	return held, false
}

func (c *lockOrderChecker) walkStmt(u *funcUnit, stmt ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		held = c.scanExpr(u, s.X, held)
		if isTerminatorCall(u.info(), s.X) {
			return held, true
		}
	case *ast.SendStmt:
		held = c.scanExpr(u, s.Chan, held)
		held = c.scanExpr(u, s.Value, held)
		c.reportBlocked(u, held, "a channel send", s.Arrow)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = c.scanExpr(u, e, held)
		}
		for _, e := range s.Lhs {
			held = c.scanExpr(u, e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						held = c.scanExpr(u, e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		held = c.scanExpr(u, s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps mu held to function end — exactly the
		// critical-section idiom; leave it held for the rest of the walk.
		// Other deferred work runs outside this flow; only its argument
		// expressions evaluate here.
		if sc := classifySyncCall(u.info(), s.Call); sc == nil || !isLockRelease(sc) {
			for _, a := range s.Call.Args {
				held = c.scanExpr(u, a, held)
			}
		}
	case *ast.GoStmt:
		// The spawned body is a separate flow; only the call's argument
		// expressions evaluate on this goroutine.
		for _, a := range s.Call.Args {
			held = c.scanExpr(u, a, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = c.scanExpr(u, e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		var terminated bool
		held, terminated = c.walkStmts(u, s.List, held)
		return held, terminated
	case *ast.LabeledStmt:
		return c.walkStmt(u, s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(u, s.Init, held)
		}
		held = c.scanExpr(u, s.Cond, held)
		bodyExit, bodyTerm := c.walkStmts(u, s.Body.List, held.copyAll())
		elseExit, elseTerm := held, false
		if s.Else != nil {
			elseExit, elseTerm = c.walkStmt(u, s.Else, held.copyAll())
		}
		switch {
		case bodyTerm && elseTerm:
			return held, true
		case bodyTerm:
			return elseExit, false
		case elseTerm:
			return bodyExit, false
		default:
			return bodyExit.intersect(elseExit), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(u, s.Init, held)
		}
		if s.Cond != nil {
			held = c.scanExpr(u, s.Cond, held)
		}
		c.walkStmts(u, s.Body.List, held.copyAll())
		if s.Post != nil {
			c.walkStmt(u, s.Post, held.copyAll())
		}
	case *ast.RangeStmt:
		held = c.scanExpr(u, s.X, held)
		if t := u.info().TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.reportBlocked(u, held, "a range over a channel", s.Pos())
			}
		}
		c.walkStmts(u, s.Body.List, held.copyAll())
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(u, s.Init, held)
		}
		if s.Tag != nil {
			held = c.scanExpr(u, s.Tag, held)
		}
		return c.walkClauses(u, s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(u, s.Init, held)
		}
		return c.walkClauses(u, s.Body, held)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			c.reportBlocked(u, held, "a select without default", s.Pos())
		}
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			// The comm op's blocking nature is the select's (already
			// reported above); still scan it for calls and locks.
			arm := held.copyAll()
			if cc.Comm != nil {
				arm, _ = c.walkCommStmt(u, cc.Comm, arm)
			}
			c.walkStmts(u, cc.Body, arm)
		}
	}
	return held, false
}

// walkClauses merges the held sets of a switch's case clauses: the
// fall-through set is the intersection of the entry set (taken when no
// case matches or there is no default) and every non-terminating
// clause exit; the switch terminates only when a default exists and
// every clause terminates.
func (c *lockOrderChecker) walkClauses(u *funcUnit, body *ast.BlockStmt, held heldSet) (heldSet, bool) {
	exits := []heldSet{}
	hasDefault := false
	allTerminate := true
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		arm := held.copyAll()
		for _, e := range cc.List {
			arm = c.scanExpr(u, e, arm)
		}
		exit, term := c.walkStmts(u, cc.Body, arm)
		if !term {
			allTerminate = false
			exits = append(exits, exit)
		}
	}
	if hasDefault && allTerminate {
		return held, true
	}
	out := held
	if hasDefault && len(exits) > 0 {
		out = exits[0]
		exits = exits[1:]
	}
	for _, e := range exits {
		out = out.intersect(e)
	}
	return out, false
}

// walkCommStmt processes a select communication statement without
// re-reporting its channel operation (the select itself was already
// classified).
func (c *lockOrderChecker) walkCommStmt(u *funcUnit, stmt ast.Stmt, held heldSet) (heldSet, bool) {
	switch s := stmt.(type) {
	case *ast.SendStmt:
		held = c.scanExpr(u, s.Chan, held)
		held = c.scanExpr(u, s.Value, held)
		return held, false
	case *ast.AssignStmt:
		// case v := <-ch: scan operands of the receive, skip the receive.
		for _, e := range s.Rhs {
			if un, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
				held = c.scanExpr(u, un.X, held)
				continue
			}
			held = c.scanExpr(u, e, held)
		}
		return held, false
	case *ast.ExprStmt:
		if un, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && un.Op == token.ARROW {
			return c.scanExpr(u, un.X, held), false
		}
	}
	return c.walkStmt(u, stmt, held)
}

// scanExpr processes every call and channel receive inside expr (in
// evaluation region, skipping nested function literals), updating and
// returning the held set.
func (c *lockOrderChecker) scanExpr(u *funcUnit, expr ast.Expr, held heldSet) heldSet {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.reportBlocked(u, held, "a channel receive", n.Pos())
			}
		case *ast.CallExpr:
			held = c.handleCall(u, n, held)
		}
		return true
	})
	return held
}

// handleCall applies one call's lock effects: acquisitions push the
// held set and record order edges; releases pop; blocking calls and
// calls into functions that may acquire or block are checked against
// the current held set.
func (c *lockOrderChecker) handleCall(u *funcUnit, call *ast.CallExpr, held heldSet) heldSet {
	info := u.info()
	if sc := classifySyncCall(info, call); sc != nil {
		switch {
		case isLockAcquire(sc):
			if sc.recv == nil {
				return held
			}
			for _, h := range held {
				c.addEdge(lockEdge{from: h.v, to: sc.recv, fromLabel: h.label, toLabel: sc.label, pos: call.Pos()})
			}
			return append(held, heldLock{v: sc.recv, label: sc.label})
		case isLockRelease(sc):
			if sc.recv != nil {
				return held.removeLast(sc.recv)
			}
		case isSyncWait(sc):
			c.reportBlocked(u, held, "sync."+sc.typ+".Wait", call.Pos())
		}
		return held
	}
	if what := blockingStdlibCall(info, call); what != "" {
		c.reportBlocked(u, held, what, call.Pos())
		return held
	}
	if callee := c.conc.calleeUnit(info, call); callee != nil {
		cs := c.summary(callee)
		if len(held) > 0 {
			for v, site := range cs.acquires {
				last := held[len(held)-1]
				c.addEdge(lockEdge{from: last.v, to: v, fromLabel: last.label, toLabel: site.label,
					pos: call.Pos(), via: callee.name()})
			}
			if cs.block != nil {
				c.reportBlocked(u, held, cs.block.what+" inside "+callee.name()+
					" ("+describePos(c.pass.Fset, cs.block.pos)+")", call.Pos())
			}
		}
	}
	return held
}

// addEdge records one acquisition-order edge, keeping the first site
// per (from, to) class pair (unit iteration order is deterministic, so
// the kept site is too).
func (c *lockOrderChecker) addEdge(e lockEdge) {
	key := [2]*types.Var{e.from, e.to}
	if c.edgeSeen[key] {
		return
	}
	c.edgeSeen[key] = true
	c.edges = append(c.edges, e)
}

// reportBlocked emits the held-across-blocking-operation diagnostic.
func (c *lockOrderChecker) reportBlocked(u *funcUnit, held heldSet, what string, pos token.Pos) {
	if len(held) == 0 {
		return
	}
	c.pass.Reportf(pos, "%s held across %s; a blocked holder stalls every other acquirer — release the lock first or make the operation non-blocking", held.names(), what)
}

// reportCycles finds acquisition-order cycles in the recorded edge
// graph and reports every edge that participates in one, at its
// acquisition site.
func (c *lockOrderChecker) reportCycles() {
	adj := map[*types.Var][]*types.Var{}
	for _, e := range c.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	reaches := func(from, to *types.Var) bool {
		seen := map[*types.Var]bool{}
		stack := []*types.Var{from}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if v == to {
				return true
			}
			if seen[v] {
				continue
			}
			seen[v] = true
			stack = append(stack, adj[v]...)
		}
		return false
	}
	for _, e := range c.edges {
		if e.from == e.to {
			c.pass.Reportf(e.pos, "acquires %s while already holding %s%s; sync mutexes are not reentrant — two instances lock in arbitrary order and one instance self-deadlocks", e.toLabel, e.fromLabel, viaSuffix(e))
			continue
		}
		if reaches(e.to, e.from) {
			c.pass.Reportf(e.pos, "acquiring %s while holding %s%s creates a lock-order cycle (%s is elsewhere acquired while %s is held); impose one module-wide acquisition order", e.toLabel, e.fromLabel, viaSuffix(e), e.fromLabel, e.toLabel)
		}
	}
}

func viaSuffix(e lockEdge) string {
	if e.via == "" {
		return ""
	}
	return " (via call to " + e.via + ")"
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicMix enforces access-mode consistency: once any code passes a
// variable's address to a sync/atomic function, every other access to
// that variable must also be atomic. A plain read races the atomic
// writers (the race detector only catches the schedules it sees), and
// a plain write can tear the value out from under a concurrent
// CompareAndSwap. The one exception is construction — New*/new*
// functions and init, plus composite-literal field initialization —
// where the object is not yet shared. The fix is usually mechanical:
// use the sync/atomic typed wrappers (atomic.Int64 and friends), which
// make mixed access unrepresentable.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "a variable accessed via sync/atomic anywhere must be accessed " +
		"atomically everywhere outside its constructor; plain reads race the " +
		"atomic writers and plain writes tear CompareAndSwap",
	RunModule: runAtomicMix,
}

func runAtomicMix(pass *ModulePass) error {
	c := &atomicMixChecker{pass: pass, conc: pass.Conc, atomicVars: map[*types.Var]string{}}
	// Pass 1: every &x handed to a sync/atomic function marks x.
	for _, u := range c.conc.units {
		forEachCall(u.body(), func(call *ast.CallExpr) {
			fn := pkgFunc(u.info(), call)
			if fn == nil || funcPath(fn) != "sync/atomic" || len(call.Args) == 0 {
				return
			}
			// Only shared-by-design variables — struct fields and
			// package-level vars — are tracked. A function-local counter
			// updated atomically by worker goroutines and read plainly
			// after the join is a correct idiom, not a mix.
			if v := addrOperand(u.info(), call.Args[0]); v != nil && isSharedVar(v) {
				if _, ok := c.atomicVars[v]; !ok {
					c.atomicVars[v] = "atomic." + fn.Name() + " at " + describePos(pass.Fset, call.Pos())
				}
			}
		})
	}
	if len(c.atomicVars) == 0 {
		return nil
	}
	// Pass 2: find plain accesses to marked variables.
	for _, u := range c.conc.units {
		if inConstructor(u) {
			continue
		}
		c.scanPlain(u)
	}
	return nil
}

type atomicMixChecker struct {
	pass       *ModulePass
	conc       *Conc
	atomicVars map[*types.Var]string // var -> first atomic site, for the message
}

// isSharedVar reports whether v is a struct field or package-level
// variable.
func isSharedVar(v *types.Var) bool {
	if v.IsField() {
		return true
	}
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// inConstructor reports whether u (or, for literals, the named
// function it is nested in) is construction code: a New*/new* function
// or init, where the object is not yet published.
func inConstructor(u *funcUnit) bool {
	for ; u != nil; u = u.parent {
		if u.decl == nil {
			continue
		}
		name := u.decl.Name.Name
		if name == "init" || strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
			return true
		}
	}
	return false
}

// scanPlain reports every use of a marked variable in u that is not
// part of a sync/atomic call or a composite-literal initialization.
func (c *atomicMixChecker) scanPlain(u *funcUnit) {
	info := u.info()
	// Idents appearing inside a sync/atomic call's address argument or
	// as composite-literal keys are sanctioned; writes need their own
	// wording.
	allowed := map[*ast.Ident]bool{}
	writes := map[*ast.Ident]bool{}
	markTerminal := func(e ast.Expr, set map[*ast.Ident]bool) {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			set[x] = true
		case *ast.SelectorExpr:
			set[x.Sel] = true
		}
	}
	ast.Inspect(u.body(), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n != u.lit {
				return false // separate unit
			}
		case *ast.CallExpr:
			if fn := pkgFunc(info, n); fn != nil && funcPath(fn) == "sync/atomic" && len(n.Args) > 0 {
				if un, ok := ast.Unparen(n.Args[0]).(*ast.UnaryExpr); ok {
					markTerminal(un.X, allowed)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						allowed[id] = true
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markTerminal(lhs, writes)
			}
		case *ast.IncDecStmt:
			markTerminal(n.X, writes)
		}
		return true
	})
	ast.Inspect(u.body(), func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != u.lit {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || allowed[id] {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		site, marked := c.atomicVars[v]
		if !marked {
			return true
		}
		mode := "read"
		if writes[id] {
			mode = "write"
		}
		c.pass.Reportf(id.Pos(), "plain %s of %s, which is accessed atomically elsewhere (%s); mixed access races — use sync/atomic everywhere or a typed atomic wrapper", mode, labelForVar(info, v, nil), site)
		return true
	})
}

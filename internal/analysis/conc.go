package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Concurrency index shared by the lockorder, goroleak, atomicmix and
// wgmisuse analyzers: a module-wide inventory of function bodies —
// named declarations plus function literals, with go-spawned literals
// split out as roots of their own asynchronous flows — and sync-object
// identity, which resolves an expression like b.mu.Lock() to the
// *types.Var of the mutex field so "which lock" is a stable fact
// across packages (the loader memoizes type-checked packages, so field
// objects are shared module-wide). ctxpoll and hotalloc thread context
// and allocation facts through the same-package call graph the same
// way; this generalizes the technique to the whole module.

// funcUnit is one analyzable body: a named function or method, or a
// function literal. Go-spawned literals are flagged because their
// bodies run asynchronously — their lock acquisitions are not ordered
// after the spawner's held locks, and their lifecycle is goroleak's
// subject.
type funcUnit struct {
	pkg       *Package
	decl      *ast.FuncDecl // nil for literals
	lit       *ast.FuncLit  // nil for declarations
	obj       *types.Func   // nil for literals
	parent    *funcUnit     // enclosing unit for literals
	goStmt    *ast.GoStmt   // the spawning statement for go-literals
	goSpawned bool
}

// body returns the unit's statement block.
func (u *funcUnit) body() *ast.BlockStmt {
	if u.decl != nil {
		return u.decl.Body
	}
	return u.lit.Body
}

// pos returns the unit's declaration position.
func (u *funcUnit) pos() token.Pos {
	if u.decl != nil {
		return u.decl.Pos()
	}
	return u.lit.Pos()
}

// name renders the unit for diagnostics.
func (u *funcUnit) name() string {
	if u.decl != nil {
		return u.decl.Name.Name
	}
	if u.parent != nil {
		return "func literal in " + u.parent.name()
	}
	return "func literal"
}

// info returns the unit's type-check results.
func (u *funcUnit) info() *types.Info { return u.pkg.Info }

// Conc is the module-wide concurrency index.
type Conc struct {
	pkgs    []*Package
	units   []*funcUnit
	byObj   map[*types.Func]*funcUnit
	byLit   map[*ast.FuncLit]*funcUnit
	markers map[string]map[int]string // file -> line -> daemon reason
}

// newConc indexes every function body in pkgs. Package, file and
// declaration order are the loader's, so unit iteration — and with it
// every diagnostic the concurrency analyzers emit — is deterministic.
func newConc(pkgs []*Package) *Conc {
	c := &Conc{
		pkgs:    pkgs,
		byObj:   map[*types.Func]*funcUnit{},
		byLit:   map[*ast.FuncLit]*funcUnit{},
		markers: map[string]map[int]string{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			c.collectDaemonMarkers(pkg, f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				u := &funcUnit{pkg: pkg, decl: fd}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					u.obj = obj
					c.byObj[obj] = u
				}
				c.units = append(c.units, u)
				c.collectLits(u)
			}
		}
	}
	return c
}

// collectLits registers every function literal nested in u's body as
// its own unit, marking literals that are the operand of a go
// statement. Literals nested inside other literals get the inner
// literal as parent.
func (c *Conc) collectLits(u *funcUnit) {
	goLits := map[*ast.FuncLit]*ast.GoStmt{}
	ast.Inspect(u.body(), func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				goLits[lit] = g
			}
		}
		return true
	})
	var visit func(parent *funcUnit, body *ast.BlockStmt)
	visit = func(parent *funcUnit, body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			lu := &funcUnit{pkg: u.pkg, lit: lit, parent: parent}
			if g, spawned := goLits[lit]; spawned {
				lu.goSpawned = true
				lu.goStmt = g
			}
			c.byLit[lit] = lu
			c.units = append(c.units, lu)
			visit(lu, lit.Body)
			return false // nested literals handled by the recursive visit
		})
	}
	visit(u, u.body())
}

// daemonMarker opts a goroutine spawn out of goroleak's join/exit
// requirement, with a mandatory reason:
//
//	//pbqpvet:daemon serves until process exit; ListenAndServe has no join handle
//	go srv.serve()
//
// The directive binds to its own line and the next, like
// //pbqpvet:ignore, and is also honored in the doc comment of a named
// function spawned with `go f()`.
const daemonMarker = "pbqpvet:daemon"

// collectDaemonMarkers indexes //pbqpvet:daemon directives by file and
// line.
func (c *Conc) collectDaemonMarkers(pkg *Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
			rest, ok := strings.CutPrefix(text, daemonMarker)
			if !ok || (rest != "" && !strings.HasPrefix(rest, " ")) {
				continue
			}
			pos := pkg.Fset.Position(cm.Pos())
			lines := c.markers[pos.Filename]
			if lines == nil {
				lines = map[int]string{}
				c.markers[pos.Filename] = lines
			}
			reason := strings.TrimSpace(rest)
			lines[pos.Line] = reason
			lines[pos.Line+1] = reason
		}
	}
}

// daemonReason returns the //pbqpvet:daemon reason covering pos, with
// ok reporting whether a marker is present at all (an empty reason is
// a malformed marker the caller should diagnose).
func (c *Conc) daemonReason(fset *token.FileSet, pos token.Pos) (reason string, ok bool) {
	p := fset.Position(pos)
	reason, ok = c.markers[p.Filename][p.Line]
	return reason, ok
}

// calleeUnit resolves a static call to the module-internal unit it
// invokes, or nil for builtins, stdlib calls, and dynamic calls
// through function values.
func (c *Conc) calleeUnit(info *types.Info, call *ast.CallExpr) *funcUnit {
	if fn := pkgFunc(info, call); fn != nil {
		return c.byObj[fn]
	}
	return nil
}

// syncCall is one classified method call on a sync primitive.
type syncCall struct {
	recv   *types.Var // field or variable holding the primitive; may be nil
	label  string     // stable human-readable identity, e.g. "(backend).mu"
	typ    string     // "Mutex", "RWMutex", "WaitGroup", "Once", "Cond"
	method string     // "Lock", "RLock", "Unlock", "Wait", "Add", "Done", ...
}

// classifySyncCall recognizes method calls on package sync primitives
// (directly or through an embedded field) and resolves the identity of
// the variable or field holding the primitive.
func classifySyncCall(info *types.Info, call *ast.CallExpr) *syncCall {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	recvType := sig.Recv().Type()
	if p, ok := recvType.(*types.Pointer); ok {
		recvType = p.Elem()
	}
	named, ok := types.Unalias(recvType).(*types.Named)
	if !ok {
		return nil
	}
	sc := &syncCall{typ: named.Obj().Name(), method: fn.Name()}
	sc.recv, sc.label = resolveSyncOperand(info, sel)
	if sc.label == "" {
		sc.label = "sync." + sc.typ
	}
	return sc
}

// resolveSyncOperand resolves the receiver expression of a sync method
// call (the `b.mu` of b.mu.Lock(), or the `t` of t.Lock() on a type
// embedding sync.Mutex) to the variable or field object holding the
// primitive, plus a stable label. Operands that are not simple
// variable/field chains (map index, function result) resolve to nil.
func resolveSyncOperand(info *types.Info, sel *ast.SelectorExpr) (*types.Var, string) {
	// Promoted method through an embedded field: follow the selection's
	// field index path to the embedded primitive.
	if s, ok := info.Selections[sel]; ok && len(s.Index()) > 1 {
		t := s.Recv()
		owner := ""
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			owner = named.Obj().Name()
		}
		var field *types.Var
		for _, idx := range s.Index()[:len(s.Index())-1] {
			st, ok := derefStruct(t)
			if !ok {
				return nil, ""
			}
			field = st.Field(idx)
			t = field.Type()
		}
		if owner == "" {
			return field, "(struct)." + field.Name()
		}
		return field, "(" + owner + ")." + field.Name()
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v, labelForVar(info, v, nil)
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v, labelForVar(info, v, x)
		}
	}
	return nil, ""
}

// derefStruct unwraps pointers and named types down to a struct type.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// labelForVar renders a stable identity label: "(Owner).field" for
// struct fields (owner recovered from the selection when available),
// "pkg.name" for package-level variables, plain name for locals.
func labelForVar(info *types.Info, v *types.Var, selX *ast.SelectorExpr) string {
	if v.IsField() {
		if selX != nil {
			if s, ok := info.Selections[selX]; ok {
				t := s.Recv()
				if p, ok := t.Underlying().(*types.Pointer); ok {
					t = p.Elem()
				}
				if named, ok := types.Unalias(t).(*types.Named); ok {
					return "(" + named.Obj().Name() + ")." + v.Name()
				}
			}
		}
		return "(struct)." + v.Name()
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

// syncTypeIn reports the first sync primitive type (sync.Mutex,
// sync.RWMutex, sync.WaitGroup, sync.Once, sync.Cond, sync.Map,
// sync.Pool, or any sync/atomic type) contained by value in t —
// directly, through struct fields, or through array elements. Pointers,
// slices, maps and channels break containment: sharing through them is
// the correct idiom.
func syncTypeIn(t types.Type) string {
	return syncTypeInSeen(t, map[types.Type]bool{})
}

func syncTypeInSeen(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := types.Unalias(t).(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync", "sync/atomic":
				return obj.Pkg().Path() + "." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if s := syncTypeInSeen(u.Field(i).Type(), seen); s != "" {
				return s
			}
		}
	case *types.Array:
		return syncTypeInSeen(u.Elem(), seen)
	}
	return ""
}

// addrOperand resolves a &x.f / &x argument to the variable or field
// object it addresses, for atomicmix's sync/atomic call-site
// collection.
func addrOperand(info *types.Info, arg ast.Expr) *types.Var {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(unary.X).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}

// forEachCall walks node, invoking fn on every call expression outside
// nested function literals (which are separate units).
func forEachCall(node ast.Node, fn func(*ast.CallExpr)) {
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}

// reachableDecls returns the same-package function declarations
// reachable from root through static calls, root included — the
// reachability kernel shared by ctxpoll and hotalloc.
func reachableDecls(info *types.Info, decls map[*types.Func]*ast.FuncDecl, root *types.Func) []*ast.FuncDecl {
	seen := map[*types.Func]bool{root: true}
	queue := []*types.Func{root}
	var out []*ast.FuncDecl
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd, ok := decls[fn]
		if !ok {
			continue
		}
		out = append(out, fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := pkgFunc(info, call); callee != nil && !seen[callee] {
					if _, local := decls[callee]; local {
						seen[callee] = true
						queue = append(queue, callee)
					}
				}
			}
			return true
		})
	}
	return out
}

// isTerminatorCall reports whether a statement-level expression is a
// call that never returns: panic, os.Exit, runtime.Goexit, or a
// log.Fatal variant. Statement lists are cut at such calls when
// analyzing fall-through flow.
func isTerminatorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := pkgFunc(info, call)
	if fn == nil {
		return false
	}
	switch funcPath(fn) {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal")
	}
	return false
}

// describePos renders a position for cross-reference inside diagnostic
// messages (file base name and line, not the full path).
func describePos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

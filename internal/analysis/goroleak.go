package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every spawned goroutine to have a bounded exit
// path. Concretely, the code reachable from the goroutine body
// (transitively through module-internal calls, excluding further
// spawns) must either communicate — select, channel send/receive/
// close, range over a channel — poll a context (ctx.Done / ctx.Err),
// or signal a WaitGroup join via Done; and it must not contain a loop
// that literally cannot exit (`for { ... }` with no break, return, or
// terminating call). A goroutine with none of these runs unobserved
// until process exit: nothing can stop it, nothing waits for it, and
// under repeated spawning it is a leak. Deliberate process-lifetime
// daemons opt out with //pbqpvet:daemon <reason> on the go statement
// (or the spawned function's doc comment).
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement needs a bounded exit path: a ctx.Done/quit-channel " +
		"select, a WaitGroup join, or channel communication reachable from the " +
		"body, and no for-loop that cannot exit; //pbqpvet:daemon <reason> marks " +
		"deliberate process-lifetime goroutines",
	RunModule: runGoroLeak,
}

// leakFacts summarizes the lifecycle-relevant behavior reachable from
// one function unit (excluding nested go spawns, which are their own
// flows).
type leakFacts struct {
	chanOp       bool      // send, receive, close, select, range-over-channel
	wgDone       bool      // sync.WaitGroup.Done — a join is observable
	ctxPoll      bool      // ctx.Done() / ctx.Err()
	exitlessLoop token.Pos // a `for {}` with no way out, or NoPos
}

func (f *leakFacts) merge(other *leakFacts) {
	f.chanOp = f.chanOp || other.chanOp
	f.wgDone = f.wgDone || other.wgDone
	f.ctxPoll = f.ctxPoll || other.ctxPoll
	if !f.exitlessLoop.IsValid() {
		f.exitlessLoop = other.exitlessLoop
	}
}

type goroLeakChecker struct {
	pass     *ModulePass
	conc     *Conc
	facts    map[*funcUnit]*leakFacts
	inFlight map[*funcUnit]bool
}

func runGoroLeak(pass *ModulePass) error {
	c := &goroLeakChecker{
		pass:     pass,
		conc:     pass.Conc,
		facts:    map[*funcUnit]*leakFacts{},
		inFlight: map[*funcUnit]bool{},
	}
	for _, u := range c.conc.units {
		ast.Inspect(u.body(), func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // literals are their own units; their spawns report there
			}
			if g, ok := n.(*ast.GoStmt); ok {
				c.checkSpawn(u, g)
			}
			return true
		})
	}
	return nil
}

// checkSpawn validates one go statement found in unit u.
func (c *goroLeakChecker) checkSpawn(u *funcUnit, g *ast.GoStmt) {
	spawned, spawnedName := c.spawnedUnit(u, g)
	if reason, ok := c.spawnMarker(g, spawned); ok {
		if reason == "" {
			c.pass.Reportf(g.Pos(), "malformed daemon marker: want //pbqpvet:daemon <reason>")
		}
		return
	}
	if spawned == nil {
		// Dynamic call through a function value: the body is unknowable
		// statically; stay silent rather than guess.
		return
	}
	facts := c.unitFacts(spawned)
	if facts.exitlessLoop.IsValid() {
		c.pass.Reportf(g.Pos(), "goroutine %s contains a for-loop with no exit path (%s): no break, return, or terminating call — select on ctx.Done() or a quit channel, or mark the spawn //pbqpvet:daemon <reason>",
			spawnedName, describePos(c.pass.Fset, facts.exitlessLoop))
		return
	}
	if !facts.chanOp && !facts.wgDone && !facts.ctxPoll {
		c.pass.Reportf(g.Pos(), "goroutine %s is fire-and-forget: nothing joins it (no WaitGroup.Done), nothing can stop it (no ctx.Done/quit-channel select), and it communicates on no channel — bound its lifetime or mark the spawn //pbqpvet:daemon <reason>",
			spawnedName)
	}
}

// spawnedUnit resolves the goroutine body: a literal operand, or a
// static call to a module-internal function.
func (c *goroLeakChecker) spawnedUnit(u *funcUnit, g *ast.GoStmt) (*funcUnit, string) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		lu := c.conc.byLit[lit]
		return lu, "(func literal)"
	}
	if fn := pkgFunc(u.info(), g.Call); fn != nil {
		if cu := c.conc.byObj[fn]; cu != nil {
			return cu, fn.Name()
		}
	}
	return nil, ""
}

// spawnMarker looks for //pbqpvet:daemon covering the go statement
// itself or, for named spawns, the spawned function's declaration.
func (c *goroLeakChecker) spawnMarker(g *ast.GoStmt, spawned *funcUnit) (string, bool) {
	if reason, ok := c.conc.daemonReason(c.pass.Fset, g.Pos()); ok {
		return reason, true
	}
	if spawned != nil && spawned.decl != nil {
		if reason, ok := c.conc.daemonReason(c.pass.Fset, spawned.decl.Pos()); ok {
			return reason, true
		}
	}
	return "", false
}

// unitFacts computes (memoized, cycle-safe) the lifecycle facts
// reachable from u: its own body, non-spawned nested literals, and
// module-internal callees. Nested go statements are excluded — a
// goroutine does not inherit a bounded lifetime from goroutines it
// spawns.
func (c *goroLeakChecker) unitFacts(u *funcUnit) *leakFacts {
	if f, ok := c.facts[u]; ok {
		return f
	}
	if c.inFlight[u] {
		return &leakFacts{}
	}
	c.inFlight[u] = true
	defer delete(c.inFlight, u)
	f := &leakFacts{}
	c.scanFacts(u, f)
	c.facts[u] = f
	return f
}

func (c *goroLeakChecker) scanFacts(u *funcUnit, f *leakFacts) {
	info := u.info()
	// Calls that are the operand of a go statement are spawns, not
	// synchronous callees: the spawner does not inherit their lifecycle.
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(u.body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})
	ast.Inspect(u.body(), func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if lu := c.conc.byLit[n]; lu != nil && !lu.goSpawned {
				f.merge(c.unitFacts(lu))
			}
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			f.chanOp = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				f.chanOp = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					f.chanOp = true
				}
			}
		case *ast.ForStmt:
			if n.Cond == nil && !f.exitlessLoop.IsValid() && loopIsExitless(info, n) {
				f.exitlessLoop = n.Pos()
			}
		case *ast.CallExpr:
			if !goCalls[n] {
				c.scanCall(info, n, f)
			}
		}
		return true
	})
}

func (c *goroLeakChecker) scanCall(info *types.Info, call *ast.CallExpr, f *leakFacts) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			f.chanOp = true
			return
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// ctx.Done() / ctx.Err() on a context.Context receiver.
		if t := info.TypeOf(sel.X); t != nil && isContext(t) {
			if sel.Sel.Name == "Done" || sel.Sel.Name == "Err" {
				f.ctxPoll = true
				return
			}
		}
	}
	if sc := classifySyncCall(info, call); sc != nil {
		if sc.typ == "WaitGroup" && sc.method == "Done" {
			f.wgDone = true
		}
		return
	}
	if cu := c.conc.calleeUnit(info, call); cu != nil {
		f.merge(c.unitFacts(cu))
	}
}

// loopIsExitless reports whether a `for { ... }` loop (no condition)
// has no way out: no return, no terminating call, and no break that
// targets it. Unlabeled breaks inside nested loops, switches, and
// selects bind to the inner statement and do not count; any labeled
// break is credited (resolving labels precisely buys little here).
// Nested function literals run on their own and cannot break the loop.
func loopIsExitless(info *types.Info, loop *ast.ForStmt) bool {
	exits := false
	var walk func(n ast.Node, breakable bool) // breakable: an unlabeled break here targets an inner stmt
	walk = func(n ast.Node, nested bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if exits {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
				return false
			case *ast.BranchStmt:
				if m.Tok == token.GOTO {
					exits = true // assume the goto leaves the loop
					return false
				}
				if m.Tok == token.BREAK && (m.Label != nil || !nested) {
					exits = true
					return false
				}
			case *ast.ExprStmt:
				if isTerminatorCall(info, m.X) {
					exits = true
					return false
				}
			case *ast.ForStmt:
				if m == loop {
					return true
				}
				walk(m.Body, true)
				return false
			case *ast.RangeStmt:
				walk(m.Body, true)
				return false
			case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if m != n {
					walkBodies(m, func(body ast.Node) { walk(body, true) })
					return false
				}
			}
			return true
		})
	}
	walk(loop, false)
	return !exits
}

// walkBodies applies fn to the clause bodies of a switch or select.
func walkBodies(n ast.Node, fn func(ast.Node)) {
	switch s := n.(type) {
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			for _, stmt := range c.(*ast.CaseClause).Body {
				fn(stmt)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			for _, stmt := range c.(*ast.CaseClause).Body {
				fn(stmt)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			for _, stmt := range c.(*ast.CommClause).Body {
				fn(stmt)
			}
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree keeps panics out of library code paths: a panic that
// escapes a solver or the trainer kills the whole process (or, in the
// self-play worker pool, an entire training run), so libraries must
// return errors. Panics are allowed in Must* constructors (whose
// documented contract is to panic) and in init functions (config
// validation at process start, before any work is at risk); package
// main is exempt because a CLI's panic is its own problem. Everything
// else needs a //pbqpvet:ignore with a justification — typically a
// documented API-contract panic on caller error.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc: "flags panic calls in library packages outside Must* constructors " +
		"and init-time validation; libraries return errors",
	Run: runPanicFree,
}

func runPanicFree(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if strings.HasPrefix(name, "Must") || (name == "init" && fd.Recv == nil) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
					pass.Reportf(call.Pos(), "panic in library function %s; return an error or move the check into a Must* wrapper", name)
				}
				return true
			})
		}
	}
	return nil
}

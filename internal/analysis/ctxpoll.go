package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxrootMarker designates a context-taking function as an additional
// ctxpoll root: everything reachable from it is held to the same
// polling contract as a SolveCtx implementation. Written as a
// doc-comment line, optionally followed by a reason:
//
//	//pbqpvet:ctxroot bounded retry loop must stay cancellable
//	func (r *Router) forward(ctx context.Context, ...) ...
//
// Serving-path code (the router's forward/retry loops, health probes)
// is not reachable from any SolveCtx, but a forgotten poll there turns
// a request deadline into a hang just the same — the marker opts those
// call trees into the sweep.
const ctxrootMarker = "pbqpvet:ctxroot"

// CtxPoll enforces the solve.ContextSolver contract: a SolveCtx
// implementation must actually poll its context, and every unbounded
// loop reachable from it (same-package static calls) must contain a
// poll — a ctx.Err()/ctx.Done() check, a call to a same-package helper
// that polls, or delegation to a callee that receives the context.
// Counting loops (init; cond; post) and range loops over non-channel
// operands are bounded by data size and exempt; `for {}` and
// condition-only loops are where a forgotten poll turns a deadline into
// a hang. Functions marked //pbqpvet:ctxroot are swept as additional
// roots under the same rules.
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "every SolveCtx implementation (and every //pbqpvet:ctxroot " +
		"function) must reach a ctx.Err()/ctx.Done() check from each " +
		"unbounded loop so cancellation can interrupt the work",
	Run: runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	c := &ctxChecker{
		pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		memo:     map[*types.Func]int{},
		reported: map[*ast.FuncDecl]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					c.decls[obj] = fd
				}
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			isSolve := fd.Recv != nil && fd.Name.Name == "SolveCtx" && c.hasCtxParam(fd)
			isMarked := hasCtxrootMarker(fd)
			if isMarked && !c.hasCtxParam(fd) {
				pass.Reportf(fd.Pos(), "function marked //pbqpvet:ctxroot takes no context.Context; the marker asserts a cancellation contract it cannot honor")
				continue
			}
			if !isSolve && !isMarked {
				continue
			}
			if !c.polls(fd.Body) {
				if isSolve {
					pass.Reportf(fd.Pos(), "SolveCtx implementation never checks its context; cancellation and deadlines are silently ignored")
				} else {
					pass.Reportf(fd.Pos(), "function marked //pbqpvet:ctxroot never checks its context; cancellation and deadlines are silently ignored")
				}
				continue
			}
			obj := pass.Info.Defs[fd.Name].(*types.Func)
			for _, rd := range c.reachable(obj) {
				c.checkLoops(rd)
			}
		}
	}
	return nil
}

// hasCtxrootMarker reports whether fd's doc comment contains a
// //pbqpvet:ctxroot line (a trailing reason after the marker is
// allowed and encouraged).
func hasCtxrootMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, cm := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
		if text == ctxrootMarker || strings.HasPrefix(text, ctxrootMarker+" ") {
			return true
		}
	}
	return false
}

type ctxChecker struct {
	pass     *Pass
	decls    map[*types.Func]*ast.FuncDecl
	memo     map[*types.Func]int // 0 unknown, 1 in progress, 2 polls, 3 does not poll
	reported map[*ast.FuncDecl]bool
}

// hasCtxParam reports whether fd takes a context.Context parameter.
func (c *ctxChecker) hasCtxParam(fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContext(c.pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// polls reports whether node contains a context poll: a direct
// .Err()/.Done() call on a context, delegation of a context to any
// callee, or a call to a same-package function that itself polls.
func (c *ctxChecker) polls(node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
			(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContext(c.pass.TypeOf(sel.X)) {
			found = true
			return false
		}
		for _, arg := range call.Args {
			if isContext(c.pass.TypeOf(arg)) {
				found = true
				return false
			}
		}
		if fn := pkgFunc(c.pass.Info, call); fn != nil && c.funcPolls(fn) {
			found = true
			return false
		}
		return true
	})
	return found
}

// funcPolls is polls over a whole same-package function body, memoized
// and cycle-safe (a recursive cycle with no poll anywhere resolves to
// false).
func (c *ctxChecker) funcPolls(fn *types.Func) bool {
	switch c.memo[fn] {
	case 1, 3:
		return false
	case 2:
		return true
	}
	fd, ok := c.decls[fn]
	if !ok {
		return false
	}
	c.memo[fn] = 1
	result := c.polls(fd.Body)
	if result {
		c.memo[fn] = 2
	} else {
		c.memo[fn] = 3
	}
	return result
}

// reachable returns the same-package function declarations reachable
// from root through static calls, root included (the shared
// reachability kernel in conc.go).
func (c *ctxChecker) reachable(root *types.Func) []*ast.FuncDecl {
	return reachableDecls(c.pass.Info, c.decls, root)
}

// checkLoops reports every unbounded loop in fd whose body cannot reach
// a context poll. Each declaration is checked once even when it is
// reachable from several SolveCtx implementations.
func (c *ctxChecker) checkLoops(fd *ast.FuncDecl) {
	if c.reported[fd] {
		return
	}
	c.reported[fd] = true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			bounded := loop.Init != nil && loop.Cond != nil && loop.Post != nil
			if !bounded && !c.polls(loop.Body) {
				c.pass.Reportf(loop.Pos(), "unbounded loop reachable from a ctxpoll root (SolveCtx or //pbqpvet:ctxroot) never polls the context; a deadline cannot interrupt it (poll ctx.Err() every solve.CheckInterval states)")
			}
		case *ast.RangeStmt:
			if t := c.pass.TypeOf(loop.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan && !c.polls(loop.Body) {
					c.pass.Reportf(loop.Pos(), "channel-range loop reachable from a ctxpoll root (SolveCtx or //pbqpvet:ctxroot) never polls the context; a deadline cannot interrupt it")
				}
			}
		}
		return true
	})
}

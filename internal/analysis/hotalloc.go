package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathMarker designates a function as an allocation-free hot path
// root when it appears as a line of the function's doc comment:
//
//	//pbqpvet:hotpath
//
// The marker is a promise the inference benchmarks rely on: the
// function and everything it reaches through same-package static calls
// run per evaluation, so a stray allocating tensor call there turns
// the alloc-free engine back into a GC treadmill.
const hotpathMarker = "pbqpvet:hotpath"

// HotAlloc flags allocating tensor calls — tensor.NewVec, tensor.NewMat,
// the allocating Vec/Mat methods (Clone, Add, MulVec, MulTVec), and
// make(tensor.Vec, ...) (the inlined spelling of NewVec) — inside
// functions reachable from a //pbqpvet:hotpath root through
// same-package static calls. Hot paths own reusable scratch and call
// the Into variants; deliberate warm-up allocations (grow-once scratch,
// cache fills) carry //pbqpvet:ignore hotalloc suppressions with their
// amortization argument.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "functions reachable from a //pbqpvet:hotpath root must not call " +
		"allocating tensor constructors or methods; use scratch buffers and Into variants",
	Run: runHotAlloc,
}

// allocatingTensorFuncs are the internal/tensor functions and methods
// that allocate their result. The in-place API (AddInPlace, AddScaled,
// Scale, Zero, AddMulVec, the Into variants, Row) is the hot-path
// replacement and stays silent.
var allocatingTensorFuncs = map[string]bool{
	"NewVec":  true,
	"NewMat":  true,
	"Clone":   true,
	"Add":     true,
	"MulVec":  true,
	"MulTVec": true,
}

func runHotAlloc(pass *Pass) error {
	c := &hotChecker{
		pass:    pass,
		decls:   map[*types.Func]*ast.FuncDecl{},
		checked: map[*ast.FuncDecl]bool{},
	}
	var roots []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			c.decls[obj] = fd
			if hasHotpathMarker(fd) {
				roots = append(roots, obj)
			}
		}
	}
	for _, root := range roots {
		for _, fd := range c.reachable(root) {
			c.checkAllocs(fd)
		}
	}
	return nil
}

// hasHotpathMarker reports whether fd's doc comment contains a
// //pbqpvet:hotpath line.
func hasHotpathMarker(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, cm := range fd.Doc.List {
		if strings.TrimSpace(strings.TrimPrefix(cm.Text, "//")) == hotpathMarker {
			return true
		}
	}
	return false
}

type hotChecker struct {
	pass    *Pass
	decls   map[*types.Func]*ast.FuncDecl
	checked map[*ast.FuncDecl]bool
}

// reachable returns the same-package function declarations reachable
// from root through static calls, root included (the shared
// reachability kernel in conc.go).
func (c *hotChecker) reachable(root *types.Func) []*ast.FuncDecl {
	return reachableDecls(c.pass.Info, c.decls, root)
}

// checkAllocs reports every allocating tensor call in fd. Each
// declaration is checked once even when it is reachable from several
// hot-path roots.
func (c *hotChecker) checkAllocs(fd *ast.FuncDecl) {
	if c.checked[fd] {
		return
	}
	c.checked[fd] = true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && len(call.Args) > 0 {
			if _, builtin := c.pass.Info.Uses[id].(*types.Builtin); builtin {
				if t := c.pass.TypeOf(call.Args[0]); t != nil && isNamedType(t, "internal/tensor", "Vec") {
					c.pass.Reportf(call.Pos(),
						"make(tensor.Vec, ...) allocates on a //pbqpvet:hotpath-reachable path; reuse a scratch buffer or an Into variant")
				}
			}
			return true
		}
		fn := pkgFunc(c.pass.Info, call)
		if fn == nil || !allocatingTensorFuncs[fn.Name()] {
			return true
		}
		if p := funcPath(fn); p != "internal/tensor" && !strings.HasSuffix(p, "/internal/tensor") {
			return true
		}
		c.pass.Reportf(call.Pos(),
			"%s allocates on a //pbqpvet:hotpath-reachable path; reuse a scratch buffer or an Into variant",
			tensorCallLabel(fn))
		return true
	})
}

// tensorCallLabel renders fn as tensor.NewVec or (tensor.Mat).MulVec.
func tensorCallLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := types.Unalias(t).(*types.Named); ok {
			return "(tensor." + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return "tensor." + fn.Name()
}

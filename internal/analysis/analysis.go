// Package analysis is a small stdlib-only static-analysis framework for
// the project's domain invariants: determinism of encode paths,
// saturating ℝ∞ cost arithmetic, cancellation discipline in solvers,
// float comparison hygiene, and panic-free library code.
//
// It deliberately avoids golang.org/x/tools: packages are parsed with
// go/parser and type-checked with go/types, resolving module-internal
// imports through a source loader (Loader) and standard-library imports
// through go/importer's source importer. Analyzers receive a fully
// type-checked Pass and report position-accurate Diagnostics; findings
// can be suppressed line-by-line with
//
//	//pbqpvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line directly above it. The
// cmd/pbqp-vet driver runs every analyzer over the module and exits
// nonzero on unsuppressed findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: an analyzer name, a resolved source
// position, and a human-readable message.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form
// with the analyzer name in brackets.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one named check over type-checked code. Exactly one of
// Run and RunModule is set: Run analyzers see one package at a time,
// RunModule analyzers (the concurrency suite) see every loaded package
// at once so call graphs and sync-object identity thread across
// package boundaries.
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// //pbqpvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the
	// analyzer protects.
	Doc string
	// Run inspects the package via pass and reports findings with
	// pass.Reportf. A returned error aborts the whole vet run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(pass *Pass) error
	// RunModule inspects every loaded package in one pass; the
	// ModulePass carries the shared concurrency index (call graph,
	// sync-object identity) built once per vet run.
	RunModule func(pass *ModulePass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ModulePass carries one module-level analyzer's view of every loaded
// package, plus the shared concurrency index.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Conc     *Conc

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the loaded package, applies the
// package's //pbqpvet:ignore suppressions, and returns the surviving
// diagnostics sorted by position. Malformed suppression directives are
// themselves reported under the pseudo-analyzer name "pbqpvet".
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunModule([]*Package{pkg}, analyzers)
}

// RunModule executes the analyzers over every loaded package —
// per-package analyzers once per package, module analyzers once over
// the whole set with a shared concurrency index — applies every
// //pbqpvet:ignore suppression, and returns the surviving diagnostics
// in one deterministic file/line/col/analyzer order so repeated runs
// (and their -json artifacts) are byte-stable.
func RunModule(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	var sup suppressions
	for _, pkg := range pkgs {
		pkgSup, supDiags := collectSuppressions(pkg.Fset, pkg.Files)
		sup = sup.merge(pkgSup)
		diags = append(diags, supDiags...)
	}
	var conc *Conc
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if conc == nil {
			conc = newConc(pkgs)
		}
		pass := &ModulePass{Analyzer: a, Fset: fsetOf(pkgs), Pkgs: pkgs, Conc: conc}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", a.Name, err)
		}
		diags = append(diags, pass.diags...)
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			diags = append(diags, pass.diags...)
		}
	}
	diags = sup.filter(diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// fsetOf returns the packages' shared file set (every package of one
// loader resolves positions against the same set).
func fsetOf(pkgs []*Package) *token.FileSet {
	if len(pkgs) == 0 {
		return token.NewFileSet()
	}
	return pkgs[0].Fset
}

// Package analysis is a small stdlib-only static-analysis framework for
// the project's domain invariants: determinism of encode paths,
// saturating ℝ∞ cost arithmetic, cancellation discipline in solvers,
// float comparison hygiene, and panic-free library code.
//
// It deliberately avoids golang.org/x/tools: packages are parsed with
// go/parser and type-checked with go/types, resolving module-internal
// imports through a source loader (Loader) and standard-library imports
// through go/importer's source importer. Analyzers receive a fully
// type-checked Pass and report position-accurate Diagnostics; findings
// can be suppressed line-by-line with
//
//	//pbqpvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line directly above it. The
// cmd/pbqp-vet driver runs every analyzer over the module and exits
// nonzero on unsuppressed findings.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: an analyzer name, a resolved source
// position, and a human-readable message.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form
// with the analyzer name in brackets.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// //pbqpvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the
	// analyzer protects.
	Doc string
	// Run inspects the package via pass and reports findings with
	// pass.Reportf. A returned error aborts the whole vet run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Run executes the analyzers over the loaded package, applies the
// package's //pbqpvet:ignore suppressions, and returns the surviving
// diagnostics sorted by position. Malformed suppression directives are
// themselves reported under the pseudo-analyzer name "pbqpvet".
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup, supDiags := collectSuppressions(pkg.Fset, pkg.Files)
	diags := supDiags
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	diags = sup.filter(diags)
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset is the loader's shared file set (positions resolve here).
	Fset *token.FileSet
	// Files holds the parsed non-test Go files in lexical name order.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one Go module without
// golang.org/x/tools: module-internal imports are resolved recursively
// from source, standard-library imports through go/importer's source
// importer. Loaded packages are memoized, so analyzing a whole module
// type-checks each package (and the stdlib) once. A Loader is not safe
// for concurrent use.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a Loader for the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  modDir,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module root directory and module path.
func findModule(dir string) (string, string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		if path, err := readModulePath(filepath.Join(d, "go.mod")); err == nil {
			return d, path, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("analysis: %s has no module directive", gomod)
}

// LoadDir loads and type-checks the package in dir, which must lie
// inside the loader's module. Test files (_test.go) are excluded: the
// analyzers' invariants target production code, and test-only findings
// drown signal in noise.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.load(path, abs)
}

// load parses and type-checks the package at dir under import path
// path, memoized and cycle-checked.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// parseDir parses the non-test Go files of dir in lexical order.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if buildIgnored(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// buildIgnored reports whether f carries a "//go:build ignore"
// constraint (the only build-tag form this repo uses).
func buildIgnored(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.End() >= f.Package {
			break
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text == "//go:build ignore" || strings.HasPrefix(text, "// +build ignore") {
				return true
			}
		}
	}
	return false
}

// importPkg is the types.Importer hook: module-internal paths load
// recursively from source, everything else (the stdlib) goes through
// the source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.load(path, filepath.Join(l.ModuleDir, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes one Loader across all tests in this package so
// the standard library is type-checked from source only once.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loader, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// TestGolden checks every fixture package against its `// want "substr"`
// annotations: each annotated line must produce exactly the findings it
// declares (substring match, order-insensitive), and unannotated lines
// must stay silent.
func TestGolden(t *testing.T) {
	cases := []struct {
		fixture   string
		analyzers []*Analyzer
	}{
		{"atomicmix", []*Analyzer{AtomicMix}},
		{"determinism", []*Analyzer{Determinism}},
		{"costarith", []*Analyzer{CostArith}},
		{"ctxpoll", []*Analyzer{CtxPoll}},
		{"floatcmp", []*Analyzer{FloatCmp}},
		{"goroleak", []*Analyzer{GoroLeak}},
		{"hotalloc", []*Analyzer{HotAlloc}},
		{"lockorder", []*Analyzer{LockOrder}},
		{"panicfree", []*Analyzer{PanicFree}},
		{"suppress", []*Analyzer{FloatCmp, PanicFree}},
		{"wgmisuse", []*Analyzer{WgMisuse}},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", tc.fixture)
			pkg, err := testLoader(t).LoadDir(dir)
			if err != nil {
				t.Fatalf("load fixture: %v", err)
			}
			diags, err := Run(pkg, tc.analyzers)
			if err != nil {
				t.Fatalf("run analyzers: %v", err)
			}
			for _, problem := range compareGolden(parseWants(t, dir), diags) {
				t.Error(problem)
			}
		})
	}
}

// compareGolden checks findings against `// want` annotations and
// returns one message per mismatch: an annotated line whose findings
// differ in count or content, or an unannotated line with findings. A
// want that matches nothing is a mismatch — that property is what
// keeps a silently dead analyzer from passing its fixture, and
// TestGoldenHarness locks it in.
func compareGolden(wants map[string][]string, diags []Diagnostic) []string {
	var problems []string
	got := map[string][]string{} // file:line -> messages
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.File), d.Line)
		got[key] = append(got[key], d.Message)
	}
	for key, wantMsgs := range wants {
		msgs := got[key]
		if len(msgs) != len(wantMsgs) {
			problems = append(problems, fmt.Sprintf("%s: got %d finding(s) %q, want %d matching %q", key, len(msgs), msgs, len(wantMsgs), wantMsgs))
			continue
		}
		used := make([]bool, len(msgs))
	wantLoop:
		for _, w := range wantMsgs {
			for i, m := range msgs {
				if !used[i] && strings.Contains(m, w) {
					used[i] = true
					continue wantLoop
				}
			}
			problems = append(problems, fmt.Sprintf("%s: no finding contains %q; got %q", key, w, msgs))
		}
	}
	for key, msgs := range got {
		if _, ok := wants[key]; !ok {
			problems = append(problems, fmt.Sprintf("%s: unexpected finding(s) %q", key, msgs))
		}
	}
	sort.Strings(problems)
	return problems
}

// TestGoldenHarness guards the harness itself: a want annotation that
// no diagnostic matches MUST fail the comparison (a dead analyzer
// produces no findings, and its fixture would otherwise pass vacuously),
// and extra findings on unannotated lines must fail too.
func TestGoldenHarness(t *testing.T) {
	wants := map[string][]string{"fixture.go:3": {"some finding"}}
	if problems := compareGolden(wants, nil); len(problems) == 0 {
		t.Fatalf("unmatched want produced no failure; a dead analyzer would pass its fixture")
	}
	match := Diagnostic{File: "a/fixture.go", Line: 3, Message: "exactly some finding here"}
	if problems := compareGolden(wants, []Diagnostic{match}); len(problems) != 0 {
		t.Fatalf("matching finding reported problems: %q", problems)
	}
	wrong := Diagnostic{File: "a/fixture.go", Line: 3, Message: "a different message"}
	if problems := compareGolden(wants, []Diagnostic{wrong}); len(problems) == 0 {
		t.Fatalf("mismatched message produced no failure")
	}
	extra := Diagnostic{File: "a/fixture.go", Line: 9, Message: "stray"}
	if problems := compareGolden(wants, []Diagnostic{match, extra}); len(problems) != 1 {
		t.Fatalf("stray finding on unannotated line: got %q, want exactly one problem", problems)
	}
}

var wantRE = regexp.MustCompile(`// want ((?:"[^"]*"\s*)+)`)
var quotedRE = regexp.MustCompile(`"([^"]*)"`)

// parseWants extracts `// want "substr" ["substr" ...]` annotations
// from every Go file in dir, keyed by "file.go:line".
func parseWants(t *testing.T, dir string) map[string][]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	wants := map[string][]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", e.Name(), i+1)
			for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
				wants[key] = append(wants[key], q[1])
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want annotations", dir)
	}
	return wants
}

// TestCostArithSilentInsideCostPackage is the false-positive guard the
// fixture cannot express: the raw extended-real arithmetic inside
// internal/cost itself must not be flagged.
func TestCostArithSilentInsideCostPackage(t *testing.T) {
	pkg, err := testLoader(t).LoadDir("../cost")
	if err != nil {
		t.Fatalf("load internal/cost: %v", err)
	}
	diags, err := Run(pkg, []*Analyzer{CostArith, FloatCmp})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Errorf("costarith/floatcmp flagged internal/cost itself: %v", diags)
	}
}

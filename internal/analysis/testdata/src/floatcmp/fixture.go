// Package floatcmp is a golden fixture for the floatcmp analyzer:
// exact == / != on floating-point operands.
package floatcmp

type meters float64

func compares(x, y float64, f float32) bool {
	if x == y { // want "== on floating-point operands"
		return true
	}
	if x != 0 { // want "!= on floating-point operands"
		return true
	}
	if f == 1.5 { // want "== on floating-point operands"
		return true
	}
	var m meters
	return m == 2 // want "== on floating-point operands"
}

// nanProbe is the one blessed exact comparison: x != x is true only
// for NaN.
func nanProbe(x float64) bool {
	return x != x
}

// ints are exact; integer comparison is silent.
func ints(a, b int) bool { return a == b }

// ordering comparisons are fine: they do not assume bit equality.
func ordering(x, y float64) bool { return x < y || x >= y }

// suppressed shows a justified exact sentinel check.
func suppressed(unset float64) bool {
	//pbqpvet:ignore floatcmp zero is the unset-config sentinel, assigned not computed
	return unset == 0
}

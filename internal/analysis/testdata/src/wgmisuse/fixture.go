// Package wgmisuse is a golden fixture for the wgmisuse analyzer:
// WaitGroup Add/Wait protocol violations and by-value sync primitives.
package wgmisuse

import "sync"

// --- Add inside the spawned goroutine ---

func addInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want "Add inside the goroutine"
		defer wg.Done()
	}()
	wg.Wait()
}

// A WaitGroup declared inside the goroutine follows its own protocol.
func localWG() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var inner sync.WaitGroup
		inner.Add(1)
		go inner.Done()
		inner.Wait()
	}()
	<-done
}

// --- Add after Wait in straight-line code ---

func worker(wg *sync.WaitGroup) { wg.Done() }

func addAfterWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go worker(&wg)
	wg.Wait()
	wg.Add(1) // want "Add after its Wait"
	go worker(&wg)
	wg.Wait()
}

// Waves in separate statement lists (the loop body restarts the list)
// are left alone: source order no longer proves reuse.
func wavesInLoop() {
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go worker(&wg)
		wg.Wait()
	}
}

// The canonical protocol is silent.
func proper() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done() }()
	}
	wg.Wait()
}

// --- by-value sync primitives in signatures ---

func byValueParam(wg sync.WaitGroup) { // want "by value"
	wg.Wait()
}

type config struct {
	mu   sync.Mutex
	name string
}

// Containment is walked through struct fields: the helper copies the
// mutex along with the config.
func useConfig(c config) string { // want "by value"
	return c.name
}

type gauge struct{ mu sync.Mutex }

func (g gauge) value() int { // want "by value"
	return 0
}

// Pointers, slices and maps share rather than copy.
func okPtr(wg *sync.WaitGroup)    { wg.Wait() }
func okSlice(gs []gauge) int      { return len(gs) }
func okPtrRecv(g *gauge) struct{} { return struct{}{} }

// --- suppression with a per-site reason ---

//pbqpvet:ignore wgmisuse value receiver reads an immutable snapshot taken before any goroutine starts
func (g gauge) snapshot() int {
	return 1
}

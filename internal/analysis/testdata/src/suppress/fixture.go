// Package suppress is a golden fixture for the suppression machinery
// itself: directive placement, multi-analyzer directives, and
// directives that name the wrong analyzer. (Malformed directives are
// covered by unit tests in the analysis package.)
package suppress

func trailing(x float64) bool {
	return x == 1 //pbqpvet:ignore floatcmp trailing directives suppress their own line
}

func above(x float64) bool {
	//pbqpvet:ignore floatcmp standalone directives suppress the next line
	return x == 2
}

func multiName(x float64) bool {
	if x != 3 { // want "!= on floating-point operands"
		//pbqpvet:ignore floatcmp,panicfree one directive may silence several analyzers
		panic(x == 3)
	}
	return false
}

func wrongName(x float64) bool {
	//pbqpvet:ignore panicfree this names the wrong analyzer, so floatcmp still fires
	return x == 4 // want "== on floating-point operands"
}

func tooFar(x float64) bool {
	//pbqpvet:ignore floatcmp directives reach one line, not two

	return x == 5 // want "== on floating-point operands"
}

// Package determinism is a golden fixture for the determinism
// analyzer. Lines carrying a want-comment must produce a finding whose
// message contains the quoted substring; all other lines must stay
// silent.
package determinism

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"sort"
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want "time.Now breaks deterministic replay"
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand.Shuffle"
	_ = randv2.IntN(7)                 // want "global math/rand/v2.IntN"
	return rand.Intn(10)               // want "global math/rand.Intn"
}

// seededRand is fine: an explicit source is serializable and resumable.
func seededRand() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(10)
}

// suppressedClock demonstrates a justified suppression.
func suppressedClock() time.Time {
	//pbqpvet:ignore determinism wall-clock is reporting only in this fixture
	return time.Now()
}

// EncodeState is an encode path: map iteration order would leak into
// the serialized bytes.
func EncodeState(m map[int]string) []byte {
	var out []byte
	for k, v := range m { // want "map iteration in encode path EncodeState"
		out = append(out, byte(k))
		out = append(out, v...)
	}
	return out
}

// writeFrame is an encode path even through a closure.
func writeFrame(m map[string]int) string {
	var s string
	emit := func() {
		for k := range m { // want "map iteration in encode path writeFrame"
			s += k
		}
	}
	emit()
	return s
}

// EncodeSorted is the fix: hoist key collection into a helper (whose
// map range never reaches bytes directly) and iterate the sorted keys.
func EncodeSorted(m map[int]string) []byte {
	var out []byte
	for _, k := range sortedKeys(m) {
		out = append(out, byte(k), m[k][0])
	}
	return out
}

func sortedKeys(m map[int]string) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// tally is not an encode path: map iteration that never reaches
// serialized bytes is unordered but harmless.
func tally(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func show() { fmt.Println("keep fmt imported") }

// Package panicfree is a golden fixture for the panicfree analyzer:
// no panic in library code outside Must* constructors and init.
package panicfree

import "errors"

type thing struct{ n int }

func newThing(n int) (*thing, error) {
	if n < 0 {
		return nil, errors.New("negative")
	}
	return &thing{n: n}, nil
}

// MustThing is the blessed panicking constructor.
func MustThing(n int) *thing {
	t, err := newThing(n)
	if err != nil {
		panic(err)
	}
	return t
}

// init-time config validation may panic: the process has not started
// real work yet.
func init() {
	if defaultSize < 0 {
		panic("panicfree: bad default")
	}
}

var defaultSize = 8

func libraryFunc(n int) int {
	if n < 0 {
		panic("negative") // want "panic in library function libraryFunc"
	}
	return n * 2
}

func (t *thing) method() {
	defer func() { recover() }()
	closure := func() {
		panic("inside closure") // want "panic in library function method"
	}
	closure()
}

// suppressed shows a justified contract panic.
func (t *thing) index(i int) int {
	if i < 0 || i >= t.n {
		//pbqpvet:ignore panicfree documented contract panic, mirrors slice bounds check
		panic("out of range")
	}
	return i
}

// Package ctxpoll is a golden fixture for the ctxpoll analyzer: every
// SolveCtx implementation must reach a context poll from each unbounded
// loop.
package ctxpoll

import "context"

type result struct{ cost float64 }

// deafSolver never looks at its context at all.
type deafSolver struct{}

func (deafSolver) SolveCtx(ctx context.Context, n int) result { // want "never checks its context"
	r := result{}
	for i := 0; i < n; i++ {
		r.cost += float64(i)
	}
	return r
}

// spinSolver polls once up front but spins forever without re-polling.
type spinSolver struct{ stop bool }

func (s *spinSolver) SolveCtx(ctx context.Context, n int) result {
	if ctx.Err() != nil {
		return result{}
	}
	for !s.stop { // want "unbounded loop reachable from a ctxpoll root"
		s.step()
	}
	for { // want "unbounded loop reachable from a ctxpoll root"
		if s.step() {
			return result{}
		}
	}
}

func (s *spinSolver) step() bool { return s.stop }

// politeSolver polls directly inside its unbounded loop.
type politeSolver struct{ states int }

func (s *politeSolver) SolveCtx(ctx context.Context, n int) result {
	for s.states < n {
		s.states++
		if s.states%256 == 0 && ctx.Err() != nil {
			return result{}
		}
	}
	return result{}
}

// helperSolver polls through a same-package helper, like the rl
// runner's cancelled().
type helperSolver struct{ ctx context.Context }

func (s *helperSolver) SolveCtx(ctx context.Context, n int) result {
	s.ctx = ctx
	for {
		if s.cancelled() {
			return result{}
		}
	}
}

func (s *helperSolver) cancelled() bool { return s.ctx.Err() != nil }

// delegatingSolver hands the context to a callee each iteration, like
// liberty delegating subproblems to scholz.
type delegatingSolver struct{ done bool }

func (s *delegatingSolver) SolveCtx(ctx context.Context, n int) result {
	for !s.done {
		runSub(ctx, n)
	}
	return result{}
}

func runSub(ctx context.Context, n int) {}

// recursiveHelper: an unbounded loop in a helper reachable from
// SolveCtx is held to the same contract.
type deepSolver struct{ pending []int }

func (s *deepSolver) SolveCtx(ctx context.Context, n int) result {
	if ctx.Err() != nil {
		return result{}
	}
	s.drain()
	return result{}
}

func (s *deepSolver) drain() {
	for len(s.pending) > 0 { // want "unbounded loop reachable from a ctxpoll root"
		s.pending = s.pending[1:]
	}
}

// boundedOnly: counting and range loops are bounded by data size and
// exempt; no findings even without an in-loop poll.
type boundedSolver struct{}

func (boundedSolver) SolveCtx(ctx context.Context, n int) result {
	if ctx.Err() != nil {
		return result{}
	}
	r := result{}
	for i := 0; i < n; i++ {
		r.cost++
	}
	for range []int{1, 2, 3} {
		r.cost++
	}
	return r
}

// notASolver: unbounded loops in functions not reachable from any
// SolveCtx are out of scope.
func notASolver(n int) {
	for {
		if n > 0 {
			return
		}
	}
}

// markedRetryLoop opts into the sweep via //pbqpvet:ctxroot, like the
// router's forward path: its unbounded retry loop polls, so no finding.
//
//pbqpvet:ctxroot the retry loop must stay cancellable
func markedRetryLoop(ctx context.Context, n int) {
	for {
		if ctx.Err() != nil {
			return
		}
		runSub(ctx, n)
	}
}

// markedSpinner is a marked root whose helper spins without polling —
// the marker extends the whole-call-tree contract, not just the root's
// own body.
//
//pbqpvet:ctxroot
func markedSpinner(ctx context.Context, s *spinSolver) {
	if ctx.Err() != nil {
		return
	}
	spinHelper(s)
}

func spinHelper(s *spinSolver) {
	for !s.stop { // want "unbounded loop reachable from a ctxpoll root"
		s.step()
	}
}

// markedDeaf claims the contract but never looks at its context.
//
//pbqpvet:ctxroot
func markedDeaf(ctx context.Context, n int) { // want "never checks its context"
	for {
		if n > 0 {
			return
		}
	}
}

// markedNoCtx asserts a contract it cannot honor: no context parameter.
//
//pbqpvet:ctxroot
func markedNoCtx(n int) { // want "takes no context.Context"
	_ = n
}

// Package lockorder is a golden fixture for the lockorder analyzer:
// acquisition-order cycles (including self-acquisition) and locks held
// across blocking operations.
package lockorder

import (
	"net/http"
	"sync"
	"time"
)

// --- acquisition-order cycle: a→b in one function, b→a in another ---

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) ab() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want "lock-order cycle"
	p.b.Unlock()
}

func (p *pair) ba() {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock() // want "lock-order cycle"
	p.a.Unlock()
}

// --- consistent nesting order on an unrelated pair: no cycle ---

type ordered struct {
	outer sync.Mutex
	inner sync.Mutex
}

func (o *ordered) nested() {
	o.outer.Lock()
	defer o.outer.Unlock()
	o.inner.Lock()
	o.inner.Unlock()
}

// --- self-acquisition, direct and through a callee ---

type counter struct{ mu sync.Mutex }

func (c *counter) doubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want "not reentrant"
	c.mu.Unlock()
}

type gauge struct{ mu sync.Mutex }

func (g *gauge) outer() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inner() // want "not reentrant"
}

func (g *gauge) inner() {
	g.mu.Lock()
	g.mu.Unlock()
}

// --- blocking operations under a lock ---

type state struct{ mu sync.Mutex }

func (s *state) send(ch chan int) {
	s.mu.Lock()
	ch <- 1 // want "held across a channel send"
	s.mu.Unlock()
}

func (s *state) recv(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-ch // want "held across a channel receive"
}

func (s *state) selectBlocking(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "held across a select without default"
	case v := <-ch:
		_ = v
	}
}

func (s *state) fetch(c *http.Client) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Get("http://unreachable.invalid/") // want "net/http round trip"
}

func waitUnderLock(mu *sync.Mutex, wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait() // want "sync.WaitGroup.Wait"
	mu.Unlock()
}

// --- interprocedural: the blocking operation is inside a callee ---

func sleepy() { time.Sleep(time.Millisecond) }

func lockedSleep(mu *sync.Mutex) {
	mu.Lock()
	sleepy() // want "time.Sleep inside sleepy"
	mu.Unlock()
}

// --- read locks participate too ---

type rw struct{ mu sync.RWMutex }

func (r *rw) readHeld(ch chan int) {
	r.mu.RLock()
	<-ch // want "held across a channel receive"
	r.mu.RUnlock()
}

// --- negatives ---

// A select with a default never blocks.
func (s *state) trySend(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- 1:
	default:
	}
}

// Unlock-and-return on one branch must not poison the fall-through
// path: the lock is released on both.
func branchy(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	if cap(ch) == 0 {
		mu.Unlock()
		return
	}
	mu.Unlock()
	ch <- 1
}

// A goroutine body is a separate flow: the spawner's locks are not
// held inside it.
func spawns(mu *sync.Mutex, ch chan int, wg *sync.WaitGroup) {
	mu.Lock()
	defer mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		ch <- 1
	}()
}

// --- suppression with a per-site reason ---

func suppressed(mu *sync.Mutex, ch chan int) {
	mu.Lock()
	//pbqpvet:ignore lockorder startup handshake: ch is buffered to the sender count, the send cannot block
	ch <- 1
	mu.Unlock()
}

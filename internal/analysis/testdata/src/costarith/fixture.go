// Package costarith is a golden fixture for the costarith analyzer:
// raw arithmetic and comparison on cost.Cost outside internal/cost.
package costarith

import "pbqprl/internal/cost"

func rawOps(a, b cost.Cost) cost.Cost {
	c := a + b // want "raw + on cost.Cost"
	c = a - b  // want "raw - on cost.Cost"
	c = a * b  // want "raw * on cost.Cost"
	c = a / b  // want "raw / on cost.Cost"
	c += a     // want "raw += on cost.Cost"
	c++        // want "raw ++ on cost.Cost"
	return c
}

func rawCompares(a, b cost.Cost) bool {
	if a == b { // want "raw == on cost.Cost"
		return true
	}
	if a != cost.Inf { // want "raw != on cost.Cost"
		return true
	}
	return a < b // want "raw < on cost.Cost"
}

// mixed operands are flagged too: the untyped constant converts to Cost.
func mixed(a cost.Cost) cost.Cost {
	return a + 1 // want "raw + on cost.Cost"
}

// viaMethods is the correct form and stays silent.
func viaMethods(a, b cost.Cost) cost.Cost {
	if a.IsInf() || a.Less(b) || a.IsZero() {
		return a.Add(b)
	}
	return cost.Inf
}

// plainFloats are not costs; costarith leaves them to floatcmp.
func plainFloats(x, y float64) float64 {
	return x + y*2
}

// suppressed shows a justified exception.
func suppressed(a, b cost.Cost) float64 {
	//pbqpvet:ignore costarith both operands proven finite one line above
	return float64(a - b)
}

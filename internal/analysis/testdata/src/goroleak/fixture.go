// Package goroleak is a golden fixture for the goroleak analyzer:
// goroutines without a bounded exit path.
package goroleak

import (
	"context"
	"sync"
)

func work() {}

// --- positives ---

func fireAndForget() {
	go func() { // want "fire-and-forget"
		for i := 0; i < 10; i++ {
			work()
		}
	}()
}

func exitlessLoop() {
	go func() { // want "for-loop with no exit path"
		for {
			work()
		}
	}()
}

// The loop may hide in a named spawn target, transitively.
func namedLeak() {
	go spin() // want "for-loop with no exit path"
}

func spin() {
	for {
		work()
	}
}

// A break bound to an inner loop does not exit the outer one.
func innerBreakOnly() {
	go func() { // want "for-loop with no exit path"
		for {
			for {
				break
			}
		}
	}()
}

// --- negatives: each bounded-exit shape ---

func ctxBound(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

func quitBound(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			}
		}
	}()
}

func joined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func pumps(ch chan int) {
	go pump(ch) // range over the channel bounds the lifetime
}

func pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func closes(done chan struct{}) {
	go func() {
		defer close(done)
		work()
	}()
}

// --- daemon markers ---

func daemon() {
	//pbqpvet:daemon metrics flusher runs for the process lifetime by design
	go func() {
		for {
			work()
		}
	}()
}

func namedDaemon() {
	go serveForever()
}

// serveForever loops for the life of the process.
//
//pbqpvet:daemon lease heartbeat; stops only at process exit
func serveForever() {
	for {
		work()
	}
}

func badDaemon() {
	//pbqpvet:daemon
	go func() { // want "malformed daemon marker"
		for {
			work()
		}
	}()
}

// --- suppression with a per-site reason ---

func suppressed() {
	//pbqpvet:ignore goroleak benchmark warm-up helper; the process exits when it returns
	go func() {
		for {
			work()
		}
	}()
}

// Package atomicmix is a golden fixture for the atomicmix analyzer:
// variables accessed via sync/atomic must be accessed atomically
// everywhere outside construction.
package atomicmix

import "sync/atomic"

type hits struct {
	n     int64
	other int64
}

func (h *hits) bump() {
	atomic.AddInt64(&h.n, 1)
}

func (h *hits) load() int64 {
	return atomic.LoadInt64(&h.n)
}

func (h *hits) read() int64 {
	return h.n // want "plain read"
}

func (h *hits) reset() {
	h.n = 0 // want "plain write"
}

func (h *hits) incr() {
	h.n++ // want "plain write"
}

// Constructors may initialize plainly: the object is not shared yet.
func NewHits() *hits {
	h := &hits{}
	h.n = 0
	return h
}

// Composite-literal keys are initialization, not access, even outside
// a New* function.
func fresh() *hits {
	return &hits{n: 1}
}

// Fields never touched atomically are free to be plain.
func (h *hits) touchOther() { h.other++ }

// --- package-level variables ---

var total int64

func addTotal() {
	atomic.AddInt64(&total, 1)
}

func peekTotal() int64 {
	return total // want "plain read"
}

// A function-local counter updated atomically by workers and read
// after the join is a correct idiom, not a mix.
func localCounter() int64 {
	var n int64
	atomic.AddInt64(&n, 1)
	return n
}

// --- suppression with a per-site reason ---

func (h *hits) snapshot() int64 {
	//pbqpvet:ignore atomicmix single-threaded teardown path; all writers have been joined
	return h.n
}

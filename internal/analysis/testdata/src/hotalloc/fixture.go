// Package hotalloc is a golden fixture for the hotalloc analyzer:
// allocating tensor calls in functions reachable from a
// //pbqpvet:hotpath root.
package hotalloc

import "pbqprl/internal/tensor"

// infer is a hot-path root; its own allocations and those of every
// same-package callee are flagged.
//
//pbqpvet:hotpath
func infer(x tensor.Vec, m *tensor.Mat) tensor.Vec {
	v := tensor.NewVec(len(x))     // want "tensor.NewVec allocates"
	w := make(tensor.Vec, len(x))  // want "make(tensor.Vec, ...) allocates"
	_ = make([]float64, len(x))    // plain slice: silent
	_ = make([]tensor.Vec, len(x)) // slice of headers: silent
	v.AddInPlace(w)                // in-place API: silent
	m.MulVecInto(v, x)             // Into variant: silent
	return helper(v, m)
}

// helper is reachable from infer through a static call.
func helper(v tensor.Vec, m *tensor.Mat) tensor.Vec {
	w := m.MulVec(v) // want "(tensor.Mat).MulVec allocates"
	return w.Add(v)  // want "(tensor.Vec).Add allocates"
}

// viaClosure allocates inside a function literal, still within the
// root's body.
//
//pbqpvet:hotpath
func viaClosure(v tensor.Vec) tensor.Vec {
	f := func() tensor.Vec { return v.Clone() } // want "(tensor.Vec).Clone allocates"
	return f()
}

// engine.run is a method root: methods carry the marker the same way.
type engine struct{ scratch tensor.Vec }

//pbqpvet:hotpath
func (e *engine) run(m *tensor.Mat) tensor.Vec {
	return m.MulTVec(e.scratch) // want "(tensor.Mat).MulTVec allocates"
}

// suppressed documents an accepted grow-once allocation.
//
//pbqpvet:hotpath
func suppressed(r, c int) *tensor.Mat {
	//pbqpvet:ignore hotalloc grow-once scratch, amortized across the run
	return tensor.NewMat(r, c)
}

// cold is reachable from no hot-path root; it may allocate freely.
func cold(v tensor.Vec) tensor.Vec {
	u := v.Clone()
	return u.Add(v)
}

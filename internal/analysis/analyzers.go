package analysis

// All returns every analyzer in the suite, in report-name order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix, CostArith, CtxPoll, Determinism, FloatCmp,
		GoroLeak, HotAlloc, LockOrder, PanicFree, WgMisuse,
	}
}

// ByName resolves a comma-separable analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

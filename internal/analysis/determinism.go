package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// Determinism guards the bit-identical-training invariant: resumed or
// re-run training must produce byte-for-byte identical results, so
// production code must not read wall-clock time, must not draw from the
// global (unseeded, unserializable) math/rand source, and must not let
// map iteration order reach encoded bytes.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags time.Now, global math/rand state, and map iteration in " +
		"encode/serialize paths, all of which break bit-identical reproduction",
	Run: runDeterminism,
}

// encodePathRE matches function names that produce serialized bytes
// (checkpoint framing, state encoding, hashing); inside them, map
// iteration order leaks straight into the output.
var encodePathRE = regexp.MustCompile(`^(?i:encode|marshal|hash|save|serialize|write|dump|frame)`)

// globalRandFuncs are the math/rand (v1 and v2) package-level functions
// that draw from the shared global source. Constructors like New,
// NewSource, and NewPCG are fine: an explicitly seeded *Rand is exactly
// what deterministic code should use.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true, "N": true,
}

func runDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pkgFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			switch path := funcPath(fn); {
			case path == "time" && fn.Name() == "Now":
				pass.Reportf(call.Pos(), "time.Now breaks deterministic replay; thread an explicit clock or timestamp through the caller")
			case (path == "math/rand" || path == "math/rand/v2") && globalRandFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "global %s.%s draws from shared unserializable RNG state; use an explicitly seeded *rand.Rand", path, fn.Name())
			}
			return true
		})
		// Map iteration inside encode paths: the whole body of any
		// function whose name says "I produce serialized bytes",
		// including closures it contains.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !encodePathRE.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypeOf(rng.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(rng.Pos(), "map iteration in encode path %s: order is randomized per run and leaks into the bytes; iterate sorted keys", fd.Name.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags direct == and != on floating-point operands.
// Accumulated rounding error makes exact float equality a latent bug in
// numeric code (loss comparison, policy normalization checks); the
// deliberate exact comparisons live in internal/cost, which is exempt,
// and the x != x NaN idiom is recognized. cost.Cost operands are left
// to the costarith analyzer so each finding is reported once.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flags == and != on float32/float64 operands outside internal/cost; " +
		"compare with a tolerance or math.Abs, or suppress deliberate exact checks",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	if inCostPackage(pass) {
		return nil
	}
	isFloat := func(e ast.Expr) bool {
		t := pass.TypeOf(e)
		if t == nil || isCost(t) {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(cmp.X) && !isFloat(cmp.Y) {
				return true
			}
			// x != x (or x == x) is the standard NaN probe, not an
			// accidental exact comparison.
			if types.ExprString(cmp.X) == types.ExprString(cmp.Y) {
				return true
			}
			pass.Reportf(cmp.OpPos, "%s on floating-point operands is exact-bit comparison; use a tolerance (or suppress if exactness is the point)", cmp.Op)
			return true
		})
	}
	return nil
}
